// Package memcnn is a Go reproduction of "Optimizing Memory Efficiency for
// Deep Convolutional Neural Networks on GPUs" (Li, Yang, Feng, Chakradhar,
// Zhou — SC 2016).
//
// The library models the memory behaviour of GPU CNN layers (data layouts,
// coalescing, redundant off-chip traffic, kernel-launch round trips) and
// implements the paper's optimisations: heuristic per-layer data-layout
// selection, a fast 4-D layout transformation, register-reuse pooling and a
// fused, inner-loop-parallel softmax, integrated into a network planner that
// is compared against emulations of cuda-convnet, Caffe and the cuDNN modes.
//
// Beyond estimating plans, internal/runtime carries them out: a planned
// network is compiled into an op list with explicit buffer IDs (layer ops,
// layout-transform ops, zero-copy reshape views), the buffers are packed into
// a single arena by a liveness-driven static memory plan, and the compiled
// program runs on recycled arena instances with no steady-state tensor
// allocation.  The compiler additionally makes a joint per-layer (layout,
// convolution algorithm) decision over three production strategies — direct,
// im2col+GEMM and FFT: internal/autotune's analytic regimes (the paper's
// merged-matrix-dimension argument, plus a large-filter stride-1 FFT regime)
// or a measured probe pick a base algorithm, and internal/layout re-prices it
// against the frequency-domain mode on the plan's device model, charging the
// layout switch into the FFT kernels' NCHW home and respecting the emulated
// cuDNN workspace's device-memory limit, so a layer's layout can flip
// together with its algorithm (the paper's core joint-choice thesis).  The
// compiler pre-packs the filter banks into flat GEMM operands and plans every
// kernel workspace (convolution unroll matrices, FFT spectrum planes,
// fully-connected flatten staging, softmax logits) into the arena as op-local
// buffers.  Layers that declare in-place safety (ReLU) alias their output
// onto their input, shrinking the arena further.
//
// The execution stack is device-abstracted: ops run through a runtime.Device
// — the native CPU, or a simulated GPU that computes real results while
// pricing every op on the internal/gpusim hardware model — and a compiled
// program scales along two axes.  Model parallelism: the program is sharded
// into contiguous pipeline stages across several devices (FLOPs- or
// bytes-balanced cuts, explicit cross-device transfers, one arena plan per
// stage), and the pipelined executor streams batches through the stages
// bit-identically to the single-device run.  Data parallelism: the
// runtime/replica scheduler clones the program across N devices (shared
// read-only weights, per-replica arena pools) and splits every batch into
// sub-batches weighted by modeled — or, on the CPU, probed — per-device
// throughput, so heterogeneous TitanBlack+TitanX fleets balance wall-clock;
// replicas may themselves be pipeline-sharded, composing both axes, and the
// modeled batch scatter divides interconnect bandwidth among the overlapping
// transfers.  A dynamic micro-batching server coalesces concurrent
// single-image requests into planned batched executions over any engine,
// optionally behind a checksum-keyed LRU result cache with single-flight
// (repeated inputs skip execution entirely); cmd/memcnnserve serves it over
// HTTP (`-select` verifies the serving engine against its functional
// reference at startup, `-devices N` pipelines across simulated devices,
// `-replicas N`/`-replica-devices`/`-cache N` switch on replication and the
// cache) and `netbench -runtime` reports every network's arena footprint,
// per-layer algorithm choice, per-stage sharding breakdown (-devices),
// per-replica batch shares with modeled and measured speedup (-replicas) and
// (with -exec/-json) measured throughput plus cache hit/miss counters.
//
// The serving stack is fault-tolerant end to end.  runtime.FaultDevice wraps
// any Device with a deterministic seeded failure schedule — transient op
// errors, latency stalls, injected panics, permanent device death — so every
// failure mode is reproducible in CI.  replica.Group runs a health state
// machine over its replicas: transient failures retry with capped exponential
// backoff, repeated failures mark a replica unhealthy and fail the batch over
// to the survivors (batch shares are re-derived from the healthy units'
// original throughput weights, so degraded results stay bit-identical to the
// full-fleet run), and a background probe re-admits recovered replicas.
// Requests carry context.Context through the whole Runner path; the batching
// server enforces a per-request SLO deadline and sheds doomed work at
// admission (distinct ErrShed) when the queue already exceeds the SLO
// horizon, panics anywhere in an engine are contained into errors, and
// retry/failover/shed/unhealthy counters surface in ServerStats,
// `memcnnserve`'s /healthz endpoint and demo summary (`-slo`, and `-chaos`
// to inject a seeded fault schedule), and `netbench -chaos`'s seeded soak —
// which CI runs alongside the race-detector chaos tests, with benchtrend
// asserting the un-faulted baseline run sheds nothing.
//
// The running stack is observable end to end (internal/obs): a shared
// ring-buffered trace recorder collects op, run, pipeline-stage, replica,
// queue-wait, coalesce and batch spans from every execution layer —
// allocation-free when enabled, a nil check when not — and exports them as
// Chrome trace_event JSON loadable in chrome://tracing or Perfetto, while a
// metrics registry keeps per-net/per-op-kind/per-stage/per-replica latency
// histograms (true p50/p95/p99, which also drive the server's SLO admission
// estimate) and exports every serving, cache and fault counter in Prometheus
// text format from the same atomics the stats endpoints read.  On simulated
// fleets the trace carries per-op modeled-vs-measured drift, keeping the
// gpusim cost model honest layer by layer.  `memcnnserve` exposes /metrics,
// /trace and an expanded /stats (plus opt-in pprof); `netbench -trace`
// writes the same trace for offline runs, and its p50/p99 histogram
// quantiles land in the BENCH JSON where cmd/benchtrend gates tail latency
// alongside the means.
//
// Training runs under the same memory discipline (runtime/train): the
// compiler lowers a softmax-terminated network into one op list covering the
// forward pass, softmax cross-entropy loss, backward data/filter passes and
// the SGD update, and the static memory plan spans that joint graph —
// forward activations stay live only until their last backward consumer, and
// recompute-vs-store checkpointing is a planner decision (cheap activations
// are dropped at the forward peak and recomputed just in time during the
// backward pass, priced on the gpusim model, and kept only when the plan's
// peak actually shrinks).  Backward kernels are allocation-free *Into
// variants with fixed accumulation order, so a planned training step is
// bit-identical to the naive per-buffer executor across worker counts;
// `netbench -train` reports planned-vs-naive training footprints with and
// without checkpointing plus measured and modeled step latency, and
// cmd/benchtrend gates the normalised step latency and the (deterministic)
// planned training footprint in CI.
//
// A static verification layer guards the whole compiled surface.
// internal/runtime/verify checks every compiled program — inference,
// training and per-stage sharded alike — against the IR contract the
// executors rely on: def-before-use dataflow, sound alias chains, in-place
// update hazards, kernel workspace sufficiency, memory-plan/liveness
// consistency and accumulation-order determinism, each violation reported
// as a diagnostic naming the offending op and buffer.  Tests run the
// checker over every compiler output unconditionally, and
// runtime.Options.Verify / train.Options.Verify make compilation itself
// fail-closed.  Alongside the IR checker, internal/analyzers implements
// repository-specific source lint passes — noalloc (functions annotated
// //memcnn:noalloc must not heap-allocate), ctxflow (call sites must not
// drop an available context.Context) and atomicalign (64-bit atomics on
// alignment-safe, never mixed-access struct fields) — which
// cmd/memcnnvet runs as a build-failing CI step next to go vet.
//
// The public entry points live under internal/ because the module is a
// self-contained reproduction rather than an importable SDK; the cmd/ tools
// and examples/ programs show every supported workflow, and bench_test.go
// regenerates each table and figure of the paper's evaluation.  See README.md
// and DESIGN.md for the architecture and EXPERIMENTS.md for the
// paper-versus-model comparison.
package memcnn
