// Command netbench runs the whole-network comparison of the paper (Fig. 14)
// and, optionally, the per-layer breakdown of a single network under every
// library policy (the Fig. 15 view for AlexNet).
//
// The -runtime flag switches to the planned-execution view: every network is
// compiled through internal/runtime — with joint per-layer (layout,
// convolution algorithm) selection over direct, im2col+GEMM and FFT unless
// -select=false — and its static memory plan plus the chosen layout and
// algorithm per convolution layer is reported;
// -exec additionally executes the compiled programs functionally on the CPU
// and compares naive, direct-only and algorithm-selected throughput.  -json
// writes the per-network results as machine-readable records (the BENCH_*.json
// perf-trajectory format).
//
// The -devices flag (with -runtime) additionally shards each compiled
// program across N simulated devices and reports the per-stage breakdown:
// op counts, arena bytes, cross-device transfer bytes and modeled device
// latency — plus measured per-stage wall time when -exec runs the pipeline.
//
// The -replicas flag (with -runtime) replicates each compiled program across
// N devices (-replica-devices picks the hardware mix) and reports the
// throughput-weighted per-replica batch shares and the modeled speedup over
// one device; with -exec it also measures the replicated full-batch latency
// against the single executor and drives a duplicated-traffic burst through
// the cached batching server, recording cache hit/miss counters — all of it
// lands in the JSON records.
//
// Usage:
//
//	netbench                         # Fig. 14 on the Titan Black model
//	netbench -network AlexNet -detail
//	netbench -device titanx -thresholds calibrated
//	netbench -runtime                # memory plans + conv algorithms
//	netbench -runtime -exec          # plus measured throughput (small nets)
//	netbench -runtime -devices 4     # pipeline-sharded per-stage breakdown
//	netbench -runtime -replicas 4 -replica-devices titanblack,titanx -exec
//	netbench -runtime -exec -json BENCH_runtime.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"strings"
	"sync"
	"time"

	"math"

	"memcnn/internal/bench"
	"memcnn/internal/frameworks"
	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/layout"
	"memcnn/internal/network"
	"memcnn/internal/obs"
	memruntime "memcnn/internal/runtime"
	"memcnn/internal/runtime/replica"
	"memcnn/internal/runtime/train"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

func main() {
	var (
		networkName = flag.String("network", "all", "network to price: LeNet, Cifar10, AlexNet, ZFNet, VGG or 'all'")
		deviceName  = flag.String("device", "titanblack", "GPU model: titanblack or titanx")
		thresholds  = flag.String("thresholds", "paper", "layout thresholds: 'paper' or 'calibrated'")
		detail      = flag.Bool("detail", false, "print the per-layer breakdown for each planner")
		runtimeView = flag.Bool("runtime", false, "compile each network with internal/runtime and report its static memory plan")
		execute     = flag.Bool("exec", false, "with -runtime: execute the compiled programs and measure imgs/sec (small networks only unless -network selects one)")
		selectAlgs  = flag.Bool("select", true, "with -runtime: select the convolution layout and algorithm per layer (direct, im2col+GEMM or FFT)")
		probe       = flag.Bool("probe", false, "with -runtime -select: pick each conv algorithm by timing every production kernel instead of the analytic heuristic")
		devices     = flag.Int("devices", 1, "with -runtime: shard each program across N simulated devices and report the per-stage breakdown")
		replicas    = flag.Int("replicas", 1, "with -runtime: replicate each program across N devices and report the throughput-weighted batch split")
		replicaDevs = flag.String("replica-devices", "", "with -replicas: comma-separated replica hardware (titanblack, titanx or cpu), cycled; default titanblack")
		chaosSeed   = flag.Uint64("chaos", 0, "with -replicas and -exec: soak the replica group under a seeded fault schedule (one replica dies permanently) and record the failover counters (0 = no chaos)")
		trainMode   = flag.Bool("train", false, "compile each network for training (forward+loss+backward+SGD) and report the planned footprint with and without recompute checkpointing; with -exec also run sanity training steps on the cheap networks (implies -runtime)")
		jsonPath    = flag.String("json", "", "with -runtime: write per-network latency/alloc stats to this file as JSON")
		tracePath   = flag.String("trace", "", "with -runtime -exec: write a Chrome trace (chrome://tracing / Perfetto) of the quantile runs to this file")
	)
	flag.Parse()
	if *trainMode {
		*runtimeView = true
	}

	dev := gpusim.TitanBlack()
	if strings.EqualFold(*deviceName, "titanx") {
		dev = gpusim.TitanX()
	}
	th := layout.TitanBlackThresholds()
	if strings.Contains(dev.Name, "Titan X") {
		th = layout.TitanXThresholds()
	}
	if strings.EqualFold(*thresholds, "calibrated") {
		th = layout.Calibrate(dev)
	}
	fmt.Printf("device: %s\nlayout thresholds: %v\n\n", dev.Name, th)

	if *runtimeView {
		opts := memruntime.Options{ConvAlgorithms: *selectAlgs, Probe: *probe}
		rc := replicaConfig{count: *replicas, spec: *replicaDevs, chaosSeed: *chaosSeed}
		if err := runtimeReport(dev, th, *networkName, *execute, opts, *devices, rc, *trainMode, *jsonPath, *tracePath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if strings.EqualFold(*networkName, "all") {
		_, table, err := bench.Figure14(dev, th)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(table)
		if !*detail {
			return
		}
	}

	nets, err := workloads.Networks()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	targets := workloads.NetworkOrder
	if !strings.EqualFold(*networkName, "all") {
		net, ok := nets[*networkName]
		if !ok {
			fmt.Fprintf(os.Stderr, "netbench: unknown network %q\n", *networkName)
			os.Exit(2)
		}
		targets = []string{net.Name}
	}

	for _, name := range targets {
		net := nets[name]
		fmt.Printf("== %s (batch %d, %d layers) ==\n", net.Name, net.Batch, len(net.Layers))
		for _, planner := range frameworks.All(th) {
			plan, err := planner.Plan(dev, net)
			if err != nil {
				fmt.Fprintf(os.Stderr, "netbench: %s on %s: %v\n", planner.Name(), name, err)
				os.Exit(1)
			}
			est, err := plan.Estimate()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-14s %10.0f us  (%d layout transforms, %.0f us in transforms)\n",
				planner.Name(), est.TotalUS, plan.TransformCount(), est.TransformUS)
			if *detail {
				for _, lt := range est.PerLayer {
					fmt.Printf("    %-12s %-5s %10.1f us", lt.Name, lt.Layout, lt.TimeUS)
					if lt.TransformUS > 0 {
						fmt.Printf("  (+%.1f us transform)", lt.TransformUS)
					}
					fmt.Println()
				}
			}
		}
		fmt.Println()
	}
}

// convChoiceJSON is the machine-readable record of one conv op's joint
// (layout, algorithm) choice.
type convChoiceJSON struct {
	Layer          string `json:"layer"`
	Algorithm      string `json:"algorithm"`
	Layout         string `json:"layout"`
	WorkspaceBytes int64  `json:"workspace_bytes,omitempty"`
}

// stageJSON is the machine-readable record of one pipeline stage under
// -devices.
type stageJSON struct {
	Stage           int     `json:"stage"`
	Device          string  `json:"device"`
	Ops             int     `json:"ops"`
	ArenaBytes      int64   `json:"arena_bytes"`
	TransferInBytes int64   `json:"transfer_in_bytes"`
	ModeledUS       float64 `json:"modeled_us"`
	MeasuredUS      float64 `json:"measured_us,omitempty"`
}

// replicaJSON is the machine-readable record of one replica under -replicas.
type replicaJSON struct {
	Replica    int     `json:"replica"`
	Devices    string  `json:"devices"`
	Weight     float64 `json:"weight"`
	Share      int     `json:"share"`
	ScatterUS  float64 `json:"scatter_us,omitempty"`
	ModeledUS  float64 `json:"modeled_us,omitempty"`
	MeasuredUS float64 `json:"measured_us,omitempty"`
}

// netReport is the machine-readable per-network record written by -json; it
// is the seed of the BENCH_*.json perf trajectory.
type netReport struct {
	Network        string           `json:"network"`
	Batch          int              `json:"batch"`
	Planner        string           `json:"planner"`
	Ops            int              `json:"ops"`
	Buffers        int              `json:"buffers"`
	PeakBytes      int64            `json:"peak_bytes"`
	NaiveBytes     int64            `json:"naive_bytes"`
	ScratchBytes   int64            `json:"scratch_bytes"`
	SavedFraction  float64          `json:"saved_fraction"`
	ConvAlgorithms []convChoiceJSON `json:"conv_algorithms,omitempty"`
	// FFTLayers counts the convolution layers the joint sweep placed on the
	// frequency-domain path; benchtrend gates it against silent regressions.
	FFTLayers int `json:"fft_layers,omitempty"`

	// Sharding stats, present with -devices > 1.
	Devices         int         `json:"devices,omitempty"`
	SummedPeakBytes int64       `json:"summed_peak_bytes,omitempty"`
	TransferBytes   int64       `json:"transfer_bytes,omitempty"`
	Stages          []stageJSON `json:"stages,omitempty"`
	PipelinedUS     float64     `json:"pipelined_us,omitempty"`

	// Replication stats, present with -replicas > 1: the throughput-weighted
	// per-replica batch shares, the modeled full-batch latency through the
	// group (slowest replica, contended scatter included) against the
	// single-device modeled latency, and — with -exec — the measured
	// replicated latency, the measured speedup over the single executor and
	// the result-cache counters from a short duplicated-traffic serving
	// burst.
	Replicas               int           `json:"replicas,omitempty"`
	ReplicaRecords         []replicaJSON `json:"replica_shares,omitempty"`
	ReplicatedModeledUS    float64       `json:"replicated_modeled_us,omitempty"`
	SingleModeledUS        float64       `json:"single_modeled_us,omitempty"`
	ModeledReplicaSpeedup  float64       `json:"modeled_replica_speedup,omitempty"`
	ReplicatedUS           float64       `json:"replicated_us,omitempty"`
	MeasuredReplicaSpeedup float64       `json:"measured_replica_speedup,omitempty"`
	CacheHits              uint64        `json:"cache_hits,omitempty"`
	CacheMisses            uint64        `json:"cache_misses,omitempty"`
	CacheEvictions         uint64        `json:"cache_evictions,omitempty"`

	// Robustness counters from the serving burst.  In the un-faulted CI
	// baseline every one of these must be zero (omitted); benchtrend fails
	// the gate when a current run reports sheds or failovers without fault
	// injection.
	ServeShed      uint64 `json:"serve_shed,omitempty"`
	ServeExpired   uint64 `json:"serve_expired,omitempty"`
	ServeRetries   uint64 `json:"serve_retries,omitempty"`
	ServeFailovers uint64 `json:"serve_failovers,omitempty"`

	// Chaos soak record, present with -chaos: 200 batches served while every
	// replica device runs a seeded fault schedule and one replica dies
	// permanently.  Mismatches counts batches whose output was not
	// bit-identical to the single-device golden — it must be zero.
	ChaosSeed         uint64 `json:"chaos_seed,omitempty"`
	ChaosBatches      int    `json:"chaos_batches,omitempty"`
	ChaosMismatches   int    `json:"chaos_mismatches,omitempty"`
	ChaosRetries      uint64 `json:"chaos_retries,omitempty"`
	ChaosFailovers    uint64 `json:"chaos_failovers,omitempty"`
	ChaosReadmissions uint64 `json:"chaos_readmissions,omitempty"`
	ChaosUnhealthy    int    `json:"chaos_unhealthy,omitempty"`

	// Training stats, present with -train: the op count, planned arena peak
	// (under the auto recompute-vs-store policy — the footprint the trend gate
	// guards), the store-all planned peak, the keep-everything naive bytes,
	// the recompute op count the checkpointer traded in, the modeled step
	// latency on the selected hardware, and — with -exec — the measured
	// planned and naive step latencies plus the last loss of the sanity curve.
	TrainOps            int     `json:"train_ops,omitempty"`
	TrainPeakBytes      int64   `json:"train_peak_bytes,omitempty"`
	TrainStorePeakBytes int64   `json:"train_store_peak_bytes,omitempty"`
	TrainCkptPeakBytes  int64   `json:"train_ckpt_peak_bytes,omitempty"`
	TrainNaiveBytes     int64   `json:"train_naive_bytes,omitempty"`
	TrainRecomputeOps   int     `json:"train_recompute_ops,omitempty"`
	TrainModeledUS      float64 `json:"train_modeled_us,omitempty"`
	TrainUS             float64 `json:"train_us,omitempty"`
	TrainNaiveUS        float64 `json:"train_naive_us,omitempty"`
	TrainLoss           float64 `json:"train_loss,omitempty"`

	// Execution stats, present with -exec.  SelectedUS is the min over
	// samples (the trend-gated mean-path metric); P50US/P99US come from a
	// latency histogram over repeated selected-program runs and gate the
	// tail, which a min-only metric cannot see.
	NaiveUS            float64 `json:"naive_us,omitempty"`
	DirectUS           float64 `json:"direct_us,omitempty"`
	SelectedUS         float64 `json:"selected_us,omitempty"`
	P50US              float64 `json:"p50_us,omitempty"`
	P99US              float64 `json:"p99_us,omitempty"`
	SelectedImgsPerSec float64 `json:"selected_imgs_per_sec,omitempty"`
	SelectedAllocBytes uint64  `json:"selected_alloc_bytes,omitempty"`
}

// runtimeReport compiles every selected network through the planned-execution
// engine and prints its op count, static memory plan and the convolution
// algorithm chosen per layer; with exec it also measures functional
// throughput of the naive forward, the direct-only program and the
// algorithm-selected program.  By default execution covers only the
// sub-second networks (LeNet, Cifar10); selecting a single network with
// -network overrides that guard.  A non-empty jsonPath collects the reports
// into a JSON file.
// replicaConfig carries the -replicas/-replica-devices/-chaos flags.
type replicaConfig struct {
	count     int
	spec      string
	chaosSeed uint64
}

func runtimeReport(dev *gpusim.Device, th layout.Thresholds, networkName string, exec bool, opts memruntime.Options, devices int, rc replicaConfig, trainMode bool, jsonPath, tracePath string) error {
	nets, err := workloads.Networks()
	if err != nil {
		return err
	}
	targets := workloads.NetworkOrder
	if !strings.EqualFold(networkName, "all") {
		net, ok := nets[networkName]
		if !ok {
			return fmt.Errorf("netbench: unknown network %q", networkName)
		}
		targets = []string{net.Name}
	}
	planner := frameworks.Optimized(th)
	cheap := map[string]bool{"LeNet": true, "Cifar10": true}

	// One recorder is shared across every network's quantile runs so the
	// resulting Chrome trace shows them back to back on the engine lane.
	var traceRec *obs.Recorder
	if tracePath != "" {
		traceRec = obs.NewRecorder(0)
	}

	var reports []netReport
	fmt.Printf("%-8s %9s %8s %12s %12s %7s\n", "network", "ops", "buffers", "peak", "naive", "saved")
	for _, name := range targets {
		net := nets[name]
		plan, err := planner.Plan(dev, net)
		if err != nil {
			return fmt.Errorf("netbench: planning %s: %w", name, err)
		}
		prog, err := memruntime.CompileWithOptions(plan, opts)
		if err != nil {
			return fmt.Errorf("netbench: compiling %s: %w", name, err)
		}
		fmt.Printf("%-8s %9d %8d %9.2f MiB %9.2f MiB %6.0f%%\n",
			name, len(prog.Ops), len(prog.Buffers),
			float64(prog.Mem.PeakBytes())/(1<<20), float64(prog.NaiveBytes())/(1<<20),
			100*prog.Savings())
		rep := netReport{
			Network: name, Batch: net.Batch, Planner: plan.PlannerName,
			Ops: len(prog.Ops), Buffers: len(prog.Buffers),
			PeakBytes: prog.Mem.PeakBytes(), NaiveBytes: prog.NaiveBytes(),
			ScratchBytes: prog.ScratchBytes(), SavedFraction: prog.Savings(),
		}
		for _, ch := range prog.ConvChoices() {
			rep.ConvAlgorithms = append(rep.ConvAlgorithms, convChoiceJSON{
				Layer: ch.Layer, Algorithm: ch.Alg.String(), Layout: ch.Layout.String(),
				WorkspaceBytes: ch.WorkspaceBytes,
			})
			if ch.Alg == kernels.ConvAlgFFT {
				rep.FFTLayers++
			}
			if opts.ConvAlgorithms {
				line := fmt.Sprintf("         conv %-12s %-5s %s", ch.Layer, ch.Layout, ch.Alg)
				if ch.WorkspaceBytes > 0 {
					line += fmt.Sprintf(" (workspace %.2f MiB)", float64(ch.WorkspaceBytes)/(1<<20))
				}
				fmt.Println(line)
			}
		}
		if exec && (cheap[name] || len(targets) == 1) {
			direct := prog // without selection the program already is direct-only
			if opts.ConvAlgorithms {
				direct, err = memruntime.Compile(plan)
				if err != nil {
					return fmt.Errorf("netbench: compiling %s direct-only: %w", name, err)
				}
			}
			if err := timeExecution(net, direct, prog, traceRec, &rep); err != nil {
				return err
			}
		}
		if devices > 1 {
			if err := shardReport(dev, prog, devices, exec && (cheap[name] || len(targets) == 1), &rep); err != nil {
				return fmt.Errorf("netbench: sharding %s: %w", name, err)
			}
		}
		if rc.count > 1 {
			execHere := exec && (cheap[name] || len(targets) == 1)
			if err := replicaReport(prog, rc, execHere, &rep); err != nil {
				return fmt.Errorf("netbench: replicating %s: %w", name, err)
			}
			if rc.chaosSeed != 0 && execHere {
				if err := chaosSoak(prog, rc, &rep); err != nil {
					return fmt.Errorf("netbench: chaos soak on %s: %w", name, err)
				}
			}
		}
		if trainMode {
			// Training steps run the direct backward kernels on the CPU, so
			// measured execution defaults to LeNet only; selecting a single
			// network opts in explicitly.
			execTrain := exec && (name == "LeNet" || len(targets) == 1)
			if err := trainNetReport(dev, nets[name], execTrain, &rep); err != nil {
				return fmt.Errorf("netbench: training %s: %w", name, err)
			}
		}
		reports = append(reports, rep)
	}
	if trainMode {
		printTrainTable(reports)
		_, table := bench.TrainingStep(dev)
		fmt.Println(table)
	}
	if traceRec != nil {
		f, err := os.Create(tracePath)
		if err != nil {
			return fmt.Errorf("netbench: writing %s: %w", tracePath, err)
		}
		if err := traceRec.WriteChromeTrace(f, 0); err != nil {
			f.Close()
			return fmt.Errorf("netbench: writing %s: %w", tracePath, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("netbench: writing %s: %w", tracePath, err)
		}
		fmt.Printf("wrote %d trace span(s) to %s\n", traceRec.Len(), tracePath)
	}
	if jsonPath != "" {
		data, err := json.MarshalIndent(reports, "", "  ")
		if err != nil {
			return fmt.Errorf("netbench: encoding json: %w", err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("netbench: writing %s: %w", jsonPath, err)
		}
		fmt.Printf("wrote %d network report(s) to %s\n", len(reports), jsonPath)
	}
	return nil
}

// shardReport cuts the compiled program into n pipeline stages over simulated
// devices of the selected hardware model and prints the per-stage breakdown —
// op counts, arena and transfer bytes, modeled device latency — plus, with
// exec, the measured wall time per stage and for one pipelined batch.
func shardReport(hw *gpusim.Device, prog *memruntime.Program, n int, exec bool, rep *netReport) error {
	sp, err := memruntime.Shard(prog, n, memruntime.ShardOptions{
		Devices:   memruntime.SimDevices(n, hw),
		CostModel: hw,
	})
	if err != nil {
		return err
	}
	rep.Devices = len(sp.Stages)
	rep.SummedPeakBytes = sp.SummedPeakBytes()
	rep.TransferBytes = sp.TransferBytes()
	fmt.Printf("         sharded across %d device(s): summed arena %.2f MiB vs %.2f MiB single-device, %.2f MiB transfers/batch\n",
		len(sp.Stages), float64(sp.SummedPeakBytes())/(1<<20), float64(prog.Mem.PeakBytes())/(1<<20),
		float64(sp.TransferBytes())/(1<<20))

	// Per-stage steady-state wall time: the cold first batch pays the arena
	// and boundary-pool allocations, so it is measured but excluded from the
	// reported means.
	var warm, final []memruntime.PipelineStageStats
	if exec {
		pe := memruntime.NewPipelineExecutor(sp)
		defer pe.Close()
		in := tensor.Random(prog.InputShape(), tensor.NCHW, 1)
		out := tensor.New(prog.OutputShape(), tensor.NCHW)
		if err := pe.RunInto(in, out); err != nil { // cold batch: warm the stage arenas
			return err
		}
		warm = pe.StageStats()
		pipelined, _, err := minOverSamples(func() (time.Duration, uint64, error) {
			start := time.Now()
			err := pe.RunInto(in, out)
			return time.Since(start), 0, err
		})
		if err != nil {
			return err
		}
		rep.PipelinedUS = float64(pipelined.Microseconds())
		final = pe.StageStats()
	}
	for i, st := range sp.Stages {
		sd := st.Device.(*memruntime.SimDevice)
		modeled := sd.ModelProgramUS(st.Prog) + sd.TransferInUS(st.TransferInBytes)
		sj := stageJSON{
			Stage: st.Index, Device: st.Device.Name(), Ops: st.Ops(),
			ArenaBytes: st.Prog.Mem.PeakBytes(), TransferInBytes: st.TransferInBytes,
			ModeledUS: modeled,
		}
		line := fmt.Sprintf("           stage %d: %2d ops, arena %8.2f MiB, transfer %7.2f MiB, modeled %8.0f us",
			st.Index, st.Ops(), float64(sj.ArenaBytes)/(1<<20), float64(st.TransferInBytes)/(1<<20), modeled)
		if final != nil {
			sj.MeasuredUS = final[i].Delta(warm[i]).MeasuredUS
			line += fmt.Sprintf(", measured %8.0f us", sj.MeasuredUS)
		}
		fmt.Println(line)
		rep.Stages = append(rep.Stages, sj)
	}
	if exec {
		fmt.Printf("           pipelined batch: %.0f us measured end-to-end\n", rep.PipelinedUS)
	}
	return nil
}

// replicaReport replicates the compiled program across the configured device
// fleet and prints the throughput-weighted batch split and the modeled
// speedup over one device; with exec it also measures the replicated
// full-batch latency against the single executor and drives a short
// duplicated-traffic serving burst through the cached batching server so the
// JSON record carries cache hit/miss counters.
func replicaReport(prog *memruntime.Program, rc replicaConfig, exec bool, rep *netReport) error {
	fleet, err := replica.ParseDevices(rc.spec, rc.count, 1)
	if err != nil {
		return err
	}
	g, err := replica.NewGroup(prog, rc.count, replica.Config{Devices: fleet})
	if err != nil {
		return err
	}
	defer g.Close()

	rep.Replicas = g.Replicas()
	rep.ReplicatedModeledUS = g.ModeledBatchUS()
	if sd := memruntime.SimOf(fleet[0][0]); sd != nil {
		rep.SingleModeledUS = sd.ModelProgramUS(prog)
		if rep.ReplicatedModeledUS > 0 {
			rep.ModeledReplicaSpeedup = rep.SingleModeledUS / rep.ReplicatedModeledUS
		}
	}
	line := fmt.Sprintf("         replicated across %d device(s)", g.Replicas())
	if rep.ModeledReplicaSpeedup > 0 {
		line += fmt.Sprintf(": modeled %.0f us/batch vs %.0f us single-device (%.2fx)",
			rep.ReplicatedModeledUS, rep.SingleModeledUS, rep.ModeledReplicaSpeedup)
	}
	fmt.Println(line)

	if exec {
		in := tensor.Random(prog.InputShape(), tensor.NCHW, 1)
		out := tensor.New(prog.OutputShape(), tensor.NCHW)
		single := memruntime.NewExecutor(prog)
		if err := single.RunInto(in, out); err != nil { // warm the arena pool
			return err
		}
		singleTime, _, err := minOverSamples(func() (time.Duration, uint64, error) {
			start := time.Now()
			err := single.RunInto(in, out)
			return time.Since(start), 0, err
		})
		if err != nil {
			return err
		}
		if err := g.RunInto(in, out); err != nil { // warm every replica arena
			return err
		}
		replicated, _, err := minOverSamples(func() (time.Duration, uint64, error) {
			start := time.Now()
			err := g.RunInto(in, out)
			return time.Since(start), 0, err
		})
		if err != nil {
			return err
		}
		rep.ReplicatedUS = float64(replicated.Microseconds())
		if replicated > 0 {
			rep.MeasuredReplicaSpeedup = singleTime.Seconds() / replicated.Seconds()
		}
		fmt.Printf("           measured %.0f us/batch replicated vs %.0f us single-executor (%.2fx)\n",
			rep.ReplicatedUS, float64(singleTime.Microseconds()), rep.MeasuredReplicaSpeedup)
		if err := replicaCacheBurst(prog, g, rep); err != nil {
			return err
		}
	}
	for _, st := range g.ReplicaStats() {
		rj := replicaJSON{
			Replica: st.Replica, Devices: st.Devices, Weight: st.Weight, Share: st.Share,
			ScatterUS: st.ScatterUS, ModeledUS: st.ModeledUS,
		}
		line := fmt.Sprintf("           replica %d on %-38s %3d of %d images", st.Replica, st.Devices+":", st.Share, prog.InputShape().N)
		if st.ModeledUS > 0 {
			line += fmt.Sprintf(", modeled %8.0f us", st.ModeledUS)
		}
		if exec && st.Batches > 0 {
			rj.MeasuredUS = st.MeasuredUS
			line += fmt.Sprintf(", measured %8.0f us", st.MeasuredUS)
		}
		fmt.Println(line)
		rep.ReplicaRecords = append(rep.ReplicaRecords, rj)
	}
	return nil
}

// replicaCacheBurst serves a short burst of duplicated single-image traffic
// through the cached batching server fronting the replica group, recording
// the cache counters: 8 distinct images requested 64 times must execute at
// most 8 times (single-flight plus memoisation).
func replicaCacheBurst(prog *memruntime.Program, g *replica.Group, rep *netReport) error {
	srv, err := memruntime.NewServerWith(prog, g, memruntime.ServerConfig{
		Workers: 2, CacheEntries: 64,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	in := prog.InputShape()
	imgShape := tensor.Shape{N: 1, C: in.C, H: in.H, W: in.W}
	images := make([]*tensor.Tensor, 8)
	for i := range images {
		images[i] = tensor.Random(imgShape, tensor.NCHW, uint64(1000+i))
	}
	const requests = 64
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = srv.Infer(context.Background(), images[i%len(images)])
		}(i)
	}
	wg.Wait()
	st := srv.Stats()
	if cs := st.Cache; cs != nil {
		rep.CacheHits, rep.CacheMisses, rep.CacheEvictions = cs.Hits, cs.Misses, cs.Evictions
		fmt.Printf("           cache burst: %d requests -> %d hits, %d misses, %d evictions\n",
			requests, cs.Hits, cs.Misses, cs.Evictions)
	}
	rep.ServeShed, rep.ServeExpired = st.Shed, st.Expired
	if fs := st.Faults; fs != nil {
		rep.ServeRetries, rep.ServeFailovers = fs.Retries, fs.Failovers
	}
	return nil
}

// chaosSoak serves 200 full batches through a replica group whose devices all
// run a seeded deterministic fault schedule — and whose replica 1 dies
// permanently partway through — recording the retry/failover counters and
// checking every batch stays bit-identical to the single-device golden run.
func chaosSoak(prog *memruntime.Program, rc replicaConfig, rep *netReport) error {
	fleet, err := replica.ParseDevices(rc.spec, rc.count, 1)
	if err != nil {
		return err
	}
	for r := range fleet {
		for s, d := range fleet[r] {
			cfg := memruntime.FaultConfig{
				Seed:          rc.chaosSeed + uint64(r*len(fleet[r])+s),
				TransientRate: 0.002,
			}
			if r == 1 && s == 0 {
				cfg.KillAfterOps = int64(20 * len(prog.Ops))
			}
			fleet[r][s] = memruntime.WrapFault(d, cfg)
		}
	}
	g, err := replica.NewGroup(prog, rc.count, replica.Config{
		Devices:      fleet,
		RetryBackoff: memruntime.Backoff{Base: 100 * time.Microsecond, Max: time.Millisecond},
	})
	if err != nil {
		return err
	}
	defer g.Close()

	in := tensor.Random(prog.InputShape(), tensor.NCHW, rc.chaosSeed)
	golden := tensor.New(prog.OutputShape(), tensor.NCHW)
	if err := memruntime.NewExecutor(prog).RunInto(in, golden); err != nil {
		return err
	}
	out := tensor.New(prog.OutputShape(), tensor.NCHW)
	const soakBatches = 200
	mismatches := 0
	for i := 0; i < soakBatches; i++ {
		if err := g.RunInto(in, out); err != nil {
			return fmt.Errorf("chaos soak batch %d: %w", i, err)
		}
		for j := range golden.Data {
			if out.Data[j] != golden.Data[j] {
				mismatches++
				break
			}
		}
	}
	fs := g.FaultStats()
	rep.ChaosSeed, rep.ChaosBatches, rep.ChaosMismatches = rc.chaosSeed, soakBatches, mismatches
	rep.ChaosRetries, rep.ChaosFailovers = fs.Retries, fs.Failovers
	rep.ChaosReadmissions, rep.ChaosUnhealthy = fs.Readmissions, fs.UnhealthyReplicas
	fmt.Printf("           chaos soak (seed %d): %d batches, %d mismatches, %d retries, %d failovers, %d unhealthy\n",
		rc.chaosSeed, soakBatches, mismatches, fs.Retries, fs.Failovers, fs.UnhealthyReplicas)
	if mismatches > 0 {
		return fmt.Errorf("chaos soak: %d of %d batches differed from the single-device golden", mismatches, soakBatches)
	}
	return nil
}

// trainNetReport compiles the network's full training step (forward + loss +
// backward + SGD) with and without recompute checkpointing, records the
// planned footprints and the modeled step latency, and — when exec is set —
// measures planned and naive training steps while printing the loss curve.
func trainNetReport(hw *gpusim.Device, net *network.Network, exec bool, rep *netReport) error {
	store, err := train.CompileTraining(net, train.Options{Checkpoint: train.CheckpointOff})
	if err != nil {
		return err
	}
	ckpt, err := train.CompileTraining(net, train.Options{Checkpoint: train.CheckpointOn})
	if err != nil {
		return err
	}
	// The library's synthetic [-1,1) weights saturate the softmax into exact
	// one-hot rows, freezing the loss; rescaling the FC weights by
	// 1/sqrt(fan-in) (safe in place: unlike conv filters they have no packed
	// copy) and training gently keeps the sanity curve moving.  The learning
	// rate does not affect the memory plan.
	auto, err := train.CompileTraining(net, train.Options{SGD: train.SGD{LR: 1e-4}})
	if err != nil {
		return err
	}
	rep.TrainOps = len(auto.Ops)
	rep.TrainPeakBytes = auto.Mem.PeakBytes()
	rep.TrainStorePeakBytes = store.Mem.PeakBytes()
	rep.TrainCkptPeakBytes = ckpt.Mem.PeakBytes()
	rep.TrainNaiveBytes = store.NaiveBytes()
	rep.TrainRecomputeOps = ckpt.RecomputeOps
	rep.TrainModeledUS = memruntime.NewSimDevice("train", hw).ModelProgramUS(auto.Program)

	if !exec {
		return nil
	}
	for _, l := range net.Layers {
		if fc, ok := l.(*layers.FullyConnected); ok {
			w := fc.Weights()
			s := float32(1 / math.Sqrt(float64(fc.InDim)))
			for i := range w {
				w[i] *= s
			}
		}
	}
	planned, err := train.NewExecutor(auto)
	if err != nil {
		return err
	}
	naive, err := train.NewNaiveExecutor(store, memruntime.CPUDevice{})
	if err != nil {
		return err
	}
	images := tensor.Random(auto.InputShape(), tensor.NCHW, 1)
	labels := make([]int, auto.Batch)
	for i := range labels {
		labels[i] = i % auto.Classes
	}

	// One warm step pays the lazy filter generation, then a short loss curve
	// whose fastest step is the trend-gated latency.
	if _, err := planned.Step(images, labels); err != nil {
		return err
	}
	var losses []float64
	var best time.Duration
	for s := 0; s < latencySamples; s++ {
		start := time.Now()
		stats, err := planned.Step(images, labels)
		elapsed := time.Since(start)
		if err != nil {
			return err
		}
		losses = append(losses, stats.Loss)
		if s == 0 || elapsed < best {
			best = elapsed
		}
	}
	rep.TrainUS = float64(best.Microseconds())
	rep.TrainLoss = losses[len(losses)-1]

	if _, err := naive.Step(images, labels); err != nil {
		return err
	}
	naiveTime, _, err := minOverSamples(func() (time.Duration, uint64, error) {
		start := time.Now()
		_, err := naive.Step(images, labels)
		return time.Since(start), 0, err
	})
	if err != nil {
		return err
	}
	rep.TrainNaiveUS = float64(naiveTime.Microseconds())

	curve := ""
	for i, l := range losses {
		if i > 0 {
			curve += " -> "
		}
		curve += fmt.Sprintf("%.4f", l)
	}
	fmt.Printf("         training step: planned %.0f us vs naive %.0f us measured, modeled %.0f us; loss %s\n",
		rep.TrainUS, rep.TrainNaiveUS, rep.TrainModeledUS, curve)
	return nil
}

// printTrainTable prints the planned-vs-naive training footprint per network,
// with and without recompute checkpointing — the training counterpart of the
// inference savings table.
func printTrainTable(reports []netReport) {
	fmt.Printf("\ntraining memory (forward + loss + backward + SGD):\n")
	fmt.Printf("%-8s %6s %11s %11s %11s %10s %12s %11s\n",
		"network", "ops", "naive", "store", "ckpt", "recompute", "saved(store)", "saved(ckpt)")
	for _, r := range reports {
		if r.TrainOps == 0 {
			continue
		}
		naive := float64(r.TrainNaiveBytes)
		fmt.Printf("%-8s %6d %7.2f MiB %7.2f MiB %7.2f MiB %10d %11.0f%% %10.0f%%\n",
			r.Network, r.TrainOps,
			naive/(1<<20), float64(r.TrainStorePeakBytes)/(1<<20), float64(r.TrainCkptPeakBytes)/(1<<20),
			r.TrainRecomputeOps,
			100*(1-float64(r.TrainStorePeakBytes)/naive),
			100*(1-float64(r.TrainCkptPeakBytes)/naive))
	}
	fmt.Println()
}

// timedRun executes one warmed planned program and returns the elapsed time
// and the heap bytes allocated during the run.
func timedRun(exec *memruntime.Executor, in, out *tensor.Tensor) (time.Duration, uint64, error) {
	var before, after goruntime.MemStats
	goruntime.ReadMemStats(&before)
	start := time.Now()
	err := exec.RunInto(in, out)
	elapsed := time.Since(start)
	goruntime.ReadMemStats(&after)
	return elapsed, after.TotalAlloc - before.TotalAlloc, err
}

// latencySamples is the sample count for the metrics the CI trend gate
// consumes (naive_us, selected_us, pipelined_us): each is the minimum of N
// runs, which filters GC pauses and scheduler noise on shared runners.
const latencySamples = 3

// minOverSamples runs the measurement latencySamples times and returns the
// fastest elapsed time together with that run's companion value.
func minOverSamples(run func() (time.Duration, uint64, error)) (time.Duration, uint64, error) {
	var best time.Duration
	var bestV uint64
	for s := 0; s < latencySamples; s++ {
		elapsed, v, err := run()
		if err != nil {
			return 0, 0, err
		}
		if s == 0 || elapsed < best {
			best, bestV = elapsed, v
		}
	}
	return best, bestV, nil
}

// quantileRuns is how many extra selected-program runs feed the p50/p99
// latency histogram after the gated min-over-samples timing.
const quantileRuns = 16

// traceLane hands each network its own trace lane so the -trace output shows
// one named track per network in chrome://tracing.
var traceLane = memruntime.LaneEngine

// timeExecution times the naive forward, the direct-only program and the
// algorithm-selected program (after warming the arena pools) and reports
// their functional throughput; the trend-gated metrics take the minimum of
// latencySamples runs.  When direct and selected are the same program
// (selection disabled) the planned execution alone is timed.  A further
// quantileRuns passes feed a latency histogram for p50/p99 — recorded as op
// and run spans into traceRec when non-nil.
func timeExecution(net *network.Network, direct, selected *memruntime.Program, traceRec *obs.Recorder, rep *netReport) error {
	in := tensor.Random(net.InputShape(), tensor.NCHW, 1)
	naive, _, err := minOverSamples(func() (time.Duration, uint64, error) {
		start := time.Now()
		_, err := net.Forward(in)
		return time.Since(start), 0, err
	})
	if err != nil {
		return fmt.Errorf("netbench: %s naive forward: %w", net.Name, err)
	}

	out := tensor.New(selected.OutputShape(), tensor.NCHW)
	selectedExec := memruntime.NewExecutor(selected)
	if err := selectedExec.RunInto(in, out); err != nil { // warm the arena pool
		return fmt.Errorf("netbench: %s planned run: %w", net.Name, err)
	}
	selectedTime, allocBytes, err := minOverSamples(func() (time.Duration, uint64, error) {
		return timedRun(selectedExec, in, out)
	})
	if err != nil {
		return fmt.Errorf("netbench: %s planned run: %w", net.Name, err)
	}

	// Tail quantiles come from extra runs AFTER the gated min-over-samples
	// timing, through an instrumented executor when -trace is set — so the
	// span recording can never perturb the trend-gated SelectedUS number.
	if traceRec != nil {
		lane := traceLane
		traceLane++
		traceRec.SetLane(lane, "engine ("+net.Name+")")
		selectedExec.Instrument(memruntime.Observer{Trace: traceRec}, lane)
	}
	qh := obs.NewHistogram()
	for i := 0; i < quantileRuns; i++ {
		start := time.Now()
		if err := selectedExec.RunInto(in, out); err != nil {
			return fmt.Errorf("netbench: %s quantile run: %w", net.Name, err)
		}
		qh.Observe(float64(time.Since(start)) / 1e3)
	}

	batch := float64(net.Batch)
	rep.NaiveUS = float64(naive.Microseconds())
	rep.SelectedUS = float64(selectedTime.Microseconds())
	rep.P50US = qh.Quantile(0.50)
	rep.P99US = qh.Quantile(0.99)
	rep.SelectedImgsPerSec = batch / selectedTime.Seconds()
	rep.SelectedAllocBytes = allocBytes

	if direct == selected {
		fmt.Printf("         naive %8.1f | planned %8.1f imgs/sec (%.2fx, %d alloc B)\n",
			batch/naive.Seconds(), batch/selectedTime.Seconds(),
			naive.Seconds()/selectedTime.Seconds(), allocBytes)
		rep.DirectUS = rep.SelectedUS
		return nil
	}

	directExec := memruntime.NewExecutor(direct)
	if err := directExec.RunInto(in, out); err != nil {
		return fmt.Errorf("netbench: %s direct run: %w", net.Name, err)
	}
	directTime, _, err := timedRun(directExec, in, out)
	if err != nil {
		return fmt.Errorf("netbench: %s direct run: %w", net.Name, err)
	}
	fmt.Printf("         naive %8.1f | direct %8.1f | selected %8.1f imgs/sec (%.2fx vs direct, %d alloc B)\n",
		batch/naive.Seconds(), batch/directTime.Seconds(), batch/selectedTime.Seconds(),
		directTime.Seconds()/selectedTime.Seconds(), allocBytes)
	rep.DirectUS = float64(directTime.Microseconds())
	return nil
}
