// Command netbench runs the whole-network comparison of the paper (Fig. 14)
// and, optionally, the per-layer breakdown of a single network under every
// library policy (the Fig. 15 view for AlexNet).
//
// The -runtime flag switches to the planned-execution view: every network is
// compiled through internal/runtime and its static memory plan is reported
// (arena peak vs. the naive all-buffers-live footprint); -exec additionally
// executes the compiled programs functionally on the CPU and compares their
// throughput against the naive Network.Forward.
//
// Usage:
//
//	netbench                         # Fig. 14 on the Titan Black model
//	netbench -network AlexNet -detail
//	netbench -device titanx -thresholds calibrated
//	netbench -runtime                # memory plans for every network
//	netbench -runtime -exec          # plus measured throughput (small nets)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"memcnn/internal/bench"
	"memcnn/internal/frameworks"
	"memcnn/internal/gpusim"
	"memcnn/internal/layout"
	"memcnn/internal/network"
	memruntime "memcnn/internal/runtime"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

func main() {
	var (
		networkName = flag.String("network", "all", "network to price: LeNet, Cifar10, AlexNet, ZFNet, VGG or 'all'")
		deviceName  = flag.String("device", "titanblack", "GPU model: titanblack or titanx")
		thresholds  = flag.String("thresholds", "paper", "layout thresholds: 'paper' or 'calibrated'")
		detail      = flag.Bool("detail", false, "print the per-layer breakdown for each planner")
		runtimeView = flag.Bool("runtime", false, "compile each network with internal/runtime and report its static memory plan")
		execute     = flag.Bool("exec", false, "with -runtime: execute the compiled programs and measure imgs/sec (small networks only unless -network selects one)")
	)
	flag.Parse()

	dev := gpusim.TitanBlack()
	if strings.EqualFold(*deviceName, "titanx") {
		dev = gpusim.TitanX()
	}
	th := layout.TitanBlackThresholds()
	if strings.Contains(dev.Name, "Titan X") {
		th = layout.TitanXThresholds()
	}
	if strings.EqualFold(*thresholds, "calibrated") {
		th = layout.Calibrate(dev)
	}
	fmt.Printf("device: %s\nlayout thresholds: %v\n\n", dev.Name, th)

	if *runtimeView {
		if err := runtimeReport(dev, th, *networkName, *execute); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if strings.EqualFold(*networkName, "all") {
		_, table, err := bench.Figure14(dev, th)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(table)
		if !*detail {
			return
		}
	}

	nets, err := workloads.Networks()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	targets := workloads.NetworkOrder
	if !strings.EqualFold(*networkName, "all") {
		net, ok := nets[*networkName]
		if !ok {
			fmt.Fprintf(os.Stderr, "netbench: unknown network %q\n", *networkName)
			os.Exit(2)
		}
		targets = []string{net.Name}
	}

	for _, name := range targets {
		net := nets[name]
		fmt.Printf("== %s (batch %d, %d layers) ==\n", net.Name, net.Batch, len(net.Layers))
		for _, planner := range frameworks.All(th) {
			plan, err := planner.Plan(dev, net)
			if err != nil {
				fmt.Fprintf(os.Stderr, "netbench: %s on %s: %v\n", planner.Name(), name, err)
				os.Exit(1)
			}
			est, err := plan.Estimate()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-14s %10.0f us  (%d layout transforms, %.0f us in transforms)\n",
				planner.Name(), est.TotalUS, plan.TransformCount(), est.TransformUS)
			if *detail {
				for _, lt := range est.PerLayer {
					fmt.Printf("    %-12s %-5s %10.1f us", lt.Name, lt.Layout, lt.TimeUS)
					if lt.TransformUS > 0 {
						fmt.Printf("  (+%.1f us transform)", lt.TransformUS)
					}
					fmt.Println()
				}
			}
		}
		fmt.Println()
	}
}

// runtimeReport compiles every selected network through the planned-execution
// engine and prints its op count and static memory plan; with exec it also
// measures functional throughput against the naive Network.Forward.  By
// default execution covers only the sub-second networks (LeNet, Cifar10);
// selecting a single network with -network overrides that guard.
func runtimeReport(dev *gpusim.Device, th layout.Thresholds, networkName string, exec bool) error {
	nets, err := workloads.Networks()
	if err != nil {
		return err
	}
	targets := workloads.NetworkOrder
	if !strings.EqualFold(networkName, "all") {
		net, ok := nets[networkName]
		if !ok {
			return fmt.Errorf("netbench: unknown network %q", networkName)
		}
		targets = []string{net.Name}
	}
	planner := frameworks.Optimized(th)
	cheap := map[string]bool{"LeNet": true, "Cifar10": true}

	fmt.Printf("%-8s %9s %8s %12s %12s %7s\n", "network", "ops", "buffers", "peak", "naive", "saved")
	for _, name := range targets {
		net := nets[name]
		plan, err := planner.Plan(dev, net)
		if err != nil {
			return fmt.Errorf("netbench: planning %s: %w", name, err)
		}
		prog, err := memruntime.Compile(plan)
		if err != nil {
			return fmt.Errorf("netbench: compiling %s: %w", name, err)
		}
		fmt.Printf("%-8s %9d %8d %9.2f MiB %9.2f MiB %6.0f%%\n",
			name, len(prog.Ops), len(prog.Buffers),
			float64(prog.Mem.PeakBytes())/(1<<20), float64(prog.NaiveBytes())/(1<<20),
			100*prog.Savings())
		if exec && (cheap[name] || len(targets) == 1) {
			if err := timeExecution(net, prog); err != nil {
				return err
			}
		}
	}
	return nil
}

// timeExecution runs the naive forward and the compiled program once each and
// reports their functional throughput.
func timeExecution(net *network.Network, prog *memruntime.Program) error {
	in := tensor.Random(net.InputShape(), tensor.NCHW, 1)
	start := time.Now()
	if _, err := net.Forward(in); err != nil {
		return fmt.Errorf("netbench: %s naive forward: %w", net.Name, err)
	}
	naive := time.Since(start)

	executor := memruntime.NewExecutor(prog)
	out := tensor.New(prog.OutputShape(), tensor.NCHW)
	if err := executor.RunInto(in, out); err != nil { // warm the arena pool
		return fmt.Errorf("netbench: %s planned run: %w", net.Name, err)
	}
	start = time.Now()
	if err := executor.RunInto(in, out); err != nil {
		return fmt.Errorf("netbench: %s planned run: %w", net.Name, err)
	}
	planned := time.Since(start)

	batch := float64(net.Batch)
	fmt.Printf("         naive %8.1f imgs/sec | planned %8.1f imgs/sec (%.2fx)\n",
		batch/naive.Seconds(), batch/planned.Seconds(), naive.Seconds()/planned.Seconds())
	return nil
}
