// Command netbench runs the whole-network comparison of the paper (Fig. 14)
// and, optionally, the per-layer breakdown of a single network under every
// library policy (the Fig. 15 view for AlexNet).
//
// Usage:
//
//	netbench                         # Fig. 14 on the Titan Black model
//	netbench -network AlexNet -detail
//	netbench -device titanx -thresholds calibrated
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"memcnn/internal/bench"
	"memcnn/internal/frameworks"
	"memcnn/internal/gpusim"
	"memcnn/internal/layout"
	"memcnn/internal/workloads"
)

func main() {
	var (
		networkName = flag.String("network", "all", "network to price: LeNet, Cifar10, AlexNet, ZFNet, VGG or 'all'")
		deviceName  = flag.String("device", "titanblack", "GPU model: titanblack or titanx")
		thresholds  = flag.String("thresholds", "paper", "layout thresholds: 'paper' or 'calibrated'")
		detail      = flag.Bool("detail", false, "print the per-layer breakdown for each planner")
	)
	flag.Parse()

	dev := gpusim.TitanBlack()
	if strings.EqualFold(*deviceName, "titanx") {
		dev = gpusim.TitanX()
	}
	th := layout.TitanBlackThresholds()
	if strings.Contains(dev.Name, "Titan X") {
		th = layout.TitanXThresholds()
	}
	if strings.EqualFold(*thresholds, "calibrated") {
		th = layout.Calibrate(dev)
	}
	fmt.Printf("device: %s\nlayout thresholds: %v\n\n", dev.Name, th)

	if strings.EqualFold(*networkName, "all") {
		_, table, err := bench.Figure14(dev, th)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(table)
		if !*detail {
			return
		}
	}

	nets, err := workloads.Networks()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	targets := workloads.NetworkOrder
	if !strings.EqualFold(*networkName, "all") {
		net, ok := nets[*networkName]
		if !ok {
			fmt.Fprintf(os.Stderr, "netbench: unknown network %q\n", *networkName)
			os.Exit(2)
		}
		targets = []string{net.Name}
	}

	for _, name := range targets {
		net := nets[name]
		fmt.Printf("== %s (batch %d, %d layers) ==\n", net.Name, net.Batch, len(net.Layers))
		for _, planner := range frameworks.All(th) {
			plan, err := planner.Plan(dev, net)
			if err != nil {
				fmt.Fprintf(os.Stderr, "netbench: %s on %s: %v\n", planner.Name(), name, err)
				os.Exit(1)
			}
			est, err := plan.Estimate()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("%-14s %10.0f us  (%d layout transforms, %.0f us in transforms)\n",
				planner.Name(), est.TotalUS, plan.TransformCount(), est.TransformUS)
			if *detail {
				for _, lt := range est.PerLayer {
					fmt.Printf("    %-12s %-5s %10.1f us", lt.Name, lt.Layout, lt.TimeUS)
					if lt.TransformUS > 0 {
						fmt.Printf("  (+%.1f us transform)", lt.TransformUS)
					}
					fmt.Println()
				}
			}
		}
		fmt.Println()
	}
}
