// Command layoutplan prints the execution plan the memory optimiser chooses
// for a network: the data layout of every layer, the kernel implementation,
// and where layout transformations are inserted — the view a developer would
// use to understand what the automatic layout support is doing to their
// model (Section IV.D).
//
// The -algs flag adds the joint (layout, algorithm) sweep per convolution
// layer: every production algorithm priced in its natural layout — including
// the layout-switch charge from the planner's layout — through the same
// internal/layout candidate rows the compiler decides from, so the tool and
// CompileWithOptions can never disagree.
//
// Usage:
//
//	layoutplan -network AlexNet
//	layoutplan -network AlexNet -algs
//	layoutplan -network VGG -device titanx -thresholds calibrated
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"memcnn/internal/autotune"
	"memcnn/internal/core"
	"memcnn/internal/gpusim"
	"memcnn/internal/layers"
	"memcnn/internal/layout"
	"memcnn/internal/netconfig"
	"memcnn/internal/network"
	"memcnn/internal/workloads"
)

func main() {
	var (
		networkName = flag.String("network", "AlexNet", "network to plan: LeNet, Cifar10, AlexNet, ZFNet, VGG")
		configPath  = flag.String("config", "", "JSON network configuration file (overrides -network)")
		annotate    = flag.Bool("annotate", false, "with -config: print the configuration re-annotated with the chosen layouts")
		deviceName  = flag.String("device", "titanblack", "GPU model: titanblack or titanx")
		thresholds  = flag.String("thresholds", "paper", "layout thresholds: 'paper' or 'calibrated'")
		algSweep    = flag.Bool("algs", false, "print the compiler's joint (layout, algorithm) sweep per convolution layer")
	)
	flag.Parse()

	dev := gpusim.TitanBlack()
	if strings.EqualFold(*deviceName, "titanx") {
		dev = gpusim.TitanX()
	}
	th := layout.TitanBlackThresholds()
	if strings.Contains(dev.Name, "Titan X") {
		th = layout.TitanXThresholds()
	}
	if strings.EqualFold(*thresholds, "calibrated") {
		th = layout.Calibrate(dev)
	}

	var net *network.Network
	var spec *netconfig.NetworkSpec
	if *configPath != "" {
		data, err := os.ReadFile(*configPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		spec, err = netconfig.Parse(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		net, err = spec.Build()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		nets, err := workloads.Networks()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var ok bool
		net, ok = nets[*networkName]
		if !ok {
			fmt.Fprintf(os.Stderr, "layoutplan: unknown network %q\n", *networkName)
			os.Exit(2)
		}
	}

	optimizer := core.NewOptimizer(core.Options{Thresholds: th})
	plan, err := optimizer.Plan(dev, net)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	est, err := plan.Estimate()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("network: %s (batch %d)\ndevice: %s\nthresholds: %v\n\n", net.Name, net.Batch, dev.Name, th)
	fmt.Printf("%-12s %-6s %-28s %-12s %s\n", "layer", "layout", "implementation", "time (us)", "transform")
	for i, pl := range plan.Layers {
		impl := describeImpl(pl)
		transform := "-"
		if pl.Transform != nil {
			transform = fmt.Sprintf("%v before layer (%.1f us)", pl.TransformMethod, est.PerLayer[i].TransformUS)
		}
		fmt.Printf("%-12s %-6s %-28s %-12.1f %s\n",
			pl.Layer.Name(), pl.Layout, impl, est.PerLayer[i].TimeUS, transform)
	}
	fmt.Printf("\ntotal: %.0f us (%.0f us, %.1f%% spent in %d layout transformations)\n",
		est.TotalUS, est.TransformUS, 100*est.TransformUS/est.TotalUS, plan.TransformCount())

	if *algSweep {
		printAlgSweep(dev, plan)
	}

	if spec != nil && *annotate {
		spec.Annotate(plan)
		data, err := spec.Marshal()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nannotated configuration:\n%s\n", data)
	}
}

// printAlgSweep prints, for every convolution layer, the priced candidate
// rows of the compiler's joint sweep (layout.ConvAlgCandidates) and the
// decision CompileWithOptions would take (layout.JointConvChoice over the
// autotune heuristic's base algorithm).  Both come from internal/layout, so
// the printed numbers are exactly the compiler's.
func printAlgSweep(dev *gpusim.Device, plan *network.ExecutionPlan) {
	fmt.Printf("\njoint (layout, algorithm) sweep:\n")
	fmt.Printf("%-12s %-14s %-6s %12s %14s %s\n", "layer", "algorithm", "layout", "kernel (us)", "switch (us)", "")
	for _, pl := range plan.Layers {
		conv, ok := pl.Layer.(*layers.Conv)
		if !ok {
			continue
		}
		cfg := conv.Config()
		base := autotune.SelectConvAlgorithm(cfg)
		choice := layout.JointConvChoice(dev, cfg, pl.Layout, base)
		for _, cand := range layout.ConvAlgCandidates(dev, cfg, pl.Layout) {
			mark := ""
			if cand.Alg == choice.Alg && cand.Layout == choice.Layout {
				mark = "<- chosen"
			} else if cand.Alg == base {
				mark = "(heuristic base)"
			}
			timing := fmt.Sprintf("%12.1f %14.1f", cand.TimeUS, cand.TransformUS)
			if cand.OOM {
				timing = fmt.Sprintf("%12s %14.1f", "OOM", cand.TransformUS)
			}
			fmt.Printf("%-12s %-14s %-6s %s %s\n", conv.Name(), cand.Alg, cand.Layout, timing, mark)
		}
	}
}

// describeImpl summarises the implementation a planned layer will use.
func describeImpl(pl network.PlannedLayer) string {
	switch pl.Layer.(type) {
	case *layers.Conv:
		return "conv: " + pl.Options.Conv.String()
	case *layers.Pool:
		s := "pool: " + pl.Options.Pool.String()
		if pl.Options.Pool == layers.PoolOptimized {
			s += fmt.Sprintf(" (%dx%d expansion)", pl.Options.PoolExpansion.H, pl.Options.PoolExpansion.W)
		}
		return s
	case *layers.Softmax:
		return "softmax: " + pl.Options.Softmax.String()
	case *layers.FullyConnected:
		return "fc: sgemm"
	default:
		return "elementwise"
	}
}
