// Command benchtrend guards the BENCH_*.json perf trajectory: it compares a
// freshly measured `netbench -runtime -exec -json` record set against a
// committed baseline and fails (exit 1) when any network's latency regressed
// beyond the allowed ratio.
//
// Absolute wall-clock numbers are machine-dependent — the committed baseline
// and a CI runner differ in core count and clock — so the gate compares
// machine-normalised metrics: each run's planned (selected, pipelined and
// replicated-serving) latency divided by the same run's naive-forward
// latency, both measured seconds apart on the same host.
// A planned executor that genuinely regresses (lost kernel, algorithm
// misselection, allocation creep) moves that ratio wherever it runs; a slower
// runner moves numerator and denominator together and cancels out.  Absolute
// latencies are still printed for the trajectory record.
//
// Usage:
//
//	benchtrend -baseline BENCH_baseline.json -current BENCH_ci.json
//	benchtrend -baseline BENCH_baseline.json -current BENCH_ci.json -max-ratio 1.5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// record is the slice of a netbench netReport the trend check consumes.
type record struct {
	Network        string  `json:"network"`
	NaiveUS        float64 `json:"naive_us"`
	SelectedUS     float64 `json:"selected_us"`
	P99US          float64 `json:"p99_us"`
	PipelinedUS    float64 `json:"pipelined_us"`
	ReplicatedUS   float64 `json:"replicated_us"`
	PeakBytes      int64   `json:"peak_bytes"`
	TrainUS        float64 `json:"train_us"`
	TrainNaiveUS   float64 `json:"train_naive_us"`
	TrainPeakBytes int64   `json:"train_peak_bytes"`
	ServeShed      uint64  `json:"serve_shed"`
	ServeFailovers uint64  `json:"serve_failovers"`
	ChaosMismatch  int     `json:"chaos_mismatches"`
	FFTLayers      int     `json:"fft_layers"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "committed baseline record set")
		currentPath  = flag.String("current", "", "freshly measured record set to check")
		maxRatio     = flag.Float64("max-ratio", 2.0, "fail when a normalised latency metric exceeds its baseline by this factor")
	)
	flag.Parse()
	if *currentPath == "" {
		fail(fmt.Errorf("benchtrend: -current is required"))
	}
	baseline, err := load(*baselinePath)
	if err != nil {
		fail(err)
	}
	current, err := load(*currentPath)
	if err != nil {
		fail(err)
	}

	// The gate iterates the BASELINE: a network or metric present in the
	// baseline but absent from the current run fails closed — otherwise a
	// drifted CI invocation (a dropped flag, a renamed network) would stop
	// guarding a metric while the check stays green.
	regressions := 0
	checked := 0
	for name, base := range baseline {
		cur, ok := current[name]
		if !ok {
			fmt.Printf("%-10s MISSING from current run\n", name)
			regressions++
			continue
		}
		for _, m := range []struct {
			label          string
			baseV, curV    float64
			baseNorm, curN float64
		}{
			{"selected_us", base.SelectedUS, cur.SelectedUS, base.NaiveUS, cur.NaiveUS},
			// p99 (from the histogram over repeated selected-program runs)
			// gates tail latency, which a mean-only gate lets regress: a
			// lock convoy or allocation spike that hits one run in ten moves
			// p99 long before it moves the min-over-samples mean.
			{"p99_us", base.P99US, cur.P99US, base.NaiveUS, cur.NaiveUS},
			{"pipelined_us", base.PipelinedUS, cur.PipelinedUS, base.NaiveUS, cur.NaiveUS},
			{"replicated_us", base.ReplicatedUS, cur.ReplicatedUS, base.NaiveUS, cur.NaiveUS},
			{"train_us", base.TrainUS, cur.TrainUS, base.TrainNaiveUS, cur.TrainNaiveUS},
		} {
			if m.baseV <= 0 || m.baseNorm <= 0 {
				continue // metric not in the baseline: nothing to guard
			}
			if m.curV <= 0 || m.curN <= 0 {
				fmt.Printf("%-10s %-13s MISSING from current run\n", name, m.label)
				regressions++
				continue
			}
			checked++
			baseRel := m.baseV / m.baseNorm
			curRel := m.curV / m.curN
			ratio := curRel / baseRel
			status := "ok"
			if ratio > *maxRatio {
				status = "REGRESSION"
				regressions++
			}
			fmt.Printf("%-10s %-13s vs naive %.3f -> %.3f (%.2fx)  [abs %.0f -> %.0f us]  %s\n",
				name, m.label, baseRel, curRel, ratio, m.baseV, m.curV, status)
		}
		// CI's netbench run is un-faulted, so any shed request, failover or
		// chaos mismatch in the CURRENT record is a robustness regression —
		// the serving path dropped work without a fault schedule to blame.
		for _, c := range []struct {
			label string
			n     uint64
		}{
			{"serve_shed", cur.ServeShed},
			{"serve_failovers", cur.ServeFailovers},
			{"chaos_mismatches", uint64(cur.ChaosMismatch)},
		} {
			if c.n > 0 {
				fmt.Printf("%-10s %-13s %d in un-faulted run  REGRESSION\n", name, c.label, c.n)
				regressions++
			}
		}
		// The joint sweep's FFT placements are deterministic compiler output:
		// fewer frequency-domain layers than the baseline means a selection
		// regression (threshold drift, a broken cost model) silently moved
		// layers back to the spatial path.
		if base.FFTLayers > 0 {
			checked++
			if cur.FFTLayers < base.FFTLayers {
				fmt.Printf("%-10s %-13s %d -> %d layers  REGRESSION: FFT convolutions fell off the selected path\n",
					name, "fft_layers", base.FFTLayers, cur.FFTLayers)
				regressions++
			} else {
				fmt.Printf("%-10s %-13s %d -> %d layers  ok\n", name, "fft_layers", base.FFTLayers, cur.FFTLayers)
			}
		}
		if base.PeakBytes > 0 && cur.PeakBytes > base.PeakBytes {
			fmt.Printf("%-10s %-13s %10d -> %10d B  note: memory plan grew\n",
				name, "peak_bytes", base.PeakBytes, cur.PeakBytes)
		}
		// The planned training footprint is deterministic planner output —
		// machine-independent — so it is a hard gate, not a note: growth means
		// the joint-graph planner or the checkpointing policy regressed.
		if base.TrainPeakBytes > 0 {
			checked++
			switch {
			case cur.TrainPeakBytes == 0:
				fmt.Printf("%-10s %-13s MISSING from current run\n", name, "train_peak_bytes")
				regressions++
			case cur.TrainPeakBytes > base.TrainPeakBytes:
				fmt.Printf("%-10s %-13s %10d -> %10d B  REGRESSION: planned training footprint grew\n",
					name, "train_peak_bytes", base.TrainPeakBytes, cur.TrainPeakBytes)
				regressions++
			default:
				fmt.Printf("%-10s %-13s %10d -> %10d B  ok\n",
					name, "train_peak_bytes", base.TrainPeakBytes, cur.TrainPeakBytes)
			}
		}
	}
	for name := range current {
		if _, ok := baseline[name]; !ok {
			fmt.Printf("%-10s new network, no baseline\n", name)
		}
	}
	if checked == 0 && regressions == 0 {
		fail(fmt.Errorf("benchtrend: no comparable latency records between %s and %s", *baselinePath, *currentPath))
	}
	if regressions > 0 {
		fail(fmt.Errorf("benchtrend: %d metric(s) regressed or went missing (gate %.1fx)", regressions, *maxRatio))
	}
	fmt.Printf("benchtrend: %d metric(s) within %.1fx of baseline\n", checked, *maxRatio)
}

// load reads a netbench JSON record set, indexed by network name.
func load(path string) (map[string]record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("benchtrend: %w", err)
	}
	var recs []record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("benchtrend: parsing %s: %w", path, err)
	}
	out := make(map[string]record, len(recs))
	for _, r := range recs {
		out[r.Network] = r
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
