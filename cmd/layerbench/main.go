// Command layerbench runs the single-layer experiments of the paper (the
// figures built from Table 1 layers) on the GPU performance model and prints
// the resulting tables.
//
// Usage:
//
//	layerbench -list
//	layerbench -experiment fig3
//	layerbench -experiment all -device titanx
//	layerbench -experiment fig14 -thresholds calibrated
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"memcnn/internal/bench"
	"memcnn/internal/gpusim"
	"memcnn/internal/layout"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment to run (see -list) or 'all'")
		deviceName = flag.String("device", "titanblack", "GPU model: titanblack or titanx")
		thresholds = flag.String("thresholds", "paper", "layout thresholds: 'paper' or 'calibrated'")
		list       = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	dev, err := pickDevice(*deviceName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	th, err := pickThresholds(*thresholds, dev)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	experiments := bench.Experiments(dev, th)
	names := bench.ExperimentNames(dev, th)

	if *list {
		fmt.Println("available experiments:")
		for _, n := range names {
			fmt.Println("  " + n)
		}
		return
	}

	fmt.Printf("device: %s\nlayout thresholds: %v\n\n", dev.Name, th)

	run := func(name string) error {
		fn, ok := experiments[name]
		if !ok {
			return fmt.Errorf("layerbench: unknown experiment %q (use -list)", name)
		}
		table, err := fn()
		if err != nil {
			return fmt.Errorf("layerbench: %s: %w", name, err)
		}
		fmt.Printf("== %s ==\n%s\n", name, table)
		return nil
	}

	if strings.EqualFold(*experiment, "all") {
		for _, n := range names {
			if err := run(n); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		return
	}
	if err := run(*experiment); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func pickDevice(name string) (*gpusim.Device, error) {
	switch strings.ToLower(name) {
	case "titanblack", "titan-black", "black":
		return gpusim.TitanBlack(), nil
	case "titanx", "titan-x", "x":
		return gpusim.TitanX(), nil
	default:
		return nil, fmt.Errorf("layerbench: unknown device %q (want titanblack or titanx)", name)
	}
}

func pickThresholds(kind string, dev *gpusim.Device) (layout.Thresholds, error) {
	switch strings.ToLower(kind) {
	case "paper":
		if strings.Contains(dev.Name, "Titan X") {
			return layout.TitanXThresholds(), nil
		}
		return layout.TitanBlackThresholds(), nil
	case "calibrated", "auto":
		return layout.Calibrate(dev), nil
	default:
		return layout.Thresholds{}, fmt.Errorf("layerbench: unknown thresholds %q (want paper or calibrated)", kind)
	}
}
