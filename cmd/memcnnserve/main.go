// Command memcnnserve serves batched CNN inference over HTTP with the
// planned-execution engine: the network is planned (paper optimiser or a
// fixed layout), compiled to an op list, packed into a static memory arena,
// and fronted by the dynamic micro-batching server so concurrent single-image
// requests coalesce into planned batched executions.
//
// With -select the program compiles through per-layer convolution algorithm
// selection (direct vs im2col+GEMM) and is verified bit-for-bit against
// Program.ReferenceForward before serving starts.  With -devices N the
// compiled program is sharded into N pipeline stages over simulated devices
// and batches stream through the sharded PipelineExecutor — results stay
// bit-identical to the single-device path while each stage reports modeled
// device latency.
//
// With -replicas N the program is instead replicated across N device groups
// (internal/runtime/replica): each batch splits into per-replica sub-batches
// weighted by modeled device throughput, runs concurrently and reassembles
// bit-identically; -replica-devices picks the hardware mix ("titanblack,
// titanx" alternates the paper's two cards) and -devices M pipeline-shards
// every replica across M devices, composing data and model parallelism.
// -cache N puts a checksum-keyed N-entry LRU result cache with single-flight
// in front of the batching queue, so repeated inputs skip execution entirely.
//
// -slo D gives every request a latency budget: it runs under a deadline of D
// and admission control sheds requests the queue cannot serve within it
// (runtime.ErrShed) instead of letting them time out.  -chaos S wraps every
// replica device in a deterministic seeded fault schedule (transient errors
// and stalls) and permanently kills one replica partway through — a live
// demonstration of retry, failover and graceful degradation: the demo
// completes with bit-identical results on the surviving replicas and reports
// the fault counters.  /healthz reports the fleet's per-replica health and
// turns 503 once no replica is healthy.
//
// # Observability
//
// The whole serving stack is instrumented through internal/obs.  A metrics
// registry is always attached: /metrics serves it in Prometheus text format —
// per-net request/batch/queue-wait latency histograms (true p50/p95/p99, the
// same data /stats reports), per-op-kind and per-stage and per-replica
// latency, throughput, cache and fault counters, and — on simulated device
// fleets — per-layer modeled-vs-measured drift
// (memcnn_op_measured_us_total / memcnn_op_modeled_us_total).
//
// Tracing is on by default with a bounded ring of -trace-buf spans (0
// disables it; the disabled hot path is allocation-free).  /trace?last=N
// downloads the most recent N spans (all retained when omitted) as Chrome
// trace_event JSON that loads directly in chrome://tracing or Perfetto: op
// spans (layer, conv algorithm, layout), pipeline stage spans, per-replica
// sub-batch spans and the server's queue-wait/coalesce/batch spans, on one
// shared timebase so pipeline overlap and replica skew are visible.
//
// -pprof additionally mounts net/http/pprof under /debug/pprof/ (off by
// default: profiling endpoints are opt-in).  After a -demo run, -hold keeps
// the HTTP listener up so the demo's trace and metrics can be pulled.
//
// Usage:
//
//	memcnnserve -network LeNet -addr :8080
//	memcnnserve -network LeNet -select -devices 2 -demo 256
//	memcnnserve -network LeNet -replicas 4 -replica-devices titanblack,titanx -cache 256 -demo 512
//	memcnnserve -network TinyNet -replicas 4 -chaos 42 -demo 512   # fault-tolerance demo
//	memcnnserve -network TinyNet -demo 256      # self-driving load test
//	memcnnserve -network TinyNet -replicas 2 -devices 2 -demo 256 -hold  # then GET /trace
//
// Endpoints:
//
//	POST /infer   {"image":[C*H*W floats]} -> {"output":[...], "argmax":k}
//	GET  /stats   batching counters (with latency quantiles)
//	GET  /metrics Prometheus text exposition
//	GET  /trace   Chrome trace_event JSON (?last=N bounds the span count)
//	GET  /plan    compiled program and memory-plan summary
//	GET  /healthz liveness probe
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"memcnn/internal/frameworks"
	"memcnn/internal/gpusim"
	"memcnn/internal/layout"
	"memcnn/internal/network"
	"memcnn/internal/obs"
	memruntime "memcnn/internal/runtime"
	"memcnn/internal/runtime/replica"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

func main() {
	var (
		networkName = flag.String("network", "LeNet", "network to serve: TinyNet, LeNet, Cifar10, AlexNet, ZFNet or VGG")
		policy      = flag.String("policy", "opt", "execution policy: 'opt' (paper optimiser), 'nchw' or 'chwn'")
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		maxBatch    = flag.Int("batch", 0, "max requests per planned execution (default: the network batch)")
		maxDelay    = flag.Duration("delay", 2*time.Millisecond, "max time a request waits for its batch to fill")
		workers     = flag.Int("workers", 2, "concurrent batch executors")
		selectAlgs  = flag.Bool("select", false, "compile with per-layer convolution algorithm selection (verified against ReferenceForward at startup)")
		devices     = flag.Int("devices", 1, "pipeline the program (or, with -replicas, each replica) across N simulated devices (1 = no pipelining)")
		replicas    = flag.Int("replicas", 1, "replicate the program across N devices, splitting each batch by modeled throughput (1 = no data parallelism)")
		replicaDevs = flag.String("replica-devices", "", "comma-separated replica hardware (titanblack, titanx or cpu), cycled across -replicas; default titanblack")
		cacheSize   = flag.Int("cache", 0, "memoise per-image results keyed by input checksum in an N-entry LRU (0 = no cache)")
		slo         = flag.Duration("slo", 0, "per-request latency budget: requests run under a deadline and admission control sheds load the queue cannot serve in time (0 = no deadlines)")
		chaosSeed   = flag.Uint64("chaos", 0, "inject a seeded fault schedule into every replica device (transient errors + stalls) and permanently kill one replica partway; requires -replicas > 1 (0 = no chaos)")
		demo        = flag.Int("demo", 0, "instead of listening, fire N synthetic concurrent requests and exit")
		hold        = flag.Bool("hold", false, "after a -demo run, keep serving HTTP (so /trace and /metrics of the demo traffic can be pulled)")
		traceBuf    = flag.Int("trace-buf", obs.DefaultCapacity, "trace ring capacity in spans served at /trace (0 disables tracing; the disabled hot path is allocation-free)")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	if *chaosSeed != 0 && *replicas <= 1 {
		fail(fmt.Errorf("memcnnserve: -chaos needs -replicas > 1 (failover needs somewhere to fail over to)"))
	}

	net, err := buildNetwork(*networkName)
	if err != nil {
		fail(err)
	}
	prog, err := compile(net, *policy, memruntime.Options{ConvAlgorithms: *selectAlgs})
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s: %d layers -> %d ops over %d buffers (%s policy)\n",
		net.Name, len(net.Layers), len(prog.Ops), len(prog.Buffers), prog.PlannerName)
	fmt.Printf("memory plan: peak %.2f MiB vs naive %.2f MiB (%.0f%% saved)\n",
		mib(prog.Mem.PeakBytes()), mib(prog.NaiveBytes()), 100*prog.Savings())
	if *selectAlgs {
		for _, ch := range prog.ConvChoices() {
			fmt.Printf("conv %-12s %-5s %s\n", ch.Layer, ch.Layout, ch.Alg)
		}
	}

	// Build the serving engine first so the startup golden check exercises
	// the exact runner traffic goes through.
	var runner memruntime.Runner
	var exec *memruntime.Executor
	var pipe *memruntime.PipelineExecutor
	var group *replica.Group
	switch {
	case *replicas > 1:
		fleet, err := replica.ParseDevices(*replicaDevs, *replicas, *devices)
		if err != nil {
			fail(err)
		}
		if *chaosSeed != 0 {
			fmt.Printf("chaos: seed %d, transient+stall faults on every replica device, replica 1 dies permanently mid-run\n", *chaosSeed)
			injectChaos(fleet, *chaosSeed, int64(20*len(prog.Ops)))
		}
		group, err = replica.NewGroup(prog, *replicas, replica.Config{Devices: fleet})
		if err != nil {
			fail(err)
		}
		defer group.Close()
		fmt.Printf("replicated across %d device group(s), batch split by modeled throughput (modeled %.0f us/batch):\n",
			group.Replicas(), group.ModeledBatchUS())
		for _, st := range group.ReplicaStats() {
			fmt.Printf("  replica %d on %s: %d of %d images/batch (weight %.3g), modeled %.0f us (scatter %.0f us)\n",
				st.Replica, st.Devices, st.Share, prog.InputShape().N, st.Weight, st.ModeledUS, st.ScatterUS)
		}
		runner = group
	case *devices > 1:
		sp, err := memruntime.Shard(prog, *devices, memruntime.ShardOptions{
			Devices: memruntime.SimDevices(*devices, gpusim.TitanBlack()),
		})
		if err != nil {
			fail(err)
		}
		fmt.Printf("sharded across %d simulated device(s): summed arena %.2f MiB vs single-device %.2f MiB, %.2f MiB transfers/batch\n",
			len(sp.Stages), mib(sp.SummedPeakBytes()), mib(prog.Mem.PeakBytes()), mib(sp.TransferBytes()))
		for _, st := range sp.Stages {
			fmt.Printf("  stage %d on %s: ops [%d,%d], arena %.2f MiB, transfer in %.2f MiB\n",
				st.Index, st.Device.Name(), st.FirstOp, st.LastOp,
				mib(st.Prog.Mem.PeakBytes()), mib(st.TransferInBytes))
		}
		pipe = memruntime.NewPipelineExecutor(sp)
		defer pipe.Close()
		runner = pipe
	default:
		exec = memruntime.NewExecutor(prog)
		runner = exec
	}

	// Instrument the engine before any traffic (including the golden check)
	// so every span lands in one recorder timebase.  The registry is always
	// attached — counters and histograms are the data /stats reads anyway —
	// while the trace ring is sized by -trace-buf (0 turns tracing off and
	// leaves the hot path allocation-free).
	reg := obs.NewRegistry()
	var rec *obs.Recorder
	if *traceBuf > 0 {
		rec = obs.NewRecorder(*traceBuf)
	}
	ob := memruntime.Observer{Trace: rec, Metrics: reg}
	switch {
	case group != nil:
		group.Instrument(ob)
	case pipe != nil:
		pipe.Instrument(ob, memruntime.LaneEngine, "")
	default:
		exec.Instrument(ob, memruntime.LaneEngine)
	}

	if *selectAlgs {
		if err := goldenCheck(prog, runner); err != nil {
			fail(fmt.Errorf("memcnnserve: startup golden check: %w", err))
		}
		fmt.Println("startup golden check: serving engine output bit-equals ReferenceForward")
	}

	srv, err := memruntime.NewServerWith(prog, runner, memruntime.ServerConfig{
		MaxBatch:     *maxBatch,
		MaxDelay:     *maxDelay,
		Workers:      *workers,
		CacheEntries: *cacheSize,
		SLO:          *slo,
	})
	if err != nil {
		fail(err)
	}
	defer srv.Close()
	srv.Instrument(ob)

	if *demo > 0 {
		// Snapshot before the demo so the reported per-stage means cover the
		// demo traffic only, excluding the cold arena-warming batch and the
		// -select golden-check batch.
		var before []memruntime.PipelineStageStats
		if pipe != nil {
			before = pipe.StageStats()
		}
		runDemo(srv, prog, *demo)
		if pipe != nil {
			for i, st := range pipe.StageStats() {
				d := st.Delta(before[i])
				if d.Batches == 0 {
					continue
				}
				fmt.Printf("  stage %d on %s: %d batches, modeled %.1f us/batch, measured %.1f us/batch\n",
					d.Stage, d.Device, d.Batches, d.ModeledUS, d.MeasuredUS)
			}
		}
		if group != nil {
			for _, st := range group.ReplicaStats() {
				if st.Batches == 0 {
					continue
				}
				fmt.Printf("  replica %d on %s: %d sub-batches of %d images, modeled %.1f us, measured %.1f us\n",
					st.Replica, st.Devices, st.Batches, st.Share, st.ModeledUS, st.MeasuredUS)
			}
		}
		if cs := srv.Stats().Cache; cs != nil {
			fmt.Printf("cache: %d hits, %d misses, %d evictions (%d of %d entries)\n",
				cs.Hits, cs.Misses, cs.Evictions, cs.Size, cs.Capacity)
		}
		st := srv.Stats()
		if fs := st.Faults; fs != nil {
			fmt.Printf("faults: %d retries, %d failovers, %d readmissions, %d contained panics, %d replica(s) unhealthy\n",
				fs.Retries, fs.Failovers, fs.Readmissions, fs.Panics, fs.UnhealthyReplicas)
			if group != nil {
				for i, h := range group.Health() {
					if h != memruntime.Healthy {
						fmt.Printf("  replica %d: %s\n", i, h)
					}
				}
			}
		}
		if *slo > 0 {
			fmt.Printf("slo %v: %d shed by admission control, %d expired in queue\n", *slo, st.Shed, st.Expired)
		}
		fmt.Printf("latency: queue-wait p50/p99 %.0f/%.0f us, batch p50/p99 %.0f/%.0f us (admission estimate %.0f us)\n",
			st.QueueWaitP50US, st.QueueWaitP99US, st.BatchP50US, st.BatchP99US, st.QueueWaitEstimateUS)
		printDrift(reg)
		if rec != nil {
			fmt.Printf("trace: %d spans recorded (ring holds %d)\n", rec.Len(), rec.Cap())
		}
		if !*hold {
			return
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/infer", inferHandler(srv, prog))
	mux.HandleFunc("/stats", statsHandler(srv))
	mux.HandleFunc("/metrics", metricsHandler(reg))
	mux.HandleFunc("/trace", traceHandler(rec))
	mux.HandleFunc("/plan", planHandler(prog))
	mux.HandleFunc("/healthz", healthzHandler(group))
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	fmt.Printf("listening on %s (batch<=%d, delay %v, %d workers)\n",
		*addr, srv.Config().MaxBatch, srv.Config().MaxDelay, srv.Config().Workers)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		fail(err)
	}
}

// printDrift reports the per-layer modeled-vs-measured drift channel — only
// populated when the fleet contains simulated devices.
func printDrift(reg *obs.Registry) {
	drift := memruntime.DriftReport(reg)
	if len(drift) == 0 {
		return
	}
	fmt.Println("modeled-vs-measured drift (per layer op, cumulative):")
	for _, d := range drift {
		fmt.Printf("  %-20s modeled %10.1f us   measured %10.1f us   ratio %.2f\n",
			d.Op, d.ModeledUS, d.MeasuredUS, d.Ratio())
	}
}

// metricsHandler serves the registry in Prometheus text exposition format.
func metricsHandler(reg *obs.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	}
}

// traceHandler serves the retained spans as a Chrome trace_event JSON
// download; ?last=N bounds the export to the most recent N spans.
func traceHandler(rec *obs.Recorder) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if rec == nil {
			http.Error(w, "tracing disabled (-trace-buf 0)", http.StatusNotFound)
			return
		}
		last := 0
		if v := r.URL.Query().Get("last"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "last must be a non-negative integer", http.StatusBadRequest)
				return
			}
			last = n
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Disposition", `attachment; filename="memcnn-trace.json"`)
		_ = rec.WriteChromeTrace(w, last)
	}
}

func buildNetwork(name string) (*network.Network, error) {
	if strings.EqualFold(name, "TinyNet") {
		return workloads.TinyNet()
	}
	nets, err := workloads.Networks()
	if err != nil {
		return nil, err
	}
	for n, net := range nets {
		if strings.EqualFold(n, name) {
			return net, nil
		}
	}
	return nil, fmt.Errorf("memcnnserve: unknown network %q", name)
}

func compile(net *network.Network, policy string, opts memruntime.Options) (*memruntime.Program, error) {
	switch strings.ToLower(policy) {
	case "opt":
		plan, err := frameworks.Optimized(layout.TitanBlackThresholds()).Plan(gpusim.TitanBlack(), net)
		if err != nil {
			return nil, err
		}
		return memruntime.CompileWithOptions(plan, opts)
	case "nchw":
		return memruntime.CompileFixedWithOptions(net, tensor.NCHW, opts)
	case "chwn":
		return memruntime.CompileFixedWithOptions(net, tensor.CHWN, opts)
	default:
		return nil, fmt.Errorf("memcnnserve: unknown policy %q", policy)
	}
}

// goldenCheck verifies at startup that the serving engine — the exact runner
// the batching server will execute on, single-device or pipelined — bit-equals
// the program's functional reference, so a serving binary can never drift
// from the golden path silently.
func goldenCheck(prog *memruntime.Program, run memruntime.Runner) error {
	in := tensor.Random(prog.InputShape(), tensor.NCHW, 1)
	want, err := prog.ReferenceForward(in)
	if err != nil {
		return err
	}
	got := tensor.New(prog.OutputShape(), tensor.NCHW)
	if err := run.RunInto(in, got); err != nil {
		return err
	}
	wantNCHW := tensor.Convert(want, tensor.NCHW)
	for i := range wantNCHW.Data {
		if got.Data[i] != wantNCHW.Data[i] {
			return fmt.Errorf("serving engine output differs from ReferenceForward at element %d (%v vs %v)",
				i, got.Data[i], wantNCHW.Data[i])
		}
	}
	return nil
}

// runDemo fires n synthetic requests with bounded concurrency and reports
// the throughput the batching front-end achieved.
func runDemo(srv *memruntime.BatchServer, prog *memruntime.Program, n int) {
	in := prog.InputShape()
	imgShape := tensor.Shape{N: 1, C: in.C, H: in.H, W: in.W}
	images := make([]*tensor.Tensor, 8)
	for i := range images {
		images[i] = tensor.Random(imgShape, tensor.NCHW, uint64(i+1))
	}
	sem := make(chan struct{}, 4*srv.Config().MaxBatch)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var failed int
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := srv.Infer(context.Background(), images[i%len(images)]); err != nil {
				mu.Lock()
				failed++
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := srv.Stats()
	fmt.Printf("demo: %d requests in %v (%.1f imgs/sec), %d failed\n",
		n, elapsed.Round(time.Millisecond), float64(n)/elapsed.Seconds(), failed)
	fmt.Printf("batching: %d executions, avg batch %.2f, largest %d\n",
		st.Batches, st.AvgBatch, st.LargestBatch)
}

type inferRequest struct {
	Image []float32 `json:"image"`
}

type inferResponse struct {
	Output []float32 `json:"output"`
	Argmax int       `json:"argmax"`
}

func inferHandler(srv *memruntime.BatchServer, prog *memruntime.Program) http.HandlerFunc {
	in := prog.InputShape()
	imgShape := tensor.Shape{N: 1, C: in.C, H: in.H, W: in.W}
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req inferRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		img, err := tensor.NewFrom(imgShape, tensor.NCHW, req.Image)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		out, err := srv.Infer(r.Context(), img)
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		resp := inferResponse{Output: out.Data, Argmax: 0}
		for i, v := range out.Data {
			if v > out.Data[resp.Argmax] {
				resp.Argmax = i
			}
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(resp)
	}
}

// injectChaos wraps every replica device in a seeded FaultDevice with a mild
// transient/stall schedule, and arms replica 1's first device to die
// permanently after killOps ops — the demo then shows retries absorbing the
// transients and failover re-splitting the batch over the survivors.
func injectChaos(fleet [][]memruntime.Device, seed uint64, killOps int64) {
	for r, devs := range fleet {
		for s, d := range devs {
			cfg := memruntime.FaultConfig{
				Seed:          seed + uint64(r*len(devs)+s),
				TransientRate: 0.005,
				StallRate:     0.002,
				Stall:         500 * time.Microsecond,
			}
			if r == 1 && s == 0 {
				cfg.KillAfterOps = killOps
			}
			fleet[r][s] = memruntime.WrapFault(d, cfg)
		}
	}
}

// healthzHandler reports liveness.  For a replicated engine it reports the
// fleet's health state machine: 200 with per-replica states while at least
// one replica is in rotation, 503 once every replica is unhealthy (the group
// can no longer serve).
func healthzHandler(group *replica.Group) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		if group == nil {
			fmt.Fprintln(w, "ok")
			return
		}
		type replicaHealth struct {
			Replica int    `json:"replica"`
			Health  string `json:"health"`
		}
		healths := group.Health()
		body := struct {
			Status   string          `json:"status"`
			Healthy  int             `json:"healthy"`
			Replicas []replicaHealth `json:"replicas"`
		}{Healthy: group.HealthyReplicas()}
		for i, h := range healths {
			body.Replicas = append(body.Replicas, replicaHealth{Replica: i, Health: h.String()})
		}
		w.Header().Set("Content-Type", "application/json")
		if body.Healthy == 0 {
			body.Status = "unavailable"
			w.WriteHeader(http.StatusServiceUnavailable)
		} else {
			body.Status = "ok"
		}
		_ = json.NewEncoder(w).Encode(body)
	}
}

func statsHandler(srv *memruntime.BatchServer) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(srv.Stats())
	}
}

func planHandler(prog *memruntime.Program) http.HandlerFunc {
	type planSummary struct {
		Network    string  `json:"network"`
		Planner    string  `json:"planner"`
		Ops        int     `json:"ops"`
		Buffers    int     `json:"buffers"`
		Transforms int     `json:"transforms"`
		PeakBytes  int64   `json:"peak_bytes"`
		NaiveBytes int64   `json:"naive_bytes"`
		Savings    float64 `json:"savings"`
	}
	transforms := 0
	for _, op := range prog.Ops {
		if op.Kind == memruntime.OpTransform {
			transforms++
		}
	}
	summary := planSummary{
		Network:    prog.Net.Name,
		Planner:    prog.PlannerName,
		Ops:        len(prog.Ops),
		Buffers:    len(prog.Buffers),
		Transforms: transforms,
		PeakBytes:  prog.Mem.PeakBytes(),
		NaiveBytes: prog.NaiveBytes(),
		Savings:    prog.Savings(),
	}
	return func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(summary)
	}
}

func mib(b int64) float64 { return float64(b) / (1 << 20) }

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
