// Command memcnnvet is the repository's custom multichecker: it runs the
// internal/analyzers passes — noalloc, ctxflow, atomicalign — over the given
// package patterns and exits non-zero on any finding.  CI runs it next to
// `go vet` as a dedicated, build-failing step:
//
//	go run ./cmd/memcnnvet ./...
//
// Findings print one per line as file:line:col: [analyzer] message.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"memcnn/internal/analyzers"
)

func main() {
	var only string
	flag.StringVar(&only, "run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: memcnnvet [-run analyzers] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	selected := analyzers.All()
	if only != "" {
		byName := make(map[string]*analyzers.Analyzer)
		for _, a := range analyzers.All() {
			byName[a.Name] = a
		}
		selected = selected[:0]
		for _, name := range strings.Split(only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "memcnnvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			selected = append(selected, a)
		}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "memcnnvet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analyzers.Load(dir, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "memcnnvet: %v\n", err)
		os.Exit(2)
	}

	diags := analyzers.Run(pkgs, selected)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
