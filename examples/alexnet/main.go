// AlexNet walk-through: the whole-network scenario of Figs. 14 and 15.
//
// The example prices AlexNet under every library policy the paper compares
// (cuda-convnet, Caffe, the cuDNN modes and the memory optimiser), prints the
// per-layer plan the optimiser chooses, and reports where the time goes.
//
// Run with:  go run ./examples/alexnet
package main

import (
	"fmt"
	"log"

	"memcnn/internal/core"
	"memcnn/internal/frameworks"
	"memcnn/internal/gpusim"
	"memcnn/internal/layout"
	"memcnn/internal/network"
	"memcnn/internal/workloads"
)

func main() {
	device := gpusim.TitanBlack()
	thresholds := layout.TitanBlackThresholds()

	net, err := workloads.AlexNet()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AlexNet: batch %d, %d layers, input %v\n\n", net.Batch, len(net.Layers), net.InputShape())

	// Price every library policy on the same network description.
	planners := []network.Planner{
		frameworks.CuDNN(frameworks.CuDNNMM),
		frameworks.CuDNN(frameworks.CuDNNFFT),
		frameworks.CuDNN(frameworks.CuDNNFFTTiling),
		frameworks.CuDNN(frameworks.CuDNNBest),
		frameworks.Caffe(),
		frameworks.CudaConvnet(),
		frameworks.Optimized(thresholds),
	}
	var baseline float64
	fmt.Println("whole-network execution time on the", device.Name, "model:")
	for _, p := range planners {
		plan, err := p.Plan(device, net)
		if err != nil {
			log.Fatalf("%s: %v", p.Name(), err)
		}
		est, err := plan.Estimate()
		if err != nil {
			log.Fatal(err)
		}
		if p.Name() == "cuDNN-MM" {
			baseline = est.TotalUS
		}
		fmt.Printf("  %-14s %9.1f ms   speedup over cuDNN-MM: %.2fx\n",
			p.Name(), est.TotalUS/1000, baseline/est.TotalUS)
	}

	// Show what the optimiser decided per layer (the Fig. 15 view).
	optimizer := core.NewOptimizer(core.Options{Thresholds: thresholds})
	plan, err := optimizer.Plan(device, net)
	if err != nil {
		log.Fatal(err)
	}
	est, err := plan.Estimate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimised plan (%d layout transformations, %.1f ms total):\n", plan.TransformCount(), est.TotalUS/1000)
	for i, pl := range plan.Layers {
		line := fmt.Sprintf("  %-12s %-5s %9.1f us", pl.Layer.Name(), pl.Layout, est.PerLayer[i].TimeUS)
		if pl.Transform != nil {
			line += fmt.Sprintf("   (transform in: %.1f us, %v)", est.PerLayer[i].TransformUS, pl.TransformMethod)
		}
		fmt.Println(line)
	}

	// Where does the time go?
	var convUS, poolUS, fcUS, otherUS float64
	for i, pl := range plan.Layers {
		t := est.PerLayer[i].Total()
		switch pl.Layer.Name()[:2] {
		case "co":
			convUS += t
		case "po":
			poolUS += t
		case "fc":
			fcUS += t
		default:
			otherUS += t
		}
	}
	fmt.Printf("\ntime breakdown: convolutions %.0f%%, pooling %.0f%%, fully-connected %.0f%%, other %.0f%%\n",
		100*convUS/est.TotalUS, 100*poolUS/est.TotalUS, 100*fcUS/est.TotalUS, 100*otherUS/est.TotalUS)
}
