// Layout advisor: apply the paper's layout heuristic to a custom network.
//
// The example defines a CNN that is not part of the paper's benchmark set,
// calibrates the layout-selection thresholds for both modelled GPUs, and
// prints per-layer advice: which layout each layer should use, how much the
// right choice is worth, and where layout transformations pay for themselves.
//
// Run with:  go run ./examples/layoutadvisor
package main

import (
	"fmt"
	"log"

	"memcnn/internal/core"
	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/layout"
	"memcnn/internal/network"
	"memcnn/internal/tensor"
)

// buildCustomNet assembles a small VGG-flavoured network on 64x64 inputs with
// batch 96 — a shape mix that is deliberately absent from the paper's Table 1.
func buildCustomNet() (*network.Network, error) {
	const batch = 96
	var ls []layers.Layer
	shape := tensor.Shape{N: batch, C: 3, H: 64, W: 64}
	seed := uint64(7)

	addConv := func(name string, k, f, stride, pad int) error {
		cfg := kernels.ConvConfig{N: batch, C: shape.C, H: shape.H, W: shape.W, K: k, FH: f, FW: f,
			StrideH: stride, StrideW: stride, PadH: pad, PadW: pad}
		l, err := layers.NewConv(name, cfg, seed)
		if err != nil {
			return err
		}
		seed++
		ls = append(ls, l)
		shape = l.OutputShape()
		return nil
	}
	addPool := func(name string, window, stride int) error {
		cfg := kernels.PoolConfig{N: batch, C: shape.C, H: shape.H, W: shape.W, Window: window, Stride: stride, Op: kernels.MaxPool}
		l, err := layers.NewPool(name, cfg)
		if err != nil {
			return err
		}
		ls = append(ls, l)
		shape = l.OutputShape()
		return nil
	}
	steps := []func() error{
		func() error { return addConv("conv1", 32, 5, 1, 2) },
		func() error { return addPool("pool1", 3, 2) },
		func() error { return addConv("conv2", 96, 3, 1, 1) },
		func() error { return addConv("conv3", 96, 3, 1, 1) },
		func() error { return addPool("pool2", 3, 2) },
		func() error { return addConv("conv4", 192, 3, 1, 1) },
		func() error { return addPool("pool3", 2, 2) },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return nil, err
		}
	}
	fcIn := shape.C * shape.H * shape.W
	fc, err := layers.NewFullyConnected("fc1", batch, fcIn, 256, seed)
	if err != nil {
		return nil, err
	}
	ls = append(ls, fc)
	sm, err := layers.NewSoftmax("prob", kernels.SoftmaxConfig{N: batch, Classes: 256})
	if err != nil {
		return nil, err
	}
	ls = append(ls, sm)
	return network.New("CustomNet", batch, ls...)
}

func main() {
	net, err := buildCustomNet()
	if err != nil {
		log.Fatal(err)
	}

	for _, device := range []*gpusim.Device{gpusim.TitanBlack(), gpusim.TitanX()} {
		thresholds := layout.Calibrate(device)
		fmt.Printf("== %s ==\n", device.Name)
		fmt.Printf("calibrated layout thresholds: %v (published for this class of GPU: %v / %v)\n\n",
			thresholds, layout.TitanBlackThresholds(), layout.TitanXThresholds())

		// Per-layer advice for the convolutional layers.
		fmt.Printf("%-8s %-34s %-10s %s\n", "layer", "shape", "preferred", "benefit of the right layout")
		for _, l := range net.Layers {
			conv, ok := l.(*layers.Conv)
			if !ok {
				continue
			}
			preferred := layout.PreferredConvLayout(conv.Cfg, thresholds)
			_, chwnUS, nchwUS := layout.MeasuredConvWinner(device, conv.Cfg)
			benefit := chwnUS / nchwUS
			if nchwUS > chwnUS {
				benefit = nchwUS / chwnUS
			}
			fmt.Printf("%-8s %-34s %-10v %.2fx (CHWN %.0f us, NCHW %.0f us)\n",
				conv.Name(), conv.Cfg.String(), preferred, benefit, chwnUS, nchwUS)
		}

		// Whole-network plan with the optimiser.
		optimizer := core.NewOptimizer(core.Options{Thresholds: thresholds})
		plan, err := optimizer.Plan(device, net)
		if err != nil {
			log.Fatal(err)
		}
		est, err := plan.Estimate()
		if err != nil {
			log.Fatal(err)
		}
		fixedCHWN := &network.FixedLayoutPlanner{PlannerName: "all-CHWN", Layout: tensor.CHWN}
		fixedNCHW := &network.FixedLayoutPlanner{PlannerName: "all-NCHW", Layout: tensor.NCHW}
		chwnPlan, err := fixedCHWN.Plan(device, net)
		if err != nil {
			log.Fatal(err)
		}
		chwnEst, err := chwnPlan.Estimate()
		if err != nil {
			log.Fatal(err)
		}
		nchwPlan, err := fixedNCHW.Plan(device, net)
		if err != nil {
			log.Fatal(err)
		}
		nchwEst, err := nchwPlan.Estimate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwhole network: mixed layouts %.1f ms  |  all-CHWN %.1f ms  |  all-NCHW %.1f ms  (%d transforms, %.1f%% overhead)\n\n",
			est.TotalUS/1000, chwnEst.TotalUS/1000, nchwEst.TotalUS/1000,
			plan.TransformCount(), 100*est.TransformUS/est.TotalUS)
	}
}
