// Example shardedpipeline walks the device/sharding layer of
// internal/runtime: it compiles a small network, cuts the program into
// pipeline stages balanced by modeled FLOPs, binds each stage to a simulated
// GPU, streams a few batches through the pipelined executor and checks the
// stitched result against the unsharded executor bit for bit, printing the
// per-stage op counts, arena and transfer bytes and modeled vs measured
// latency.
package main

import (
	"fmt"
	"os"

	"memcnn/internal/frameworks"
	"memcnn/internal/gpusim"
	"memcnn/internal/layout"
	memruntime "memcnn/internal/runtime"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

func main() {
	net, err := workloads.TinyNet()
	if err != nil {
		fail(err)
	}
	plan, err := frameworks.Optimized(layout.TitanBlackThresholds()).Plan(gpusim.TitanBlack(), net)
	if err != nil {
		fail(err)
	}
	prog, err := memruntime.Compile(plan)
	if err != nil {
		fail(err)
	}

	const devices = 2
	sp, err := memruntime.Shard(prog, devices, memruntime.ShardOptions{
		Devices: memruntime.SimDevices(devices, gpusim.TitanBlack()),
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s sharded into %d stages (%s-balanced)\n", net.Name, len(sp.Stages), sp.Balance)
	for _, st := range sp.Stages {
		fmt.Printf("  stage %d on %s: ops [%d,%d], arena %d B, transfer in %d B\n",
			st.Index, st.Device.Name(), st.FirstOp, st.LastOp,
			st.Prog.Mem.PeakBytes(), st.TransferInBytes)
	}
	fmt.Printf("summed arena %d B vs single-device %d B; %d B transferred per batch\n\n",
		sp.SummedPeakBytes(), prog.Mem.PeakBytes(), sp.TransferBytes())

	pipe := memruntime.NewPipelineExecutor(sp)
	defer pipe.Close()

	exec := memruntime.NewExecutor(prog)
	for batch := 0; batch < 4; batch++ {
		in := tensor.Random(net.InputShape(), tensor.NCHW, uint64(batch+1))
		want, err := exec.Run(in)
		if err != nil {
			fail(err)
		}
		got, err := pipe.Run(in)
		if err != nil {
			fail(err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				fail(fmt.Errorf("batch %d: sharded output differs from unsharded at element %d", batch, i))
			}
		}
	}
	fmt.Printf("4 batches pipelined; every output bit-equals the unsharded executor\n\n")
	for _, st := range pipe.StageStats() {
		fmt.Printf("  stage %d: %d batches, modeled %.1f us/batch, measured %.1f us/batch\n",
			st.Stage, st.Batches, st.ModeledUS, st.MeasuredUS)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
