// Example plannedtraining walks the memory-planned training pipeline of
// internal/runtime/train on a small network: CompileTraining lowers forward,
// softmax cross-entropy loss, backward and SGD update into one op list, the
// static memory plan covers the joint graph (with recompute-vs-store
// checkpointing as a planner decision), and the planned arena executor runs
// training steps bit-identically to the naive per-buffer executor.
package main

import (
	"fmt"
	"math"
	"os"

	"memcnn/internal/layers"
	memruntime "memcnn/internal/runtime"
	"memcnn/internal/runtime/train"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

func main() {
	net, err := workloads.TinyNet()
	if err != nil {
		fail(err)
	}
	// The library's synthetic [-1,1) weights saturate the softmax; a
	// 1/sqrt(fan-in) rescale keeps the example's loss curve moving.
	for _, l := range net.Layers {
		if fc, ok := l.(*layers.FullyConnected); ok {
			w := fc.Weights()
			s := float32(1 / math.Sqrt(float64(fc.InDim)))
			for i := range w {
				w[i] *= s
			}
		}
	}

	store, err := train.CompileTraining(net, train.Options{Checkpoint: train.CheckpointOff})
	if err != nil {
		fail(err)
	}
	ckpt, err := train.CompileTraining(net, train.Options{Checkpoint: train.CheckpointOn})
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s training program: %d ops over %d buffers\n\n", net.Name, len(ckpt.Ops), len(ckpt.Buffers))
	for i, op := range ckpt.Ops {
		extra := ""
		if op.Aux != memruntime.NoBuffer {
			extra = fmt.Sprintf("  aux b%d", op.Aux)
		}
		fmt.Printf("  %2d %-11s %-28s b%d -> b%d%s\n", i, op.Kind, op.Name, op.In, op.Out, extra)
	}
	fmt.Printf("\ntraining footprint: naive %d B, store-all plan %d B, checkpointed plan %d B (%d recompute ops)\n",
		store.NaiveBytes(), store.Mem.PeakBytes(), ckpt.Mem.PeakBytes(), ckpt.RecomputeOps)

	planned, err := train.NewTrainer(net, train.Options{SGD: train.SGD{LR: 0.005}})
	if err != nil {
		fail(err)
	}
	naive, err := train.NewNaiveExecutor(planned.Executor().Program(), memruntime.CPUDevice{})
	if err != nil {
		fail(err)
	}

	images := tensor.Random(net.InputShape(), tensor.NCHW, 7)
	labels := []int{0, 2, 4, 1}
	fmt.Println("\ntraining on one fixed batch (planned arena executor):")
	for step := 0; step < 5; step++ {
		stats, err := planned.Step(train.Batch{Images: images, Labels: labels})
		if err != nil {
			fail(err)
		}
		fmt.Printf("  step %d: loss %.6f\n", step, stats.Loss)
	}

	// The naive executor runs the same op list over per-buffer storage; on
	// the (already updated) shared weights one more step must agree exactly.
	ns, err := naive.Step(images, labels)
	if err != nil {
		fail(err)
	}
	ps, err := planned.Step(train.Batch{Images: images, Labels: labels})
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nnaive executor loss %.6f vs planned %.6f on consecutive steps of one weight trajectory\n", ns.Loss, ps.Loss)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
