// Softmax fusion study: the Fig. 13 scenario.
//
// The classifier (softmax) layer is memory bound.  The baseline libraries
// implement its five algorithm steps as five separate kernels whose
// intermediates round-trip through DRAM and parallelise only the batch loop.
// This example
//
//   - verifies functionally that the fused computation produces the same
//     probabilities as the five-step computation,
//   - prices the four modelled implementations across the paper's twelve
//     batch/category configurations, and
//   - splits the gain into the kernel-fusion and the inner-loop
//     parallelisation contributions (the Section VI.B ablation).
//
// Run with:  go run ./examples/softmaxfusion
package main

import (
	"fmt"
	"log"
	"math"

	"memcnn/internal/bench"
	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/tensor"
)

func main() {
	device := gpusim.TitanBlack()

	// --- Functional equivalence ------------------------------------------
	cfg := kernels.SoftmaxConfig{N: 32, Classes: 1000}
	logits := tensor.Random(tensor.Shape{N: cfg.N, C: cfg.Classes, H: 1, W: 1}, tensor.NCHW, 123)
	fused, err := kernels.Softmax(logits.Data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fiveStep, intermediates, err := kernels.SoftmaxFiveStep(logits.Data, cfg)
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for i := range fused {
		if d := math.Abs(float64(fused[i] - fiveStep[i])); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("fused vs five-step softmax on %s: max |diff| = %.2e (%d intermediate elements avoided by fusion)\n\n",
		cfg, maxDiff, intermediates)

	// --- Implementation comparison across configurations ------------------
	impls := []kernels.SoftmaxImpl{
		kernels.SoftmaxThreadPerImage,
		kernels.SoftmaxBlockPerImage,
		kernels.SoftmaxFused,
		kernels.SoftmaxFusedParallel,
	}
	fmt.Printf("%-12s", "batch/cls")
	for _, impl := range impls {
		fmt.Printf("  %22s", impl)
	}
	fmt.Println("  (time us / useful GB/s)")
	for _, sc := range []kernels.SoftmaxConfig{
		{N: 128, Classes: 10}, {N: 128, Classes: 1000}, {N: 128, Classes: 10000}, {N: 256, Classes: 10000},
	} {
		fmt.Printf("%-12s", sc.String()[8:])
		for _, impl := range impls {
			kt := gpusim.EstimateTime(device, kernels.SoftmaxCost(device, sc, impl))
			fmt.Printf("  %10.1f / %8.1f", kt.TotalUS, kt.AchievedBandwidthGBs)
		}
		fmt.Println()
	}

	// --- Fig. 13 and the ablation ------------------------------------------
	_, fig13 := bench.Figure13(device)
	fmt.Printf("\n%s\n", fig13)
	_, ablation := bench.SoftmaxAblation(device)
	fmt.Println(ablation)
}
