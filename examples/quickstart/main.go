// Quickstart: the smallest end-to-end use of the library.
//
// It does three things:
//  1. runs a small CNN functionally (forward pass on synthetic data),
//  2. asks the GPU model which data layout a convolutional layer prefers,
//  3. prices the layer in both layouts to show why the choice matters.
//
// Run with:  go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/layout"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

func main() {
	// --- 1. Functional forward pass on a tiny network -------------------
	net, err := workloads.TinyNet()
	if err != nil {
		log.Fatal(err)
	}
	input := tensor.Random(net.InputShape(), tensor.CHWN, 42)
	output, err := net.Forward(input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TinyNet forward pass: %v -> %v\n", net.InputShape(), output.Shape)
	fmt.Print("class probabilities of image 0: ")
	for c := 0; c < output.Shape.C; c++ {
		fmt.Printf("%.3f ", output.At(0, c, 0, 0))
	}
	fmt.Println()

	// --- 2. Layout recommendation for a real layer ----------------------
	device := gpusim.TitanBlack()
	thresholds := layout.TitanBlackThresholds()
	cv1, err := workloads.FindConv("CV1") // LeNet's first convolution from Table 1
	if err != nil {
		log.Fatal(err)
	}
	recommended := layout.PreferredConvLayout(cv1.Cfg, thresholds)
	fmt.Printf("\n%s (%s)\n", cv1.Name, cv1.Cfg)
	fmt.Printf("heuristic with thresholds %v recommends: %v\n", thresholds, recommended)

	// --- 3. Why: price the layer in both layouts ------------------------
	chwn := gpusim.EstimateTime(device, kernels.ConvDirectCHWNCost(device, cv1.Cfg))
	nchwTotal, _ := gpusim.EstimateSequence(device, kernels.ConvGemmNCHWCost(device, cv1.Cfg))
	fmt.Printf("CHWN (direct convolution):     %8.1f us  (%s-bound, %.0f GFLOPS)\n",
		chwn.TotalUS, chwn.Limiter, chwn.AchievedGFLOPS)
	fmt.Printf("NCHW (im2col + GEMM):          %8.1f us\n", nchwTotal)
	fmt.Printf("speedup of the preferred layout: %.2fx\n", nchwTotal/chwn.TotalUS)
}
