// Example replicatedserving walks the data-parallel layer of the runtime: it
// compiles a small network, replicates the program across a heterogeneous
// simulated fleet (a Titan Black plus a pipeline-sharded pair of Titan Xs),
// shows the throughput-weighted batch split, checks the scattered execution
// against the single-device executor bit for bit, and then serves duplicated
// single-image traffic through the batching server with the checksum-keyed
// result cache in front, printing the hit/miss counters the cache earns.
package main

import (
	"context"
	"fmt"
	"os"
	"sync"

	"memcnn/internal/frameworks"
	"memcnn/internal/gpusim"
	"memcnn/internal/layout"
	memruntime "memcnn/internal/runtime"
	"memcnn/internal/runtime/replica"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

func main() {
	net, err := workloads.TinyNet()
	if err != nil {
		fail(err)
	}
	plan, err := frameworks.Optimized(layout.TitanBlackThresholds()).Plan(gpusim.TitanBlack(), net)
	if err != nil {
		fail(err)
	}
	prog, err := memruntime.Compile(plan)
	if err != nil {
		fail(err)
	}

	// Replica 0 is a lone Titan Black; replica 1 pipelines its sub-batches
	// across two Titan Xs — data parallelism composed with model parallelism.
	group, err := replica.NewGroup(prog, 2, replica.Config{
		Devices: [][]memruntime.Device{
			{memruntime.NewSimDevice("r0", gpusim.TitanBlack())},
			{memruntime.NewSimDevice("r1.0", gpusim.TitanX()), memruntime.NewSimDevice("r1.1", gpusim.TitanX())},
		},
	})
	if err != nil {
		fail(err)
	}
	defer group.Close()

	fmt.Printf("%s replicated across %d device groups (batch %d)\n", net.Name, group.Replicas(), net.Batch)
	for _, st := range group.ReplicaStats() {
		fmt.Printf("  replica %d on %s: %d images/batch (weight %.3g), modeled %.0f us incl. %.0f us contended scatter\n",
			st.Replica, st.Devices, st.Share, st.Weight, st.ModeledUS, st.ScatterUS)
	}

	exec := memruntime.NewExecutor(prog)
	for batch := 0; batch < 4; batch++ {
		in := tensor.Random(net.InputShape(), tensor.NCHW, uint64(batch+1))
		want, err := exec.Run(in)
		if err != nil {
			fail(err)
		}
		got, err := group.Run(in)
		if err != nil {
			fail(err)
		}
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				fail(fmt.Errorf("batch %d: replicated output differs from single-device at element %d", batch, i))
			}
		}
	}
	fmt.Printf("4 batches scattered; every output bit-equals the single-device executor\n\n")

	// Serve duplicated traffic through the cached batching server: 8 distinct
	// images requested 96 times cost at most 8 executions — concurrent
	// identical requests share one flight, repeats hit the cache.
	srv, err := memruntime.NewServerWith(prog, group, memruntime.ServerConfig{
		Workers: 2, CacheEntries: 64,
	})
	if err != nil {
		fail(err)
	}
	defer srv.Close()
	in := net.InputShape()
	imgShape := tensor.Shape{N: 1, C: in.C, H: in.H, W: in.W}
	images := make([]*tensor.Tensor, 8)
	for i := range images {
		images[i] = tensor.Random(imgShape, tensor.NCHW, uint64(100+i))
	}
	const requests = 96
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := srv.Infer(context.Background(), images[i%len(images)]); err != nil {
				fail(err)
			}
		}(i)
	}
	wg.Wait()
	st := srv.Stats()
	fmt.Printf("served %d requests over %d distinct images: %d batch executions\n",
		requests, len(images), st.Batches)
	if cs := st.Cache; cs != nil {
		fmt.Printf("cache: %d hits, %d misses, %d evictions (%d of %d entries)\n",
			cs.Hits, cs.Misses, cs.Evictions, cs.Size, cs.Capacity)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
