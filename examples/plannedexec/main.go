// Example plannedexec walks the compile → memory-plan → execute pipeline of
// internal/runtime on a small network: it plans the network with the paper's
// optimiser, prints the lowered op list and the static memory plan, runs the
// compiled program and checks the result against the naive Network.Forward.
package main

import (
	"fmt"
	"os"

	"memcnn/internal/frameworks"
	"memcnn/internal/gpusim"
	"memcnn/internal/layout"
	memruntime "memcnn/internal/runtime"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

func main() {
	net, err := workloads.TinyNet()
	if err != nil {
		fail(err)
	}
	plan, err := frameworks.Optimized(layout.TitanBlackThresholds()).Plan(gpusim.TitanBlack(), net)
	if err != nil {
		fail(err)
	}
	prog, err := memruntime.Compile(plan)
	if err != nil {
		fail(err)
	}

	fmt.Printf("%s compiled with %s: %d ops over %d buffers\n\n",
		net.Name, prog.PlannerName, len(prog.Ops), len(prog.Buffers))
	for i, op := range prog.Ops {
		fmt.Printf("  %2d %-9s %-28s b%d -> b%d\n", i, op.Kind, op.Name, op.In, op.Out)
	}
	fmt.Printf("\nmemory plan: arena %d elems; peak %d B vs naive %d B (%.0f%% saved)\n",
		prog.Mem.ArenaElems, prog.Mem.PeakBytes(), prog.NaiveBytes(), 100*prog.Savings())
	for _, b := range prog.Buffers {
		kind := "      "
		if b.AliasOf != memruntime.NoBuffer {
			kind = fmt.Sprintf("=b%-4d", b.AliasOf)
		}
		live := prog.Mem.Live[b.ID]
		fmt.Printf("  b%-2d %-14v %-5v %s offset %6d  live [%d,%d]\n",
			b.ID, b.Shape, b.Layout, kind, prog.Mem.Offsets[b.ID], live.Def, live.LastUse)
	}

	in := tensor.Random(net.InputShape(), tensor.NCHW, 17)
	want, err := net.Forward(in)
	if err != nil {
		fail(err)
	}
	got, err := memruntime.NewExecutor(prog).Run(in)
	if err != nil {
		fail(err)
	}
	diff, err := tensor.MaxAbsDiff(got, want)
	if err != nil {
		fail(err)
	}
	fmt.Printf("\nplanned output vs naive Network.Forward: max |Δ| = %v\n", diff)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
