// Package obs is the runtime's observability substrate: a ring-buffered trace
// recorder whose spans export as Chrome trace_event JSON (loadable in
// chrome://tracing or Perfetto), and a metrics registry of atomic counters,
// gauges and fixed-bucket latency histograms exposable in Prometheus text
// format.
//
// The package is deliberately free of runtime dependencies — it knows nothing
// about programs, devices or tensors — so every layer of the execution stack
// (executor ops, pipeline stages, replica sub-batches, server batching) can
// hook into one shared Recorder/Registry pair without import cycles.
//
// Both the Recorder and the Registry are designed around a hard
// zero-overhead-when-disabled contract: every hot-path method is nil-safe
// (a nil *Recorder records nothing and a nil *Histogram observes nothing at
// the cost of one pointer test), and the enabled paths never allocate — a
// span is a value copied into a preallocated ring slot, a histogram
// observation is an atomic bucket increment.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Category classifies a span by the execution layer that produced it; it maps
// onto the trace_event "cat" field so viewers can filter one layer at a time.
type Category uint8

// The span categories, one per layer of the serving stack.
const (
	// CatOp is one compiled op (layer, transform, reshape, …) on a device.
	CatOp Category = iota
	// CatRun is one whole program execution on one executor.
	CatRun
	// CatStage is one batch crossing one pipeline stage.
	CatStage
	// CatReplica is one sub-batch on one replica of a group.
	CatReplica
	// CatQueue is one request's wait in the batching queue.
	CatQueue
	// CatCoalesce is one worker assembling a batch from the queue.
	CatCoalesce
	// CatBatch is one coalesced batch executing through the serving engine.
	CatBatch
)

// String names the category (the trace_event "cat" value).
func (c Category) String() string {
	switch c {
	case CatOp:
		return "op"
	case CatRun:
		return "run"
	case CatStage:
		return "stage"
	case CatReplica:
		return "replica"
	case CatQueue:
		return "queue"
	case CatCoalesce:
		return "coalesce"
	case CatBatch:
		return "batch"
	default:
		return fmt.Sprintf("Category(%d)", uint8(c))
	}
}

// Span is one recorded interval.  All string fields are expected to be
// prepared once at instrumentation time (op names, algorithm names) so that
// recording a span copies headers into the ring without allocating.
type Span struct {
	// Name labels the span in the viewer (op name, "stage 1", "batch").
	Name string
	// Cat is the execution layer the span belongs to.
	Cat Category
	// Lane is the virtual thread the span renders on (see Recorder.SetLane);
	// spans on one lane should not overlap for a readable trace.
	Lane int32
	// StartNS and DurNS are nanoseconds relative to the recorder's epoch
	// (Recorder.Now supplies StartNS-compatible timestamps).
	StartNS int64
	DurNS   int64
	// Kind optionally subtypes the span ("layer", "transform", …).
	Kind string
	// Alg and Layout carry a conv op's compiled algorithm and buffer layout.
	Alg    string
	Layout string
	// ModeledUS is the simulated device's modeled time for the interval, zero
	// when the device chain models no hardware.  Together with DurNS it makes
	// modeled-vs-measured drift visible per span.
	ModeledUS float64
	// Images is the batch size the span processed, zero when not meaningful.
	Images int
}

// Recorder is a bounded in-memory trace: the last capacity spans, oldest
// evicted first.  A nil *Recorder is a valid recorder that records nothing —
// the disabled fast path costs one nil test.  All methods are safe for
// concurrent use.
type Recorder struct {
	epoch time.Time

	mu    sync.Mutex
	spans []Span
	next  uint64 // total spans ever recorded; next % cap is the write slot
	lanes map[int32]string
}

// DefaultCapacity is the ring size NewRecorder uses for capacity <= 0.
const DefaultCapacity = 1 << 16

// NewRecorder builds a recorder retaining the last capacity spans
// (DefaultCapacity when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		epoch: time.Now(),
		spans: make([]Span, capacity),
		lanes: map[int32]string{},
	}
}

// Now returns the recorder's clock: nanoseconds since its epoch, the timebase
// Span.StartNS lives in.  Nil-safe (returns 0), monotonic, allocation-free.
//
//memcnn:noalloc
func (r *Recorder) Now() int64 {
	if r == nil {
		return 0
	}
	return int64(time.Since(r.epoch))
}

// Record appends one span, evicting the oldest when the ring is full.
// Nil-safe and allocation-free: the span value is copied into its slot.
//
//memcnn:noalloc
func (r *Recorder) Record(sp Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans[r.next%uint64(len(r.spans))] = sp
	r.next++
	r.mu.Unlock()
}

// SetLane names a virtual thread for the trace viewer ("stage 0",
// "replica 1", "server w0").  Nil-safe.
func (r *Recorder) SetLane(lane int32, name string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.lanes[lane] = name
	r.mu.Unlock()
}

// Len returns the total number of spans ever recorded (not capped by the
// ring).  Nil-safe.
func (r *Recorder) Len() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Cap returns the ring capacity.  Nil-safe.
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Snapshot returns the retained spans oldest-first: the last min(Len, Cap)
// spans recorded.  The slice is a copy; the recorder keeps running.
func (r *Recorder) Snapshot() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

func (r *Recorder) snapshotLocked() []Span {
	capacity := uint64(len(r.spans))
	n := r.next
	if n > capacity {
		n = capacity
	}
	out := make([]Span, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.spans[(r.next-n+i)%capacity])
	}
	return out
}

// Reset discards all retained spans (the epoch and lane names survive, so
// later spans stay in the same timebase).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.next = 0
	r.mu.Unlock()
}

// chromeEvent is one trace_event object; the subset of the Chrome trace-event
// format Perfetto and chrome://tracing consume for complete ("X") and
// metadata ("M") events.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace object ({"traceEvents":[...]}).
type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace writes the last `last` retained spans (all of them when
// last <= 0) as Chrome trace_event JSON: one metadata event naming each lane,
// then one complete event per span with the span's kind, algorithm, layout,
// modeled time and batch size in args.  The output loads directly in
// chrome://tracing and Perfetto.  Export is off the hot path and may
// allocate freely.
func (r *Recorder) WriteChromeTrace(w io.Writer, last int) error {
	if r == nil {
		return fmt.Errorf("obs: no trace recorder attached")
	}
	r.mu.Lock()
	spans := r.snapshotLocked()
	lanes := make(map[int32]string, len(r.lanes))
	for id, name := range r.lanes {
		lanes[id] = name
	}
	r.mu.Unlock()
	if last > 0 && len(spans) > last {
		spans = spans[len(spans)-last:]
	}

	trace := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(spans)+len(lanes))}
	laneIDs := make([]int32, 0, len(lanes))
	for id := range lanes {
		laneIDs = append(laneIDs, id)
	}
	sort.Slice(laneIDs, func(a, b int) bool { return laneIDs[a] < laneIDs[b] })
	for _, id := range laneIDs {
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: id,
			Args: map[string]any{"name": lanes[id]},
		})
	}
	for _, sp := range spans {
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  sp.Cat.String(),
			Ph:   "X",
			TS:   float64(sp.StartNS) / 1e3,
			Dur:  float64(sp.DurNS) / 1e3,
			PID:  1,
			TID:  sp.Lane,
		}
		args := map[string]any{}
		if sp.Kind != "" {
			args["kind"] = sp.Kind
		}
		if sp.Alg != "" {
			args["alg"] = sp.Alg
		}
		if sp.Layout != "" {
			args["layout"] = sp.Layout
		}
		if sp.ModeledUS > 0 {
			args["modeled_us"] = sp.ModeledUS
			if sp.DurNS > 0 {
				args["drift"] = (float64(sp.DurNS) / 1e3) / sp.ModeledUS
			}
		}
		if sp.Images > 0 {
			args["images"] = sp.Images
		}
		if len(args) > 0 {
			ev.Args = args
		}
		trace.TraceEvents = append(trace.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(trace)
}
