package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(Span{Name: "x"})
	r.SetLane(1, "lane")
	r.Reset()
	if r.Now() != 0 {
		t.Errorf("nil recorder Now = %d, want 0", r.Now())
	}
	if r.Len() != 0 || r.Cap() != 0 {
		t.Errorf("nil recorder Len/Cap = %d/%d, want 0/0", r.Len(), r.Cap())
	}
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil recorder Snapshot = %v, want nil", got)
	}
	if err := r.WriteChromeTrace(&bytes.Buffer{}, 0); err == nil {
		t.Error("nil recorder WriteChromeTrace should error")
	}
}

func TestRecorderRingWraparound(t *testing.T) {
	const capacity = 8
	r := NewRecorder(capacity)
	if r.Cap() != capacity {
		t.Fatalf("Cap = %d, want %d", r.Cap(), capacity)
	}
	for i := 0; i < 3*capacity; i++ {
		r.Record(Span{Name: fmt.Sprintf("s%d", i), StartNS: int64(i)})
	}
	if r.Len() != 3*capacity {
		t.Fatalf("Len = %d, want %d", r.Len(), 3*capacity)
	}
	got := r.Snapshot()
	if len(got) != capacity {
		t.Fatalf("Snapshot retains %d spans, want %d", len(got), capacity)
	}
	// The ring must keep exactly the LAST capacity spans, oldest first.
	for i, sp := range got {
		want := fmt.Sprintf("s%d", 2*capacity+i)
		if sp.Name != want {
			t.Errorf("Snapshot[%d] = %q, want %q", i, sp.Name, want)
		}
	}

	r.Reset()
	if r.Len() != 0 || len(r.Snapshot()) != 0 {
		t.Errorf("after Reset: Len=%d Snapshot=%d spans, want 0/0", r.Len(), len(r.Snapshot()))
	}
}

func TestRecorderDefaultCapacity(t *testing.T) {
	if got := NewRecorder(0).Cap(); got != DefaultCapacity {
		t.Errorf("NewRecorder(0).Cap() = %d, want %d", got, DefaultCapacity)
	}
}

func TestRecorderConcurrentRecord(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Span{Name: "s", Lane: int32(g), StartNS: r.Now()})
				r.SetLane(int32(g), "lane")
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("Len = %d, want 800", r.Len())
	}
}

// TestWriteChromeTraceRoundTrip parses the exported JSON back through the
// trace_event schema and checks every field a viewer depends on.
func TestWriteChromeTraceRoundTrip(t *testing.T) {
	r := NewRecorder(16)
	r.SetLane(1, "engine")
	r.SetLane(2, "server w0")
	r.Record(Span{
		Name: "conv1", Cat: CatOp, Lane: 1,
		StartNS: 1_500, DurNS: 2_000,
		Kind: "layer", Alg: "im2col+gemm", Layout: "NCHW",
		ModeledUS: 1.0, Images: 4,
	})
	r.Record(Span{Name: "batch", Cat: CatBatch, Lane: 2, StartNS: 4_000, DurNS: 500})

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int32          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) != 4 { // 2 metadata + 2 spans
		t.Fatalf("got %d events, want 4", len(trace.TraceEvents))
	}

	// Metadata events come first, sorted by lane, naming each thread.
	for i, wantName := range []string{"engine", "server w0"} {
		ev := trace.TraceEvents[i]
		if ev.Ph != "M" || ev.Name != "thread_name" {
			t.Fatalf("event %d = %+v, want thread_name metadata", i, ev)
		}
		if ev.TID != int32(i+1) || ev.Args["name"] != wantName {
			t.Errorf("metadata %d names tid %d %q, want tid %d %q", i, ev.TID, ev.Args["name"], i+1, wantName)
		}
	}

	op := trace.TraceEvents[2]
	if op.Ph != "X" || op.Name != "conv1" || op.Cat != "op" || op.PID != 1 || op.TID != 1 {
		t.Errorf("op event = %+v", op)
	}
	if op.TS != 1.5 || op.Dur != 2.0 { // ns -> us
		t.Errorf("op ts/dur = %g/%g us, want 1.5/2", op.TS, op.Dur)
	}
	for k, want := range map[string]any{
		"kind": "layer", "alg": "im2col+gemm", "layout": "NCHW",
		"modeled_us": 1.0, "drift": 2.0, "images": 4.0,
	} {
		if got := op.Args[k]; got != want {
			t.Errorf("op args[%q] = %v, want %v", k, got, want)
		}
	}
	if batch := trace.TraceEvents[3]; batch.Cat != "batch" || batch.Args != nil {
		t.Errorf("batch event = %+v, want cat=batch with no args", batch)
	}
}

func TestWriteChromeTraceLast(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 10; i++ {
		r.Record(Span{Name: fmt.Sprintf("s%d", i), Cat: CatRun, Lane: 1})
	}
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, 3); err != nil {
		t.Fatal(err)
	}
	var trace chromeTrace
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, ev := range trace.TraceEvents {
		names = append(names, ev.Name)
	}
	if got, want := strings.Join(names, ","), "s7,s8,s9"; got != want {
		t.Errorf("last=3 exported %q, want %q", got, want)
	}
}

func TestCategoryStrings(t *testing.T) {
	want := map[Category]string{
		CatOp: "op", CatRun: "run", CatStage: "stage", CatReplica: "replica",
		CatQueue: "queue", CatCoalesce: "coalesce", CatBatch: "batch",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Category(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
	if got := Category(200).String(); got != "Category(200)" {
		t.Errorf("unknown category = %q", got)
	}
}

// TestRecordAllocationFree pins the hot-path contract: recording into the
// ring, reading the clock and observing a histogram must not allocate —
// neither enabled nor disabled (nil receiver).
func TestRecordAllocationFree(t *testing.T) {
	r := NewRecorder(32)
	sp := Span{Name: "op", Cat: CatOp, Lane: 1, Kind: "layer"}
	if n := testing.AllocsPerRun(200, func() {
		sp.StartNS = r.Now()
		sp.DurNS = r.Now() - sp.StartNS
		r.Record(sp)
	}); n != 0 {
		t.Errorf("enabled Record allocates %.1f per span, want 0", n)
	}
	var nilRec *Recorder
	if n := testing.AllocsPerRun(200, func() {
		sp.StartNS = nilRec.Now()
		nilRec.Record(sp)
	}); n != 0 {
		t.Errorf("nil Record allocates %.1f per span, want 0", n)
	}
}
