package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension; labels are rendered once at registration
// time, so attaching them costs nothing on the hot path.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// renderLabels builds the canonical `key="value",…` form in the given order.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter.  Nil-safe.
//
//memcnn:noalloc
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.  Nil-safe.
//
//memcnn:noalloc
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.  Nil-safe.
//
//memcnn:noalloc
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// FloatCounter is a monotonically increasing float metric — the shape modeled
// microsecond totals take, where increments are fractional.
type FloatCounter struct{ bits atomic.Uint64 }

// Add increments the counter.  Nil-safe, lock-free (CAS loop).
//
//memcnn:noalloc
func (c *FloatCounter) Add(v float64) {
	if c == nil {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value returns the current total.  Nil-safe.
//
//memcnn:noalloc
func (c *FloatCounter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a settable instantaneous value.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value.  Nil-safe.
//
//memcnn:noalloc
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the gauge value.  Nil-safe.
//
//memcnn:noalloc
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram bucket geometry: bucket i spans (HistMinUS·r^(i-1), HistMinUS·r^i]
// microseconds with r = 2^(1/4) — four buckets per doubling, so any quantile
// read from the buckets is within ~19% of the exact sample.  100 buckets reach
// ~33 s; slower observations land in the +Inf overflow bucket.
const (
	histBuckets = 100
	// HistMinUS is the upper bound of the first bucket in microseconds.
	HistMinUS = 1.0
	// HistBucketRatio is the geometric ratio between consecutive bucket
	// bounds — the worst-case relative error of Histogram.Quantile.
	HistBucketRatio = 1.1892071150027210667 // 2^(1/4)
)

// histBounds holds the shared per-bucket upper bounds in microseconds.
var histBounds = func() [histBuckets]float64 {
	var b [histBuckets]float64
	for i := range b {
		b[i] = HistMinUS * math.Pow(2, float64(i)/4)
	}
	return b
}()

// Histogram is a fixed-bucket latency histogram over microseconds: 100
// geometric buckets (four per doubling of latency) plus an overflow bucket,
// all updated with a single atomic increment, so Observe is wait-free and
// allocation-free.  A nil *Histogram observes nothing.
type Histogram struct {
	counts  [histBuckets + 1]atomic.Uint64
	sumBits atomic.Uint64 // float64 total of observed microseconds
	count   atomic.Uint64
}

// NewHistogram builds a standalone histogram — for components that always
// measure and only later surface the histogram in a registry via
// Registry.AdoptHistogram.  (The zero Histogram is also ready to use.)
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one latency in microseconds.  Nil-safe, allocation-free.
//
//memcnn:noalloc
func (h *Histogram) Observe(us float64) {
	if h == nil {
		return
	}
	h.counts[bucketFor(us)].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+us)) {
			return
		}
	}
}

// bucketFor maps a microsecond latency onto its bucket index.
//
//memcnn:noalloc
func bucketFor(us float64) int {
	if us <= HistMinUS {
		return 0
	}
	// Bucket i covers (r^(i-1), r^i]; with r = 2^(1/4) the index is
	// ceil(4·log2(us/min)).
	i := int(math.Ceil(4 * math.Log2(us/HistMinUS)))
	if i >= histBuckets {
		return histBuckets // overflow bucket
	}
	if i < 0 {
		return 0
	}
	return i
}

// Count returns the number of observations.  Nil-safe.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of observed microseconds.  Nil-safe.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile returns the upper bound of the bucket holding the q-quantile
// observation (q in [0,1]), in microseconds — an estimate at most
// HistBucketRatio above the exact order statistic.  Observations in the
// overflow bucket report the last finite bound.  Zero when empty.  Nil-safe.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the order statistic we want.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i <= histBuckets; i++ {
		cum += h.counts[i].Load()
		if cum >= rank {
			if i == histBuckets {
				return histBounds[histBuckets-1]
			}
			return histBounds[i]
		}
	}
	return histBounds[histBuckets-1]
}

// metricKind discriminates registry entries for exposition.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindFloatCounter
	kindGauge
	kindFunc
	kindCounterFunc
	kindHistogram
)

// metric is one registered series.
type metric struct {
	name   string // metric family name
	labels string // rendered `k="v",…` or ""
	help   string
	kind   metricKind

	counter *Counter
	fcount  *FloatCounter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

func (m *metric) key() string { return m.name + "{" + m.labels + "}" }

// Registry holds a process's metrics: get-or-create registration (the same
// name+labels always returns the same instrument, so layers can share
// series), Prometheus text exposition, and a structured snapshot for
// programmatic reads.  Registration takes a lock; the returned instruments
// are lock-free.  A nil *Registry returns nil instruments from every
// registration, which are themselves nil-safe no-ops — so "metrics disabled"
// needs no branches at the call sites.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string // registration order for stable exposition
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// register returns the existing series for key or creates it via build.
func (r *Registry) register(name, help string, labels []Label, kind metricKind, build func(*metric)) *metric {
	m := &metric{name: name, labels: renderLabels(labels), help: help, kind: kind}
	key := m.key()
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metrics[key]; ok && old.kind == kind {
		return old
	}
	build(m)
	r.metrics[key] = m
	r.order = append(r.order, key)
	return m
}

// Counter returns the counter for name+labels, creating it on first use.
// Nil-safe: a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, labels, kindCounter, func(m *metric) { m.counter = &Counter{} }).counter
}

// FloatCounter returns the float counter for name+labels.  Nil-safe.
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	if r == nil {
		return nil
	}
	return r.register(name, help, labels, kindFloatCounter, func(m *metric) { m.fcount = &FloatCounter{} }).fcount
}

// Gauge returns the gauge for name+labels.  Nil-safe.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, labels, kindGauge, func(m *metric) { m.gauge = &Gauge{} }).gauge
}

// GaugeFunc registers a gauge evaluated at exposition time by calling fn —
// how existing atomic counters (server stats, fault counters) surface in
// /metrics without a second copy that could disagree.  Nil-safe.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, labels, kindFunc, func(m *metric) { m.fn = fn })
}

// CounterFunc registers a monotonic counter evaluated at exposition time by
// calling fn — the idiom for surfacing counters that already exist as atomics
// elsewhere (server request counts, fault-tolerance counters): /metrics and
// the owner's own stats read the same memory, so they can never disagree.
// Nil-safe.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, labels, kindCounterFunc, func(m *metric) { m.fn = fn })
}

// Histogram returns the histogram for name+labels.  Nil-safe: a nil registry
// returns a nil (no-op) histogram.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, labels, kindHistogram, func(m *metric) { m.hist = &Histogram{} }).hist
}

// AdoptHistogram registers an externally owned histogram under name+labels,
// so a component that keeps its own always-on histogram (the batch server's
// queue-wait estimator input) can surface it in the registry without a second
// copy.  If the series already exists the existing instance is kept.
// Nil-safe.
func (r *Registry) AdoptHistogram(name, help string, h *Histogram, labels ...Label) {
	if r == nil || h == nil {
		return
	}
	r.register(name, help, labels, kindHistogram, func(m *metric) { m.hist = h })
}

// Sample is one series value in a Snapshot.
type Sample struct {
	Name   string  // metric family name
	Labels string  // rendered `k="v",…` or ""
	Value  float64 // counter/gauge value; histogram observation count
	// Hist is set for histogram series.
	Hist *Histogram
}

// Snapshot returns every registered series with its current value, in
// registration order — the programmatic mirror of the Prometheus exposition,
// used by front-ends to print drift tables and latency summaries.  Nil-safe.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	keys := append([]string(nil), r.order...)
	metrics := make([]*metric, len(keys))
	for i, k := range keys {
		metrics[i] = r.metrics[k]
	}
	r.mu.Unlock()
	out := make([]Sample, 0, len(metrics))
	for _, m := range metrics {
		s := Sample{Name: m.name, Labels: m.labels}
		switch m.kind {
		case kindCounter:
			s.Value = float64(m.counter.Value())
		case kindFloatCounter:
			s.Value = m.fcount.Value()
		case kindGauge:
			s.Value = m.gauge.Value()
		case kindFunc, kindCounterFunc:
			s.Value = m.fn()
		case kindHistogram:
			s.Value = float64(m.hist.Count())
			s.Hist = m.hist
		}
		out = append(out, s)
	}
	return out
}

// WritePrometheus writes every series in Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples, histograms as
// cumulative le-labelled buckets with _sum and _count.  Families are grouped
// so # HELP/# TYPE headers appear once each.  Nil-safe.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := make([]*metric, 0, len(r.order))
	for _, k := range r.order {
		metrics = append(metrics, r.metrics[k])
	}
	r.mu.Unlock()
	// Group series into families (sorted by family name, registration order
	// within a family) so # HELP/# TYPE headers appear exactly once each.
	sort.SliceStable(metrics, func(a, b int) bool { return metrics[a].name < metrics[b].name })

	lastFamily := ""
	for _, m := range metrics {
		if m.name != lastFamily {
			lastFamily = m.name
			if m.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, promType(m.kind)); err != nil {
				return err
			}
		}
		if err := writeSeries(w, m); err != nil {
			return err
		}
	}
	return nil
}

func promType(k metricKind) string {
	switch k {
	case kindCounter, kindFloatCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series renders `name{labels}` with optional extra labels appended.
func series(name, labels, extra string) string {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all == "" {
		return name
	}
	return name + "{" + all + "}"
}

func writeSeries(w io.Writer, m *metric) error {
	switch m.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", series(m.name, m.labels, ""), m.counter.Value())
		return err
	case kindFloatCounter:
		_, err := fmt.Fprintf(w, "%s %g\n", series(m.name, m.labels, ""), m.fcount.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %g\n", series(m.name, m.labels, ""), m.gauge.Value())
		return err
	case kindFunc, kindCounterFunc:
		_, err := fmt.Fprintf(w, "%s %g\n", series(m.name, m.labels, ""), m.fn())
		return err
	case kindHistogram:
		var cum uint64
		for i := 0; i <= histBuckets; i++ {
			cum += m.hist.counts[i].Load()
			le := "+Inf"
			if i < histBuckets {
				// Skip interior empty-tail buckets to keep the exposition
				// readable: always emit buckets with mass, the first bucket
				// and +Inf.
				if m.hist.counts[i].Load() == 0 && i > 0 {
					continue
				}
				le = fmt.Sprintf("%g", histBounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s %d\n",
				series(m.name+"_bucket", m.labels, fmt.Sprintf("le=%q", le)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", series(m.name+"_sum", m.labels, ""), m.hist.Sum()); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", series(m.name+"_count", m.labels, ""), m.hist.Count())
		return err
	}
	return nil
}
