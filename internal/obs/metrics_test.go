package obs

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil Counter should stay 0")
	}
	var fc *FloatCounter
	fc.Add(1.5)
	if fc.Value() != 0 {
		t.Error("nil FloatCounter should stay 0")
	}
	var g *Gauge
	g.Set(3)
	if g.Value() != 0 {
		t.Error("nil Gauge should stay 0")
	}
	var h *Histogram
	h.Observe(10)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil Histogram should observe nothing")
	}

	var r *Registry
	if r.Counter("x", "") != nil || r.FloatCounter("x", "") != nil ||
		r.Gauge("x", "") != nil || r.Histogram("x", "") != nil {
		t.Error("nil Registry should hand out nil instruments")
	}
	r.GaugeFunc("x", "", func() float64 { return 1 })
	r.CounterFunc("x", "", func() float64 { return 1 })
	r.AdoptHistogram("x", "", &Histogram{})
	if r.Snapshot() != nil {
		t.Error("nil Registry Snapshot should be nil")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil Registry WritePrometheus: %v", err)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("reqs", "requests", L("net", "LeNet"))
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Errorf("counter = %d, want 3", c.Value())
	}
	// Same name+labels must return the same instrument.
	if c2 := reg.Counter("reqs", "requests", L("net", "LeNet")); c2 != c {
		t.Error("re-registration returned a different counter")
	}
	// Different labels are a different series.
	if c3 := reg.Counter("reqs", "requests", L("net", "VGG")); c3 == c {
		t.Error("different labels returned the same counter")
	}

	fc := reg.FloatCounter("us", "")
	fc.Add(1.25)
	fc.Add(0.25)
	if fc.Value() != 1.5 {
		t.Errorf("float counter = %g, want 1.5", fc.Value())
	}

	g := reg.Gauge("depth", "")
	g.Set(7)
	if g.Value() != 7 {
		t.Errorf("gauge = %g, want 7", g.Value())
	}
}

// TestHistogramQuantileVsExact checks the bucketed quantile against the exact
// order statistic of the same samples: the estimate must never fall below it
// and never exceed it by more than the bucket ratio.
func TestHistogramQuantileVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := &Histogram{}
	samples := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Log-uniform over [1us, ~1s] — the latency range the runtime sees.
		v := math.Pow(10, rng.Float64()*6)
		samples = append(samples, v)
		h.Observe(v)
	}
	sort.Float64s(samples)
	if h.Count() != 5000 {
		t.Fatalf("Count = %d, want 5000", h.Count())
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	if math.Abs(h.Sum()-sum) > 1e-6*sum {
		t.Errorf("Sum = %g, want %g", h.Sum(), sum)
	}
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0} {
		exact := samples[int(math.Ceil(q*5000))-1]
		got := h.Quantile(q)
		if got < exact || got > exact*HistBucketRatio {
			t.Errorf("Quantile(%g) = %g, exact %g: outside [exact, exact*%g]",
				q, got, exact, HistBucketRatio)
		}
	}
}

func TestHistogramEdges(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	h.Observe(0.001) // below the first bound -> bucket 0
	if got := h.Quantile(1); got != HistMinUS {
		t.Errorf("sub-minimum sample quantile = %g, want first bound %g", got, HistMinUS)
	}
	h2 := &Histogram{}
	h2.Observe(1e12) // far past the last bucket -> overflow
	if got, last := h2.Quantile(1), histBounds[histBuckets-1]; got != last {
		t.Errorf("overflow sample quantile = %g, want last finite bound %g", got, last)
	}
	// Out-of-range q clamps instead of panicking.
	h2.Observe(2)
	if h2.Quantile(-1) == 0 || h2.Quantile(2) == 0 {
		t.Error("clamped quantiles should still report a bucket bound")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				h.Observe(float64(i))
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
	if want := 8 * 1000 * 1001 / 2.0; math.Abs(h.Sum()-want) > 1e-6 {
		t.Errorf("Sum = %g, want %g", h.Sum(), want)
	}
}

func TestObserveAllocationFree(t *testing.T) {
	h := &Histogram{}
	c := &Counter{}
	fc := &FloatCounter{}
	if n := testing.AllocsPerRun(200, func() {
		h.Observe(123.4)
		c.Inc()
		fc.Add(0.5)
	}); n != 0 {
		t.Errorf("hot-path instruments allocate %.1f per op, want 0", n)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("memcnn_requests_total", "served requests", L("net", "LeNet")).Add(42)
	reg.Counter("memcnn_requests_total", "served requests", L("net", "VGG")).Add(7)
	reg.Gauge("memcnn_unhealthy_replicas", "replicas out of rotation").Set(1)
	reg.CounterFunc("memcnn_fault_retries_total", "retried sub-batches", func() float64 { return 3 })
	h := reg.Histogram("memcnn_op_latency_us", "per-op latency", L("net", "LeNet"), L("kind", "layer"))
	h.Observe(0.5) // bucket 0, le="1"
	h.Observe(3.0)
	h.Observe(3.1)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# HELP memcnn_requests_total served requests\n",
		"# TYPE memcnn_requests_total counter\n",
		`memcnn_requests_total{net="LeNet"} 42` + "\n",
		`memcnn_requests_total{net="VGG"} 7` + "\n",
		"# TYPE memcnn_unhealthy_replicas gauge\n",
		"memcnn_unhealthy_replicas 1\n",
		"# TYPE memcnn_fault_retries_total counter\n",
		"memcnn_fault_retries_total 3\n",
		"# TYPE memcnn_op_latency_us histogram\n",
		`memcnn_op_latency_us_bucket{net="LeNet",kind="layer",le="1"} 1` + "\n",
		`memcnn_op_latency_us_bucket{net="LeNet",kind="layer",le="+Inf"} 3` + "\n",
		`memcnn_op_latency_us_sum{net="LeNet",kind="layer"} 6.6` + "\n",
		`memcnn_op_latency_us_count{net="LeNet",kind="layer"} 3` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Family headers must appear exactly once even with two series.
	if got := strings.Count(out, "# TYPE memcnn_requests_total"); got != 1 {
		t.Errorf("TYPE header for memcnn_requests_total appears %d times, want 1", got)
	}
	// Bucket counts are cumulative: both 3.0 and 3.1 land in the same
	// geometric bucket, so its cumulative count includes the first sample.
	if !strings.Contains(out, `le="3.36359"`) && !strings.Contains(out, `le="3.363586"`) {
		// The exact rendering of the bound is %g; just require SOME interior
		// bucket carries cumulative count 3.
		if !strings.Contains(out, "} 3\n") {
			t.Errorf("no cumulative bucket reaches 3:\n%s", out)
		}
	}
}

func TestAdoptHistogram(t *testing.T) {
	reg := NewRegistry()
	own := NewHistogram()
	own.Observe(5)
	reg.AdoptHistogram("memcnn_queue_wait_us", "queue wait", own, L("net", "LeNet"))
	// Registering the same series again must keep the adopted instance.
	if h := reg.Histogram("memcnn_queue_wait_us", "queue wait", L("net", "LeNet")); h != own {
		t.Error("Histogram() after AdoptHistogram returned a different instance")
	}
	snap := reg.Snapshot()
	if len(snap) != 1 || snap[0].Hist != own || snap[0].Value != 1 {
		t.Errorf("Snapshot = %+v, want the adopted histogram with 1 observation", snap)
	}
}

func TestSnapshotOrderAndValues(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "").Add(2)
	reg.Gauge("a_gauge", "").Set(1.5)
	reg.GaugeFunc("c_fn", "", func() float64 { return 9 })
	snap := reg.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("got %d samples, want 3", len(snap))
	}
	// Snapshot preserves registration order, not name order.
	if snap[0].Name != "b_total" || snap[1].Name != "a_gauge" || snap[2].Name != "c_fn" {
		t.Errorf("order = %s,%s,%s", snap[0].Name, snap[1].Name, snap[2].Name)
	}
	if snap[0].Value != 2 || snap[1].Value != 1.5 || snap[2].Value != 9 {
		t.Errorf("values = %g,%g,%g", snap[0].Value, snap[1].Value, snap[2].Value)
	}
}
