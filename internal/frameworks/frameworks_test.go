package frameworks_test

import (
	"testing"

	"memcnn/internal/frameworks"
	"memcnn/internal/gpusim"
	"memcnn/internal/layout"
	"memcnn/internal/network"
	"memcnn/internal/workloads"
)

// estimateAll prices every planner of Fig. 14 on one network and returns the
// totals keyed by planner name.
func estimateAll(t *testing.T, d *gpusim.Device, net *network.Network) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, p := range frameworks.All(layout.TitanBlackThresholds()) {
		plan, err := p.Plan(d, net)
		if err != nil {
			t.Fatalf("%s on %s: %v", p.Name(), net.Name, err)
		}
		if err := plan.Validate(); err != nil {
			t.Fatalf("%s on %s: %v", p.Name(), net.Name, err)
		}
		est, err := plan.Estimate()
		if err != nil {
			t.Fatalf("%s on %s: %v", p.Name(), net.Name, err)
		}
		out[p.Name()] = est.TotalUS
	}
	return out
}

func TestAllPlannersCoverEveryNetwork(t *testing.T) {
	d := gpusim.TitanBlack()
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range workloads.NetworkOrder {
		times := estimateAll(t, d, nets[name])
		if len(times) != 6 {
			t.Fatalf("%s: expected 6 planners, got %d", name, len(times))
		}
		for planner, us := range times {
			if us <= 0 {
				t.Errorf("%s/%s: non-positive time %v", name, planner, us)
			}
		}
	}
}

func TestOptimizedWinsOnEveryNetwork(t *testing.T) {
	// The headline result of Fig. 14: with flexible data layouts plus the
	// pooling/softmax optimisations, the optimised framework achieves the
	// best performance on all five networks.
	d := gpusim.TitanBlack()
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range workloads.NetworkOrder {
		times := estimateAll(t, d, nets[name])
		opt := times["Opt"]
		for planner, us := range times {
			if planner == "Opt" {
				continue
			}
			if opt > us*1.001 {
				t.Errorf("%s: Opt (%.0fus) loses to %s (%.0fus)", name, opt, planner, us)
			}
		}
	}
}

func TestFixedLayoutsWinOnlyOnSomeNetworks(t *testing.T) {
	// Fig. 14's other observation: each fixed-layout library is only good
	// for a subset of the networks.  cuda-convnet (CHWN) clearly beats
	// cuDNN-MM on the small-channel, batch-128 networks (LeNet, Cifar10),
	// while cuDNN (NCHW) clearly beats cuda-convnet on the deep ImageNet
	// networks (AlexNet, ZFNet, VGG).
	d := gpusim.TitanBlack()
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"LeNet", "Cifar10"} {
		times := estimateAll(t, d, nets[name])
		if times["cuda-convnet"] >= times["cuDNN-MM"] {
			t.Errorf("%s: cuda-convnet (%.0fus) should beat cuDNN-MM (%.0fus)", name, times["cuda-convnet"], times["cuDNN-MM"])
		}
	}
	// ZFNet is close to a tie in the cost model (its huge first layer and
	// pooling layers favour CHWN while the deep layers favour NCHW), so the
	// strict ordering is asserted on AlexNet and VGG only.
	for _, name := range []string{"AlexNet", "VGG"} {
		times := estimateAll(t, d, nets[name])
		if times["cuDNN-Best"] >= times["cuda-convnet"] {
			t.Errorf("%s: cuDNN-Best (%.0fus) should beat cuda-convnet (%.0fus)", name, times["cuDNN-Best"], times["cuda-convnet"])
		}
	}
}

func TestLeNetSpeedupOverCuDNNIsLarge(t *testing.T) {
	// Section VI.C: for LeNet the optimised framework achieves a multi-x
	// speedup over cuDNN-MM (the paper reports 5.61x).
	d := gpusim.TitanBlack()
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	times := estimateAll(t, d, nets["LeNet"])
	speedup := times["cuDNN-MM"] / times["Opt"]
	if speedup < 2 {
		t.Errorf("LeNet speedup over cuDNN-MM = %.2fx, expected a large factor", speedup)
	}
}

func TestCuDNNBestNeverLosesToOtherCuDNNModes(t *testing.T) {
	d := gpusim.TitanBlack()
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range workloads.NetworkOrder {
		times := estimateAll(t, d, nets[name])
		best := times["cuDNN-Best"]
		for _, mode := range []string{"cuDNN-MM", "cuDNN-FFT", "cuDNN-FFT-T"} {
			if best > times[mode]*1.001 {
				t.Errorf("%s: cuDNN-Best (%.0fus) loses to %s (%.0fus)", name, best, mode, times[mode])
			}
		}
	}
}

func TestCuDNNFFTFallsBackOnOOMLayers(t *testing.T) {
	// ZFNet contains CONV5/CONV6-shaped layers whose FFT mode exceeds device
	// memory; the cuDNN-FFT emulation must still produce a plan by falling
	// back to the MM mode for those layers (as the paper's methodology
	// describes).
	d := gpusim.TitanBlack()
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	planner := frameworks.CuDNN(frameworks.CuDNNFFT)
	plan, err := planner.Plan(d, nets["ZFNet"])
	if err != nil {
		t.Fatalf("cuDNN-FFT must fall back instead of failing: %v", err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTitanXShowsSameTrends(t *testing.T) {
	// Section VI.C: the Titan X shows the same qualitative trends — the
	// optimised framework wins on both the small MNIST network and VGG.
	d := gpusim.TitanX()
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"LeNet", "VGG"} {
		out := make(map[string]float64)
		for _, p := range frameworks.All(layout.Thresholds{}) { // calibrate on the Titan X model
			plan, err := p.Plan(d, nets[name])
			if err != nil {
				t.Fatalf("%s on %s: %v", p.Name(), name, err)
			}
			est, err := plan.Estimate()
			if err != nil {
				t.Fatal(err)
			}
			out[p.Name()] = est.TotalUS
		}
		for planner, us := range out {
			if planner == "Opt" {
				continue
			}
			if out["Opt"] > us*1.001 {
				t.Errorf("Titan X %s: Opt (%.0fus) loses to %s (%.0fus)", name, out["Opt"], planner, us)
			}
		}
	}
}

func TestCuDNNModeString(t *testing.T) {
	modes := []frameworks.CuDNNMode{frameworks.CuDNNMM, frameworks.CuDNNFFT, frameworks.CuDNNFFTTiling, frameworks.CuDNNBest, frameworks.CuDNNMode(9)}
	for _, m := range modes {
		if m.String() == "" {
			t.Error("CuDNNMode.String must not be empty")
		}
	}
}

func TestPlannerNames(t *testing.T) {
	want := map[string]bool{
		"cuDNN-MM": true, "cuDNN-FFT": true, "cuDNN-FFT-T": true,
		"cuda-convnet": true, "cuDNN-Best": true, "Opt": true,
	}
	for _, p := range frameworks.All(layout.TitanBlackThresholds()) {
		if !want[p.Name()] {
			t.Errorf("unexpected planner name %q", p.Name())
		}
		delete(want, p.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing planners: %v", want)
	}
}
