// Package frameworks emulates the layout and implementation policies of the
// GPU CNN libraries the paper compares against (Section II.B and VI.C):
//
//	cuda-convnet  — CHWN layout, direct convolution, its own pooling/softmax
//	Caffe         — NCHW layout, im2col+GEMM convolution
//	cuDNN-MM      — NCHW, GEMM mode
//	cuDNN-FFT     — NCHW, FFT mode, falling back to GEMM when it fails
//	cuDNN-FFT-T   — NCHW, FFT-Tiling mode, falling back to GEMM when it fails
//	cuDNN-Best    — NCHW, the fastest mode per layer
//	Opt           — the paper's optimiser (internal/core)
//
// Every emulation is a network.Planner so the whole-network benchmarks can
// price them on identical network descriptions.
package frameworks

import (
	"memcnn/internal/core"
	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/layout"
	"memcnn/internal/network"
	"memcnn/internal/tensor"
)

// CuDNNMode selects the convolution mode of the cuDNN emulation.
type CuDNNMode int

// The cuDNN convolution modes of Section VI.C.
const (
	CuDNNMM CuDNNMode = iota
	CuDNNFFT
	CuDNNFFTTiling
	CuDNNBest
)

// String names the mode the way the paper labels its bars.
func (m CuDNNMode) String() string {
	switch m {
	case CuDNNMM:
		return "cuDNN-MM"
	case CuDNNFFT:
		return "cuDNN-FFT"
	case CuDNNFFTTiling:
		return "cuDNN-FFT-T"
	case CuDNNBest:
		return "cuDNN-Best"
	default:
		return "cuDNN-?"
	}
}

// CudaConvnet returns the cuda-convnet2 emulation: everything in CHWN with
// the direct convolution and the library's own memory-bound kernels.
func CudaConvnet() network.Planner {
	return &network.FixedLayoutPlanner{
		PlannerName: "cuda-convnet",
		Layout:      tensor.CHWN,
		Options: func(l layers.Layer) layers.CostOptions {
			opts := layers.CostOptions{}
			if _, ok := l.(*layers.Softmax); ok {
				opts.Softmax = kernels.SoftmaxThreadPerImage
			}
			return opts
		},
	}
}

// Caffe returns the Caffe emulation: NCHW with im2col+GEMM convolutions and
// the framework's plain pooling and multi-kernel softmax.
func Caffe() network.Planner {
	return &network.FixedLayoutPlanner{
		PlannerName: "Caffe",
		Layout:      tensor.NCHW,
		Options: func(l layers.Layer) layers.CostOptions {
			opts := layers.CostOptions{}
			switch l.(type) {
			case *layers.Conv:
				opts.Conv = layers.ConvGemmImpl
			case *layers.Softmax:
				opts.Softmax = kernels.SoftmaxThreadPerImage
			}
			return opts
		},
	}
}

// CuDNN returns the cuDNN v4 emulation in the requested convolution mode.
// The FFT modes fall back to the MM mode on layers where they fail, matching
// the paper's "falls back to the cuDNN-MM mode if failed" methodology.
func CuDNN(mode CuDNNMode) network.Planner {
	conv := layers.ConvGemmImpl
	switch mode {
	case CuDNNFFT:
		conv = layers.ConvFFTImpl
	case CuDNNFFTTiling:
		conv = layers.ConvFFTTilingImpl
	case CuDNNBest:
		conv = layers.ConvBestNCHW
	}
	return &network.FixedLayoutPlanner{
		PlannerName: mode.String(),
		Layout:      tensor.NCHW,
		Options: func(l layers.Layer) layers.CostOptions {
			opts := layers.CostOptions{}
			switch l.(type) {
			case *layers.Conv:
				opts.Conv = conv
			case *layers.Pool:
				opts.Pool = layers.PoolCuDNNVariant
			case *layers.Softmax:
				opts.Softmax = kernels.SoftmaxBlockPerImage
			}
			return opts
		},
		Fallback: func(l layers.Layer, err error) (layers.CostOptions, bool) {
			if _, ok := l.(*layers.Conv); ok {
				return layers.CostOptions{Conv: layers.ConvGemmImpl}, true
			}
			return layers.CostOptions{}, false
		},
	}
}

// Optimized returns the paper's optimiser with the given thresholds (zero
// thresholds trigger per-device calibration).
func Optimized(th layout.Thresholds) network.Planner {
	return core.NewOptimizer(core.Options{Thresholds: th})
}

// All returns the planners compared in Fig. 14, keyed in presentation order.
func All(th layout.Thresholds) []network.Planner {
	return []network.Planner{
		CuDNN(CuDNNMM),
		CuDNN(CuDNNFFT),
		CuDNN(CuDNNFFTTiling),
		CudaConvnet(),
		CuDNN(CuDNNBest),
		Optimized(th),
	}
}
