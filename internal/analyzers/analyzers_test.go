package analyzers

import (
	"strings"
	"testing"
)

// runOn type-checks one in-memory file and runs a single analyzer over it.
func runOn(t *testing.T, a *Analyzer, src string) []Diagnostic {
	t.Helper()
	pkg, err := loadSource("test.go", src)
	if err != nil {
		t.Fatalf("loadSource: %v", err)
	}
	return Run([]*Package{pkg}, []*Analyzer{a})
}

// wantDiags asserts that exactly the diagnostics matching the given
// substrings were produced, in position order.
func wantDiags(t *testing.T, diags []Diagnostic, substrings ...string) {
	t.Helper()
	if len(diags) != len(substrings) {
		var got []string
		for _, d := range diags {
			got = append(got, d.String())
		}
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(substrings), strings.Join(got, "\n"))
	}
	for i, want := range substrings {
		if !strings.Contains(diags[i].String(), want) {
			t.Errorf("diagnostic %d = %q, want substring %q", i, diags[i], want)
		}
	}
}

func TestNoAllocFlagsAllocations(t *testing.T) {
	diags := runOn(t, NoAlloc, `package p

//memcnn:noalloc
func hot(dst []int, s string) {
	buf := make([]int, 8)
	_ = buf
	f := func() {}
	f()
	go f()
	lit := []int{1, 2}
	_ = lit
	s2 := s + s
	_ = s2
	b := []byte(s)
	_ = b
}
`)
	wantDiags(t, diags,
		"make allocates in noalloc function hot",
		"closure allocates in noalloc function hot",
		"go statement allocates a goroutine in noalloc function hot",
		"composite literal allocates in noalloc function hot",
		"string concatenation allocates in noalloc function hot",
		"string conversion allocates in noalloc function hot",
	)
}

func TestNoAllocIgnoresUnannotated(t *testing.T) {
	diags := runOn(t, NoAlloc, `package p

func cold() []int {
	return make([]int, 8)
}
`)
	wantDiags(t, diags)
}

func TestNoAllocReturnExemption(t *testing.T) {
	// Allocations syntactically inside a return statement run at most once
	// (the error path), so they are exempt.
	diags := runOn(t, NoAlloc, `package p

import "fmt"

//memcnn:noalloc
func hot(n int) error {
	if n < 0 {
		return fmt.Errorf("bad n %d", n)
	}
	return nil
}
`)
	wantDiags(t, diags)
}

func TestNoAllocFmtOutsideReturn(t *testing.T) {
	diags := runOn(t, NoAlloc, `package p

import "fmt"

//memcnn:noalloc
func hot(n int) error {
	err := fmt.Errorf("bad n %d", n)
	return err
}
`)
	wantDiags(t, diags, "fmt.Errorf allocates in noalloc function hot")
}

func TestNoAllocOKMarker(t *testing.T) {
	// A line carrying //memcnn:alloc-ok is an acknowledged allocation; the
	// go statement and its function literal are both excused.
	diags := runOn(t, NoAlloc, `package p

import "sync"

//memcnn:noalloc
func hot(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { //memcnn:alloc-ok
		defer wg.Done()
	}()
	wg.Wait()
}
`)
	wantDiags(t, diags)
}

func TestCtxFlowBackgroundShadow(t *testing.T) {
	diags := runOn(t, CtxFlow, `package p

import "context"

func withCtx(ctx context.Context) {
	_ = context.Background()
}

func withoutCtx() {
	_ = context.Background()
}
`)
	wantDiags(t, diags, "context.Background shadows the context.Context already available here")
}

func TestCtxFlowDroppedSibling(t *testing.T) {
	diags := runOn(t, CtxFlow, `package p

import "context"

type Exec struct{}

func (Exec) Run()                        {}
func (Exec) RunCtx(ctx context.Context)  {}
func (Exec) Solo()                       {}

func withCtx(ctx context.Context, e Exec) {
	e.Run()  // flagged: RunCtx exists
	e.Solo() // fine: no Ctx sibling
}

func withoutCtx(e Exec) {
	e.Run() // fine: no ctx in scope
}
`)
	wantDiags(t, diags, "Run drops the available context.Context; call RunCtx instead")
}

func TestCtxFlowClosureInheritsCtx(t *testing.T) {
	diags := runOn(t, CtxFlow, `package p

import "context"

func withCtx(ctx context.Context) {
	f := func() {
		_ = context.TODO()
	}
	f()
}
`)
	wantDiags(t, diags, "context.TODO shadows the context.Context already available here")
}

func TestAtomicAlignMisaligned(t *testing.T) {
	diags := runOn(t, AtomicAlign, `package p

import "sync/atomic"

type counters struct {
	flag int32
	n    int64 // offset 4 under 32-bit layout
}

func bump(c *counters) {
	atomic.AddInt64(&c.n, 1)
}
`)
	wantDiags(t, diags, "address of 64-bit field n is not 8-byte aligned on 32-bit targets (offset 4)")
}

func TestAtomicAlignFirstFieldOK(t *testing.T) {
	diags := runOn(t, AtomicAlign, `package p

import "sync/atomic"

type counters struct {
	n    int64
	flag int32
}

func bump(c *counters) {
	atomic.AddInt64(&c.n, 1)
}
`)
	wantDiags(t, diags)
}

func TestAtomicAlignMixedAccess(t *testing.T) {
	diags := runOn(t, AtomicAlign, `package p

import "sync/atomic"

type counters struct {
	n int64
}

func bump(c *counters) {
	atomic.AddInt64(&c.n, 1)
}

func peek(c *counters) int64 {
	return c.n
}
`)
	wantDiags(t, diags, "plain access of field n, which is accessed with 64-bit atomics elsewhere")
}

// TestLoadRepoPackage exercises the production loader (go list -export + gc
// importer) against a real module package and asserts the analyzers run
// clean over the annotated obs hot paths.
func TestLoadRepoPackage(t *testing.T) {
	pkgs, err := Load("../..", "./internal/obs")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "memcnn/internal/obs" {
		t.Fatalf("loaded %d packages, want exactly memcnn/internal/obs", len(pkgs))
	}
	if diags := Run(pkgs, All()); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}
