// Package analyzers implements the repository's custom static-analysis
// passes and the minimal go/analysis-style framework they run on.
//
// The framework is deliberately self-contained: it loads packages through
// `go list -deps -export -json` and type-checks them against the compiler's
// export data (go/importer), so it needs nothing beyond the standard library
// and the Go toolchain already required to build the repository.  The
// cmd/memcnnvet multichecker drives it in CI.
//
// Three passes machine-check contracts the runtime's hot paths rely on:
//
//   - noalloc: functions whose doc comment ends in a //memcnn:noalloc
//     directive must not heap-allocate.  The pass flags make/new/append,
//     closures and goroutine launches, composite literals, string
//     concatenation and conversions, and calls into fmt/errors.  Two
//     escape hatches keep the annotation honest rather than aspirational:
//     an allocation that is a direct operand of a `return` statement is
//     exempt (it runs at most once, on the failing call, never in steady
//     state), and a line carrying a //memcnn:alloc-ok comment is exempt
//     (the acknowledged goroutine fan-out of the parallel kernels).
//   - ctxflow: inside a function that has a context.Context available, the
//     pass flags calls that drop it — invoking a method like RunInto or
//     RunIntoModeled on a receiver that also offers the Ctx-suffixed
//     variant, or minting a fresh context.Background()/TODO().
//   - atomicalign: 64-bit sync/atomic calls on struct fields must stay
//     correct on 32-bit targets, so the pass recomputes each accessed
//     field's offset under 32-bit struct layout and flags any that is not
//     8-byte aligned; it also flags plain (non-atomic) reads or writes of
//     fields the package elsewhere accesses atomically.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the finding the way compilers do: file:line:col: message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a finding at the given position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one static-analysis pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns every analyzer the multichecker runs, in execution order.
func All() []*Analyzer {
	return []*Analyzer{NoAlloc, CtxFlow, AtomicAlign}
}

// Run applies the analyzers to every loaded package and returns the combined
// findings sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			a.Run(pass)
			diags = append(diags, pass.diags...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// unparen strips any number of enclosing parentheses (ast.Unparen needs a
// go1.22 language level the module does not yet declare).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
