package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// noallocDirective marks a function's doc comment: the function body must
// not heap-allocate.  noallocOK marks a single line inside such a function
// as an acknowledged allocation (the parallel kernels' goroutine fan-out).
const (
	noallocDirective = "//memcnn:noalloc"
	noallocOK        = "//memcnn:alloc-ok"
)

// NoAlloc forbids heap allocations in functions annotated //memcnn:noalloc.
//
// Flagged constructs: the make/new/append builtins, closures (FuncLit) and
// goroutine launches, composite literals of slice/map (and address-taken)
// kinds, non-constant string concatenation, string<->slice conversions, and
// any call into fmt or errors.  Interface boxing at arbitrary call sites is
// beyond a syntactic pass and is not flagged — the annotation documents the
// checked subset, it does not prove the function allocation-free.
//
// Exemptions: an allocation that is syntactically inside a `return`
// statement executes at most once, on the failing (or final) call, so error
// paths like `return fmt.Errorf(...)` stay legal; and a line carrying a
// //memcnn:alloc-ok comment is excluded, so the acknowledged goroutine
// fan-out of the parallel kernels does not need the directive removed.
var NoAlloc = &Analyzer{
	Name: "noalloc",
	Doc:  "forbid heap allocations in functions marked " + noallocDirective,
	Run:  runNoAlloc,
}

func runNoAlloc(pass *Pass) {
	for _, file := range pass.Files {
		okLines := allocOKLines(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, noallocDirective) {
				continue
			}
			checkNoAlloc(pass, fn, okLines)
		}
	}
}

// hasDirective reports whether a doc comment contains the given directive
// line.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if text := strings.TrimSpace(c.Text); text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

// allocOKLines collects the line numbers carrying an //memcnn:alloc-ok
// marker in the file.
func allocOKLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(strings.TrimSpace(c.Text), noallocOK) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// noallocWalker carries the per-function state of the allocation scan.
type noallocWalker struct {
	pass      *Pass
	fn        *ast.FuncDecl
	okLines   map[int]bool
	inReturn  int
	goFunLits map[*ast.FuncLit]bool // FuncLits already reported as part of a `go` statement
}

func checkNoAlloc(pass *Pass, fn *ast.FuncDecl, okLines map[int]bool) {
	w := &noallocWalker{pass: pass, fn: fn, okLines: okLines, goFunLits: make(map[*ast.FuncLit]bool)}
	ast.Inspect(fn.Body, w.visit)
}

// report files the finding unless the node sits on an acknowledged line or
// inside a return statement.
func (w *noallocWalker) report(pos token.Pos, format string, args ...any) {
	if w.inReturn > 0 {
		return
	}
	if w.okLines[w.pass.Fset.Position(pos).Line] {
		return
	}
	w.pass.Reportf(pos, format, append(args, w.fn.Name.Name)...)
}

func (w *noallocWalker) visit(n ast.Node) bool {
	if n == nil {
		return true
	}
	// Track return statements: Inspect has no exit hook, so returns are
	// handled by a nested walk that skips the outer traversal.
	if ret, ok := n.(*ast.ReturnStmt); ok {
		w.inReturn++
		for _, res := range ret.Results {
			ast.Inspect(res, w.visit)
		}
		w.inReturn--
		return false
	}
	switch n := n.(type) {
	case *ast.GoStmt:
		w.report(n.Pos(), "go statement allocates a goroutine in noalloc function %s")
		if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
			w.goFunLits[lit] = true
		}
	case *ast.FuncLit:
		if !w.goFunLits[n] {
			w.report(n.Pos(), "closure allocates in noalloc function %s")
		}
	case *ast.CallExpr:
		w.checkCall(n)
	case *ast.CompositeLit:
		switch w.pass.Info.Types[n].Type.Underlying().(type) {
		case *types.Slice, *types.Map:
			w.report(n.Pos(), "composite literal allocates in noalloc function %s")
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				w.report(n.Pos(), "address-taken composite literal allocates in noalloc function %s")
			}
		}
	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if tv, ok := w.pass.Info.Types[n]; ok && tv.Value == nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					w.report(n.Pos(), "string concatenation allocates in noalloc function %s")
				}
			}
		}
	}
	return true
}

func (w *noallocWalker) checkCall(call *ast.CallExpr) {
	info := w.pass.Info
	// Builtins make/new/append.
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				w.report(call.Pos(), b.Name()+" allocates in noalloc function %s")
			}
			return
		}
	}
	// Calls into fmt or errors: formatting and boxing both allocate.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := info.Uses[id].(*types.PkgName); ok {
				switch pn.Imported().Path() {
				case "fmt", "errors":
					w.report(call.Pos(), pn.Imported().Path()+"."+sel.Sel.Name+" allocates in noalloc function %s")
					return
				}
			}
		}
	}
	// Conversions between string and byte/rune slices copy into fresh
	// storage.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := info.Types[call.Args[0]].Type
		if from == nil {
			return
		}
		fromU := from.Underlying()
		toStr := isString(to)
		fromStr := isString(fromU)
		_, toSlice := to.(*types.Slice)
		_, fromSlice := fromU.(*types.Slice)
		if (toStr && fromSlice) || (toSlice && fromStr) {
			w.report(call.Pos(), "string conversion allocates in noalloc function %s")
		}
	}
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
