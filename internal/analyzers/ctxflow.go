package analyzers

import (
	"go/ast"
	"go/types"
)

// CtxFlow flags call sites that drop an available context.Context.
//
// Inside any function (declaration or literal) that has a context.Context
// parameter in scope, two shapes lose the caller's cancellation and
// deadline:
//
//   - calling a method whose receiver also offers a Ctx-suffixed variant
//     (Executor.RunInto vs RunIntoCtx, RunIntoModeled vs RunIntoModeledCtx):
//     the context-less form silently runs the request to completion even
//     after the caller gave up;
//   - minting a fresh context.Background() or context.TODO(): the new
//     context shadows the one the caller handed in.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag calls that drop or shadow an available context.Context",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCtxFlow(pass, fn.Body, hasCtxParam(pass, fn.Type))
		}
	}
}

// checkCtxFlow walks a function body knowing whether a context.Context is in
// scope; nested function literals re-derive availability (their own ctx
// parameter, or the captured outer one).
func checkCtxFlow(pass *Pass, body ast.Node, ctxAvailable bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkCtxFlow(pass, n.Body, ctxAvailable || hasCtxParam(pass, n.Type))
			return false
		case *ast.CallExpr:
			if !ctxAvailable {
				return true
			}
			sel, ok := unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// context.Background() / context.TODO()
			if id, ok := sel.X.(*ast.Ident); ok {
				if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "context" {
					if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
						pass.Reportf(n.Pos(), "context.%s shadows the context.Context already available here", sel.Sel.Name)
					}
					return true
				}
			}
			// Method with a Ctx-suffixed sibling on the same receiver.
			s := pass.Info.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal {
				return true
			}
			name := sel.Sel.Name
			if obj, _, _ := types.LookupFieldOrMethod(s.Recv(), true, pass.Pkg, name+"Ctx"); obj != nil {
				if _, isFunc := obj.(*types.Func); isFunc {
					pass.Reportf(n.Pos(), "%s drops the available context.Context; call %sCtx instead", name, name)
				}
			}
		}
		return true
	})
}

// hasCtxParam reports whether the function type declares a context.Context
// parameter.
func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok {
			continue
		}
		if isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
