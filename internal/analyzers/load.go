package analyzers

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed and type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the given package patterns (e.g. "./...") relative to dir,
// parses and type-checks every matched package, and returns them ready for
// analysis.  Dependencies — standard library and module-internal alike — are
// imported from the compiler export data `go list -export` produces, so the
// loader works offline with nothing but the Go toolchain.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,Export,DepOnly,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analyzers: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analyzers: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("analyzers: loading %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analyzers: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range targets {
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analyzers: parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analyzers: type-checking %s: %v", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// newInfo allocates the full types.Info the analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// loadSource parses and type-checks a single in-memory file against the
// source importer — the test path, where no export data exists for the
// synthetic package itself.
func loadSource(filename, src string) (*Package, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(f.Name.Name, fset, []*ast.File{f}, info)
	if err != nil {
		return nil, err
	}
	return &Package{
		ImportPath: f.Name.Name,
		Fset:       fset,
		Files:      []*ast.File{f},
		Types:      tpkg,
		Info:       info,
	}, nil
}
