package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AtomicAlign verifies 64-bit atomic struct-field access.
//
// On 32-bit targets the sync/atomic 64-bit operations require their operand
// to be 8-byte aligned, but struct fields are only guaranteed 4-byte
// alignment there.  The pass recomputes the offset of every struct field
// passed to a 64-bit sync/atomic function under 32-bit ("gc"/386) layout
// rules and flags any field whose offset is not a multiple of 8 — the same
// discipline `go vet`'s atomicalign applies, but enforced regardless of the
// build host so a 64-bit-only CI still catches it.
//
// It also flags plain (non-atomic) reads or writes of fields the package
// accesses atomically elsewhere: mixing the two hides the data race the
// atomic was meant to remove.  Fields wrapped in the atomic.Int64/Uint64/
// Pointer types are immune by construction and never flagged.
var AtomicAlign = &Analyzer{
	Name: "atomicalign",
	Doc:  "verify 64-bit atomically-accessed struct fields are alignment-safe and never mixed with plain access",
	Run:  runAtomicAlign,
}

// sizes32 models the strictest supported layout: 32-bit words, where 64-bit
// fields land on 4-byte boundaries unless the preceding fields align them.
var sizes32 = types.SizesFor("gc", "386")

func runAtomicAlign(pass *Pass) {
	atomicFields := make(map[*types.Var]token.Pos) // fields accessed via 64-bit atomics
	sanctioned := make(map[*ast.SelectorExpr]bool) // selectors inside atomic call operands
	var plainUses []*ast.SelectorExpr              // every other field selector

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if fn64 := atomic64Callee(pass, call); fn64 != "" && len(call.Args) > 0 {
					if sel := addressedField(call.Args[0]); sel != nil {
						s := pass.Info.Selections[sel]
						if s != nil && s.Kind() == types.FieldVal {
							field := s.Obj().(*types.Var)
							atomicFields[field] = sel.Pos()
							sanctioned[sel] = true
							if off, ok := fieldOffset32(s); ok && off%8 != 0 {
								pass.Reportf(sel.Pos(), "%s: address of 64-bit field %s is not 8-byte aligned on 32-bit targets (offset %d); move the field first in the struct or use atomic.%s",
									fn64, field.Name(), off, suggestedWrapper(field))
							}
						}
					}
				}
				return true
			}
			if sel, ok := n.(*ast.SelectorExpr); ok && !sanctioned[sel] {
				plainUses = append(plainUses, sel)
			}
			return true
		})
	}

	for _, sel := range plainUses {
		s := pass.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			continue
		}
		field, ok := s.Obj().(*types.Var)
		if !ok {
			continue
		}
		if _, atomicUse := atomicFields[field]; atomicUse && !sanctioned[sel] {
			pass.Reportf(sel.Pos(), "plain access of field %s, which is accessed with 64-bit atomics elsewhere; all access must go through sync/atomic", field.Name())
		}
	}
}

// atomic64Callee returns the sync/atomic function name when the call is one
// of the 64-bit operations (AddInt64, LoadUint64, StoreInt64, SwapUint64,
// CompareAndSwapInt64, ...), and "" otherwise.
func atomic64Callee(pass *Pass, call *ast.CallExpr) string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != "sync/atomic" {
		return ""
	}
	if !strings.HasSuffix(sel.Sel.Name, "64") {
		return ""
	}
	return "atomic." + sel.Sel.Name
}

// addressedField unwraps &x.f (possibly parenthesised) to the selector.
func addressedField(arg ast.Expr) *ast.SelectorExpr {
	un, ok := unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	sel, _ := unparen(un.X).(*ast.SelectorExpr)
	return sel
}

// fieldOffset32 computes the selected field's byte offset from the start of
// its outermost containing allocation under 32-bit layout, following the
// selection's embedded-field path.  A pointer crossing restarts the offset:
// the pointed-to struct is its own allocation, and Go guarantees the first
// word of an allocation is 64-bit aligned.
func fieldOffset32(s *types.Selection) (int64, bool) {
	t := s.Recv()
	var offset int64
	for _, idx := range s.Index() {
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			t = ptr.Elem()
			offset = 0
		}
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offsets := sizes32.Offsetsof(fields)
		offset += offsets[idx]
		t = st.Field(idx).Type()
	}
	return offset, true
}

// suggestedWrapper names the sync/atomic wrapper type matching the field.
func suggestedWrapper(field *types.Var) string {
	if b, ok := field.Type().Underlying().(*types.Basic); ok && b.Kind() == types.Uint64 {
		return "Uint64"
	}
	return "Int64"
}
