package workloads

import (
	"fmt"

	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/network"
	"memcnn/internal/tensor"
)

// netBuilder incrementally assembles a network, tracking the current
// activation shape so layer configurations stay consistent.
type netBuilder struct {
	name  string
	batch int
	shape tensor.Shape
	ls    []layers.Layer
	seed  uint64
	err   error
}

func newNetBuilder(name string, batch int, input tensor.Shape) *netBuilder {
	return &netBuilder{name: name, batch: batch, shape: input, seed: 1}
}

func (b *netBuilder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// conv appends a convolution (with optional padding and stride) and returns
// the builder for chaining.
func (b *netBuilder) conv(name string, k, f, stride, pad int) *netBuilder {
	if b.err != nil {
		return b
	}
	cfg := kernels.ConvConfig{
		N: b.batch, C: b.shape.C, H: b.shape.H, W: b.shape.W,
		K: k, FH: f, FW: f, StrideH: stride, StrideW: stride, PadH: pad, PadW: pad,
	}
	l, err := layers.NewConv(name, cfg, b.seed)
	if err != nil {
		b.fail(fmt.Errorf("workloads: %s/%s: %w", b.name, name, err))
		return b
	}
	b.seed++
	b.ls = append(b.ls, l)
	b.shape = l.OutputShape()
	return b
}

// convRelu appends a convolution followed by its rectifier.
func (b *netBuilder) convRelu(name string, k, f, stride, pad int) *netBuilder {
	b.conv(name, k, f, stride, pad)
	return b.relu(name + "_relu")
}

func (b *netBuilder) pool(name string, window, stride int) *netBuilder {
	if b.err != nil {
		return b
	}
	cfg := kernels.PoolConfig{
		N: b.batch, C: b.shape.C, H: b.shape.H, W: b.shape.W,
		Window: window, Stride: stride, Op: kernels.MaxPool,
	}
	l, err := layers.NewPool(name, cfg)
	if err != nil {
		b.fail(fmt.Errorf("workloads: %s/%s: %w", b.name, name, err))
		return b
	}
	b.ls = append(b.ls, l)
	b.shape = l.OutputShape()
	return b
}

func (b *netBuilder) relu(name string) *netBuilder {
	if b.err != nil {
		return b
	}
	l, err := layers.NewReLU(name, b.shape)
	if err != nil {
		b.fail(err)
		return b
	}
	b.ls = append(b.ls, l)
	return b
}

func (b *netBuilder) lrn(name string) *netBuilder {
	if b.err != nil {
		return b
	}
	l, err := layers.NewLRN(name, b.shape, 5, 0, 0)
	if err != nil {
		b.fail(err)
		return b
	}
	b.ls = append(b.ls, l)
	return b
}

func (b *netBuilder) fc(name string, out int) *netBuilder {
	if b.err != nil {
		return b
	}
	in := b.shape.C * b.shape.H * b.shape.W
	l, err := layers.NewFullyConnected(name, b.batch, in, out, b.seed)
	if err != nil {
		b.fail(fmt.Errorf("workloads: %s/%s: %w", b.name, name, err))
		return b
	}
	b.seed++
	b.ls = append(b.ls, l)
	b.shape = l.OutputShape()
	return b
}

func (b *netBuilder) softmax(name string, classes int) *netBuilder {
	if b.err != nil {
		return b
	}
	if b.shape.C != classes || b.shape.H != 1 || b.shape.W != 1 {
		b.fail(fmt.Errorf("workloads: %s/%s: softmax over %d classes fed with shape %v", b.name, name, classes, b.shape))
		return b
	}
	l, err := layers.NewSoftmax(name, kernels.SoftmaxConfig{N: b.batch, Classes: classes})
	if err != nil {
		b.fail(err)
		return b
	}
	b.ls = append(b.ls, l)
	return b
}

func (b *netBuilder) build() (*network.Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	return network.New(b.name, b.batch, b.ls...)
}

// LeNet returns the MNIST network of Table 1 (batch 128): two padded 5×5
// convolutions with 2×2 non-overlapped pooling and a small classifier.
func LeNet() (*network.Network, error) {
	b := newNetBuilder("LeNet", 128, tensor.Shape{N: 128, C: 1, H: 28, W: 28})
	b.conv("conv1", 16, 5, 1, 2).
		pool("pool1", 2, 2).
		conv("conv2", 16, 5, 1, 2).
		pool("pool2", 2, 2).
		fc("fc1", 100).
		relu("relu1").
		fc("fc2", 10).
		softmax("prob", 10)
	return b.build()
}

// Cifar10 returns the cuda-convnet CIFAR-10 example network of Table 1
// (batch 128, 24×24 crops, overlapped 3×3 pooling).
func Cifar10() (*network.Network, error) {
	return Cifar10WithBatch(128)
}

// Cifar10WithBatch returns the CIFAR-10 network at an arbitrary batch size,
// layer shapes unchanged; like AlexNetWithBatch it is the affordable
// golden-equivalence configuration for CI.
func Cifar10WithBatch(batch int) (*network.Network, error) {
	b := newNetBuilder("Cifar10", batch, tensor.Shape{N: batch, C: 3, H: 24, W: 24})
	b.conv("conv1", 64, 5, 1, 2).
		pool("pool1", 3, 2).
		conv("conv2", 64, 5, 1, 2).
		pool("pool2", 3, 2).
		fc("fc1", 64).
		relu("relu1").
		fc("fc2", 10).
		softmax("prob", 10)
	return b.build()
}

// AlexNetBatch is the batch size used for the whole-network AlexNet runs.
// The paper's Fig. 15 reports that the optimiser selects CHWN for the first
// convolution and NCHW for the rest; with the published (Ct, Nt) = (32, 128)
// thresholds that assignment corresponds to a batch of 64 (at batch 128 the
// batch rule would select CHWN everywhere), so the whole-network experiments
// use 64 images per batch.
const AlexNetBatch = 64

// AlexNet returns the AlexNet model (5 convolutions, 3 overlapped pools,
// 2 LRN layers, 3 fully-connected layers and the softmax classifier).
func AlexNet() (*network.Network, error) {
	return AlexNetWithBatch(AlexNetBatch)
}

// AlexNetWithBatch returns the AlexNet model at an arbitrary batch size.  The
// layer shapes (channels, filters, feature maps) are unchanged, which is what
// the CI golden-equivalence suite relies on: a small batch keeps the
// functional cross-check affordable while still exercising the
// ImageNet-scale per-layer configurations.
func AlexNetWithBatch(batch int) (*network.Network, error) {
	b := newNetBuilder("AlexNet", batch, tensor.Shape{N: batch, C: 3, H: 227, W: 227})
	b.convRelu("conv1", 96, 11, 4, 0).
		lrn("norm1").
		pool("pool1", 3, 2).
		convRelu("conv2", 256, 5, 1, 2).
		lrn("norm2").
		pool("pool2", 3, 2).
		convRelu("conv3", 384, 3, 1, 1).
		convRelu("conv4", 384, 3, 1, 1).
		convRelu("conv5", 256, 3, 1, 1).
		pool("pool5", 3, 2).
		fc("fc6", 4096).
		relu("relu6").
		fc("fc7", 4096).
		relu("relu7").
		fc("fc8", 1000).
		softmax("prob", 1000)
	return b.build()
}

// ZFNet returns the ZFNet model with the layer shapes of Table 1 (batch 64).
func ZFNet() (*network.Network, error) {
	return ZFNetWithBatch(64)
}

// ZFNetWithBatch returns the ZFNet model at an arbitrary batch size, layer
// shapes unchanged; like AlexNetWithBatch it is the affordable
// golden-equivalence configuration for CI.
func ZFNetWithBatch(batch int) (*network.Network, error) {
	b := newNetBuilder("ZFNet", batch, tensor.Shape{N: batch, C: 3, H: 224, W: 224})
	b.convRelu("conv1", 96, 3, 2, 0).
		pool("pool1", 3, 2).
		convRelu("conv2", 256, 5, 2, 0).
		pool("pool2", 3, 2).
		convRelu("conv3", 384, 3, 1, 1).
		convRelu("conv4", 384, 3, 1, 1).
		convRelu("conv5", 256, 3, 1, 1).
		pool("pool3", 3, 2).
		fc("fc6", 4096).
		relu("relu6").
		fc("fc7", 4096).
		relu("relu7").
		fc("fc8", 1000).
		softmax("prob", 1000)
	return b.build()
}

// VGG returns the VGG-16 model (batch 32): thirteen 3×3 convolutions in five
// blocks separated by 2×2 pooling, then the three fully-connected layers.
func VGG() (*network.Network, error) {
	return VGGWithBatch(32)
}

// VGGWithBatch returns the VGG-16 model at an arbitrary batch size, layer
// shapes unchanged; like AlexNetWithBatch it is the affordable
// ImageNet-scale configuration for functional CI runs.
func VGGWithBatch(batch int) (*network.Network, error) {
	b := newNetBuilder("VGG", batch, tensor.Shape{N: batch, C: 3, H: 224, W: 224})
	b.convRelu("conv1_1", 64, 3, 1, 1).
		convRelu("conv1_2", 64, 3, 1, 1).
		pool("pool1", 2, 2).
		convRelu("conv2_1", 128, 3, 1, 1).
		convRelu("conv2_2", 128, 3, 1, 1).
		pool("pool2", 2, 2).
		convRelu("conv3_1", 256, 3, 1, 1).
		convRelu("conv3_2", 256, 3, 1, 1).
		convRelu("conv3_3", 256, 3, 1, 1).
		pool("pool3", 2, 2).
		convRelu("conv4_1", 512, 3, 1, 1).
		convRelu("conv4_2", 512, 3, 1, 1).
		convRelu("conv4_3", 512, 3, 1, 1).
		pool("pool4", 2, 2).
		convRelu("conv5_1", 512, 3, 1, 1).
		convRelu("conv5_2", 512, 3, 1, 1).
		convRelu("conv5_3", 512, 3, 1, 1).
		pool("pool5", 2, 2).
		fc("fc6", 4096).
		relu("relu6").
		fc("fc7", 4096).
		relu("relu7").
		fc("fc8", 1000).
		softmax("prob", 1000)
	return b.build()
}

// TinyNet returns a small LeNet-style network (batch 4, 12×12 inputs) that is
// cheap enough for functional end-to-end tests and the quickstart example.
func TinyNet() (*network.Network, error) {
	b := newNetBuilder("TinyNet", 4, tensor.Shape{N: 4, C: 1, H: 12, W: 12})
	b.conv("conv1", 4, 3, 1, 1).
		pool("pool1", 2, 2).
		conv("conv2", 8, 3, 1, 1).
		pool("pool2", 2, 2).
		fc("fc1", 16).
		relu("relu1").
		fc("fc2", 5).
		softmax("prob", 5)
	return b.build()
}

// Networks returns the five complete networks of the paper's whole-network
// evaluation (Fig. 14) in presentation order.
func Networks() (map[string]*network.Network, error) {
	out := make(map[string]*network.Network, 5)
	for _, build := range []struct {
		name string
		fn   func() (*network.Network, error)
	}{
		{"LeNet", LeNet}, {"Cifar10", Cifar10}, {"AlexNet", AlexNet}, {"ZFNet", ZFNet}, {"VGG", VGG},
	} {
		net, err := build.fn()
		if err != nil {
			return nil, fmt.Errorf("workloads: building %s: %w", build.name, err)
		}
		out[build.name] = net
	}
	return out, nil
}

// NetworkOrder is the presentation order of the whole-network results.
var NetworkOrder = []string{"LeNet", "Cifar10", "AlexNet", "ZFNet", "VGG"}
