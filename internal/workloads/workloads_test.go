package workloads

import (
	"math"
	"testing"

	"memcnn/internal/layers"
	"memcnn/internal/network"
	"memcnn/internal/tensor"
)

func TestTable1ConvsMatchPaper(t *testing.T) {
	convs := Table1Convs()
	if len(convs) != 12 {
		t.Fatalf("Table 1 has 12 convolutional layers, got %d", len(convs))
	}
	for _, c := range convs {
		if err := c.Cfg.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	// Spot-check a few entries against the published table.
	cv1, err := FindConv("CV1")
	if err != nil {
		t.Fatal(err)
	}
	if cv1.Cfg.N != 128 || cv1.Cfg.C != 1 || cv1.Cfg.H != 28 || cv1.Cfg.K != 16 || cv1.Cfg.FH != 5 {
		t.Errorf("CV1 = %+v does not match Table 1", cv1.Cfg)
	}
	cv6, err := FindConv("CV6")
	if err != nil {
		t.Fatal(err)
	}
	if cv6.Cfg.N != 64 || cv6.Cfg.C != 96 || cv6.Cfg.H != 55 || cv6.Cfg.K != 256 || cv6.Cfg.StrideH != 2 {
		t.Errorf("CV6 = %+v does not match Table 1", cv6.Cfg)
	}
	cv12, err := FindConv("CV12")
	if err != nil {
		t.Fatal(err)
	}
	if cv12.Cfg.N != 32 || cv12.Cfg.C != 512 || cv12.Cfg.H != 14 {
		t.Errorf("CV12 = %+v does not match Table 1", cv12.Cfg)
	}
	if _, err := FindConv("CV99"); err == nil {
		t.Error("unknown layer name must be rejected")
	}
}

func TestTable1PoolsMatchPaper(t *testing.T) {
	pools := Table1Pools()
	if len(pools) != 10 {
		t.Fatalf("Table 1 has 10 pooling layers, got %d", len(pools))
	}
	overlapped := 0
	for _, p := range pools {
		if err := p.Cfg.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.Cfg.Overlapped() {
			overlapped++
		}
	}
	// PL1 and PL2 (LeNet) are non-overlapped, the remaining eight are
	// window-3 stride-2 overlapped pools.
	if overlapped != 8 {
		t.Errorf("expected 8 overlapped pooling layers, got %d", overlapped)
	}
	pl5, err := FindPool("PL5")
	if err != nil {
		t.Fatal(err)
	}
	if pl5.Cfg.C != 96 || pl5.Cfg.H != 55 || pl5.Cfg.N != 128 {
		t.Errorf("PL5 = %+v does not match Table 1", pl5.Cfg)
	}
	if _, err := FindPool("PL42"); err == nil {
		t.Error("unknown pool name must be rejected")
	}
}

func TestTable1SoftmaxAndSweep(t *testing.T) {
	cls := Table1Softmax()
	if len(cls) != 5 {
		t.Fatalf("Table 1 has 5 classifier layers, got %d", len(cls))
	}
	for _, c := range cls {
		if err := c.Cfg.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	if cls[2].Cfg.Classes != 1000 || cls[2].Cfg.N != 128 {
		t.Errorf("CLASS3 = %+v should be 128 images x 1000 categories", cls[2].Cfg)
	}
	sweep := SoftmaxSweep()
	if len(sweep) != 12 {
		t.Fatalf("Fig. 13 sweeps 12 configurations, got %d", len(sweep))
	}
	for _, s := range sweep {
		if err := s.Cfg.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestFig1Workloads(t *testing.T) {
	convs := AlexNetFig1Convs()
	if len(convs) != 5 {
		t.Fatalf("AlexNet has 5 convolutional layers, got %d", len(convs))
	}
	for _, c := range convs {
		if err := c.Cfg.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
	if convs[0].Cfg.C != 3 || convs[1].Cfg.C != 96 {
		t.Error("AlexNet conv1/conv2 channel counts incorrect")
	}
	pools := AlexNetFig1Pools()
	if len(pools) != 3 {
		t.Fatalf("AlexNet has 3 pooling layers, got %d", len(pools))
	}
}

func TestNetworksBuild(t *testing.T) {
	nets, err := Networks()
	if err != nil {
		t.Fatal(err)
	}
	if len(nets) != 5 {
		t.Fatalf("expected 5 networks, got %d", len(nets))
	}
	wantBatch := map[string]int{"LeNet": 128, "Cifar10": 128, "AlexNet": 64, "ZFNet": 64, "VGG": 32}
	for _, name := range NetworkOrder {
		net, ok := nets[name]
		if !ok {
			t.Fatalf("missing network %s", name)
		}
		if net.Batch != wantBatch[name] {
			t.Errorf("%s batch = %d, want %d", name, net.Batch, wantBatch[name])
		}
		if len(net.Layers) == 0 {
			t.Errorf("%s has no layers", name)
		}
	}
	// Structural spot checks.
	if convCount(nets["VGG"]) != 13 {
		t.Errorf("VGG-16 should have 13 convolutions, got %d", convCount(nets["VGG"]))
	}
	if convCount(nets["AlexNet"]) != 5 {
		t.Errorf("AlexNet should have 5 convolutions, got %d", convCount(nets["AlexNet"]))
	}
	if poolCount(nets["LeNet"]) != 2 || poolCount(nets["AlexNet"]) != 3 {
		t.Error("pooling layer counts incorrect")
	}
	if nets["AlexNet"].OutputShape().C != 1000 || nets["LeNet"].OutputShape().C != 10 {
		t.Error("classifier sizes incorrect")
	}
}

func convCount(net *network.Network) int {
	count := 0
	for _, l := range net.Layers {
		if _, ok := l.(*layers.Conv); ok {
			count++
		}
	}
	return count
}

func poolCount(net *network.Network) int {
	count := 0
	for _, l := range net.Layers {
		if _, ok := l.(*layers.Pool); ok {
			count++
		}
	}
	return count
}

func TestTinyNetForward(t *testing.T) {
	net, err := TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.Random(net.InputShape(), tensor.CHWN, 3)
	out, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Shape.C != 5 {
		t.Fatalf("TinyNet output shape %v", out.Shape)
	}
	for n := 0; n < net.Batch; n++ {
		var sum float64
		for c := 0; c < 5; c++ {
			sum += float64(out.At(n, c, 0, 0))
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Errorf("image %d probabilities sum to %v", n, sum)
		}
	}
}
