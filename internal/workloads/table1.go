// Package workloads defines the benchmark inputs of the paper: the
// single-layer configurations of Table 1 (CV1–CV12, PL1–PL10, CLASS1–CLASS5),
// the softmax configuration sweep of Fig. 13, and the five complete networks
// (LeNet, Cifar10, AlexNet, ZFNet and VGG) used in the whole-network
// evaluation.
package workloads

import (
	"fmt"

	"memcnn/internal/kernels"
)

// NamedConv is one convolutional layer of Table 1.
type NamedConv struct {
	Name    string
	Network string
	Cfg     kernels.ConvConfig
}

// NamedPool is one pooling layer of Table 1.
type NamedPool struct {
	Name    string
	Network string
	Cfg     kernels.PoolConfig
}

// NamedSoftmax is one classifier layer of Table 1.
type NamedSoftmax struct {
	Name    string
	Network string
	Cfg     kernels.SoftmaxConfig
}

// Table1Convs returns the twelve convolutional layer configurations of
// Table 1 in order.
func Table1Convs() []NamedConv {
	return []NamedConv{
		{"CV1", "LeNet", kernels.ConvConfig{N: 128, C: 1, H: 28, W: 28, K: 16, FH: 5, FW: 5}},
		{"CV2", "LeNet", kernels.ConvConfig{N: 128, C: 16, H: 14, W: 14, K: 16, FH: 5, FW: 5}},
		{"CV3", "Cifar10", kernels.ConvConfig{N: 128, C: 3, H: 24, W: 24, K: 64, FH: 5, FW: 5}},
		{"CV4", "Cifar10", kernels.ConvConfig{N: 128, C: 64, H: 12, W: 12, K: 64, FH: 5, FW: 5}},
		{"CV5", "ZFNet", kernels.ConvConfig{N: 64, C: 3, H: 224, W: 224, K: 96, FH: 3, FW: 3, StrideH: 2, StrideW: 2}},
		{"CV6", "ZFNet", kernels.ConvConfig{N: 64, C: 96, H: 55, W: 55, K: 256, FH: 5, FW: 5, StrideH: 2, StrideW: 2}},
		{"CV7", "ZFNet", kernels.ConvConfig{N: 64, C: 256, H: 13, W: 13, K: 384, FH: 3, FW: 3}},
		{"CV8", "ZFNet", kernels.ConvConfig{N: 64, C: 384, H: 13, W: 13, K: 384, FH: 3, FW: 3}},
		{"CV9", "VGG", kernels.ConvConfig{N: 32, C: 3, H: 224, W: 224, K: 64, FH: 3, FW: 3}},
		{"CV10", "VGG", kernels.ConvConfig{N: 32, C: 128, H: 56, W: 56, K: 256, FH: 3, FW: 3}},
		{"CV11", "VGG", kernels.ConvConfig{N: 32, C: 256, H: 28, W: 28, K: 512, FH: 3, FW: 3}},
		{"CV12", "VGG", kernels.ConvConfig{N: 32, C: 512, H: 14, W: 14, K: 512, FH: 3, FW: 3}},
	}
}

// Table1Pools returns the ten pooling layer configurations of Table 1 in
// order.  All of them are max-pooling layers; PL1–PL2 are the non-overlapped
// LeNet pools, the rest are overlapped (window 3, stride 2).
func Table1Pools() []NamedPool {
	return []NamedPool{
		{"PL1", "LeNet", kernels.PoolConfig{N: 128, C: 16, H: 28, W: 28, Window: 2, Stride: 2, Op: kernels.MaxPool}},
		{"PL2", "LeNet", kernels.PoolConfig{N: 128, C: 16, H: 14, W: 14, Window: 2, Stride: 2, Op: kernels.MaxPool}},
		{"PL3", "Cifar10", kernels.PoolConfig{N: 128, C: 64, H: 24, W: 24, Window: 3, Stride: 2, Op: kernels.MaxPool}},
		{"PL4", "Cifar10", kernels.PoolConfig{N: 128, C: 64, H: 12, W: 12, Window: 3, Stride: 2, Op: kernels.MaxPool}},
		{"PL5", "AlexNet", kernels.PoolConfig{N: 128, C: 96, H: 55, W: 55, Window: 3, Stride: 2, Op: kernels.MaxPool}},
		{"PL6", "AlexNet", kernels.PoolConfig{N: 128, C: 192, H: 27, W: 27, Window: 3, Stride: 2, Op: kernels.MaxPool}},
		{"PL7", "AlexNet", kernels.PoolConfig{N: 128, C: 256, H: 13, W: 13, Window: 3, Stride: 2, Op: kernels.MaxPool}},
		{"PL8", "ZFNet", kernels.PoolConfig{N: 64, C: 96, H: 110, W: 110, Window: 3, Stride: 2, Op: kernels.MaxPool}},
		{"PL9", "ZFNet", kernels.PoolConfig{N: 64, C: 256, H: 26, W: 26, Window: 3, Stride: 2, Op: kernels.MaxPool}},
		{"PL10", "ZFNet", kernels.PoolConfig{N: 64, C: 256, H: 13, W: 13, Window: 3, Stride: 2, Op: kernels.MaxPool}},
	}
}

// Table1Softmax returns the five classifier configurations of Table 1.
func Table1Softmax() []NamedSoftmax {
	return []NamedSoftmax{
		{"CLASS1", "LeNet", kernels.SoftmaxConfig{N: 128, Classes: 10}},
		{"CLASS2", "Cifar10", kernels.SoftmaxConfig{N: 128, Classes: 10}},
		{"CLASS3", "AlexNet", kernels.SoftmaxConfig{N: 128, Classes: 1000}},
		{"CLASS4", "ZFNet", kernels.SoftmaxConfig{N: 64, Classes: 1000}},
		{"CLASS5", "VGG", kernels.SoftmaxConfig{N: 32, Classes: 1000}},
	}
}

// SoftmaxSweep returns the twelve batch/category configurations of Fig. 13.
func SoftmaxSweep() []NamedSoftmax {
	shapes := []kernels.SoftmaxConfig{
		{N: 32, Classes: 10}, {N: 64, Classes: 10}, {N: 128, Classes: 10},
		{N: 32, Classes: 100}, {N: 64, Classes: 100}, {N: 128, Classes: 100},
		{N: 32, Classes: 1000}, {N: 64, Classes: 1000}, {N: 128, Classes: 1000},
		{N: 128, Classes: 5000}, {N: 128, Classes: 10000}, {N: 256, Classes: 10000},
	}
	out := make([]NamedSoftmax, 0, len(shapes))
	for _, s := range shapes {
		out = append(out, NamedSoftmax{Name: fmt.Sprintf("%d/%d", s.N, s.Classes), Network: "sweep", Cfg: s})
	}
	return out
}

// FindConv returns the Table 1 convolution with the given name.
func FindConv(name string) (NamedConv, error) {
	for _, c := range Table1Convs() {
		if c.Name == name {
			return c, nil
		}
	}
	return NamedConv{}, fmt.Errorf("workloads: unknown convolution layer %q", name)
}

// FindPool returns the Table 1 pooling layer with the given name.
func FindPool(name string) (NamedPool, error) {
	for _, p := range Table1Pools() {
		if p.Name == name {
			return p, nil
		}
	}
	return NamedPool{}, fmt.Errorf("workloads: unknown pooling layer %q", name)
}

// AlexNetFig1Convs returns the five AlexNet convolution shapes used by the
// motivating Fig. 1 comparison (batch 64, as in the whole-network runs).
func AlexNetFig1Convs() []NamedConv {
	return []NamedConv{
		{"CV1", "AlexNet", kernels.ConvConfig{N: 64, C: 3, H: 227, W: 227, K: 96, FH: 11, FW: 11, StrideH: 4, StrideW: 4}},
		{"CV2", "AlexNet", kernels.ConvConfig{N: 64, C: 96, H: 27, W: 27, K: 256, FH: 5, FW: 5, PadH: 2, PadW: 2}},
		{"CV3", "AlexNet", kernels.ConvConfig{N: 64, C: 256, H: 13, W: 13, K: 384, FH: 3, FW: 3, PadH: 1, PadW: 1}},
		{"CV4", "AlexNet", kernels.ConvConfig{N: 64, C: 384, H: 13, W: 13, K: 384, FH: 3, FW: 3, PadH: 1, PadW: 1}},
		{"CV5", "AlexNet", kernels.ConvConfig{N: 64, C: 384, H: 13, W: 13, K: 256, FH: 3, FW: 3, PadH: 1, PadW: 1}},
	}
}

// AlexNetFig1Pools returns the three AlexNet pooling shapes of Fig. 1
// (batch 128, the Table 1 configurations PL5–PL7).
func AlexNetFig1Pools() []NamedPool {
	all := Table1Pools()
	return []NamedPool{
		{"PL1", "AlexNet", all[4].Cfg},
		{"PL2", "AlexNet", all[5].Cfg},
		{"PL3", "AlexNet", all[6].Cfg},
	}
}
