package kernels

import (
	"math"
	"testing"

	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

// numericalGradInput estimates d(sum(out*weights))/d(in[n,c,h,w]) by central
// differences through the forward convolution; used to validate the backward
// kernels on tiny configurations.
func numericalGradInput(t *testing.T, in, filters, upstream *tensor.Tensor, cfg ConvConfig, n, c, h, w int) float64 {
	t.Helper()
	const eps = 1e-2
	eval := func(delta float32) float64 {
		perturbed := in.Clone()
		perturbed.Set(n, c, h, w, perturbed.At(n, c, h, w)+delta)
		out, err := ConvDirect(perturbed, filters, cfg, tensor.NCHW)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		s := out.Shape
		for nn := 0; nn < s.N; nn++ {
			for kk := 0; kk < s.C; kk++ {
				for oh := 0; oh < s.H; oh++ {
					for ow := 0; ow < s.W; ow++ {
						sum += float64(out.At(nn, kk, oh, ow)) * float64(upstream.At(nn, kk, oh, ow))
					}
				}
			}
		}
		return sum
	}
	return (eval(eps) - eval(-eps)) / (2 * eps)
}

func TestConvBackwardDataMatchesNumericalGradient(t *testing.T) {
	cfgs := []ConvConfig{
		{N: 2, C: 2, H: 6, W: 6, K: 3, FH: 3, FW: 3},
		{N: 1, C: 1, H: 6, W: 6, K: 2, FH: 3, FW: 3, StrideH: 2, StrideW: 2},
		{N: 2, C: 2, H: 5, W: 5, K: 2, FH: 3, FW: 3, PadH: 1, PadW: 1},
	}
	for _, cfg := range cfgs {
		in := tensor.Random(cfg.InputShape(), tensor.CHWN, 1)
		filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 2)
		upstream := tensor.Random(cfg.OutputShape(), tensor.NCHW, 3)

		dIn, err := ConvBackwardData(upstream, filters, cfg, tensor.NCHW)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		// Check a handful of positions against numerical differentiation.
		positions := [][4]int{{0, 0, 0, 0}, {0, 0, 2, 3}, {cfg.N - 1, cfg.C - 1, cfg.H - 1, cfg.W - 1}, {0, cfg.C - 1, 1, 1}}
		for _, p := range positions {
			want := numericalGradInput(t, in, filters, upstream, cfg, p[0], p[1], p[2], p[3])
			got := float64(dIn.At(p[0], p[1], p[2], p[3]))
			if math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
				t.Errorf("%v: dIn%v = %v, numerical %v", cfg, p, got, want)
			}
		}
	}
}

func TestConvBackwardFilterMatchesNumericalGradient(t *testing.T) {
	cfg := ConvConfig{N: 2, C: 2, H: 5, W: 5, K: 2, FH: 3, FW: 3}
	in := tensor.Random(cfg.InputShape(), tensor.NCHW, 4)
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 5)
	upstream := tensor.Random(cfg.OutputShape(), tensor.NCHW, 6)

	dW, err := ConvBackwardFilter(in, upstream, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-2
	evalWith := func(k, c, fh, fw int, delta float32) float64 {
		perturbed := filters.Clone()
		perturbed.Set(k, c, fh, fw, perturbed.At(k, c, fh, fw)+delta)
		out, err := ConvDirect(in, perturbed, cfg, tensor.NCHW)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		s := out.Shape
		for n := 0; n < s.N; n++ {
			for kk := 0; kk < s.C; kk++ {
				for oh := 0; oh < s.H; oh++ {
					for ow := 0; ow < s.W; ow++ {
						sum += float64(out.At(n, kk, oh, ow)) * float64(upstream.At(n, kk, oh, ow))
					}
				}
			}
		}
		return sum
	}
	for _, p := range [][4]int{{0, 0, 0, 0}, {1, 1, 2, 2}, {0, 1, 1, 0}} {
		want := (evalWith(p[0], p[1], p[2], p[3], eps) - evalWith(p[0], p[1], p[2], p[3], -eps)) / (2 * eps)
		got := float64(dW.At(p[0], p[1], p[2], p[3]))
		if math.Abs(got-want) > 1e-2*(1+math.Abs(want)) {
			t.Errorf("dW%v = %v, numerical %v", p, got, want)
		}
	}
}

func TestConvBackwardValidation(t *testing.T) {
	cfg := ConvConfig{N: 2, C: 2, H: 6, W: 6, K: 3, FH: 3, FW: 3}
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 1)
	wrongGrad := tensor.New(tensor.Shape{N: 2, C: 3, H: 3, W: 3}, tensor.NCHW)
	if _, err := ConvBackwardData(wrongGrad, filters, cfg, tensor.NCHW); err == nil {
		t.Error("wrong gradient shape must be rejected")
	}
	wrongFilters := tensor.Filters(cfg.K, cfg.C+1, cfg.FH, cfg.FW, 1)
	goodGrad := tensor.New(cfg.OutputShape(), tensor.NCHW)
	if _, err := ConvBackwardData(goodGrad, wrongFilters, cfg, tensor.NCHW); err == nil {
		t.Error("wrong filter shape must be rejected")
	}
	wrongIn := tensor.New(tensor.Shape{N: 2, C: 2, H: 7, W: 6}, tensor.NCHW)
	if _, err := ConvBackwardFilter(wrongIn, goodGrad, cfg); err == nil {
		t.Error("wrong input shape must be rejected")
	}
	if _, err := ConvBackwardFilter(tensor.New(cfg.InputShape(), tensor.NCHW), wrongGrad, cfg); err == nil {
		t.Error("wrong gradient shape must be rejected by the filter gradient")
	}
	if _, err := ConvBackwardData(goodGrad, filters, ConvConfig{}, tensor.NCHW); err == nil {
		t.Error("invalid config must be rejected")
	}
}

func TestPoolBackwardMaxRoutesToArgmax(t *testing.T) {
	cfg := PoolConfig{N: 1, C: 1, H: 4, W: 4, Window: 2, Stride: 2, Op: MaxPool}
	in := tensor.New(cfg.InputShape(), tensor.NCHW)
	copy(in.Data, []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	dOut := tensor.New(cfg.OutputShape(), tensor.NCHW)
	copy(dOut.Data, []float32{10, 20, 30, 40})
	dIn, err := PoolBackward(in, dOut, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The maxima are at positions (1,1), (1,3), (3,1), (3,3).
	want := map[[2]int]float32{{1, 1}: 10, {1, 3}: 20, {3, 1}: 30, {3, 3}: 40}
	for h := 0; h < 4; h++ {
		for w := 0; w < 4; w++ {
			exp := want[[2]int{h, w}]
			if got := dIn.At(0, 0, h, w); got != exp {
				t.Errorf("dIn[%d][%d] = %v, want %v", h, w, got, exp)
			}
		}
	}
}

func TestPoolBackwardAvgConservesGradient(t *testing.T) {
	cfg := PoolConfig{N: 2, C: 3, H: 8, W: 8, Window: 2, Stride: 2, Op: AvgPool}
	in := tensor.Random(cfg.InputShape(), tensor.CHWN, 7)
	dOut := tensor.Random(cfg.OutputShape(), tensor.CHWN, 8)
	dIn, err := PoolBackward(in, dOut, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Average pooling distributes each gradient over its window, so the
	// total gradient mass is conserved for non-overlapped pooling.
	var sumOut, sumIn float64
	for _, v := range dOut.Data {
		sumOut += float64(v)
	}
	for _, v := range dIn.Data {
		sumIn += float64(v)
	}
	if math.Abs(sumOut-sumIn) > 1e-3 {
		t.Errorf("gradient mass not conserved: out %v, in %v", sumOut, sumIn)
	}
}

func TestPoolBackwardOverlappedAccumulates(t *testing.T) {
	cfg := PoolConfig{N: 1, C: 1, H: 5, W: 5, Window: 3, Stride: 2, Op: MaxPool}
	in := tensor.New(cfg.InputShape(), tensor.NCHW)
	// Make the centre element (2,2) the maximum of all four windows.
	in.Set(0, 0, 2, 2, 100)
	dOut := tensor.New(cfg.OutputShape(), tensor.NCHW)
	dOut.Fill(1)
	dIn, err := PoolBackward(in, dOut, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := dIn.At(0, 0, 2, 2); got != 4 {
		t.Errorf("shared maximum should accumulate all four gradients, got %v", got)
	}
}

func TestPoolBackwardValidation(t *testing.T) {
	cfg := PoolConfig{N: 1, C: 1, H: 4, W: 4, Window: 2, Stride: 2, Op: MaxPool}
	in := tensor.New(cfg.InputShape(), tensor.NCHW)
	if _, err := PoolBackward(in, tensor.New(tensor.Shape{N: 1, C: 1, H: 3, W: 2}, tensor.NCHW), cfg); err == nil {
		t.Error("wrong gradient shape must be rejected")
	}
	if _, err := PoolBackward(tensor.New(tensor.Shape{N: 1, C: 1, H: 5, W: 4}, tensor.NCHW), tensor.New(cfg.OutputShape(), tensor.NCHW), cfg); err == nil {
		t.Error("wrong input shape must be rejected")
	}
	if _, err := PoolBackward(in, tensor.New(cfg.OutputShape(), tensor.NCHW), PoolConfig{}); err == nil {
		t.Error("invalid config must be rejected")
	}
}

func TestSoftmaxCrossEntropyBackward(t *testing.T) {
	cfg := SoftmaxConfig{N: 2, Classes: 3}
	logits := []float32{1, 2, 3, 0.5, 0.5, 0.5}
	probs, err := Softmax(logits, cfg)
	if err != nil {
		t.Fatal(err)
	}
	labels := []int{2, 0}
	grad, err := SoftmaxCrossEntropyBackward(probs, labels, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rows of the gradient sum to zero, the label entry is negative and the
	// rest are positive.
	for n := 0; n < cfg.N; n++ {
		var sum float64
		for c := 0; c < cfg.Classes; c++ {
			g := grad[n*cfg.Classes+c]
			sum += float64(g)
			if c == labels[n] && g >= 0 {
				t.Errorf("row %d: label gradient should be negative, got %v", n, g)
			}
			if c != labels[n] && g < 0 {
				t.Errorf("row %d: non-label gradient should be non-negative, got %v", n, g)
			}
		}
		if math.Abs(sum) > 1e-6 {
			t.Errorf("row %d gradient sums to %v, want 0", n, sum)
		}
	}
	// Validation.
	if _, err := SoftmaxCrossEntropyBackward(probs, []int{0}, cfg); err == nil {
		t.Error("wrong label count must be rejected")
	}
	if _, err := SoftmaxCrossEntropyBackward(probs, []int{0, 9}, cfg); err == nil {
		t.Error("out-of-range label must be rejected")
	}
	if _, err := SoftmaxCrossEntropyBackward(probs[:3], labels, cfg); err == nil {
		t.Error("wrong probs length must be rejected")
	}
	if _, err := SoftmaxCrossEntropyBackward(nil, nil, SoftmaxConfig{}); err == nil {
		t.Error("invalid config must be rejected")
	}
}

func TestReLUBackwardMasks(t *testing.T) {
	shape := tensor.Shape{N: 2, C: 2, H: 3, W: 3}
	in := tensor.Random(shape, tensor.NCHW, 9)
	dOut := tensor.Random(shape, tensor.NCHW, 10)
	dIn, err := ReLUBackward(in, dOut)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < shape.N; n++ {
		for c := 0; c < shape.C; c++ {
			for h := 0; h < shape.H; h++ {
				for w := 0; w < shape.W; w++ {
					want := float32(0)
					if in.At(n, c, h, w) > 0 {
						want = dOut.At(n, c, h, w)
					}
					if got := dIn.At(n, c, h, w); got != want {
						t.Fatalf("dIn(%d,%d,%d,%d) = %v, want %v", n, c, h, w, got, want)
					}
				}
			}
		}
	}
	if _, err := ReLUBackward(in, tensor.New(tensor.Shape{N: 1, C: 1, H: 1, W: 1}, tensor.NCHW)); err == nil {
		t.Error("shape mismatch must be rejected")
	}
}

func TestBackwardCostsAreValidAndLayoutSensitive(t *testing.T) {
	d := gpusim.TitanBlack()
	convs := []ConvConfig{
		{N: 128, C: 16, H: 14, W: 14, K: 16, FH: 5, FW: 5},
		{N: 64, C: 256, H: 13, W: 13, K: 384, FH: 3, FW: 3},
		{N: 64, C: 3, H: 224, W: 224, K: 96, FH: 3, FW: 3, StrideH: 2, StrideW: 2},
	}
	for _, cfg := range convs {
		for _, s := range []gpusim.KernelStats{ConvBackwardDataCHWNCost(d, cfg)} {
			if err := s.Validate(); err != nil {
				t.Errorf("%v: %v", cfg, err)
			}
		}
		for _, s := range ConvBackwardDataNCHWCost(d, cfg) {
			if err := s.Validate(); err != nil {
				t.Errorf("%v: %v", cfg, err)
			}
		}
		for _, s := range ConvBackwardFilterCost(d, cfg) {
			if err := s.Validate(); err != nil {
				t.Errorf("%v: %v", cfg, err)
			}
		}
	}
	// The paper's footnote: the backward pass uses the same structures, so
	// the layout preference of the forward pass carries over to the combined
	// training step.
	cv2 := convs[0] // batch 128, small C -> CHWN preferred
	chwnTrain, _ := gpusim.EstimateSequence(d, ConvTrainingCost(d, cv2, true))
	nchwTrain, _ := gpusim.EstimateSequence(d, ConvTrainingCost(d, cv2, false))
	if chwnTrain >= nchwTrain {
		t.Errorf("CV2 training step: CHWN (%.0fus) should beat NCHW (%.0fus)", chwnTrain, nchwTrain)
	}
	cv7 := convs[1] // batch 64, C=256 -> NCHW preferred
	chwnTrain, _ = gpusim.EstimateSequence(d, ConvTrainingCost(d, cv7, true))
	nchwTrain, _ = gpusim.EstimateSequence(d, ConvTrainingCost(d, cv7, false))
	if nchwTrain >= chwnTrain {
		t.Errorf("CV7 training step: NCHW (%.0fus) should beat CHWN (%.0fus)", nchwTrain, chwnTrain)
	}
}

func TestPoolAndSoftmaxBackwardCosts(t *testing.T) {
	d := gpusim.TitanBlack()
	pool := PoolConfig{N: 128, C: 96, H: 55, W: 55, Window: 3, Stride: 2, Op: MaxPool}
	chwn := PoolBackwardCost(d, pool, true)
	nchw := PoolBackwardCost(d, pool, false)
	if err := chwn.Validate(); err != nil {
		t.Error(err)
	}
	if err := nchw.Validate(); err != nil {
		t.Error(err)
	}
	if gpusim.EstimateTime(d, chwn).TotalUS >= gpusim.EstimateTime(d, nchw).TotalUS {
		t.Error("the CHWN pooling backward kernel should be faster than the NCHW one")
	}
	sm := SoftmaxConfig{N: 128, Classes: 1000}
	fused := SoftmaxBackwardCost(d, sm, true)
	unfused := SoftmaxBackwardCost(d, sm, false)
	if err := fused.Validate(); err != nil {
		t.Error(err)
	}
	if err := unfused.Validate(); err != nil {
		t.Error(err)
	}
	if gpusim.EstimateTime(d, fused).TotalUS >= gpusim.EstimateTime(d, unfused).TotalUS {
		t.Error("the fused softmax backward kernel should be faster than the unfused one")
	}
}

func TestTransposedConfigClamping(t *testing.T) {
	// A layer whose output is smaller than the filter must still yield a
	// valid transposed configuration for the cost query.
	cfg := ConvConfig{N: 4, C: 8, H: 5, W: 5, K: 16, FH: 5, FW: 5}
	tc := transposedConfig(cfg)
	if err := tc.Validate(); err != nil {
		t.Errorf("transposed config invalid: %v", err)
	}
	if tc.C != cfg.K || tc.K != cfg.C {
		t.Error("transposed config must swap the channel dimensions")
	}
}
