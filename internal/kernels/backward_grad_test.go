package kernels

import (
	"math"
	gort "runtime"
	"testing"

	"memcnn/internal/tensor"
)

// The backward kernels are checked against central finite differences of
// their forward kernels: for the scalar probe L(x) = Σ w·forward(x) the
// analytic gradient (the backward kernel applied to cotangent w) must match
// (L(x+h) - L(x-h)) / 2h element by element.  Small shapes keep the float32
// forward noise well below the tolerance.

const (
	fdStep = 1e-2
	fdTol  = 2e-2
)

// fdRelErr is the symmetric relative error used by gradient checks.
func fdRelErr(a, b float64) float64 {
	return math.Abs(a-b) / math.Max(1, math.Abs(a)+math.Abs(b))
}

// probe folds a forward output against a fixed cotangent in float64.
func probe(w, out []float32) float64 {
	var s float64
	for i, v := range out {
		s += float64(w[i]) * float64(v)
	}
	return s
}

// fdCheck perturbs every element of x and compares the finite difference of
// loss() against the analytic gradient grad (same layout as x).
func fdCheck(t *testing.T, name string, x, grad []float32, loss func() float64) {
	t.Helper()
	bad := 0
	for i := range x {
		orig := x[i]
		x[i] = orig + fdStep
		up := loss()
		x[i] = orig - fdStep
		down := loss()
		x[i] = orig
		fd := (up - down) / (2 * fdStep)
		if err := fdRelErr(fd, float64(grad[i])); err > fdTol {
			if bad < 5 {
				t.Errorf("%s: element %d: fd %v vs analytic %v (rel err %v)", name, i, fd, grad[i], err)
			}
			bad++
		}
	}
	if bad > 0 {
		t.Errorf("%s: %d/%d gradient elements outside tolerance", name, bad, len(x))
	}
}

func convGradConfigs() []ConvConfig {
	return []ConvConfig{
		{N: 2, C: 2, H: 5, W: 5, K: 3, FH: 3, FW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{N: 1, C: 3, H: 6, W: 6, K: 2, FH: 2, FW: 2, StrideH: 2, StrideW: 2},
		{N: 2, C: 1, H: 7, W: 7, K: 2, FH: 3, FW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1},
	}
}

func TestConvBackwardDataGradient(t *testing.T) {
	for _, cfg := range convGradConfigs() {
		in := tensor.Random(cfg.InputShape(), tensor.NCHW, 11)
		filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 12)
		dOut := tensor.Random(cfg.OutputShape(), tensor.NCHW, 13)

		dIn := tensor.New(cfg.InputShape(), tensor.NCHW)
		if err := ConvBackwardDataInto(dOut, filters, dIn, cfg); err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		out := tensor.New(cfg.OutputShape(), tensor.NCHW)
		loss := func() float64 {
			if err := ConvDirectInto(in, filters, out, cfg); err != nil {
				t.Fatalf("%v: forward: %v", cfg, err)
			}
			return probe(dOut.Data, out.Data)
		}
		fdCheck(t, "conv-bwd-data "+cfg.String(), in.Data, dIn.Data, loss)
	}
}

func TestConvBackwardFilterGradient(t *testing.T) {
	for _, cfg := range convGradConfigs() {
		in := tensor.Random(cfg.InputShape(), tensor.NCHW, 21)
		filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 22)
		dOut := tensor.Random(cfg.OutputShape(), tensor.NCHW, 23)

		dW := tensor.New(cfg.FilterShape(), tensor.NCHW)
		if err := ConvBackwardFilterInto(in, dOut, dW, cfg); err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		out := tensor.New(cfg.OutputShape(), tensor.NCHW)
		loss := func() float64 {
			if err := ConvDirectInto(in, filters, out, cfg); err != nil {
				t.Fatalf("%v: forward: %v", cfg, err)
			}
			return probe(dOut.Data, out.Data)
		}
		fdCheck(t, "conv-bwd-filter "+cfg.String(), filters.Data, dW.Data, loss)
	}
}

// distinctInput fills a tensor with a pseudo-random permutation of well
// separated values so max-pool argmaxes cannot flip under the FD step.
func distinctInput(shape tensor.Shape, seed uint64) *tensor.Tensor {
	tt := tensor.New(shape, tensor.NCHW)
	n := len(tt.Data)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	state := seed
	for i := n - 1; i > 0; i-- {
		state = state*6364136223846793005 + 1442695040888963407
		j := int(state>>33) % (i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	for i, p := range perm {
		tt.Data[i] = float32(p)*0.05 - float32(n)*0.025
	}
	return tt
}

func TestPoolBackwardGradient(t *testing.T) {
	cfgs := []PoolConfig{
		{N: 2, C: 2, H: 6, W: 6, Window: 2, Stride: 2, Op: MaxPool},
		{N: 2, C: 2, H: 6, W: 6, Window: 2, Stride: 2, Op: AvgPool},
		{N: 1, C: 3, H: 7, W: 7, Window: 3, Stride: 2, Op: MaxPool}, // overlapped
		{N: 1, C: 3, H: 7, W: 7, Window: 3, Stride: 2, Op: AvgPool},
	}
	for _, cfg := range cfgs {
		in := distinctInput(cfg.InputShape(), uint64(31+cfg.Window))
		dOut := tensor.Random(cfg.OutputShape(), tensor.NCHW, 32)

		dIn := tensor.New(cfg.InputShape(), tensor.NCHW)
		if err := PoolBackwardInto(in, dOut, dIn, cfg); err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		out := tensor.New(cfg.OutputShape(), tensor.NCHW)
		loss := func() float64 {
			if err := PoolInto(in, out, cfg); err != nil {
				t.Fatalf("%v: forward: %v", cfg, err)
			}
			return probe(dOut.Data, out.Data)
		}
		fdCheck(t, "pool-bwd "+cfg.String(), in.Data, dIn.Data, loss)
	}
}

func TestReLUBackwardGradient(t *testing.T) {
	shape := tensor.Shape{N: 2, C: 3, H: 4, W: 4}
	in := tensor.Random(shape, tensor.NCHW, 41)
	// Push values away from the kink at zero so the FD step cannot cross it.
	for i, v := range in.Data {
		if v >= 0 {
			in.Data[i] = v + 0.1
		} else {
			in.Data[i] = v - 0.1
		}
	}
	dOut := tensor.Random(shape, tensor.NCHW, 42)

	dIn := tensor.New(shape, tensor.NCHW)
	if err := ReLUBackwardInto(in, dOut, dIn); err != nil {
		t.Fatal(err)
	}
	out := tensor.New(shape, tensor.NCHW)
	loss := func() float64 {
		for i, v := range in.Data {
			if v > 0 {
				out.Data[i] = v
			} else {
				out.Data[i] = 0
			}
		}
		return probe(dOut.Data, out.Data)
	}
	fdCheck(t, "relu-bwd", in.Data, dIn.Data, loss)
}

func TestSoftmaxCrossEntropyBackwardGradient(t *testing.T) {
	cfg := SoftmaxConfig{N: 4, Classes: 6}
	logits := make([]float32, cfg.Elems())
	state := uint64(51)
	for i := range logits {
		state = state*6364136223846793005 + 1442695040888963407
		logits[i] = float32(state>>40)/float32(1<<23) - 1
	}
	labels := []int{0, 3, 5, 2}

	probs := make([]float32, cfg.Elems())
	if err := SoftmaxInto(probs, logits, cfg); err != nil {
		t.Fatal(err)
	}
	grad := make([]float32, cfg.Elems())
	if err := SoftmaxCrossEntropyBackwardInto(grad, probs, labels, cfg); err != nil {
		t.Fatal(err)
	}
	loss := func() float64 {
		if err := SoftmaxInto(probs, logits, cfg); err != nil {
			t.Fatal(err)
		}
		l, err := SoftmaxCrossEntropyLoss(probs, labels, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	fdCheck(t, "softmax-xent-bwd", logits, grad, loss)

	// The float32-label variant must agree bit for bit with the int one
	// (recompute probs/grad first: the FD loop left them perturbed).
	if err := SoftmaxInto(probs, logits, cfg); err != nil {
		t.Fatal(err)
	}
	if err := SoftmaxCrossEntropyBackwardInto(grad, probs, labels, cfg); err != nil {
		t.Fatal(err)
	}
	flabels := make([]float32, cfg.N)
	for i, l := range labels {
		flabels[i] = float32(l)
	}
	fgrad := make([]float32, cfg.Elems())
	if err := SoftmaxCrossEntropyBackwardFloatInto(fgrad, probs, flabels, cfg); err != nil {
		t.Fatal(err)
	}
	for i := range grad {
		if math.Float32bits(grad[i]) != math.Float32bits(fgrad[i]) {
			t.Fatalf("float-label grad diverges at %d: %v vs %v", i, grad[i], fgrad[i])
		}
	}
}

// TestBackwardIntoDeterminism requires the parallel backward kernels to be
// bit-identical across worker counts: every output element is written by
// exactly one worker with a fixed accumulation order, so GOMAXPROCS must not
// show up in the bits.
func TestBackwardIntoDeterminism(t *testing.T) {
	cfg := ConvConfig{N: 4, C: 5, H: 13, W: 11, K: 6, FH: 3, FW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	pcfg := PoolConfig{N: 4, C: 5, H: 12, W: 12, Window: 3, Stride: 2, Op: MaxPool}

	in := tensor.Random(cfg.InputShape(), tensor.NCHW, 61)
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 62)
	dOut := tensor.Random(cfg.OutputShape(), tensor.NCHW, 63)
	pin := tensor.Random(pcfg.InputShape(), tensor.NCHW, 64)
	pdOut := tensor.Random(pcfg.OutputShape(), tensor.NCHW, 65)

	run := func() (dIn, dW, pdIn *tensor.Tensor) {
		dIn = tensor.New(cfg.InputShape(), tensor.NCHW)
		dW = tensor.New(cfg.FilterShape(), tensor.NCHW)
		pdIn = tensor.New(pcfg.InputShape(), tensor.NCHW)
		if err := ConvBackwardDataInto(dOut, filters, dIn, cfg); err != nil {
			t.Fatal(err)
		}
		if err := ConvBackwardFilterInto(in, dOut, dW, cfg); err != nil {
			t.Fatal(err)
		}
		if err := PoolBackwardInto(pin, pdOut, pdIn, pcfg); err != nil {
			t.Fatal(err)
		}
		return dIn, dW, pdIn
	}

	old := gort.GOMAXPROCS(1)
	d1, w1, p1 := run()
	gort.GOMAXPROCS(old)
	if old < 2 {
		gort.GOMAXPROCS(4)
		defer gort.GOMAXPROCS(old)
	}
	d2, w2, p2 := run()

	cmp := func(name string, a, b []float32) {
		for i := range a {
			if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
				t.Fatalf("%s: bit divergence at %d across worker counts: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
	cmp("conv-bwd-data", d1.Data, d2.Data)
	cmp("conv-bwd-filter", w1.Data, w2.Data)
	cmp("pool-bwd", p1.Data, p2.Data)
}
