package kernels

import (
	"testing"

	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

func TestIm2colSmallExample(t *testing.T) {
	// 1 image, 1 channel, 3x3 input, 2x2 filter, stride 1: the unrolled
	// matrix has 4 rows (filter taps) and 4 columns (output pixels).
	cfg := ConvConfig{N: 1, C: 1, H: 3, W: 3, K: 1, FH: 2, FW: 2}
	in := tensor.New(cfg.InputShape(), tensor.NCHW)
	copy(in.Data, []float32{1, 2, 3, 4, 5, 6, 7, 8, 9})
	got, err := Im2col(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Row r corresponds to filter tap (fh, fw); column c to output (oh, ow).
	want := []float32{
		1, 2, 4, 5, // tap (0,0)
		2, 3, 5, 6, // tap (0,1)
		4, 5, 7, 8, // tap (1,0)
		5, 6, 8, 9, // tap (1,1)
	}
	if len(got) != len(want) {
		t.Fatalf("length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("unrolled[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIm2colPaddingProducesZeros(t *testing.T) {
	cfg := ConvConfig{N: 1, C: 1, H: 2, W: 2, K: 1, FH: 3, FW: 3, PadH: 1, PadW: 1}
	in := tensor.New(cfg.InputShape(), tensor.NCHW)
	in.Fill(1)
	got, err := Im2col(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Corners of the padded image are zero; make sure zeros appear and the
	// total count of ones equals input elements * how often each is used.
	var ones, zeros int
	for _, v := range got {
		switch v {
		case 1:
			ones++
		case 0:
			zeros++
		default:
			t.Fatalf("unexpected value %v", v)
		}
	}
	if zeros == 0 {
		t.Error("padding must contribute zeros")
	}
	if ones+zeros != len(got) {
		t.Error("unexpected values in unrolled matrix")
	}
}

func TestIm2colShapeMismatch(t *testing.T) {
	cfg := ConvConfig{N: 2, C: 2, H: 4, W: 4, K: 1, FH: 3, FW: 3}
	in := tensor.New(tensor.Shape{N: 2, C: 2, H: 5, W: 4}, tensor.NCHW)
	if _, err := Im2col(in, cfg); err == nil {
		t.Error("shape mismatch must be rejected")
	}
	if _, err := Im2col(tensor.New(cfg.InputShape(), tensor.NCHW), ConvConfig{}); err == nil {
		t.Error("invalid config must be rejected")
	}
}

func TestIm2colCostScalesWithFilterArea(t *testing.T) {
	d := gpusim.TitanBlack()
	small := Im2colCost(d, ConvConfig{N: 32, C: 64, H: 28, W: 28, K: 64, FH: 1, FW: 1})
	large := Im2colCost(d, ConvConfig{N: 32, C: 64, H: 28, W: 28, K: 64, FH: 5, FW: 5})
	if large.DRAMWriteBytes <= small.DRAMWriteBytes {
		t.Error("a 5x5 unroll writes far more than a 1x1 unroll")
	}
	if err := small.Validate(); err != nil {
		t.Error(err)
	}
	if err := large.Validate(); err != nil {
		t.Error(err)
	}
}

func TestIm2colWorkspaceBytes(t *testing.T) {
	cfg := ConvConfig{N: 2, C: 3, H: 8, W: 8, K: 4, FH: 3, FW: 3}
	want := int64(3*3*3) * int64(2*6*6) * 4
	if got := Im2colWorkspaceBytes(cfg); got != want {
		t.Errorf("workspace = %d, want %d", got, want)
	}
}
