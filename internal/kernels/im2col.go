package kernels

import (
	"fmt"
	"runtime"
	"sync"

	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

// im2col: the matrix-unroll step of the Caffe/cuDNN convolution path.  It
// expands the NCHW input tensor into a 2-D matrix so that the convolution
// becomes a single GEMM (Section II.B).  The expansion multiplies the input
// footprint by FH*FW/ (StrideH*StrideW), which is the "matrix transformation
// overhead" the paper blames for the poor NCHW performance at small C.

// Im2col expands the input batch into the unrolled matrix B of the GEMM
// formulation.  The result is row-major with
//
//	rows = C*FH*FW            (the reduction dimension K of the GEMM)
//	cols = N*OutH*OutW        (one column per output pixel of the batch)
//
// Out-of-range taps (from padding) contribute zeros.
func Im2col(in *tensor.Tensor, cfg ConvConfig) ([]float32, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if in.Shape != cfg.InputShape() {
		return nil, fmt.Errorf("kernels: im2col input shape %v does not match config %v", in.Shape, cfg.InputShape())
	}
	outH, outW := cfg.OutH(), cfg.OutW()
	rows := cfg.C * cfg.FH * cfg.FW
	cols := cfg.N * outH * outW
	out := make([]float32, rows*cols)

	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * rows / workers
		hi := (wkr + 1) * rows / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for row := lo; row < hi; row++ {
				c := row / (cfg.FH * cfg.FW)
				rem := row % (cfg.FH * cfg.FW)
				fh := rem / cfg.FW
				fw := rem % cfg.FW
				dst := out[row*cols : (row+1)*cols]
				col := 0
				for n := 0; n < cfg.N; n++ {
					for oh := 0; oh < outH; oh++ {
						ih := oh*cfg.StrideH - cfg.PadH + fh
						for ow := 0; ow < outW; ow++ {
							iw := ow*cfg.StrideW - cfg.PadW + fw
							if ih >= 0 && ih < cfg.H && iw >= 0 && iw < cfg.W {
								dst[col] = in.At(n, c, ih, iw)
							}
							col++
						}
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// im2colImage unrolls one image of the batch into dst, a row-major
// (C·FH·FW) × (OutH·OutW) matrix, reading the input through explicit strides
// so any layout is supported without per-element bounds checks.  base is the
// linear offset of the image's first element; every dst element is written
// (out-of-range taps with zero), so dst may hold garbage on entry.  The rows
// are computed goroutine-parallel; each dst element is written exactly once,
// and the values do not depend on the worker split.
func im2colImage(data []float32, base, sc, sh, sw int, cfg ConvConfig, dst []float32) {
	rows := cfg.C * cfg.FH * cfg.FW
	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		im2colRows(data, base, sc, sh, sw, cfg, dst, 0, rows)
		return
	}
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * rows / workers
		hi := (wkr + 1) * rows / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			im2colRows(data, base, sc, sh, sw, cfg, dst, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// im2colRows fills rows [lo,hi) of the single-image unroll matrix.
func im2colRows(data []float32, base, sc, sh, sw int, cfg ConvConfig, dst []float32, lo, hi int) {
	outH, outW := cfg.OutH(), cfg.OutW()
	ohw := outH * outW
	for row := lo; row < hi; row++ {
		c := row / (cfg.FH * cfg.FW)
		rem := row % (cfg.FH * cfg.FW)
		fh := rem / cfg.FW
		fw := rem % cfg.FW
		rowDst := dst[row*ohw : (row+1)*ohw]
		for oh := 0; oh < outH; oh++ {
			seg := rowDst[oh*outW : (oh+1)*outW]
			ih := oh*cfg.StrideH - cfg.PadH + fh
			if ih < 0 || ih >= cfg.H {
				for i := range seg {
					seg[i] = 0
				}
				continue
			}
			// Valid ow range: 0 <= ow*StrideW - PadW + fw < W.  A wide filter
			// tap can leave no valid column at all (fw beyond W+PadW-1, or
			// every in-range ow swallowed by the left padding), so both
			// bounds are clamped before any indexing.
			owLo := 0
			if over := cfg.PadW - fw; over > 0 {
				owLo = (over + cfg.StrideW - 1) / cfg.StrideW
			}
			owHi := 0
			if num := cfg.W - 1 + cfg.PadW - fw; num >= 0 {
				owHi = num/cfg.StrideW + 1
				if owHi > outW {
					owHi = outW
				}
			}
			if owLo >= owHi {
				for i := range seg {
					seg[i] = 0
				}
				continue
			}
			for i := 0; i < owLo; i++ {
				seg[i] = 0
			}
			for i := owHi; i < outW; i++ {
				seg[i] = 0
			}
			src := base + c*sc + ih*sh + (owLo*cfg.StrideW-cfg.PadW+fw)*sw
			if sw == 1 && cfg.StrideW == 1 {
				copy(seg[owLo:owHi], data[src:src+owHi-owLo])
				continue
			}
			step := cfg.StrideW * sw
			for ow := owLo; ow < owHi; ow++ {
				seg[ow] = data[src]
				src += step
			}
		}
	}
}

// Im2colCost models the GPU im2col kernel: it reads the input once (the
// source reads along W are coalesced in NCHW) and writes the expanded matrix,
// which is FH*FW/(SH*SW) times larger than the input.  The expanded matrix is
// then read back by the GEMM, so the expansion costs DRAM bandwidth twice.
// Only the write half is accounted here; the read-back belongs to the GEMM's
// B-operand traffic.
func Im2colCost(d *gpusim.Device, cfg ConvConfig) gpusim.KernelStats {
	cfg = cfg.withDefaults()
	inBytes := float64(cfg.InputShape().Elems()) * 4
	expandedBytes := float64(cfg.C*cfg.FH*cfg.FW) * float64(cfg.N*cfg.OutH()*cfg.OutW()) * 4

	// Source loads: each input element is touched FH*FW/(SH*SW) times, but
	// consecutive output columns read overlapping rows that hit in L1/L2, so
	// the DRAM read traffic stays close to one pass over the input.
	readBytes := inBytes * 1.15

	threads := cfg.N * cfg.OutH() * cfg.OutW()
	blocks := ceilDiv(threads, 256)
	return gpusim.KernelStats{
		Name:       fmt.Sprintf("im2col %s", cfg.String()),
		GridBlocks: blocks,
		Block:      gpusim.BlockResources{ThreadsPerBlock: 256, RegsPerThread: 24},
		Launches:   1,
		// Pure data movement: negligible arithmetic.
		FLOPs:             0,
		ComputeEfficiency: 1,
		DRAMReadBytes:     readBytes,
		DRAMWriteBytes:    expandedBytes,
		UsefulReadBytes:   inBytes,
		UsefulWriteBytes:  expandedBytes,
	}
}

// Im2colWorkspaceBytes returns the extra device memory the unrolled matrix
// needs, the figure the paper quotes when discussing transformation memory
// overhead.
func Im2colWorkspaceBytes(cfg ConvConfig) int64 {
	cfg = cfg.withDefaults()
	return int64(cfg.C*cfg.FH*cfg.FW) * int64(cfg.N*cfg.OutH()*cfg.OutW()) * 4
}
