package kernels

import (
	"fmt"
	"runtime"
	"sync"

	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

// im2col: the matrix-unroll step of the Caffe/cuDNN convolution path.  It
// expands the NCHW input tensor into a 2-D matrix so that the convolution
// becomes a single GEMM (Section II.B).  The expansion multiplies the input
// footprint by FH*FW/ (StrideH*StrideW), which is the "matrix transformation
// overhead" the paper blames for the poor NCHW performance at small C.

// Im2col expands the input batch into the unrolled matrix B of the GEMM
// formulation.  The result is row-major with
//
//	rows = C*FH*FW            (the reduction dimension K of the GEMM)
//	cols = N*OutH*OutW        (one column per output pixel of the batch)
//
// Out-of-range taps (from padding) contribute zeros.
func Im2col(in *tensor.Tensor, cfg ConvConfig) ([]float32, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if in.Shape != cfg.InputShape() {
		return nil, fmt.Errorf("kernels: im2col input shape %v does not match config %v", in.Shape, cfg.InputShape())
	}
	outH, outW := cfg.OutH(), cfg.OutW()
	rows := cfg.C * cfg.FH * cfg.FW
	cols := cfg.N * outH * outW
	out := make([]float32, rows*cols)

	workers := runtime.GOMAXPROCS(0)
	if workers > rows {
		workers = rows
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * rows / workers
		hi := (wkr + 1) * rows / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for row := lo; row < hi; row++ {
				c := row / (cfg.FH * cfg.FW)
				rem := row % (cfg.FH * cfg.FW)
				fh := rem / cfg.FW
				fw := rem % cfg.FW
				dst := out[row*cols : (row+1)*cols]
				col := 0
				for n := 0; n < cfg.N; n++ {
					for oh := 0; oh < outH; oh++ {
						ih := oh*cfg.StrideH - cfg.PadH + fh
						for ow := 0; ow < outW; ow++ {
							iw := ow*cfg.StrideW - cfg.PadW + fw
							if ih >= 0 && ih < cfg.H && iw >= 0 && iw < cfg.W {
								dst[col] = in.At(n, c, ih, iw)
							}
							col++
						}
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}

// Im2colCost models the GPU im2col kernel: it reads the input once (the
// source reads along W are coalesced in NCHW) and writes the expanded matrix,
// which is FH*FW/(SH*SW) times larger than the input.  The expanded matrix is
// then read back by the GEMM, so the expansion costs DRAM bandwidth twice.
// Only the write half is accounted here; the read-back belongs to the GEMM's
// B-operand traffic.
func Im2colCost(d *gpusim.Device, cfg ConvConfig) gpusim.KernelStats {
	cfg = cfg.withDefaults()
	inBytes := float64(cfg.InputShape().Elems()) * 4
	expandedBytes := float64(cfg.C*cfg.FH*cfg.FW) * float64(cfg.N*cfg.OutH()*cfg.OutW()) * 4

	// Source loads: each input element is touched FH*FW/(SH*SW) times, but
	// consecutive output columns read overlapping rows that hit in L1/L2, so
	// the DRAM read traffic stays close to one pass over the input.
	readBytes := inBytes * 1.15

	threads := cfg.N * cfg.OutH() * cfg.OutW()
	blocks := ceilDiv(threads, 256)
	return gpusim.KernelStats{
		Name:       fmt.Sprintf("im2col %s", cfg.String()),
		GridBlocks: blocks,
		Block:      gpusim.BlockResources{ThreadsPerBlock: 256, RegsPerThread: 24},
		Launches:   1,
		// Pure data movement: negligible arithmetic.
		FLOPs:             0,
		ComputeEfficiency: 1,
		DRAMReadBytes:     readBytes,
		DRAMWriteBytes:    expandedBytes,
		UsefulReadBytes:   inBytes,
		UsefulWriteBytes:  expandedBytes,
	}
}

// Im2colWorkspaceBytes returns the extra device memory the unrolled matrix
// needs, the figure the paper quotes when discussing transformation memory
// overhead.
func Im2colWorkspaceBytes(cfg ConvConfig) int64 {
	cfg = cfg.withDefaults()
	return int64(cfg.C*cfg.FH*cfg.FW) * int64(cfg.N*cfg.OutH()*cfg.OutW()) * 4
}
