package kernels

import (
	"errors"
	"testing"

	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

// smallConvCases is the set of layer shapes used for cross-implementation
// agreement tests.  They exercise square and rectangular inputs, strides,
// padding, single channels and single filters.
var smallConvCases = []ConvConfig{
	{N: 2, C: 1, H: 8, W: 8, K: 3, FH: 3, FW: 3},
	{N: 3, C: 4, H: 10, W: 10, K: 5, FH: 5, FW: 5},
	{N: 2, C: 3, H: 12, W: 12, K: 4, FH: 3, FW: 3, StrideH: 2, StrideW: 2},
	{N: 1, C: 2, H: 9, W: 7, K: 2, FH: 3, FW: 3},
	{N: 2, C: 2, H: 8, W: 8, K: 2, FH: 1, FW: 1},
	{N: 2, C: 3, H: 8, W: 8, K: 4, FH: 3, FW: 3, PadH: 1, PadW: 1},
	{N: 4, C: 2, H: 6, W: 6, K: 3, FH: 3, FW: 3, StrideH: 3, StrideW: 3},
	// Filters wider than the unpadded input with stride > 1: some taps have
	// no valid column at all (regression for the im2col fast-path bounds).
	{N: 1, C: 1, H: 5, W: 5, K: 1, FH: 9, FW: 9, PadH: 3, PadW: 3, StrideH: 2, StrideW: 2},
	{N: 2, C: 2, H: 5, W: 5, K: 2, FH: 13, FW: 13, PadH: 4, PadW: 4, StrideH: 2, StrideW: 2},
}

func TestConvDirectHandComputed(t *testing.T) {
	// 1 image, 1 channel, 3x3 input, 2x2 filter of ones: each output is the
	// sum of a 2x2 window.
	cfg := ConvConfig{N: 1, C: 1, H: 3, W: 3, K: 1, FH: 2, FW: 2}
	in := tensor.New(cfg.InputShape(), tensor.NCHW)
	vals := []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}
	copy(in.Data, vals)
	filters := tensor.New(cfg.FilterShape(), tensor.NCHW)
	filters.Fill(1)
	out, err := ConvDirect(in, filters, cfg, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1 + 2 + 4 + 5, 2 + 3 + 5 + 6, 4 + 5 + 7 + 8, 5 + 6 + 8 + 9}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestConvImplementationsAgree(t *testing.T) {
	for _, cfg := range smallConvCases {
		in := tensor.Random(cfg.InputShape(), tensor.CHWN, 1)
		filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 2)

		direct, err := ConvDirect(in, filters, cfg, tensor.NCHW)
		if err != nil {
			t.Fatalf("%v: direct: %v", cfg, err)
		}
		gemm, err := ConvIm2colGemm(tensor.Convert(in, tensor.NCHW), filters, cfg, tensor.CHWN)
		if err != nil {
			t.Fatalf("%v: gemm: %v", cfg, err)
		}
		if !tensor.RelClose(direct, gemm, 1e-4, 1e-4) {
			t.Errorf("%v: GEMM convolution disagrees with direct convolution", cfg)
		}
		fftOut, err := ConvFFT(in, filters, cfg, tensor.NCHW)
		if err != nil {
			t.Fatalf("%v: fft: %v", cfg, err)
		}
		if !tensor.RelClose(direct, fftOut, 1e-3, 1e-3) {
			t.Errorf("%v: FFT convolution disagrees with direct convolution", cfg)
		}
	}
}

func TestConvFFTWithPadding(t *testing.T) {
	cfg := ConvConfig{N: 2, C: 3, H: 8, W: 8, K: 4, FH: 3, FW: 3, PadH: 1, PadW: 1}
	in := tensor.Random(cfg.InputShape(), tensor.NCHW, 5)
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 6)
	direct, err := ConvDirect(in, filters, cfg, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	fftOut, err := ConvFFT(in, filters, cfg, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.RelClose(direct, fftOut, 1e-3, 1e-3) {
		t.Error("padded FFT convolution disagrees with direct convolution")
	}
}

func TestConvLayoutInvariance(t *testing.T) {
	// The same logical input in different layouts must give the same output.
	cfg := ConvConfig{N: 3, C: 2, H: 7, W: 7, K: 4, FH: 3, FW: 3}
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 3)
	var ref *tensor.Tensor
	for _, l := range tensor.Layouts {
		in := tensor.Random(cfg.InputShape(), l, 9)
		out, err := ConvDirect(in, filters, cfg, tensor.NCHW)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = out
			continue
		}
		if !tensor.AllClose(ref, out, 1e-5) {
			t.Errorf("layout %v changed the convolution result", l)
		}
	}
}

func TestConvInputValidation(t *testing.T) {
	cfg := ConvConfig{N: 2, C: 2, H: 6, W: 6, K: 2, FH: 3, FW: 3}
	good := tensor.Random(cfg.InputShape(), tensor.NCHW, 1)
	badIn := tensor.Random(tensor.Shape{N: 2, C: 2, H: 5, W: 6}, tensor.NCHW, 1)
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 1)
	badFilters := tensor.Filters(cfg.K, cfg.C+1, cfg.FH, cfg.FW, 1)

	if _, err := ConvDirect(badIn, filters, cfg, tensor.NCHW); err == nil {
		t.Error("mismatched input accepted by ConvDirect")
	}
	if _, err := ConvDirect(good, badFilters, cfg, tensor.NCHW); err == nil {
		t.Error("mismatched filters accepted by ConvDirect")
	}
	if _, err := ConvIm2colGemm(badIn, filters, cfg, tensor.NCHW); err == nil {
		t.Error("mismatched input accepted by ConvIm2colGemm")
	}
	if _, err := ConvFFT(good, badFilters, cfg, tensor.NCHW); err == nil {
		t.Error("mismatched filters accepted by ConvFFT")
	}
	badCfg := cfg
	badCfg.K = 0
	if _, err := ConvDirect(good, filters, badCfg, tensor.NCHW); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestDirectImagesPerThread(t *testing.T) {
	cases := map[int]int{1: 1, 16: 1, 32: 1, 63: 1, 64: 2, 127: 2, 128: 4, 256: 4, 512: 4}
	for n, want := range cases {
		if got := DirectImagesPerThread(n); got != want {
			t.Errorf("DirectImagesPerThread(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestDirectConvEfficiencyIncreasesWithN(t *testing.T) {
	// Fig. 4a: the CHWN direct convolution is highly sensitive to N.
	base := ConvConfig{C: 256, H: 13, W: 13, K: 384, FH: 3, FW: 3} // CONV7 shape
	prev := 0.0
	for _, n := range []int{1, 3, 16, 32, 64, 128, 256, 512} {
		cfg := base
		cfg.N = n
		eff := DirectConvEfficiency(cfg)
		if eff < prev {
			t.Errorf("efficiency decreased at N=%d: %v < %v", n, eff, prev)
		}
		if eff <= 0 || eff > 1 {
			t.Errorf("efficiency %v out of range at N=%d", eff, n)
		}
		prev = eff
	}
	small := DirectConvEfficiency(ConvConfig{N: 16, C: 256, H: 13, W: 13, K: 384, FH: 3, FW: 3})
	big := DirectConvEfficiency(ConvConfig{N: 128, C: 256, H: 13, W: 13, K: 384, FH: 3, FW: 3})
	if big < 2*small {
		t.Errorf("N=128 efficiency (%v) should be far larger than N=16 (%v)", big, small)
	}
}

func TestConvDirectCostStatsValid(t *testing.T) {
	d := gpusim.TitanBlack()
	for _, cfg := range smallConvCases {
		s := ConvDirectCHWNCost(d, cfg)
		if err := s.Validate(); err != nil {
			t.Errorf("%v: %v", cfg, err)
		}
		if s.FLOPs != cfg.FLOPs() {
			t.Errorf("%v: FLOPs = %v, want %v", cfg, s.FLOPs, cfg.FLOPs())
		}
		if s.DRAMReadBytes < s.UsefulReadBytes {
			t.Errorf("%v: moved bytes below useful bytes", cfg)
		}
	}
}

func TestConvGemmCostIncludesUnroll(t *testing.T) {
	d := gpusim.TitanBlack()
	cfg := ConvConfig{N: 64, C: 96, H: 55, W: 55, K: 256, FH: 5, FW: 5, StrideH: 2, StrideW: 2} // CONV6
	seq := ConvGemmNCHWCost(d, cfg)
	if len(seq) != 2 {
		t.Fatalf("5x5 convolution must include the im2col kernel, got %d kernels", len(seq))
	}
	onebyone := ConvConfig{N: 64, C: 96, H: 55, W: 55, K: 256, FH: 1, FW: 1}
	if got := ConvGemmNCHWCost(d, onebyone); len(got) != 1 {
		t.Errorf("1x1 stride-1 convolution should skip im2col, got %d kernels", len(got))
	}
}

func TestConvGemmShape(t *testing.T) {
	cfg := ConvConfig{N: 64, C: 256, H: 13, W: 13, K: 384, FH: 3, FW: 3}
	g := ConvGemmShape(cfg)
	if g.M != 384 || g.K != 256*9 || g.N != 64*11*11 {
		t.Errorf("GEMM shape = %+v", g)
	}
}

// TestPaperLayoutWinners encodes the headline observation of Fig. 3: with
// batch 128 or few channels the CHWN direct convolution wins, with small
// batches and many channels the NCHW GEMM convolution wins.
func TestPaperLayoutWinners(t *testing.T) {
	d := gpusim.TitanBlack()
	cases := []struct {
		name     string
		cfg      ConvConfig
		wantCHWN bool
	}{
		{"CONV1 (LeNet, C=1, N=128)", ConvConfig{N: 128, C: 1, H: 28, W: 28, K: 16, FH: 5, FW: 5}, true},
		{"CONV4 (Cifar, C=64, N=128)", ConvConfig{N: 128, C: 64, H: 12, W: 12, K: 64, FH: 5, FW: 5}, true},
		{"CONV5 (ZFNet first, C=3)", ConvConfig{N: 64, C: 3, H: 224, W: 224, K: 96, FH: 3, FW: 3, StrideH: 2, StrideW: 2}, true},
		{"CONV7 (ZFNet, C=256, N=64)", ConvConfig{N: 64, C: 256, H: 13, W: 13, K: 384, FH: 3, FW: 3}, false},
		{"CONV11 (VGG, C=256, N=32)", ConvConfig{N: 32, C: 256, H: 28, W: 28, K: 512, FH: 3, FW: 3}, false},
	}
	for _, c := range cases {
		chwn := gpusim.EstimateTime(d, ConvDirectCHWNCost(d, c.cfg)).TotalUS
		nchwTotal, _ := gpusim.EstimateSequence(d, ConvGemmNCHWCost(d, c.cfg))
		gotCHWN := chwn < nchwTotal
		if gotCHWN != c.wantCHWN {
			t.Errorf("%s: CHWN=%.0fus NCHW=%.0fus, wanted CHWN faster = %v", c.name, chwn, nchwTotal, c.wantCHWN)
		}
	}
}

func TestConvFFTCostOOMOnLargeFirstLayers(t *testing.T) {
	d := gpusim.TitanBlack()
	// CV5 and CV6 exceed the 6 GB card in the paper's experiments (Fig. 5).
	cv5 := ConvConfig{N: 64, C: 3, H: 224, W: 224, K: 96, FH: 3, FW: 3, StrideH: 2, StrideW: 2}
	cv6 := ConvConfig{N: 64, C: 96, H: 55, W: 55, K: 256, FH: 5, FW: 5, StrideH: 2, StrideW: 2}
	for _, cfg := range []ConvConfig{cv5, cv6} {
		if _, err := ConvFFTCost(d, cfg); err == nil {
			t.Errorf("%v: expected out-of-memory failure", cfg)
		} else {
			var oom *ErrOutOfMemory
			if !errors.As(err, &oom) {
				t.Errorf("%v: error is not ErrOutOfMemory: %v", cfg, err)
			} else if oom.Error() == "" {
				t.Error("ErrOutOfMemory must describe itself")
			}
		}
	}
	// The tiling mode reduces the workspace and must succeed on the same layers.
	if _, err := ConvFFTTilingCost(d, cv6); err != nil {
		t.Errorf("FFT tiling should fit for CV6: %v", err)
	}
	// Smaller layers must not fail.
	cv7 := ConvConfig{N: 64, C: 256, H: 13, W: 13, K: 384, FH: 3, FW: 3}
	if _, err := ConvFFTCost(d, cv7); err != nil {
		t.Errorf("CV7 FFT should fit: %v", err)
	}
}

func TestConvFFTCostStatsValid(t *testing.T) {
	d := gpusim.TitanBlack()
	cfg := ConvConfig{N: 64, C: 256, H: 13, W: 13, K: 384, FH: 3, FW: 3}
	for _, tiled := range []bool{false, true} {
		seq, err := fftCost(d, cfg, tiled)
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != 3 {
			t.Fatalf("FFT cost should have 3 stages, got %d", len(seq))
		}
		for _, s := range seq {
			if err := s.Validate(); err != nil {
				t.Errorf("tiled=%v: %v", tiled, err)
			}
		}
	}
}

func TestFFTWorkspaceLargerThanTiling(t *testing.T) {
	cfg := ConvConfig{N: 64, C: 96, H: 55, W: 55, K: 256, FH: 5, FW: 5, StrideH: 2, StrideW: 2}
	if FFTWorkspaceBytes(cfg) <= FFTTilingWorkspaceBytes(cfg) {
		t.Error("full-image FFT workspace should exceed the tiled workspace for 55x55 maps")
	}
}

func BenchmarkConvDirectSmall(b *testing.B) {
	cfg := ConvConfig{N: 8, C: 16, H: 14, W: 14, K: 16, FH: 5, FW: 5}
	in := tensor.Random(cfg.InputShape(), tensor.CHWN, 1)
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ConvDirect(in, filters, cfg, tensor.CHWN); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConvGemmSmall(b *testing.B) {
	cfg := ConvConfig{N: 8, C: 16, H: 14, W: 14, K: 16, FH: 5, FW: 5}
	in := tensor.Random(cfg.InputShape(), tensor.NCHW, 1)
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ConvIm2colGemm(in, filters, cfg, tensor.NCHW); err != nil {
			b.Fatal(err)
		}
	}
}
