package kernels

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

// Pooling kernels (Sections IV.B and V.A).  Pooling is memory bound: its
// performance is decided by how the window loads map onto memory transactions
// (layout) and by how much of the overlapping-window redundancy is removed
// (register-level reuse / thread coarsening).

// Pool is the functional reference pooling operator.  The output tensor uses
// the same layout as the input; the layout does not change the values, only
// the memory behaviour, which is the whole point of the paper's Section IV.B.
func Pool(in *tensor.Tensor, cfg PoolConfig) (*tensor.Tensor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := tensor.New(cfg.OutputShape(), in.Layout)
	if err := PoolInto(in, out, cfg); err != nil {
		return nil, err
	}
	return out, nil
}

// PoolInto is the allocation-free variant of Pool: it writes into a
// caller-provided output tensor of the config's output shape (any layout).
// Every output element is overwritten, so the destination's prior contents do
// not matter.
//
//memcnn:noalloc
func PoolInto(in, out *tensor.Tensor, cfg PoolConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if in.Shape != cfg.InputShape() {
		return fmt.Errorf("kernels: pool input shape %v does not match config %v", in.Shape, cfg.InputShape())
	}
	if out.Shape != cfg.OutputShape() {
		return fmt.Errorf("kernels: pool output shape %v does not match config %v", out.Shape, cfg.OutputShape())
	}
	outH, outW := cfg.OutH(), cfg.OutW()

	// Work is distributed by an atomic (n,c) plane counter rather than a job
	// channel so the hot path performs no allocation; a single-worker run
	// stays inline and allocation free.
	var next atomic.Int64
	planes := int64(cfg.N * cfg.C)
	plane := func() { //memcnn:alloc-ok
		for {
			p := next.Add(1) - 1
			if p >= planes {
				return
			}
			n, c := int(p)/cfg.C, int(p)%cfg.C
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					out.Set(n, c, oh, ow, poolWindow(in, cfg, n, c, oh, ow))
				}
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 {
		plane()
		return nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() { //memcnn:alloc-ok
			defer wg.Done()
			plane()
		}()
	}
	wg.Wait()
	return nil
}

func poolWindow(in *tensor.Tensor, cfg PoolConfig, n, c, oh, ow int) float32 {
	h0, w0 := oh*cfg.Stride, ow*cfg.Stride
	switch cfg.Op {
	case MaxPool:
		best := in.At(n, c, h0, w0)
		for y := 0; y < cfg.Window; y++ {
			for x := 0; x < cfg.Window; x++ {
				if v := in.At(n, c, h0+y, w0+x); v > best {
					best = v
				}
			}
		}
		return best
	default: // AvgPool
		var sum float64
		for y := 0; y < cfg.Window; y++ {
			for x := 0; x < cfg.Window; x++ {
				sum += float64(in.At(n, c, h0+y, w0+x))
			}
		}
		return float32(sum / float64(cfg.Window*cfg.Window))
	}
}

// PoolCoarsened is the functional counterpart of the register-reuse optimised
// pooling kernel: each logical "thread" computes an expandH×expandW tile of
// output elements and loads the union of their input windows exactly once.
// The numerical result is identical to Pool; the test suite asserts it.
func PoolCoarsened(in *tensor.Tensor, cfg PoolConfig, expandH, expandW int) (*tensor.Tensor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if expandH <= 0 || expandW <= 0 {
		return nil, fmt.Errorf("kernels: expansion factors must be positive (%d, %d)", expandH, expandW)
	}
	if in.Shape != cfg.InputShape() {
		return nil, fmt.Errorf("kernels: pool input shape %v does not match config %v", in.Shape, cfg.InputShape())
	}
	out := tensor.New(cfg.OutputShape(), in.Layout)
	outH, outW := cfg.OutH(), cfg.OutW()
	unionH := (expandH-1)*cfg.Stride + cfg.Window
	unionW := (expandW-1)*cfg.Stride + cfg.Window

	type job struct{ n, c int }
	jobs := make(chan job, cfg.N*cfg.C)
	for n := 0; n < cfg.N; n++ {
		for c := 0; c < cfg.C; c++ {
			jobs <- job{n, c}
		}
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// window caches the union of input windows of one output tile,
			// standing in for the per-thread register file.
			window := make([]float32, unionH*unionW)
			for j := range jobs {
				for ohBase := 0; ohBase < outH; ohBase += expandH {
					for owBase := 0; owBase < outW; owBase += expandW {
						// Load the union once.
						h0, w0 := ohBase*cfg.Stride, owBase*cfg.Stride
						for y := 0; y < unionH; y++ {
							for x := 0; x < unionW; x++ {
								ih, iw := h0+y, w0+x
								if ih < cfg.H && iw < cfg.W {
									window[y*unionW+x] = in.At(j.n, j.c, ih, iw)
								} else {
									window[y*unionW+x] = float32(math.Inf(-1))
								}
							}
						}
						// Produce the tile from the cached union.
						for dy := 0; dy < expandH && ohBase+dy < outH; dy++ {
							for dx := 0; dx < expandW && owBase+dx < outW; dx++ {
								out.Set(j.n, j.c, ohBase+dy, owBase+dx,
									poolFromCache(window, unionW, cfg, dy, dx))
							}
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	return out, nil
}

func poolFromCache(window []float32, unionW int, cfg PoolConfig, dy, dx int) float32 {
	y0, x0 := dy*cfg.Stride, dx*cfg.Stride
	switch cfg.Op {
	case MaxPool:
		best := window[y0*unionW+x0]
		for y := 0; y < cfg.Window; y++ {
			for x := 0; x < cfg.Window; x++ {
				if v := window[(y0+y)*unionW+(x0+x)]; v > best {
					best = v
				}
			}
		}
		return best
	default:
		var sum float64
		for y := 0; y < cfg.Window; y++ {
			for x := 0; x < cfg.Window; x++ {
				sum += float64(window[(y0+y)*unionW+(x0+x)])
			}
		}
		return float32(sum / float64(cfg.Window*cfg.Window))
	}
}

// loadRedundancy returns how many times each input element is read by a naive
// one-output-per-thread pooling kernel (window loads divided by input size).
func loadRedundancy(cfg PoolConfig) float64 {
	loads := float64(cfg.OutH()) * float64(cfg.OutW()) * float64(cfg.Window*cfg.Window)
	return loads / (float64(cfg.H) * float64(cfg.W))
}

// poolL2Filter is the fraction of redundant re-loads that the L2 cache
// absorbs for the CHWN kernel, whose warp works through a feature-map slice
// with good temporal locality.
const poolL2Filter = 0.5

// PoolCHWNCost models the cuda-convnet pooling kernel on the CHWN layout:
// the batch dimension is innermost, so every window load of a warp is fully
// coalesced; the only inefficiency left is the redundant loading of
// overlapping windows, partially filtered by L2.
func PoolCHWNCost(d *gpusim.Device, cfg PoolConfig) gpusim.KernelStats {
	inBytes := float64(cfg.InputShape().Elems()) * 4
	outBytes := float64(cfg.OutputShape().Elems()) * 4

	red := loadRedundancy(cfg)
	effRed := 1 + (red-1)*(1-poolL2Filter)
	if effRed < 1 {
		effRed = 1
	}
	read := inBytes * effRed

	outputs := cfg.OutputShape().Elems()
	return gpusim.KernelStats{
		Name:              fmt.Sprintf("pool CHWN %s", cfg.String()),
		GridBlocks:        ceilDiv(outputs, 128),
		Block:             gpusim.BlockResources{ThreadsPerBlock: 128, RegsPerThread: 24},
		Launches:          1,
		FLOPs:             cfg.FLOPs(),
		ComputeEfficiency: 0.5,
		DRAMReadBytes:     read,
		DRAMWriteBytes:    outBytes,
		UsefulReadBytes:   inBytes,
		UsefulWriteBytes:  outBytes,
	}
}

// PoolNCHWVariant selects which NCHW library kernel is modelled.
type PoolNCHWVariant int

// The two NCHW pooling implementations the paper measures.
const (
	PoolCaffe PoolNCHWVariant = iota // Caffe: plain strided kernel
	PoolCuDNN                        // cuDNN: strided kernel + backward mask write
)

// PoolNCHWCost models the Caffe/cuDNN pooling kernel on the NCHW layout: one
// thread per output element with the output width innermost, so consecutive
// threads read input addresses strided by the pooling stride.  The strided
// warp accesses over-fetch (Section IV.B), and the overlapping-window
// redundancy is not captured by any on-chip reuse.
func PoolNCHWCost(d *gpusim.Device, cfg PoolConfig, variant PoolNCHWVariant) gpusim.KernelStats {
	inBytes := float64(cfg.InputShape().Elems()) * 4
	outBytes := float64(cfg.OutputShape().Elems()) * 4

	// Representative warp: 32 consecutive output positions along the output
	// width (wrapping to the next row when the feature map is narrow); each
	// window tap issues one such access.
	eff := nchwPoolWarpEfficiency(d, cfg)

	red := loadRedundancy(cfg)
	// The NCHW kernel walks whole feature maps before returning to nearby
	// rows, so only a small part of the redundancy hits in L2.
	effRed := 1 + (red-1)*0.85
	read := inBytes * effRed / eff

	write := outBytes
	name := "pool NCHW (Caffe)"
	if variant == PoolCuDNN {
		// cuDNN's kernel also emits the argmax mask used by the backward
		// pass, doubling the store traffic.
		write *= 2
		name = "pool NCHW (cuDNN)"
	}
	outputs := cfg.OutputShape().Elems()
	return gpusim.KernelStats{
		Name:              fmt.Sprintf("%s %s", name, cfg.String()),
		GridBlocks:        ceilDiv(outputs, 256),
		Block:             gpusim.BlockResources{ThreadsPerBlock: 256, RegsPerThread: 28},
		Launches:          1,
		FLOPs:             cfg.FLOPs(),
		ComputeEfficiency: 0.5,
		DRAMReadBytes:     read,
		DRAMWriteBytes:    write,
		UsefulReadBytes:   inBytes,
		UsefulWriteBytes:  outBytes,
	}
}

// nchwPoolWarpEfficiency builds the real address pattern of one warp of the
// NCHW pooling kernel and runs it through the coalescer.
func nchwPoolWarpEfficiency(d *gpusim.Device, cfg PoolConfig) float64 {
	outW := cfg.OutW()
	addrs := make([]int64, d.WarpSize)
	for t := 0; t < d.WarpSize; t++ {
		oh := t / outW
		ow := t % outW
		// Input address of the window origin for this output element.
		addrs[t] = int64(oh*cfg.Stride*cfg.W+ow*cfg.Stride) * 4
	}
	w := gpusim.WarpAccess{Addresses: addrs, Bytes: 4}
	eff := w.Efficiency(d.TransactionBytes)
	if eff <= 0 {
		return 1
	}
	return eff
}

// PoolExpansion describes the working-set expansion (thread coarsening)
// factors of the optimised CHWN pooling kernel of Section V.A.
type PoolExpansion struct {
	H int
	W int
}

// Outputs returns the number of output elements one thread produces.
func (e PoolExpansion) Outputs() int { return e.H * e.W }

// poolBaseRegs is the register demand of the un-coarsened pooling kernel.
const poolBaseRegs = 20

// PoolCoarsenedRegisters returns the per-thread register demand of the
// coarsened kernel: the base working set plus the cached union of input
// windows.
func PoolCoarsenedRegisters(cfg PoolConfig, e PoolExpansion) int {
	unionH := (e.H-1)*cfg.Stride + cfg.Window
	unionW := (e.W-1)*cfg.Stride + cfg.Window
	regs := poolBaseRegs + unionH*unionW + e.Outputs()
	if regs > 255 {
		regs = 255
	}
	return regs
}

// PoolCHWNCoarsenedCost models the optimised pooling kernel: CHWN layout plus
// per-thread working-set expansion.  Each thread loads the union of the
// windows of its output tile once, removing the intra-tile redundant loads;
// pushing the expansion too far raises register pressure until spills and
// lost occupancy take the gains back, which is the trade-off the auto-tuner
// of internal/autotune searches.
func PoolCHWNCoarsenedCost(d *gpusim.Device, cfg PoolConfig, e PoolExpansion) gpusim.KernelStats {
	if e.H <= 0 {
		e.H = 1
	}
	if e.W <= 0 {
		e.W = 1
	}
	inBytes := float64(cfg.InputShape().Elems()) * 4
	outBytes := float64(cfg.OutputShape().Elems()) * 4

	// Per-tile loads: the union of the tile's windows, loaded once.
	unionH := (e.H-1)*cfg.Stride + cfg.Window
	unionW := (e.W-1)*cfg.Stride + cfg.Window
	tilesH := ceilDiv(cfg.OutH(), e.H)
	tilesW := ceilDiv(cfg.OutW(), e.W)
	loadsPerPlane := float64(tilesH*tilesW) * float64(unionH*unionW)
	red := loadsPerPlane / (float64(cfg.H) * float64(cfg.W))
	if red < 1 {
		red = 1
	}
	effRed := 1 + (red-1)*(1-poolL2Filter)
	read := inBytes * effRed

	regs := PoolCoarsenedRegisters(cfg, e)
	// Register spills beyond the 63-register sweet spot cost local-memory
	// traffic proportional to the spilled working set.
	var spillBytes float64
	if regs > 63 {
		spillTiles := float64(cfg.N * cfg.C * tilesH * tilesW)
		spillBytes = spillTiles * float64(regs-63) * 4 * 2 // store + reload
	}

	outputs := cfg.OutputShape().Elems()
	threads := ceilDiv(outputs, e.Outputs())
	return gpusim.KernelStats{
		Name:              fmt.Sprintf("pool CHWN coarsened %dx%d %s", e.H, e.W, cfg.String()),
		GridBlocks:        ceilDiv(threads, 128),
		Block:             gpusim.BlockResources{ThreadsPerBlock: 128, RegsPerThread: regs},
		Launches:          1,
		FLOPs:             cfg.FLOPs(),
		ComputeEfficiency: 0.5,
		DRAMReadBytes:     read + spillBytes,
		DRAMWriteBytes:    outBytes,
		UsefulReadBytes:   inBytes,
		UsefulWriteBytes:  outBytes,
	}
}
