package kernels

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

// Backward-pass kernels.  The paper notes (Section II.A, footnote 1) that the
// same data structures and convolution operations are used in the forward and
// backward passes, so the layout findings carry over to training; its Caffe
// integration is profiled on complete forward-backward iterations.  This file
// provides the backward kernels needed to price (and functionally check) a
// training step: convolution gradients with respect to the input and to the
// filters, pooling backward, ReLU backward and the fused softmax +
// cross-entropy gradient.
//
// Every kernel has an allocation-free *Into variant writing into a
// caller-provided gradient tensor; the planned training executor
// (internal/runtime/train) runs those over arena-planned buffers, so a
// steady-state training step allocates no tensors.  The allocating functions
// are thin wrappers over the *Into variants, which keeps the two paths
// bit-identical.  Work is distributed by atomic plane counters with a fixed
// per-element accumulation order, so results do not depend on the worker
// count.

// parallelPlanes runs work(p) for p in [0, planes) across GOMAXPROCS workers.
// Each plane is processed by exactly one worker, so kernels that assign each
// output element to one plane stay bit-deterministic for any worker count.
//
//memcnn:noalloc
func parallelPlanes(planes int, work func(p int)) {
	var next atomic.Int64
	drain := func() { //memcnn:alloc-ok
		for {
			p := next.Add(1) - 1
			if p >= int64(planes) {
				return
			}
			work(int(p))
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || planes <= 1 {
		drain()
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() { //memcnn:alloc-ok
			defer wg.Done()
			drain()
		}()
	}
	wg.Wait()
}

// ConvBackwardData computes the gradient of the convolution with respect to
// its input: dIn[n][c][ih][iw] = sum over (k, fh, fw) hitting (ih, iw) of
// dOut[n][k][oh][ow] * filter[k][c][fh][fw].  It is the functional reference
// for the backward-data kernel.
func ConvBackwardData(dOut, filters *tensor.Tensor, cfg ConvConfig, outLayout tensor.Layout) (*tensor.Tensor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dIn := tensor.New(cfg.InputShape(), outLayout)
	if err := ConvBackwardDataInto(dOut, filters, dIn, cfg); err != nil {
		return nil, err
	}
	return dIn, nil
}

// ConvBackwardDataInto is the allocation-free variant of ConvBackwardData: it
// writes into a caller-provided input-gradient tensor of the config's input
// shape (any layout).  Every element is overwritten, so the destination's
// prior contents do not matter.  Each (n, c) plane is computed by exactly one
// worker with a fixed accumulation order, so the result is bit-deterministic
// for any worker count.
//
//memcnn:noalloc
func ConvBackwardDataInto(dOut, filters, dIn *tensor.Tensor, cfg ConvConfig) error {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if dOut.Shape != cfg.OutputShape() {
		return fmt.Errorf("kernels: backward-data dOut shape %v does not match config %v", dOut.Shape, cfg.OutputShape())
	}
	if filters.Shape != cfg.FilterShape() {
		return fmt.Errorf("kernels: filter shape %v does not match config %v", filters.Shape, cfg.FilterShape())
	}
	if dIn.Shape != cfg.InputShape() {
		return fmt.Errorf("kernels: backward-data dIn shape %v does not match config %v", dIn.Shape, cfg.InputShape())
	}
	outH, outW := cfg.OutH(), cfg.OutW()
	parallelPlanes(cfg.N*cfg.C, func(p int) { //memcnn:alloc-ok
		n, c := p/cfg.C, p%cfg.C
		for ih := 0; ih < cfg.H; ih++ {
			for iw := 0; iw < cfg.W; iw++ {
				var acc float64
				for k := 0; k < cfg.K; k++ {
					for fh := 0; fh < cfg.FH; fh++ {
						ohNum := ih + cfg.PadH - fh
						if ohNum < 0 || ohNum%cfg.StrideH != 0 {
							continue
						}
						oh := ohNum / cfg.StrideH
						if oh >= outH {
							continue
						}
						for fw := 0; fw < cfg.FW; fw++ {
							owNum := iw + cfg.PadW - fw
							if owNum < 0 || owNum%cfg.StrideW != 0 {
								continue
							}
							ow := owNum / cfg.StrideW
							if ow >= outW {
								continue
							}
							acc += float64(dOut.At(n, k, oh, ow)) * float64(filters.At(k, c, fh, fw))
						}
					}
				}
				dIn.Set(n, c, ih, iw, float32(acc))
			}
		}
	})
	return nil
}

// ConvBackwardFilter computes the gradient of the convolution with respect to
// its filter bank: dW[k][c][fh][fw] = sum over (n, oh, ow) of
// dOut[n][k][oh][ow] * in[n][c][oh*S+fh-pad][ow*S+fw-pad].
func ConvBackwardFilter(in, dOut *tensor.Tensor, cfg ConvConfig) (*tensor.Tensor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dW := tensor.New(cfg.FilterShape(), tensor.NCHW)
	if err := ConvBackwardFilterInto(in, dOut, dW, cfg); err != nil {
		return nil, err
	}
	return dW, nil
}

// ConvBackwardFilterInto is the allocation-free variant of ConvBackwardFilter:
// it writes into a caller-provided filter-gradient tensor of the config's
// filter shape.  Each (k, c) filter plane is accumulated by exactly one worker
// in a fixed (n, oh, ow) order, so the result is bit-deterministic for any
// worker count.
//
//memcnn:noalloc
func ConvBackwardFilterInto(in, dOut, dW *tensor.Tensor, cfg ConvConfig) error {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if in.Shape != cfg.InputShape() {
		return fmt.Errorf("kernels: backward-filter input shape %v does not match config %v", in.Shape, cfg.InputShape())
	}
	if dOut.Shape != cfg.OutputShape() {
		return fmt.Errorf("kernels: backward-filter dOut shape %v does not match config %v", dOut.Shape, cfg.OutputShape())
	}
	if dW.Shape != cfg.FilterShape() {
		return fmt.Errorf("kernels: backward-filter dW shape %v does not match config %v", dW.Shape, cfg.FilterShape())
	}
	outH, outW := cfg.OutH(), cfg.OutW()
	parallelPlanes(cfg.K*cfg.C, func(p int) { //memcnn:alloc-ok
		k, c := p/cfg.C, p%cfg.C
		for fh := 0; fh < cfg.FH; fh++ {
			for fw := 0; fw < cfg.FW; fw++ {
				var acc float64
				for n := 0; n < cfg.N; n++ {
					for oh := 0; oh < outH; oh++ {
						ih := oh*cfg.StrideH - cfg.PadH + fh
						if ih < 0 || ih >= cfg.H {
							continue
						}
						for ow := 0; ow < outW; ow++ {
							iw := ow*cfg.StrideW - cfg.PadW + fw
							if iw < 0 || iw >= cfg.W {
								continue
							}
							acc += float64(dOut.At(n, k, oh, ow)) * float64(in.At(n, c, ih, iw))
						}
					}
				}
				dW.Set(k, c, fh, fw, float32(acc))
			}
		}
	})
	return nil
}

// ConvBackwardDataCHWNCost models the backward-data pass of the direct
// convolution on the CHWN layout.  The access structure mirrors the forward
// kernel (the roles of C and K swap and the filter is traversed transposed),
// so the cost model reuses the forward machinery on the transposed
// configuration — exactly the paper's observation that forward and backward
// share layout behaviour.
func ConvBackwardDataCHWNCost(d *gpusim.Device, cfg ConvConfig) gpusim.KernelStats {
	cfg = cfg.withDefaults()
	t := transposedConfig(cfg)
	s := ConvDirectCHWNCost(d, t)
	s.Name = fmt.Sprintf("direct-conv-bwd-data CHWN %s", cfg.String())
	return s
}

// ConvBackwardDataNCHWCost models the backward-data pass of the GEMM
// convolution (col2im after a GEMM with the transposed filter matrix).
func ConvBackwardDataNCHWCost(d *gpusim.Device, cfg ConvConfig) []gpusim.KernelStats {
	cfg = cfg.withDefaults()
	t := transposedConfig(cfg)
	seq := ConvGemmNCHWCost(d, t)
	for i := range seq {
		seq[i].Name = fmt.Sprintf("gemm-conv-bwd-data NCHW %s (stage %d)", cfg.String(), i)
	}
	return seq
}

// transposedConfig returns the configuration of the backward-data convolution
// seen as a forward convolution: output channels become input channels and
// the spatial extent is the forward output's.  Degenerate sizes are clamped
// so the cost query stays well defined for very small layers.
func transposedConfig(cfg ConvConfig) ConvConfig {
	h, w := cfg.OutH(), cfg.OutW()
	if h < cfg.FH {
		h = cfg.FH
	}
	if w < cfg.FW {
		w = cfg.FW
	}
	padH, padW := cfg.FH-1-cfg.PadH, cfg.FW-1-cfg.PadW
	if padH < 0 {
		padH = 0
	}
	if padW < 0 {
		padW = 0
	}
	return ConvConfig{
		N: cfg.N, C: cfg.K, H: h, W: w,
		K: cfg.C, FH: cfg.FH, FW: cfg.FW,
		StrideH: 1, StrideW: 1,
		PadH: padH, PadW: padW,
	}
}

// ConvBackwardFilterCost models the weight-gradient kernel, which both
// libraries implement as a GEMM over the unrolled input:
// dW (K × C·FH·FW) = dOut (K × N·OutH·OutW) · unrolled(in)ᵀ.
func ConvBackwardFilterCost(d *gpusim.Device, cfg ConvConfig) []gpusim.KernelStats {
	cfg = cfg.withDefaults()
	g := GemmCostConfig{M: cfg.K, N: cfg.ReductionLength(), K: cfg.N * cfg.OutH() * cfg.OutW()}
	gemm := GemmCost(d, g)
	gemm.Name = fmt.Sprintf("conv-bwd-filter %s", cfg.String())
	if cfg.FH == 1 && cfg.FW == 1 && cfg.StrideH == 1 && cfg.StrideW == 1 {
		return []gpusim.KernelStats{gemm}
	}
	return []gpusim.KernelStats{Im2colCost(d, cfg), gemm}
}

// PoolBackward computes the gradient of the pooling layer.  For max pooling
// the incoming gradient is routed to the window position that produced the
// maximum (ties go to the first such position, as the CUDA kernels do); for
// average pooling it is spread uniformly over the window.
func PoolBackward(in, dOut *tensor.Tensor, cfg PoolConfig) (*tensor.Tensor, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dIn := tensor.New(cfg.InputShape(), in.Layout)
	if err := PoolBackwardInto(in, dOut, dIn, cfg); err != nil {
		return nil, err
	}
	return dIn, nil
}

// PoolBackwardInto is the allocation-free variant of PoolBackward.  The
// destination is fully overwritten (the scatter zeroes each (n, c) plane
// before accumulating into it), so arena-recycled storage needs no clearing.
// Each plane is owned by exactly one worker with a fixed window order, so the
// result is bit-deterministic for any worker count.
//
//memcnn:noalloc
func PoolBackwardInto(in, dOut, dIn *tensor.Tensor, cfg PoolConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if in.Shape != cfg.InputShape() {
		return fmt.Errorf("kernels: pool backward input shape %v does not match config %v", in.Shape, cfg.InputShape())
	}
	if dOut.Shape != cfg.OutputShape() {
		return fmt.Errorf("kernels: pool backward dOut shape %v does not match config %v", dOut.Shape, cfg.OutputShape())
	}
	if dIn.Shape != cfg.InputShape() {
		return fmt.Errorf("kernels: pool backward dIn shape %v does not match config %v", dIn.Shape, cfg.InputShape())
	}
	outH, outW := cfg.OutH(), cfg.OutW()
	parallelPlanes(cfg.N*cfg.C, func(p int) { //memcnn:alloc-ok
		n, c := p/cfg.C, p%cfg.C
		for h := 0; h < cfg.H; h++ {
			for w := 0; w < cfg.W; w++ {
				dIn.Set(n, c, h, w, 0)
			}
		}
		for oh := 0; oh < outH; oh++ {
			for ow := 0; ow < outW; ow++ {
				g := dOut.At(n, c, oh, ow)
				h0, w0 := oh*cfg.Stride, ow*cfg.Stride
				if cfg.Op == AvgPool {
					share := g / float32(cfg.Window*cfg.Window)
					for y := 0; y < cfg.Window; y++ {
						for x := 0; x < cfg.Window; x++ {
							dIn.Set(n, c, h0+y, w0+x, dIn.At(n, c, h0+y, w0+x)+share)
						}
					}
					continue
				}
				bestY, bestX := 0, 0
				best := in.At(n, c, h0, w0)
				for y := 0; y < cfg.Window; y++ {
					for x := 0; x < cfg.Window; x++ {
						if v := in.At(n, c, h0+y, w0+x); v > best {
							best, bestY, bestX = v, y, x
						}
					}
				}
				dIn.Set(n, c, h0+bestY, w0+bestX, dIn.At(n, c, h0+bestY, w0+bestX)+g)
			}
		}
	})
	return nil
}

// PoolBackwardCost models the pooling backward kernel: it reads the incoming
// gradient and the forward activations (or the stored argmax mask) and
// scatters into the input gradient.  The layout determines coalescing exactly
// as in the forward pass.
func PoolBackwardCost(d *gpusim.Device, cfg PoolConfig, layoutIsCHWN bool) gpusim.KernelStats {
	inBytes := float64(cfg.InputShape().Elems()) * 4
	outBytes := float64(cfg.OutputShape().Elems()) * 4
	// Reads: gradient + mask; writes: input-sized gradient (atomics for the
	// overlapped case).
	read := 2 * outBytes
	write := inBytes
	eff := 1.0
	if !layoutIsCHWN {
		eff = nchwPoolWarpEfficiency(d, cfg)
	}
	if cfg.Overlapped() {
		write *= 1.15 // atomic collisions on shared border elements
	}
	name := "pool-bwd CHWN"
	if !layoutIsCHWN {
		name = "pool-bwd NCHW"
	}
	return gpusim.KernelStats{
		Name:              fmt.Sprintf("%s %s", name, cfg.String()),
		GridBlocks:        ceilDiv(cfg.OutputShape().Elems(), 256),
		Block:             gpusim.BlockResources{ThreadsPerBlock: 256, RegsPerThread: 24},
		Launches:          1,
		FLOPs:             cfg.FLOPs(),
		ComputeEfficiency: 0.5,
		DRAMReadBytes:     read / eff,
		DRAMWriteBytes:    write / eff,
		UsefulReadBytes:   read,
		UsefulWriteBytes:  write,
	}
}

// SoftmaxCrossEntropyBackward computes the gradient of the softmax +
// cross-entropy loss with respect to the logits: probs - onehot(labels),
// scaled by 1/N.  probs is the row-major N×Classes output of Softmax.
func SoftmaxCrossEntropyBackward(probs []float32, labels []int, cfg SoftmaxConfig) ([]float32, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	grad := make([]float32, cfg.Elems())
	if err := SoftmaxCrossEntropyBackwardInto(grad, probs, labels, cfg); err != nil {
		return nil, err
	}
	return grad, nil
}

// SoftmaxCrossEntropyBackwardInto is the allocation-free variant of
// SoftmaxCrossEntropyBackward, writing the logit gradient into a
// caller-provided slice of at least cfg.Elems() elements.
//
//memcnn:noalloc
func SoftmaxCrossEntropyBackwardInto(grad, probs []float32, labels []int, cfg SoftmaxConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(probs) < cfg.Elems() {
		return fmt.Errorf("kernels: softmax backward probs has %d elements, want %d", len(probs), cfg.Elems())
	}
	if len(grad) < cfg.Elems() {
		return fmt.Errorf("kernels: softmax backward grad has %d elements, want %d", len(grad), cfg.Elems())
	}
	if len(labels) != cfg.N {
		return fmt.Errorf("kernels: softmax backward has %d labels, want %d", len(labels), cfg.N)
	}
	scale := 1 / float32(cfg.N)
	for n := 0; n < cfg.N; n++ {
		lbl := labels[n]
		if lbl < 0 || lbl >= cfg.Classes {
			return fmt.Errorf("kernels: label %d out of range for %d classes", lbl, cfg.Classes)
		}
		for c := 0; c < cfg.Classes; c++ {
			g := probs[n*cfg.Classes+c]
			if c == lbl {
				g -= 1
			}
			grad[n*cfg.Classes+c] = g * scale
		}
	}
	return nil
}

// SoftmaxCrossEntropyBackwardFloatInto is SoftmaxCrossEntropyBackwardInto
// with the labels carried as float32 values (rounded class indices), the form
// they take inside a planned training program's float32 arena.
//
//memcnn:noalloc
func SoftmaxCrossEntropyBackwardFloatInto(grad, probs, labels []float32, cfg SoftmaxConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(probs) < cfg.Elems() {
		return fmt.Errorf("kernels: softmax backward probs has %d elements, want %d", len(probs), cfg.Elems())
	}
	if len(grad) < cfg.Elems() {
		return fmt.Errorf("kernels: softmax backward grad has %d elements, want %d", len(grad), cfg.Elems())
	}
	if len(labels) < cfg.N {
		return fmt.Errorf("kernels: softmax backward has %d labels, want %d", len(labels), cfg.N)
	}
	scale := 1 / float32(cfg.N)
	for n := 0; n < cfg.N; n++ {
		lbl := int(labels[n])
		if lbl < 0 || lbl >= cfg.Classes {
			return fmt.Errorf("kernels: label %d out of range for %d classes", lbl, cfg.Classes)
		}
		for c := 0; c < cfg.Classes; c++ {
			g := probs[n*cfg.Classes+c]
			if c == lbl {
				g -= 1
			}
			grad[n*cfg.Classes+c] = g * scale
		}
	}
	return nil
}

// SoftmaxCrossEntropyLossFloat is SoftmaxCrossEntropyLoss with float32-coded
// labels, matching SoftmaxCrossEntropyBackwardFloatInto.
func SoftmaxCrossEntropyLossFloat(probs, labels []float32, cfg SoftmaxConfig) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(probs) < cfg.Elems() {
		return 0, fmt.Errorf("kernels: softmax loss probs has %d elements, want %d", len(probs), cfg.Elems())
	}
	if len(labels) < cfg.N {
		return 0, fmt.Errorf("kernels: softmax loss has %d labels, want %d", len(labels), cfg.N)
	}
	var loss float64
	for n := 0; n < cfg.N; n++ {
		lbl := int(labels[n])
		if lbl < 0 || lbl >= cfg.Classes {
			return 0, fmt.Errorf("kernels: label %d out of range for %d classes", lbl, cfg.Classes)
		}
		p := float64(probs[n*cfg.Classes+lbl])
		if p < 1e-30 {
			p = 1e-30
		}
		loss -= math.Log(p)
	}
	return loss / float64(cfg.N), nil
}

// SoftmaxCrossEntropyLoss returns the mean cross-entropy of the probability
// matrix against the labels: -1/N · Σ log probs[n][label n].  The summation
// order is fixed (by image, in float64), so the loss value is bit-stable
// across executors — the planned and naive trainers both report it.
func SoftmaxCrossEntropyLoss(probs []float32, labels []int, cfg SoftmaxConfig) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if len(probs) < cfg.Elems() {
		return 0, fmt.Errorf("kernels: softmax loss probs has %d elements, want %d", len(probs), cfg.Elems())
	}
	if len(labels) != cfg.N {
		return 0, fmt.Errorf("kernels: softmax loss has %d labels, want %d", len(labels), cfg.N)
	}
	var loss float64
	for n := 0; n < cfg.N; n++ {
		lbl := labels[n]
		if lbl < 0 || lbl >= cfg.Classes {
			return 0, fmt.Errorf("kernels: label %d out of range for %d classes", lbl, cfg.Classes)
		}
		p := float64(probs[n*cfg.Classes+lbl])
		if p < 1e-30 {
			p = 1e-30 // clamp: a zero probability would make the loss infinite
		}
		loss -= math.Log(p)
	}
	return loss / float64(cfg.N), nil
}

// SoftmaxBackwardCost models the (fused) softmax backward kernel: one
// streaming pass over the probability matrix.
func SoftmaxBackwardCost(d *gpusim.Device, cfg SoftmaxConfig, fused bool) gpusim.KernelStats {
	matrix := cfg.Bytes()
	launches := 1
	read, write := matrix, matrix
	if !fused {
		// The unfused baseline recomputes through separate kernels and
		// round-trips an intermediate matrix.
		launches = 2
		read, write = 2*matrix, 2*matrix
	}
	return gpusim.KernelStats{
		Name:              fmt.Sprintf("softmax-bwd %s", cfg.String()),
		GridBlocks:        cfg.N,
		Block:             gpusim.BlockResources{ThreadsPerBlock: softmaxBlockThreads(cfg.Classes), RegsPerThread: 24},
		Launches:          launches,
		FLOPs:             float64(cfg.Elems()) * 2,
		ComputeEfficiency: 0.25,
		DRAMReadBytes:     read,
		DRAMWriteBytes:    write,
		UsefulReadBytes:   matrix,
		UsefulWriteBytes:  matrix,
	}
}

// ReLUBackward masks the incoming gradient with the forward activation's
// sign: dIn = dOut where the forward input was positive, 0 elsewhere.
func ReLUBackward(in, dOut *tensor.Tensor) (*tensor.Tensor, error) {
	dIn := tensor.New(in.Shape, dOut.Layout)
	if err := ReLUBackwardInto(in, dOut, dIn); err != nil {
		return nil, err
	}
	return dIn, nil
}

// ReLUBackwardInto is the allocation-free variant of ReLUBackward.  Every
// element of dIn is overwritten.  When all three tensors share a layout it is
// a single linear pass over the backing slices; dIn may alias dOut (the mask
// reads in, writes only dIn).
//
//memcnn:noalloc
func ReLUBackwardInto(in, dOut, dIn *tensor.Tensor) error {
	if in.Shape != dOut.Shape {
		return fmt.Errorf("kernels: relu backward shape mismatch %v vs %v", in.Shape, dOut.Shape)
	}
	if dIn.Shape != in.Shape {
		return fmt.Errorf("kernels: relu backward dIn shape %v, want %v", dIn.Shape, in.Shape)
	}
	if in.Layout == dOut.Layout && dOut.Layout == dIn.Layout {
		for i, v := range in.Data {
			if v > 0 {
				dIn.Data[i] = dOut.Data[i]
			} else {
				dIn.Data[i] = 0
			}
		}
		return nil
	}
	s := in.Shape
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					var g float32
					if in.At(n, c, h, w) > 0 {
						g = dOut.At(n, c, h, w)
					}
					dIn.Set(n, c, h, w, g)
				}
			}
		}
	}
	return nil
}

// ConvTrainingCost returns the kernel sequence of one training step of a
// convolutional layer (forward + backward-data + backward-filter) in the
// given layout, the quantity the paper's complete forward-backward profiling
// measures.
func ConvTrainingCost(d *gpusim.Device, cfg ConvConfig, chwn bool) []gpusim.KernelStats {
	bwdFilter := ConvBackwardFilterCost(d, cfg)
	if chwn {
		// cuda-convnet's weight-gradient kernel works on the CHWN data
		// directly (no unroll step), so only the GEMM-equivalent part of the
		// weight-gradient cost applies.
		return []gpusim.KernelStats{
			ConvDirectCHWNCost(d, cfg),
			ConvBackwardDataCHWNCost(d, cfg),
			bwdFilter[len(bwdFilter)-1],
		}
	}
	seq := ConvGemmNCHWCost(d, cfg)
	seq = append(seq, ConvBackwardDataNCHWCost(d, cfg)...)
	seq = append(seq, bwdFilter...)
	return seq
}
