package kernels

import (
	"runtime"
	"testing"

	"memcnn/internal/tensor"
)

// TestConvFFTIntoValidation checks the planned entry point's input contract:
// mismatched operands, a short scratch slice and an invalid config must all be
// rejected before any plane is touched.
func TestConvFFTIntoValidation(t *testing.T) {
	cfg := ConvConfig{N: 2, C: 2, H: 6, W: 6, K: 2, FH: 3, FW: 3, PadH: 1, PadW: 1}
	in := tensor.Random(cfg.InputShape(), tensor.NCHW, 1)
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 1)
	out := tensor.New(cfg.OutputShape(), tensor.NCHW)
	scratch := make([]float32, ConvFFTWorkspaceElems(cfg))

	if err := ConvFFTInto(in, filters, out, cfg, scratch); err != nil {
		t.Fatalf("well-formed call rejected: %v", err)
	}
	badIn := tensor.Random(tensor.Shape{N: 2, C: 2, H: 5, W: 6}, tensor.NCHW, 1)
	if err := ConvFFTInto(badIn, filters, out, cfg, scratch); err == nil {
		t.Error("mismatched input accepted")
	}
	badFilters := tensor.Filters(cfg.K, cfg.C+1, cfg.FH, cfg.FW, 1)
	if err := ConvFFTInto(in, badFilters, out, cfg, scratch); err == nil {
		t.Error("mismatched filters accepted")
	}
	badOut := tensor.New(tensor.Shape{N: 2, C: 3, H: 6, W: 6}, tensor.NCHW)
	if err := ConvFFTInto(in, filters, badOut, cfg, scratch); err == nil {
		t.Error("mismatched output accepted")
	}
	if err := ConvFFTInto(in, filters, out, cfg, scratch[:len(scratch)-1]); err == nil {
		t.Error("short scratch accepted")
	}
	badCfg := cfg
	badCfg.K = 0
	if err := ConvFFTInto(in, filters, out, badCfg, scratch); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestConvFFTLayoutBitInvariance pins the determinism contract the golden
// suite rests on: the FFT kernel reads its input through strides and
// accumulates channels in ascending order inside the spectral planes, so the
// same logical convolution produces bit-identical results in every
// input/output layout combination.
func TestConvFFTLayoutBitInvariance(t *testing.T) {
	cfg := ConvConfig{N: 3, C: 4, H: 9, W: 7, K: 5, FH: 3, FW: 3, PadH: 1, PadW: 1}
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 8)
	base := tensor.Random(cfg.InputShape(), tensor.NCHW, 4)
	scratch := make([]float32, ConvFFTWorkspaceElems(cfg))

	var ref *tensor.Tensor
	for _, inLay := range tensor.Layouts {
		in := tensor.Convert(base, inLay)
		for _, outLay := range tensor.Layouts {
			out := tensor.New(cfg.OutputShape(), outLay)
			if err := ConvFFTInto(in, filters, out, cfg, scratch); err != nil {
				t.Fatalf("in %v out %v: %v", inLay, outLay, err)
			}
			canon := tensor.Convert(out, tensor.NCHW)
			if ref == nil {
				ref = canon
				continue
			}
			for i := range ref.Data {
				if canon.Data[i] != ref.Data[i] {
					t.Fatalf("in %v out %v: element %d differs: %v vs %v",
						inLay, outLay, i, canon.Data[i], ref.Data[i])
				}
			}
		}
	}
}

// TestConvFFTDeterministicAcrossWorkers checks that the parallel fan-out over
// filter blocks and images reproduces the serial path bit for bit — each
// (image, filter) accumulation is computed whole by one worker, so the
// partition cannot change the arithmetic.
func TestConvFFTDeterministicAcrossWorkers(t *testing.T) {
	cfg := ConvConfig{N: 3, C: 5, H: 13, W: 11, K: 7, FH: 3, FW: 3, PadH: 1, PadW: 1, StrideH: 2, StrideW: 2}
	in := tensor.Random(cfg.InputShape(), tensor.CHWN, 5)
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 6)

	parallel, err := ConvFFT(in, filters, cfg, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	serial, err := ConvFFT(in, filters, cfg, tensor.NCHW)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range parallel.Data {
		if parallel.Data[i] != serial.Data[i] {
			t.Fatalf("element %d differs across worker counts: %v vs %v", i, parallel.Data[i], serial.Data[i])
		}
	}
}

// TestConvFFTWorkspaceElemsScaling checks the scratch sizing formula: the
// filter spectra grow with K*C while the per-worker image blocks saturate at
// the worker cap, so a batch-32 workspace must not be 32 times the batch-1
// one.
func TestConvFFTWorkspaceElemsScaling(t *testing.T) {
	cfg := ConvConfig{N: 1, C: 4, H: 16, W: 16, K: 8, FH: 5, FW: 5, PadH: 2, PadW: 2}
	one := ConvFFTWorkspaceElems(cfg)
	if one <= 0 {
		t.Fatalf("workspace for %v is %d, want positive", cfg, one)
	}
	big := cfg
	big.N = 32
	if got := ConvFFTWorkspaceElems(big); got >= one*8 {
		t.Errorf("batch-32 workspace %d not bounded by the worker cap (batch-1 is %d)", got, one)
	}
	if ConvFFTWorkspaceElems(ConvConfig{}) != 0 {
		t.Error("invalid config should size a zero workspace")
	}
}
