package kernels

import (
	"math"
	"runtime"
	"testing"

	"memcnn/internal/tensor"
)

// poison fills a slice with NaN so any read-before-write in a workspace user
// surfaces as a NaN in its output.
func poison(s []float32) {
	nan := float32(math.NaN())
	for i := range s {
		s[i] = nan
	}
}

// TestPackConvFilters checks the packed operand against the logical
// (k, c, fh, fw) flattening order.
func TestPackConvFilters(t *testing.T) {
	cfg := ConvConfig{N: 1, C: 2, H: 5, W: 5, K: 3, FH: 3, FW: 3}
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 7)
	packed, err := PackConvFilters(filters, cfg)
	if err != nil {
		t.Fatal(err)
	}
	kdim := cfg.ReductionLength()
	if len(packed) != cfg.K*kdim {
		t.Fatalf("packed length %d, want %d", len(packed), cfg.K*kdim)
	}
	for k := 0; k < cfg.K; k++ {
		idx := k * kdim
		for c := 0; c < cfg.C; c++ {
			for fh := 0; fh < cfg.FH; fh++ {
				for fw := 0; fw < cfg.FW; fw++ {
					if packed[idx] != filters.At(k, c, fh, fw) {
						t.Fatalf("packed[%d] = %v, want filters(%d,%d,%d,%d) = %v",
							idx, packed[idx], k, c, fh, fw, filters.At(k, c, fh, fw))
					}
					idx++
				}
			}
		}
	}
	bad := tensor.Filters(cfg.K, cfg.C+1, cfg.FH, cfg.FW, 7)
	if _, err := PackConvFilters(bad, cfg); err == nil {
		t.Error("mismatched filter bank must be rejected")
	}
}

// TestConvGemmWorkspaceElems checks the NCHW direct-write optimisation: only
// non-NCHW outputs need the product staging area.
func TestConvGemmWorkspaceElems(t *testing.T) {
	cfg := ConvConfig{N: 2, C: 3, H: 8, W: 8, K: 4, FH: 3, FW: 3, PadH: 1, PadW: 1}
	ohw := cfg.OutH() * cfg.OutW()
	nchw := ConvGemmWorkspaceElems(cfg, tensor.NCHW)
	chwn := ConvGemmWorkspaceElems(cfg, tensor.CHWN)
	if nchw != cfg.ReductionLength()*ohw {
		t.Errorf("NCHW workspace = %d, want %d", nchw, cfg.ReductionLength()*ohw)
	}
	if chwn != nchw+cfg.K*ohw {
		t.Errorf("CHWN workspace = %d, want %d", chwn, nchw+cfg.K*ohw)
	}
}

// TestConvIm2colGemmIntoMatchesFunctional cross-checks the allocation-free
// path against the functional reference (bit equality — they must share the
// accumulation order) and against the direct convolution (tolerance), for
// every small case in both runtime layouts and with a poisoned workspace.
func TestConvIm2colGemmIntoMatchesFunctional(t *testing.T) {
	for _, cfg := range smallConvCases {
		filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 2)
		packed, err := PackConvFilters(filters, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, inLay := range []tensor.Layout{tensor.NCHW, tensor.CHWN} {
			for _, outLay := range []tensor.Layout{tensor.NCHW, tensor.CHWN} {
				in := tensor.Random(cfg.InputShape(), inLay, 1)
				want, err := ConvIm2colGemm(in, filters, cfg, outLay)
				if err != nil {
					t.Fatalf("%v: functional: %v", cfg, err)
				}
				out := tensor.New(cfg.OutputShape(), outLay)
				poison(out.Data)
				scratch := make([]float32, ConvGemmWorkspaceElems(cfg, outLay))
				poison(scratch)
				if err := ConvIm2colGemmInto(in, packed, out, cfg, scratch); err != nil {
					t.Fatalf("%v: into: %v", cfg, err)
				}
				for i := range want.Data {
					if out.Data[i] != want.Data[i] {
						t.Fatalf("%v %v->%v: element %d = %v, want %v",
							cfg, inLay, outLay, i, out.Data[i], want.Data[i])
					}
				}
				direct, err := ConvDirect(in, filters, cfg, outLay)
				if err != nil {
					t.Fatal(err)
				}
				if !tensor.RelClose(direct, out, 1e-4, 1e-4) {
					t.Errorf("%v %v->%v: GEMM-into disagrees with direct convolution", cfg, inLay, outLay)
				}
			}
		}
	}
}

// TestConvIm2colGemmIntoValidation covers the error paths of the production
// entry point.
func TestConvIm2colGemmIntoValidation(t *testing.T) {
	cfg := ConvConfig{N: 2, C: 2, H: 6, W: 6, K: 2, FH: 3, FW: 3}
	in := tensor.Random(cfg.InputShape(), tensor.NCHW, 1)
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 1)
	packed, err := PackConvFilters(filters, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.New(cfg.OutputShape(), tensor.NCHW)
	scratch := make([]float32, ConvGemmWorkspaceElems(cfg, tensor.NCHW))

	badIn := tensor.Random(tensor.Shape{N: 2, C: 2, H: 5, W: 6}, tensor.NCHW, 1)
	if err := ConvIm2colGemmInto(badIn, packed, out, cfg, scratch); err == nil {
		t.Error("mismatched input accepted")
	}
	badOut := tensor.New(tensor.Shape{N: 2, C: 3, H: 4, W: 4}, tensor.NCHW)
	if err := ConvIm2colGemmInto(in, packed, badOut, cfg, scratch); err == nil {
		t.Error("mismatched output accepted")
	}
	if err := ConvIm2colGemmInto(in, packed[:len(packed)-1], out, cfg, scratch); err == nil {
		t.Error("short packed filters accepted")
	}
	if err := ConvIm2colGemmInto(in, packed, out, cfg, scratch[:len(scratch)-1]); err == nil {
		t.Error("short scratch accepted")
	}
	badCfg := cfg
	badCfg.K = 0
	if err := ConvIm2colGemmInto(in, packed, out, badCfg, scratch); err == nil {
		t.Error("invalid config accepted")
	}
}

// TestConvIm2colGemmDeterministicAcrossWorkers pins the bit-stability
// contract the golden suite relies on: the same convolution computed with one
// worker and with all workers must agree exactly.
func TestConvIm2colGemmDeterministicAcrossWorkers(t *testing.T) {
	cfg := ConvConfig{N: 3, C: 5, H: 13, W: 11, K: 7, FH: 3, FW: 3, PadH: 1, PadW: 1, StrideH: 2, StrideW: 2}
	in := tensor.Random(cfg.InputShape(), tensor.CHWN, 5)
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 6)

	parallel, err := ConvIm2colGemm(in, filters, cfg, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	serial, err := ConvIm2colGemm(in, filters, cfg, tensor.NCHW)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range parallel.Data {
		if parallel.Data[i] != serial.Data[i] {
			t.Fatalf("element %d differs across worker counts: %v vs %v", i, parallel.Data[i], serial.Data[i])
		}
	}
}
