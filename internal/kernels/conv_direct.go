package kernels

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

// Direct convolution: the cuda-convnet implementation strategy for the CHWN
// layout (Section II.B / IV.A).  Each thread block processes a tile of output
// pixels for a group of filters and a group of 32·imagesPerThread images; the
// batch dimension N is innermost in memory, so the 32 threads of a warp read
// 32 consecutive images and every global access is coalesced.  Each thread
// additionally keeps imagesPerThread images in registers, which is what makes
// the kernel's throughput so sensitive to N (Fig. 4a).

// ConvDirect is the functional reference convolution (cross-correlation, as
// in Equation 1 of the paper).  It accepts input tensors in any layout and
// produces the output in outLayout; the arithmetic is identical regardless of
// layout, which is exactly the property the layout study relies on.
func ConvDirect(in, filters *tensor.Tensor, cfg ConvConfig, outLayout tensor.Layout) (*tensor.Tensor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := tensor.New(cfg.OutputShape(), outLayout)
	if err := ConvDirectInto(in, filters, out, cfg); err != nil {
		return nil, err
	}
	return out, nil
}

// ConvDirectInto is the allocation-free variant of ConvDirect: it writes into
// a caller-provided output tensor of the config's output shape (any layout).
// Every output element is overwritten, so the destination's prior contents do
// not matter.
//
//memcnn:noalloc
func ConvDirectInto(in, filters, out *tensor.Tensor, cfg ConvConfig) error {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if in.Shape != cfg.InputShape() {
		return fmt.Errorf("kernels: conv input shape %v does not match config %v", in.Shape, cfg.InputShape())
	}
	if filters.Shape != cfg.FilterShape() {
		return fmt.Errorf("kernels: filter shape %v does not match config %v", filters.Shape, cfg.FilterShape())
	}
	if out.Shape != cfg.OutputShape() {
		return fmt.Errorf("kernels: conv output shape %v does not match config %v", out.Shape, cfg.OutputShape())
	}
	outH, outW := cfg.OutH(), cfg.OutW()

	// Work is distributed by an atomic (n,k) plane counter rather than a job
	// channel so the hot path performs no allocation; a single-worker run
	// stays inline and allocation free.
	var next atomic.Int64
	planes := int64(cfg.N * cfg.K)
	plane := func() { //memcnn:alloc-ok
		for {
			p := next.Add(1) - 1
			if p >= planes {
				return
			}
			n, k := int(p)/cfg.K, int(p)%cfg.K
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					var acc float64
					for c := 0; c < cfg.C; c++ {
						for fh := 0; fh < cfg.FH; fh++ {
							ih := oh*cfg.StrideH - cfg.PadH + fh
							if ih < 0 || ih >= cfg.H {
								continue
							}
							for fw := 0; fw < cfg.FW; fw++ {
								iw := ow*cfg.StrideW - cfg.PadW + fw
								if iw < 0 || iw >= cfg.W {
									continue
								}
								acc += float64(in.At(n, c, ih, iw)) * float64(filters.At(k, c, fh, fw))
							}
						}
					}
					out.Set(n, k, oh, ow, float32(acc))
				}
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 {
		plane()
		return nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() { //memcnn:alloc-ok
			defer wg.Done()
			plane()
		}()
	}
	wg.Wait()
	return nil
}

// Blocking parameters of the modelled cuda-convnet direct-convolution kernel.
const (
	directWarpImages      = 32 // images handled by one warp (coalescing unit)
	directFiltersPerBlock = 32 // filters processed by one thread block
	directPixelsPerBlock  = 16 // output pixels processed by one thread block
	directFiltersPerThrd  = 4
)

// DirectImagesPerThread returns the register-blocking factor the cuda-convnet
// kernel selects for a batch size: four images per thread when N is a
// multiple of 128, two when it is a multiple of 64, otherwise one
// (Section IV.A).  The factor controls how often filter values loaded into
// registers are reused, hence the strong sensitivity of the CHWN layout to N.
func DirectImagesPerThread(n int) int {
	switch {
	case n >= 128:
		return 4
	case n >= 64:
		return 2
	default:
		return 1
	}
}

// directILPFactor maps the register-blocking factor to the fraction of issue
// slots the kernel can keep busy: more in-flight independent FMAs per thread
// hide more of the shared-memory and pipeline latency.
func directILPFactor(imagesPerThread int) float64 {
	switch {
	case imagesPerThread >= 4:
		return 0.82
	case imagesPerThread >= 2:
		return 0.55
	default:
		return 0.42
	}
}

// DirectConvEfficiency returns the modelled fraction of peak arithmetic
// throughput of the CHWN direct convolution for a layer configuration.
func DirectConvEfficiency(cfg ConvConfig) float64 {
	cfg = cfg.withDefaults()
	p := DirectImagesPerThread(cfg.N)
	ff := directFiltersPerThrd
	if cfg.K < ff {
		ff = cfg.K
	}
	// Instruction mix: p*ff FMAs per inner-loop step versus the loads and
	// address arithmetic that accompany them.
	issue := float64(p*ff) / float64(p*ff+p+ff+4)
	ilp := directILPFactor(p)
	// Partial warps along N waste coalescing and execution lanes.
	coalesce := float64(cfg.N) / float64(directWarpImages)
	if coalesce > 1 {
		coalesce = 1
	}
	// A very short reduction loop (small C*FH*FW) leaves the loop overhead
	// unamortised.
	shortLoop := float64(cfg.ReductionLength()) / 48
	if shortLoop > 1 {
		shortLoop = 1
	}
	// Batches beyond 128 improve occupancy slightly (Fig. 4a keeps rising).
	occBonus := 1.0
	if cfg.N > 128 {
		occBonus = 1 + float64(cfg.N-128)/3200
		if occBonus > 1.15 {
			occBonus = 1.15
		}
	}
	eff := 0.75 * issue * ilp * coalesce * shortLoop * occBonus
	if eff > 1 {
		eff = 1
	}
	if eff <= 0 {
		eff = 0.01
	}
	return eff
}

// ConvDirectCHWNCost returns the kernel statistics of the cuda-convnet style
// direct convolution on the CHWN layout.
func ConvDirectCHWNCost(d *gpusim.Device, cfg ConvConfig) gpusim.KernelStats {
	cfg = cfg.withDefaults()
	p := DirectImagesPerThread(cfg.N)

	inBytes := float64(cfg.InputShape().Elems()) * 4
	outBytes := float64(cfg.OutputShape().Elems()) * 4
	filterBytes := float64(cfg.FilterShape().Elems()) * 4

	filterBlocks := ceilDiv(cfg.K, directFiltersPerBlock)
	imageBlocks := ceilDiv(cfg.N, directWarpImages*p)
	pixelBlocks := ceilDiv(cfg.OutH()*cfg.OutW(), directPixelsPerBlock)

	// Thread-level parallelism: one thread per (image group, filter group,
	// output pixel) triple, so the grid grows with every one of N, K and the
	// output area.  This is what keeps the kernel's occupancy high even when
	// a single dimension is small.
	ff := directFiltersPerThrd
	if cfg.K < ff {
		ff = cfg.K
	}
	totalThreads := ceilDiv(cfg.N, p) * ceilDiv(cfg.K, ff) * cfg.OutH() * cfg.OutW()

	// Every filter block re-reads the input; the shared-memory tiles remove
	// the intra-block redundancy of overlapping filter windows.
	inputTraffic := inBytes * float64(filterBlocks)
	// Filters are re-read by every (image block, pixel block) pair, but the
	// filter bank is small and partially survives in L2.
	filterTraffic := filterBytes * float64(imageBlocks) * float64(pixelBlocks)
	if filterBytes < float64(d.L2CacheBytes)/2 {
		filterTraffic = filterBytes * float64(imageBlocks) * (1 + float64(pixelBlocks-1)*0.25)
	}

	blocks := ceilDiv(totalThreads, directWarpImages*directFiltersPerThrd)
	regs := 32 + 16*p // register blocking holds p images per filter in flight
	if regs > 255 {
		regs = 255
	}
	return gpusim.KernelStats{
		Name:       fmt.Sprintf("direct-conv CHWN %s", cfg.String()),
		GridBlocks: blocks,
		Block: gpusim.BlockResources{
			ThreadsPerBlock:   directWarpImages * directFiltersPerThrd,
			RegsPerThread:     regs,
			SharedMemPerBlock: 8 << 10,
		},
		Launches:          1,
		FLOPs:             cfg.FLOPs(),
		ComputeEfficiency: DirectConvEfficiency(cfg),
		DRAMReadBytes:     inputTraffic + filterTraffic,
		DRAMWriteBytes:    outBytes,
		UsefulReadBytes:   inBytes + filterBytes,
		UsefulWriteBytes:  outBytes,
	}
}
