package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"memcnn/internal/gpusim"
)

func randomLogits(n, classes int, seed int64) []float32 {
	r := rand.New(rand.NewSource(seed))
	out := make([]float32, n*classes)
	for i := range out {
		out[i] = float32(r.NormFloat64() * 3)
	}
	return out
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	cfg := SoftmaxConfig{N: 16, Classes: 100}
	out, err := Softmax(randomLogits(cfg.N, cfg.Classes, 1), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < cfg.N; n++ {
		var sum float64
		for c := 0; c < cfg.Classes; c++ {
			v := out[n*cfg.Classes+c]
			if v < 0 || v > 1 {
				t.Fatalf("probability out of range: %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Errorf("row %d sums to %v", n, sum)
		}
	}
}

func TestSoftmaxMatchesFiveStep(t *testing.T) {
	cfg := SoftmaxConfig{N: 8, Classes: 37}
	in := randomLogits(cfg.N, cfg.Classes, 2)
	fused, err := Softmax(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	five, intermediates, err := SoftmaxFiveStep(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if intermediates != 2*cfg.N*cfg.Classes+2*cfg.N {
		t.Errorf("intermediate element count = %d", intermediates)
	}
	for i := range fused {
		if math.Abs(float64(fused[i]-five[i])) > 1e-5 {
			t.Fatalf("fused and five-step softmax disagree at %d: %v vs %v", i, fused[i], five[i])
		}
	}
}

func TestSoftmaxArgmaxPreserved(t *testing.T) {
	cfg := SoftmaxConfig{N: 4, Classes: 10}
	in := randomLogits(cfg.N, cfg.Classes, 3)
	out, err := Softmax(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < cfg.N; n++ {
		amaxIn, amaxOut := 0, 0
		for c := 1; c < cfg.Classes; c++ {
			if in[n*cfg.Classes+c] > in[n*cfg.Classes+amaxIn] {
				amaxIn = c
			}
			if out[n*cfg.Classes+c] > out[n*cfg.Classes+amaxOut] {
				amaxOut = c
			}
		}
		if amaxIn != amaxOut {
			t.Errorf("row %d: softmax must preserve the argmax", n)
		}
	}
}

// Property: softmax is invariant to a constant shift of the logits (that is
// why the max-subtraction step exists).
func TestSoftmaxShiftInvarianceQuick(t *testing.T) {
	f := func(raw []float32, shift float32) bool {
		if len(raw) < 2 {
			return true
		}
		classes := len(raw)
		if classes > 64 {
			classes = 64
		}
		in := make([]float32, classes)
		shifted := make([]float32, classes)
		if shift != shift || shift > 50 || shift < -50 { // NaN / huge shifts excluded
			shift = 1
		}
		for i := 0; i < classes; i++ {
			v := raw[i]
			if v != v || v > 30 || v < -30 {
				v = 0
			}
			in[i] = v
			shifted[i] = v + shift
		}
		cfg := SoftmaxConfig{N: 1, Classes: classes}
		a, err1 := Softmax(in, cfg)
		b, err2 := Softmax(shifted, cfg)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := range a {
			if math.Abs(float64(a[i]-b[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxValidation(t *testing.T) {
	if _, err := Softmax(make([]float32, 10), SoftmaxConfig{N: 3, Classes: 4}); err == nil {
		t.Error("length mismatch must be rejected")
	}
	if _, err := Softmax(nil, SoftmaxConfig{}); err == nil {
		t.Error("invalid config must be rejected")
	}
	if _, _, err := SoftmaxFiveStep(make([]float32, 5), SoftmaxConfig{N: 2, Classes: 4}); err == nil {
		t.Error("length mismatch must be rejected by the five-step variant")
	}
	if _, _, err := SoftmaxFiveStep(nil, SoftmaxConfig{N: 0, Classes: 4}); err == nil {
		t.Error("invalid config must be rejected by the five-step variant")
	}
}

// Softmax configurations from Fig. 13 (batch/categories).
var paperSoftmaxConfigs = []SoftmaxConfig{
	{N: 32, Classes: 10}, {N: 64, Classes: 10}, {N: 128, Classes: 10},
	{N: 32, Classes: 100}, {N: 64, Classes: 100}, {N: 128, Classes: 100},
	{N: 32, Classes: 1000}, {N: 64, Classes: 1000}, {N: 128, Classes: 1000},
	{N: 128, Classes: 5000}, {N: 128, Classes: 10000}, {N: 256, Classes: 10000},
}

func TestSoftmaxOptimizationsAlwaysHelp(t *testing.T) {
	d := gpusim.TitanBlack()
	for _, cfg := range paperSoftmaxConfigs {
		baseline, _ := SoftmaxBaselineBest(d, cfg)
		base := gpusim.EstimateTime(d, baseline).TotalUS
		fusedPar := gpusim.EstimateTime(d, SoftmaxCost(d, cfg, SoftmaxFusedParallel)).TotalUS
		if fusedPar >= base {
			t.Errorf("%v: fused+parallel (%.1fus) must beat the best baseline (%.1fus)", cfg, fusedPar, base)
		}
	}
}

func TestSoftmaxFusionAndParallelismAblation(t *testing.T) {
	// Section VI.B: fusion alone contributes a multi-x speedup over the
	// thread-per-image baseline; inner-loop parallelisation adds more on top.
	d := gpusim.TitanBlack()
	cfg := SoftmaxConfig{N: 128, Classes: 1000}
	base := gpusim.EstimateTime(d, SoftmaxCost(d, cfg, SoftmaxThreadPerImage)).TotalUS
	fused := gpusim.EstimateTime(d, SoftmaxCost(d, cfg, SoftmaxFused)).TotalUS
	full := gpusim.EstimateTime(d, SoftmaxCost(d, cfg, SoftmaxFusedParallel)).TotalUS
	if !(full < fused && fused < base) {
		t.Errorf("expected base > fused > fused+parallel, got %.1f > %.1f > %.1f", base, fused, full)
	}
	if base/fused < 1.5 {
		t.Errorf("fusion speedup %.2fx too small", base/fused)
	}
	if fused/full < 1.5 {
		t.Errorf("parallelisation speedup %.2fx too small", fused/full)
	}
}

func TestSoftmaxLargeCategoryBandwidthApproachesPeak(t *testing.T) {
	// Fig. 13: with 10000 categories the optimised kernel reaches ~94% of the
	// effective bandwidth, while the best baseline stays far below.
	d := gpusim.TitanBlack()
	cfg := SoftmaxConfig{N: 128, Classes: 10000}
	opt := gpusim.EstimateTime(d, SoftmaxCost(d, cfg, SoftmaxFusedParallel))
	if opt.AchievedBandwidthGBs < 0.75*d.MemBandwidthGBs {
		t.Errorf("optimised softmax bandwidth %.1f GB/s, want >= 75%% of %v", opt.AchievedBandwidthGBs, d.MemBandwidthGBs)
	}
	baseline, _ := SoftmaxBaselineBest(d, cfg)
	bl := gpusim.EstimateTime(d, baseline)
	if bl.AchievedBandwidthGBs > 0.5*d.MemBandwidthGBs {
		t.Errorf("baseline softmax bandwidth %.1f GB/s should stay well below peak", bl.AchievedBandwidthGBs)
	}
}

func TestSoftmaxBaselineBestPicksFaster(t *testing.T) {
	d := gpusim.TitanBlack()
	for _, cfg := range paperSoftmaxConfigs {
		best, impl := SoftmaxBaselineBest(d, cfg)
		bestT := gpusim.EstimateTime(d, best).TotalUS
		thread := gpusim.EstimateTime(d, SoftmaxCost(d, cfg, SoftmaxThreadPerImage)).TotalUS
		block := gpusim.EstimateTime(d, SoftmaxCost(d, cfg, SoftmaxBlockPerImage)).TotalUS
		if bestT > thread || bestT > block {
			t.Errorf("%v: BaselineBest (%v, %.1fus) is not the fastest of %.1f / %.1f", cfg, impl, bestT, thread, block)
		}
	}
}

func TestSoftmaxCostStatsValid(t *testing.T) {
	d := gpusim.TitanBlack()
	impls := []SoftmaxImpl{SoftmaxThreadPerImage, SoftmaxBlockPerImage, SoftmaxFused, SoftmaxFusedParallel}
	for _, cfg := range paperSoftmaxConfigs {
		for _, impl := range impls {
			s := SoftmaxCost(d, cfg, impl)
			if err := s.Validate(); err != nil {
				t.Errorf("%v %v: %v", cfg, impl, err)
			}
		}
	}
}

func TestSoftmaxImplString(t *testing.T) {
	for _, impl := range []SoftmaxImpl{SoftmaxThreadPerImage, SoftmaxBlockPerImage, SoftmaxFused, SoftmaxFusedParallel, SoftmaxImpl(99)} {
		if impl.String() == "" {
			t.Error("String must not be empty")
		}
	}
}

func BenchmarkSoftmaxFunctional(b *testing.B) {
	cfg := SoftmaxConfig{N: 128, Classes: 1000}
	in := randomLogits(cfg.N, cfg.Classes, 1)
	b.SetBytes(int64(cfg.Bytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Softmax(in, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
