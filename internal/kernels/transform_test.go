package kernels

import (
	"testing"

	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

var transformShapes = []tensor.Shape{
	{N: 128, C: 16, H: 28, W: 28}, // CONV1 input
	{N: 64, C: 96, H: 55, W: 55},  // CONV6 input
	{N: 128, C: 64, H: 24, W: 24}, // CONV4 input
	{N: 32, C: 256, H: 28, W: 28}, // CONV11 input
}

func TestTransformMethodOrdering(t *testing.T) {
	// Fig. 11: tiled transposition beats the naive kernel, vectorisation
	// beats tiling (when applicable).
	d := gpusim.TitanBlack()
	for _, shape := range transformShapes {
		naive, err := TransformCost(d, shape, tensor.CHWN, tensor.NCHW, TransformNaive)
		if err != nil {
			t.Fatal(err)
		}
		tiled, err := TransformCost(d, shape, tensor.CHWN, tensor.NCHW, TransformTiled)
		if err != nil {
			t.Fatal(err)
		}
		naiveT := gpusim.EstimateTime(d, naive).TotalUS
		tiledT := gpusim.EstimateTime(d, tiled).TotalUS
		if tiledT >= naiveT {
			t.Errorf("%v: tiled (%.1fus) must beat naive (%.1fus)", shape, tiledT, naiveT)
		}
		if naiveT/tiledT < 2 {
			t.Errorf("%v: tiled speedup over naive is only %.2fx", shape, naiveT/tiledT)
		}
		if !TransformApplicable(TransformVectorized, shape) {
			continue
		}
		vec, err := TransformCost(d, shape, tensor.CHWN, tensor.NCHW, TransformVectorized)
		if err != nil {
			t.Fatal(err)
		}
		vecT := gpusim.EstimateTime(d, vec).TotalUS
		if vecT >= tiledT {
			t.Errorf("%v: vectorised (%.1fus) must beat tiled (%.1fus)", shape, vecT, tiledT)
		}
	}
}

func TestTransformVectorizedRequiresLargeBatch(t *testing.T) {
	d := gpusim.TitanBlack()
	small := tensor.Shape{N: 32, C: 256, H: 28, W: 28}
	if TransformApplicable(TransformVectorized, small) {
		t.Error("vectorised transform must not apply to N=32")
	}
	if _, err := TransformCost(d, small, tensor.CHWN, tensor.NCHW, TransformVectorized); err == nil {
		t.Error("expected error for N=32 vectorised transform")
	}
	big := tensor.Shape{N: 64, C: 256, H: 28, W: 28}
	if !TransformApplicable(TransformVectorized, big) {
		t.Error("vectorised transform must apply to N=64")
	}
}

func TestTransformSameLayoutIsFree(t *testing.T) {
	d := gpusim.TitanBlack()
	s, err := TransformCost(d, transformShapes[0], tensor.NCHW, tensor.NCHW, TransformTiled)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalDRAMBytes() != 0 || s.Launches != 0 {
		t.Error("same-layout transform must cost nothing")
	}
}

func TestTransformOptimizedReachesNearPeakBandwidth(t *testing.T) {
	// The paper measures 229.5 GB/s (97.6% of effective bandwidth) for the
	// vectorised transform on the CONV6 input.
	d := gpusim.TitanBlack()
	shape := tensor.Shape{N: 64, C: 96, H: 55, W: 55}
	vec, err := TransformCost(d, shape, tensor.CHWN, tensor.NCHW, TransformVectorized)
	if err != nil {
		t.Fatal(err)
	}
	kt := gpusim.EstimateTime(d, vec)
	if kt.AchievedBandwidthGBs < 0.85*d.MemBandwidthGBs {
		t.Errorf("vectorised transform bandwidth = %.1f GB/s, want near peak", kt.AchievedBandwidthGBs)
	}
	naive, err := TransformCost(d, shape, tensor.CHWN, tensor.NCHW, TransformNaive)
	if err != nil {
		t.Fatal(err)
	}
	if nb := gpusim.EstimateTime(d, naive).AchievedBandwidthGBs; nb > 0.5*d.MemBandwidthGBs {
		t.Errorf("naive transform bandwidth = %.1f GB/s, should be far from peak", nb)
	}
}

func TestTransformCostValidation(t *testing.T) {
	d := gpusim.TitanBlack()
	if _, err := TransformCost(d, tensor.Shape{}, tensor.CHWN, tensor.NCHW, TransformTiled); err == nil {
		t.Error("invalid shape must be rejected")
	}
	if _, err := TransformCost(d, transformShapes[0], tensor.Layout(9), tensor.NCHW, TransformTiled); err == nil {
		t.Error("invalid source layout must be rejected")
	}
	if _, err := TransformCost(d, transformShapes[0], tensor.CHWN, tensor.Layout(9), TransformTiled); err == nil {
		t.Error("invalid destination layout must be rejected")
	}
}

func TestTransformStatsValid(t *testing.T) {
	d := gpusim.TitanBlack()
	for _, shape := range transformShapes {
		for _, m := range []TransformMethod{TransformNaive, TransformTiled, TransformVectorized} {
			if !TransformApplicable(m, shape) {
				continue
			}
			s, err := TransformCost(d, shape, tensor.CHWN, tensor.NCHW, m)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				t.Errorf("%v %v: %v", shape, m, err)
			}
		}
	}
}

func TestBestTransformPrefersVectorizedWhenApplicable(t *testing.T) {
	d := gpusim.TitanBlack()
	_, method, err := BestTransform(d, tensor.Shape{N: 128, C: 16, H: 28, W: 28}, tensor.CHWN, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	if method != TransformVectorized {
		t.Errorf("expected vectorised transform for N=128, got %v", method)
	}
	_, method, err = BestTransform(d, tensor.Shape{N: 32, C: 256, H: 28, W: 28}, tensor.CHWN, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	if method != TransformTiled {
		t.Errorf("expected tiled transform for N=32, got %v", method)
	}
}

func TestTransformWorkspaceBytes(t *testing.T) {
	s := tensor.Shape{N: 2, C: 3, H: 4, W: 5}
	if TransformWorkspaceBytes(s) != s.Bytes() {
		t.Error("workspace should be one destination copy")
	}
}

func TestTransformMethodString(t *testing.T) {
	for _, m := range []TransformMethod{TransformNaive, TransformTiled, TransformVectorized, TransformMethod(9)} {
		if m.String() == "" {
			t.Error("String must not be empty")
		}
	}
}
