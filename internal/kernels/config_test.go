package kernels

import (
	"strings"
	"testing"

	"memcnn/internal/tensor"
)

func TestConvConfigOutputSizes(t *testing.T) {
	cases := []struct {
		cfg        ConvConfig
		outH, outW int
	}{
		{ConvConfig{N: 128, C: 1, H: 28, W: 28, K: 16, FH: 5, FW: 5}, 24, 24},                            // CONV1
		{ConvConfig{N: 64, C: 3, H: 224, W: 224, K: 96, FH: 3, FW: 3, StrideH: 2, StrideW: 2}, 111, 111}, // CONV5
		{ConvConfig{N: 1, C: 1, H: 7, W: 9, K: 1, FH: 3, FW: 3, PadH: 1, PadW: 1}, 7, 9},
		{ConvConfig{N: 1, C: 1, H: 5, W: 5, K: 1, FH: 5, FW: 5}, 1, 1},
	}
	for _, c := range cases {
		if got := c.cfg.OutH(); got != c.outH {
			t.Errorf("%v: OutH = %d, want %d", c.cfg, got, c.outH)
		}
		if got := c.cfg.OutW(); got != c.outW {
			t.Errorf("%v: OutW = %d, want %d", c.cfg, got, c.outW)
		}
	}
}

func TestConvConfigValidate(t *testing.T) {
	good := ConvConfig{N: 2, C: 3, H: 8, W: 8, K: 4, FH: 3, FW: 3}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []ConvConfig{
		{N: 0, C: 3, H: 8, W: 8, K: 4, FH: 3, FW: 3},
		{N: 2, C: 3, H: 8, W: 8, K: 0, FH: 3, FW: 3},
		{N: 2, C: 3, H: 2, W: 2, K: 4, FH: 3, FW: 3},              // filter larger than input
		{N: 2, C: 3, H: 8, W: 8, K: 4, FH: 3, FW: 3, StrideH: -1}, // negative stride
		{N: 2, C: 3, H: 8, W: 8, K: 4, FH: 3, FW: 3, PadH: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("invalid config accepted: %+v", cfg)
		}
	}
}

func TestConvConfigShapesAndFLOPs(t *testing.T) {
	cfg := ConvConfig{N: 4, C: 3, H: 8, W: 8, K: 6, FH: 3, FW: 3}
	if got := cfg.InputShape(); got != (tensor.Shape{N: 4, C: 3, H: 8, W: 8}) {
		t.Errorf("InputShape = %v", got)
	}
	if got := cfg.OutputShape(); got != (tensor.Shape{N: 4, C: 6, H: 6, W: 6}) {
		t.Errorf("OutputShape = %v", got)
	}
	if got := cfg.FilterShape(); got != (tensor.Shape{N: 6, C: 3, H: 3, W: 3}) {
		t.Errorf("FilterShape = %v", got)
	}
	want := 2.0 * 4 * 6 * 6 * 6 * 3 * 3 * 3
	if got := cfg.FLOPs(); got != want {
		t.Errorf("FLOPs = %v, want %v", got, want)
	}
	if cfg.ReductionLength() != 27 {
		t.Errorf("ReductionLength = %d, want 27", cfg.ReductionLength())
	}
	if !strings.Contains(cfg.String(), "conv") {
		t.Error("String should describe the layer")
	}
}

func TestPoolConfig(t *testing.T) {
	overlapped := PoolConfig{N: 128, C: 64, H: 24, W: 24, Window: 3, Stride: 2, Op: MaxPool}
	if !overlapped.Overlapped() {
		t.Error("window 3 stride 2 is overlapped")
	}
	if overlapped.OutH() != 11 || overlapped.OutW() != 11 {
		t.Errorf("OutH/W = %d/%d, want 11/11", overlapped.OutH(), overlapped.OutW())
	}
	plain := PoolConfig{N: 128, C: 16, H: 28, W: 28, Window: 2, Stride: 2, Op: MaxPool}
	if plain.Overlapped() {
		t.Error("window 2 stride 2 is not overlapped")
	}
	if plain.OutH() != 14 {
		t.Errorf("OutH = %d, want 14", plain.OutH())
	}
	if err := plain.Validate(); err != nil {
		t.Errorf("valid pool config rejected: %v", err)
	}
	bad := []PoolConfig{
		{N: 0, C: 1, H: 4, W: 4, Window: 2, Stride: 2},
		{N: 1, C: 1, H: 4, W: 4, Window: 0, Stride: 2},
		{N: 1, C: 1, H: 4, W: 4, Window: 5, Stride: 2},
		{N: 1, C: 1, H: 4, W: 4, Window: 2, Stride: 0},
		{N: 1, C: 1, H: 4, W: 4, Window: 2, Stride: 2, Op: PoolOp(9)},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("invalid pool config accepted: %+v", cfg)
		}
	}
	if plain.FLOPs() != float64(128*16*14*14*4) {
		t.Errorf("FLOPs = %v", plain.FLOPs())
	}
	if !strings.Contains(overlapped.String(), "overlapped") {
		t.Error("String should flag overlapped pooling")
	}
	if MaxPool.String() != "max" || AvgPool.String() != "avg" || PoolOp(7).String() == "" {
		t.Error("PoolOp.String incorrect")
	}
}

func TestSoftmaxConfig(t *testing.T) {
	cfg := SoftmaxConfig{N: 128, Classes: 1000}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid softmax config rejected: %v", err)
	}
	if cfg.Elems() != 128000 {
		t.Errorf("Elems = %d", cfg.Elems())
	}
	if cfg.Bytes() != 512000 {
		t.Errorf("Bytes = %v", cfg.Bytes())
	}
	if (SoftmaxConfig{N: 0, Classes: 10}).Validate() == nil {
		t.Error("zero batch must be rejected")
	}
	if (SoftmaxConfig{N: 10, Classes: 0}).Validate() == nil {
		t.Error("zero classes must be rejected")
	}
	if cfg.String() != "softmax 128/1000" {
		t.Errorf("String = %q", cfg.String())
	}
}

func TestConvConfigDefaultStride(t *testing.T) {
	cfg := ConvConfig{N: 1, C: 1, H: 8, W: 8, K: 1, FH: 3, FW: 3}
	// Stride defaults to 1 everywhere.
	if cfg.OutH() != 6 || cfg.OutW() != 6 {
		t.Errorf("default stride output = %dx%d, want 6x6", cfg.OutH(), cfg.OutW())
	}
}
