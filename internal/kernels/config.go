// Package kernels contains the GPU kernel models studied in the paper: for
// every kernel (direct convolution, im2col+GEMM convolution, FFT convolution,
// pooling in both layouts, the softmax variants, and the 4-D layout
// transformations) it provides
//
//   - a functionally correct, goroutine-parallel CPU implementation used as
//     the numerical reference and by the examples, and
//   - an analytic cost model producing gpusim.KernelStats, which the
//     benchmark harness turns into the paper's figures.
//
// The cost models are built from the mechanisms the paper identifies
// (coalescing, register-level reuse, matrix-expansion overhead, kernel-launch
// round trips, occupancy-limited latency hiding); see DESIGN.md §5.
package kernels

import (
	"fmt"

	"memcnn/internal/tensor"
)

// ConvConfig describes one convolutional layer in the notation of the paper's
// Table 1: a batch of N images with C input feature maps of size H×W is
// convolved with K filters of size FH×FW at the given stride, producing K
// output feature maps of size OutH×OutW per image.
type ConvConfig struct {
	N  int // batch size (Ni)
	C  int // input channels (Ci)
	H  int // input height
	W  int // input width
	K  int // output channels (Co)
	FH int // filter height
	FW int // filter width

	StrideH int // vertical stride (defaults to 1)
	StrideW int // horizontal stride (defaults to 1)
	PadH    int // vertical zero padding
	PadW    int // horizontal zero padding
}

// withDefaults returns a copy with zero strides replaced by 1.
func (c ConvConfig) withDefaults() ConvConfig {
	if c.StrideH == 0 {
		c.StrideH = 1
	}
	if c.StrideW == 0 {
		c.StrideW = 1
	}
	return c
}

// Validate reports whether the configuration describes a computable layer.
func (c ConvConfig) Validate() error {
	c = c.withDefaults()
	switch {
	case c.N <= 0 || c.C <= 0 || c.H <= 0 || c.W <= 0:
		return fmt.Errorf("kernels: conv input dims must be positive: %+v", c)
	case c.K <= 0 || c.FH <= 0 || c.FW <= 0:
		return fmt.Errorf("kernels: conv filter dims must be positive: %+v", c)
	case c.StrideH <= 0 || c.StrideW <= 0:
		return fmt.Errorf("kernels: conv strides must be positive: %+v", c)
	case c.PadH < 0 || c.PadW < 0:
		return fmt.Errorf("kernels: conv padding must be non-negative: %+v", c)
	case c.H+2*c.PadH < c.FH || c.W+2*c.PadW < c.FW:
		return fmt.Errorf("kernels: filter larger than padded input: %+v", c)
	}
	return nil
}

// OutH returns the output feature-map height.
func (c ConvConfig) OutH() int {
	c = c.withDefaults()
	return (c.H+2*c.PadH-c.FH)/c.StrideH + 1
}

// OutW returns the output feature-map width.
func (c ConvConfig) OutW() int {
	c = c.withDefaults()
	return (c.W+2*c.PadW-c.FW)/c.StrideW + 1
}

// InputShape returns the logical shape of the layer input.
func (c ConvConfig) InputShape() tensor.Shape {
	return tensor.Shape{N: c.N, C: c.C, H: c.H, W: c.W}
}

// OutputShape returns the logical shape of the layer output.
func (c ConvConfig) OutputShape() tensor.Shape {
	return tensor.Shape{N: c.N, C: c.K, H: c.OutH(), W: c.OutW()}
}

// FilterShape returns the shape of the filter bank (stored as N=K, C=C).
func (c ConvConfig) FilterShape() tensor.Shape {
	return tensor.Shape{N: c.K, C: c.C, H: c.FH, W: c.FW}
}

// FLOPs returns the arithmetic work of the layer counting one multiply and
// one add per filter tap.
func (c ConvConfig) FLOPs() float64 {
	return 2 * float64(c.N) * float64(c.K) * float64(c.OutH()) * float64(c.OutW()) *
		float64(c.C) * float64(c.FH) * float64(c.FW)
}

// ReductionLength returns C*FH*FW, the K dimension of the equivalent GEMM and
// the length of the inner accumulation loop of the direct convolution.
func (c ConvConfig) ReductionLength() int { return c.C * c.FH * c.FW }

// String summarises the layer the way the paper's Table 1 does.
func (c ConvConfig) String() string {
	c = c.withDefaults()
	return fmt.Sprintf("conv N=%d C=%d H/W=%dx%d K=%d F=%dx%d S=%d", c.N, c.C, c.H, c.W, c.K, c.FH, c.FW, c.StrideH)
}

// PoolOp selects the pooling operator.
type PoolOp int

// Pooling operators.
const (
	MaxPool PoolOp = iota
	AvgPool
)

// String names the operator.
func (op PoolOp) String() string {
	switch op {
	case MaxPool:
		return "max"
	case AvgPool:
		return "avg"
	default:
		return fmt.Sprintf("PoolOp(%d)", int(op))
	}
}

// PoolConfig describes one pooling layer: a Window×Window region is reduced
// to one value, windows advance by Stride.  Stride < Window is the overlapped
// pooling case whose redundant loads Section V.A optimises.
type PoolConfig struct {
	N      int
	C      int
	H      int
	W      int
	Window int
	Stride int
	Op     PoolOp
}

// Validate reports whether the configuration is computable.
func (c PoolConfig) Validate() error {
	switch {
	case c.N <= 0 || c.C <= 0 || c.H <= 0 || c.W <= 0:
		return fmt.Errorf("kernels: pool input dims must be positive: %+v", c)
	case c.Window <= 0 || c.Stride <= 0:
		return fmt.Errorf("kernels: pool window and stride must be positive: %+v", c)
	case c.Window > c.H || c.Window > c.W:
		return fmt.Errorf("kernels: pool window larger than input: %+v", c)
	case c.Op != MaxPool && c.Op != AvgPool:
		return fmt.Errorf("kernels: unknown pool op %v", c.Op)
	}
	return nil
}

// Overlapped reports whether successive pooling windows share input elements.
func (c PoolConfig) Overlapped() bool { return c.Stride < c.Window }

// OutH returns the output height.
func (c PoolConfig) OutH() int { return (c.H-c.Window)/c.Stride + 1 }

// OutW returns the output width.
func (c PoolConfig) OutW() int { return (c.W-c.Window)/c.Stride + 1 }

// InputShape returns the logical input shape.
func (c PoolConfig) InputShape() tensor.Shape {
	return tensor.Shape{N: c.N, C: c.C, H: c.H, W: c.W}
}

// OutputShape returns the logical output shape.
func (c PoolConfig) OutputShape() tensor.Shape {
	return tensor.Shape{N: c.N, C: c.C, H: c.OutH(), W: c.OutW()}
}

// FLOPs returns the arithmetic work (one compare or add per window element).
func (c PoolConfig) FLOPs() float64 {
	return float64(c.N) * float64(c.C) * float64(c.OutH()) * float64(c.OutW()) *
		float64(c.Window) * float64(c.Window)
}

// String summarises the layer.
func (c PoolConfig) String() string {
	kind := "non-overlapped"
	if c.Overlapped() {
		kind = "overlapped"
	}
	return fmt.Sprintf("pool(%v) N=%d C=%d H/W=%dx%d win=%d stride=%d (%s)",
		c.Op, c.N, c.C, c.H, c.W, c.Window, c.Stride, kind)
}

// SoftmaxConfig describes a classifier layer: N images, Classes categories.
type SoftmaxConfig struct {
	N       int
	Classes int
}

// Validate reports whether the configuration is computable.
func (c SoftmaxConfig) Validate() error {
	if c.N <= 0 || c.Classes <= 0 {
		return fmt.Errorf("kernels: softmax dims must be positive: %+v", c)
	}
	return nil
}

// Elems returns the matrix element count N*Classes.
func (c SoftmaxConfig) Elems() int { return c.N * c.Classes }

// Bytes returns the float32 matrix size in bytes.
func (c SoftmaxConfig) Bytes() float64 { return float64(c.Elems()) * 4 }

// String summarises the layer the way Fig. 13 labels its x axis (batch/classes).
func (c SoftmaxConfig) String() string { return fmt.Sprintf("softmax %d/%d", c.N, c.Classes) }
