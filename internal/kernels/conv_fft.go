package kernels

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"memcnn/internal/fft"
	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

// FFT-based convolution: the cuDNN v4 FFT and FFT-Tiling modes
// (Section IV.A, "Data Layouts in FFT-based Implementations").  Convolution
// in the space domain becomes a pointwise product in the frequency domain, at
// the cost of padding every filter to the feature-map size: the padding (and
// the frequency-domain copies of inputs, filters and outputs) is the memory
// overhead that makes the FFT mode fail on CV5 and CV6 on a 6 GB card.

// ErrOutOfMemory is returned when a convolution mode needs more device memory
// than the target GPU provides, matching the execution failures the paper
// reports for the FFT modes.
type ErrOutOfMemory struct {
	Kernel   string
	Required int64
	Device   string
	Capacity int64
}

// Error implements the error interface.
func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("kernels: %s requires %.2f GiB but %s has %.2f GiB",
		e.Kernel, float64(e.Required)/(1<<30), e.Device, float64(e.Capacity)/(1<<30))
}

// fftWorkspaceFactor scales the raw spectra footprint to the full workspace
// the batched frequency-domain implementation keeps live (split-complex
// copies, the out-of-place transform buffers and the transposed operands of
// the per-frequency batched product).  The value reflects cuDNN v4's observed
// workspace appetite: with it, exactly the two layers the paper reports
// (CONV5 and CONV6) exceed the 6 GB Titan Black while the other Table 1
// layers fit.
const fftWorkspaceFactor = 4.2

// fftTileEdge is the tile size of the FFT-Tiling mode (the paper: "splits the
// inputs into 32x32 tiles such that the memory overhead can be reduced").
const fftTileEdge = 32

// fftStageEfficiency is the fraction of peak FLOPs the batched forward and
// inverse transforms sustain; fftPointwiseMaxEff caps the frequency-domain
// batched complex product.
const (
	fftStageEfficiency = 0.14
	fftPointwiseMaxEff = 0.45
)

// fftMaxWorkers caps the image-stage parallelism of ConvFFTInto.  The
// workspace carries one private block of channel spectra plus an accumulator
// per worker, so the cap keeps ConvFFTWorkspaceElems a pure function of the
// layer shape — the compiler sizes the arena scratch once, independent of the
// GOMAXPROCS the program later runs under.
const fftMaxWorkers = 8

// fftProductionPad returns the transform edge the production kernel actually
// uses: the next power of two of the padded input.  That is always enough for
// a valid correlation — every needed output row ih = oh·stride satisfies
// ih + FH - 1 ≤ padH - 1 ≤ pR - 1, so circular wraparound never reaches a
// sampled element.  The modeled-cost side (fftPadSize, FFTWorkspaceBytes)
// deliberately keeps the more conservative padH+FH-1 sizing of the emulated
// cuDNN v4 mode: the paper's memory-overhead story (and its 6 GB OOM
// failures) describe that implementation, not this leaner kernel.
func fftProductionPad(cfg ConvConfig) (pR, pC int) {
	cfg = cfg.withDefaults()
	return fft.NextPow2(cfg.H + 2*cfg.PadH), fft.NextPow2(cfg.W + 2*cfg.PadW)
}

// fftWorkerCount returns the number of image-stage workers ConvFFTInto uses:
// GOMAXPROCS capped by the batch size and by the workspace's fftMaxWorkers
// blocks.
func fftWorkerCount(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w > fftMaxWorkers {
		w = fftMaxWorkers
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ConvFFTWorkspaceElems returns the scratch ConvFFTInto needs, in float32
// elements: split re/im spectra for all K·C filters, plus one private block
// per worker holding the current image's C channel spectra and the
// accumulator plane.  The worker count is min(N, fftMaxWorkers), so the size
// depends only on the layer shape.
func ConvFFTWorkspaceElems(cfg ConvConfig) int {
	cfg = cfg.withDefaults()
	pR, pC := fftProductionPad(cfg)
	workers := cfg.N
	if workers > fftMaxWorkers {
		workers = fftMaxWorkers
	}
	return 2 * pR * pC * (cfg.K*cfg.C + workers*(cfg.C+1))
}

// ConvFFTInto is the allocation-free production form of the FFT convolution:
// filter and image spectra are computed in the caller-provided scratch (at
// least ConvFFTWorkspaceElems(cfg) elements, contents unspecified on entry),
// multiplied per (image, output-channel) pair with accumulation over input
// channels in ascending order, and transformed back.  Strides larger than one
// subsample the dense correlation.  Any input and output layouts are
// accepted; the accumulation order is fixed, so results are bit-identical
// across layouts, batch splits and worker counts.  With a single worker the
// kernel performs no heap allocation at all.
//
//memcnn:noalloc
func ConvFFTInto(in, filters, out *tensor.Tensor, cfg ConvConfig, scratch []float32) error {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if in.Shape != cfg.InputShape() {
		return fmt.Errorf("kernels: conv input shape %v does not match config %v", in.Shape, cfg.InputShape())
	}
	if filters.Shape != cfg.FilterShape() {
		return fmt.Errorf("kernels: filter shape %v does not match config %v", filters.Shape, cfg.FilterShape())
	}
	if out.Shape != cfg.OutputShape() {
		return fmt.Errorf("kernels: conv output shape %v does not match config %v", out.Shape, cfg.OutputShape())
	}
	if need := ConvFFTWorkspaceElems(cfg); len(scratch) < need {
		return fmt.Errorf("kernels: fft conv scratch has %d elements, want at least %d", len(scratch), need)
	}
	pR, pC := fftProductionPad(cfg)
	pts := pR * pC
	filtArea := scratch[:cfg.K*cfg.C*2*pts]
	workArea := scratch[cfg.K*cfg.C*2*pts:]
	perWorker := (cfg.C + 1) * 2 * pts
	workers := fftWorkerCount(cfg.N)
	if workers <= 1 {
		// Serial path: plain calls, no closures, zero allocations.
		for idx := 0; idx < cfg.K*cfg.C; idx++ {
			convFFTFilterBlock(filters, cfg, idx, filtArea, pR, pC)
		}
		for n := 0; n < cfg.N; n++ {
			convFFTImage(in, out, cfg, n, workArea[:perWorker], filtArea, pR, pC)
		}
		return nil
	}
	fftParallel(workers, cfg.K*cfg.C, func(idx, _ int) { //memcnn:alloc-ok
		convFFTFilterBlock(filters, cfg, idx, filtArea, pR, pC)
	})
	fftParallel(workers, cfg.N, func(n, w int) { //memcnn:alloc-ok
		convFFTImage(in, out, cfg, n, workArea[w*perWorker:(w+1)*perWorker], filtArea, pR, pC)
	})
	return nil
}

// fftParallel runs f(job, worker) for job in [0, jobs) on `workers`
// goroutines pulling jobs from an atomic counter.  Each job index runs
// exactly once and each worker index is private to one goroutine.
//
//memcnn:noalloc
func fftParallel(workers, jobs int, f func(job, worker int)) {
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) { //memcnn:alloc-ok
			defer wg.Done()
			for {
				job := int(atomic.AddInt64(&next, 1)) - 1
				if job >= jobs {
					return
				}
				f(job, w)
			}
		}(w)
	}
	wg.Wait()
}

// convFFTFilterBlock fills filter spectrum idx = k·C + c: the FH×FW filter
// tap block is zero-padded into the pR×pC plane pair at filtArea[idx·2·pts]
// (re plane first, then im) and transformed forward in place.
func convFFTFilterBlock(filters *tensor.Tensor, cfg ConvConfig, idx int, filtArea []float32, pR, pC int) {
	pts := pR * pC
	k, c := idx/cfg.C, idx%cfg.C
	re := filtArea[idx*2*pts : idx*2*pts+pts]
	im := filtArea[idx*2*pts+pts : (idx+1)*2*pts]
	for i := range re {
		re[i] = 0
	}
	for i := range im {
		im[i] = 0
	}
	for fh := 0; fh < cfg.FH; fh++ {
		row := re[fh*pC:]
		for fw := 0; fw < cfg.FW; fw++ {
			row[fw] = filters.At(k, c, fh, fw)
		}
	}
	// Sizes are powers of two and the planes exact, so the transform cannot
	// fail (validated by ConvFFTInto up front).
	_ = fft.Forward2DSplit(re, im, pR, pC)
}

// convFFTImage convolves image n: its C channel spectra are transformed once
// into the worker's private block, then for each output channel the
// channel-ascending spectrum products accumulate into the block's last plane
// pair, which is inverse-transformed and subsampled into the output.
func convFFTImage(in, out *tensor.Tensor, cfg ConvConfig, n int, block, filtArea []float32, pR, pC int) {
	pts := pR * pC
	sn, sc, sh, sw := in.Shape.Strides(in.Layout)
	for c := 0; c < cfg.C; c++ {
		re := block[c*2*pts : c*2*pts+pts]
		im := block[c*2*pts+pts : (c+1)*2*pts]
		for i := range re {
			re[i] = 0
		}
		for i := range im {
			im[i] = 0
		}
		base := n*sn + c*sc
		for h := 0; h < cfg.H; h++ {
			row := re[(h+cfg.PadH)*pC+cfg.PadW:]
			off := base + h*sh
			for x := 0; x < cfg.W; x++ {
				row[x] = in.Data[off+x*sw]
			}
		}
		_ = fft.Forward2DSplit(re, im, pR, pC)
	}
	accRe := block[cfg.C*2*pts : cfg.C*2*pts+pts]
	accIm := block[cfg.C*2*pts+pts : (cfg.C+1)*2*pts]
	outH, outW := cfg.OutH(), cfg.OutW()
	on, oc, ohs, ows := out.Shape.Strides(out.Layout)
	for k := 0; k < cfg.K; k++ {
		for i := range accRe {
			accRe[i] = 0
		}
		for i := range accIm {
			accIm[i] = 0
		}
		for c := 0; c < cfg.C; c++ {
			fbase := (k*cfg.C + c) * 2 * pts
			fft.SpectrumCorrelateSplit(accRe, accIm,
				block[c*2*pts:c*2*pts+pts], block[c*2*pts+pts:(c+1)*2*pts],
				filtArea[fbase:fbase+pts], filtArea[fbase+pts:fbase+2*pts])
		}
		_ = fft.Inverse2DSplit(accRe, accIm, pR, pC)
		obase := n*on + k*oc
		for oh := 0; oh < outH; oh++ {
			ih := oh * cfg.StrideH
			off := obase + oh*ohs
			src := accRe[ih*pC:]
			for ow := 0; ow < outW; ow++ {
				out.Data[off+ow*ows] = src[ow*cfg.StrideW]
			}
		}
	}
}

// ConvFFT is the functional (allocating) reference for the FFT convolution
// path.  It allocates the output and workspace and delegates to ConvFFTInto,
// so its results are bit-identical to the planned runtime's FFT path.
func ConvFFT(in, filters *tensor.Tensor, cfg ConvConfig, outLayout tensor.Layout) (*tensor.Tensor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := tensor.New(cfg.OutputShape(), outLayout)
	scratch := make([]float32, ConvFFTWorkspaceElems(cfg))
	if err := ConvFFTInto(in, filters, out, cfg, scratch); err != nil {
		return nil, err
	}
	return out, nil
}

// fftPadSize returns the padded transform edge for the full-image FFT mode.
func fftPadSize(cfg ConvConfig) (pR, pC int) {
	cfg = cfg.withDefaults()
	return fft.NextPow2(cfg.H + 2*cfg.PadH + cfg.FH - 1), fft.NextPow2(cfg.W + 2*cfg.PadW + cfg.FW - 1)
}

// FFTWorkspaceBytes returns the device memory required by the full-image FFT
// convolution: the frequency-domain copies of the inputs, filters and outputs
// (complex64 values) scaled by the implementation's working-copy factor.
func FFTWorkspaceBytes(cfg ConvConfig) int64 {
	cfg = cfg.withDefaults()
	pR, pC := fftPadSize(cfg)
	spectra := float64(cfg.N*cfg.C+cfg.K*cfg.C+cfg.N*cfg.K) * float64(pR*pC) * 8
	return int64(spectra * fftWorkspaceFactor)
}

// FFTTilingWorkspaceBytes returns the device memory required by the FFT
// tiling mode, which transforms fixed 32×32 tiles instead of whole feature
// maps.
func FFTTilingWorkspaceBytes(cfg ConvConfig) int64 {
	cfg = cfg.withDefaults()
	tile := fftTileEdge
	spectra := float64(cfg.N*cfg.C+cfg.K*cfg.C+cfg.N*cfg.K) * float64(tile*tile) * 8
	return int64(spectra * fftWorkspaceFactor)
}

// fftCost builds the kernel sequence shared by the two FFT modes.
func fftCost(d *gpusim.Device, cfg ConvConfig, tiled bool) ([]gpusim.KernelStats, error) {
	cfg = cfg.withDefaults()
	name := "fft-conv NCHW"
	workspace := FFTWorkspaceBytes(cfg)
	pR, pC := fftPadSize(cfg)
	tiles := 1
	if tiled {
		name = "fft-tiling-conv NCHW"
		workspace = FFTTilingWorkspaceBytes(cfg)
		pR, pC = fftTileEdge, fftTileEdge
		// Each feature map is split into overlapping tiles whose usable
		// output region shrinks by the filter size (overlap-add).
		usable := fftTileEdge - cfg.FH + 1
		if usable < 1 {
			usable = 1
		}
		tiles = ceilDiv(cfg.H+2*cfg.PadH, usable) * ceilDiv(cfg.W+2*cfg.PadW, usable)
	}
	inputBytes := int64(cfg.InputShape().Elems()+cfg.OutputShape().Elems()+cfg.FilterShape().Elems()) * 4
	if !d.FitsInMemory(workspace + inputBytes) {
		return nil, &ErrOutOfMemory{Kernel: name + " " + cfg.String(), Required: workspace + inputBytes, Device: d.Name, Capacity: d.GlobalMemBytes}
	}

	points := float64(pR * pC)
	logPts := math.Log2(points)
	if logPts < 1 {
		logPts = 1
	}
	transforms := float64(cfg.N*cfg.C+cfg.K*cfg.C+cfg.N*cfg.K) * float64(tiles)
	fftFLOPs := transforms * 5 * points * logPts
	// Pointwise complex multiply-accumulate over input channels for every
	// (image, output channel, frequency) triple: 8 real FLOPs each.
	pointFLOPs := float64(cfg.N) * float64(cfg.K) * float64(cfg.C) * points * float64(tiles) * 8

	spectraBytes := transforms * points * 8

	fftStage := gpusim.KernelStats{
		Name:       name + " transforms " + cfg.String(),
		GridBlocks: int(transforms),
		Block:      gpusim.BlockResources{ThreadsPerBlock: 256, RegsPerThread: 40, SharedMemPerBlock: 8 << 10},
		Launches:   2, // forward transforms of inputs and filters
		FLOPs:      fftFLOPs,
		// Butterfly stages are latency and shuffle bound; they do not reach
		// FMA peak (batched cuFFT sustains a small fraction of peak FLOPs).
		ComputeEfficiency: fftStageEfficiency,
		DRAMReadBytes:     float64(inputBytes),
		DRAMWriteBytes:    spectraBytes,
		UsefulReadBytes:   float64(inputBytes),
		UsefulWriteBytes:  spectraBytes,
	}
	// The per-frequency batched product is a complex GEMM of (K×C)·(C×N)
	// repeated for every frequency bin: its reduction length is the channel
	// count, so it only becomes efficient once C (and the filter count) are
	// large — the same saturation behaviour as the spatial GEMM, but without
	// the batch-size penalty because the frequency bins provide parallelism.
	pointEff := fftPointwiseMaxEff *
		(float64(cfg.C) / (float64(cfg.C) + 32)) *
		(float64(cfg.K) / (float64(cfg.K) + 48))
	if pointEff > fftPointwiseMaxEff {
		pointEff = fftPointwiseMaxEff
	}
	pointStage := gpusim.KernelStats{
		Name:              name + " pointwise " + cfg.String(),
		GridBlocks:        int(points),
		Block:             gpusim.BlockResources{ThreadsPerBlock: 256, RegsPerThread: 64, SharedMemPerBlock: 16 << 10},
		Launches:          1,
		FLOPs:             pointFLOPs,
		ComputeEfficiency: pointEff,
		DRAMReadBytes:     spectraBytes,
		DRAMWriteBytes:    float64(cfg.N*cfg.K) * points * float64(tiles) * 8,
		UsefulReadBytes:   spectraBytes,
		UsefulWriteBytes:  float64(cfg.N*cfg.K) * points * float64(tiles) * 8,
	}
	inverseStage := gpusim.KernelStats{
		Name:              name + " inverse " + cfg.String(),
		GridBlocks:        cfg.N * cfg.K * tiles,
		Block:             gpusim.BlockResources{ThreadsPerBlock: 256, RegsPerThread: 40, SharedMemPerBlock: 8 << 10},
		Launches:          1,
		FLOPs:             float64(cfg.N*cfg.K*tiles) * 5 * points * logPts,
		ComputeEfficiency: fftStageEfficiency,
		DRAMReadBytes:     float64(cfg.N*cfg.K) * points * float64(tiles) * 8,
		DRAMWriteBytes:    float64(cfg.OutputShape().Elems()) * 4,
		UsefulReadBytes:   float64(cfg.N*cfg.K) * points * float64(tiles) * 8,
		UsefulWriteBytes:  float64(cfg.OutputShape().Elems()) * 4,
	}
	return []gpusim.KernelStats{fftStage, pointStage, inverseStage}, nil
}

// ConvFFTCost returns the kernel sequence of the full-image FFT convolution
// mode, or ErrOutOfMemory when the padded spectra exceed device memory.
func ConvFFTCost(d *gpusim.Device, cfg ConvConfig) ([]gpusim.KernelStats, error) {
	return fftCost(d, cfg, false)
}

// ConvFFTTilingCost returns the kernel sequence of the FFT-Tiling convolution
// mode.
func ConvFFTTilingCost(d *gpusim.Device, cfg ConvConfig) ([]gpusim.KernelStats, error) {
	return fftCost(d, cfg, true)
}
