package kernels

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"memcnn/internal/fft"
	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

// FFT-based convolution: the cuDNN v4 FFT and FFT-Tiling modes
// (Section IV.A, "Data Layouts in FFT-based Implementations").  Convolution
// in the space domain becomes a pointwise product in the frequency domain, at
// the cost of padding every filter to the feature-map size: the padding (and
// the frequency-domain copies of inputs, filters and outputs) is the memory
// overhead that makes the FFT mode fail on CV5 and CV6 on a 6 GB card.

// ErrOutOfMemory is returned when a convolution mode needs more device memory
// than the target GPU provides, matching the execution failures the paper
// reports for the FFT modes.
type ErrOutOfMemory struct {
	Kernel   string
	Required int64
	Device   string
	Capacity int64
}

// Error implements the error interface.
func (e *ErrOutOfMemory) Error() string {
	return fmt.Sprintf("kernels: %s requires %.2f GiB but %s has %.2f GiB",
		e.Kernel, float64(e.Required)/(1<<30), e.Device, float64(e.Capacity)/(1<<30))
}

// fftWorkspaceFactor scales the raw spectra footprint to the full workspace
// the batched frequency-domain implementation keeps live (split-complex
// copies, the out-of-place transform buffers and the transposed operands of
// the per-frequency batched product).  The value reflects cuDNN v4's observed
// workspace appetite: with it, exactly the two layers the paper reports
// (CONV5 and CONV6) exceed the 6 GB Titan Black while the other Table 1
// layers fit.
const fftWorkspaceFactor = 4.2

// fftTileEdge is the tile size of the FFT-Tiling mode (the paper: "splits the
// inputs into 32x32 tiles such that the memory overhead can be reduced").
const fftTileEdge = 32

// fftStageEfficiency is the fraction of peak FLOPs the batched forward and
// inverse transforms sustain; fftPointwiseMaxEff caps the frequency-domain
// batched complex product.
const (
	fftStageEfficiency = 0.14
	fftPointwiseMaxEff = 0.45
)

// ConvFFT is the functional reference for the FFT convolution path: image and
// filter spectra are computed once, multiplied per (image, output-channel)
// pair with accumulation over input channels, and transformed back.  Strides
// larger than one are applied by subsampling the stride-1 result, as the
// frequency-domain method computes the dense correlation anyway.
func ConvFFT(in, filters *tensor.Tensor, cfg ConvConfig, outLayout tensor.Layout) (*tensor.Tensor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if in.Shape != cfg.InputShape() {
		return nil, fmt.Errorf("kernels: conv input shape %v does not match config %v", in.Shape, cfg.InputShape())
	}
	if filters.Shape != cfg.FilterShape() {
		return nil, fmt.Errorf("kernels: filter shape %v does not match config %v", filters.Shape, cfg.FilterShape())
	}
	padH, padW := cfg.H+2*cfg.PadH, cfg.W+2*cfg.PadW
	pR, pC := fft.NextPow2(padH+cfg.FH-1), fft.NextPow2(padW+cfg.FW-1)

	// Pre-transform the filter spectra (K*C of them).
	filterSpectra := make([]*fft.Matrix, cfg.K*cfg.C)
	var ferr error
	var fwg sync.WaitGroup
	fjobs := make(chan int, cfg.K*cfg.C)
	for i := 0; i < cfg.K*cfg.C; i++ {
		fjobs <- i
	}
	close(fjobs)
	var errMu sync.Mutex
	setErr := func(err error) {
		errMu.Lock()
		if ferr == nil {
			ferr = err
		}
		errMu.Unlock()
	}
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		fwg.Add(1)
		go func() {
			defer fwg.Done()
			buf := make([]float32, cfg.FH*cfg.FW)
			for idx := range fjobs {
				k, c := idx/cfg.C, idx%cfg.C
				for fh := 0; fh < cfg.FH; fh++ {
					for fw := 0; fw < cfg.FW; fw++ {
						buf[fh*cfg.FW+fw] = filters.At(k, c, fh, fw)
					}
				}
				m := fft.PadReal(buf, cfg.FH, cfg.FW, pR, pC)
				if err := fft.Forward2D(m); err != nil {
					setErr(err)
					return
				}
				filterSpectra[idx] = m
			}
		}()
	}
	fwg.Wait()
	if ferr != nil {
		return nil, ferr
	}

	out := tensor.New(cfg.OutputShape(), outLayout)
	outH, outW := cfg.OutH(), cfg.OutW()
	fullH, fullW := padH-cfg.FH+1, padW-cfg.FW+1

	// Per image: transform its C channel spectra once, then accumulate the
	// products for each output channel.
	njobs := make(chan int, cfg.N)
	for n := 0; n < cfg.N; n++ {
		njobs <- n
	}
	close(njobs)
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			img := make([]float32, padH*padW)
			for n := range njobs {
				imgSpectra := make([]*fft.Matrix, cfg.C)
				for c := 0; c < cfg.C; c++ {
					for i := range img {
						img[i] = 0
					}
					for h := 0; h < cfg.H; h++ {
						for wI := 0; wI < cfg.W; wI++ {
							img[(h+cfg.PadH)*padW+(wI+cfg.PadW)] = in.At(n, c, h, wI)
						}
					}
					m := fft.PadReal(img, padH, padW, pR, pC)
					if err := fft.Forward2D(m); err != nil {
						setErr(err)
						return
					}
					imgSpectra[c] = m
				}
				for k := 0; k < cfg.K; k++ {
					acc := fft.NewMatrix(pR, pC)
					for c := 0; c < cfg.C; c++ {
						if err := fft.SpectrumCorrelate(acc, imgSpectra[c], filterSpectra[k*cfg.C+c]); err != nil {
							setErr(err)
							return
						}
					}
					if err := fft.Inverse2D(acc); err != nil {
						setErr(err)
						return
					}
					for oh := 0; oh < outH; oh++ {
						ih := oh * cfg.StrideH
						if ih >= fullH {
							continue
						}
						for ow := 0; ow < outW; ow++ {
							iw := ow * cfg.StrideW
							if iw >= fullW {
								continue
							}
							out.Set(n, k, oh, ow, float32(real(acc.At(ih, iw))))
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if ferr != nil {
		return nil, ferr
	}
	return out, nil
}

// fftPadSize returns the padded transform edge for the full-image FFT mode.
func fftPadSize(cfg ConvConfig) (pR, pC int) {
	cfg = cfg.withDefaults()
	return fft.NextPow2(cfg.H + 2*cfg.PadH + cfg.FH - 1), fft.NextPow2(cfg.W + 2*cfg.PadW + cfg.FW - 1)
}

// FFTWorkspaceBytes returns the device memory required by the full-image FFT
// convolution: the frequency-domain copies of the inputs, filters and outputs
// (complex64 values) scaled by the implementation's working-copy factor.
func FFTWorkspaceBytes(cfg ConvConfig) int64 {
	cfg = cfg.withDefaults()
	pR, pC := fftPadSize(cfg)
	spectra := float64(cfg.N*cfg.C+cfg.K*cfg.C+cfg.N*cfg.K) * float64(pR*pC) * 8
	return int64(spectra * fftWorkspaceFactor)
}

// FFTTilingWorkspaceBytes returns the device memory required by the FFT
// tiling mode, which transforms fixed 32×32 tiles instead of whole feature
// maps.
func FFTTilingWorkspaceBytes(cfg ConvConfig) int64 {
	cfg = cfg.withDefaults()
	tile := fftTileEdge
	spectra := float64(cfg.N*cfg.C+cfg.K*cfg.C+cfg.N*cfg.K) * float64(tile*tile) * 8
	return int64(spectra * fftWorkspaceFactor)
}

// fftCost builds the kernel sequence shared by the two FFT modes.
func fftCost(d *gpusim.Device, cfg ConvConfig, tiled bool) ([]gpusim.KernelStats, error) {
	cfg = cfg.withDefaults()
	name := "fft-conv NCHW"
	workspace := FFTWorkspaceBytes(cfg)
	pR, pC := fftPadSize(cfg)
	tiles := 1
	if tiled {
		name = "fft-tiling-conv NCHW"
		workspace = FFTTilingWorkspaceBytes(cfg)
		pR, pC = fftTileEdge, fftTileEdge
		// Each feature map is split into overlapping tiles whose usable
		// output region shrinks by the filter size (overlap-add).
		usable := fftTileEdge - cfg.FH + 1
		if usable < 1 {
			usable = 1
		}
		tiles = ceilDiv(cfg.H+2*cfg.PadH, usable) * ceilDiv(cfg.W+2*cfg.PadW, usable)
	}
	inputBytes := int64(cfg.InputShape().Elems()+cfg.OutputShape().Elems()+cfg.FilterShape().Elems()) * 4
	if !d.FitsInMemory(workspace + inputBytes) {
		return nil, &ErrOutOfMemory{Kernel: name + " " + cfg.String(), Required: workspace + inputBytes, Device: d.Name, Capacity: d.GlobalMemBytes}
	}

	points := float64(pR * pC)
	logPts := math.Log2(points)
	if logPts < 1 {
		logPts = 1
	}
	transforms := float64(cfg.N*cfg.C+cfg.K*cfg.C+cfg.N*cfg.K) * float64(tiles)
	fftFLOPs := transforms * 5 * points * logPts
	// Pointwise complex multiply-accumulate over input channels for every
	// (image, output channel, frequency) triple: 8 real FLOPs each.
	pointFLOPs := float64(cfg.N) * float64(cfg.K) * float64(cfg.C) * points * float64(tiles) * 8

	spectraBytes := transforms * points * 8

	fftStage := gpusim.KernelStats{
		Name:       name + " transforms " + cfg.String(),
		GridBlocks: int(transforms),
		Block:      gpusim.BlockResources{ThreadsPerBlock: 256, RegsPerThread: 40, SharedMemPerBlock: 8 << 10},
		Launches:   2, // forward transforms of inputs and filters
		FLOPs:      fftFLOPs,
		// Butterfly stages are latency and shuffle bound; they do not reach
		// FMA peak (batched cuFFT sustains a small fraction of peak FLOPs).
		ComputeEfficiency: fftStageEfficiency,
		DRAMReadBytes:     float64(inputBytes),
		DRAMWriteBytes:    spectraBytes,
		UsefulReadBytes:   float64(inputBytes),
		UsefulWriteBytes:  spectraBytes,
	}
	// The per-frequency batched product is a complex GEMM of (K×C)·(C×N)
	// repeated for every frequency bin: its reduction length is the channel
	// count, so it only becomes efficient once C (and the filter count) are
	// large — the same saturation behaviour as the spatial GEMM, but without
	// the batch-size penalty because the frequency bins provide parallelism.
	pointEff := fftPointwiseMaxEff *
		(float64(cfg.C) / (float64(cfg.C) + 32)) *
		(float64(cfg.K) / (float64(cfg.K) + 48))
	if pointEff > fftPointwiseMaxEff {
		pointEff = fftPointwiseMaxEff
	}
	pointStage := gpusim.KernelStats{
		Name:              name + " pointwise " + cfg.String(),
		GridBlocks:        int(points),
		Block:             gpusim.BlockResources{ThreadsPerBlock: 256, RegsPerThread: 64, SharedMemPerBlock: 16 << 10},
		Launches:          1,
		FLOPs:             pointFLOPs,
		ComputeEfficiency: pointEff,
		DRAMReadBytes:     spectraBytes,
		DRAMWriteBytes:    float64(cfg.N*cfg.K) * points * float64(tiles) * 8,
		UsefulReadBytes:   spectraBytes,
		UsefulWriteBytes:  float64(cfg.N*cfg.K) * points * float64(tiles) * 8,
	}
	inverseStage := gpusim.KernelStats{
		Name:              name + " inverse " + cfg.String(),
		GridBlocks:        cfg.N * cfg.K * tiles,
		Block:             gpusim.BlockResources{ThreadsPerBlock: 256, RegsPerThread: 40, SharedMemPerBlock: 8 << 10},
		Launches:          1,
		FLOPs:             float64(cfg.N*cfg.K*tiles) * 5 * points * logPts,
		ComputeEfficiency: fftStageEfficiency,
		DRAMReadBytes:     float64(cfg.N*cfg.K) * points * float64(tiles) * 8,
		DRAMWriteBytes:    float64(cfg.OutputShape().Elems()) * 4,
		UsefulReadBytes:   float64(cfg.N*cfg.K) * points * float64(tiles) * 8,
		UsefulWriteBytes:  float64(cfg.OutputShape().Elems()) * 4,
	}
	return []gpusim.KernelStats{fftStage, pointStage, inverseStage}, nil
}

// ConvFFTCost returns the kernel sequence of the full-image FFT convolution
// mode, or ErrOutOfMemory when the padded spectra exceed device memory.
func ConvFFTCost(d *gpusim.Device, cfg ConvConfig) ([]gpusim.KernelStats, error) {
	return fftCost(d, cfg, false)
}

// ConvFFTTilingCost returns the kernel sequence of the FFT-Tiling convolution
// mode.
func ConvFFTTilingCost(d *gpusim.Device, cfg ConvConfig) ([]gpusim.KernelStats, error) {
	return fftCost(d, cfg, true)
}
