package kernels

import (
	"testing"
	"testing/quick"

	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

func TestPoolMaxHandComputed(t *testing.T) {
	cfg := PoolConfig{N: 1, C: 1, H: 4, W: 4, Window: 2, Stride: 2, Op: MaxPool}
	in := tensor.New(cfg.InputShape(), tensor.NCHW)
	copy(in.Data, []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	out, err := Pool(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{6, 8, 14, 16}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestPoolAvgHandComputed(t *testing.T) {
	cfg := PoolConfig{N: 1, C: 1, H: 4, W: 4, Window: 2, Stride: 2, Op: AvgPool}
	in := tensor.New(cfg.InputShape(), tensor.NCHW)
	copy(in.Data, []float32{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	})
	out, err := Pool(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{3.5, 5.5, 11.5, 13.5}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestPoolOverlappedWindows(t *testing.T) {
	cfg := PoolConfig{N: 1, C: 1, H: 5, W: 5, Window: 3, Stride: 2, Op: MaxPool}
	in := tensor.Sequential(cfg.InputShape(), tensor.NCHW)
	out, err := Pool(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Max of a 3x3 window is its bottom-right corner for a sequential fill.
	want := []float32{12, 14, 22, 24}
	for i, w := range want {
		if out.Data[i] != w {
			t.Errorf("out[%d] = %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestPoolLayoutInvariance(t *testing.T) {
	cfg := PoolConfig{N: 4, C: 3, H: 12, W: 12, Window: 3, Stride: 2, Op: MaxPool}
	var ref *tensor.Tensor
	for _, l := range tensor.Layouts {
		in := tensor.Random(cfg.InputShape(), l, 21)
		out, err := Pool(in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = out
			continue
		}
		if !tensor.AllClose(ref, out, 0) {
			t.Errorf("layout %v changed the pooling result", l)
		}
	}
}

func TestPoolCoarsenedMatchesPool(t *testing.T) {
	cfgs := []PoolConfig{
		{N: 2, C: 3, H: 12, W: 12, Window: 3, Stride: 2, Op: MaxPool},
		{N: 2, C: 3, H: 12, W: 12, Window: 3, Stride: 2, Op: AvgPool},
		{N: 1, C: 2, H: 28, W: 28, Window: 2, Stride: 2, Op: MaxPool},
		{N: 2, C: 1, H: 13, W: 13, Window: 3, Stride: 2, Op: MaxPool},
	}
	expansions := []PoolExpansion{{1, 1}, {2, 2}, {3, 2}, {4, 4}}
	for _, cfg := range cfgs {
		in := tensor.Random(cfg.InputShape(), tensor.CHWN, 33)
		want, err := Pool(in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range expansions {
			got, err := PoolCoarsened(in, cfg, e.H, e.W)
			if err != nil {
				t.Fatal(err)
			}
			if !tensor.AllClose(want, got, 0) {
				t.Errorf("%v expansion %dx%d: coarsened pooling differs from reference", cfg, e.H, e.W)
			}
		}
	}
}

// Property: for random shapes and windows the coarsened kernel always equals
// the plain kernel.
func TestPoolCoarsenedPropertyQuick(t *testing.T) {
	f := func(rawH, rawWin, rawStride, rawEH, rawEW uint8, avg bool) bool {
		h := int(rawH%14) + 4
		win := int(rawWin%3) + 2
		stride := int(rawStride%2) + 1
		if win > h {
			win = h
		}
		op := MaxPool
		if avg {
			op = AvgPool
		}
		cfg := PoolConfig{N: 2, C: 2, H: h, W: h, Window: win, Stride: stride, Op: op}
		if cfg.Validate() != nil {
			return true
		}
		in := tensor.Random(cfg.InputShape(), tensor.CHWN, uint64(h*win*stride)+1)
		want, err := Pool(in, cfg)
		if err != nil {
			return false
		}
		got, err := PoolCoarsened(in, cfg, int(rawEH%4)+1, int(rawEW%4)+1)
		if err != nil {
			return false
		}
		return tensor.AllClose(want, got, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestPoolValidation(t *testing.T) {
	cfg := PoolConfig{N: 1, C: 1, H: 4, W: 4, Window: 2, Stride: 2, Op: MaxPool}
	wrong := tensor.New(tensor.Shape{N: 1, C: 1, H: 5, W: 4}, tensor.NCHW)
	if _, err := Pool(wrong, cfg); err != nil == false {
		t.Error("shape mismatch must be rejected")
	}
	if _, err := PoolCoarsened(tensor.New(cfg.InputShape(), tensor.NCHW), cfg, 0, 1); err == nil {
		t.Error("non-positive expansion must be rejected")
	}
	if _, err := PoolCoarsened(wrong, cfg, 1, 1); err == nil {
		t.Error("shape mismatch must be rejected by the coarsened kernel")
	}
	if _, err := Pool(tensor.New(cfg.InputShape(), tensor.NCHW), PoolConfig{}); err == nil {
		t.Error("invalid config must be rejected")
	}
}

// Table 1 pooling layers used by the cost-model tests.
var paperPoolLayers = []PoolConfig{
	{N: 128, C: 16, H: 28, W: 28, Window: 2, Stride: 2, Op: MaxPool},  // POOL1
	{N: 128, C: 16, H: 14, W: 14, Window: 2, Stride: 2, Op: MaxPool},  // POOL2
	{N: 128, C: 64, H: 24, W: 24, Window: 3, Stride: 2, Op: MaxPool},  // POOL3
	{N: 128, C: 96, H: 55, W: 55, Window: 3, Stride: 2, Op: MaxPool},  // POOL5
	{N: 64, C: 96, H: 110, W: 110, Window: 3, Stride: 2, Op: MaxPool}, // POOL8
}

func TestPoolCHWNAlwaysBeatsNCHW(t *testing.T) {
	// Section IV.B: for pooling layers the CHWN layout is always preferred.
	d := gpusim.TitanBlack()
	for _, cfg := range paperPoolLayers {
		chwn := gpusim.EstimateTime(d, PoolCHWNCost(d, cfg)).TotalUS
		caffe := gpusim.EstimateTime(d, PoolNCHWCost(d, cfg, PoolCaffe)).TotalUS
		cudnn := gpusim.EstimateTime(d, PoolNCHWCost(d, cfg, PoolCuDNN)).TotalUS
		if chwn >= caffe || chwn >= cudnn {
			t.Errorf("%v: CHWN (%.0fus) must beat Caffe (%.0fus) and cuDNN (%.0fus)", cfg, chwn, caffe, cudnn)
		}
	}
}

func TestPoolCoarseningHelpsOverlappedPooling(t *testing.T) {
	d := gpusim.TitanBlack()
	for _, cfg := range paperPoolLayers {
		base := gpusim.EstimateTime(d, PoolCHWNCost(d, cfg)).TotalUS
		opt := gpusim.EstimateTime(d, PoolCHWNCoarsenedCost(d, cfg, PoolExpansion{H: 2, W: 2})).TotalUS
		if cfg.Overlapped() && opt >= base {
			t.Errorf("%v: coarsening should reduce time for overlapped pooling (base %.0fus, opt %.0fus)", cfg, base, opt)
		}
	}
}

func TestPoolExcessiveCoarseningBackfires(t *testing.T) {
	d := gpusim.TitanBlack()
	cfg := PoolConfig{N: 128, C: 64, H: 24, W: 24, Window: 3, Stride: 2, Op: MaxPool}
	moderate := gpusim.EstimateTime(d, PoolCHWNCoarsenedCost(d, cfg, PoolExpansion{H: 2, W: 2})).TotalUS
	extreme := gpusim.EstimateTime(d, PoolCHWNCoarsenedCost(d, cfg, PoolExpansion{H: 8, W: 8})).TotalUS
	if extreme <= moderate {
		t.Errorf("extreme coarsening (%.0fus) should lose to moderate coarsening (%.0fus) due to register pressure", extreme, moderate)
	}
}

func TestPoolNonOverlappedHasNoRedundancy(t *testing.T) {
	cfg := PoolConfig{N: 128, C: 16, H: 28, W: 28, Window: 2, Stride: 2, Op: MaxPool}
	if got := loadRedundancy(cfg); got != 1 {
		t.Errorf("non-overlapped redundancy = %v, want 1", got)
	}
	over := PoolConfig{N: 128, C: 64, H: 24, W: 24, Window: 3, Stride: 2, Op: MaxPool}
	if got := loadRedundancy(over); got <= 1 {
		t.Errorf("overlapped redundancy = %v, want > 1", got)
	}
}

func TestPoolCostStatsValid(t *testing.T) {
	d := gpusim.TitanBlack()
	for _, cfg := range paperPoolLayers {
		for _, s := range []gpusim.KernelStats{
			PoolCHWNCost(d, cfg),
			PoolNCHWCost(d, cfg, PoolCaffe),
			PoolNCHWCost(d, cfg, PoolCuDNN),
			PoolCHWNCoarsenedCost(d, cfg, PoolExpansion{H: 2, W: 2}),
			PoolCHWNCoarsenedCost(d, cfg, PoolExpansion{}),
		} {
			if err := s.Validate(); err != nil {
				t.Errorf("%v: %v", cfg, err)
			}
		}
	}
}

func TestPoolCoarsenedRegistersGrowWithExpansion(t *testing.T) {
	cfg := PoolConfig{N: 128, C: 64, H: 24, W: 24, Window: 3, Stride: 2, Op: MaxPool}
	prev := 0
	for e := 1; e <= 6; e++ {
		regs := PoolCoarsenedRegisters(cfg, PoolExpansion{H: e, W: e})
		if regs < prev {
			t.Errorf("registers decreased at expansion %d", e)
		}
		if regs > 255 {
			t.Errorf("registers must be capped at 255, got %d", regs)
		}
		prev = regs
	}
}

func TestPoolExpansionOutputs(t *testing.T) {
	if (PoolExpansion{H: 2, W: 3}).Outputs() != 6 {
		t.Error("Outputs should be H*W")
	}
}

func BenchmarkPoolCHWNFunctional(b *testing.B) {
	cfg := PoolConfig{N: 32, C: 16, H: 28, W: 28, Window: 2, Stride: 2, Op: MaxPool}
	in := tensor.Random(cfg.InputShape(), tensor.CHWN, 1)
	b.SetBytes(cfg.InputShape().Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Pool(in, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
