package kernels

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"memcnn/internal/gpusim"
)

// Softmax (classifier) kernels, Section V.B.  The baseline libraries
// implement the five algorithm steps (max, shift, exp, sum, normalise) as
// five separate kernels whose intermediate matrices round-trip through global
// memory, and parallelise only the batch loop — for a batch of 128 images
// that is 128 threads, far too few to hide DRAM latency.  The optimised
// kernel fuses the five steps into one kernel and parallelises the inner
// (category) loops with a per-block reduction.

// Softmax computes the row-wise softmax of an N×Classes matrix (row-major).
// It is the functional reference shared by all softmax kernel models.
func Softmax(in []float32, cfg SoftmaxConfig) ([]float32, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	out := make([]float32, len(in))
	if err := SoftmaxInto(out, in, cfg); err != nil {
		return nil, err
	}
	return out, nil
}

// SoftmaxInto computes the row-wise softmax of src into the caller-provided
// dst (both N×Classes row-major) without allocating.  dst may alias src: each
// row is read fully for its maximum before anything is written.
//
//memcnn:noalloc
func SoftmaxInto(dst, src []float32, cfg SoftmaxConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if len(src) != cfg.Elems() {
		return fmt.Errorf("kernels: softmax input has %d elements, want %d", len(src), cfg.Elems())
	}
	if len(dst) != cfg.Elems() {
		return fmt.Errorf("kernels: softmax output has %d elements, want %d", len(dst), cfg.Elems())
	}
	in, out := src, dst
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.N {
		workers = cfg.N
	}
	if workers <= 1 {
		for n := 0; n < cfg.N; n++ {
			softmaxRow(in[n*cfg.Classes:(n+1)*cfg.Classes], out[n*cfg.Classes:(n+1)*cfg.Classes])
		}
		return nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * cfg.N / workers
		hi := (w + 1) * cfg.N / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) { //memcnn:alloc-ok
			defer wg.Done()
			for n := lo; n < hi; n++ {
				row := in[n*cfg.Classes : (n+1)*cfg.Classes]
				dst := out[n*cfg.Classes : (n+1)*cfg.Classes]
				softmaxRow(row, dst)
			}
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// softmaxRow computes one row; dst may alias row (the maximum is taken before
// any write, and dst[i] is written only after row[i] is read).
func softmaxRow(row, dst []float32) {
	maxV := row[0]
	for _, v := range row {
		if v > maxV {
			maxV = v
		}
	}
	var sum float64
	for i, v := range row {
		e := math.Exp(float64(v - maxV))
		dst[i] = float32(e)
		sum += e
	}
	inv := 1 / sum
	for i := range dst {
		dst[i] = float32(float64(dst[i]) * inv)
	}
}

// SoftmaxFiveStep computes the same result through the explicit five-step
// algorithm of Section II.A, materialising every intermediate matrix the way
// the five-kernel baseline does.  Tests assert it agrees with Softmax; the
// intermediates let the cost model's traffic accounting be cross-checked.
func SoftmaxFiveStep(in []float32, cfg SoftmaxConfig) (out []float32, intermediates int, err error) {
	if err := cfg.Validate(); err != nil {
		return nil, 0, err
	}
	if len(in) != cfg.Elems() {
		return nil, 0, fmt.Errorf("kernels: softmax input has %d elements, want %d", len(in), cfg.Elems())
	}
	n, c := cfg.N, cfg.Classes
	// Step 1: per-image maximum.
	maxv := make([]float32, n)
	for i := 0; i < n; i++ {
		maxv[i] = in[i*c]
		for j := 0; j < c; j++ {
			if v := in[i*c+j]; v > maxv[i] {
				maxv[i] = v
			}
		}
	}
	// Step 2: shift.
	mid1 := make([]float32, n*c)
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			mid1[i*c+j] = in[i*c+j] - maxv[i]
		}
	}
	// Step 3: exponential.
	mid2 := make([]float32, n*c)
	for i := range mid1 {
		mid2[i] = float32(math.Exp(float64(mid1[i])))
	}
	// Step 4: per-image sum.
	sumv := make([]float32, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < c; j++ {
			s += float64(mid2[i*c+j])
		}
		sumv[i] = float32(s)
	}
	// Step 5: normalise.
	out = make([]float32, n*c)
	for i := 0; i < n; i++ {
		for j := 0; j < c; j++ {
			out[i*c+j] = mid2[i*c+j] / sumv[i]
		}
	}
	return out, 2*n*c + 2*n, nil
}

// SoftmaxImpl identifies one of the modelled softmax implementations.
type SoftmaxImpl int

// The softmax implementations compared in Fig. 13 and the ablation study.
const (
	// SoftmaxThreadPerImage is the Caffe / cuda-convnet baseline: five
	// kernels, one thread per image, sequential inner loops.
	SoftmaxThreadPerImage SoftmaxImpl = iota
	// SoftmaxBlockPerImage is the cuDNN-style baseline: still multiple
	// kernels and intermediate round trips, but a thread block per image.
	SoftmaxBlockPerImage
	// SoftmaxFused applies kernel fusion only: one kernel, intermediates in
	// registers/shared memory, but still one thread per image.
	SoftmaxFused
	// SoftmaxFusedParallel is the paper's full optimisation: fusion plus
	// parallelised inner loops (a block per image with shared-memory
	// reductions).
	SoftmaxFusedParallel
)

// String names the implementation.
func (i SoftmaxImpl) String() string {
	switch i {
	case SoftmaxThreadPerImage:
		return "baseline-thread-per-image"
	case SoftmaxBlockPerImage:
		return "baseline-block-per-image"
	case SoftmaxFused:
		return "fused"
	case SoftmaxFusedParallel:
		return "fused+parallel"
	default:
		return fmt.Sprintf("SoftmaxImpl(%d)", int(i))
	}
}

// softmaxBlockThreads returns the block size used by the block-per-image
// variants: enough threads to cover the categories, within device limits.
func softmaxBlockThreads(classes int) int {
	threads := 64
	for threads < classes && threads < 1024 {
		threads *= 2
	}
	if threads > 1024 {
		threads = 1024
	}
	return threads
}

// SoftmaxCost returns the kernel statistics of the selected softmax
// implementation on the given layer configuration.
func SoftmaxCost(d *gpusim.Device, cfg SoftmaxConfig, impl SoftmaxImpl) gpusim.KernelStats {
	matrix := cfg.Bytes()
	vector := float64(cfg.N) * 4

	switch impl {
	case SoftmaxThreadPerImage:
		// Five kernels.  Steps 1–5 read the full matrix (or the previous
		// intermediate) and write either a vector (steps 1 and 4) or a full
		// matrix (steps 2, 3 and 5).
		read := 5*matrix + 2*vector
		write := 3*matrix + 2*vector
		return gpusim.KernelStats{
			Name:       fmt.Sprintf("softmax %s %s", impl, cfg.String()),
			GridBlocks: ceilDiv(cfg.N, 128),
			Block:      gpusim.BlockResources{ThreadsPerBlock: minInt(cfg.N, 128), RegsPerThread: 24},
			Launches:   5,
			FLOPs:      float64(cfg.Elems()) * 8,
			// The sequential inner loop keeps only a couple of loads in
			// flight per thread.
			ComputeEfficiency:      0.1,
			BytesInFlightPerThread: 8,
			DRAMReadBytes:          read,
			DRAMWriteBytes:         write,
			UsefulReadBytes:        matrix,
			UsefulWriteBytes:       matrix,
		}
	case SoftmaxBlockPerImage:
		read := 5*matrix + 2*vector
		write := 3*matrix + 2*vector
		return gpusim.KernelStats{
			Name:                   fmt.Sprintf("softmax %s %s", impl, cfg.String()),
			GridBlocks:             cfg.N,
			Block:                  gpusim.BlockResources{ThreadsPerBlock: softmaxBlockThreads(cfg.Classes), RegsPerThread: 28},
			Launches:               5,
			FLOPs:                  float64(cfg.Elems()) * 8,
			ComputeEfficiency:      0.15,
			BytesInFlightPerThread: 16,
			DRAMReadBytes:          read,
			DRAMWriteBytes:         write,
			UsefulReadBytes:        matrix,
			UsefulWriteBytes:       matrix,
		}
	case SoftmaxFused:
		// One kernel; the intermediates stay in registers, but the batch
		// loop is still the only parallelism.
		return gpusim.KernelStats{
			Name:                   fmt.Sprintf("softmax %s %s", impl, cfg.String()),
			GridBlocks:             ceilDiv(cfg.N, 128),
			Block:                  gpusim.BlockResources{ThreadsPerBlock: minInt(cfg.N, 128), RegsPerThread: 40},
			Launches:               1,
			FLOPs:                  float64(cfg.Elems()) * 8,
			ComputeEfficiency:      0.1,
			BytesInFlightPerThread: 8,
			DRAMReadBytes:          matrix,
			DRAMWriteBytes:         matrix,
			UsefulReadBytes:        matrix,
			UsefulWriteBytes:       matrix,
		}
	default: // SoftmaxFusedParallel
		threads := softmaxBlockThreads(cfg.Classes)
		smem := cfg.Classes * 4
		if smem > 44<<10 {
			smem = 44 << 10 // in_tile capped; beyond that the kernel streams (C < 11K in Fig. 9)
		}
		smem += 1024 * 4 // tmp_tile reduction buffer
		return gpusim.KernelStats{
			Name:                   fmt.Sprintf("softmax %s %s", impl, cfg.String()),
			GridBlocks:             cfg.N,
			Block:                  gpusim.BlockResources{ThreadsPerBlock: threads, RegsPerThread: 32, SharedMemPerBlock: smem},
			Launches:               1,
			FLOPs:                  float64(cfg.Elems()) * 8,
			ComputeEfficiency:      0.25,
			BytesInFlightPerThread: 16,
			DRAMReadBytes:          matrix,
			DRAMWriteBytes:         matrix,
			UsefulReadBytes:        matrix,
			UsefulWriteBytes:       matrix,
		}
	}
}

// SoftmaxBaselineBest returns the faster of the two baseline implementations
// for a configuration, which is how the paper's "BL_Best" bar is built.
func SoftmaxBaselineBest(d *gpusim.Device, cfg SoftmaxConfig) (gpusim.KernelStats, SoftmaxImpl) {
	thread := SoftmaxCost(d, cfg, SoftmaxThreadPerImage)
	block := SoftmaxCost(d, cfg, SoftmaxBlockPerImage)
	if gpusim.EstimateTime(d, thread).TotalUS <= gpusim.EstimateTime(d, block).TotalUS {
		return thread, SoftmaxThreadPerImage
	}
	return block, SoftmaxBlockPerImage
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
