package kernels

import (
	"fmt"

	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

// GEMM-based convolution: the Caffe / cuDNN implementation strategy for the
// NCHW layout (Section II.B).  The input is unrolled with im2col into a
// (C·FH·FW) × (N·OutH·OutW) matrix and the convolution becomes one SGEMM with
// the filter bank as the (K) × (C·FH·FW) left operand.  The strategy inherits
// matrix multiplication's robustness across layer shapes, but pays the
// unroll traffic and only reaches high efficiency once the merged matrix
// dimensions are large (Fig. 4b).

// ConvAlgorithm identifies a CPU convolution execution strategy of the
// planned runtime: the cuda-convnet style direct kernel, the Caffe/cuDNN
// style im2col+GEMM path, or the cuDNN v4 style frequency-domain FFT path.
// internal/autotune selects between them per layer shape and
// internal/runtime records the choice in the compiled op.
type ConvAlgorithm int

// The convolution algorithms the planned runtime selects between.
const (
	// ConvAlgDirect is the direct convolution (ConvDirectInto).
	ConvAlgDirect ConvAlgorithm = iota
	// ConvAlgGemm is the im2col+GEMM convolution (ConvIm2colGemmInto).
	ConvAlgGemm
	// ConvAlgFFT is the frequency-domain convolution (ConvFFTInto).
	ConvAlgFFT
)

// String names the algorithm.
func (a ConvAlgorithm) String() string {
	switch a {
	case ConvAlgDirect:
		return "direct"
	case ConvAlgGemm:
		return "im2col+gemm"
	case ConvAlgFFT:
		return "fft"
	default:
		return fmt.Sprintf("ConvAlgorithm(%d)", int(a))
	}
}

// PackConvFilters flattens a filter bank into the K × (C·FH·FW) row-major
// left operand of the GEMM formulation.  Filters are stored with Co
// outermost (tensor.Filters), so the flattening is a straight copy in
// logical order; the runtime packs each conv layer once at compile time.
func PackConvFilters(filters *tensor.Tensor, cfg ConvConfig) ([]float32, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if filters.Shape != cfg.FilterShape() {
		return nil, fmt.Errorf("kernels: filter shape %v does not match config %v", filters.Shape, cfg.FilterShape())
	}
	kdim := cfg.ReductionLength()
	packed := make([]float32, cfg.K*kdim)
	for k := 0; k < cfg.K; k++ {
		idx := k * kdim
		for c := 0; c < cfg.C; c++ {
			for fh := 0; fh < cfg.FH; fh++ {
				for fw := 0; fw < cfg.FW; fw++ {
					packed[idx] = filters.At(k, c, fh, fw)
					idx++
				}
			}
		}
	}
	return packed, nil
}

// ConvGemmWorkspaceElems returns the scratch ConvIm2colGemmInto needs, in
// float32 elements: the single-image unroll matrix, plus a product staging
// area when the output layout is not NCHW (for NCHW the GEMM writes each
// image's K×OutH×OutW block straight into the output storage).
func ConvGemmWorkspaceElems(cfg ConvConfig, outLayout tensor.Layout) int {
	cfg = cfg.withDefaults()
	ohw := cfg.OutH() * cfg.OutW()
	elems := cfg.ReductionLength() * ohw
	if outLayout != tensor.NCHW {
		elems += cfg.K * ohw
	}
	return elems
}

// ConvIm2colGemmInto is the allocation-free production form of the GEMM
// convolution: it unrolls one image at a time into the caller-provided
// scratch (at least ConvGemmWorkspaceElems(cfg, out.Layout) elements,
// contents unspecified on entry) and multiplies it by the pre-packed filter
// operand (see PackConvFilters).  Any input and output layouts are accepted;
// the accumulation order per output element is fixed by GemmInto, so results
// are bit-identical to ConvIm2colGemm regardless of layout, batching or
// worker count.
//
//memcnn:noalloc
func ConvIm2colGemmInto(in *tensor.Tensor, packed []float32, out *tensor.Tensor, cfg ConvConfig, scratch []float32) error {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return err
	}
	if in.Shape != cfg.InputShape() {
		return fmt.Errorf("kernels: conv input shape %v does not match config %v", in.Shape, cfg.InputShape())
	}
	if out.Shape != cfg.OutputShape() {
		return fmt.Errorf("kernels: conv output shape %v does not match config %v", out.Shape, cfg.OutputShape())
	}
	kdim := cfg.ReductionLength()
	if len(packed) != cfg.K*kdim {
		return fmt.Errorf("kernels: packed filters have %d elements, want %d", len(packed), cfg.K*kdim)
	}
	if need := ConvGemmWorkspaceElems(cfg, out.Layout); len(scratch) < need {
		return fmt.Errorf("kernels: gemm conv scratch has %d elements, want at least %d", len(scratch), need)
	}
	outH, outW := cfg.OutH(), cfg.OutW()
	ohw := outH * outW
	unroll := scratch[:kdim*ohw]
	directOut := out.Layout == tensor.NCHW
	var prod []float32
	if !directOut {
		prod = scratch[kdim*ohw : kdim*ohw+cfg.K*ohw]
	}
	sn, sc, sh, sw := in.Shape.Strides(in.Layout)
	on, oc, ohs, ows := out.Shape.Strides(out.Layout)
	for n := 0; n < cfg.N; n++ {
		im2colImage(in.Data, n*sn, sc, sh, sw, cfg, unroll)
		dst := prod
		if directOut {
			dst = out.Data[n*cfg.K*ohw : (n+1)*cfg.K*ohw]
		}
		if err := GemmInto(packed, unroll, dst, cfg.K, ohw, kdim); err != nil {
			return err
		}
		if directOut {
			continue
		}
		// Scatter the K × (OutH·OutW) product into the output layout.
		base := n * on
		for k := 0; k < cfg.K; k++ {
			row := prod[k*ohw : (k+1)*ohw]
			col := 0
			for oh := 0; oh < outH; oh++ {
				off := base + k*oc + oh*ohs
				for ow := 0; ow < outW; ow++ {
					out.Data[off+ow*ows] = row[col]
					col++
				}
			}
		}
	}
	return nil
}

// ConvIm2colGemm is the functional (allocating) reference for the GEMM
// convolution path.  It packs the filters and delegates to
// ConvIm2colGemmInto, so its output is bit-identical to the planned
// runtime's GEMM path and numerically identical (up to float rounding) to
// ConvDirect; the cross-check is part of the test suite.
func ConvIm2colGemm(in, filters *tensor.Tensor, cfg ConvConfig, outLayout tensor.Layout) (*tensor.Tensor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if in.Shape != cfg.InputShape() {
		return nil, fmt.Errorf("kernels: conv input shape %v does not match config %v", in.Shape, cfg.InputShape())
	}
	packed, err := PackConvFilters(filters, cfg)
	if err != nil {
		return nil, err
	}
	out := tensor.New(cfg.OutputShape(), outLayout)
	scratch := make([]float32, ConvGemmWorkspaceElems(cfg, outLayout))
	if err := ConvIm2colGemmInto(in, packed, out, cfg, scratch); err != nil {
		return nil, err
	}
	return out, nil
}

// ConvGemmNCHWCost returns the kernel sequence of the NCHW GEMM convolution:
// the im2col unroll followed by the SGEMM.  1×1 stride-1 convolutions skip
// the unroll, as Caffe and cuDNN do.
func ConvGemmNCHWCost(d *gpusim.Device, cfg ConvConfig) []gpusim.KernelStats {
	cfg = cfg.withDefaults()
	gemm := GemmCost(d, ConvGemmShape(cfg))
	gemm.Name = fmt.Sprintf("gemm-conv NCHW %s", cfg.String())
	if cfg.FH == 1 && cfg.FW == 1 && cfg.StrideH == 1 && cfg.StrideW == 1 && cfg.PadH == 0 && cfg.PadW == 0 {
		return []gpusim.KernelStats{gemm}
	}
	return []gpusim.KernelStats{Im2colCost(d, cfg), gemm}
}

// ConvGemmShape returns the GEMM dimensions of the unrolled convolution:
// M = Co, N = Ni*OutH*OutW, K = Ci*FH*FW.
func ConvGemmShape(cfg ConvConfig) GemmCostConfig {
	cfg = cfg.withDefaults()
	return GemmCostConfig{
		M: cfg.K,
		N: cfg.N * cfg.OutH() * cfg.OutW(),
		K: cfg.ReductionLength(),
	}
}

// ConvGemmWorkspaceBytes returns the device memory the GEMM path needs beyond
// input, output and filters (the unrolled matrix).
func ConvGemmWorkspaceBytes(cfg ConvConfig) int64 { return Im2colWorkspaceBytes(cfg) }
