package kernels

import (
	"fmt"

	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

// GEMM-based convolution: the Caffe / cuDNN implementation strategy for the
// NCHW layout (Section II.B).  The input is unrolled with im2col into a
// (C·FH·FW) × (N·OutH·OutW) matrix and the convolution becomes one SGEMM with
// the filter bank as the (K) × (C·FH·FW) left operand.  The strategy inherits
// matrix multiplication's robustness across layer shapes, but pays the
// unroll traffic and only reaches high efficiency once the merged matrix
// dimensions are large (Fig. 4b).

// ConvIm2colGemm is the functional reference for the NCHW GEMM convolution
// path.  Its output is numerically identical (up to float rounding) to
// ConvDirect; the cross-check is part of the test suite.
func ConvIm2colGemm(in, filters *tensor.Tensor, cfg ConvConfig, outLayout tensor.Layout) (*tensor.Tensor, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if in.Shape != cfg.InputShape() {
		return nil, fmt.Errorf("kernels: conv input shape %v does not match config %v", in.Shape, cfg.InputShape())
	}
	if filters.Shape != cfg.FilterShape() {
		return nil, fmt.Errorf("kernels: filter shape %v does not match config %v", filters.Shape, cfg.FilterShape())
	}

	// Unroll the input: rows = C*FH*FW, cols = N*OutH*OutW.
	unrolled, err := Im2col(in, cfg)
	if err != nil {
		return nil, err
	}

	// Flatten the filter bank to K x (C*FH*FW).  Filters are stored with
	// Co outermost (tensor.Filters), so the flattening is a straight copy in
	// logical order.
	kdim := cfg.ReductionLength()
	flatFilters := make([]float32, cfg.K*kdim)
	for k := 0; k < cfg.K; k++ {
		idx := k * kdim
		for c := 0; c < cfg.C; c++ {
			for fh := 0; fh < cfg.FH; fh++ {
				for fw := 0; fw < cfg.FW; fw++ {
					flatFilters[idx] = filters.At(k, c, fh, fw)
					idx++
				}
			}
		}
	}

	cols := cfg.N * cfg.OutH() * cfg.OutW()
	prod, err := Gemm(flatFilters, unrolled, cfg.K, cols, kdim)
	if err != nil {
		return nil, err
	}

	// Scatter the K x (N*OutH*OutW) product into the output tensor.
	out := tensor.New(cfg.OutputShape(), outLayout)
	outH, outW := cfg.OutH(), cfg.OutW()
	for k := 0; k < cfg.K; k++ {
		row := prod[k*cols : (k+1)*cols]
		col := 0
		for n := 0; n < cfg.N; n++ {
			for oh := 0; oh < outH; oh++ {
				for ow := 0; ow < outW; ow++ {
					out.Set(n, k, oh, ow, row[col])
					col++
				}
			}
		}
	}
	return out, nil
}

// ConvGemmNCHWCost returns the kernel sequence of the NCHW GEMM convolution:
// the im2col unroll followed by the SGEMM.  1×1 stride-1 convolutions skip
// the unroll, as Caffe and cuDNN do.
func ConvGemmNCHWCost(d *gpusim.Device, cfg ConvConfig) []gpusim.KernelStats {
	cfg = cfg.withDefaults()
	gemm := GemmCost(d, ConvGemmShape(cfg))
	gemm.Name = fmt.Sprintf("gemm-conv NCHW %s", cfg.String())
	if cfg.FH == 1 && cfg.FW == 1 && cfg.StrideH == 1 && cfg.StrideW == 1 && cfg.PadH == 0 && cfg.PadW == 0 {
		return []gpusim.KernelStats{gemm}
	}
	return []gpusim.KernelStats{Im2colCost(d, cfg), gemm}
}

// ConvGemmShape returns the GEMM dimensions of the unrolled convolution:
// M = Co, N = Ni*OutH*OutW, K = Ci*FH*FW.
func ConvGemmShape(cfg ConvConfig) GemmCostConfig {
	cfg = cfg.withDefaults()
	return GemmCostConfig{
		M: cfg.K,
		N: cfg.N * cfg.OutH() * cfg.OutW(),
		K: cfg.ReductionLength(),
	}
}

// ConvGemmWorkspaceBytes returns the device memory the GEMM path needs beyond
// input, output and filters (the unrolled matrix).
func ConvGemmWorkspaceBytes(cfg ConvConfig) int64 { return Im2colWorkspaceBytes(cfg) }
