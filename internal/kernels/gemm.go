package kernels

import (
	"fmt"
	"runtime"
	"sync"

	"memcnn/internal/gpusim"
)

// Blocked single-precision matrix multiplication.  It is the substrate for
// the Caffe/cuDNN convolution path (im2col + GEMM, Section II.B) and for the
// fully-connected layers, and its cost model encodes the paper's observation
// that the GEMM formulation only pays off once the merged matrix dimensions
// are large enough (Section IV.A, Fig. 4b).

// gemmBlock is the cache-blocking tile edge used by the CPU reference.
const gemmBlock = 64

// Gemm computes C = A·B for row-major dense matrices: A is m×k, B is k×n and
// the result C is m×n.  The multiplication is blocked and parallelised over
// row panels of C.
func Gemm(a []float32, b []float32, m, n, k int) ([]float32, error) {
	if m <= 0 || n <= 0 || k <= 0 {
		return nil, fmt.Errorf("kernels: gemm dims must be positive (m=%d n=%d k=%d)", m, n, k)
	}
	if len(a) != m*k {
		return nil, fmt.Errorf("kernels: gemm A has %d elements, want %d", len(a), m*k)
	}
	if len(b) != k*n {
		return nil, fmt.Errorf("kernels: gemm B has %d elements, want %d", len(b), k*n)
	}
	c := make([]float32, m*n)

	workers := runtime.GOMAXPROCS(0)
	if workers > m {
		workers = m
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * m / workers
		hi := (w + 1) * m / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			gemmPanel(a, b, c, lo, hi, n, k)
		}(lo, hi)
	}
	wg.Wait()
	return c, nil
}

// gemmPanel computes rows [lo,hi) of C with i-k-j loop order and k blocking,
// which keeps the B panel hot in cache and vectorises the inner j loop.
func gemmPanel(a, b, c []float32, lo, hi, n, k int) {
	for kb := 0; kb < k; kb += gemmBlock {
		kEnd := kb + gemmBlock
		if kEnd > k {
			kEnd = k
		}
		for i := lo; i < hi; i++ {
			cRow := c[i*n : (i+1)*n]
			aRow := a[i*k : (i+1)*k]
			for kk := kb; kk < kEnd; kk++ {
				av := aRow[kk]
				if av == 0 {
					continue
				}
				bRow := b[kk*n : (kk+1)*n]
				for j := range cRow {
					cRow[j] += av * bRow[j]
				}
			}
		}
	}
}

// GemmCostConfig describes the GEMM whose GPU cost is being modelled.
type GemmCostConfig struct {
	M, N, K int
}

// FLOPs returns 2*M*N*K.
func (g GemmCostConfig) FLOPs() float64 { return 2 * float64(g.M) * float64(g.N) * float64(g.K) }

// Saturation constants of the GEMM efficiency model.  They encode how quickly
// each matrix dimension has to grow before the tiled GPU GEMM reaches its
// asymptotic efficiency: the M and N dimensions feed thread-level parallelism
// and tile reuse, the K dimension amortises the tile loads over more FMAs.
// The K constant is the largest because a short reduction leaves most of each
// tile-load unamortised — the "matrix expansion leads to better data reuse"
// effect of Section IV.A only materialises once C·FH·FW is large.
const (
	gemmPeakFraction = 0.38 // asymptotic fraction of peak FLOPs for SGEMM-as-convolution
	gemmSatM         = 48.0
	gemmSatN         = 1500.0
	gemmSatK         = 338.0
	gemmMinEff       = 0.12 // floor: even degenerate GEMMs retain some throughput
	gemmTileEdge     = 64.0 // square thread-block tile edge used for traffic estimation
)

// GemmEfficiency returns the modelled fraction of device peak throughput an
// SGEMM of the given dimensions achieves when compute bound.
func GemmEfficiency(g GemmCostConfig) float64 {
	if g.M <= 0 || g.N <= 0 || g.K <= 0 {
		return gemmMinEff
	}
	effM := float64(g.M) / (float64(g.M) + gemmSatM)
	effN := float64(g.N) / (float64(g.N) + gemmSatN)
	effK := float64(g.K) / (float64(g.K) + gemmSatK)
	eff := gemmPeakFraction * effM * effN * effK
	if eff < gemmMinEff*gemmPeakFraction {
		eff = gemmMinEff * gemmPeakFraction
	}
	return eff
}

// GemmCost returns the kernel statistics of a tiled GPU SGEMM C(M×N) = A(M×K)·B(K×N).
func GemmCost(d *gpusim.Device, g GemmCostConfig) gpusim.KernelStats {
	aBytes := float64(g.M) * float64(g.K) * 4
	bBytes := float64(g.K) * float64(g.N) * 4
	cBytes := float64(g.M) * float64(g.N) * 4

	// With square tiles of edge T, the A panel is re-read N/T times and the B
	// panel M/T times.
	rereadA := float64(g.N) / gemmTileEdge
	if rereadA < 1 {
		rereadA = 1
	}
	rereadB := float64(g.M) / gemmTileEdge
	if rereadB < 1 {
		rereadB = 1
	}
	read := aBytes*rereadA + bBytes*rereadB
	// L2 captures part of the re-read traffic when the panels are small.
	if aBytes+bBytes < float64(d.L2CacheBytes) {
		read = aBytes + bBytes
	}

	tiles := ceilDiv(g.M, int(gemmTileEdge)) * ceilDiv(g.N, int(gemmTileEdge))
	return gpusim.KernelStats{
		Name:       fmt.Sprintf("sgemm %dx%dx%d", g.M, g.N, g.K),
		GridBlocks: tiles,
		Block: gpusim.BlockResources{
			ThreadsPerBlock: 256,
			RegsPerThread:   64,
			// Double-buffered A and B panels (64x8 each) staged through
			// shared memory; the bulk of the tile lives in registers.
			SharedMemPerBlock: 8 << 10,
		},
		Launches:          1,
		FLOPs:             g.FLOPs(),
		ComputeEfficiency: GemmEfficiency(g),
		DRAMReadBytes:     read,
		DRAMWriteBytes:    cBytes,
		UsefulReadBytes:   aBytes + bBytes,
		UsefulWriteBytes:  cBytes,
	}
}

func ceilDiv(a, b int) int {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}
