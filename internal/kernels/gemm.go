package kernels

import (
	"fmt"
	"runtime"
	"sync"

	"memcnn/internal/gpusim"
)

// Blocked single-precision matrix multiplication.  It is the substrate for
// the Caffe/cuDNN convolution path (im2col + GEMM, Section II.B) and for the
// fully-connected layers, and its cost model encodes the paper's observation
// that the GEMM formulation only pays off once the merged matrix dimensions
// are large enough (Section IV.A, Fig. 4b).

// Blocking parameters of the CPU GEMM.  The reduction dimension is processed
// in gemmKBlock slabs so the touched B panel stays cache resident, and inside
// a slab the micro-kernel holds a gemmMR×gemmNR tile of C in registers, which
// amortises every A and B load over four FMAs.
const (
	gemmKBlock = 256
	gemmMR     = 4
	gemmNR     = 4
)

// gemmCheck validates the operand dimensions shared by Gemm and GemmInto.
func gemmCheck(a, b []float32, m, n, k int) error {
	if m <= 0 || n <= 0 || k <= 0 {
		return fmt.Errorf("kernels: gemm dims must be positive (m=%d n=%d k=%d)", m, n, k)
	}
	if len(a) != m*k {
		return fmt.Errorf("kernels: gemm A has %d elements, want %d", len(a), m*k)
	}
	if len(b) != k*n {
		return fmt.Errorf("kernels: gemm B has %d elements, want %d", len(b), k*n)
	}
	return nil
}

// Gemm computes C = A·B for row-major dense matrices: A is m×k, B is k×n and
// the result C is m×n.
func Gemm(a []float32, b []float32, m, n, k int) ([]float32, error) {
	if err := gemmCheck(a, b, m, n, k); err != nil {
		return nil, err
	}
	c := make([]float32, m*n)
	if err := GemmInto(a, b, c, m, n, k); err != nil {
		return nil, err
	}
	return c, nil
}

// GemmInto computes C = A·B into the caller-provided slice c (length m×n,
// zeroed on entry by this function), performing no allocation itself.  The
// work is parallelised over gemmMR-aligned row panels of C; the accumulation
// order of every output element — ascending k, rounded to float32 at
// gemmKBlock boundaries — is fixed regardless of the panel split, so results
// are bit-identical across GOMAXPROCS settings and repeated runs.
//
//memcnn:noalloc
func GemmInto(a, b, c []float32, m, n, k int) error {
	if err := gemmCheck(a, b, m, n, k); err != nil {
		return err
	}
	if len(c) != m*n {
		return fmt.Errorf("kernels: gemm C has %d elements, want %d", len(c), m*n)
	}
	for i := range c {
		c[i] = 0
	}
	quads := (m + gemmMR - 1) / gemmMR
	workers := runtime.GOMAXPROCS(0)
	if workers > quads {
		workers = quads
	}
	if workers <= 1 {
		gemmPanel(a, b, c, 0, m, n, k)
		return nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := (w * quads / workers) * gemmMR
		hi := ((w + 1) * quads / workers) * gemmMR
		if hi > m {
			hi = m
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) { //memcnn:alloc-ok
			defer wg.Done()
			gemmPanel(a, b, c, lo, hi, n, k)
		}(lo, hi)
	}
	wg.Wait()
	return nil
}

// gemmPanel computes rows [lo,hi) of C, k-blocked so the B slab touched by a
// reduction pass stays in cache across the panel's row quads.
func gemmPanel(a, b, c []float32, lo, hi, n, k int) {
	for kb := 0; kb < k; kb += gemmKBlock {
		kEnd := kb + gemmKBlock
		if kEnd > k {
			kEnd = k
		}
		i := lo
		for ; i+gemmMR <= hi; i += gemmMR {
			gemmMicro4(a, b, c, i, n, k, kb, kEnd)
		}
		for ; i < hi; i++ {
			gemmMicro1(a, b, c, i, n, k, kb, kEnd)
		}
	}
}

// gemmMicro4 accumulates the partial products of reduction block [kb,kEnd)
// into the four C rows starting at i, walking the columns in gemmNR-wide
// tiles so sixteen accumulators live in registers through the inner loop.
func gemmMicro4(a, b, c []float32, i, n, k, kb, kEnd int) {
	a0 := a[(i+0)*k : (i+1)*k]
	a1 := a[(i+1)*k : (i+2)*k]
	a2 := a[(i+2)*k : (i+3)*k]
	a3 := a[(i+3)*k : (i+4)*k]
	c0 := c[(i+0)*n : (i+1)*n]
	c1 := c[(i+1)*n : (i+2)*n]
	c2 := c[(i+2)*n : (i+3)*n]
	c3 := c[(i+3)*n : (i+4)*n]
	j := 0
	for ; j+gemmNR <= n; j += gemmNR {
		s00, s01, s02, s03 := c0[j], c0[j+1], c0[j+2], c0[j+3]
		s10, s11, s12, s13 := c1[j], c1[j+1], c1[j+2], c1[j+3]
		s20, s21, s22, s23 := c2[j], c2[j+1], c2[j+2], c2[j+3]
		s30, s31, s32, s33 := c3[j], c3[j+1], c3[j+2], c3[j+3]
		for kk := kb; kk < kEnd; kk++ {
			off := kk*n + j
			b0, b1, b2, b3 := b[off], b[off+1], b[off+2], b[off+3]
			av := a0[kk]
			s00 += av * b0
			s01 += av * b1
			s02 += av * b2
			s03 += av * b3
			av = a1[kk]
			s10 += av * b0
			s11 += av * b1
			s12 += av * b2
			s13 += av * b3
			av = a2[kk]
			s20 += av * b0
			s21 += av * b1
			s22 += av * b2
			s23 += av * b3
			av = a3[kk]
			s30 += av * b0
			s31 += av * b1
			s32 += av * b2
			s33 += av * b3
		}
		c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
		c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
		c2[j], c2[j+1], c2[j+2], c2[j+3] = s20, s21, s22, s23
		c3[j], c3[j+1], c3[j+2], c3[j+3] = s30, s31, s32, s33
	}
	for ; j < n; j++ {
		s0, s1, s2, s3 := c0[j], c1[j], c2[j], c3[j]
		for kk := kb; kk < kEnd; kk++ {
			bv := b[kk*n+j]
			s0 += a0[kk] * bv
			s1 += a1[kk] * bv
			s2 += a2[kk] * bv
			s3 += a3[kk] * bv
		}
		c0[j], c1[j], c2[j], c3[j] = s0, s1, s2, s3
	}
}

// gemmMicro1 is the single-row remainder of gemmMicro4 with the identical
// per-element accumulation order.
func gemmMicro1(a, b, c []float32, i, n, k, kb, kEnd int) {
	aRow := a[i*k : (i+1)*k]
	cRow := c[i*n : (i+1)*n]
	j := 0
	for ; j+gemmNR <= n; j += gemmNR {
		s0, s1, s2, s3 := cRow[j], cRow[j+1], cRow[j+2], cRow[j+3]
		for kk := kb; kk < kEnd; kk++ {
			off := kk*n + j
			av := aRow[kk]
			s0 += av * b[off]
			s1 += av * b[off+1]
			s2 += av * b[off+2]
			s3 += av * b[off+3]
		}
		cRow[j], cRow[j+1], cRow[j+2], cRow[j+3] = s0, s1, s2, s3
	}
	for ; j < n; j++ {
		s := cRow[j]
		for kk := kb; kk < kEnd; kk++ {
			s += aRow[kk] * b[kk*n+j]
		}
		cRow[j] = s
	}
}

// GemmCostConfig describes the GEMM whose GPU cost is being modelled.
type GemmCostConfig struct {
	M, N, K int
}

// FLOPs returns 2*M*N*K.
func (g GemmCostConfig) FLOPs() float64 { return 2 * float64(g.M) * float64(g.N) * float64(g.K) }

// Saturation constants of the GEMM efficiency model.  They encode how quickly
// each matrix dimension has to grow before the tiled GPU GEMM reaches its
// asymptotic efficiency: the M and N dimensions feed thread-level parallelism
// and tile reuse, the K dimension amortises the tile loads over more FMAs.
// The K constant is the largest because a short reduction leaves most of each
// tile-load unamortised — the "matrix expansion leads to better data reuse"
// effect of Section IV.A only materialises once C·FH·FW is large.
const (
	gemmPeakFraction = 0.38 // asymptotic fraction of peak FLOPs for SGEMM-as-convolution
	gemmSatM         = 48.0
	gemmSatN         = 1500.0
	gemmSatK         = 338.0
	gemmMinEff       = 0.12 // floor: even degenerate GEMMs retain some throughput
	gemmTileEdge     = 64.0 // square thread-block tile edge used for traffic estimation
)

// GemmEfficiency returns the modelled fraction of device peak throughput an
// SGEMM of the given dimensions achieves when compute bound.
func GemmEfficiency(g GemmCostConfig) float64 {
	if g.M <= 0 || g.N <= 0 || g.K <= 0 {
		return gemmMinEff
	}
	effM := float64(g.M) / (float64(g.M) + gemmSatM)
	effN := float64(g.N) / (float64(g.N) + gemmSatN)
	effK := float64(g.K) / (float64(g.K) + gemmSatK)
	eff := gemmPeakFraction * effM * effN * effK
	if eff < gemmMinEff*gemmPeakFraction {
		eff = gemmMinEff * gemmPeakFraction
	}
	return eff
}

// GemmCost returns the kernel statistics of a tiled GPU SGEMM C(M×N) = A(M×K)·B(K×N).
func GemmCost(d *gpusim.Device, g GemmCostConfig) gpusim.KernelStats {
	aBytes := float64(g.M) * float64(g.K) * 4
	bBytes := float64(g.K) * float64(g.N) * 4
	cBytes := float64(g.M) * float64(g.N) * 4

	// With square tiles of edge T, the A panel is re-read N/T times and the B
	// panel M/T times.
	rereadA := float64(g.N) / gemmTileEdge
	if rereadA < 1 {
		rereadA = 1
	}
	rereadB := float64(g.M) / gemmTileEdge
	if rereadB < 1 {
		rereadB = 1
	}
	read := aBytes*rereadA + bBytes*rereadB
	// L2 captures part of the re-read traffic when the panels are small.
	if aBytes+bBytes < float64(d.L2CacheBytes) {
		read = aBytes + bBytes
	}

	tiles := ceilDiv(g.M, int(gemmTileEdge)) * ceilDiv(g.N, int(gemmTileEdge))
	return gpusim.KernelStats{
		Name:       fmt.Sprintf("sgemm %dx%dx%d", g.M, g.N, g.K),
		GridBlocks: tiles,
		Block: gpusim.BlockResources{
			ThreadsPerBlock: 256,
			RegsPerThread:   64,
			// Double-buffered A and B panels (64x8 each) staged through
			// shared memory; the bulk of the tile lives in registers.
			SharedMemPerBlock: 8 << 10,
		},
		Launches:          1,
		FLOPs:             g.FLOPs(),
		ComputeEfficiency: GemmEfficiency(g),
		DRAMReadBytes:     read,
		DRAMWriteBytes:    cBytes,
		UsefulReadBytes:   aBytes + bBytes,
		UsefulWriteBytes:  cBytes,
	}
}

func ceilDiv(a, b int) int {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}
