package kernels

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"

	"memcnn/internal/gpusim"
)

func naiveGemm(a, b []float32, m, n, k int) []float32 {
	c := make([]float32, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float64
			for kk := 0; kk < k; kk++ {
				acc += float64(a[i*k+kk]) * float64(b[kk*n+j])
			}
			c[i*n+j] = float32(acc)
		}
	}
	return c
}

func TestGemmMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cases := []struct{ m, n, k int }{
		{1, 1, 1}, {3, 5, 7}, {16, 16, 16}, {65, 130, 70}, {128, 33, 200}, {7, 257, 3},
	}
	for _, c := range cases {
		a := make([]float32, c.m*c.k)
		b := make([]float32, c.k*c.n)
		for i := range a {
			a[i] = float32(r.NormFloat64())
		}
		for i := range b {
			b[i] = float32(r.NormFloat64())
		}
		got, err := Gemm(a, b, c.m, c.n, c.k)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		want := naiveGemm(a, b, c.m, c.n, c.k)
		for i := range got {
			if math.Abs(float64(got[i]-want[i])) > 1e-3 {
				t.Fatalf("%+v: C[%d] = %v, want %v", c, i, got[i], want[i])
			}
		}
	}
}

func TestGemmIdentity(t *testing.T) {
	n := 8
	id := make([]float32, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	b := make([]float32, n*n)
	for i := range b {
		b[i] = float32(i)
	}
	got, err := Gemm(id, b, n, n, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if got[i] != b[i] {
			t.Fatalf("identity GEMM altered element %d", i)
		}
	}
}

// TestGemmIntoMatchesGemm checks the allocation-free entry point against the
// allocating wrapper (bit equality by construction) and its zero-on-entry
// contract on a dirty destination.
func TestGemmIntoMatchesGemm(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, c := range []struct{ m, n, k int }{
		{1, 1, 1}, {4, 4, 4}, {5, 6, 7}, {64, 64, 300}, {13, 257, 31}, {3, 2, 513},
	} {
		a := make([]float32, c.m*c.k)
		b := make([]float32, c.k*c.n)
		for i := range a {
			a[i] = float32(r.NormFloat64())
		}
		for i := range b {
			b[i] = float32(r.NormFloat64())
		}
		want, err := Gemm(a, b, c.m, c.n, c.k)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]float32, c.m*c.n)
		for i := range got {
			got[i] = float32(math.NaN()) // GemmInto must zero the destination
		}
		if err := GemmInto(a, b, got, c.m, c.n, c.k); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%+v: C[%d] = %v, want %v", c, i, got[i], want[i])
			}
		}
	}
	if err := GemmInto(make([]float32, 4), make([]float32, 4), make([]float32, 3), 2, 2, 2); err == nil {
		t.Error("wrong C size must be rejected")
	}
}

// TestGemmDeterministicAcrossWorkers pins the accumulation-order contract:
// the panel split must not change any output bit.
func TestGemmDeterministicAcrossWorkers(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	m, n, k := 37, 53, 419 // deliberately quad-unaligned
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	for i := range a {
		a[i] = float32(r.NormFloat64())
	}
	for i := range b {
		b[i] = float32(r.NormFloat64())
	}
	parallel, err := Gemm(a, b, m, n, k)
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(1)
	serial, err := Gemm(a, b, m, n, k)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	for i := range parallel {
		if parallel[i] != serial[i] {
			t.Fatalf("C[%d] differs across worker counts: %v vs %v", i, parallel[i], serial[i])
		}
	}
}

func TestGemmInputValidation(t *testing.T) {
	if _, err := Gemm(nil, nil, 0, 1, 1); err == nil {
		t.Error("zero m must be rejected")
	}
	if _, err := Gemm(make([]float32, 3), make([]float32, 4), 2, 2, 2); err == nil {
		t.Error("wrong A size must be rejected")
	}
	if _, err := Gemm(make([]float32, 4), make([]float32, 3), 2, 2, 2); err == nil {
		t.Error("wrong B size must be rejected")
	}
}

func TestGemmEfficiencyMonotoneInK(t *testing.T) {
	prev := 0.0
	for _, k := range []int{9, 27, 144, 288, 576, 1152, 2304, 4608} {
		eff := GemmEfficiency(GemmCostConfig{M: 384, N: 7744, K: k})
		if eff < prev {
			t.Errorf("efficiency decreased at K=%d: %v < %v", k, eff, prev)
		}
		if eff <= 0 || eff > 1 {
			t.Errorf("efficiency %v out of range at K=%d", eff, k)
		}
		prev = eff
	}
}

func TestGemmEfficiencyDegenerate(t *testing.T) {
	if eff := GemmEfficiency(GemmCostConfig{M: 0, N: 10, K: 10}); eff != gemmMinEff {
		t.Errorf("degenerate GEMM efficiency = %v, want floor %v", eff, gemmMinEff)
	}
	// The floor keeps even tiny GEMMs above zero throughput.
	small := GemmEfficiency(GemmCostConfig{M: 16, N: 100, K: 9})
	if small < gemmMinEff*gemmPeakFraction {
		t.Errorf("small GEMM efficiency %v fell below the floor", small)
	}
}

func TestGemmEfficiencyQuickProperties(t *testing.T) {
	f := func(m, n, k uint16) bool {
		g := GemmCostConfig{M: int(m%4096) + 1, N: int(n%8192) + 1, K: int(k%4096) + 1}
		eff := GemmEfficiency(g)
		return eff > 0 && eff <= gemmPeakFraction
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestGemmCostTrafficAndFLOPs(t *testing.T) {
	d := gpusim.TitanBlack()
	g := GemmCostConfig{M: 256, N: 4096, K: 1024}
	s := GemmCost(d, g)
	if s.FLOPs != g.FLOPs() {
		t.Errorf("FLOPs = %v, want %v", s.FLOPs, g.FLOPs())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("GemmCost stats invalid: %v", err)
	}
	if s.DRAMWriteBytes != float64(g.M*g.N)*4 {
		t.Errorf("write bytes = %v, want %v", s.DRAMWriteBytes, g.M*g.N*4)
	}
	if s.DRAMReadBytes < s.UsefulReadBytes {
		t.Error("moved read bytes must be at least the useful bytes")
	}
	// The kernel estimate must be finite and positive.
	kt := gpusim.EstimateTime(d, s)
	if kt.TotalUS <= 0 {
		t.Error("GEMM time must be positive")
	}
}

func TestGemmCostLargerProblemsTakeLonger(t *testing.T) {
	d := gpusim.TitanBlack()
	small := gpusim.EstimateTime(d, GemmCost(d, GemmCostConfig{M: 128, N: 1024, K: 256})).TotalUS
	large := gpusim.EstimateTime(d, GemmCost(d, GemmCostConfig{M: 512, N: 8192, K: 1024})).TotalUS
	if large <= small {
		t.Errorf("larger GEMM (%v us) should take longer than smaller (%v us)", large, small)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{{0, 4, 0}, {1, 4, 1}, {4, 4, 1}, {5, 4, 2}, {8, 4, 2}, {9, 4, 3}, {7, 0, 0}}
	for _, c := range cases {
		if got := ceilDiv(c.a, c.b); got != c.want {
			t.Errorf("ceilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func BenchmarkGemm256(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	m, n, k := 256, 256, 256
	a := make([]float32, m*k)
	bb := make([]float32, k*n)
	for i := range a {
		a[i] = float32(r.NormFloat64())
	}
	for i := range bb {
		bb[i] = float32(r.NormFloat64())
	}
	b.SetBytes(int64(2 * m * n * k))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Gemm(a, bb, m, n, k); err != nil {
			b.Fatal(err)
		}
	}
}
