package kernels

import (
	"fmt"

	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

// 4-D data-layout transformation kernels (Section IV.C, Fig. 7).  Moving a
// tensor between CHWN and NCHW is a transpose of the flattened
// [C·H·W] × [N] matrix; the three modelled variants are the paper's naive
// kernel, the flatten + shared-memory-tile kernel ("Opt1") and the float2
// vectorised kernel ("Opt2").
//
// The functional transformation itself is tensor.Convert; these models only
// describe the GPU cost of performing it.

// TransformMethod identifies one of the modelled transformation kernels.
type TransformMethod int

// The transformation kernels compared in Fig. 11.
const (
	// TransformNaive maps a 4-D thread hierarchy directly onto the tensor:
	// reads are coalesced but the writes of a warp are strided by C·H·W
	// elements (Fig. 7a).
	TransformNaive TransformMethod = iota
	// TransformTiled flattens C,H,W into one dimension and stages 32×32
	// tiles through shared memory so that both the loads and the stores are
	// coalesced (Fig. 7b, "Opt1").
	TransformTiled
	// TransformVectorized additionally packs two floats into a float2 and
	// uses the 8-byte shared-memory bank mode, raising the achieved fraction
	// of peak bandwidth ("Opt2").  It requires N >= 64.
	TransformVectorized
)

// String names the method.
func (m TransformMethod) String() string {
	switch m {
	case TransformNaive:
		return "naive"
	case TransformTiled:
		return "tiled (Opt1)"
	case TransformVectorized:
		return "vectorized (Opt2)"
	default:
		return fmt.Sprintf("TransformMethod(%d)", int(m))
	}
}

// Achievable fraction of the device's effective bandwidth for the two
// optimised kernels.  Opt1 runs the shared-memory transpose in 4-byte bank
// mode and loses some throughput to the staging and synchronisation; Opt2's
// float2 accesses double the bytes per transaction and reach 97–98% of the
// effective bandwidth (the paper measures 229.5 GB/s of 235 GB/s on CONV6).
const (
	transformTiledBWFraction      = 0.87
	transformVectorizedBWFraction = 0.975
	// TransformVectorizedMinBatch is the smallest batch size the vectorised
	// kernel supports (it packs pairs of images into float2 values).
	TransformVectorizedMinBatch = 64
)

// TransformApplicable reports whether the method can be used for the given
// shape (the vectorised kernel needs N >= 64).
func TransformApplicable(m TransformMethod, shape tensor.Shape) bool {
	if m == TransformVectorized {
		return shape.N >= TransformVectorizedMinBatch
	}
	return true
}

// TransformCost models moving one tensor of the given shape from layout
// `from` to layout `to` with the selected kernel.  Transforming to the same
// layout costs nothing.
func TransformCost(d *gpusim.Device, shape tensor.Shape, from, to tensor.Layout, m TransformMethod) (gpusim.KernelStats, error) {
	if !from.Valid() || !to.Valid() {
		return gpusim.KernelStats{}, fmt.Errorf("kernels: invalid layouts %v -> %v", from, to)
	}
	if !shape.Valid() {
		return gpusim.KernelStats{}, fmt.Errorf("kernels: invalid shape %v", shape)
	}
	if !TransformApplicable(m, shape) {
		return gpusim.KernelStats{}, fmt.Errorf("kernels: %v transform not applicable to shape %v (needs N >= %d)",
			m, shape, TransformVectorizedMinBatch)
	}
	name := fmt.Sprintf("transform %v->%v %v (%s)", from, to, shape, m)
	if from == to {
		return gpusim.KernelStats{Name: name, Launches: 0, ComputeEfficiency: 1}, nil
	}
	bytes := float64(shape.Bytes())

	var read, write float64
	var regs, smem, threads int
	switch m {
	case TransformNaive:
		// Reads follow the source's innermost dimension (coalesced); the
		// writes of a warp land one element into each destination row, i.e.
		// strided by the destination stride of the source's innermost
		// logical dimension.
		writeStride := destStrideOfSourceInnermost(shape, from, to)
		warp := gpusim.StridedWarp(0, writeStride, 4, d.WarpSize)
		eff := warp.Efficiency(d.TransactionBytes)
		read = bytes
		write = bytes / eff
		regs, smem, threads = 16, 0, 256
	case TransformTiled:
		read = bytes / transformTiledBWFraction
		write = bytes / transformTiledBWFraction
		regs, smem, threads = 28, 33*32*4*2, 256 // padded 32x33 float tile (two buffers worth)
	case TransformVectorized:
		read = bytes / transformVectorizedBWFraction
		write = bytes / transformVectorizedBWFraction
		regs, smem, threads = 32, 33*32*8, 256 // padded float2 tile
	}
	elems := shape.Elems()
	return gpusim.KernelStats{
		Name:              name,
		GridBlocks:        ceilDiv(elems, 1024),
		Block:             gpusim.BlockResources{ThreadsPerBlock: threads, RegsPerThread: regs, SharedMemPerBlock: smem},
		Launches:          1,
		FLOPs:             0,
		ComputeEfficiency: 1,
		DRAMReadBytes:     read,
		DRAMWriteBytes:    write,
		UsefulReadBytes:   bytes,
		UsefulWriteBytes:  bytes,
	}, nil
}

// destStrideOfSourceInnermost returns the element stride, in the destination
// layout, of the logical dimension that is innermost in the source layout.
// It is the distance between the writes of two adjacent threads of the naive
// kernel.
func destStrideOfSourceInnermost(shape tensor.Shape, from, to tensor.Layout) int {
	dn, dc, _, dw := shape.Strides(to)
	switch from {
	case tensor.NCHW:
		return dw
	case tensor.CHWN, tensor.HWCN:
		return dn
	case tensor.NHWC:
		return dc
	default:
		return dw
	}
}

// TransformWorkspaceBytes returns the extra memory the out-of-place transform
// needs: one destination copy of the tensor.  The paper measures this at less
// than 3% of the AlexNet footprint and frees it right after the transform.
func TransformWorkspaceBytes(shape tensor.Shape) int64 { return shape.Bytes() }

// BestTransform returns the fastest applicable transformation kernel for the
// shape, the policy the integrated framework uses when it has to move a
// tensor between layers with different preferred layouts.
func BestTransform(d *gpusim.Device, shape tensor.Shape, from, to tensor.Layout) (gpusim.KernelStats, TransformMethod, error) {
	best := TransformTiled
	bestStats, err := TransformCost(d, shape, from, to, TransformTiled)
	if err != nil {
		return gpusim.KernelStats{}, 0, err
	}
	if TransformApplicable(TransformVectorized, shape) {
		vec, err := TransformCost(d, shape, from, to, TransformVectorized)
		if err == nil && gpusim.EstimateTime(d, vec).TotalUS < gpusim.EstimateTime(d, bestStats).TotalUS {
			best, bestStats = TransformVectorized, vec
		}
	}
	return bestStats, best, nil
}
