package runtime

import (
	"fmt"
	"math/rand"
	"testing"

	"memcnn/internal/tensor"
)

// bruteForceValidate is the original O(n²) pairwise check, kept as the
// reference the sweep-based Validate is held against.
func bruteForceValidate(m *MemPlan, p *Program) error {
	for i := range p.Buffers {
		bi := p.Buffers[i]
		if m.Offsets[i] < 0 || m.Offsets[i]+bi.Elems() > m.ArenaElems {
			return fmt.Errorf("buffer %d outside arena", i)
		}
		if bi.AliasOf != NoBuffer {
			if m.Offsets[i] != m.Offsets[p.root(BufferID(i))] {
				return fmt.Errorf("alias %d offset mismatch", i)
			}
			continue
		}
		for j := i + 1; j < len(p.Buffers); j++ {
			bj := p.Buffers[j]
			if bj.AliasOf != NoBuffer || !m.Live[i].overlaps(m.Live[j]) {
				continue
			}
			if m.Offsets[i] < m.Offsets[j]+bj.Elems() && m.Offsets[j] < m.Offsets[i]+bi.Elems() {
				return fmt.Errorf("buffers %d and %d overlap", i, j)
			}
		}
	}
	return nil
}

// TestValidateSweepMatchesBruteForce fuzzes random plans — valid and broken —
// and checks the sweep's verdict (accept/reject) always matches the pairwise
// reference.  Offsets are drawn from a range narrow enough that collisions
// between concurrently-live buffers are common.
func TestValidateSweepMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(12)
		p := &Program{}
		m := &MemPlan{ArenaElems: 64}
		for i := 0; i < n; i++ {
			elems := 1 + rng.Intn(8)
			p.Buffers = append(p.Buffers, Buffer{
				ID:      BufferID(i),
				Shape:   tensor.Shape{N: 1, C: 1, H: 1, W: elems},
				Layout:  tensor.NCHW,
				AliasOf: NoBuffer,
			})
			def := rng.Intn(10)
			m.Live = append(m.Live, Interval{Def: def, LastUse: def + rng.Intn(6)})
			m.Offsets = append(m.Offsets, rng.Intn(24))
		}
		// Turn a few buffers into aliases of earlier ones — usually sharing
		// the root's offset (valid), occasionally not (must be rejected).
		for i := 1; i < n; i++ {
			if rng.Intn(5) != 0 {
				continue
			}
			r := rng.Intn(i)
			if p.Buffers[r].AliasOf != NoBuffer {
				continue
			}
			p.Buffers[i].AliasOf = BufferID(r)
			p.Buffers[i].Shape = p.Buffers[r].Shape
			if rng.Intn(4) != 0 {
				m.Offsets[i] = m.Offsets[r]
			}
			m.Live[i] = m.Live[r]
		}

		got := m.Validate(p)
		want := bruteForceValidate(m, p)
		if (got == nil) != (want == nil) {
			t.Fatalf("trial %d: sweep says %v, brute force says %v\nbuffers: %+v\noffsets: %v\nlive: %v",
				trial, got, want, p.Buffers, m.Offsets, m.Live)
		}
	}
}

// TestValidateSweepRejectsOverlap pins the exact diagnostic format on a
// hand-built overlapping plan: the message must name both buffers and their
// extents, as the original pairwise Validate did.
func TestValidateSweepRejectsOverlap(t *testing.T) {
	p := &Program{Buffers: []Buffer{
		{ID: 0, Shape: tensor.Shape{N: 1, C: 1, H: 1, W: 8}, Layout: tensor.NCHW, AliasOf: NoBuffer},
		{ID: 1, Shape: tensor.Shape{N: 1, C: 1, H: 1, W: 8}, Layout: tensor.NCHW, AliasOf: NoBuffer},
	}}
	m := &MemPlan{
		Offsets:    []int{0, 4},
		Live:       []Interval{{Def: 0, LastUse: 2}, {Def: 1, LastUse: 3}},
		ArenaElems: 16,
	}
	err := m.Validate(p)
	if err == nil {
		t.Fatal("overlapping live buffers accepted")
	}
	want := "runtime: live buffers 0 [0,8) and 1 [4,12) overlap"
	if err.Error() != want {
		t.Fatalf("diagnostic %q, want %q", err, want)
	}
}
