package runtime

import (
	"fmt"
	"runtime/debug"
	"time"
)

// Health is the state of one serving replica in the failover state machine:
//
//	Healthy ──(retries exhausted on a sub-batch)──▶ Unhealthy
//	Unhealthy ──(background probe succeeds)──▶ Healthy
//
// An Unhealthy replica receives no traffic — the group re-derives its batch
// split over the Healthy replicas — but keeps being probed in the background,
// so a replica that only suffered transient faults is re-admitted while a
// permanently dead one stays out.
type Health int32

// The health states.
const (
	Healthy Health = iota
	Unhealthy
)

// String names the health state.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Unhealthy:
		return "unhealthy"
	default:
		return fmt.Sprintf("Health(%d)", int32(h))
	}
}

// FaultStats aggregates the fault-tolerance counters of a serving engine:
// how often sub-batches were retried, how many replicas were failed over
// (marked unhealthy) and later re-admitted, and how many are unhealthy right
// now.  replica.Group implements FaultReporter; the batching server folds the
// snapshot into ServerStats so /stats surfaces the fleet's health.
type FaultStats struct {
	// Retries counts sub-batch re-executions after a transient failure
	// (successful or not).
	Retries uint64 `json:"retries"`
	// Failovers counts replicas marked unhealthy after exhausting their
	// retries.
	Failovers uint64 `json:"failovers"`
	// Readmissions counts unhealthy replicas restored by a successful
	// background probe.
	Readmissions uint64 `json:"readmissions"`
	// Panics counts panics recovered into errors inside the engine.
	Panics uint64 `json:"panics"`
	// UnhealthyReplicas is the number of replicas currently out of rotation.
	UnhealthyReplicas int `json:"unhealthy_replicas"`
}

// FaultReporter is implemented by runners that track fault-tolerance
// counters; the batching server queries it for ServerStats.
type FaultReporter interface {
	FaultStats() FaultStats
}

// PanicError is a panic recovered into an error by the crash-containment
// layer: a panicking op, stage or sub-batch fails its request — never the
// process.  The original panic value and stack are preserved for logs.
type PanicError struct {
	// Op names where the panic was contained ("executor", "pipeline stage 2").
	Op string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runtime: panic in %s: %v", e.Op, e.Value)
}

// containPanic recovers a pending panic into *errp as a *PanicError; use it
// as a deferred call in any goroutine that must not take the process down.
// An error already in *errp is preserved unless a panic is actually pending.
func containPanic(op string, errp *error) {
	if r := recover(); r != nil {
		*errp = &PanicError{Op: op, Value: r, Stack: debug.Stack()}
	}
}

// Backoff is a capped exponential retry delay: attempt 0 waits Base, each
// further attempt doubles it up to Max.  The zero value disables waiting.
type Backoff struct {
	Base time.Duration
	Max  time.Duration
}

// Delay returns the wait before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	d := b.Base
	for i := 0; i < attempt; i++ {
		d *= 2
		if b.Max > 0 && d >= b.Max {
			return b.Max
		}
	}
	if b.Max > 0 && d > b.Max {
		return b.Max
	}
	return d
}
