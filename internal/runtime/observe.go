package runtime

import (
	"fmt"
	"time"

	"memcnn/internal/layers"
	"memcnn/internal/obs"
)

// Observer bundles the observability sinks the runtime's hooks feed: a trace
// recorder (op/stage/replica/queue spans, exportable as Chrome trace JSON)
// and a metrics registry (latency histograms, throughput and fault counters,
// modeled-vs-measured drift).  Either field may be nil to enable only one
// sink; the zero Observer disables instrumentation entirely.
//
// One Observer is meant to be shared across the whole serving stack —
// executor, pipeline, replica group and batch server all recording into the
// same Recorder keeps every span in one coherent timebase, which is what
// makes pipeline overlap and replica skew visible in a trace viewer.
//
// Instrument methods must be called before the component serves traffic;
// the instrumented hot paths themselves are concurrency-safe and
// allocation-free.
type Observer struct {
	Trace   *obs.Recorder
	Metrics *obs.Registry
}

// Enabled reports whether the observer carries at least one sink.
func (ob Observer) Enabled() bool { return ob.Trace != nil || ob.Metrics != nil }

// Trace lanes: each component renders its spans on a virtual thread ("lane")
// of the shared recorder.  Lane 1 is the single-engine lane; pipeline stages
// and replicas fan out from their caller's lane base (stage i on base+i,
// replica r on base + r·stride); the batch server's workers use a high base
// so they never collide with engine lanes.
const (
	// LaneEngine is the default lane for a standalone executor or the first
	// pipeline stage.
	LaneEngine int32 = 1
	// laneServerBase is the first batch-server worker lane.
	laneServerBase int32 = 900
)

// Metric names the runtime registers.  All latency histograms observe
// microseconds.
const (
	metricOpLatency      = "memcnn_op_latency_us"
	metricRunLatency     = "memcnn_run_latency_us"
	metricStageLatency   = "memcnn_stage_latency_us"
	metricReplicaLatency = "memcnn_replica_latency_us"
	metricOpMeasured     = "memcnn_op_measured_us_total"
	metricOpModeled      = "memcnn_op_modeled_us_total"
)

// execObs is an executor's prebuilt instrumentation: one template span and
// one set of metric handles per op, resolved at Instrument time so the hot
// path performs no lookups and no allocation — recording an op is two clock
// reads, one ring write and one histogram increment.
type execObs struct {
	rec   *obs.Recorder
	epoch time.Time // fallback clock when only metrics are attached
	lane  int32

	runSpan obs.Span
	runHist *obs.Histogram

	ops []opObs
}

// opObs is the per-op slice of an execObs.
type opObs struct {
	span obs.Span
	hist *obs.Histogram
	// measured/modeled accumulate the drift channel for layer ops on modeled
	// (SimDevice-chained) devices; nil otherwise.
	measured *obs.FloatCounter
	modeled  *obs.FloatCounter
}

// newExecObs resolves the per-op templates and metric handles for a program
// on a device.
func newExecObs(prog *Program, dev Device, ob Observer, lane int32) *execObs {
	net := prog.Net.Name
	eo := &execObs{
		rec:   ob.Trace,
		epoch: time.Now(),
		lane:  lane,
		runSpan: obs.Span{
			Name:   net,
			Cat:    obs.CatRun,
			Lane:   lane,
			Images: prog.InputShape().N,
		},
		runHist: ob.Metrics.Histogram(metricRunLatency,
			"End-to-end planned program execution latency.", obs.L("net", net)),
		ops: make([]opObs, len(prog.Ops)),
	}
	modeled := SimOf(dev) != nil
	for i, op := range prog.Ops {
		o := &eo.ops[i]
		o.span = obs.Span{
			Name:   op.Name,
			Cat:    obs.CatOp,
			Lane:   lane,
			Kind:   op.Kind.String(),
			Layout: prog.Buffers[op.In].Layout.String(),
		}
		if _, ok := op.Layer.(layers.GemmForwarder); ok && op.Kind == OpLayer {
			o.span.Alg = op.Alg.String()
		}
		o.hist = ob.Metrics.Histogram(metricOpLatency,
			"Per-op execution latency by op kind.",
			obs.L("net", net), obs.L("kind", op.Kind.String()))
		if modeled && op.Kind == OpLayer {
			o.measured = ob.Metrics.FloatCounter(metricOpMeasured,
				"Measured wall time per layer op; divide memcnn_op_modeled_us_total by this for modeled-vs-measured drift.",
				obs.L("net", net), obs.L("op", op.Name))
			o.modeled = ob.Metrics.FloatCounter(metricOpModeled,
				"Modeled device time per layer op (SimDevice pricing).",
				obs.L("net", net), obs.L("op", op.Name))
		}
	}
	return eo
}

// now returns a span timestamp: the shared recorder's clock when tracing, a
// private monotonic clock when only metrics are attached.
func (eo *execObs) now() int64 {
	if eo.rec != nil {
		return eo.rec.Now()
	}
	return int64(time.Since(eo.epoch))
}

// observeOp records one executed op: its span (when tracing), its op-kind
// latency histogram, and the drift counters for modeled layer ops.
func (eo *execObs) observeOp(i int, t0 int64, modeledUS float64) {
	t1 := eo.now()
	o := &eo.ops[i]
	if eo.rec != nil {
		sp := o.span
		sp.StartNS, sp.DurNS, sp.ModeledUS = t0, t1-t0, modeledUS
		eo.rec.Record(sp)
	}
	us := float64(t1-t0) / 1e3
	o.hist.Observe(us)
	if o.measured != nil {
		o.measured.Add(us)
		o.modeled.Add(modeledUS)
	}
}

// observeRun records the whole-program span and run-latency histogram.
func (eo *execObs) observeRun(t0 int64, modeledUS float64) {
	t1 := eo.now()
	if eo.rec != nil {
		sp := eo.runSpan
		sp.StartNS, sp.DurNS, sp.ModeledUS = t0, t1-t0, modeledUS
		eo.rec.Record(sp)
	}
	eo.runHist.Observe(float64(t1-t0) / 1e3)
}

// DriftSample is one layer's accumulated modeled-vs-measured comparison,
// extracted from a metrics registry by DriftReport.
type DriftSample struct {
	Net        string
	Op         string
	MeasuredUS float64
	ModeledUS  float64
}

// Ratio returns measured/modeled — 1.0 means the hardware model prices the
// layer exactly; above 1 the layer runs slower than modeled.
func (d DriftSample) Ratio() float64 {
	if d.ModeledUS <= 0 {
		return 0
	}
	return d.MeasuredUS / d.ModeledUS
}

// DriftReport extracts the per-layer modeled-vs-measured drift channel from a
// registry: every layer op that executed on a modeled device chain, in
// registration (program) order.
func DriftReport(reg *obs.Registry) []DriftSample {
	if reg == nil {
		return nil
	}
	measured := map[string]*DriftSample{}
	var order []string
	for _, s := range reg.Snapshot() {
		if s.Name != metricOpMeasured && s.Name != metricOpModeled {
			continue
		}
		net, op := parseNetOpLabels(s.Labels)
		if op == "" {
			continue
		}
		key := net + "\x00" + op
		d, ok := measured[key]
		if !ok {
			d = &DriftSample{Net: net, Op: op}
			measured[key] = d
			order = append(order, key)
		}
		if s.Name == metricOpMeasured {
			d.MeasuredUS += s.Value
		} else {
			d.ModeledUS += s.Value
		}
	}
	out := make([]DriftSample, 0, len(order))
	for _, key := range order {
		out = append(out, *measured[key])
	}
	return out
}

// parseNetOpLabels pulls net="…" and op="…" out of a rendered label string.
func parseNetOpLabels(labels string) (net, op string) {
	// Labels are rendered by obs as `net="X",op="Y"`; values are %q-quoted.
	var rest string
	if _, err := fmt.Sscanf(labels, "net=%q,op=%q", &net, &rest); err == nil {
		return net, rest
	}
	return "", ""
}
