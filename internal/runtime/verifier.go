package runtime

import (
	"fmt"
	"sync/atomic"
)

// Verifier is a whole-program static checker over the compiled IR.  Exactly
// one implementation exists — internal/runtime/verify — but it lives in a
// sub-package that imports this one, so it registers itself through this hook
// at init time rather than being called directly.  Compiler entrypoints run
// the registered verifier when Options.Verify is set; the verify package's
// tests run it unconditionally over every compiler output.
type Verifier func(*Program) error

var verifier atomic.Pointer[Verifier]

// RegisterVerifier installs the whole-program static checker the compilers
// run behind Options.Verify.  Importing memcnn/internal/runtime/verify
// registers its checker; the last registration wins.
func RegisterVerifier(v Verifier) {
	verifier.Store(&v)
}

// VerifyProgram runs the registered static checker over a compiled program.
// It returns an error when no verifier is registered: a caller that asked for
// verification (Options.Verify) must not silently get none — import
// memcnn/internal/runtime/verify to register the checker.
func VerifyProgram(p *Program) error {
	if v := verifier.Load(); v != nil {
		return (*v)(p)
	}
	return fmt.Errorf("runtime: program verification requested but no verifier is registered (import memcnn/internal/runtime/verify)")
}
