package runtime_test

import (
	"os"
	goruntime "runtime"
	"testing"

	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/network"
	"memcnn/internal/runtime"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

// fftFlipNet builds a single-convolution network whose shape sits on both
// sides of the layout decision: small channel depth (C=8 < the CHWN channel
// threshold) makes the planner place it in CHWN for the direct kernel, while
// its 7x7 stride-1 filters at 1.3e10 FMAs put it squarely in the FFT regime,
// which runs in NCHW.
func fftFlipNet(t *testing.T) (*network.Network, *layers.Conv) {
	t.Helper()
	cfg := kernels.ConvConfig{N: 64, C: 8, H: 32, W: 32, K: 512, FH: 7, FW: 7, PadH: 3, PadW: 3}
	conv, err := layers.NewConv("conv-flip", cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	net, err := network.New("FlipNet", cfg.N, conv)
	if err != nil {
		t.Fatal(err)
	}
	return net, conv
}

// TestJointLayoutAlgorithmFlip checks the headline property of joint
// layout+algorithm selection: the same layer lands in a different layout
// depending on whether algorithm selection is on.  Without ConvAlgorithms the
// plan's CHWN assignment stands and the layer runs the direct kernel; with it,
// the compiler prices the FFT mode, flips the algorithm to FFT and the layout
// to NCHW in the same decision.
func TestJointLayoutAlgorithmFlip(t *testing.T) {
	net, conv := fftFlipNet(t)
	plan := &network.ExecutionPlan{
		PlannerName: "test",
		Network:     net,
		Device:      gpusim.TitanBlack(),
		Layers:      []network.PlannedLayer{{Layer: conv, Layout: tensor.CHWN}},
	}

	plain, err := runtime.Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	if ch := plain.ConvChoices()[0]; ch.Alg != kernels.ConvAlgDirect || ch.Layout != tensor.CHWN {
		t.Errorf("without algorithm selection: got %v/%v, want direct/CHWN", ch.Alg, ch.Layout)
	}

	joint, err := runtime.CompileWithOptions(plan, runtime.Options{ConvAlgorithms: true})
	if err != nil {
		t.Fatal(err)
	}
	if ch := joint.ConvChoices()[0]; ch.Alg != kernels.ConvAlgFFT || ch.Layout != tensor.NCHW {
		t.Errorf("with algorithm selection: got %v/%v, want fft/NCHW — the layout must flip with the algorithm",
			ch.Alg, ch.Layout)
	}
}

// TestHeuristicSelectionPicksFFT pins the joint sweep's decisions on the
// paper's workload networks at full batch: the ImageNet-scale models each
// compile with at least one FFT convolution (AlexNet conv2 through the
// analytic regime, ZFNet conv3-5 and VGG conv4_1 through priced promotion of
// a GEMM baseline), always in NCHW, while the small networks stay FFT-free.
func TestHeuristicSelectionPicksFFT(t *testing.T) {
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	wantFFT := map[string]bool{
		"LeNet":   false,
		"Cifar10": false,
		"AlexNet": true,
		"ZFNet":   true,
		"VGG":     true,
	}
	for name, want := range wantFFT {
		prog := mustCompileOpts(t, planners()[2], nets[name], runtime.Options{ConvAlgorithms: true})
		ffts := 0
		for _, ch := range prog.ConvChoices() {
			if ch.Alg != kernels.ConvAlgFFT {
				continue
			}
			ffts++
			if ch.Layout != tensor.NCHW {
				t.Errorf("%s %s: FFT selected in %v, the FFT kernel only prices in NCHW", name, ch.Layer, ch.Layout)
			}
			if ch.WorkspaceBytes == 0 {
				t.Errorf("%s %s: FFT selected without planned workspace", name, ch.Layer)
			}
		}
		if want && ffts == 0 {
			t.Errorf("%s: no FFT convolution selected, want at least one", name)
		}
		if !want && ffts > 0 {
			t.Errorf("%s: %d FFT convolutions selected, want none", name, ffts)
		}
	}
}

// TestCompileLikePinsFFT checks that rebatched clones inherit an FFT choice
// instead of re-selecting by the smaller batch shape — the same pinning the
// replica scheduler relies on for the GEMM path.
func TestCompileLikePinsFFT(t *testing.T) {
	net, conv := fftFlipNet(t)
	plan := &network.ExecutionPlan{
		PlannerName: "test",
		Network:     net,
		Device:      gpusim.TitanBlack(),
		Layers:      []network.PlannedLayer{{Layer: conv, Layout: tensor.CHWN}},
	}
	base, err := runtime.CompileWithOptions(plan, runtime.Options{ConvAlgorithms: true})
	if err != nil {
		t.Fatal(err)
	}
	if ch := base.ConvChoices()[0]; ch.Alg != kernels.ConvAlgFFT {
		t.Fatalf("base program selected %v, the test needs an FFT base", ch.Alg)
	}
	sub, err := net.WithBatch(2)
	if err != nil {
		t.Fatal(err)
	}
	clone, err := runtime.CompileLike(base, sub)
	if err != nil {
		t.Fatal(err)
	}
	if ch := clone.ConvChoices()[0]; ch.Alg != kernels.ConvAlgFFT || ch.Layout != tensor.NCHW {
		t.Errorf("rebatched clone: got %v/%v, want the base's fft/NCHW pinned", ch.Alg, ch.Layout)
	}
}

// TestFixedAlgorithmGolden holds every production convolution algorithm
// against ReferenceForward on the workload networks, with selection bypassed
// so each algorithm covers every convolution layer it can run.  The cheap
// networks run un-gated; the ImageNet-scale shapes (whose power-of-two FFT
// planes reach 256x256) join behind MEMCNN_GOLDEN_FULL.
func TestFixedAlgorithmGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("fixed-algorithm goldens run full convolutions; skipped with -short")
	}
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	cases := []*network.Network{nets["LeNet"]}
	cifarSmall, err := workloads.Cifar10WithBatch(16)
	if err != nil {
		t.Fatal(err)
	}
	cases = append(cases, cifarSmall)
	if os.Getenv("MEMCNN_GOLDEN_FULL") != "" {
		alexSmall, err := workloads.AlexNetWithBatch(4)
		if err != nil {
			t.Fatal(err)
		}
		zfSmall, err := workloads.ZFNetWithBatch(4)
		if err != nil {
			t.Fatal(err)
		}
		vggSmall, err := workloads.VGGWithBatch(1)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, alexSmall, zfSmall, vggSmall)
	}
	algs := []kernels.ConvAlgorithm{kernels.ConvAlgDirect, kernels.ConvAlgGemm, kernels.ConvAlgFFT}
	for _, net := range cases {
		in := tensor.Random(net.InputShape(), tensor.NCHW, 99)
		for _, alg := range algs {
			prog, err := runtime.CompileFixedAlg(net, tensor.NCHW, alg)
			if err != nil {
				t.Fatalf("%s/%v: %v", net.Name, alg, err)
			}
			for _, ch := range prog.ConvChoices() {
				if ch.Alg != alg {
					t.Fatalf("%s/%v: layer %s compiled with %v", net.Name, alg, ch.Layer, ch.Alg)
				}
			}
			want, err := prog.ReferenceForward(in)
			if err != nil {
				t.Fatalf("%s/%v: reference forward: %v", net.Name, alg, err)
			}
			got, err := runtime.NewExecutor(prog).Run(in)
			if err != nil {
				t.Fatalf("%s/%v: %v", net.Name, alg, err)
			}
			requireBitEqual(t, net.Name+"/"+alg.String(), got, want)
		}
	}
}

// TestFFTAllocFree checks the planned FFT path's allocation discipline: with
// the transforms running over caller-provided arena scratch, a warm executor
// performs zero steady-state heap allocations per run.  GOMAXPROCS is pinned
// to 1 so the kernel takes its serial path — the parallel path's only
// allocations are the goroutine fan-out the runtime documents as the one
// remaining source of steady-state heap traffic.
func TestFFTAllocFree(t *testing.T) {
	cfg := kernels.ConvConfig{N: 1, C: 2, H: 16, W: 16, K: 4, FH: 5, FW: 5, PadH: 2, PadW: 2}
	conv, err := layers.NewConv("conv-alloc", cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	net, err := network.New("AllocNet", cfg.N, conv)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := runtime.CompileFixedAlg(net, tensor.NCHW, kernels.ConvAlgFFT)
	if err != nil {
		t.Fatal(err)
	}
	exec := runtime.NewExecutor(prog)
	in := tensor.Random(prog.InputShape(), tensor.NCHW, 3)
	dst := tensor.New(prog.OutputShape(), tensor.NCHW)

	defer goruntime.GOMAXPROCS(goruntime.GOMAXPROCS(1))
	// Warm the instance pool so the measured runs reuse the arena.
	for i := 0; i < 2; i++ {
		if err := exec.RunInto(in, dst); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := exec.RunInto(in, dst); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("planned FFT run allocates %.1f objects per run, want 0", allocs)
	}
}
