package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"memcnn/internal/obs"
	"memcnn/internal/tensor"
)

// ErrServerClosed is returned for requests submitted to (or stranded in) a
// server that has been closed.
var ErrServerClosed = errors.New("runtime: server closed")

// ErrShed is returned by admission control: the queue is deep enough that the
// request's estimated wait would exceed the SLO horizon, so the server sheds
// it immediately instead of letting it time out in the queue — the caller
// learns in microseconds, not after a wasted deadline, and the queue never
// builds a backlog of requests that are already doomed.
var ErrShed = errors.New("runtime: request shed: queue wait would exceed the SLO horizon")

// ServerConfig tunes the micro-batching front-end.
type ServerConfig struct {
	// MaxBatch is the largest number of requests coalesced into one planned
	// execution.  It must not exceed the compiled network's batch size, which
	// is also the default.
	MaxBatch int
	// MaxDelay bounds how long a request waits for the batch to fill before
	// the server runs a padded partial batch.  Default 2ms.
	MaxDelay time.Duration
	// Workers is the number of concurrent batch executors.  Default 2.
	Workers int
	// QueueDepth is the request queue capacity.  Default 2·MaxBatch·Workers.
	QueueDepth int
	// CacheEntries bounds the serving-side result cache: per-image outputs
	// memoised by input checksum (LRU, single-flight), so repeated inputs
	// skip execution entirely.  0 (the default) disables the cache.
	CacheEntries int
	// SLO, when positive, is the per-request latency budget: every request
	// gets a deadline of SLO from admission (unless its own context expires
	// sooner), requests whose deadline passes while queued are failed with
	// context.DeadlineExceeded without occupying a batch slot, and admission
	// control sheds new requests with ErrShed when the queue is deep enough
	// that their estimated wait (p95 measured batch time x batches ahead)
	// would already exceed the budget.  0 (the default) disables deadlines
	// and shedding.
	SLO time.Duration
}

// withDefaults replaces unset (or non-positive) fields with their defaults.
func (c ServerConfig) withDefaults(batch int) ServerConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = batch
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxBatch * c.Workers
	}
	return c
}

// ServerStats is a snapshot of the server's batching behaviour.
type ServerStats struct {
	Requests     uint64  // single-image requests completed
	Batches      uint64  // planned executions performed
	Errors       uint64  // requests that failed
	LargestBatch uint64  // largest coalesced batch observed
	AvgBatch     float64 // mean requests per execution
	// Shed counts requests rejected by admission control (ErrShed) and
	// Expired requests whose deadline passed while they waited in the queue;
	// both are zero unless ServerConfig.SLO is set.  Neither is included in
	// Requests or Errors — they never reached an execution.
	Shed    uint64
	Expired uint64
	// Queue-wait and batch-execution latency quantiles, in microseconds, from
	// the server's always-on histograms (bucketed: values are bucket upper
	// bounds, relative error <= ~19%).  QueueWaitEstimateUS is the current
	// admission-control wait estimate — p95 batch time x batches queued ahead
	// / workers — which the measured QueueWaitP99US keeps honest.
	QueueWaitEstimateUS float64
	QueueWaitP50US      float64
	QueueWaitP99US      float64
	BatchP50US          float64
	BatchP99US          float64
	// Cache holds the result-cache counters when CacheEntries > 0; requests
	// served from the cache (or by joining an in-flight identical request)
	// never reach the batching queue, so they appear here and not in
	// Requests.
	Cache *CacheStats `json:",omitempty"`
	// Faults holds the serving engine's fault-tolerance counters when the
	// runner reports them (replica.Group: retries, failovers, re-admissions,
	// replicas currently unhealthy).
	Faults *FaultStats `json:",omitempty"`
}

type response struct {
	out *tensor.Tensor
	err error
}

type request struct {
	ctx  context.Context
	img  *tensor.Tensor
	resp chan response
	enq  time.Time // when the request entered the queue
}

// Runner executes a compiled program on one input batch.  The single-device
// Executor, the sharded PipelineExecutor and the data-parallel replica.Group
// all implement it, which is how the batching server serves any engine.
// RunIntoCtx is the context-aware path: cancellation and deadlines propagate
// into the engine (between ops, between pipeline stages, into replica
// sub-batches) instead of stopping at the server queue.  Either way dst is
// only valid when the returned error is nil, and the engine must not write
// dst after returning.
type Runner interface {
	RunInto(in, dst *tensor.Tensor) error
	RunIntoCtx(ctx context.Context, in, dst *tensor.Tensor) error
}

// NewServer starts the workers for a compiled program on the single-device
// executor.
func NewServer(prog *Program, cfg ServerConfig) (*BatchServer, error) {
	return NewServerWith(prog, NewExecutor(prog), cfg)
}

// NewServerWith starts the workers for a compiled program on an explicit
// runner — e.g. a PipelineExecutor streaming batches across sharded devices,
// whose stages the concurrent workers keep filled.  The runner's lifetime is
// the caller's: Close stops the workers but not the runner.
func NewServerWith(prog *Program, run Runner, cfg ServerConfig) (*BatchServer, error) {
	in := prog.InputShape()
	cfg = cfg.withDefaults(in.N)
	if cfg.MaxBatch > in.N {
		return nil, fmt.Errorf("runtime: MaxBatch %d exceeds the network batch %d", cfg.MaxBatch, in.N)
	}
	s := &BatchServer{
		prog:      prog,
		exec:      run,
		cfg:       cfg,
		reqs:      make(chan *request, cfg.QueueDepth),
		stop:      make(chan struct{}),
		queueWait: obs.NewHistogram(),
		batchLat:  obs.NewHistogram(),
		reqLat:    obs.NewHistogram(),
	}
	if cfg.CacheEntries > 0 {
		cache, err := NewResultCache(cfg.CacheEntries)
		if err != nil {
			return nil, err
		}
		s.cache = cache
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(i)
	}
	return s, nil
}

// BatchServer is a concurrent batched-inference front-end over a compiled
// program: single-image requests are queued, coalesced into batches of up to
// MaxBatch images (waiting at most MaxDelay), padded to the network's batch
// size and run through the planned executor.  Every layer processes images
// independently, so padded slots cannot perturb real results.  An optional
// checksum-keyed result cache sits in front of the queue (ServerConfig.
// CacheEntries), short-circuiting repeated and concurrent-identical inputs.
// With ServerConfig.SLO the server enforces per-request deadlines and sheds
// load it cannot serve in time (see ServerConfig.SLO and ErrShed).
type BatchServer struct {
	prog  *Program
	exec  Runner
	cfg   ServerConfig
	cache *ResultCache // nil unless CacheEntries > 0

	reqs chan *request
	stop chan struct{}
	wg   sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	requests     atomic.Uint64
	batches      atomic.Uint64
	errors       atomic.Uint64
	largestBatch atomic.Uint64
	shed         atomic.Uint64
	expired      atomic.Uint64

	// The server's always-on latency histograms: per-request queue wait,
	// successful batch execution time (feeding the admission-control wait
	// estimate, which used to be an opaque EWMA) and end-to-end request
	// latency.  Instrument surfaces them in a metrics registry; Stats reads
	// quantiles from them either way.
	queueWait *obs.Histogram
	batchLat  *obs.Histogram
	reqLat    *obs.Histogram
	// trace, when set by Instrument, receives queue-wait/coalesce/batch spans
	// on per-worker lanes.
	trace atomic.Pointer[obs.Recorder]
}

// Config returns the effective (defaulted) configuration.
func (s *BatchServer) Config() ServerConfig { return s.cfg }

// Infer submits one image — shape {1,C,H,W} for a network consuming
// {B,C,H,W} — and blocks until its result, a {1,classes…} tensor in NCHW
// layout, is ready or the context is cancelled.  With CacheEntries > 0 the
// result cache is consulted first: a repeated input returns its memoised
// output without execution, and concurrent identical inputs share one
// execution (single-flight).  With SLO > 0 the request runs under a deadline
// of SLO from now (or the context's own deadline, whichever is sooner) and
// may be shed with ErrShed before queueing.
func (s *BatchServer) Infer(ctx context.Context, img *tensor.Tensor) (*tensor.Tensor, error) {
	in := s.prog.InputShape()
	want := tensor.Shape{N: 1, C: in.C, H: in.H, W: in.W}
	if img.Shape != want {
		return nil, fmt.Errorf("runtime: request shape %v, want %v", img.Shape, want)
	}
	if s.cfg.SLO > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, time.Now().Add(s.cfg.SLO))
		defer cancel()
	}
	if s.cache == nil {
		return s.submit(ctx, img)
	}
	return s.cache.Do(ctx, ImageChecksum(img), func() (*tensor.Tensor, error) {
		return s.submit(ctx, img)
	})
}

// admissionWait estimates how long a request entering the queue now will wait
// before its batch starts: the batches already queued ahead of it, divided
// over the workers, each taking the p95 measured batch time from the batch
// histogram.  Zero until the first batch has been measured.  Using a high
// quantile (rather than the old EWMA of recent batches) makes the estimate
// conservative under bimodal batch times — the regime where an optimistic
// mean admits requests that then blow their SLO in the queue.
func (s *BatchServer) admissionWait() time.Duration {
	per := s.batchLat.Quantile(0.95) // microseconds
	if per <= 0 {
		return 0
	}
	batchesAhead := len(s.reqs) / s.cfg.MaxBatch
	return time.Duration(per * float64(batchesAhead) / float64(s.cfg.Workers) * 1e3)
}

// submit queues one validated image for batching and waits for its result.
func (s *BatchServer) submit(ctx context.Context, img *tensor.Tensor) (*tensor.Tensor, error) {
	if s.cfg.SLO > 0 && s.admissionWait() > s.cfg.SLO {
		s.shed.Add(1)
		return nil, ErrShed
	}
	r := &request{ctx: ctx, img: img, resp: make(chan response, 1), enq: time.Now()}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrServerClosed
	}
	select {
	case s.reqs <- r:
		s.mu.RUnlock()
	case <-ctx.Done():
		s.mu.RUnlock()
		return nil, ctx.Err()
	}
	select {
	case resp := <-r.resp:
		s.reqLat.Observe(float64(time.Since(r.enq)) / 1e3)
		return resp.out, resp.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Stats returns a snapshot of the batching counters.
func (s *BatchServer) Stats() ServerStats {
	st := ServerStats{
		Requests:            s.requests.Load(),
		Batches:             s.batches.Load(),
		Errors:              s.errors.Load(),
		LargestBatch:        s.largestBatch.Load(),
		Shed:                s.shed.Load(),
		Expired:             s.expired.Load(),
		QueueWaitEstimateUS: float64(s.admissionWait()) / 1e3,
		QueueWaitP50US:      s.queueWait.Quantile(0.50),
		QueueWaitP99US:      s.queueWait.Quantile(0.99),
		BatchP50US:          s.batchLat.Quantile(0.50),
		BatchP99US:          s.batchLat.Quantile(0.99),
	}
	if st.Batches > 0 {
		st.AvgBatch = float64(st.Requests) / float64(st.Batches)
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.Cache = &cs
	}
	if fr, ok := s.exec.(FaultReporter); ok {
		fs := fr.FaultStats()
		st.Faults = &fs
	}
	return st
}

// Cache returns the serving-side result cache, nil when disabled.
func (s *BatchServer) Cache() *ResultCache { return s.cache }

// Instrument attaches an observer to the server.  With a trace recorder,
// every coalesced batch records a queue-wait span (admission of its oldest
// request to dispatch), a coalesce span (first arrival at the worker to
// batch assembly) and a batch span (planned execution), on per-worker lanes.
// With a metrics registry, the server's always-on histograms (queue wait,
// batch latency, request latency) are adopted into it and every ServerStats
// counter — including the cache and fault-tolerance counters — is exported
// as a counter/gauge function reading the same atomics Stats reads, so
// /metrics and /stats can never disagree.  Call before serving traffic; a
// zero Observer detaches the tracer (metrics registrations persist).
func (s *BatchServer) Instrument(ob Observer) {
	if ob.Trace != nil {
		for i := 0; i < s.cfg.Workers; i++ {
			ob.Trace.SetLane(laneServerBase+int32(i), fmt.Sprintf("server w%d", i))
		}
	}
	s.trace.Store(ob.Trace)
	reg := ob.Metrics
	if reg == nil {
		return
	}
	netL := obs.L("net", s.prog.Net.Name)
	reg.AdoptHistogram("memcnn_queue_wait_us",
		"Time requests spent in the batching queue before dispatch.", s.queueWait, netL)
	reg.AdoptHistogram("memcnn_batch_latency_us",
		"Successful coalesced-batch execution latency (feeds admission control).", s.batchLat, netL)
	reg.AdoptHistogram("memcnn_request_latency_us",
		"End-to-end single-image request latency through the batching server.", s.reqLat, netL)
	reg.CounterFunc("memcnn_requests_total",
		"Single-image requests completed (success or error).",
		func() float64 { return float64(s.requests.Load()) }, netL)
	reg.CounterFunc("memcnn_batches_total",
		"Planned batch executions performed.",
		func() float64 { return float64(s.batches.Load()) }, netL)
	reg.CounterFunc("memcnn_request_errors_total",
		"Requests that failed inside an execution.",
		func() float64 { return float64(s.errors.Load()) }, netL)
	reg.CounterFunc("memcnn_shed_total",
		"Requests rejected by SLO admission control (ErrShed).",
		func() float64 { return float64(s.shed.Load()) }, netL)
	reg.CounterFunc("memcnn_expired_total",
		"Requests whose deadline passed while queued.",
		func() float64 { return float64(s.expired.Load()) }, netL)
	if s.cache != nil {
		reg.CounterFunc("memcnn_cache_hits_total",
			"Result-cache hits (including single-flight joins).",
			func() float64 { return float64(s.cache.Stats().Hits) }, netL)
		reg.CounterFunc("memcnn_cache_misses_total",
			"Result-cache misses.",
			func() float64 { return float64(s.cache.Stats().Misses) }, netL)
		reg.CounterFunc("memcnn_cache_evictions_total",
			"Result-cache LRU evictions.",
			func() float64 { return float64(s.cache.Stats().Evictions) }, netL)
	}
	if fr, ok := s.exec.(FaultReporter); ok {
		reg.CounterFunc("memcnn_fault_retries_total",
			"Sub-batch re-executions after transient failures.",
			func() float64 { return float64(fr.FaultStats().Retries) }, netL)
		reg.CounterFunc("memcnn_fault_failovers_total",
			"Replicas marked unhealthy after exhausting retries.",
			func() float64 { return float64(fr.FaultStats().Failovers) }, netL)
		reg.CounterFunc("memcnn_fault_readmissions_total",
			"Unhealthy replicas restored by a successful probe.",
			func() float64 { return float64(fr.FaultStats().Readmissions) }, netL)
		reg.CounterFunc("memcnn_fault_panics_total",
			"Panics recovered into errors inside the engine.",
			func() float64 { return float64(fr.FaultStats().Panics) }, netL)
		reg.GaugeFunc("memcnn_unhealthy_replicas",
			"Replicas currently out of rotation.",
			func() float64 { return float64(fr.FaultStats().UnhealthyReplicas) }, netL)
	}
}

// Close stops the workers and fails any queued requests with
// ErrServerClosed.  It is idempotent.
func (s *BatchServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	for {
		select {
		case r := <-s.reqs:
			r.resp <- response{err: ErrServerClosed}
		default:
			return
		}
	}
}

// worker coalesces and executes batches until the server closes.  A panic
// escaping the runner (contained panics surface as *PanicError already) is
// recovered here as a last line of defence: it fails the batch, never the
// worker or the process.
func (s *BatchServer) worker(id int) {
	defer s.wg.Done()
	lane := laneServerBase + int32(id)
	inBatch := tensor.New(s.prog.InputShape(), tensor.NCHW)
	outBatch := tensor.New(s.prog.OutputShape(), tensor.NCHW)
	batch := make([]*request, 0, s.cfg.MaxBatch)
	timer := time.NewTimer(time.Hour)
	stopTimer(timer)
	for {
		select {
		case <-s.stop:
			return
		case r := <-s.reqs:
			rec := s.trace.Load()
			var coalesceT0 int64
			if rec != nil {
				coalesceT0 = rec.Now()
			}
			batch = append(batch[:0], r)
			if s.cfg.MaxBatch > 1 {
				timer.Reset(s.cfg.MaxDelay)
			collect:
				for len(batch) < s.cfg.MaxBatch {
					select {
					case r2 := <-s.reqs:
						batch = append(batch, r2)
					case <-timer.C:
						break collect
					case <-s.stop:
						// Serve what we already accepted, then exit above.
						break collect
					}
				}
				stopTimer(timer)
			}
			// Drop requests whose context died while they queued: their
			// callers are already gone, so spending a batch slot on them
			// would only delay live requests.
			live := batch[:0]
			for _, r := range batch {
				if err := r.ctx.Err(); err != nil {
					s.expired.Add(1)
					r.resp <- response{err: err}
					continue
				}
				live = append(live, r)
			}
			if len(live) > 0 {
				// Record each request's queue wait; the span covers the
				// oldest request's wait so the trace shows how long the
				// batch's slowest admission sat before dispatch.
				now := time.Now()
				var oldest time.Duration
				for _, r := range live {
					w := now.Sub(r.enq)
					if w > oldest {
						oldest = w
					}
					s.queueWait.Observe(float64(w) / 1e3)
				}
				if rec != nil {
					t1 := rec.Now()
					rec.Record(obs.Span{
						Name: "queue wait", Cat: obs.CatQueue, Lane: lane,
						StartNS: t1 - int64(oldest), DurNS: int64(oldest),
						Images: len(live),
					})
					rec.Record(obs.Span{
						Name: "coalesce", Cat: obs.CatCoalesce, Lane: lane,
						StartNS: coalesceT0, DurNS: t1 - coalesceT0,
						Images: len(live),
					})
				}
				s.serveBatch(lane, inBatch, outBatch, live)
			}
		}
	}
}

// stopTimer stops a timer and drains a pending fire so Reset is safe.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// batchContext derives the context one coalesced execution runs under: no
// deadline when any request is deadline-free, otherwise the latest deadline
// across the batch — the execution serves every request in it, so it may
// only be abandoned once all of them are past saving.
func batchContext(batch []*request) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, r := range batch {
		d, ok := r.ctx.Deadline()
		if !ok {
			return context.Background(), func() {}
		}
		if d.After(latest) {
			latest = d
		}
	}
	return context.WithDeadline(context.Background(), latest)
}

// serveBatch packs the requests into the staging batch, runs the planned
// program once and slices the results back out per request.
func (s *BatchServer) serveBatch(lane int32, inBatch, outBatch *tensor.Tensor, batch []*request) {
	in := s.prog.InputShape()
	chw := in.C * in.H * in.W
	for slot, r := range batch {
		packImage(inBatch.Data[slot*chw:(slot+1)*chw], r.img)
	}
	// Zero the padding slots: stale activations from a previous batch must
	// not leak between requests (values cannot, but padded garbage could
	// overflow to Inf/NaN inside its own image; zeros keep every run tame).
	clear(inBatch.Data[len(batch)*chw:])

	runCtx, cancel := batchContext(batch)
	rec := s.trace.Load()
	var batchT0 int64
	if rec != nil {
		batchT0 = rec.Now()
	}
	start := time.Now()
	err := func() (err error) {
		defer containPanic("server batch", &err)
		return s.exec.RunIntoCtx(runCtx, inBatch, outBatch)
	}()
	elapsed := time.Since(start)
	cancel()
	if err == nil {
		// Feed the admission-control estimate from successful batches only;
		// failed ones (faults, cancellations) do not measure capacity.
		s.batchLat.Observe(float64(elapsed) / 1e3)
	}
	if rec != nil {
		rec.Record(obs.Span{
			Name: "batch", Cat: obs.CatBatch, Lane: lane,
			StartNS: batchT0, DurNS: int64(elapsed),
			Images: len(batch),
		})
	}
	s.batches.Add(1)
	s.requests.Add(uint64(len(batch)))
	for {
		cur := s.largestBatch.Load()
		if uint64(len(batch)) <= cur || s.largestBatch.CompareAndSwap(cur, uint64(len(batch))) {
			break
		}
	}
	if err != nil {
		s.errors.Add(uint64(len(batch)))
		for _, r := range batch {
			r.resp <- response{err: err}
		}
		return
	}
	out := s.prog.OutputShape()
	perImage := out.C * out.H * out.W
	for slot, r := range batch {
		res := tensor.New(tensor.Shape{N: 1, C: out.C, H: out.H, W: out.W}, tensor.NCHW)
		copy(res.Data, outBatch.Data[slot*perImage:(slot+1)*perImage])
		r.resp <- response{out: res}
	}
}

// packImage writes one {1,C,H,W} request image into an NCHW batch slot.  With
// N = 1 the NCHW and CHWN linearisations coincide, so both copy directly; the
// channel-interleaved layouts are gathered element-wise.
func packImage(dst []float32, img *tensor.Tensor) {
	if img.Layout == tensor.NCHW || img.Layout == tensor.CHWN {
		copy(dst, img.Data)
		return
	}
	s := img.Shape
	i := 0
	for c := 0; c < s.C; c++ {
		for h := 0; h < s.H; h++ {
			for w := 0; w < s.W; w++ {
				dst[i] = img.At(0, c, h, w)
				i++
			}
		}
	}
}
