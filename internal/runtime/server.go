package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"memcnn/internal/tensor"
)

// ErrServerClosed is returned for requests submitted to (or stranded in) a
// server that has been closed.
var ErrServerClosed = errors.New("runtime: server closed")

// ServerConfig tunes the micro-batching front-end.
type ServerConfig struct {
	// MaxBatch is the largest number of requests coalesced into one planned
	// execution.  It must not exceed the compiled network's batch size, which
	// is also the default.
	MaxBatch int
	// MaxDelay bounds how long a request waits for the batch to fill before
	// the server runs a padded partial batch.  Default 2ms.
	MaxDelay time.Duration
	// Workers is the number of concurrent batch executors.  Default 2.
	Workers int
	// QueueDepth is the request queue capacity.  Default 2·MaxBatch·Workers.
	QueueDepth int
	// CacheEntries bounds the serving-side result cache: per-image outputs
	// memoised by input checksum (LRU, single-flight), so repeated inputs
	// skip execution entirely.  0 (the default) disables the cache.
	CacheEntries int
}

// withDefaults replaces unset (or non-positive) fields with their defaults.
func (c ServerConfig) withDefaults(batch int) ServerConfig {
	if c.MaxBatch <= 0 {
		c.MaxBatch = batch
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.MaxBatch * c.Workers
	}
	return c
}

// ServerStats is a snapshot of the server's batching behaviour.
type ServerStats struct {
	Requests     uint64  // single-image requests completed
	Batches      uint64  // planned executions performed
	Errors       uint64  // requests that failed
	LargestBatch uint64  // largest coalesced batch observed
	AvgBatch     float64 // mean requests per execution
	// Cache holds the result-cache counters when CacheEntries > 0; requests
	// served from the cache (or by joining an in-flight identical request)
	// never reach the batching queue, so they appear here and not in
	// Requests.
	Cache *CacheStats `json:",omitempty"`
}

type response struct {
	out *tensor.Tensor
	err error
}

type request struct {
	img  *tensor.Tensor
	resp chan response
}

// Runner executes a compiled program on one input batch.  The single-device
// Executor and the sharded PipelineExecutor both implement it, which is how
// the batching server serves either engine.
type Runner interface {
	RunInto(in, dst *tensor.Tensor) error
}

// NewServer starts the workers for a compiled program on the single-device
// executor.
func NewServer(prog *Program, cfg ServerConfig) (*BatchServer, error) {
	return NewServerWith(prog, NewExecutor(prog), cfg)
}

// NewServerWith starts the workers for a compiled program on an explicit
// runner — e.g. a PipelineExecutor streaming batches across sharded devices,
// whose stages the concurrent workers keep filled.  The runner's lifetime is
// the caller's: Close stops the workers but not the runner.
func NewServerWith(prog *Program, run Runner, cfg ServerConfig) (*BatchServer, error) {
	in := prog.InputShape()
	cfg = cfg.withDefaults(in.N)
	if cfg.MaxBatch > in.N {
		return nil, fmt.Errorf("runtime: MaxBatch %d exceeds the network batch %d", cfg.MaxBatch, in.N)
	}
	s := &BatchServer{
		prog: prog,
		exec: run,
		cfg:  cfg,
		reqs: make(chan *request, cfg.QueueDepth),
		stop: make(chan struct{}),
	}
	if cfg.CacheEntries > 0 {
		cache, err := NewResultCache(cfg.CacheEntries)
		if err != nil {
			return nil, err
		}
		s.cache = cache
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// BatchServer is a concurrent batched-inference front-end over a compiled
// program: single-image requests are queued, coalesced into batches of up to
// MaxBatch images (waiting at most MaxDelay), padded to the network's batch
// size and run through the planned executor.  Every layer processes images
// independently, so padded slots cannot perturb real results.  An optional
// checksum-keyed result cache sits in front of the queue (ServerConfig.
// CacheEntries), short-circuiting repeated and concurrent-identical inputs.
type BatchServer struct {
	prog  *Program
	exec  Runner
	cfg   ServerConfig
	cache *ResultCache // nil unless CacheEntries > 0

	reqs chan *request
	stop chan struct{}
	wg   sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	requests     atomic.Uint64
	batches      atomic.Uint64
	errors       atomic.Uint64
	largestBatch atomic.Uint64
}

// Config returns the effective (defaulted) configuration.
func (s *BatchServer) Config() ServerConfig { return s.cfg }

// Infer submits one image — shape {1,C,H,W} for a network consuming
// {B,C,H,W} — and blocks until its result, a {1,classes…} tensor in NCHW
// layout, is ready or the context is cancelled.  With CacheEntries > 0 the
// result cache is consulted first: a repeated input returns its memoised
// output without execution, and concurrent identical inputs share one
// execution (single-flight).
func (s *BatchServer) Infer(ctx context.Context, img *tensor.Tensor) (*tensor.Tensor, error) {
	in := s.prog.InputShape()
	want := tensor.Shape{N: 1, C: in.C, H: in.H, W: in.W}
	if img.Shape != want {
		return nil, fmt.Errorf("runtime: request shape %v, want %v", img.Shape, want)
	}
	if s.cache == nil {
		return s.submit(ctx, img)
	}
	return s.cache.Do(ctx, ImageChecksum(img), func() (*tensor.Tensor, error) {
		return s.submit(ctx, img)
	})
}

// submit queues one validated image for batching and waits for its result.
func (s *BatchServer) submit(ctx context.Context, img *tensor.Tensor) (*tensor.Tensor, error) {
	r := &request{img: img, resp: make(chan response, 1)}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrServerClosed
	}
	select {
	case s.reqs <- r:
		s.mu.RUnlock()
	case <-ctx.Done():
		s.mu.RUnlock()
		return nil, ctx.Err()
	}
	select {
	case resp := <-r.resp:
		return resp.out, resp.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Stats returns a snapshot of the batching counters.
func (s *BatchServer) Stats() ServerStats {
	st := ServerStats{
		Requests:     s.requests.Load(),
		Batches:      s.batches.Load(),
		Errors:       s.errors.Load(),
		LargestBatch: s.largestBatch.Load(),
	}
	if st.Batches > 0 {
		st.AvgBatch = float64(st.Requests) / float64(st.Batches)
	}
	if s.cache != nil {
		cs := s.cache.Stats()
		st.Cache = &cs
	}
	return st
}

// Cache returns the serving-side result cache, nil when disabled.
func (s *BatchServer) Cache() *ResultCache { return s.cache }

// Close stops the workers and fails any queued requests with
// ErrServerClosed.  It is idempotent.
func (s *BatchServer) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	s.wg.Wait()
	for {
		select {
		case r := <-s.reqs:
			r.resp <- response{err: ErrServerClosed}
		default:
			return
		}
	}
}

// worker coalesces and executes batches until the server closes.
func (s *BatchServer) worker() {
	defer s.wg.Done()
	inBatch := tensor.New(s.prog.InputShape(), tensor.NCHW)
	outBatch := tensor.New(s.prog.OutputShape(), tensor.NCHW)
	batch := make([]*request, 0, s.cfg.MaxBatch)
	timer := time.NewTimer(time.Hour)
	stopTimer(timer)
	for {
		select {
		case <-s.stop:
			return
		case r := <-s.reqs:
			batch = append(batch[:0], r)
			if s.cfg.MaxBatch > 1 {
				timer.Reset(s.cfg.MaxDelay)
			collect:
				for len(batch) < s.cfg.MaxBatch {
					select {
					case r2 := <-s.reqs:
						batch = append(batch, r2)
					case <-timer.C:
						break collect
					case <-s.stop:
						// Serve what we already accepted, then exit above.
						break collect
					}
				}
				stopTimer(timer)
			}
			s.serveBatch(inBatch, outBatch, batch)
		}
	}
}

// stopTimer stops a timer and drains a pending fire so Reset is safe.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// serveBatch packs the requests into the staging batch, runs the planned
// program once and slices the results back out per request.
func (s *BatchServer) serveBatch(inBatch, outBatch *tensor.Tensor, batch []*request) {
	in := s.prog.InputShape()
	chw := in.C * in.H * in.W
	for slot, r := range batch {
		packImage(inBatch.Data[slot*chw:(slot+1)*chw], r.img)
	}
	// Zero the padding slots: stale activations from a previous batch must
	// not leak between requests (values cannot, but padded garbage could
	// overflow to Inf/NaN inside its own image; zeros keep every run tame).
	clear(inBatch.Data[len(batch)*chw:])

	err := s.exec.RunInto(inBatch, outBatch)
	s.batches.Add(1)
	s.requests.Add(uint64(len(batch)))
	for {
		cur := s.largestBatch.Load()
		if uint64(len(batch)) <= cur || s.largestBatch.CompareAndSwap(cur, uint64(len(batch))) {
			break
		}
	}
	if err != nil {
		s.errors.Add(uint64(len(batch)))
		for _, r := range batch {
			r.resp <- response{err: err}
		}
		return
	}
	out := s.prog.OutputShape()
	perImage := out.C * out.H * out.W
	for slot, r := range batch {
		res := tensor.New(tensor.Shape{N: 1, C: out.C, H: out.H, W: out.W}, tensor.NCHW)
		copy(res.Data, outBatch.Data[slot*perImage:(slot+1)*perImage])
		r.resp <- response{out: res}
	}
}

// packImage writes one {1,C,H,W} request image into an NCHW batch slot.  With
// N = 1 the NCHW and CHWN linearisations coincide, so both copy directly; the
// channel-interleaved layouts are gathered element-wise.
func packImage(dst []float32, img *tensor.Tensor) {
	if img.Layout == tensor.NCHW || img.Layout == tensor.CHWN {
		copy(dst, img.Data)
		return
	}
	s := img.Shape
	i := 0
	for c := 0; c < s.C; c++ {
		for h := 0; h < s.H; h++ {
			for w := 0; w < s.W; w++ {
				dst[i] = img.At(0, c, h, w)
				i++
			}
		}
	}
}
