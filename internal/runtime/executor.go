package runtime

import (
	"context"
	"fmt"
	"sync/atomic"

	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/tensor"
)

// Executor runs a compiled program on one device.  It is safe for concurrent
// use: each run borrows a private arena instance from the executor's pool,
// while the device (stateless for the CPU, a shared hardware model for
// simulated devices) is shared across runs.
type Executor struct {
	prog *Program
	dev  Device
	pool *Pool
	obs  atomic.Pointer[execObs]
}

// NewExecutor builds an executor (and its instance pool) for a program on the
// native CPU device.
func NewExecutor(p *Program) *Executor {
	return NewExecutorOn(p, CPUDevice{})
}

// NewExecutorOn builds an executor running every op of the program on the
// given device.
func NewExecutorOn(p *Program, dev Device) *Executor {
	return &Executor{prog: p, dev: dev, pool: NewPool(p)}
}

// Program returns the compiled program the executor runs.
func (e *Executor) Program() *Program { return e.prog }

// Device returns the device the executor runs on.
func (e *Executor) Device() Device { return e.dev }

// Instrument attaches an observer to this executor: every subsequent run
// records one span per executed op (layer name, op kind, conv algorithm,
// input layout, modeled micros) plus a whole-run span on the given trace
// lane, and feeds the per-net run and per-op-kind latency histograms.  On a
// modeled device chain (SimOf != nil) layer ops additionally accumulate the
// measured/modeled drift counters.  Call before the executor serves traffic;
// a zero Observer detaches.
func (e *Executor) Instrument(ob Observer, lane int32) {
	if !ob.Enabled() {
		e.obs.Store(nil)
		return
	}
	e.obs.Store(newExecObs(e.prog, e.dev, ob, lane))
}

// Run executes the program on one input batch, returning a freshly allocated
// output in the input's layout.  Use RunInto to avoid the output allocation.
func (e *Executor) Run(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := tensor.New(e.prog.OutputShape(), in.Layout)
	if err := e.RunInto(in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// RunInto executes the program on one input batch, writing the result into
// dst (which must have the program's output shape; any layout).  The input is
// staged into the arena — converting layout if needed — the ops run over
// arena-backed views, and the final buffer is converted into dst.  No tensors
// or scratch slices are allocated along the way: activations, convolution
// GEMM workspaces and the fully-connected/softmax staging buffers all live in
// the arena, so the only steady-state heap traffic left is the short-lived
// goroutine fan-out inside the parallel kernels.
func (e *Executor) RunInto(in, dst *tensor.Tensor) error {
	_, err := e.RunIntoModeled(in, dst)
	return err
}

// RunIntoCtx implements the context-aware Runner path: cancellation is
// checked between ops, so a cancelled or deadline-expired request abandons
// the remaining ops instead of running the program to completion.  dst is
// never partially delivered: on any error (including ctx.Err()) its contents
// are unchanged.
func (e *Executor) RunIntoCtx(ctx context.Context, in, dst *tensor.Tensor) error {
	_, err := e.runModeled(ctx, in, dst)
	return err
}

// RunIntoModeled is RunInto additionally returning the device's modeled
// execution time in microseconds (zero when the device does not model
// hardware, e.g. the CPU).
func (e *Executor) RunIntoModeled(in, dst *tensor.Tensor) (float64, error) {
	return e.runModeled(context.Background(), in, dst)
}

// RunIntoModeledCtx is RunIntoCtx additionally returning the modeled time.
func (e *Executor) RunIntoModeledCtx(ctx context.Context, in, dst *tensor.Tensor) (float64, error) {
	return e.runModeled(ctx, in, dst)
}

func (e *Executor) runModeled(ctx context.Context, in, dst *tensor.Tensor) (float64, error) {
	if in.Shape != e.prog.InputShape() {
		return 0, fmt.Errorf("runtime: %s input shape %v, want %v", e.prog.Net.Name, in.Shape, e.prog.InputShape())
	}
	if dst.Shape != e.prog.OutputShape() {
		return 0, fmt.Errorf("runtime: %s output shape %v, want %v", e.prog.Net.Name, dst.Shape, e.prog.OutputShape())
	}
	inst, err := e.pool.Get()
	if err != nil {
		return 0, err
	}
	defer e.pool.Put(inst)
	return inst.run(ctx, e.dev, e.obs.Load(), in, dst)
}

// run executes the program over this instance's arena on the given device,
// accumulating the device's modeled time.  A panic anywhere below — a buggy
// kernel, a faulting device — is contained into a *PanicError so it fails
// this run, never the process.  Cancellation is checked before every op.
// eo is nil when the executor is uninstrumented: the only observability cost
// on that path is the nil test per op.
func (inst *Instance) run(ctx context.Context, dev Device, eo *execObs, in, dst *tensor.Tensor) (modeledUS float64, err error) {
	defer containPanic("executor", &err)
	var runT0 int64
	if eo != nil {
		runT0 = eo.now()
	}
	if err := tensor.ConvertInto(in, inst.bufs[inst.prog.Input]); err != nil {
		return 0, fmt.Errorf("runtime: staging input: %w", err)
	}
	done := ctx.Done()
	for i, op := range inst.prog.Ops {
		if done != nil {
			select {
			case <-done:
				return modeledUS, ctx.Err()
			default:
			}
		}
		if op.Kind == OpReshape && inst.prog.Buffers[op.Out].AliasOf != NoBuffer {
			// Zero-copy view: the output header already shares the input's
			// storage and linearisation.
			continue
		}
		var scratch []float32
		if op.Scratch != NoBuffer {
			scratch = inst.bufs[op.Scratch].Data
		}
		var aux *tensor.Tensor
		if op.Aux != NoBuffer {
			aux = inst.bufs[op.Aux]
		}
		var opT0 int64
		if eo != nil {
			opT0 = eo.now()
		}
		us, err := dev.RunOp(inst.prog, i, inst.bufs[op.In], inst.bufs[op.Out], aux, scratch)
		if err != nil {
			return modeledUS, fmt.Errorf("runtime: %w", err)
		}
		if eo != nil {
			eo.observeOp(i, opT0, us)
		}
		modeledUS += us
	}
	if err := tensor.ConvertInto(inst.bufs[inst.prog.Output], dst); err != nil {
		return modeledUS, fmt.Errorf("runtime: delivering output: %w", err)
	}
	if eo != nil {
		eo.observeRun(runT0, modeledUS)
	}
	return modeledUS, nil
}

// runLayer executes one layer op: through the compiled convolution algorithm
// when the op selected the GEMM path, through ForwardIntoWorkspace when the
// compiler planned arena scratch for the layer, directly into the planned
// buffer when the layer supports IntoForwarder, and otherwise through the
// layer's allocating Forward followed by a copy into the arena.
func runLayer(op Op, in, out *tensor.Tensor, scratch []float32) error {
	if op.Alg == kernels.ConvAlgGemm {
		gf, ok := op.Layer.(layers.GemmForwarder)
		if !ok {
			return fmt.Errorf("layer does not implement the selected GEMM algorithm")
		}
		return gf.ForwardIntoGemm(in, out, scratch)
	}
	if op.Alg == kernels.ConvAlgFFT {
		ff, ok := op.Layer.(layers.FFTForwarder)
		if !ok {
			return fmt.Errorf("layer does not implement the selected FFT algorithm")
		}
		return ff.ForwardIntoFFT(in, out, scratch)
	}
	if wf, ok := op.Layer.(layers.WorkspaceForwarder); ok && scratch != nil {
		return wf.ForwardIntoWorkspace(in, out, scratch)
	}
	if fi, ok := op.Layer.(layers.IntoForwarder); ok {
		return fi.ForwardInto(in, out)
	}
	res, err := op.Layer.Forward(in)
	if err != nil {
		return err
	}
	if res.Layout == out.Layout {
		copy(out.Data, res.Data)
		return nil
	}
	return tensor.ConvertInto(res, out)
}
