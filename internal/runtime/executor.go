package runtime

import (
	"fmt"

	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/tensor"
)

// Executor runs a compiled program.  It is safe for concurrent use: each run
// borrows a private arena instance from the executor's pool.
type Executor struct {
	prog *Program
	pool *Pool
}

// NewExecutor builds an executor (and its instance pool) for a program.
func NewExecutor(p *Program) *Executor {
	return &Executor{prog: p, pool: NewPool(p)}
}

// Program returns the compiled program the executor runs.
func (e *Executor) Program() *Program { return e.prog }

// Run executes the program on one input batch, returning a freshly allocated
// output in the input's layout.  Use RunInto to avoid the output allocation.
func (e *Executor) Run(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := tensor.New(e.prog.OutputShape(), in.Layout)
	if err := e.RunInto(in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// RunInto executes the program on one input batch, writing the result into
// dst (which must have the program's output shape; any layout).  The input is
// staged into the arena — converting layout if needed — the ops run over
// arena-backed views, and the final buffer is converted into dst.  No tensors
// or scratch slices are allocated along the way: activations, convolution
// GEMM workspaces and the fully-connected/softmax staging buffers all live in
// the arena, so the only steady-state heap traffic left is the short-lived
// goroutine fan-out inside the parallel kernels.
func (e *Executor) RunInto(in, dst *tensor.Tensor) error {
	if in.Shape != e.prog.InputShape() {
		return fmt.Errorf("runtime: %s input shape %v, want %v", e.prog.Net.Name, in.Shape, e.prog.InputShape())
	}
	if dst.Shape != e.prog.OutputShape() {
		return fmt.Errorf("runtime: %s output shape %v, want %v", e.prog.Net.Name, dst.Shape, e.prog.OutputShape())
	}
	inst := e.pool.Get()
	defer e.pool.Put(inst)
	return inst.run(in, dst)
}

// run executes the program over this instance's arena.
func (inst *Instance) run(in, dst *tensor.Tensor) error {
	if err := tensor.ConvertInto(in, inst.bufs[inst.prog.Input]); err != nil {
		return fmt.Errorf("runtime: staging input: %w", err)
	}
	for _, op := range inst.prog.Ops {
		src, out := inst.bufs[op.In], inst.bufs[op.Out]
		switch op.Kind {
		case OpTransform:
			if err := tensor.ConvertInto(src, out); err != nil {
				return fmt.Errorf("runtime: %s: %w", op.Name, err)
			}
		case OpReshape:
			if inst.prog.Buffers[op.Out].AliasOf != NoBuffer {
				// Zero-copy view: the output header already shares the input's
				// storage and linearisation.
				continue
			}
			if err := tensor.ReshapeInto(src, out); err != nil {
				return fmt.Errorf("runtime: %s: %w", op.Name, err)
			}
		case OpLayer:
			var scratch []float32
			if op.Scratch != NoBuffer {
				scratch = inst.bufs[op.Scratch].Data
			}
			if err := runLayer(op, src, out, scratch); err != nil {
				return fmt.Errorf("runtime: layer %q: %w", op.Name, err)
			}
		default:
			return fmt.Errorf("runtime: unknown op kind %v", op.Kind)
		}
	}
	if err := tensor.ConvertInto(inst.bufs[inst.prog.Output], dst); err != nil {
		return fmt.Errorf("runtime: delivering output: %w", err)
	}
	return nil
}

// runLayer executes one layer op: through the compiled convolution algorithm
// when the op selected the GEMM path, through ForwardIntoWorkspace when the
// compiler planned arena scratch for the layer, directly into the planned
// buffer when the layer supports IntoForwarder, and otherwise through the
// layer's allocating Forward followed by a copy into the arena.
func runLayer(op Op, in, out *tensor.Tensor, scratch []float32) error {
	if op.Alg == kernels.ConvAlgGemm {
		gf, ok := op.Layer.(layers.GemmForwarder)
		if !ok {
			return fmt.Errorf("layer does not implement the selected GEMM algorithm")
		}
		return gf.ForwardIntoGemm(in, out, scratch)
	}
	if wf, ok := op.Layer.(layers.WorkspaceForwarder); ok && scratch != nil {
		return wf.ForwardIntoWorkspace(in, out, scratch)
	}
	if fi, ok := op.Layer.(layers.IntoForwarder); ok {
		return fi.ForwardInto(in, out)
	}
	res, err := op.Layer.Forward(in)
	if err != nil {
		return err
	}
	if res.Layout == out.Layout {
		copy(out.Data, res.Data)
		return nil
	}
	return tensor.ConvertInto(res, out)
}
