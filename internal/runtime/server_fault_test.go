package runtime_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memcnn/internal/runtime"
	"memcnn/internal/runtime/replica"
	"memcnn/internal/tensor"
)

// slowRunner delegates to a real executor after an adjustable delay that
// honors cancellation — the controllable stand-in for an overloaded engine.
type slowRunner struct {
	exec  *runtime.Executor
	delay atomic.Int64 // ns
}

func (r *slowRunner) RunInto(in, dst *tensor.Tensor) error {
	return r.RunIntoCtx(context.Background(), in, dst)
}

func (r *slowRunner) RunIntoCtx(ctx context.Context, in, dst *tensor.Tensor) error {
	if d := time.Duration(r.delay.Load()); d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return r.exec.RunIntoCtx(ctx, in, dst)
}

// TestServerChaosSoakReplicaDeath is the end-to-end acceptance soak (run
// under -race by CI): a batching server over four replicas serves 200
// requests while one replica's device dies permanently partway through.  The
// process must not crash, every response must be bit-identical to the naive
// per-image golden, and the server's fault counters must report exactly one
// failover with one replica out of rotation.
func TestServerChaosSoakReplicaDeath(t *testing.T) {
	prog, images, golden := serverFixture(t)
	devices := make([][]runtime.Device, 4)
	for i := range devices {
		cfg := runtime.FaultConfig{}
		if i == 1 {
			cfg.KillAfterOps = 40
		}
		devices[i] = []runtime.Device{runtime.WrapFault(runtime.CPUDevice{}, cfg)}
	}
	g, err := replica.NewGroup(prog, 4, replica.Config{
		Devices:      devices,
		Weights:      []float64{1, 1, 1, 1},
		RetryBackoff: runtime.Backoff{Base: 100 * time.Microsecond, Max: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	srv, err := runtime.NewServerWith(prog, g, runtime.ServerConfig{
		MaxDelay: 2 * time.Millisecond,
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const soak = 200
	const workers = 8
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errCh := make(chan error, soak)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < soak; i += workers {
				img := i % len(images)
				out, err := srv.Infer(ctx, images[img])
				if err != nil {
					errCh <- err
					return
				}
				for j := range golden[img].Data {
					if out.Data[j] != golden[img].Data[j] {
						errCh <- errMismatch(i, j)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("soak: %v", err)
	}

	st := srv.Stats()
	if st.Faults == nil {
		t.Fatal("ServerStats.Faults is nil for a replica-backed server")
	}
	if st.Faults.Failovers != 1 {
		t.Errorf("Failovers = %d, want exactly 1", st.Faults.Failovers)
	}
	if st.Faults.UnhealthyReplicas != 1 {
		t.Errorf("UnhealthyReplicas = %d, want 1", st.Faults.UnhealthyReplicas)
	}
	if st.Faults.Retries == 0 {
		t.Error("Retries = 0, want > 0")
	}
	if st.Shed != 0 || st.Expired != 0 {
		t.Errorf("un-SLO'd server shed %d / expired %d requests", st.Shed, st.Expired)
	}
	if st.Requests != soak {
		t.Errorf("Requests = %d, want %d", st.Requests, soak)
	}
}

// TestServerDeadlineExceeded drives a server whose engine is slower than the
// SLO: the request must fail with context.DeadlineExceeded, and — with the
// result cache enabled — the failure must not poison the cache: the same
// image succeeds once the engine recovers.
func TestServerDeadlineExceeded(t *testing.T) {
	prog, images, golden := serverFixture(t)
	run := &slowRunner{exec: runtime.NewExecutor(prog)}
	run.delay.Store(int64(100 * time.Millisecond))
	srv, err := runtime.NewServerWith(prog, run, runtime.ServerConfig{
		MaxBatch:     1,
		Workers:      1,
		SLO:          10 * time.Millisecond,
		CacheEntries: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if _, err := srv.Infer(context.Background(), images[0]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow engine under a 10ms SLO: got %v, want context.DeadlineExceeded", err)
	}

	// Engine recovers; the cached failure must not shadow the real answer.
	run.delay.Store(0)
	deadline := time.Now().Add(10 * time.Second)
	for {
		out, err := srv.Infer(context.Background(), images[0])
		if err == nil {
			for j := range golden[0].Data {
				if out.Data[j] != golden[0].Data[j] {
					t.Fatalf("post-recovery output differs from golden at %d", j)
				}
			}
			break
		}
		if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, runtime.ErrShed) {
			t.Fatalf("post-recovery request: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("request kept failing after the engine recovered: %v", err)
		}
	}
}

// TestServerShedding floods a deliberately slow single-worker server past its
// SLO and checks admission control rejects the overflow with ErrShed instead
// of queueing doomed work — and that shed requests never poison the cache.
func TestServerShedding(t *testing.T) {
	prog, images, golden := serverFixture(t)
	run := &slowRunner{exec: runtime.NewExecutor(prog)}
	run.delay.Store(int64(30 * time.Millisecond))
	srv, err := runtime.NewServerWith(prog, run, runtime.ServerConfig{
		MaxBatch: 1,
		Workers:  1,
		SLO:      50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// One sequential request measures the batch time that feeds the
	// admission estimate.
	if _, err := srv.Infer(context.Background(), images[0]); err != nil {
		t.Fatalf("warm-up request: %v", err)
	}

	const flood = 24
	var wg sync.WaitGroup
	var sheds, deadline, ok atomic.Uint64
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := srv.Infer(context.Background(), images[i%len(images)])
			switch {
			case err == nil:
				ok.Add(1)
			case errors.Is(err, runtime.ErrShed):
				sheds.Add(1)
			case errors.Is(err, context.DeadlineExceeded):
				deadline.Add(1)
			default:
				t.Errorf("request %d: unexpected error %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	st := srv.Stats()
	if sheds.Load() == 0 || st.Shed == 0 {
		t.Errorf("flood of %d requests against a saturated server shed none (stats: %+v)", flood, st)
	}
	if got := sheds.Load() + deadline.Load() + ok.Load(); got != flood {
		t.Errorf("request accounting: %d shed + %d deadline + %d ok != %d", sheds.Load(), deadline.Load(), ok.Load(), flood)
	}

	// The server recovers once the engine speeds up: nothing is poisoned.
	run.delay.Store(0)
	wait := time.Now().Add(10 * time.Second)
	for {
		out, err := srv.Infer(context.Background(), images[1])
		if err == nil {
			for j := range golden[1].Data {
				if out.Data[j] != golden[1].Data[j] {
					t.Fatalf("post-flood output differs from golden at %d", j)
				}
			}
			return
		}
		if !errors.Is(err, runtime.ErrShed) && !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("post-flood request: %v", err)
		}
		if time.Now().After(wait) {
			t.Fatalf("server never recovered from the flood: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerCancellationMidFlush cancels a request while it waits for its
// batch to fill: the caller must return promptly with context.Canceled, the
// worker must drop the corpse from the batch (Expired counter), and — with
// the cache enabled — the same image must still be servable afterwards.
func TestServerCancellationMidFlush(t *testing.T) {
	prog, images, golden := serverFixture(t)
	srv, err := runtime.NewServerWith(prog, runtime.NewExecutor(prog), runtime.ServerConfig{
		MaxDelay:     300 * time.Millisecond,
		Workers:      1,
		CacheEntries: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := srv.Infer(ctx, images[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled request: got %v, want context.Canceled", err)
	}
	if waited := time.Since(start); waited > 200*time.Millisecond {
		t.Errorf("cancelled caller blocked %v (should return well before the %v flush)", waited, 300*time.Millisecond)
	}

	// The worker notices the corpse when its batch window closes.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Stats().Expired == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st := srv.Stats(); st.Expired == 0 {
		t.Errorf("cancelled request never counted as expired: %+v", st)
	}

	// The cancellation must not have poisoned the cache for that image.
	out, err := srv.Infer(context.Background(), images[0])
	if err != nil {
		t.Fatalf("request after cancellation: %v", err)
	}
	for j := range golden[0].Data {
		if out.Data[j] != golden[0].Data[j] {
			t.Fatalf("post-cancellation output differs from golden at %d", j)
		}
	}
}
