package runtime

import (
	"fmt"
	"sort"

	"memcnn/internal/tensor"
)

// Interval is a buffer's live range in op indices: the buffer is written at
// Def (Def = -1 for the program input, written by the caller before the first
// op) and last read at LastUse (len(ops) for the program output, read by the
// caller after the last op).  Two buffers conflict when their intervals
// intersect.
type Interval struct {
	Def     int
	LastUse int
}

// overlaps reports whether two live ranges intersect.
func (a Interval) overlaps(b Interval) bool {
	return a.Def <= b.LastUse && b.Def <= a.LastUse
}

// MemPlan assigns every buffer of a program an offset into one shared arena
// such that no two simultaneously-live buffers overlap.  Alias buffers share
// their root's storage; their live ranges are merged into the root's.
type MemPlan struct {
	// Offsets holds the arena offset (in float32 elements) of every buffer,
	// indexed by BufferID.  An alias buffer has its root's offset.
	Offsets []int
	// Live holds the merged live range of every buffer's root, indexed by
	// BufferID.
	Live []Interval
	// ArenaElems is the arena size, in float32 elements.
	ArenaElems int
}

// PeakBytes is the arena footprint: the paper's "memory efficiency" quantity
// at the whole-network scope.
func (m *MemPlan) PeakBytes() int64 { return int64(m.ArenaElems) * 4 }

// placed records one buffer already assigned arena space.
type placed struct {
	off, elems int
	live       Interval
}

// PlanMemory computes buffer liveness over the program's op list and packs
// the buffers into a single arena with greedy best-fit offset assignment:
// buffers are placed in definition order, each into the free gap (among the
// offsets left by conflicting, already-placed buffers) that wastes the least
// space.
func PlanMemory(p *Program) (*MemPlan, error) {
	n := len(p.Buffers)
	if n == 0 {
		return nil, fmt.Errorf("runtime: program has no buffers")
	}

	// Liveness per root buffer.
	def := make([]int, n)
	last := make([]int, n)
	for i := range def {
		def[i] = len(p.Ops) + 1 // not yet defined
		last[i] = -2            // never read
	}
	touch := func(id BufferID, op int, write bool) {
		r := p.root(id)
		if write {
			if op < def[r] {
				def[r] = op
			}
		}
		if op > last[r] {
			last[r] = op
		}
	}
	touch(p.Input, -1, true)
	for _, id := range p.ExtraInputs {
		// Caller-staged side inputs (a training program's labels) are written
		// before the first op, like the main input.
		touch(id, -1, true)
	}
	for i, op := range p.Ops {
		touch(op.In, i, false)
		touch(op.Out, i, true)
		if op.Aux != NoBuffer {
			touch(op.Aux, i, false)
		}
		if op.Scratch != NoBuffer {
			// Workspace buffers are written and consumed inside their op, so
			// their live range is the single op index.
			touch(op.Scratch, i, true)
		}
	}
	touch(p.Output, len(p.Ops), false)

	// Best-fit placement of root buffers in definition order.
	roots := make([]BufferID, 0, n)
	for id := range p.Buffers {
		if p.Buffers[id].AliasOf == NoBuffer {
			roots = append(roots, BufferID(id))
		}
	}
	sort.SliceStable(roots, func(i, j int) bool { return def[roots[i]] < def[roots[j]] })

	offsets := make([]int, n)
	var placements []placed
	arena := 0
	for _, id := range roots {
		b := p.Buffers[id]
		if def[id] > len(p.Ops) || last[id] < -1 {
			return nil, fmt.Errorf("runtime: buffer %d (%v) is dead in the program", id, b.Shape)
		}
		live := Interval{Def: def[id], LastUse: last[id]}
		var conflicts []placed
		for _, pl := range placements {
			if pl.live.overlaps(live) {
				conflicts = append(conflicts, pl)
			}
		}
		off := bestFit(conflicts, b.Elems())
		offsets[id] = off
		placements = append(placements, placed{off: off, elems: b.Elems(), live: live})
		if end := off + b.Elems(); end > arena {
			arena = end
		}
	}
	// Aliases inherit their root's offset.
	liveOut := make([]Interval, n)
	for id := range p.Buffers {
		r := p.root(BufferID(id))
		offsets[id] = offsets[r]
		liveOut[id] = Interval{Def: def[r], LastUse: last[r]}
	}

	m := &MemPlan{Offsets: offsets, Live: liveOut, ArenaElems: arena}
	if err := m.validateInstantiable(p); err != nil {
		return nil, err
	}
	return m, nil
}

// validateInstantiable checks that an executor instance can be bound over the
// plan without failing: every alias buffer is a pure reinterpretation of its
// root (tensor.Reshape would refuse otherwise), every root buffer has a
// valid shape and layout and lies inside the arena.  Running it at plan
// construction turns what used to be an arena-binding panic inside a serving
// worker into a returned compile error — a bad plan can be rejected, never
// take down a server.
func (m *MemPlan) validateInstantiable(p *Program) error {
	for i, b := range p.Buffers {
		if b.AliasOf != NoBuffer {
			r := p.root(BufferID(i))
			if r >= BufferID(i) {
				return fmt.Errorf("runtime: alias buffer %d does not follow its root %d", i, r)
			}
			root := p.Buffers[r]
			if !tensor.CanReinterpret(root.Shape, b.Shape, root.Layout) {
				return fmt.Errorf("runtime: alias buffer %d cannot reinterpret its root %d (%v as %v under %v)",
					i, r, root.Shape, b.Shape, root.Layout)
			}
			continue
		}
		if !b.Shape.Valid() || !b.Layout.Valid() {
			return fmt.Errorf("runtime: buffer %d has invalid shape %v or layout %v", i, b.Shape, b.Layout)
		}
		if off := m.Offsets[i]; off < 0 || off+b.Elems() > m.ArenaElems {
			return fmt.Errorf("runtime: buffer %d [%d,%d) outside arena of %d elems",
				i, off, off+b.Elems(), m.ArenaElems)
		}
	}
	return nil
}

// bestFit returns the offset for a buffer of the given size among conflicting
// placements: of all gaps that fit it, the one leaving the least slack; when
// only the open end of the arena fits, the lowest such offset.
func bestFit(conflicts []placed, size int) int {
	// candidate offsets: 0 and the end of every conflicting placement.
	cands := []int{0}
	for _, c := range conflicts {
		cands = append(cands, c.off+c.elems)
	}
	sort.Ints(cands)
	bestOff, bestSlack := -1, -1
	for _, off := range cands {
		// The gap above off runs to the lowest conflicting placement that
		// starts at or after off; a conflict covering off disqualifies it.
		gap := -1 // unbounded
		ok := true
		for _, c := range conflicts {
			if c.off <= off && off < c.off+c.elems {
				ok = false
				break
			}
			if c.off >= off {
				room := c.off - off
				if gap == -1 || room < gap {
					gap = room
				}
			}
		}
		if !ok || (gap != -1 && gap < size) {
			continue
		}
		slack := -1
		if gap != -1 {
			slack = gap - size
		}
		switch {
		case bestOff == -1:
			bestOff, bestSlack = off, slack
		case bestSlack == -1 && slack != -1:
			// A bounded gap beats growing the arena end.
			bestOff, bestSlack = off, slack
		case slack != -1 && slack < bestSlack:
			bestOff, bestSlack = off, slack
		case slack == -1 && bestSlack == -1 && off < bestOff:
			bestOff = off
		}
	}
	return bestOff
}

// NaiveBytes returns the footprint of keeping every root buffer live for the
// whole run — the sum the paper's memory optimisation is measured against.
func (p *Program) NaiveBytes() int64 {
	var total int64
	for _, b := range p.Buffers {
		if b.AliasOf == NoBuffer {
			total += b.Bytes()
		}
	}
	return total
}

// Savings returns how much of the naive footprint the arena eliminates, in
// [0, 1).
func (p *Program) Savings() float64 {
	naive := p.NaiveBytes()
	if naive == 0 {
		return 0
	}
	return 1 - float64(p.Mem.PeakBytes())/float64(naive)
}

// Validate checks the memory plan's central invariant: no two root buffers
// whose live ranges intersect overlap in the arena, and every buffer lies
// inside the arena.
//
// Rather than comparing all O(n²) buffer pairs, it sweeps the op timeline:
// each root enters the active set at Live.Def and leaves after Live.LastUse,
// and the active set is kept sorted by arena offset.  Because the extents
// already in the set are pairwise disjoint (or a violation would have been
// reported when the later one entered), a newcomer can only overlap its
// immediate offset-order neighbours, so each insertion is one binary search
// plus two boundary checks — O(n log n) overall, which keeps verifying
// VGG-scale training plans cheap enough to run on every compile.
func (m *MemPlan) Validate(p *Program) error {
	roots := make([]BufferID, 0, len(p.Buffers))
	for i := range p.Buffers {
		bi := p.Buffers[i]
		if m.Offsets[i] < 0 || m.Offsets[i]+bi.Elems() > m.ArenaElems {
			return fmt.Errorf("runtime: buffer %d [%d,%d) outside arena of %d elems",
				i, m.Offsets[i], m.Offsets[i]+bi.Elems(), m.ArenaElems)
		}
		if bi.AliasOf != NoBuffer {
			if m.Offsets[i] != m.Offsets[p.root(BufferID(i))] {
				return fmt.Errorf("runtime: alias buffer %d does not share its root's offset", i)
			}
			continue
		}
		roots = append(roots, BufferID(i))
	}

	// Timeline events: enter at Def, leave after LastUse.  At equal times
	// leaves precede enters — live ranges are inclusive on both ends, so a
	// buffer defined at t does conflict with one last read at t but not with
	// one last read at t-1.
	type event struct {
		t     int
		enter bool
		id    BufferID
	}
	events := make([]event, 0, 2*len(roots))
	for _, id := range roots {
		lv := m.Live[id]
		events = append(events, event{t: lv.Def, enter: true, id: id})
		events = append(events, event{t: lv.LastUse + 1, enter: false, id: id})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return !events[i].enter && events[j].enter
	})

	type extent struct {
		off, end int
		id       BufferID
	}
	active := make([]extent, 0, len(roots))
	for _, ev := range events {
		off := m.Offsets[ev.id]
		k := sort.Search(len(active), func(i int) bool { return active[i].off >= off })
		if !ev.enter {
			for k < len(active) && active[k].id != ev.id {
				k++ // zero-sized extents can tie on offset
			}
			if k < len(active) {
				active = append(active[:k], active[k+1:]...)
			}
			continue
		}
		end := off + p.Buffers[ev.id].Elems()
		other := NoBuffer
		switch {
		case k > 0 && active[k-1].end > off:
			other = active[k-1].id
		case k < len(active) && end > active[k].off:
			other = active[k].id
		}
		if other != NoBuffer {
			i, j := ev.id, other
			if j < i {
				i, j = j, i
			}
			return fmt.Errorf("runtime: live buffers %d [%d,%d) and %d [%d,%d) overlap",
				i, m.Offsets[i], m.Offsets[i]+p.Buffers[i].Elems(),
				j, m.Offsets[j], m.Offsets[j]+p.Buffers[j].Elems())
		}
		active = append(active, extent{})
		copy(active[k+1:], active[k:])
		active[k] = extent{off: off, end: end, id: ev.id}
	}
	return nil
}

// String summarises the plan.
func (m *MemPlan) String() string {
	return fmt.Sprintf("MemPlan{%d buffers, arena %d elems (%.2f MiB)}",
		len(m.Offsets), m.ArenaElems, float64(m.PeakBytes())/(1<<20))
}
