package runtime

import (
	"fmt"

	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/tensor"
)

// ConvChoice describes the joint (layout, algorithm) decision the compiler
// recorded for one convolution op.
type ConvChoice struct {
	Layer          string
	Alg            kernels.ConvAlgorithm
	Layout         tensor.Layout
	WorkspaceBytes int64
}

// ConvChoices lists the algorithm and layout recorded for every convolution
// op in program order, together with the arena workspace each GEMM or FFT
// choice claims.
func (p *Program) ConvChoices() []ConvChoice {
	var out []ConvChoice
	for _, op := range p.Ops {
		if op.Kind != OpLayer {
			continue
		}
		if _, ok := op.Layer.(layers.GemmForwarder); !ok {
			continue
		}
		ch := ConvChoice{Layer: op.Name, Alg: op.Alg, Layout: p.Buffers[op.In].Layout}
		if op.Scratch != NoBuffer {
			ch.WorkspaceBytes = p.Buffers[op.Scratch].Bytes()
		}
		out = append(out, ch)
	}
	return out
}

// ScratchBytes returns the total storage of the program's op-local workspace
// buffers (before arena packing overlays them with activation storage).
func (p *Program) ScratchBytes() int64 {
	var total int64
	for _, b := range p.Buffers {
		if b.Scratch {
			total += b.Bytes()
		}
	}
	return total
}

// ReferenceForward runs the program's network functionally — allocating layer
// by layer, like network.Forward — while mirroring the program's per-layer
// convolution algorithm choices.  Because each algorithm fixes its
// accumulation order, the result is bit-identical to the executor's output
// for the same program; it is the cross-check reference for
// algorithm-selected programs, the way Network.Forward is for direct-only
// ones (for a program compiled without algorithm selection the two references
// coincide).
func (p *Program) ReferenceForward(in *tensor.Tensor) (*tensor.Tensor, error) {
	if in.Shape != p.InputShape() {
		return nil, fmt.Errorf("runtime: %s input shape %v, want %v", p.Net.Name, in.Shape, p.InputShape())
	}
	algs := make(map[layers.Layer]kernels.ConvAlgorithm)
	for _, op := range p.Ops {
		if op.Kind == OpLayer {
			algs[op.Layer] = op.Alg
		}
	}
	cur := in
	for _, l := range p.Net.Layers {
		if cur.Shape != l.InputShape() && cur.Shape.Elems() == l.InputShape().Elems() {
			reshaped := tensor.New(l.InputShape(), cur.Layout)
			if err := tensor.ReshapeInto(cur, reshaped); err != nil {
				return nil, fmt.Errorf("runtime: %s before layer %q: %w", p.Net.Name, l.Name(), err)
			}
			cur = reshaped
		}
		if gf, ok := l.(layers.GemmForwarder); ok && algs[l] == kernels.ConvAlgGemm {
			out := tensor.New(l.OutputShape(), cur.Layout)
			scratch := make([]float32, gf.GemmWorkspaceElems(out.Layout))
			if err := gf.ForwardIntoGemm(cur, out, scratch); err != nil {
				return nil, fmt.Errorf("runtime: %s layer %q: %w", p.Net.Name, l.Name(), err)
			}
			cur = out
			continue
		}
		if ff, ok := l.(layers.FFTForwarder); ok && algs[l] == kernels.ConvAlgFFT {
			out := tensor.New(l.OutputShape(), cur.Layout)
			scratch := make([]float32, ff.FFTWorkspaceElems())
			if err := ff.ForwardIntoFFT(cur, out, scratch); err != nil {
				return nil, fmt.Errorf("runtime: %s layer %q: %w", p.Net.Name, l.Name(), err)
			}
			cur = out
			continue
		}
		out, err := l.Forward(cur)
		if err != nil {
			return nil, fmt.Errorf("runtime: %s layer %q: %w", p.Net.Name, l.Name(), err)
		}
		cur = out
	}
	return cur, nil
}
