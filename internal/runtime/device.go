package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"

	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/tensor"
)

// Device abstracts the engine a compiled op runs on.  The executor owns the
// arena and the op ordering; a device only turns one op into results (and,
// when it models hardware, into time).  Two implementations exist:
//
//   - CPUDevice executes ops natively — it is the path every program ran on
//     before devices existed, bit for bit;
//   - SimDevice executes ops on the CPU for identical results while also
//     pricing them on an internal/gpusim hardware model, so sharded pipelines
//     report modeled device latency next to measured wall time.
//
// A Device must be safe for concurrent RunOp calls: executor instances run in
// parallel and share one device per executor.
type Device interface {
	// Name identifies the device in reports ("cpu", "sim0[GTX Titan ...]").
	Name() string
	// RunOp executes op prog.Ops[opIndex] over arena-backed views, returning
	// the modeled device time in microseconds — zero on an unmodeled device.
	// aux carries the op's second read operand (a training op's forward
	// activation or label vector) and is nil when the op declares none.
	// Alias reshapes never reach RunOp; the executor skips them.
	RunOp(prog *Program, opIndex int, in, out, aux *tensor.Tensor, scratch []float32) (modeledUS float64, err error)
	// TransferInUS models receiving bytes onto this device across the host
	// interconnect at a pipeline-stage boundary (zero on an unmodeled
	// device, and for the first stage, which is fed by the caller).
	TransferInUS(bytes int64) float64
}

// CPUDevice executes compiled ops directly on the host: layout transforms via
// tensor.ConvertInto, reshape copies via tensor.ReshapeInto and layer ops
// through the compiled convolution algorithm, the workspace/into forwarders
// or the allocating Forward fallback.  It is the executor's default device
// and the bit-equality baseline every other device is held to.
type CPUDevice struct{}

// Name implements Device.
func (CPUDevice) Name() string { return "cpu" }

// TransferInUS implements Device: host memory copies are not modeled.
func (CPUDevice) TransferInUS(int64) float64 { return 0 }

// RunOp implements Device.
func (CPUDevice) RunOp(prog *Program, opIndex int, in, out, aux *tensor.Tensor, scratch []float32) (float64, error) {
	op := prog.Ops[opIndex]
	switch op.Kind {
	case OpTransform:
		if err := tensor.ConvertInto(in, out); err != nil {
			return 0, fmt.Errorf("%s: %w", op.Name, err)
		}
	case OpReshape:
		if err := tensor.ReshapeInto(in, out); err != nil {
			return 0, fmt.Errorf("%s: %w", op.Name, err)
		}
	case OpLayer, OpRecompute:
		if err := runLayer(op, in, out, scratch); err != nil {
			return 0, fmt.Errorf("layer %q: %w", op.Name, err)
		}
	case OpLossGrad:
		if err := runLossGrad(op, in, out, aux); err != nil {
			return 0, fmt.Errorf("%s: %w", op.Name, err)
		}
	case OpBackward:
		bl, ok := op.Layer.(layers.BackwardLayer)
		if !ok {
			return 0, fmt.Errorf("layer %q has no backward pass", op.Name)
		}
		if err := bl.BackwardDataInto(aux, in, out, scratch); err != nil {
			return 0, fmt.Errorf("backward %q: %w", op.Name, err)
		}
	case OpGradFilter:
		tl, ok := op.Layer.(layers.TrainableLayer)
		if !ok {
			return 0, fmt.Errorf("layer %q has no parameters", op.Name)
		}
		if err := tl.BackwardFilterInto(aux, in, out); err != nil {
			return 0, fmt.Errorf("grad-filter %q: %w", op.Name, err)
		}
	case OpSGD:
		tl, ok := op.Layer.(layers.TrainableLayer)
		if !ok {
			return 0, fmt.Errorf("layer %q has no parameters", op.Name)
		}
		if err := tl.ApplySGD(in, op.LR); err != nil {
			return 0, fmt.Errorf("sgd %q: %w", op.Name, err)
		}
	default:
		return 0, fmt.Errorf("unknown op kind %v", op.Kind)
	}
	return 0, nil
}

// runLossGrad executes the fused softmax + cross-entropy gradient: in is the
// probability matrix, aux the float32-coded labels, out the logit gradient.
// The training compiler lowers these buffers in the NCHW linearisation, where
// the N×C×1×1 backing slices are the row-major matrices themselves.
func runLossGrad(op Op, in, out, aux *tensor.Tensor) error {
	if in.Layout != tensor.NCHW || out.Layout != tensor.NCHW {
		return fmt.Errorf("loss gradient requires NCHW probability buffers, got %v/%v", in.Layout, out.Layout)
	}
	if aux == nil {
		return fmt.Errorf("loss gradient has no label buffer")
	}
	cfg := kernels.SoftmaxConfig{N: in.Shape.N, Classes: in.Shape.C}
	return kernels.SoftmaxCrossEntropyBackwardFloatInto(out.Data, in.Data, aux.Data, cfg)
}

// DefaultInterconnectGBs is the modeled host-interconnect bandwidth for
// cross-device transfers when a SimDevice does not specify one: a PCIe 3.0
// x16 link at its practical ~12 GB/s.
const DefaultInterconnectGBs = 12.0

// SimDevice wraps a gpusim hardware model around the CPU execution path:
// every op computes its real result on the host (so sharded programs stay
// bit-identical to unsharded ones) while the op is also priced on the modeled
// GPU — layer ops through their Cost kernel sequence and the roofline +
// occupancy estimator, data-movement ops as streaming copies, stage-boundary
// transfers over the host interconnect.
type SimDevice struct {
	// Label distinguishes devices of the same hardware model ("sim0").
	Label string
	// HW is the modeled hardware.
	HW *gpusim.Device
	// InterconnectGBs is the modeled stage-boundary transfer bandwidth;
	// zero selects DefaultInterconnectGBs.
	InterconnectGBs float64

	cpu CPUDevice

	// costCache holds the per-program op prices as a copy-on-write map: the
	// model is pure in (program, op), so each program is priced once (under
	// costMu) and published atomically, leaving steady-state RunOp lookups
	// lock- and allocation-free for concurrent executor instances.
	costMu    sync.Mutex
	costCache atomic.Pointer[map[*Program][]float64]
}

// NewSimDevice builds a simulated device over a gpusim hardware model.
func NewSimDevice(label string, hw *gpusim.Device) *SimDevice {
	return &SimDevice{Label: label, HW: hw}
}

// SimDevices builds n simulated devices ("sim0".."simN-1") over one gpusim
// hardware model — the device set a homogeneous sharded pipeline runs on.
func SimDevices(n int, hw *gpusim.Device) []Device {
	devs := make([]Device, n)
	for i := range devs {
		devs[i] = NewSimDevice(fmt.Sprintf("sim%d", i), hw)
	}
	return devs
}

// Name implements Device.
func (d *SimDevice) Name() string {
	return fmt.Sprintf("%s[%s]", d.Label, d.HW.Name)
}

// RunOp implements Device: the op runs on the CPU for its real result and is
// priced on the hardware model (from the per-program cache, so the Cost
// sequence is evaluated once per op, not once per batch).
func (d *SimDevice) RunOp(prog *Program, opIndex int, in, out, aux *tensor.Tensor, scratch []float32) (float64, error) {
	_, err := d.cpu.RunOp(prog, opIndex, in, out, aux, scratch)
	return d.programCosts(prog)[opIndex], err
}

// programCosts returns the cached per-op prices for a program, computing and
// publishing them on first use.
func (d *SimDevice) programCosts(prog *Program) []float64 {
	if cache := d.costCache.Load(); cache != nil {
		if costs, ok := (*cache)[prog]; ok {
			return costs
		}
	}
	d.costMu.Lock()
	defer d.costMu.Unlock()
	old := d.costCache.Load()
	if old != nil {
		if costs, ok := (*old)[prog]; ok {
			return costs
		}
	}
	costs := make([]float64, len(prog.Ops))
	for i, op := range prog.Ops {
		costs[i] = d.ModelOpUS(prog, op)
	}
	next := make(map[*Program][]float64, 1)
	if old != nil {
		for p, c := range *old {
			next[p] = c
		}
	}
	next[prog] = costs
	d.costCache.Store(&next)
	return costs
}

// Link returns the modeled host interconnect the device's transfers ride on.
// Overlapping transfers contend for it: the replica scheduler prices its batch
// scatter with Interconnect.ScatterUS, dividing the link bandwidth among the
// replicas it feeds at once.
func (d *SimDevice) Link() gpusim.Interconnect {
	bw := d.InterconnectGBs
	if bw <= 0 {
		bw = DefaultInterconnectGBs
	}
	return gpusim.Interconnect{GBs: bw}
}

// TransferInUS implements Device: bytes over the (uncontended) host
// interconnect plus one launch overhead for the receiving copy kernel.
// Pipeline-stage transfers use this lone-transfer price — the stages of one
// batch hand off serially, so their transfers do not overlap.
func (d *SimDevice) TransferInUS(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return d.Link().TransferUS(bytes) + d.HW.LaunchOverheadUS
}

// ModelOpUS prices one op on the hardware model without executing it.  Layer
// ops go through the layer's Cost kernel sequence (with the compiled
// convolution algorithm mapped onto the matching cost implementation) and
// gpusim's roofline estimator; transform and reshape-copy ops are priced as
// streaming read+write passes; alias reshapes are free.
func (d *SimDevice) ModelOpUS(prog *Program, op Op) float64 {
	switch op.Kind {
	case OpLayer, OpRecompute:
		layout := prog.Buffers[op.In].Layout
		stats, err := op.Layer.Cost(d.HW, layout, costOptionsFor(op, layout))
		if err != nil {
			// No kernel model for this layout/impl combination: fall back to
			// pricing the op as a streaming pass over its operands.
			return d.streamUS(prog.Buffers[op.In].Bytes() + prog.Buffers[op.Out].Bytes())
		}
		total, _ := gpusim.EstimateSequence(d.HW, stats)
		return total
	case OpTransform, OpReshape:
		if prog.Buffers[op.Out].AliasOf != NoBuffer {
			return 0
		}
		return d.streamUS(prog.Buffers[op.In].Bytes() + prog.Buffers[op.Out].Bytes())
	case OpLossGrad:
		shape := prog.Buffers[op.In].Shape
		cfg := kernels.SoftmaxConfig{N: shape.N, Classes: shape.C}
		total, _ := gpusim.EstimateSequence(d.HW, []gpusim.KernelStats{
			kernels.SoftmaxBackwardCost(d.HW, cfg, true),
		})
		return total
	case OpBackward, OpGradFilter:
		if stats := trainingOpCost(d.HW, prog, op); stats != nil {
			total, _ := gpusim.EstimateSequence(d.HW, stats)
			return total
		}
		// Element-wise and window backward passes (ReLU, LRN) are bandwidth
		// bound: stream the gradient, the forward activation and the result.
		bytes := prog.Buffers[op.In].Bytes() + prog.Buffers[op.Out].Bytes()
		if op.Aux != NoBuffer {
			bytes += prog.Buffers[op.Aux].Bytes()
		}
		return d.streamUS(bytes)
	case OpSGD:
		// Read the gradient and the parameters, write the parameters back.
		return d.streamUS(3 * prog.Buffers[op.In].Bytes())
	default:
		return 0
	}
}

// trainingOpCost maps a backward or grad-filter op onto the kernels package's
// training cost models — the same models bench.TrainingStep prices whole
// layers with.  It returns nil for layers priced as pure streaming passes.
func trainingOpCost(hw *gpusim.Device, prog *Program, op Op) []gpusim.KernelStats {
	layout := prog.Buffers[op.In].Layout
	switch l := op.Layer.(type) {
	case *layers.Conv:
		cfg := l.Config()
		if op.Kind == OpGradFilter {
			return kernels.ConvBackwardFilterCost(hw, cfg)
		}
		if layout == tensor.CHWN {
			return []gpusim.KernelStats{kernels.ConvBackwardDataCHWNCost(hw, cfg)}
		}
		return kernels.ConvBackwardDataNCHWCost(hw, cfg)
	case *layers.Pool:
		if op.Kind == OpBackward {
			return []gpusim.KernelStats{kernels.PoolBackwardCost(hw, l.Cfg, layout == tensor.CHWN)}
		}
	case *layers.FullyConnected:
		// Both directions are GEMMs over the weight matrix: dIn = dOut·W and
		// dW = dOutᵀ·In.
		g := kernels.GemmCostConfig{M: l.InDim, N: l.Batch, K: l.OutDim}
		if op.Kind == OpGradFilter {
			g = kernels.GemmCostConfig{M: l.OutDim, N: l.InDim, K: l.Batch}
		}
		s := kernels.GemmCost(hw, g)
		s.Name = fmt.Sprintf("fc-bwd %s", op.Name)
		return []gpusim.KernelStats{s}
	}
	return nil
}

// ModelProgramUS prices a whole program: the sum of its op estimates, each op
// paying its own launch overhead (the kernels run back to back).
func (d *SimDevice) ModelProgramUS(prog *Program) float64 {
	var total float64
	for _, op := range prog.Ops {
		total += d.ModelOpUS(prog, op)
	}
	return total
}

// streamUS prices moving the given DRAM traffic at device bandwidth, plus one
// kernel launch.
func (d *SimDevice) streamUS(bytes int64) float64 {
	return float64(bytes)/d.HW.PeakBytesPerSec()*1e6 + d.HW.LaunchOverheadUS
}

// costOptionsFor maps an op's compiled convolution algorithm onto the cost
// model's implementation options, so modeled time prices the kernel the
// executor actually runs.
func costOptionsFor(op Op, layout tensor.Layout) layers.CostOptions {
	opts := layers.CostOptions{}
	if op.Alg == kernels.ConvAlgGemm && layout == tensor.NCHW {
		opts.Conv = layers.ConvGemmImpl
	}
	if op.Alg == kernels.ConvAlgFFT && layout == tensor.NCHW {
		opts.Conv = layers.ConvFFTImpl
	}
	return opts
}
