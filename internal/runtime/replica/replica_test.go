package replica_test

import (
	"os"
	"testing"

	"memcnn/internal/frameworks"
	"memcnn/internal/gpusim"
	"memcnn/internal/layout"
	"memcnn/internal/network"
	"memcnn/internal/runtime"
	"memcnn/internal/runtime/replica"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

// mustCompile compiles a network under the paper's optimiser.
func mustCompile(t *testing.T, net *network.Network, opts runtime.Options) *runtime.Program {
	t.Helper()
	plan, err := frameworks.Optimized(layout.TitanBlackThresholds()).Plan(gpusim.TitanBlack(), net)
	if err != nil {
		t.Fatalf("planning %s: %v", net.Name, err)
	}
	prog, err := runtime.CompileWithOptions(plan, opts)
	if err != nil {
		t.Fatalf("compiling %s: %v", net.Name, err)
	}
	return prog
}

func requireBitEqual(t *testing.T, label string, got, want *tensor.Tensor) {
	t.Helper()
	if got.Shape != want.Shape || got.Layout != want.Layout {
		t.Fatalf("%s: got %v/%v, want %v/%v", label, got.Shape, got.Layout, want.Shape, want.Layout)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: replicated output differs from the single-device run (first at %d: %v vs %v)",
				label, i, got.Data[i], want.Data[i])
		}
	}
}

// simFleet builds n single-device replicas over one Titan Black model.
func simFleet(t *testing.T, n int) [][]runtime.Device {
	t.Helper()
	devs, err := replica.ParseDevices("titanblack", n, 1)
	if err != nil {
		t.Fatal(err)
	}
	return devs
}

// TestShares covers the largest-remainder apportionment: proportionality,
// exact coverage, zero-weight replicas and the error paths.
func TestShares(t *testing.T) {
	cases := []struct {
		batch   int
		weights []float64
		want    []int
	}{
		{8, []float64{1, 1, 1, 1}, []int{2, 2, 2, 2}},
		{8, []float64{3, 1}, []int{6, 2}},
		{4, []float64{1, 0}, []int{4, 0}},
		{4, []float64{0, 1}, []int{0, 4}},
		{3, []float64{1, 1}, []int{2, 1}},             // remainder to the lower index
		{4, []float64{1, 0, 2, 1}, []int{1, 0, 2, 1}}, // zero replica inside the fleet
		{2, []float64{1, 1, 1, 1}, []int{1, 1, 0, 0}}, // fewer images than replicas
		{128, []float64{1e-9, 1}, []int{0, 128}},      // vanishing weight starves out
		{10, []float64{2, 3, 5}, []int{2, 3, 5}},      // exact proportions
	}
	for _, tc := range cases {
		got, err := replica.Shares(tc.batch, tc.weights)
		if err != nil {
			t.Errorf("Shares(%d, %v): %v", tc.batch, tc.weights, err)
			continue
		}
		total := 0
		for i := range got {
			total += got[i]
			if got[i] != tc.want[i] {
				t.Errorf("Shares(%d, %v) = %v, want %v", tc.batch, tc.weights, got, tc.want)
				break
			}
			if tc.weights[i] == 0 && got[i] != 0 {
				t.Errorf("Shares(%d, %v): zero-weight replica %d received %d images", tc.batch, tc.weights, i, got[i])
			}
		}
		if total != tc.batch {
			t.Errorf("Shares(%d, %v) sums to %d", tc.batch, tc.weights, total)
		}
	}

	for _, bad := range []struct {
		batch   int
		weights []float64
	}{
		{0, []float64{1}},
		{4, nil},
		{4, []float64{0, 0}},
		{4, []float64{1, -1}},
	} {
		if _, err := replica.Shares(bad.batch, bad.weights); err == nil {
			t.Errorf("Shares(%d, %v) accepted invalid input", bad.batch, bad.weights)
		}
	}
}

// goldenCase is one network of the replicated-equivalence suite.
type goldenCase struct {
	name     string
	net      *network.Network
	opts     runtime.Options
	replicas []int
	weights  map[int][]float64 // optional per-replica-count weights
}

// goldenCases tiers the functional cost the same way the runtime suite does:
// TinyNet always (every replica count, uniform and skewed weights), the
// reduced-batch paper networks with -short disabled, and the full-batch
// networks only under MEMCNN_GOLDEN_FULL.
func goldenCases(t *testing.T) []goldenCase {
	t.Helper()
	tiny, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	cases := []goldenCase{{
		name: "TinyNet", net: tiny, replicas: []int{1, 2, 3, 4},
		weights: map[int][]float64{
			2: {3, 1},       // skewed: shares 3,1
			3: {1, 0, 1},    // an idle replica inside the fleet
			4: {0, 1, 2, 1}, // skewed with a zero-weight head
		},
	}}
	if !testing.Short() {
		nets, err := workloads.Networks()
		if err != nil {
			t.Fatal(err)
		}
		alexSmall, err := workloads.AlexNetWithBatch(4)
		if err != nil {
			t.Fatal(err)
		}
		cifarSmall, err := workloads.Cifar10WithBatch(16)
		if err != nil {
			t.Fatal(err)
		}
		zfSmall, err := workloads.ZFNetWithBatch(4)
		if err != nil {
			t.Fatal(err)
		}
		selected := runtime.Options{ConvAlgorithms: true}
		cases = append(cases,
			// LeNet@128 selects GEMM for conv2: its sub-batch programs pin
			// that choice through CompileLike, so bit-equality would break
			// loudly if rebatching re-selected by shape.
			goldenCase{name: "LeNet", net: nets["LeNet"], opts: selected, replicas: []int{2}},
			goldenCase{name: "AlexNet@4", net: alexSmall, opts: selected, replicas: []int{3}},
			goldenCase{name: "Cifar10@16", net: cifarSmall, opts: selected, replicas: []int{4},
				weights: map[int][]float64{4: {5, 1, 1, 1}}},
			goldenCase{name: "ZFNet@4", net: zfSmall, opts: selected, replicas: []int{2}},
		)
	}
	if os.Getenv("MEMCNN_GOLDEN_FULL") != "" {
		nets, err := workloads.Networks()
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range workloads.NetworkOrder {
			cases = append(cases, goldenCase{
				name: name + "/full", net: nets[name], replicas: []int{1, 2, 3, 4},
			})
		}
	}
	return cases
}

// TestGroupGoldenEquivalence scatters every affordable network across 1-4
// simulated replicas — uniform and skewed weights, including idle zero-weight
// replicas — and checks the reassembled output is bit-identical to the
// single-device executor.
func TestGroupGoldenEquivalence(t *testing.T) {
	for _, tc := range goldenCases(t) {
		prog := mustCompile(t, tc.net, tc.opts)
		in := tensor.Random(prog.InputShape(), tensor.NCHW, 23)
		want, err := runtime.NewExecutor(prog).Run(in)
		if err != nil {
			t.Fatalf("%s: single-device run: %v", tc.name, err)
		}
		for _, replicas := range tc.replicas {
			cfg := replica.Config{Devices: simFleet(t, replicas)}
			if w, ok := tc.weights[replicas]; ok {
				cfg.Weights = w
			}
			g, err := replica.NewGroup(prog, replicas, cfg)
			if err != nil {
				t.Fatalf("%s/%d: %v", tc.name, replicas, err)
			}
			got, err := g.Run(in)
			if err != nil {
				g.Close()
				t.Fatalf("%s/%d: replicated run: %v", tc.name, replicas, err)
			}
			requireBitEqual(t, tc.name+"/replicated", got, want)
			// A second batch through the recycled per-replica arenas must be
			// identical.
			again, err := g.Run(in)
			if err != nil {
				g.Close()
				t.Fatalf("%s/%d: replicated rerun: %v", tc.name, replicas, err)
			}
			requireBitEqual(t, tc.name+"/replicated rerun", again, want)

			shares := g.BatchShares()
			total := 0
			for i, s := range shares {
				total += s
				if cfg.Weights != nil && cfg.Weights[i] == 0 && s != 0 {
					t.Errorf("%s/%d: zero-weight replica %d received %d images", tc.name, replicas, i, s)
				}
			}
			if total != prog.InputShape().N {
				t.Errorf("%s/%d: shares %v do not cover the batch", tc.name, replicas, shares)
			}
			for _, st := range g.ReplicaStats() {
				if st.Share > 0 && st.Batches != 2 {
					t.Errorf("%s/%d: replica %d saw %d batches, want 2", tc.name, replicas, st.Replica, st.Batches)
				}
				if st.Share > 0 && st.ModeledUS <= 0 {
					t.Errorf("%s/%d: replica %d reports no modeled time on a simulated device",
						tc.name, replicas, st.Replica)
				}
				if st.Share == 0 && st.Batches != 0 {
					t.Errorf("%s/%d: idle replica %d ran %d batches", tc.name, replicas, st.Replica, st.Batches)
				}
			}
			g.Close()
		}
	}
}

// TestGroupLayoutStaging covers the non-NCHW caller path: CHWN batches stage
// through the pooled conversion tensors and must still reassemble exactly.
func TestGroupLayoutStaging(t *testing.T) {
	tiny, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	prog := mustCompile(t, tiny, runtime.Options{})
	in := tensor.Random(prog.InputShape(), tensor.CHWN, 7)
	want, err := runtime.NewExecutor(prog).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	g, err := replica.NewGroup(prog, 2, replica.Config{Devices: simFleet(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	got, err := g.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "chwn staging", got, want)
}

// TestGroupHeterogeneousSplit checks heterogeneity-aware weighting end to
// end: in a TitanBlack+TitanX fleet the shares must follow the modeled
// per-device throughput of the program (the cards price differently, so the
// split is not uniform), and the skewed split still reassembles
// bit-identically.
func TestGroupHeterogeneousSplit(t *testing.T) {
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	prog := mustCompile(t, nets["LeNet"], runtime.Options{})
	devs, err := replica.ParseDevices("titanblack,titanx", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	weights := replica.DeriveWeights(prog, devs, 1)
	if weights[0] == weights[1] {
		t.Fatalf("TitanBlack and TitanX price LeNet identically (%v); the heterogeneity test needs a skew", weights)
	}
	wantShares, err := replica.Shares(prog.InputShape().N, weights)
	if err != nil {
		t.Fatal(err)
	}
	g, err := replica.NewGroup(prog, 2, replica.Config{Devices: devs})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	shares := g.BatchShares()
	for i := range shares {
		if shares[i] != wantShares[i] {
			t.Errorf("shares %v do not follow the modeled weights %v (want %v)", shares, weights, wantShares)
			break
		}
	}
	if shares[0] == shares[1] {
		t.Errorf("mixed TitanBlack+TitanX fleet split uniformly (%v) despite modeled skew %v", shares, weights)
	}
	if shares[0] == 0 || shares[1] == 0 {
		t.Errorf("a replica starved out entirely: shares %v", shares)
	}
	if testing.Short() {
		return
	}
	in := tensor.Random(prog.InputShape(), tensor.NCHW, 11)
	want, err := runtime.NewExecutor(prog).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "heterogeneous", got, want)
}

// TestGroupPipelinedReplicas composes data and model parallelism: each of two
// replicas is itself pipeline-sharded across two simulated devices, and the
// composition still matches the single-device run bit for bit.
func TestGroupPipelinedReplicas(t *testing.T) {
	tiny, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	prog := mustCompile(t, tiny, runtime.Options{})
	devs, err := replica.ParseDevices("titanblack,titanx", 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	g, err := replica.NewGroup(prog, 2, replica.Config{Devices: devs})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	in := tensor.Random(prog.InputShape(), tensor.NCHW, 5)
	want, err := runtime.NewExecutor(prog).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "pipelined replicas", got, want)
	for _, st := range g.ReplicaStats() {
		if st.Share > 0 && st.ModeledUS <= 0 {
			t.Errorf("pipelined replica %d reports no modeled time", st.Replica)
		}
	}
	if g.ModeledBatchUS() <= 0 {
		t.Error("group reports no modeled batch time on a simulated fleet")
	}
}

// TestGroupCPUProbeWeights exercises the warmup-probe weight path on native
// CPU replicas: both replicas run on the same host, so each must receive a
// non-empty share.
func TestGroupCPUProbeWeights(t *testing.T) {
	tiny, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	prog := mustCompile(t, tiny, runtime.Options{})
	g, err := replica.NewGroup(prog, 2, replica.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i, s := range g.BatchShares() {
		if s == 0 {
			t.Errorf("CPU replica %d starved out: shares %v", i, g.BatchShares())
		}
	}
	in := tensor.Random(prog.InputShape(), tensor.NCHW, 3)
	want, err := runtime.NewExecutor(prog).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "cpu probe", got, want)
}

// TestGroupValidation covers the construction and submission error paths.
func TestGroupValidation(t *testing.T) {
	tiny, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	prog := mustCompile(t, tiny, runtime.Options{})
	if _, err := replica.NewGroup(nil, 2, replica.Config{}); err == nil {
		t.Error("a nil program must be rejected")
	}
	if _, err := replica.NewGroup(prog, 0, replica.Config{}); err == nil {
		t.Error("a zero replica count must be rejected")
	}
	if _, err := replica.NewGroup(prog, 2, replica.Config{Devices: simFleet(t, 3)}); err == nil {
		t.Error("a device/replica count mismatch must be rejected")
	}
	if _, err := replica.NewGroup(prog, 2, replica.Config{
		Devices: simFleet(t, 2), Weights: []float64{1},
	}); err == nil {
		t.Error("a weight/replica count mismatch must be rejected")
	}
	if _, err := replica.NewGroup(prog, 2, replica.Config{
		Devices: simFleet(t, 2), Weights: []float64{0, 0},
	}); err == nil {
		t.Error("an all-zero weight vector must be rejected")
	}

	g, err := replica.NewGroup(prog, 2, replica.Config{Devices: simFleet(t, 2)})
	if err != nil {
		t.Fatal(err)
	}
	bad := tensor.New(tensor.Shape{N: 1, C: 1, H: 12, W: 12}, tensor.NCHW)
	if _, err := g.Run(bad); err == nil {
		t.Error("a wrong input shape must be rejected")
	}
	g.Close()
	g.Close() // idempotent
}

// TestParseDevices covers the fleet-spec parser.
func TestParseDevices(t *testing.T) {
	devs, err := replica.ParseDevices("titanblack,titanx", 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(devs) != 4 {
		t.Fatalf("4 replicas produced %d device lists", len(devs))
	}
	for r, d := range devs {
		if len(d) != 1 {
			t.Fatalf("replica %d has %d devices, want 1", r, len(d))
		}
	}
	// The model list cycles across replicas.
	for _, pair := range [][2]int{{0, 2}, {1, 3}} {
		a := devs[pair[0]][0].(*runtime.SimDevice)
		b := devs[pair[1]][0].(*runtime.SimDevice)
		if a.HW.Name != b.HW.Name {
			t.Errorf("replicas %d and %d should share a model, got %q vs %q", pair[0], pair[1], a.HW.Name, b.HW.Name)
		}
	}
	if devs[0][0].(*runtime.SimDevice).HW.Name == devs[1][0].(*runtime.SimDevice).HW.Name {
		t.Error("alternating spec produced identical neighbouring models")
	}

	cpu, err := replica.ParseDevices("cpu", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cpu[0]) != 3 {
		t.Fatalf("3-stage replica has %d devices", len(cpu[0]))
	}
	if _, ok := cpu[0][0].(runtime.CPUDevice); !ok {
		t.Errorf("cpu spec produced %T", cpu[0][0])
	}

	if _, err := replica.ParseDevices("keplerx", 2, 1); err == nil {
		t.Error("an unknown model must be rejected")
	}
	if _, err := replica.ParseDevices("titanx", 0, 1); err == nil {
		t.Error("a zero replica count must be rejected")
	}
}
