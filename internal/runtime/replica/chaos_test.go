package replica_test

import (
	"context"
	"errors"
	"fmt"
	goruntime "runtime"
	"sync"
	"testing"
	"time"

	"memcnn/internal/runtime"
	"memcnn/internal/runtime/replica"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

// chaosFixture compiles TinyNet with fixed layouts (CPU-deterministic) and
// returns the program, a full batch input, and the single-device golden
// output every surviving topology must reproduce bit-for-bit.
func chaosFixture(t *testing.T) (*runtime.Program, *tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	net, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := runtime.CompileFixed(net, tensor.CHWN)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.Random(prog.InputShape(), tensor.NCHW, 11)
	golden := tensor.New(prog.OutputShape(), tensor.NCHW)
	if err := runtime.NewExecutor(prog).RunInto(in, golden); err != nil {
		t.Fatal(err)
	}
	return prog, in, golden
}

// faultFleet wraps n CPU replicas in FaultDevices with the given schedules
// (one per replica).
func faultFleet(cfgs []runtime.FaultConfig) ([][]runtime.Device, []*runtime.FaultDevice) {
	devices := make([][]runtime.Device, len(cfgs))
	fds := make([]*runtime.FaultDevice, len(cfgs))
	for i, cfg := range cfgs {
		fds[i] = runtime.WrapFault(runtime.CPUDevice{}, cfg)
		devices[i] = []runtime.Device{fds[i]}
	}
	return devices, fds
}

// TestChaosSoakReplicaDeath is the headline soak (run under -race by CI): a
// four-replica group serves 200 batches while one replica's device dies
// permanently partway through.  Every batch must still succeed, every output
// must be bit-identical to the single-device golden run, the group must
// record exactly one failover, and closing the group must leak no
// goroutines.
func TestChaosSoakReplicaDeath(t *testing.T) {
	prog, in, golden := chaosFixture(t)
	before := goruntime.NumGoroutine()

	devices, fds := faultFleet([]runtime.FaultConfig{
		{}, {}, {KillAfterOps: 40}, {},
	})
	g, err := replica.NewGroup(prog, 4, replica.Config{
		Devices:      devices,
		Weights:      []float64{1, 1, 1, 1},
		RetryBackoff: runtime.Backoff{Base: 100 * time.Microsecond, Max: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	const soak = 200
	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, soak)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := tensor.New(prog.OutputShape(), tensor.NCHW)
			for i := 0; i < soak/workers; i++ {
				if err := g.RunInto(in, out); err != nil {
					errCh <- err
					return
				}
				for j := range golden.Data {
					if out.Data[j] != golden.Data[j] {
						errCh <- errMismatch(j, out.Data[j], golden.Data[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Errorf("soak: %v", err)
	}

	fs := g.FaultStats()
	if fs.Failovers != 1 {
		t.Errorf("Failovers = %d, want exactly 1 (one replica died once)", fs.Failovers)
	}
	if fs.UnhealthyReplicas != 1 {
		t.Errorf("UnhealthyReplicas = %d, want 1", fs.UnhealthyReplicas)
	}
	if fs.Retries == 0 {
		t.Errorf("Retries = 0, want > 0 (the dying replica was retried before failover)")
	}
	if !fds[2].Dead() {
		t.Error("the killed device should report Dead")
	}
	if h := g.Health(); h[2] != runtime.Unhealthy {
		t.Errorf("replica 2 health = %v, want unhealthy", h[2])
	}
	shares := g.BatchShares()
	if shares[2] != 0 {
		t.Errorf("dead replica still owns %d images: shares %v", shares[2], shares)
	}
	total := 0
	for _, s := range shares {
		total += s
	}
	if total != prog.InputShape().N {
		t.Errorf("surviving shares %v do not cover the batch", shares)
	}

	g.Close()
	waitGoroutines(t, before)
}

func errMismatch(i int, got, want float32) error {
	return fmt.Errorf("output differs from single-device golden at %d: %v vs %v", i, got, want)
}

// waitGoroutines gives background goroutines (pipeline stages, the prober)
// time to exit after Close, then checks none leaked.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if goruntime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after Close", before, goruntime.NumGoroutine())
}

// TestChaosTransientRetries drives a group whose replica suffers scheduled
// transient faults: retries must absorb them (outputs stay bit-identical) and
// the retry counter must reflect the injected faults.
func TestChaosTransientRetries(t *testing.T) {
	prog, in, golden := chaosFixture(t)
	devices, fds := faultFleet([]runtime.FaultConfig{
		{}, {Seed: 7, TransientRate: 0.02},
	})
	g, err := replica.NewGroup(prog, 2, replica.Config{
		Devices:      devices,
		Weights:      []float64{1, 1},
		MaxRetries:   4,
		RetryBackoff: runtime.Backoff{Base: 50 * time.Microsecond, Max: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	out := tensor.New(prog.OutputShape(), tensor.NCHW)
	for i := 0; i < 60; i++ {
		if err := g.RunInto(in, out); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		for j := range golden.Data {
			if out.Data[j] != golden.Data[j] {
				t.Fatalf("batch %d differs from golden at %d", i, j)
			}
		}
	}
	transients, _, _, _ := fds[1].FaultCounts()
	if transients == 0 {
		t.Fatal("schedule injected no transients over 60 batches; pick a hotter seed/rate")
	}
	if fs := g.FaultStats(); fs.Retries == 0 {
		t.Errorf("Retries = 0 with %d injected transients", transients)
	}
}

// TestChaosReadmission kills a replica, watches the group fail over, revives
// the device and checks the background probe re-admits the replica and hands
// it traffic again — with outputs bit-identical throughout.
func TestChaosReadmission(t *testing.T) {
	prog, in, golden := chaosFixture(t)
	devices, fds := faultFleet([]runtime.FaultConfig{{}, {}})
	g, err := replica.NewGroup(prog, 2, replica.Config{
		Devices:       devices,
		Weights:       []float64{1, 1},
		RetryBackoff:  runtime.Backoff{Base: 50 * time.Microsecond, Max: time.Millisecond},
		ProbeInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	run := func(label string) {
		t.Helper()
		out := tensor.New(prog.OutputShape(), tensor.NCHW)
		if err := g.RunInto(in, out); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		for j := range golden.Data {
			if out.Data[j] != golden.Data[j] {
				t.Fatalf("%s: output differs from golden at %d", label, j)
			}
		}
	}

	run("healthy fleet")
	fds[1].Kill()
	run("one replica dead")
	if n := g.HealthyReplicas(); n != 1 {
		t.Fatalf("HealthyReplicas = %d after a death, want 1", n)
	}
	if shares := g.BatchShares(); shares[1] != 0 {
		t.Fatalf("dead replica still owns images: %v", shares)
	}

	fds[1].Revive()
	deadline := time.Now().Add(5 * time.Second)
	for g.HealthyReplicas() != 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := g.HealthyReplicas(); n != 2 {
		t.Fatalf("replica not re-admitted after revival: %d healthy", n)
	}
	fs := g.FaultStats()
	if fs.Readmissions == 0 {
		t.Errorf("Readmissions = 0 after a successful probe")
	}
	if shares := g.BatchShares(); shares[0] == 0 || shares[1] == 0 {
		t.Errorf("re-admitted replica received no traffic: shares %v", shares)
	}
	run("after re-admission")
}

// TestChaosPanicContainment checks a panicking replica fails over instead of
// crashing the process, and the panic is counted.
func TestChaosPanicContainment(t *testing.T) {
	prog, in, golden := chaosFixture(t)
	devices, _ := faultFleet([]runtime.FaultConfig{
		{}, {Seed: 3, PanicRate: 1},
	})
	g, err := replica.NewGroup(prog, 2, replica.Config{
		Devices:      devices,
		Weights:      []float64{1, 1},
		MaxRetries:   1,
		RetryBackoff: runtime.Backoff{Base: 50 * time.Microsecond, Max: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	out := tensor.New(prog.OutputShape(), tensor.NCHW)
	if err := g.RunInto(in, out); err != nil {
		t.Fatalf("batch over a panicking replica: %v", err)
	}
	for j := range golden.Data {
		if out.Data[j] != golden.Data[j] {
			t.Fatalf("failover output differs from golden at %d", j)
		}
	}
	fs := g.FaultStats()
	if fs.Panics == 0 {
		t.Error("Panics = 0, want > 0 (the injected panic was contained)")
	}
	if fs.Failovers != 1 {
		t.Errorf("Failovers = %d, want 1", fs.Failovers)
	}
}

// TestGroupRunIntoCtx covers the context path through the group: a cancelled
// context fails fast with ctx.Err() and, critically, does not trip failover —
// the replicas are fine, the caller just left.
func TestGroupRunIntoCtx(t *testing.T) {
	prog, in, _ := chaosFixture(t)
	g, err := replica.NewGroup(prog, 2, replica.Config{Weights: []float64{1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := tensor.New(prog.OutputShape(), tensor.NCHW)
	if err := g.RunIntoCtx(ctx, in, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled group run: got %v, want context.Canceled", err)
	}
	fs := g.FaultStats()
	if fs.Failovers != 0 || fs.UnhealthyReplicas != 0 {
		t.Errorf("cancellation tripped failover: %+v", fs)
	}
	if err := g.RunIntoCtx(context.Background(), in, out); err != nil {
		t.Fatalf("run after cancellation: %v", err)
	}
}
