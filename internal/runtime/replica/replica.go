// Package replica schedules data-parallel execution of a compiled program: a
// Group clones the program across N devices — shared read-only weights, one
// arena pool per replica — and serves each incoming batch by splitting it
// into per-replica sub-batches, running them concurrently and reassembling
// the outputs bit-identically to a single-device run.
//
// The split is heterogeneity-aware: each replica's slice of the batch is
// proportional to its modeled throughput (SimDevice replicas are priced on
// their internal/gpusim hardware model; native CPU replicas are measured with
// a warmup probe), so a TitanBlack+TitanX-style mixed fleet finishes its
// sub-batches in comparable wall time instead of idling the faster card.
// Replicas may themselves be pipeline-sharded across several devices
// (runtime.Shard inside the replica), composing data parallelism with the
// pipeline's model parallelism.
//
// Bit-identical reassembly rests on two properties the rest of the runtime
// already guarantees: every layer processes images independently with a fixed
// per-image accumulation order (so a sub-batch computes exactly the rows of
// the full batch it was handed), and per-replica programs are compiled with
// runtime.CompileLike, which pins the base program's per-layer layouts and
// convolution algorithms (golden bit-equality holds per algorithm, and
// autotune would otherwise re-select by the smaller sub-batch shape).
//
// The modeled cost of feeding the replicas accounts for interconnect
// contention: the batch scatter starts one transfer per simulated replica at
// the same instant, and gpusim.Interconnect.ScatterUS divides the link
// bandwidth among them (K overlapping transfers run at 1/K the lone rate).
package replica

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memcnn/internal/gpusim"
	"memcnn/internal/runtime"
	"memcnn/internal/tensor"
)

// Config tunes how a Group is built.
type Config struct {
	// Devices assigns each replica its device list: one device runs the
	// replica on a single executor, several pipeline-shard the replica's
	// program across them (data × model parallelism).  nil gives every
	// replica the native CPU device; an empty inner slice does the same for
	// that replica.
	Devices [][]runtime.Device
	// Weights fixes the per-replica throughput weights explicitly (len must
	// equal the replica count; weights must be non-negative with a positive
	// sum, and a replica weighted 0 receives no images).  When nil the
	// weights are derived from the devices: modeled throughput for simulated
	// devices, a warmup-probe measurement for CPU devices.
	Weights []float64
	// WarmupProbes is the number of timed runs a CPU-device weight probe
	// takes (the minimum is used, filtering scheduler noise).  Default 2.
	WarmupProbes int
}

// Group replicates a compiled program across devices and implements
// runtime.Runner by scattering each batch over the replicas.  RunInto is safe
// for concurrent use: every call slices its own sub-batch views and each
// replica's executor draws a private arena instance per run.
type Group struct {
	base     *runtime.Program
	units    []*unit
	weights  []float64
	shares   []int
	scatter  []float64 // modeled contended scatter cost per replica, us/batch
	inShape  tensor.Shape
	outShape tensor.Shape

	inPool  sync.Pool // staging for non-NCHW callers
	outPool sync.Pool

	mu      sync.Mutex
	closed  bool
	batches atomic.Uint64
}

// unit is one replica: its sub-batch program and the engine running it.
type unit struct {
	index   int
	devices []runtime.Device
	share   int
	offset  int
	prog    *runtime.Program          // nil when share == 0
	exec    *runtime.Executor         // single-device replica
	pipe    *runtime.PipelineExecutor // pipeline-sharded replica
	modeled float64                   // static modeled us per sub-batch (0 on CPU)

	batches    atomic.Uint64
	measuredNS atomic.Int64
}

// NewGroup builds a replica group for a compiled program.  Close must be
// called to stop the stage goroutines of pipeline-sharded replicas.
func NewGroup(base *runtime.Program, replicas int, cfg Config) (*Group, error) {
	if base == nil {
		return nil, fmt.Errorf("replica: cannot replicate a nil program")
	}
	if replicas <= 0 {
		return nil, fmt.Errorf("replica: replica count %d must be positive", replicas)
	}
	if cfg.Devices != nil && len(cfg.Devices) != replicas {
		return nil, fmt.Errorf("replica: %d device lists for %d replicas", len(cfg.Devices), replicas)
	}
	// Work on a copy of the outer slice: defaulting empty entries to the CPU
	// must not write through to the caller's configuration.
	devices := make([][]runtime.Device, replicas)
	copy(devices, cfg.Devices)
	for i, devs := range devices {
		if len(devs) == 0 {
			devices[i] = []runtime.Device{runtime.CPUDevice{}}
		}
	}

	weights := cfg.Weights
	if weights == nil {
		weights = DeriveWeights(base, devices, cfg.WarmupProbes)
	}
	if len(weights) != replicas {
		return nil, fmt.Errorf("replica: %d weights for %d replicas", len(weights), replicas)
	}
	shares, err := Shares(base.InputShape().N, weights)
	if err != nil {
		return nil, err
	}

	g := &Group{
		base:     base,
		weights:  append([]float64(nil), weights...),
		shares:   shares,
		inShape:  base.InputShape(),
		outShape: base.OutputShape(),
	}
	g.inPool.New = func() any { return tensor.New(g.inShape, tensor.NCHW) }
	g.outPool.New = func() any { return tensor.New(g.outShape, tensor.NCHW) }

	offset := 0
	for i, share := range shares {
		u := &unit{index: i, devices: devices[i], share: share, offset: offset}
		offset += share
		if share > 0 {
			if err := g.buildReplica(u); err != nil {
				g.Close()
				return nil, err
			}
		}
		g.units = append(g.units, u)
	}
	g.scatter = g.modelScatter()
	for _, u := range g.units {
		u.modeled += g.scatter[u.index]
	}
	return g, nil
}

// buildReplica compiles the unit's sub-batch program (against the base's
// layouts and algorithm choices, over the base network's shared weights) and
// starts its engine.
func (g *Group) buildReplica(u *unit) error {
	net, err := g.base.Net.WithBatch(u.share)
	if err != nil {
		return fmt.Errorf("replica %d: %w", u.index, err)
	}
	prog, err := runtime.CompileLike(g.base, net)
	if err != nil {
		return fmt.Errorf("replica %d: %w", u.index, err)
	}
	u.prog = prog
	if len(u.devices) == 1 {
		u.exec = runtime.NewExecutorOn(prog, u.devices[0])
		if sd, ok := u.devices[0].(*runtime.SimDevice); ok {
			u.modeled = sd.ModelProgramUS(prog)
		}
		return nil
	}
	sp, err := runtime.Shard(prog, len(u.devices), runtime.ShardOptions{Devices: u.devices})
	if err != nil {
		return fmt.Errorf("replica %d: %w", u.index, err)
	}
	u.pipe = runtime.NewPipelineExecutor(sp)
	for _, st := range sp.Stages {
		if sd, ok := st.Device.(*runtime.SimDevice); ok {
			u.modeled += sd.ModelProgramUS(st.Prog) + sd.TransferInUS(st.TransferInBytes)
		}
	}
	return nil
}

// modelScatter prices the batch scatter: the sub-batch transfers onto every
// simulated replica start together and contend for the shared link, so each
// completes at the water-filled time gpusim.Interconnect.ScatterUS assigns it
// (plus the receiving device's launch overhead).  CPU replicas are host-local
// and free.
func (g *Group) modelScatter() []float64 {
	chw := int64(g.inShape.C) * int64(g.inShape.H) * int64(g.inShape.W) * 4
	sizes := make([]int64, len(g.units))
	var link gpusim.Interconnect
	sims := 0
	for i, u := range g.units {
		if sd, ok := u.devices[0].(*runtime.SimDevice); ok && u.share > 0 {
			sizes[i] = int64(u.share) * chw
			link = sd.Link()
			sims++
		}
	}
	out := make([]float64, len(g.units))
	if sims == 0 {
		return out
	}
	done := link.ScatterUS(sizes)
	for i, u := range g.units {
		if sizes[i] > 0 {
			out[i] = done[i] + u.devices[0].(*runtime.SimDevice).HW.LaunchOverheadUS
		}
	}
	return out
}

// Base returns the program the group replicates.
func (g *Group) Base() *runtime.Program { return g.base }

// BatchShares returns the per-replica image counts one full batch splits
// into; they sum to the program's batch size.
func (g *Group) BatchShares() []int { return append([]int(nil), g.shares...) }

// Weights returns the per-replica throughput weights the shares were derived
// from.
func (g *Group) Weights() []float64 { return append([]float64(nil), g.weights...) }

// Replicas returns the replica count (including idle zero-share replicas).
func (g *Group) Replicas() int { return len(g.units) }

// Batches returns the number of full batches the group has served.
func (g *Group) Batches() uint64 { return g.batches.Load() }

// ModeledBatchUS returns the modeled wall time of one scattered batch: the
// slowest replica's contended scatter transfer plus sub-batch execution.
// Zero when no replica runs on a modeled device.
func (g *Group) ModeledBatchUS() float64 {
	var worst float64
	for _, u := range g.units {
		if u.modeled > worst {
			worst = u.modeled
		}
	}
	return worst
}

// RunInto implements runtime.Runner: the batch is scattered across the
// replicas, the sub-batches run concurrently, and the outputs land in dst
// exactly where a single-device run would put them.
func (g *Group) RunInto(in, dst *tensor.Tensor) error {
	if in.Shape != g.inShape {
		return fmt.Errorf("replica: %s input shape %v, want %v", g.base.Net.Name, in.Shape, g.inShape)
	}
	if dst.Shape != g.outShape {
		return fmt.Errorf("replica: %s output shape %v, want %v", g.base.Net.Name, dst.Shape, g.outShape)
	}
	// Sub-batch views slice images off the NCHW linearisation; callers in
	// other layouts stage through pooled NCHW tensors.
	src := in
	if in.Layout != tensor.NCHW {
		staged := g.inPool.Get().(*tensor.Tensor)
		defer g.inPool.Put(staged)
		if err := tensor.ConvertInto(in, staged); err != nil {
			return fmt.Errorf("replica: staging input: %w", err)
		}
		src = staged
	}
	out := dst
	if dst.Layout != tensor.NCHW {
		staged := g.outPool.Get().(*tensor.Tensor)
		defer g.outPool.Put(staged)
		out = staged
	}

	chwIn := g.inShape.C * g.inShape.H * g.inShape.W
	chwOut := g.outShape.C * g.outShape.H * g.outShape.W
	var wg sync.WaitGroup
	errs := make([]error, len(g.units))
	for _, u := range g.units {
		if u.share == 0 {
			continue
		}
		subIn, err := tensor.NewFrom(
			tensor.Shape{N: u.share, C: g.inShape.C, H: g.inShape.H, W: g.inShape.W},
			tensor.NCHW, src.Data[u.offset*chwIn:(u.offset+u.share)*chwIn])
		if err != nil {
			return fmt.Errorf("replica %d: %w", u.index, err)
		}
		subOut, err := tensor.NewFrom(
			tensor.Shape{N: u.share, C: g.outShape.C, H: g.outShape.H, W: g.outShape.W},
			tensor.NCHW, out.Data[u.offset*chwOut:(u.offset+u.share)*chwOut])
		if err != nil {
			return fmt.Errorf("replica %d: %w", u.index, err)
		}
		wg.Add(1)
		go func(u *unit) {
			defer wg.Done()
			start := time.Now()
			var err error
			if u.exec != nil {
				err = u.exec.RunInto(subIn, subOut)
			} else {
				err = u.pipe.RunInto(subIn, subOut)
			}
			u.measuredNS.Add(int64(time.Since(start)))
			u.batches.Add(1)
			if err != nil {
				errs[u.index] = fmt.Errorf("replica %d: %w", u.index, err)
			}
		}(u)
	}
	wg.Wait()
	g.batches.Add(1)
	if err := errors.Join(errs...); err != nil {
		return fmt.Errorf("replica: %w", err)
	}
	if out != dst {
		if err := tensor.ConvertInto(out, dst); err != nil {
			return fmt.Errorf("replica: delivering output: %w", err)
		}
	}
	return nil
}

// Run executes one batch, returning a freshly allocated output in the input's
// layout.
func (g *Group) Run(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := tensor.New(g.outShape, in.Layout)
	if err := g.RunInto(in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Close stops the stage goroutines of pipeline-sharded replicas.  It is
// idempotent; single-executor replicas hold no goroutines.
func (g *Group) Close() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return
	}
	g.closed = true
	for _, u := range g.units {
		if u.pipe != nil {
			u.pipe.Close()
		}
	}
}

// Stats reports one replica's share and observed cost.
type Stats struct {
	Replica int
	Devices string
	Weight  float64
	Share   int
	Batches uint64
	// ScatterUS is the modeled contended input transfer per batch and
	// ModeledUS the modeled sub-batch total including it; both zero on
	// unmodeled (CPU) replicas.
	ScatterUS float64
	ModeledUS float64
	// MeasuredUS is the mean measured wall time per sub-batch.
	MeasuredUS float64
}

// ReplicaStats snapshots per-replica counters.
func (g *Group) ReplicaStats() []Stats {
	out := make([]Stats, len(g.units))
	for i, u := range g.units {
		names := make([]string, len(u.devices))
		for j, d := range u.devices {
			names[j] = d.Name()
		}
		s := Stats{
			Replica:   i,
			Devices:   strings.Join(names, "+"),
			Weight:    g.weights[i],
			Share:     u.share,
			Batches:   u.batches.Load(),
			ScatterUS: g.scatter[i],
			ModeledUS: u.modeled,
		}
		if s.Batches > 0 {
			s.MeasuredUS = float64(u.measuredNS.Load()) / 1e3 / float64(s.Batches)
		}
		out[i] = s
	}
	return out
}

// Shares apportions a batch across replicas proportionally to their weights
// (largest-remainder rounding, ties to the lower index, so the split is
// deterministic).  Weights must be non-negative with a positive sum; a
// replica weighted 0 is guaranteed an empty share.
func Shares(batch int, weights []float64) ([]int, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("replica: batch %d must be positive", batch)
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("replica: no replica weights")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("replica: weight %d is %v", i, w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("replica: at least one replica needs a positive weight")
	}
	shares := make([]int, len(weights))
	rem := make([]float64, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := float64(batch) * w / sum
		shares[i] = int(exact)
		rem[i] = exact - float64(shares[i])
		assigned += shares[i]
	}
	order := make([]int, 0, len(weights))
	for i, w := range weights {
		if w > 0 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return rem[order[a]] > rem[order[b]] })
	for k := 0; assigned < batch; k++ {
		shares[order[k%len(order)]]++
		assigned++
	}
	return shares, nil
}

// DeriveWeights estimates each replica's throughput weight from its devices:
// a simulated device contributes its modeled batches-per-second for the base
// program (gpusim pricing), a CPU device its measured rate from a short
// warmup probe (probes timed runs after one warming run; minimum taken).  A
// replica's weight is the sum over its devices, crediting pipeline-sharded
// replicas with their extra stage throughput.
func DeriveWeights(base *runtime.Program, devices [][]runtime.Device, probes int) []float64 {
	if probes <= 0 {
		probes = 2
	}
	weights := make([]float64, len(devices))
	for i, devs := range devices {
		for _, d := range devs {
			if sd, ok := d.(*runtime.SimDevice); ok {
				if us := sd.ModelProgramUS(base); us > 0 {
					weights[i] += 1e6 / us
				}
				continue
			}
			if sec := probeSeconds(base, d, probes); sec > 0 {
				weights[i] += 1 / sec
			}
		}
	}
	return weights
}

// probeSeconds measures one warmed full-batch run of the base program on the
// device, returning the minimum of the timed runs in seconds.
func probeSeconds(base *runtime.Program, d runtime.Device, probes int) float64 {
	exec := runtime.NewExecutorOn(base, d)
	in := tensor.New(base.InputShape(), tensor.NCHW)
	out := tensor.New(base.OutputShape(), tensor.NCHW)
	if err := exec.RunInto(in, out); err != nil { // warm the arena pool
		return 0
	}
	best := math.Inf(1)
	for p := 0; p < probes; p++ {
		start := time.Now()
		if err := exec.RunInto(in, out); err != nil {
			return 0
		}
		if sec := time.Since(start).Seconds(); sec < best {
			best = sec
		}
	}
	return best
}

// ParseDevices builds the device matrix for a replica fleet from a
// comma-separated hardware list: each entry is "titanblack", "titanx" or
// "cpu", assigned to replicas in order and cycled when the fleet is larger
// than the list ("titanblack,titanx" alternates the two models).  Every
// replica receives `stages` devices of its model, pipeline-sharding the
// replica when stages > 1.  An empty spec defaults to the paper's Titan
// Black for every replica.
func ParseDevices(spec string, replicas, stages int) ([][]runtime.Device, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("replica: replica count %d must be positive", replicas)
	}
	if stages <= 0 {
		stages = 1
	}
	models := []string{"titanblack"}
	if strings.TrimSpace(spec) != "" {
		models = strings.Split(spec, ",")
	}
	hw := map[string]*gpusim.Device{}
	out := make([][]runtime.Device, replicas)
	for r := 0; r < replicas; r++ {
		model := strings.ToLower(strings.TrimSpace(models[r%len(models)]))
		devs := make([]runtime.Device, stages)
		for s := 0; s < stages; s++ {
			label := fmt.Sprintf("r%d.%d", r, s)
			switch model {
			case "cpu":
				devs[s] = runtime.CPUDevice{}
			case "titanblack":
				if hw[model] == nil {
					hw[model] = gpusim.TitanBlack()
				}
				devs[s] = runtime.NewSimDevice(label, hw[model])
			case "titanx":
				if hw[model] == nil {
					hw[model] = gpusim.TitanX()
				}
				devs[s] = runtime.NewSimDevice(label, hw[model])
			default:
				return nil, fmt.Errorf("replica: unknown device model %q (want titanblack, titanx or cpu)", model)
			}
		}
		out[r] = devs
	}
	return out, nil
}
