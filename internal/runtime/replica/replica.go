// Package replica schedules data-parallel execution of a compiled program: a
// Group clones the program across N devices — shared read-only weights, one
// arena pool per replica — and serves each incoming batch by splitting it
// into per-replica sub-batches, running them concurrently and reassembling
// the outputs bit-identically to a single-device run.
//
// The split is heterogeneity-aware: each replica's slice of the batch is
// proportional to its modeled throughput (SimDevice replicas are priced on
// their internal/gpusim hardware model; native CPU replicas are measured with
// a warmup probe), so a TitanBlack+TitanX-style mixed fleet finishes its
// sub-batches in comparable wall time instead of idling the faster card.
// Replicas may themselves be pipeline-sharded across several devices
// (runtime.Shard inside the replica), composing data parallelism with the
// pipeline's model parallelism.
//
// Bit-identical reassembly rests on two properties the rest of the runtime
// already guarantees: every layer processes images independently with a fixed
// per-image accumulation order (so a sub-batch computes exactly the rows of
// the full batch it was handed), and per-replica programs are compiled with
// runtime.CompileLike, which pins the base program's per-layer layouts and
// convolution algorithms (golden bit-equality holds per algorithm, and
// autotune would otherwise re-select by the smaller sub-batch shape).
//
// The modeled cost of feeding the replicas accounts for interconnect
// contention: the batch scatter starts one transfer per simulated replica at
// the same instant, and gpusim.Interconnect.ScatterUS divides the link
// bandwidth among them (K overlapping transfers run at 1/K the lone rate).
//
// # Fault tolerance
//
// The group survives its replicas: a sub-batch that fails is retried on the
// same replica under capped exponential backoff (Config.MaxRetries,
// Config.RetryBackoff); a replica that exhausts its retries is marked
// runtime.Unhealthy, taken out of rotation, and the batch split is re-derived
// over the surviving replicas' original weights — the whole batch then re-runs
// on the new topology, so whatever the group answers is still bit-identical
// to the single-device run (rows are image-independent and deterministic,
// never partially stitched across topologies).  Unhealthy replicas are probed
// in the background (Config.ProbeInterval) and re-admitted — with another
// topology re-derivation — once a probe run succeeds, so a replica that only
// suffered transient faults returns to rotation while a permanently dead one
// stays out.  Panics inside a replica's engine are contained into
// *runtime.PanicError by the executor and counted, failing only the batch
// that hit them.  The retry / failover / re-admission counters are exposed
// via FaultStats (runtime.FaultReporter), which the batching server folds
// into its ServerStats.
package replica

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"memcnn/internal/gpusim"
	"memcnn/internal/obs"
	"memcnn/internal/runtime"
	"memcnn/internal/tensor"
)

// ErrGroupClosed is returned for batches submitted to a closed group.
var ErrGroupClosed = errors.New("replica: group closed")

// ErrNoHealthyReplicas is returned when every replica has been marked
// unhealthy: the group has nothing left to fail over to.
var ErrNoHealthyReplicas = errors.New("replica: no healthy replicas")

// Config tunes how a Group is built.
type Config struct {
	// Devices assigns each replica its device list: one device runs the
	// replica on a single executor, several pipeline-shard the replica's
	// program across them (data × model parallelism).  nil gives every
	// replica the native CPU device; an empty inner slice does the same for
	// that replica.
	Devices [][]runtime.Device
	// Weights fixes the per-replica throughput weights explicitly (len must
	// equal the replica count; weights must be non-negative with a positive
	// sum, and a replica weighted 0 receives no images).  When nil the
	// weights are derived from the devices: modeled throughput for simulated
	// devices, a warmup-probe measurement for CPU devices.
	Weights []float64
	// WarmupProbes is the number of timed runs a CPU-device weight probe
	// takes (the minimum is used, filtering scheduler noise).  Default 2.
	WarmupProbes int
	// MaxRetries is how many times a failed sub-batch is re-run on the same
	// replica before the replica is marked unhealthy and the batch fails over
	// to the survivors.  Default 2; negative disables retries (first failure
	// fails over immediately).
	MaxRetries int
	// RetryBackoff is the capped exponential delay between retries.  The
	// zero value defaults to Base 1ms, Max 50ms.
	RetryBackoff runtime.Backoff
	// ProbeInterval is how often unhealthy replicas are probed for
	// re-admission.  Default 25ms; negative disables background probing
	// (an unhealthy replica then stays out until the process restarts).
	ProbeInterval time.Duration
}

// withDefaults replaces unset fields with their defaults.
func (c Config) withDefaults() Config {
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.RetryBackoff == (runtime.Backoff{}) {
		c.RetryBackoff = runtime.Backoff{Base: time.Millisecond, Max: 50 * time.Millisecond}
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 25 * time.Millisecond
	}
	return c
}

// Group replicates a compiled program across devices and implements
// runtime.Runner by scattering each batch over the replicas.  RunInto is safe
// for concurrent use: every call slices its own sub-batch views and each
// replica's executor draws a private arena instance per run.  The group is
// also a runtime.FaultReporter; see the package comment for the failover
// behaviour.
type Group struct {
	base     *runtime.Program
	cfg      Config
	units    []*unit
	weights  []float64 // original derived/configured weights, by replica
	inShape  tensor.Shape
	outShape tensor.Shape

	// topo is the current batch split; swapped whole on failover and
	// re-admission so in-flight batches keep a consistent view.
	topo atomic.Pointer[topology]

	inPool  sync.Pool // staging for non-NCHW callers
	outPool sync.Pool

	mu     sync.Mutex // serialises topology rebuilds and Close
	closed atomic.Bool

	probeStop chan struct{}
	probeWG   sync.WaitGroup

	batches      atomic.Uint64
	retries      atomic.Uint64
	failovers    atomic.Uint64
	readmissions atomic.Uint64
	panics       atomic.Uint64

	// obsv is the group's instrumentation (nil when uninstrumented).  Atomic
	// because engines are built lazily under each unit's lock — a failover
	// rebuild compiling a new engine must see the observer without taking a
	// group-wide lock on the batch path.
	obsv atomic.Pointer[groupObs]
}

// groupObs is the group's prepared instrumentation: the shared observer, the
// per-replica lane layout and the per-replica sub-batch span templates and
// latency histograms.
type groupObs struct {
	ob     runtime.Observer
	stride int32 // trace lanes reserved per replica (its pipeline depth)
	spans  []obs.Span
	hists  []*obs.Histogram
}

// laneFor returns the first trace lane of a replica's block.
func (gob *groupObs) laneFor(replica int) int32 {
	return runtime.LaneEngine + int32(replica)*gob.stride
}

// observe records one sub-batch run on one replica.
func (gob *groupObs) observe(replica int, t0 int64, elapsed time.Duration, modeledUS float64, images int) {
	if gob.ob.Trace != nil {
		sp := gob.spans[replica]
		sp.StartNS, sp.DurNS = t0, int64(elapsed)
		sp.ModeledUS, sp.Images = modeledUS, images
		gob.ob.Trace.Record(sp)
	}
	gob.hists[replica].Observe(float64(elapsed) / 1e3)
}

// topology is one immutable batch split over the units: the per-unit image
// counts, their row offsets, and the modeled contended scatter cost.
type topology struct {
	shares  []int
	offsets []int
	scatter []float64 // modeled contended scatter cost per replica, us/batch
}

// unit is one replica: its devices, health, and the engines built for the
// sub-batch sizes it has served (one compiled program per distinct share,
// cached — failover changes a replica's share, and re-deriving the split
// must not recompile programs on the hot path more than once per size).
type unit struct {
	index   int
	devices []runtime.Device

	healthy atomic.Bool

	mu      sync.Mutex
	engines map[int]*engine // share -> engine

	batches    atomic.Uint64
	failures   atomic.Uint64
	measuredNS atomic.Int64
}

// engine is one compiled sub-batch program and the executor or pipeline
// running it.
type engine struct {
	prog    *runtime.Program
	exec    *runtime.Executor         // single-device replica
	pipe    *runtime.PipelineExecutor // pipeline-sharded replica
	modeled float64                   // static modeled us per sub-batch (0 on CPU)
}

// run executes one sub-batch on the engine.
func (e *engine) run(ctx context.Context, in, out *tensor.Tensor) error {
	if e.exec != nil {
		return e.exec.RunIntoCtx(ctx, in, out)
	}
	return e.pipe.RunIntoCtx(ctx, in, out)
}

// instrument attaches (or with a zero observer detaches) the engine's
// executor or pipeline to the replica's trace lane block.
func (e *engine) instrument(ob runtime.Observer, lane int32, replica int) {
	if e.exec != nil {
		if ob.Trace != nil {
			ob.Trace.SetLane(lane, fmt.Sprintf("replica %d (%s)", replica, e.exec.Device().Name()))
		}
		e.exec.Instrument(ob, lane)
		return
	}
	e.pipe.Instrument(ob, lane, fmt.Sprintf("r%d ", replica))
}

// NewGroup builds a replica group for a compiled program.  Close must be
// called to stop the background prober and the stage goroutines of
// pipeline-sharded replicas.
func NewGroup(base *runtime.Program, replicas int, cfg Config) (*Group, error) {
	if base == nil {
		return nil, fmt.Errorf("replica: cannot replicate a nil program")
	}
	if replicas <= 0 {
		return nil, fmt.Errorf("replica: replica count %d must be positive", replicas)
	}
	if cfg.Devices != nil && len(cfg.Devices) != replicas {
		return nil, fmt.Errorf("replica: %d device lists for %d replicas", len(cfg.Devices), replicas)
	}
	cfg = cfg.withDefaults()
	// Work on a copy of the outer slice: defaulting empty entries to the CPU
	// must not write through to the caller's configuration.
	devices := make([][]runtime.Device, replicas)
	copy(devices, cfg.Devices)
	for i, devs := range devices {
		if len(devs) == 0 {
			devices[i] = []runtime.Device{runtime.CPUDevice{}}
		}
	}

	weights := cfg.Weights
	if weights == nil {
		weights = DeriveWeights(base, devices, cfg.WarmupProbes)
	}
	if len(weights) != replicas {
		return nil, fmt.Errorf("replica: %d weights for %d replicas", len(weights), replicas)
	}

	g := &Group{
		base:      base,
		cfg:       cfg,
		weights:   append([]float64(nil), weights...),
		inShape:   base.InputShape(),
		outShape:  base.OutputShape(),
		probeStop: make(chan struct{}),
	}
	g.inPool.New = func() any { return tensor.New(g.inShape, tensor.NCHW) }
	g.outPool.New = func() any { return tensor.New(g.outShape, tensor.NCHW) }
	for i := range devices {
		u := &unit{index: i, devices: devices[i], engines: map[int]*engine{}}
		u.healthy.Store(true)
		g.units = append(g.units, u)
	}
	topo, err := g.deriveTopology()
	if err != nil {
		g.Close()
		return nil, err
	}
	g.topo.Store(topo)
	if cfg.ProbeInterval > 0 {
		g.probeWG.Add(1)
		go g.probeLoop()
	}
	return g, nil
}

// deriveTopology computes the batch split over the currently healthy units
// (using their original weights) and ensures every unit that receives images
// has an engine compiled for its share.
func (g *Group) deriveTopology() (*topology, error) {
	live := make([]float64, len(g.units))
	any := false
	for i, u := range g.units {
		if u.healthy.Load() && g.weights[i] > 0 {
			live[i] = g.weights[i]
			any = true
		}
	}
	if !any {
		return nil, ErrNoHealthyReplicas
	}
	shares, err := Shares(g.inShape.N, live)
	if err != nil {
		return nil, err
	}
	offsets := make([]int, len(shares))
	offset := 0
	for i, share := range shares {
		offsets[i] = offset
		offset += share
		if share > 0 {
			if _, err := g.units[i].engine(g, share); err != nil {
				return nil, err
			}
		}
	}
	return &topology{shares: shares, offsets: offsets, scatter: g.modelScatter(shares)}, nil
}

// rebuild re-derives the topology after a health transition.  Concurrent
// failing batches race to call it; the lock makes the rebuilds sequential and
// each one computes from the health state it observes, so the last rebuild
// reflects the final state.
func (g *Group) rebuild() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed.Load() {
		return ErrGroupClosed
	}
	topo, err := g.deriveTopology()
	if err != nil {
		return err
	}
	g.topo.Store(topo)
	return nil
}

// engine returns the unit's engine for a sub-batch of the given share,
// compiling and caching it on first use.  A freshly built engine inherits the
// group's instrumentation — failover and re-admission compile new shares on
// the hot path, and their spans must not silently vanish.
func (u *unit) engine(g *Group, share int) (*engine, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if e, ok := u.engines[share]; ok {
		return e, nil
	}
	e, err := buildEngine(g.base, u.devices, share)
	if err != nil {
		return nil, fmt.Errorf("replica %d: %w", u.index, err)
	}
	if gob := g.obsv.Load(); gob != nil {
		e.instrument(gob.ob, gob.laneFor(u.index), u.index)
	}
	u.engines[share] = e
	return e, nil
}

// buildEngine compiles a sub-batch program (against the base's layouts and
// algorithm choices, over the base network's shared weights) and starts its
// engine.  Devices are resolved through fault wrappers (runtime.SimOf) so a
// wrapped simulated device keeps its modeled pricing.
func buildEngine(base *runtime.Program, devices []runtime.Device, share int) (*engine, error) {
	net, err := base.Net.WithBatch(share)
	if err != nil {
		return nil, err
	}
	prog, err := runtime.CompileLike(base, net)
	if err != nil {
		return nil, err
	}
	e := &engine{prog: prog}
	if len(devices) == 1 {
		e.exec = runtime.NewExecutorOn(prog, devices[0])
		if sd := runtime.SimOf(devices[0]); sd != nil {
			e.modeled = sd.ModelProgramUS(prog)
		}
		return e, nil
	}
	sp, err := runtime.Shard(prog, len(devices), runtime.ShardOptions{Devices: devices})
	if err != nil {
		return nil, err
	}
	e.pipe = runtime.NewPipelineExecutor(sp)
	for _, st := range sp.Stages {
		if sd := runtime.SimOf(st.Device); sd != nil {
			e.modeled += sd.ModelProgramUS(st.Prog) + sd.TransferInUS(st.TransferInBytes)
		}
	}
	return e, nil
}

// modelScatter prices the batch scatter for one share split: the sub-batch
// transfers onto every simulated replica start together and contend for the
// shared link, so each completes at the water-filled time
// gpusim.Interconnect.ScatterUS assigns it (plus the receiving device's
// launch overhead).  CPU replicas are host-local and free.
func (g *Group) modelScatter(shares []int) []float64 {
	chw := int64(g.inShape.C) * int64(g.inShape.H) * int64(g.inShape.W) * 4
	sizes := make([]int64, len(g.units))
	var link gpusim.Interconnect
	sims := 0
	for i, u := range g.units {
		if sd := runtime.SimOf(u.devices[0]); sd != nil && shares[i] > 0 {
			sizes[i] = int64(shares[i]) * chw
			link = sd.Link()
			sims++
		}
	}
	out := make([]float64, len(g.units))
	if sims == 0 {
		return out
	}
	done := link.ScatterUS(sizes)
	for i, u := range g.units {
		if sizes[i] > 0 {
			out[i] = done[i] + runtime.SimOf(u.devices[0]).HW.LaunchOverheadUS
		}
	}
	return out
}

// Base returns the program the group replicates.
func (g *Group) Base() *runtime.Program { return g.base }

// BatchShares returns the per-replica image counts one full batch currently
// splits into; they sum to the program's batch size.  Failover and
// re-admission change the split.
func (g *Group) BatchShares() []int {
	return append([]int(nil), g.topo.Load().shares...)
}

// Weights returns the per-replica throughput weights the shares are derived
// from.
func (g *Group) Weights() []float64 { return append([]float64(nil), g.weights...) }

// Replicas returns the replica count (including idle and unhealthy replicas).
func (g *Group) Replicas() int { return len(g.units) }

// Batches returns the number of full batches the group has served.
func (g *Group) Batches() uint64 { return g.batches.Load() }

// Health returns the per-replica health states.
func (g *Group) Health() []runtime.Health {
	out := make([]runtime.Health, len(g.units))
	for i, u := range g.units {
		if !u.healthy.Load() {
			out[i] = runtime.Unhealthy
		}
	}
	return out
}

// HealthyReplicas returns how many replicas are currently in rotation.
func (g *Group) HealthyReplicas() int {
	n := 0
	for _, u := range g.units {
		if u.healthy.Load() {
			n++
		}
	}
	return n
}

// FaultStats implements runtime.FaultReporter.
func (g *Group) FaultStats() runtime.FaultStats {
	return runtime.FaultStats{
		Retries:           g.retries.Load(),
		Failovers:         g.failovers.Load(),
		Readmissions:      g.readmissions.Load(),
		Panics:            g.panics.Load(),
		UnhealthyReplicas: len(g.units) - g.HealthyReplicas(),
	}
}

// ModeledBatchUS returns the modeled wall time of one scattered batch under
// the current topology: the slowest replica's contended scatter transfer plus
// sub-batch execution.  Zero when no replica runs on a modeled device.
func (g *Group) ModeledBatchUS() float64 {
	topo := g.topo.Load()
	var worst float64
	for i, u := range g.units {
		if topo.shares[i] == 0 {
			continue
		}
		e, err := u.engine(g, topo.shares[i])
		if err != nil {
			continue
		}
		if total := e.modeled + topo.scatter[i]; total > worst {
			worst = total
		}
	}
	return worst
}

// RunInto implements runtime.Runner: the batch is scattered across the
// replicas, the sub-batches run concurrently, and the outputs land in dst
// exactly where a single-device run would put them.
func (g *Group) RunInto(in, dst *tensor.Tensor) error {
	return g.RunIntoCtx(context.Background(), in, dst)
}

// RunIntoCtx is RunInto honoring a context: cancellation propagates into
// every replica's sub-batch (between ops, between pipeline stages) and
// suppresses retries and failover — a deadline-expired batch fails with
// ctx.Err() instead of burning the survivors on work nobody is waiting for.
func (g *Group) RunIntoCtx(ctx context.Context, in, dst *tensor.Tensor) error {
	if g.closed.Load() {
		return ErrGroupClosed
	}
	if in.Shape != g.inShape {
		return fmt.Errorf("replica: %s input shape %v, want %v", g.base.Net.Name, in.Shape, g.inShape)
	}
	if dst.Shape != g.outShape {
		return fmt.Errorf("replica: %s output shape %v, want %v", g.base.Net.Name, dst.Shape, g.outShape)
	}
	// Sub-batch views slice images off the NCHW linearisation; callers in
	// other layouts stage through pooled NCHW tensors.
	src := in
	if in.Layout != tensor.NCHW {
		staged := g.inPool.Get().(*tensor.Tensor)
		defer g.inPool.Put(staged)
		if err := tensor.ConvertInto(in, staged); err != nil {
			return fmt.Errorf("replica: staging input: %w", err)
		}
		src = staged
	}
	out := dst
	if dst.Layout != tensor.NCHW {
		staged := g.outPool.Get().(*tensor.Tensor)
		defer g.outPool.Put(staged)
		out = staged
	}

	// Failover loop: run the whole batch on the current topology; if any
	// replica fails past its retries, mark it unhealthy, re-derive the split
	// over the survivors and re-run the whole batch.  Re-running everything
	// (rather than stitching surviving rows to re-computed ones) keeps the
	// output bit-identical trivially: rows are image-independent and
	// deterministic, so each full re-run reproduces the same bits.  The loop
	// is bounded by the replica count — every iteration removes at least one
	// replica or returns.
	var lastErr error
	for round := 0; round <= len(g.units); round++ {
		topo := g.topo.Load()
		errs := g.runTopology(ctx, topo, src, out)
		lastErr = errors.Join(errs...)
		if lastErr == nil {
			g.batches.Add(1)
			if out != dst {
				if err := tensor.ConvertInto(out, dst); err != nil {
					return fmt.Errorf("replica: delivering output: %w", err)
				}
			}
			return nil
		}
		if err := ctx.Err(); err != nil {
			// The caller is gone (or out of time): don't fail over on its
			// behalf — the failure may be the cancellation itself.
			return err
		}
		for i, uerr := range errs {
			if uerr == nil {
				continue
			}
			if g.units[i].healthy.CompareAndSwap(true, false) {
				g.failovers.Add(1)
			}
		}
		if err := g.rebuild(); err != nil {
			return fmt.Errorf("replica: %w (last batch error: %w)", err, lastErr)
		}
	}
	return fmt.Errorf("replica: %w", lastErr)
}

// runTopology runs one whole batch under one topology, returning the
// per-unit errors (nil entries for units that succeeded or were idle).
func (g *Group) runTopology(ctx context.Context, topo *topology, src, out *tensor.Tensor) []error {
	chwIn := g.inShape.C * g.inShape.H * g.inShape.W
	chwOut := g.outShape.C * g.outShape.H * g.outShape.W
	var wg sync.WaitGroup
	errs := make([]error, len(g.units))
	for i, u := range g.units {
		share, offset := topo.shares[i], topo.offsets[i]
		if share == 0 {
			continue
		}
		e, err := u.engine(g, share)
		if err != nil {
			errs[i] = err
			continue
		}
		subIn, err := tensor.NewFrom(
			tensor.Shape{N: share, C: g.inShape.C, H: g.inShape.H, W: g.inShape.W},
			tensor.NCHW, src.Data[offset*chwIn:(offset+share)*chwIn])
		if err != nil {
			errs[i] = fmt.Errorf("replica %d: %w", u.index, err)
			continue
		}
		subOut, err := tensor.NewFrom(
			tensor.Shape{N: share, C: g.outShape.C, H: g.outShape.H, W: g.outShape.W},
			tensor.NCHW, out.Data[offset*chwOut:(offset+share)*chwOut])
		if err != nil {
			errs[i] = fmt.Errorf("replica %d: %w", u.index, err)
			continue
		}
		wg.Add(1)
		go func(u *unit, e *engine, subIn, subOut *tensor.Tensor) {
			defer wg.Done()
			if err := g.runUnit(ctx, u, e, subIn, subOut); err != nil {
				errs[u.index] = fmt.Errorf("replica %d: %w", u.index, err)
			}
		}(u, e, subIn, subOut)
	}
	wg.Wait()
	return errs
}

// runUnit runs one sub-batch on one replica, retrying under backoff on
// failure.  Panics have already been contained into *runtime.PanicError by
// the engine's executor; they are counted here and treated like any other
// failure.  Cancellation suppresses retries.
func (g *Group) runUnit(ctx context.Context, u *unit, e *engine, in, out *tensor.Tensor) error {
	for attempt := 0; ; attempt++ {
		gob := g.obsv.Load()
		var t0 int64
		if gob != nil && gob.ob.Trace != nil {
			t0 = gob.ob.Trace.Now()
		}
		start := time.Now()
		err := e.run(ctx, in, out)
		elapsed := time.Since(start)
		u.measuredNS.Add(int64(elapsed))
		u.batches.Add(1)
		if gob != nil {
			gob.observe(u.index, t0, elapsed, e.modeled, in.Shape.N)
		}
		if err == nil {
			return nil
		}
		u.failures.Add(1)
		var pe *runtime.PanicError
		if errors.As(err, &pe) {
			g.panics.Add(1)
		}
		if ctx.Err() != nil || attempt >= g.cfg.MaxRetries {
			return err
		}
		g.retries.Add(1)
		if d := g.cfg.RetryBackoff.Delay(attempt); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return ctx.Err()
			case <-g.probeStop:
				return ErrGroupClosed
			}
		}
	}
}

// probeLoop periodically probes unhealthy replicas with a one-image run and
// re-admits those whose probe succeeds, re-deriving the topology to hand them
// traffic again.
func (g *Group) probeLoop() {
	defer g.probeWG.Done()
	ticker := time.NewTicker(g.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-g.probeStop:
			return
		case <-ticker.C:
		}
		for i, u := range g.units {
			if u.healthy.Load() || g.weights[i] <= 0 {
				continue
			}
			if g.probeUnit(u) {
				if u.healthy.CompareAndSwap(false, true) {
					g.readmissions.Add(1)
					if err := g.rebuild(); err != nil {
						// Nothing healthy changed for the worse; leave the
						// old topology standing and retry next tick.
						u.healthy.Store(false)
					}
				}
			}
		}
	}
}

// probeUnit runs one sub-batch through the replica's smallest cached engine
// (compiling a one-image engine if it has none) and reports success.  A dead
// device fails the probe immediately; a transiently faulty one eventually
// passes.
func (g *Group) probeUnit(u *unit) bool {
	u.mu.Lock()
	share := -1
	for s := range u.engines {
		if share == -1 || s < share {
			share = s
		}
	}
	u.mu.Unlock()
	if share == -1 {
		share = 1
	}
	e, err := u.engine(g, share)
	if err != nil {
		return false
	}
	in := tensor.New(tensor.Shape{N: share, C: g.inShape.C, H: g.inShape.H, W: g.inShape.W}, tensor.NCHW)
	out := tensor.New(tensor.Shape{N: share, C: g.outShape.C, H: g.outShape.H, W: g.outShape.W}, tensor.NCHW)
	err = func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("replica %d: probe panic: %v", u.index, r)
			}
		}()
		return e.run(context.Background(), in, out)
	}()
	return err == nil
}

// Run executes one batch, returning a freshly allocated output in the input's
// layout.
func (g *Group) Run(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := tensor.New(g.outShape, in.Layout)
	if err := g.RunInto(in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Close stops the background prober and the stage goroutines of
// pipeline-sharded replicas.  It is idempotent; RunInto after Close returns
// ErrGroupClosed.
func (g *Group) Close() {
	g.mu.Lock()
	if g.closed.Load() {
		g.mu.Unlock()
		return
	}
	g.closed.Store(true)
	close(g.probeStop)
	g.mu.Unlock()
	g.probeWG.Wait()
	for _, u := range g.units {
		u.mu.Lock()
		for _, e := range u.engines {
			if e.pipe != nil {
				e.pipe.Close()
			}
		}
		u.mu.Unlock()
	}
}

// Instrument attaches an observer to the group: every sub-batch records a
// replica span (with its share and modeled micros) on the replica's trace
// lane block — replica r owns lanes [laneFor(r), laneFor(r)+stride), where
// stride is the deepest replica pipeline, so a pipelined replica's stage
// lanes sit next to its sub-batch lane — and per-replica latency histograms
// and batch/failure counters are registered in the metrics registry.  All
// engines already compiled are instrumented, and engines compiled later
// (failover shares, probe engines) inherit the observer.  Call before
// serving traffic; a zero Observer detaches.
func (g *Group) Instrument(ob runtime.Observer) {
	if !ob.Enabled() {
		g.obsv.Store(nil)
		for _, u := range g.units {
			u.mu.Lock()
			for _, e := range u.engines {
				e.instrument(runtime.Observer{}, 0, u.index)
			}
			u.mu.Unlock()
		}
		return
	}
	stride := 1
	for _, u := range g.units {
		if len(u.devices) > stride {
			stride = len(u.devices)
		}
	}
	net := g.base.Net.Name
	gob := &groupObs{ob: ob, stride: int32(stride)}
	for i, u := range g.units {
		rL := obs.L("replica", fmt.Sprintf("%d", i))
		gob.spans = append(gob.spans, obs.Span{
			Name: fmt.Sprintf("replica %d", i),
			Cat:  obs.CatReplica,
			Lane: gob.laneFor(i),
		})
		gob.hists = append(gob.hists, ob.Metrics.Histogram("memcnn_replica_latency_us",
			"Per-replica sub-batch wall latency.", obs.L("net", net), rL))
		u := u
		ob.Metrics.CounterFunc("memcnn_replica_batches_total",
			"Sub-batch runs per replica (including retries).",
			func() float64 { return float64(u.batches.Load()) }, obs.L("net", net), rL)
		ob.Metrics.CounterFunc("memcnn_replica_failures_total",
			"Failed sub-batch runs per replica.",
			func() float64 { return float64(u.failures.Load()) }, obs.L("net", net), rL)
	}
	g.obsv.Store(gob)
	for i, u := range g.units {
		u.mu.Lock()
		for _, e := range u.engines {
			e.instrument(ob, gob.laneFor(i), i)
		}
		u.mu.Unlock()
	}
}

// Stats reports one replica's share and observed cost.
type Stats struct {
	Replica int
	Devices string
	Weight  float64
	Share   int
	Health  string
	Batches uint64
	// Failures counts sub-batch runs (including retries) that returned an
	// error.
	Failures uint64
	// ScatterUS is the modeled contended input transfer per batch and
	// ModeledUS the modeled sub-batch total including it; both zero on
	// unmodeled (CPU) replicas.
	ScatterUS float64
	ModeledUS float64
	// MeasuredUS is the mean measured wall time per sub-batch.
	MeasuredUS float64
}

// ReplicaStats snapshots per-replica counters under the current topology.
func (g *Group) ReplicaStats() []Stats {
	topo := g.topo.Load()
	out := make([]Stats, len(g.units))
	for i, u := range g.units {
		names := make([]string, len(u.devices))
		for j, d := range u.devices {
			names[j] = d.Name()
		}
		health := runtime.Healthy
		if !u.healthy.Load() {
			health = runtime.Unhealthy
		}
		s := Stats{
			Replica:   i,
			Devices:   strings.Join(names, "+"),
			Weight:    g.weights[i],
			Share:     topo.shares[i],
			Health:    health.String(),
			Batches:   u.batches.Load(),
			Failures:  u.failures.Load(),
			ScatterUS: topo.scatter[i],
		}
		if topo.shares[i] > 0 {
			if e, err := u.engine(g, topo.shares[i]); err == nil {
				s.ModeledUS = e.modeled + topo.scatter[i]
			}
		}
		if s.Batches > 0 {
			s.MeasuredUS = float64(u.measuredNS.Load()) / 1e3 / float64(s.Batches)
		}
		out[i] = s
	}
	return out
}

// Shares apportions a batch across replicas proportionally to their weights
// (largest-remainder rounding, ties to the lower index, so the split is
// deterministic).  Weights must be non-negative with a positive sum; a
// replica weighted 0 is guaranteed an empty share.
func Shares(batch int, weights []float64) ([]int, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("replica: batch %d must be positive", batch)
	}
	if len(weights) == 0 {
		return nil, fmt.Errorf("replica: no replica weights")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("replica: weight %d is %v", i, w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("replica: at least one replica needs a positive weight")
	}
	shares := make([]int, len(weights))
	rem := make([]float64, len(weights))
	assigned := 0
	for i, w := range weights {
		exact := float64(batch) * w / sum
		shares[i] = int(exact)
		rem[i] = exact - float64(shares[i])
		assigned += shares[i]
	}
	order := make([]int, 0, len(weights))
	for i, w := range weights {
		if w > 0 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool { return rem[order[a]] > rem[order[b]] })
	for k := 0; assigned < batch; k++ {
		shares[order[k%len(order)]]++
		assigned++
	}
	return shares, nil
}

// DeriveWeights estimates each replica's throughput weight from its devices:
// a simulated device contributes its modeled batches-per-second for the base
// program (gpusim pricing), a CPU device its measured rate from a short
// warmup probe (probes timed runs after one warming run; minimum taken).  A
// replica's weight is the sum over its devices, crediting pipeline-sharded
// replicas with their extra stage throughput.  Devices are resolved through
// fault wrappers (runtime.SimOf), so a FaultDevice around a simulated device
// is still priced on its hardware model rather than probed.
func DeriveWeights(base *runtime.Program, devices [][]runtime.Device, probes int) []float64 {
	if probes <= 0 {
		probes = 2
	}
	weights := make([]float64, len(devices))
	for i, devs := range devices {
		for _, d := range devs {
			if sd := runtime.SimOf(d); sd != nil {
				if us := sd.ModelProgramUS(base); us > 0 {
					weights[i] += 1e6 / us
				}
				continue
			}
			if sec := probeSeconds(base, d, probes); sec > 0 {
				weights[i] += 1 / sec
			}
		}
	}
	return weights
}

// probeSeconds measures one warmed full-batch run of the base program on the
// device, returning the minimum of the timed runs in seconds.  A transiently
// faulty device (a FaultDevice schedule) gets a bounded number of extra
// attempts before the probe gives up and weights the replica 0 — a flaky
// device should start with its fair share and earn failover later, not be
// starved at construction.
func probeSeconds(base *runtime.Program, d runtime.Device, probes int) float64 {
	exec := runtime.NewExecutorOn(base, d)
	in := tensor.New(base.InputShape(), tensor.NCHW)
	out := tensor.New(base.OutputShape(), tensor.NCHW)
	warmed := false
	for attempt := 0; attempt < 3 && !warmed; attempt++ { // warm the arena pool
		warmed = exec.RunInto(in, out) == nil
	}
	if !warmed {
		return 0
	}
	best := math.Inf(1)
	for p, attempts := 0, 0; p < probes && attempts < probes+3; attempts++ {
		start := time.Now()
		if err := exec.RunInto(in, out); err != nil {
			continue
		}
		if sec := time.Since(start).Seconds(); sec < best {
			best = sec
		}
		p++
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// ParseDevices builds the device matrix for a replica fleet from a
// comma-separated hardware list: each entry is "titanblack", "titanx" or
// "cpu", assigned to replicas in order and cycled when the fleet is larger
// than the list ("titanblack,titanx" alternates the two models).  Every
// replica receives `stages` devices of its model, pipeline-sharding the
// replica when stages > 1.  An empty spec defaults to the paper's Titan
// Black for every replica.
func ParseDevices(spec string, replicas, stages int) ([][]runtime.Device, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("replica: replica count %d must be positive", replicas)
	}
	if stages <= 0 {
		stages = 1
	}
	models := []string{"titanblack"}
	if strings.TrimSpace(spec) != "" {
		models = strings.Split(spec, ",")
	}
	hw := map[string]*gpusim.Device{}
	out := make([][]runtime.Device, replicas)
	for r := 0; r < replicas; r++ {
		model := strings.ToLower(strings.TrimSpace(models[r%len(models)]))
		devs := make([]runtime.Device, stages)
		for s := 0; s < stages; s++ {
			label := fmt.Sprintf("r%d.%d", r, s)
			switch model {
			case "cpu":
				devs[s] = runtime.CPUDevice{}
			case "titanblack":
				if hw[model] == nil {
					hw[model] = gpusim.TitanBlack()
				}
				devs[s] = runtime.NewSimDevice(label, hw[model])
			case "titanx":
				if hw[model] == nil {
					hw[model] = gpusim.TitanX()
				}
				devs[s] = runtime.NewSimDevice(label, hw[model])
			default:
				return nil, fmt.Errorf("replica: unknown device model %q (want titanblack, titanx or cpu)", model)
			}
		}
		out[r] = devs
	}
	return out, nil
}
