package train

import (
	"math"
	"os"
	"testing"

	"memcnn/internal/gpusim"
	"memcnn/internal/layers"
	"memcnn/internal/network"
	"memcnn/internal/runtime"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

// fullRun gates the heavy whole-net executions (AlexNet, ZFNet, VGG training
// steps) behind the same env switch the golden tests use.
func fullRun() bool { return os.Getenv("MEMCNN_GOLDEN_FULL") != "" }

func constructors() map[string]func() (*network.Network, error) {
	return map[string]func() (*network.Network, error){
		"LeNet":   workloads.LeNet,
		"Cifar10": workloads.Cifar10,
		"AlexNet": workloads.AlexNet,
		"ZFNet":   workloads.ZFNet,
		"VGG":     workloads.VGG,
	}
}

// batch returns a deterministic labelled batch for a compiled program.
func batch(p *Program, seed uint64) (*tensor.Tensor, []int) {
	images := tensor.Random(p.InputShape(), tensor.NCHW, seed)
	labels := make([]int, p.Batch)
	for i := range labels {
		labels[i] = int((seed + uint64(i)*2654435761) % uint64(p.Classes))
	}
	return images, labels
}

// weightChecksum walks the network's trainable layers and folds every
// parameter bit into one sum, so two networks agree iff their weights are
// bit-identical.
func weightChecksum(net *network.Network) uint64 {
	var sum uint64
	fold := func(vals []float32) {
		for _, v := range vals {
			sum = sum*1099511628211 + uint64(math.Float32bits(v))
		}
	}
	for _, l := range net.Layers {
		switch tl := l.(type) {
		case *layers.Conv:
			fold(tl.Filters().Data)
		case *layers.FullyConnected:
			fold(tl.Weights())
		}
	}
	return sum
}

func TestCompileAllWorkloadsPlansValidate(t *testing.T) {
	for name, ctor := range constructors() {
		for _, ck := range []Checkpoint{CheckpointOff, CheckpointOn} {
			net, err := ctor()
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			p, err := CompileTraining(net, Options{Checkpoint: ck})
			if err != nil {
				t.Fatalf("%s/%v: compile: %v", name, ck, err)
			}
			if err := p.Mem.Validate(p.Program); err != nil {
				t.Errorf("%s/%v: memory plan invalid: %v", name, ck, err)
			}
			if ck == CheckpointOn && p.RecomputeOps == 0 {
				t.Errorf("%s: checkpointing emitted no recompute ops", name)
			}
			if p.Mem.PeakBytes() >= p.NaiveBytes() {
				t.Errorf("%s/%v: planned peak %d not below naive %d", name, ck, p.Mem.PeakBytes(), p.NaiveBytes())
			}
		}
	}
}

// TestCheckpointLowersPeak is the acceptance criterion: recompute-vs-store
// checkpointing strictly lowers the planned peak on the big nets.
func TestCheckpointLowersPeak(t *testing.T) {
	for _, name := range []string{"AlexNet", "VGG"} {
		ctor := constructors()[name]
		net, err := ctor()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		store, err := CompileTraining(net, Options{Checkpoint: CheckpointOff})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ckpt, err := CompileTraining(net, Options{Checkpoint: CheckpointOn})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ckpt.Mem.PeakBytes() >= store.Mem.PeakBytes() {
			t.Errorf("%s: checkpointed peak %.2f MiB not below store-all %.2f MiB", name,
				float64(ckpt.Mem.PeakBytes())/(1<<20), float64(store.Mem.PeakBytes())/(1<<20))
		}
		auto, err := CompileTraining(net, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !auto.Checkpointed {
			t.Errorf("%s: auto policy did not select the checkpointed plan", name)
		}
		if auto.StorePeakBytes != store.Mem.PeakBytes() {
			t.Errorf("%s: auto reports store peak %d, store-all plan has %d", name, auto.StorePeakBytes, store.Mem.PeakBytes())
		}
	}
}

// TestPlannedNaiveBitIdentical runs the same training steps through the
// planned (arena, checkpointing auto) executor and the naive (per-buffer,
// store-all) executor on two independently built but identically seeded
// networks, and requires bit-identical losses and final weights.
func TestPlannedNaiveBitIdentical(t *testing.T) {
	small := map[string]int{"LeNet": 8, "Cifar10": 8, "AlexNet": 2, "ZFNet": 2, "VGG": 1}
	heavy := map[string]bool{"AlexNet": true, "ZFNet": true, "VGG": true}
	for name, ctor := range constructors() {
		if heavy[name] && !fullRun() {
			t.Logf("%s: skipped without MEMCNN_GOLDEN_FULL", name)
			continue
		}
		base1, err := ctor()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		base2, err := ctor()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		net1, err := base1.WithBatch(small[name])
		if err != nil {
			t.Fatalf("%s: rebatch: %v", name, err)
		}
		net2, err := base2.WithBatch(small[name])
		if err != nil {
			t.Fatalf("%s: rebatch: %v", name, err)
		}

		planned, err := CompileTraining(net1, Options{Checkpoint: CheckpointAuto})
		if err != nil {
			t.Fatalf("%s: compile planned: %v", name, err)
		}
		storeAll, err := CompileTraining(net2, Options{Checkpoint: CheckpointOff})
		if err != nil {
			t.Fatalf("%s: compile store-all: %v", name, err)
		}
		pe, err := NewExecutor(planned)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ne, err := NewNaiveExecutor(storeAll, runtime.CPUDevice{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}

		for step := 0; step < 2; step++ {
			images, lbls := batch(planned, uint64(7+step))
			ps, err := pe.Step(images, lbls)
			if err != nil {
				t.Fatalf("%s: planned step %d: %v", name, step, err)
			}
			ns, err := ne.Step(images, lbls)
			if err != nil {
				t.Fatalf("%s: naive step %d: %v", name, step, err)
			}
			if math.Float64bits(ps.Loss) != math.Float64bits(ns.Loss) {
				t.Fatalf("%s: step %d loss diverged: planned %v naive %v", name, step, ps.Loss, ns.Loss)
			}
		}
		if c1, c2 := weightChecksum(base1), weightChecksum(base2); c1 != c2 {
			t.Errorf("%s: weights diverged after training (%#x vs %#x)", name, c1, c2)
		}
	}
}

// scaleForTraining rescales the library's uniform [-1,1) weights by
// 1/sqrt(fan-in) so the softmax starts unsaturated — the synthetic init is
// built for memory experiments, not for optimisation.
func scaleForTraining(net *network.Network) {
	for _, l := range net.Layers {
		switch tl := l.(type) {
		case *layers.Conv:
			f := tl.Filters()
			s := float32(1 / math.Sqrt(float64(f.Shape.C*f.Shape.H*f.Shape.W)))
			for i := range f.Data {
				f.Data[i] *= s
			}
		case *layers.FullyConnected:
			w := tl.Weights()
			s := float32(1 / math.Sqrt(float64(tl.InDim)))
			for i := range w {
				w[i] *= s
			}
		}
	}
}

// TestLossDecreases drives several steps on one fixed batch: SGD on a batch
// it sees every step must reduce the loss.
func TestLossDecreases(t *testing.T) {
	base, err := workloads.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	net, err := base.WithBatch(8)
	if err != nil {
		t.Fatal(err)
	}
	scaleForTraining(net)
	tr, err := NewTrainer(net, Options{SGD: SGD{LR: 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	p := tr.Executor().Program()
	images, lbls := batch(p, 42)
	var first, last float64
	for step := 0; step < 5; step++ {
		s, err := tr.Step(Batch{Images: images, Labels: lbls})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if step == 0 {
			first = s.Loss
		}
		last = s.Loss
	}
	if !(last < first) {
		t.Errorf("loss did not decrease on a fixed batch: first %v last %v", first, last)
	}
}

func TestTrainerEpoch(t *testing.T) {
	base, err := workloads.LeNet()
	if err != nil {
		t.Fatal(err)
	}
	net, err := base.WithBatch(4)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTrainer(net, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := tr.Executor().Program()
	var batches []Batch
	for i := 0; i < 3; i++ {
		images, lbls := batch(p, uint64(100+i))
		batches = append(batches, Batch{Images: images, Labels: lbls})
	}
	stats, err := tr.Epoch(batches)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("epoch returned %d stats, want 3", len(stats))
	}
	for i, s := range stats {
		if s.Loss <= 0 || math.IsNaN(s.Loss) {
			t.Errorf("step %d: implausible loss %v", i, s.Loss)
		}
	}
}

// TestSimDeviceModelsTrainingStep prices a planned training step on the
// modeled GPU: the step must carry a positive modeled latency and the result
// must stay bit-identical to the CPU device (the sim device computes on the
// host).
func TestSimDeviceModelsTrainingStep(t *testing.T) {
	mkExec := func(dev runtime.Device) *Executor {
		base, err := workloads.LeNet()
		if err != nil {
			t.Fatal(err)
		}
		net, err := base.WithBatch(4)
		if err != nil {
			t.Fatal(err)
		}
		p, err := CompileTraining(net, Options{})
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewExecutorOn(p, dev)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	sim := mkExec(runtime.NewSimDevice("sim0", gpusim.TitanBlack()))
	cpu := mkExec(runtime.CPUDevice{})
	images, lbls := batch(sim.Program(), 9)
	ss, err := sim.Step(images, lbls)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := cpu.Step(images, lbls)
	if err != nil {
		t.Fatal(err)
	}
	if ss.ModeledUS <= 0 {
		t.Errorf("sim device modeled %v us for a training step, want > 0", ss.ModeledUS)
	}
	if math.Float64bits(ss.Loss) != math.Float64bits(cs.Loss) {
		t.Errorf("sim loss %v differs from cpu loss %v", ss.Loss, cs.Loss)
	}
}
