package train

import (
	"fmt"

	"memcnn/internal/network"
	"memcnn/internal/tensor"
)

// Batch is one labelled training batch.
type Batch struct {
	Images *tensor.Tensor
	Labels []int
}

// Trainer drives a compiled training program over steps and epochs.
type Trainer struct {
	exec *Executor
}

// NewTrainer compiles a network for training and binds it to a planned arena
// on the CPU device — the one-call entry point.
func NewTrainer(net *network.Network, opts Options) (*Trainer, error) {
	p, err := CompileTraining(net, opts)
	if err != nil {
		return nil, err
	}
	exec, err := NewExecutor(p)
	if err != nil {
		return nil, err
	}
	return &Trainer{exec: exec}, nil
}

// NewTrainerFor wraps an already-built executor (any device, planned or
// naive).
func NewTrainerFor(exec *Executor) *Trainer { return &Trainer{exec: exec} }

// Executor returns the underlying executor.
func (t *Trainer) Executor() *Executor { return t.exec }

// Step runs one training step.
func (t *Trainer) Step(b Batch) (StepStats, error) {
	return t.exec.Step(b.Images, b.Labels)
}

// Epoch runs one pass over the batches, returning the per-step stats in
// order.
func (t *Trainer) Epoch(batches []Batch) ([]StepStats, error) {
	if len(batches) == 0 {
		return nil, fmt.Errorf("train: epoch over zero batches")
	}
	stats := make([]StepStats, len(batches))
	for i, b := range batches {
		s, err := t.exec.Step(b.Images, b.Labels)
		if err != nil {
			return stats[:i], fmt.Errorf("train: step %d: %w", i, err)
		}
		stats[i] = s
	}
	return stats, nil
}
