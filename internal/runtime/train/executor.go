package train

import (
	"fmt"

	"memcnn/internal/kernels"
	"memcnn/internal/runtime"
	"memcnn/internal/tensor"
)

// Executor runs a compiled training step over pre-bound buffers on one
// device.  The planned binding packs every buffer into the program's arena at
// its planned offset (zero steady-state allocation, the paper's memory
// efficiency); the naive binding gives every root buffer its own storage —
// the keep-everything baseline the planned footprint is measured against,
// bit-identical in results because both run the same op list through the same
// device.
//
// An Executor is single-goroutine: a training step mutates the layer
// parameters, so concurrent steps over one network make no sense.
type Executor struct {
	prog    *Program
	dev     runtime.Device
	bufs    []*tensor.Tensor
	planned bool
}

// NewExecutor binds the program to one planned arena on the CPU device.
func NewExecutor(p *Program) (*Executor, error) {
	return NewExecutorOn(p, runtime.CPUDevice{})
}

// NewExecutorOn binds the program to one planned arena on the given device.
func NewExecutorOn(p *Program, dev runtime.Device) (*Executor, error) {
	bufs, err := bind(p, true)
	if err != nil {
		return nil, err
	}
	return &Executor{prog: p, dev: dev, bufs: bufs, planned: true}, nil
}

// NewNaiveExecutor binds every root buffer to its own storage — the unplanned
// reference executor.  Its allocated bytes equal the program's NaiveBytes.
func NewNaiveExecutor(p *Program, dev runtime.Device) (*Executor, error) {
	bufs, err := bind(p, false)
	if err != nil {
		return nil, err
	}
	return &Executor{prog: p, dev: dev, bufs: bufs, planned: false}, nil
}

// Program returns the compiled training program.
func (e *Executor) Program() *Program { return e.prog }

// Planned reports whether the executor runs over the planned arena (false:
// naive per-buffer storage).
func (e *Executor) Planned() bool { return e.planned }

// AllocatedBytes is the activation/gradient storage the executor holds: the
// arena for a planned binding, the sum of root buffers for a naive one.
func (e *Executor) AllocatedBytes() int64 {
	if e.planned {
		return e.prog.Mem.PeakBytes()
	}
	return e.prog.NaiveBytes()
}

// bind builds the per-buffer tensor headers: planned over one arena at the
// memory plan's offsets, naive over per-root allocations.  Alias buffers view
// their root's storage either way.
func bind(p *Program, planned bool) ([]*tensor.Tensor, error) {
	bufs := make([]*tensor.Tensor, len(p.Buffers))
	var arena []float32
	if planned {
		arena = make([]float32, p.Mem.ArenaElems)
	}
	root := func(id runtime.BufferID) runtime.BufferID {
		for p.Buffers[id].AliasOf != runtime.NoBuffer {
			id = p.Buffers[id].AliasOf
		}
		return id
	}
	for i, b := range p.Buffers {
		if b.AliasOf != runtime.NoBuffer {
			view, ok := bufs[root(runtime.BufferID(i))].Reshape(b.Shape)
			if !ok {
				return nil, fmt.Errorf("train: buffer %d cannot reinterpret its root as %v", i, b.Shape)
			}
			bufs[i] = view
			continue
		}
		var backing []float32
		if planned {
			off := p.Mem.Offsets[i]
			backing = arena[off : off+b.Elems()]
		} else {
			backing = make([]float32, b.Elems())
		}
		t, err := tensor.NewFrom(b.Shape, b.Layout, backing)
		if err != nil {
			return nil, fmt.Errorf("train: binding buffer %d: %w", i, err)
		}
		bufs[i] = t
	}
	return bufs, nil
}

// StepStats reports one training step.
type StepStats struct {
	// Loss is the mean softmax cross-entropy of the batch, computed from the
	// forward probabilities before the update.
	Loss float64
	// ModeledUS is the device's modeled step time (zero on the CPU device).
	ModeledUS float64
}

// Step runs one training step: stage the batch and labels, execute the full
// forward-loss-backward-update op list, and read the loss off the
// still-resident probability buffer.  The layer parameters are updated in
// place.
func (e *Executor) Step(images *tensor.Tensor, labels []int) (StepStats, error) {
	p := e.prog
	if images.Shape != p.InputShape() {
		return StepStats{}, fmt.Errorf("train: %s input shape %v, want %v", p.Net.Name, images.Shape, p.InputShape())
	}
	if len(labels) != p.Batch {
		return StepStats{}, fmt.Errorf("train: %s got %d labels for batch %d", p.Net.Name, len(labels), p.Batch)
	}
	lbl := e.bufs[p.Labels].Data
	for i, v := range labels {
		if v < 0 || v >= p.Classes {
			return StepStats{}, fmt.Errorf("train: label %d out of range for %d classes", v, p.Classes)
		}
		lbl[i] = float32(v)
	}
	if err := tensor.ConvertInto(images, e.bufs[p.Input]); err != nil {
		return StepStats{}, fmt.Errorf("train: staging input: %w", err)
	}

	var modeledUS float64
	for i, op := range p.Ops {
		if op.Kind == runtime.OpReshape && p.Buffers[op.Out].AliasOf != runtime.NoBuffer {
			continue // zero-copy view
		}
		var scratch []float32
		if op.Scratch != runtime.NoBuffer {
			scratch = e.bufs[op.Scratch].Data
		}
		var aux *tensor.Tensor
		if op.Aux != runtime.NoBuffer {
			aux = e.bufs[op.Aux]
		}
		us, err := e.dev.RunOp(p.Program, i, e.bufs[op.In], e.bufs[op.Out], aux, scratch)
		if err != nil {
			return StepStats{}, fmt.Errorf("train: op %d (%s): %w", i, op.Name, err)
		}
		modeledUS += us
	}

	// The probability buffer doubles as the program output, so the planner
	// kept it live past the last op.
	loss, err := kernels.SoftmaxCrossEntropyLoss(e.bufs[p.Probs].Data, labels,
		kernels.SoftmaxConfig{N: p.Batch, Classes: p.Classes})
	if err != nil {
		return StepStats{}, fmt.Errorf("train: loss: %w", err)
	}
	return StepStats{Loss: loss, ModeledUS: modeledUS}, nil
}
