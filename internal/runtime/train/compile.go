// Package train extends the planned runtime to whole training steps: one
// compiled op list covers the forward pass, the softmax cross-entropy loss
// gradient, the backward pass and the SGD parameter update, and the memory
// planner (runtime.PlanMemory) packs the joint graph — forward activations
// the backward pass still needs, gradient buffers that die as soon as the
// upstream layer consumes them, and op-local workspaces — into one arena.
//
// Checkpointing is a planner decision: cheap activations (ReLU and pooling
// outputs) can be dropped from the stored set and recomputed just in time
// during the backward pass (OpRecompute), trading a bounded amount of forward
// FLOPs — each dropped activation is recomputed at most once — for peak arena
// bytes.  CheckpointAuto compiles both variants and keeps the smaller plan.
//
// The paper profiles its memory optimisations on complete forward-backward
// Caffe iterations and notes that forward and backward share data structures
// and convolution kernels; this package is that extension of the inference
// planner built by the earlier milestones.
package train

import (
	"fmt"

	"memcnn/internal/layers"
	"memcnn/internal/network"
	"memcnn/internal/runtime"
	"memcnn/internal/tensor"
)

// Checkpoint selects the recompute-vs-store policy for cheap activations.
type Checkpoint int

const (
	// CheckpointAuto compiles both variants and keeps the one with the lower
	// planned peak — checkpointing is a planner decision, not a user knob.
	CheckpointAuto Checkpoint = iota
	// CheckpointOff stores every forward activation until its last backward
	// use.
	CheckpointOff
	// CheckpointOn drops ReLU and pooling outputs after their forward
	// consumer and recomputes them during the backward pass.
	CheckpointOn
)

// String names the policy.
func (c Checkpoint) String() string {
	switch c {
	case CheckpointAuto:
		return "auto"
	case CheckpointOff:
		return "store"
	case CheckpointOn:
		return "recompute"
	default:
		return fmt.Sprintf("Checkpoint(%d)", int(c))
	}
}

// SGD is the optimiser the training subsystem implements: plain stochastic
// gradient descent, W -= LR · dW, applied in place by the program's OpSGD
// ops.  It is deliberately named after the update rule — internal/core's
// Optimizer, despite the name, optimises data layouts, not parameters.
type SGD struct {
	// LR is the learning rate; zero selects DefaultLR.
	LR float32
}

// DefaultLR is the learning rate used when Options leave SGD unset.
const DefaultLR = 0.01

// Options control how CompileTraining lowers a network.
type Options struct {
	// Checkpoint selects the recompute-vs-store policy (default
	// CheckpointAuto).
	Checkpoint Checkpoint
	// SGD configures the parameter update.
	SGD SGD
	// Verify runs the registered whole-program static checker
	// (internal/runtime/verify) over the compiled training step before it is
	// returned; compilation fails if any check does.  The checker must be
	// registered (import memcnn/internal/runtime/verify).
	Verify bool
}

// Program is a compiled training step: a runtime.Program whose op list covers
// forward, loss gradient, backward and SGD update, plus the training-specific
// buffer roles.
type Program struct {
	*runtime.Program

	// Batch and Classes describe the label vector and probability matrix.
	Batch   int
	Classes int
	// LR is the learning rate every OpSGD op applies.
	LR float32
	// Labels is the float32-coded label buffer the caller stages before each
	// step (listed in ExtraInputs).
	Labels runtime.BufferID
	// Probs is the softmax output buffer; it doubles as the program output so
	// the arena keeps it readable after the run for the loss value.
	Probs runtime.BufferID

	// Checkpointed reports whether the program drops-and-recomputes cheap
	// activations; RecomputeOps counts the OpRecompute ops emitted.
	Checkpointed bool
	RecomputeOps int
	// StorePeakBytes is the planned peak of the store-all variant, kept for
	// reporting when CheckpointAuto selected the recompute plan (equal to
	// Mem.PeakBytes() otherwise).
	StorePeakBytes int64
}

// CompileTraining lowers a network into a single training-step program in the
// fixed NCHW layout: every layer's forward op, the fused softmax +
// cross-entropy loss gradient, per-layer backward-data and parameter-gradient
// ops, and an SGD update per trainable layer, ordered so each layer's input
// gradient is computed before its own update touches the weights.  The
// network must end in a softmax classifier; every other layer must implement
// layers.BackwardLayer.
func CompileTraining(net *network.Network, opts Options) (*Program, error) {
	if net == nil || len(net.Layers) < 2 {
		return nil, fmt.Errorf("train: network must have at least a feature layer and a classifier")
	}
	last := net.Layers[len(net.Layers)-1]
	sm, ok := last.(*layers.Softmax)
	if !ok {
		return nil, fmt.Errorf("train: network must end in a softmax classifier, got %q", last.Name())
	}
	for _, l := range net.Layers[:len(net.Layers)-1] {
		if _, ok := l.(layers.BackwardLayer); !ok {
			return nil, fmt.Errorf("train: layer %q has no backward pass", l.Name())
		}
	}
	lr := opts.SGD.LR
	if lr == 0 {
		lr = DefaultLR
	}

	// finish records the Verify flag on the chosen program and, when set, runs
	// the registered static checker over it before it escapes the compiler.
	finish := func(tp *Program) (*Program, error) {
		tp.Opts.Verify = opts.Verify
		if opts.Verify {
			if err := runtime.VerifyProgram(tp.Program); err != nil {
				return nil, err
			}
		}
		return tp, nil
	}

	switch opts.Checkpoint {
	case CheckpointOff, CheckpointOn:
		p, err := lowerTraining(net, sm, lr, opts.Checkpoint == CheckpointOn)
		if err != nil {
			return nil, err
		}
		p.StorePeakBytes = p.Mem.PeakBytes()
		if p.Checkpointed {
			store, err := lowerTraining(net, sm, lr, false)
			if err != nil {
				return nil, err
			}
			p.StorePeakBytes = store.Mem.PeakBytes()
		}
		return finish(p)
	case CheckpointAuto:
		store, err := lowerTraining(net, sm, lr, false)
		if err != nil {
			return nil, err
		}
		ckpt, err := lowerTraining(net, sm, lr, true)
		if err != nil {
			return nil, err
		}
		ckpt.StorePeakBytes = store.Mem.PeakBytes()
		if ckpt.RecomputeOps > 0 && ckpt.Mem.PeakBytes() < store.Mem.PeakBytes() {
			return finish(ckpt)
		}
		store.StorePeakBytes = store.Mem.PeakBytes()
		return finish(store)
	default:
		return nil, fmt.Errorf("train: unknown checkpoint policy %v", opts.Checkpoint)
	}
}

// lowerTraining builds the joint op list.  All buffers use the NCHW layout:
// flattening boundaries become zero-copy alias reshapes (an NCHW backing
// slice is its own canonical flattening), both in the forward section and for
// the gradients flowing back through them.
func lowerTraining(net *network.Network, sm *layers.Softmax, lr float32, drop bool) (*Program, error) {
	const layout = tensor.NCHW
	feat := net.Layers[:len(net.Layers)-1] // layers below the classifier
	p := &runtime.Program{
		Net:         net,
		PlannerName: "train-nchw",
	}
	if drop {
		p.PlannerName = "train-nchw-ckpt"
	}
	tp := &Program{
		Program: p,
		Batch:   net.InputShape().N,
		Classes: sm.Cfg.Classes,
		LR:      lr,
	}

	newBuf := func(shape tensor.Shape, alias runtime.BufferID) runtime.BufferID {
		id := runtime.BufferID(len(p.Buffers))
		p.Buffers = append(p.Buffers, runtime.Buffer{ID: id, Shape: shape, Layout: layout, AliasOf: alias})
		return id
	}
	newScratch := func(elems int) runtime.BufferID {
		id := newBuf(tensor.Shape{N: 1, C: 1, H: 1, W: elems}, runtime.NoBuffer)
		p.Buffers[id].Scratch = true
		return id
	}
	root := func(id runtime.BufferID) runtime.BufferID {
		for p.Buffers[id].AliasOf != runtime.NoBuffer {
			id = p.Buffers[id].AliasOf
		}
		return id
	}
	// reshapeTo returns a view of src with the given shape, emitting an alias
	// reshape op (or a copy when the layout cannot reinterpret, which NCHW
	// flattening never hits).
	reshapeTo := func(src runtime.BufferID, shape tensor.Shape, tag string) (runtime.BufferID, error) {
		have := p.Buffers[src].Shape
		if have == shape {
			return src, nil
		}
		if have.Elems() != shape.Elems() {
			return runtime.NoBuffer, fmt.Errorf("train: cannot reshape %v into %v at %s", have, shape, tag)
		}
		alias := runtime.NoBuffer
		if tensor.CanReinterpret(have, shape, layout) {
			alias = root(src)
		}
		out := newBuf(shape, alias)
		p.Ops = append(p.Ops, runtime.Op{
			Kind: runtime.OpReshape,
			Name: fmt.Sprintf("%v->%v %s", have, shape, tag),
			In:   src, Out: out, Scratch: runtime.NoBuffer, Aux: runtime.NoBuffer,
		})
		return out, nil
	}
	forwardScratch := func(l layers.Layer) runtime.BufferID {
		if wf, ok := l.(layers.WorkspaceForwarder); ok {
			if elems := wf.WorkspaceElems(); elems > 0 {
				return newScratch(elems)
			}
		}
		return runtime.NoBuffer
	}

	// Forward section.
	cur := newBuf(net.InputShape(), runtime.NoBuffer)
	p.Input = cur
	fwdIn := make([]runtime.BufferID, len(net.Layers))  // view feeding each layer
	fwdOut := make([]runtime.BufferID, len(net.Layers)) // each layer's output
	dropped := make([]bool, len(net.Layers))
	for i, l := range net.Layers {
		var err error
		cur, err = reshapeTo(cur, l.InputShape(), "before "+l.Name())
		if err != nil {
			return nil, err
		}
		fwdIn[i] = cur
		out := newBuf(l.OutputShape(), runtime.NoBuffer)
		p.Ops = append(p.Ops, runtime.Op{
			Kind: runtime.OpLayer, Name: l.Name(), Layer: l,
			In: cur, Out: out, Scratch: forwardScratch(l), Aux: runtime.NoBuffer,
		})
		fwdOut[i] = out
		cur = out
		if drop && i < len(feat) {
			switch l.(type) {
			case *layers.ReLU, *layers.Pool:
				// Cheap to recompute: the planner drops the stored activation
				// — its live range ends at its forward consumer — and the
				// backward section rematerialises it on demand.
				dropped[i] = true
			}
		}
	}
	tp.Probs = cur
	p.Output = cur

	// Loss gradient: dLogits = (probs - onehot(labels)) / batch, fused with
	// the softmax backward so the classifier needs no backward op of its own.
	labels := newBuf(tensor.Shape{N: tp.Batch, C: 1, H: 1, W: 1}, runtime.NoBuffer)
	p.ExtraInputs = append(p.ExtraInputs, labels)
	tp.Labels = labels
	dLogits := newBuf(sm.InputShape(), runtime.NoBuffer)
	p.Ops = append(p.Ops, runtime.Op{
		Kind: runtime.OpLossGrad, Name: "loss " + sm.Name(), Layer: sm,
		In: tp.Probs, Out: dLogits, Aux: labels, Scratch: runtime.NoBuffer,
	})

	// materialize returns a buffer holding layer i's forward output valid at
	// the current backward position, emitting just-in-time OpRecompute ops
	// for dropped activations (each at most once, cached across consumers).
	recomputed := make(map[int]runtime.BufferID)
	reviews := make(map[int]runtime.BufferID) // re-derived reshape views per layer
	var materialize func(i int) (runtime.BufferID, error)
	materializeInput := func(i int) (runtime.BufferID, error) {
		if i == 0 {
			return p.Input, nil
		}
		src, err := materialize(i - 1)
		if err != nil {
			return runtime.NoBuffer, err
		}
		if src == fwdOut[i-1] {
			return fwdIn[i], nil
		}
		// The feeding activation was recomputed into a fresh buffer: re-derive
		// the reshape view against it.
		if v, ok := reviews[i]; ok {
			return v, nil
		}
		v, err := reshapeTo(src, net.Layers[i].InputShape(), "recomputed before "+net.Layers[i].Name())
		if err != nil {
			return runtime.NoBuffer, err
		}
		reviews[i] = v
		return v, nil
	}
	materialize = func(i int) (runtime.BufferID, error) {
		if i < 0 {
			return p.Input, nil
		}
		if !dropped[i] {
			return fwdOut[i], nil
		}
		if b, ok := recomputed[i]; ok {
			return b, nil
		}
		l := net.Layers[i]
		in, err := materializeInput(i)
		if err != nil {
			return runtime.NoBuffer, err
		}
		out := newBuf(l.OutputShape(), runtime.NoBuffer)
		p.Ops = append(p.Ops, runtime.Op{
			Kind: runtime.OpRecompute, Name: "recompute " + l.Name(), Layer: l,
			In: in, Out: out, Scratch: forwardScratch(l), Aux: runtime.NoBuffer,
		})
		tp.RecomputeOps++
		recomputed[i] = out
		return out, nil
	}

	// Backward section, last feature layer down to the first.  Per trainable
	// layer the order is backward-data, then grad-filter, then SGD: the input
	// gradient must see the pre-update weights, and updating immediately
	// after lets the parameter-gradient buffer die two ops after its
	// definition instead of surviving to the end of the program.  The
	// gradient chain stops at the lowest trainable layer — below it no op
	// would ever read the propagated gradient.
	lowest := -1
	for i := len(feat) - 1; i >= 0; i-- {
		if _, ok := feat[i].(layers.TrainableLayer); ok {
			lowest = i
		}
	}
	if lowest == -1 {
		return nil, fmt.Errorf("train: network %s has no trainable layer", net.Name)
	}
	grad := dLogits // gradient w.r.t. the current layer's output
	for i := len(feat) - 1; i >= lowest; i-- {
		l := feat[i]
		var err error
		grad, err = reshapeTo(grad, l.OutputShape(), "grad into "+l.Name())
		if err != nil {
			return nil, err
		}
		bl := l.(layers.BackwardLayer) // validated by CompileTraining
		tl, trainable := l.(layers.TrainableLayer)

		var dIn runtime.BufferID = runtime.NoBuffer
		if i > lowest {
			// Conv and fully-connected input gradients depend only on their
			// parameters; data-dependent layers consume their forward input.
			var bwdAux runtime.BufferID = runtime.NoBuffer
			if !trainable {
				if bwdAux, err = materializeInput(i); err != nil {
					return nil, err
				}
			}
			var bwdScratch runtime.BufferID = runtime.NoBuffer
			if elems := bl.BackwardWorkspaceElems(); elems > 0 {
				bwdScratch = newScratch(elems)
			}
			dIn = newBuf(l.InputShape(), runtime.NoBuffer)
			p.Ops = append(p.Ops, runtime.Op{
				Kind: runtime.OpBackward, Name: "bwd " + l.Name(), Layer: l,
				In: grad, Out: dIn, Aux: bwdAux, Scratch: bwdScratch,
			})
		}
		if trainable {
			in, err := materializeInput(i)
			if err != nil {
				return nil, err
			}
			dW := newBuf(tl.GradShape(), runtime.NoBuffer)
			p.Ops = append(p.Ops, runtime.Op{
				Kind: runtime.OpGradFilter, Name: "grad " + l.Name(), Layer: l,
				In: grad, Out: dW, Aux: in, Scratch: runtime.NoBuffer,
			})
			p.Ops = append(p.Ops, runtime.Op{
				Kind: runtime.OpSGD, Name: "sgd " + l.Name(), Layer: l,
				In: dW, Out: dW, Aux: runtime.NoBuffer, Scratch: runtime.NoBuffer, LR: lr,
			})
		}
		grad = dIn
	}

	mem, err := runtime.PlanMemory(p)
	if err != nil {
		return nil, fmt.Errorf("train: planning %s: %w", p.PlannerName, err)
	}
	p.Mem = mem
	tp.Checkpointed = tp.RecomputeOps > 0
	return tp, nil
}
