package runtime

import (
	"fmt"
	"sync"

	"memcnn/internal/tensor"
)

// Instance is one executable copy of a program: a single arena allocation
// plus a tensor header per buffer viewing its arena slice.  Instances are
// built once and recycled through a Pool, so steady-state inference performs
// no tensor allocation.
type Instance struct {
	prog  *Program
	arena []float32
	bufs  []*tensor.Tensor
}

// newInstance allocates the arena and binds every buffer header to its
// planned offset.  Alias buffers view the same storage as their root.
func newInstance(p *Program) *Instance {
	inst := &Instance{
		prog:  p,
		arena: make([]float32, p.Mem.ArenaElems),
		bufs:  make([]*tensor.Tensor, len(p.Buffers)),
	}
	for i, b := range p.Buffers {
		if b.AliasOf != NoBuffer {
			// A zero-copy view of its root's storage; roots always precede
			// their aliases, so the root header exists.
			view, ok := inst.bufs[p.root(BufferID(i))].Reshape(b.Shape)
			if !ok {
				panic(fmt.Sprintf("runtime: buffer %d cannot reinterpret its root as %v", i, b.Shape))
			}
			inst.bufs[i] = view
			continue
		}
		off := p.Mem.Offsets[i]
		t, err := tensor.NewFrom(b.Shape, b.Layout, inst.arena[off:off+b.Elems()])
		if err != nil {
			// Compile and PlanMemory guarantee consistent shapes/offsets.
			panic("runtime: " + err.Error())
		}
		inst.bufs[i] = t
	}
	return inst
}

// Pool recycles program instances across requests and workers.  It is backed
// by a sync.Pool, so idle instances can still be reclaimed under memory
// pressure while a loaded server reuses a small working set of arenas.
type Pool struct {
	prog *Program
	pool sync.Pool
}

// NewPool builds an instance pool for a compiled program.
func NewPool(p *Program) *Pool {
	pl := &Pool{prog: p}
	pl.pool.New = func() any { return newInstance(p) }
	return pl
}

// Get returns an instance, reusing a previously released one when available.
// The arena contents are unspecified; every program op fully overwrites its
// output buffer, so no clearing is needed.
func (pl *Pool) Get() *Instance { return pl.pool.Get().(*Instance) }

// Put releases an instance for reuse.
func (pl *Pool) Put(i *Instance) {
	if i != nil && i.prog == pl.prog {
		pl.pool.Put(i)
	}
}
