package runtime

import (
	"fmt"
	"sync"

	"memcnn/internal/tensor"
)

// Instance is one executable copy of a program: a single arena allocation
// plus a tensor header per buffer viewing its arena slice.  Instances are
// built once and recycled through a Pool, so steady-state inference performs
// no tensor allocation.
type Instance struct {
	prog  *Program
	arena []float32
	bufs  []*tensor.Tensor
}

// newInstance allocates the arena and binds every buffer header to its
// planned offset.  Alias buffers view the same storage as their root.  The
// consistency conditions it depends on (alias reinterpretability, offsets
// inside the arena, shape/layout validity) are checked when the program is
// constructed — PlanMemory rejects a plan that cannot instantiate — so a bad
// plan surfaces as a compile error, not a crash in a serving worker; the
// errors here are a backstop for hand-built programs.
func newInstance(p *Program) (*Instance, error) {
	inst := &Instance{
		prog:  p,
		arena: make([]float32, p.Mem.ArenaElems),
		bufs:  make([]*tensor.Tensor, len(p.Buffers)),
	}
	for i, b := range p.Buffers {
		if b.AliasOf != NoBuffer {
			// A zero-copy view of its root's storage; roots always precede
			// their aliases, so the root header exists.
			root := inst.bufs[p.root(BufferID(i))]
			if root == nil {
				return nil, fmt.Errorf("runtime: alias buffer %d precedes its root", i)
			}
			view, ok := root.Reshape(b.Shape)
			if !ok {
				return nil, fmt.Errorf("runtime: buffer %d cannot reinterpret its root as %v", i, b.Shape)
			}
			inst.bufs[i] = view
			continue
		}
		off := p.Mem.Offsets[i]
		if off < 0 || off+b.Elems() > len(inst.arena) {
			return nil, fmt.Errorf("runtime: buffer %d [%d,%d) outside arena of %d elems",
				i, off, off+b.Elems(), len(inst.arena))
		}
		t, err := tensor.NewFrom(b.Shape, b.Layout, inst.arena[off:off+b.Elems()])
		if err != nil {
			return nil, fmt.Errorf("runtime: buffer %d: %w", i, err)
		}
		inst.bufs[i] = t
	}
	return inst, nil
}

// Pool recycles program instances across requests and workers.  It is backed
// by a sync.Pool, so idle instances can still be reclaimed under memory
// pressure while a loaded server reuses a small working set of arenas.
type Pool struct {
	prog *Program
	pool sync.Pool
}

// NewPool builds an instance pool for a compiled program.
func NewPool(p *Program) *Pool {
	pl := &Pool{prog: p}
	pl.pool.New = func() any {
		inst, err := newInstance(p)
		if err != nil {
			return err
		}
		return inst
	}
	return pl
}

// Get returns an instance, reusing a previously released one when available.
// The arena contents are unspecified; every program op fully overwrites its
// output buffer, so no clearing is needed.  An error means the program's
// memory plan cannot be instantiated — impossible for compiler-built
// programs, which are validated at construction.
func (pl *Pool) Get() (*Instance, error) {
	switch v := pl.pool.Get().(type) {
	case *Instance:
		return v, nil
	case error:
		return nil, v
	default:
		return nil, fmt.Errorf("runtime: instance pool returned %T", v)
	}
}

// Put releases an instance for reuse.
func (pl *Pool) Put(i *Instance) {
	if i != nil && i.prog == pl.prog {
		pl.pool.Put(i)
	}
}
