package runtime

import (
	"fmt"

	"memcnn/internal/gpusim"
	"memcnn/internal/tensor"
)

// ShardBalance selects the per-op weight the partitioner balances across
// stages.
type ShardBalance int

const (
	// BalanceFLOPs balances the estimated arithmetic work per stage (layer
	// ops weigh their Cost-model FLOPs, data-movement ops one op per element
	// moved).  It is the default: pipeline throughput is set by the slowest
	// stage.
	BalanceFLOPs ShardBalance = iota
	// BalanceBytes balances the activation and scratch storage defined per
	// stage, approximating per-device peak arena footprint — the right
	// choice when the model must be split to fit device memory.
	BalanceBytes
)

// String names the balance policy.
func (b ShardBalance) String() string {
	switch b {
	case BalanceFLOPs:
		return "flops"
	case BalanceBytes:
		return "bytes"
	default:
		return fmt.Sprintf("ShardBalance(%d)", int(b))
	}
}

// ShardOptions control how a program is cut into pipeline stages.
type ShardOptions struct {
	// Devices assigns one device per stage.  When nil every stage runs on
	// the native CPU device.  When set, its length must equal the stage
	// count passed to Shard.
	Devices []Device
	// Balance selects the partitioning objective (default BalanceFLOPs).
	Balance ShardBalance
	// CostModel is the hardware model the FLOPs weights are priced on;
	// nil selects the paper's Titan Black.
	CostModel *gpusim.Device
}

// Stage is one contiguous slice of a sharded program's op list, compiled into
// a self-contained sub-program with its own memory plan, bound to one device.
type Stage struct {
	Index  int
	Device Device
	// Prog is the stage's sub-program: the base ops [FirstOp, LastOp]
	// re-indexed over the stage's own buffers, with the stage boundary as
	// program input/output and a per-stage arena plan.
	Prog *Program
	// FirstOp and LastOp delimit the stage in the base program's op list.
	FirstOp, LastOp int
	// TransferInBytes is the size of the cross-device transfer feeding this
	// stage (zero for the first stage, which is fed by the caller).
	TransferInBytes int64
	// Weight is the stage's partitioning weight under the chosen balance.
	Weight float64
}

// Ops returns the number of ops the stage executes.
func (s *Stage) Ops() int { return s.LastOp - s.FirstOp + 1 }

// ShardedProgram is a compiled program cut into contiguous pipeline stages.
// The lowered op list is a linear chain — every op consumes the previous op's
// output — so any op boundary is a valid cut: exactly one activation buffer
// crosses it, and that buffer becomes an explicit cross-device transfer.
type ShardedProgram struct {
	Base    *Program
	Balance ShardBalance
	Stages  []*Stage
}

// SummedPeakBytes is the total arena footprint across stages — the cost of
// sharding, reported against the single-device plan's PeakBytes.
func (sp *ShardedProgram) SummedPeakBytes() int64 {
	var total int64
	for _, st := range sp.Stages {
		total += st.Prog.Mem.PeakBytes()
	}
	return total
}

// TransferBytes is the total cross-device traffic per batch.
func (sp *ShardedProgram) TransferBytes() int64 {
	var total int64
	for _, st := range sp.Stages {
		total += st.TransferInBytes
	}
	return total
}

// String summarises the sharding.
func (sp *ShardedProgram) String() string {
	return fmt.Sprintf("ShardedProgram{%s, %d stages, %s-balanced, %.2f MiB summed arena vs %.2f MiB unsharded, %.2f MiB transfers}",
		sp.Base.Net.Name, len(sp.Stages), sp.Balance,
		float64(sp.SummedPeakBytes())/(1<<20), float64(sp.Base.Mem.PeakBytes())/(1<<20),
		float64(sp.TransferBytes())/(1<<20))
}

// Shard cuts a compiled program into `stages` contiguous pipeline stages,
// choosing the cuts that minimise the largest stage weight (per-stage FLOPs
// or defined bytes, see ShardBalance).  Each stage is compiled into a
// self-contained sub-program with its own arena plan; the buffer crossing
// each cut becomes an explicit transfer onto the next stage's device.  A
// stage count above the op count is clamped (every program supports at least
// one stage), so tiny networks stay shardable with a generic -devices flag.
func Shard(p *Program, stages int, opts ShardOptions) (*ShardedProgram, error) {
	if p == nil || len(p.Ops) == 0 {
		return nil, fmt.Errorf("runtime: cannot shard an empty program")
	}
	if stages <= 0 {
		return nil, fmt.Errorf("runtime: stage count %d must be positive", stages)
	}
	if opts.Devices != nil && len(opts.Devices) != stages {
		return nil, fmt.Errorf("runtime: %d devices for %d stages", len(opts.Devices), stages)
	}
	if stages > len(p.Ops) {
		stages = len(p.Ops)
	}
	model := opts.CostModel
	if model == nil {
		model = gpusim.TitanBlack()
	}

	weights := make([]float64, len(p.Ops))
	for i, op := range p.Ops {
		switch opts.Balance {
		case BalanceBytes:
			weights[i] = opBytes(p, op)
		default:
			weights[i] = opFLOPs(model, p, op)
		}
	}
	cuts := partition(weights, stages)

	sp := &ShardedProgram{Base: p, Balance: opts.Balance}
	first := 0
	for i, last := range cuts {
		prog, err := subProgram(p, i, first, last)
		if err != nil {
			return nil, err
		}
		var dev Device = CPUDevice{}
		if opts.Devices != nil {
			dev = opts.Devices[i]
		}
		st := &Stage{
			Index: i, Device: dev, Prog: prog,
			FirstOp: first, LastOp: last,
		}
		if i > 0 {
			st.TransferInBytes = p.Buffers[p.Ops[first].In].Bytes()
		}
		for _, w := range weights[first : last+1] {
			st.Weight += w
		}
		sp.Stages = append(sp.Stages, st)
		first = last + 1
	}
	if p.Opts.Verify {
		// The base program was verified at compile time; the cut re-indexes
		// buffers and re-roots alias chains, so each stage sub-program must
		// survive the same checks on its own.
		for _, st := range sp.Stages {
			if err := VerifyProgram(st.Prog); err != nil {
				return nil, fmt.Errorf("runtime: verifying stage %d [%d,%d]: %w", st.Index, st.FirstOp, st.LastOp, err)
			}
		}
	}
	return sp, nil
}

// opFLOPs estimates one op's arithmetic weight: layer ops are priced through
// their Cost kernel sequence on the model hardware; data-movement ops count
// one operation per element moved; alias reshapes are free.
func opFLOPs(model *gpusim.Device, p *Program, op Op) float64 {
	if op.Kind == OpLayer {
		stats, err := op.Layer.Cost(model, p.Buffers[op.In].Layout, costOptionsFor(op, p.Buffers[op.In].Layout))
		if err == nil {
			var flops float64
			for _, s := range stats {
				flops += s.FLOPs
			}
			if flops > 0 {
				return flops
			}
		}
	}
	if p.Buffers[op.Out].AliasOf != NoBuffer {
		return 0
	}
	return float64(p.Buffers[op.In].Shape.Elems())
}

// opBytes is one op's storage weight: the root output buffer it defines plus
// its op-local scratch.
func opBytes(p *Program, op Op) float64 {
	var b float64
	if out := p.Buffers[op.Out]; out.AliasOf == NoBuffer {
		b += float64(out.Bytes())
	}
	if op.Scratch != NoBuffer {
		b += float64(p.Buffers[op.Scratch].Bytes())
	}
	return b
}

// partition cuts the weight sequence into k non-empty contiguous runs
// minimising the maximum run weight (classic linear partitioning, exact DP)
// and returns the last index of each run.
func partition(weights []float64, k int) []int {
	n := len(weights)
	prefix := make([]float64, n+1)
	for i, w := range weights {
		prefix[i+1] = prefix[i] + w
	}
	sum := func(i, j int) float64 { return prefix[j+1] - prefix[i] } // inclusive

	// best[i][m]: minimal max-run-weight partitioning ops [0, i] into m+1 runs.
	best := make([][]float64, n)
	cut := make([][]int, n)
	for i := range best {
		best[i] = make([]float64, k)
		cut[i] = make([]int, k)
		best[i][0] = sum(0, i)
		cut[i][0] = -1
	}
	for m := 1; m < k; m++ {
		for i := m; i < n; i++ {
			bestCost, bestJ := -1.0, -1
			for j := m - 1; j < i; j++ {
				cost := best[j][m-1]
				if tail := sum(j+1, i); tail > cost {
					cost = tail
				}
				if bestJ == -1 || cost < bestCost {
					bestCost, bestJ = cost, j
				}
			}
			best[i][m], cut[i][m] = bestCost, bestJ
		}
	}

	cuts := make([]int, k)
	i, m := n-1, k-1
	for m >= 0 {
		cuts[m] = i
		i = cut[i][m]
		m--
	}
	return cuts
}

// subProgram compiles base ops [first, last] into a self-contained stage
// program: the boundary buffer feeding the stage becomes the program input
// (always a root — the transfer writes into it), every referenced buffer is
// re-indexed, and alias chains whose root precedes the stage are re-rooted at
// the stage input (the linear chain threads their shared storage through the
// boundary).  The stage gets its own arena plan.
func subProgram(base *Program, index, first, last int) (*Program, error) {
	sp := &Program{
		Net:         base.Net,
		PlannerName: fmt.Sprintf("%s/stage%d", base.PlannerName, index),
		Opts:        base.Opts,
	}
	idmap := make(map[BufferID]BufferID)
	addRoot := func(old BufferID) BufferID {
		ob := base.Buffers[old]
		id := BufferID(len(sp.Buffers))
		sp.Buffers = append(sp.Buffers, Buffer{
			ID: id, Shape: ob.Shape, Layout: ob.Layout,
			AliasOf: NoBuffer, Scratch: ob.Scratch,
		})
		idmap[old] = id
		return id
	}

	boundary := base.Input
	if first > 0 {
		boundary = base.Ops[first].In
	}
	sp.Input = addRoot(boundary)

	mapBuf := func(old BufferID) BufferID {
		if id, ok := idmap[old]; ok {
			return id
		}
		ob := base.Buffers[old]
		if ob.AliasOf == NoBuffer {
			return addRoot(old)
		}
		root, ok := idmap[base.root(old)]
		if !ok {
			// The alias's root precedes the stage; its storage reaches the
			// stage through the boundary buffer, which shares it.
			root = sp.Input
		}
		if !tensor.CanReinterpret(sp.Buffers[root].Shape, ob.Shape, ob.Layout) {
			// The relabelled view cannot reinterpret its new root: demote the
			// alias to a root of its own; the executor falls back to a copy.
			return addRoot(old)
		}
		id := BufferID(len(sp.Buffers))
		sp.Buffers = append(sp.Buffers, Buffer{
			ID: id, Shape: ob.Shape, Layout: ob.Layout, AliasOf: root,
		})
		idmap[old] = id
		return id
	}

	for i := first; i <= last; i++ {
		op := base.Ops[i]
		op.In = mapBuf(op.In)
		op.Out = mapBuf(op.Out)
		if op.Scratch != NoBuffer {
			op.Scratch = mapBuf(op.Scratch)
		}
		if op.Aux != NoBuffer {
			op.Aux = mapBuf(op.Aux)
		}
		sp.Ops = append(sp.Ops, op)
	}
	sp.Output = idmap[base.Ops[last].Out]

	// The stage must be self-contained: every buffer its ops read is either
	// the boundary input or produced by an earlier in-stage op.  Training
	// programs break this — backward ops reach across the cut for forward
	// activations (Aux) and the loss gradient reads the caller-staged label
	// vector (ExtraInputs) — and before this check subProgram silently
	// compiled such cuts into stages whose executor would read unwritten
	// arena storage.  Reject the cut instead.
	defined := make([]bool, len(sp.Buffers))
	defined[sp.root(sp.Input)] = true
	checkRead := func(op int, id BufferID) error {
		if !defined[sp.root(id)] {
			return fmt.Errorf("runtime: stage %d [%d,%d]: op %d (%s) reads buffer %d, whose value is produced outside the stage; the program cannot be cut here",
				index, first, last, op, base.Ops[first+op].Name, id)
		}
		return nil
	}
	for i, op := range sp.Ops {
		if err := checkRead(i, op.In); err != nil {
			return nil, err
		}
		if op.Aux != NoBuffer {
			if err := checkRead(i, op.Aux); err != nil {
				return nil, err
			}
		}
		defined[sp.root(op.Out)] = true
	}

	mem, err := PlanMemory(sp)
	if err != nil {
		return nil, fmt.Errorf("runtime: planning stage %d [%d,%d]: %w", index, first, last, err)
	}
	sp.Mem = mem
	return sp, nil
}
