// Package runtime executes networks under the memory discipline the paper
// plans for: a network.ExecutionPlan is compiled into a flat program of ops
// with explicit buffer IDs, the buffers are packed into a single arena by a
// liveness-driven static memory plan, and the program is run by an executor
// that performs no tensor allocation in steady state.
//
// The pipeline has three stages:
//
//	compile (graph.go)    — lower the layer stack into an op list: one op per
//	                        layer, plus the plan's layout-transform ops and
//	                        zero-copy reshape views at flattening boundaries.
//	                        With Options.ConvAlgorithms each convolution op
//	                        additionally records its execution strategy —
//	                        direct, im2col+GEMM or FFT.  internal/autotune
//	                        picks a base algorithm per layer shape (the
//	                        merged-matrix heuristic plus a large-filter
//	                        stride-1 FFT regime, or a measured probe of all
//	                        three kernels), and the compiler re-prices that
//	                        choice jointly with the layer's layout through
//	                        internal/layout (layout.JointConvChoice): the FFT
//	                        kernels live in NCHW, so promoting a layer to the
//	                        frequency domain charges the layout switch and
//	                        may flip the planner's layout together with the
//	                        algorithm — the paper's joint layout+algorithm
//	                        decision, shared verbatim with cmd/layoutplan
//	                        -algs.  The filter bank is pre-packed once into
//	                        the flat GEMM operand, and every kernel workspace
//	                        (GEMM unroll matrix, FFT spectrum planes,
//	                        fully-connected flatten staging, softmax logits)
//	                        becomes an op-local scratch buffer.
//	                        Layers declaring in-place safety
//	                        (layers.InPlaceForwarder, e.g. ReLU) alias their
//	                        output buffer onto their input, so the op reads
//	                        and writes the same arena storage.
//	memory plan (memplan.go) — liveness analysis over buffer IDs followed by
//	                        greedy best-fit offset assignment into one arena;
//	                        scratch buffers are live only during their op, so
//	                        the packer overlays them with activation storage,
//	                        and alias live ranges merge into their root's.
//	                        The plan reports its peak footprint against the
//	                        naive all-buffers-live total, making the paper's
//	                        memory-efficiency story measurable.
//	execute (executor.go, pool.go, device.go) — run the compiled program on
//	                        arena-backed tensor views recycled through a
//	                        sync.Pool, using the recorded convolution
//	                        algorithm, layers.WorkspaceForwarder/IntoForwarder
//	                        where available, and falling back to Forward plus
//	                        a copy elsewhere.  Steady-state runs allocate no
//	                        tensors or scratch slices.  Every op dispatches
//	                        through a Device: CPUDevice is the native path,
//	                        SimDevice computes the same results while pricing
//	                        each op on an internal/gpusim hardware model, so
//	                        runs report modeled device latency.
//
// On top of the single-device executor, shard.go cuts a compiled program into
// contiguous pipeline stages (the lowered op list is a linear chain, so every
// op boundary is a valid cut): the partitioner balances per-stage modeled
// FLOPs or defined bytes, the buffer crossing each cut becomes an explicit
// cross-device transfer, and every stage is compiled into a self-contained
// sub-program with its own arena plan.  pipeline.go streams batches through
// the stages — one goroutine per stage, per-stage arena pools, pooled
// boundary tensors — with results bit-identical to the unsharded executor.
//
// The complementary execution axis is data parallelism: the replica
// sub-package clones a compiled program across N devices (shared read-only
// weights via layers.Rebatcher and network.WithBatch, one arena pool per
// replica) and splits every batch into per-replica sub-batches weighted by
// modeled or probed device throughput, running them concurrently and
// reassembling bit-identically.  CompileLike supports it by lowering a
// rebatched network against the base program's per-layer layouts and
// convolution algorithms instead of re-selecting by the sub-batch shape.
// Replicas may themselves be pipeline-sharded, composing both axes; the
// modeled cost of the batch scatter divides the interconnect bandwidth among
// the simultaneous transfers (gpusim.Interconnect).
//
// Golden bit-equality holds per algorithm: direct-only programs reproduce the
// naive Network.Forward exactly, while algorithm-selected programs reproduce
// Program.ReferenceForward (the functional forward mirroring the recorded
// per-layer choices); every kernel fixes its accumulation order so results do
// not depend on layout, batching or worker count.  CompileFixedAlg pins every
// convolution to one algorithm, which is how the golden suite holds each of
// the three production paths against the reference on every workload network.
//
// On top of any engine, server.go provides a dynamic micro-batching
// front-end: many concurrent single-image requests coalesce into planned
// batched executions (bounded by a maximum batch size and a maximum queueing
// delay) running on any Runner — the single-device Executor, the sharded
// PipelineExecutor or the data-parallel replica.Group, whose engines the
// server's concurrent workers keep filled.  With ServerConfig.CacheEntries a
// checksum-keyed result cache (cache.go: bounded LRU, hit/miss/eviction
// counters, single-flight on concurrent identical inputs) sits in front of
// the batching queue, so repeated inputs skip execution entirely.  That is
// how the planned engine serves traffic — see cmd/memcnnserve.
//
// # Failure model
//
// The serving path assumes fail-stop devices with three observable failure
// modes, all injectable deterministically by FaultDevice (fault.go) for
// reproducible chaos tests: transient op errors (ErrFaultInjected — the op
// did not run, a retry may succeed), latency stalls (the op runs late — the
// failure mode deadlines exist for), and permanent death (ErrDeviceDead —
// every later op fails, retries against the same device are pointless).  A
// fourth mode, panics inside a kernel or the executor, is contained by
// recover into a *PanicError (health.go) so a poisoned op crashes a request,
// never the process.
//
// # Health state machine
//
// replica.Group tracks each replica as Healthy or Unhealthy.  A failed
// sub-batch retries on its own replica up to Config.MaxRetries times with
// capped exponential backoff (Backoff); if the replica still fails — or its
// error is ErrDeviceDead — it is marked Unhealthy, the failover counter
// increments exactly once (CAS), and the whole batch re-runs over the
// survivors: batch shares are re-derived from the healthy units' original
// throughput weights, so the degraded group's outputs stay bit-identical to
// the full-fleet run (every kernel fixes its accumulation order and rows are
// image-independent).  A background probe (Config.ProbeInterval) runs a
// one-image batch against each Unhealthy replica and re-admits it on
// success, re-deriving shares again.  Cancellation is not failure: a
// sub-batch that dies of its own request's context.Context never marks a
// replica Unhealthy.
//
// # Deadlines and shedding
//
// context.Context flows through the whole Runner path (RunIntoCtx on
// Executor, PipelineExecutor and replica.Group).  The batching server stamps
// each request with a ServerConfig.SLO deadline, drops already-expired
// requests when coalescing a batch (the Expired counter; the batch runs
// under the latest surviving deadline), and sheds at admission with ErrShed
// — before the request ever queues — when the estimated queue wait
// (p95 batch time x queued batches / workers, read from the server's
// always-on batch-latency histogram) already exceeds the SLO, so an
// overloaded server fails fast instead of queueing doomed work.  Shed or
// expired requests never enter the result cache; only successful batches
// feed the histogram.  Counters for all of this (Shed, Expired, and the
// group's retries/failovers/readmissions/contained panics via
// ServerStats.Faults) surface in cmd/memcnnserve's /healthz endpoint and
// `netbench -chaos`.
//
// # Observability
//
// observe.go ties the stack into internal/obs.  An Observer bundles an
// optional trace recorder and an optional metrics registry; Instrument
// methods on Executor, PipelineExecutor, replica.Group and BatchServer
// attach one shared Observer before traffic starts, and the hooks are
// allocation-free — a span is a prebuilt template copied into the ring, a
// metric observation is an atomic increment — with a nil-check-only fast
// path when nothing is attached.
//
// The span taxonomy mirrors the execution layers, one trace lane per
// concurrent actor so the export reads correctly in chrome://tracing or
// Perfetto: "op" (one compiled op, carrying its kind, buffer layout, conv
// algorithm and modeled device time), "run" (one whole program execution),
// "stage" (one batch crossing one pipeline stage, on per-stage lanes),
// "replica" (one sub-batch on one replica, whose engines nest their own
// run/op spans on the replica's lanes), and the server-side "queue",
// "coalesce" and "batch" spans on per-worker lanes.  The metrics side
// registers latency histograms per net/op-kind/stage/replica plus every
// ServerStats counter as a function reading the same atomics Stats reads,
// so /metrics can never disagree with /stats.  When the device chain prices
// ops on a SimDevice, per-layer measured and modeled microsecond totals
// accumulate as counters and DriftReport extracts the modeled-vs-measured
// drift ratio per layer — the live check that the gpusim cost model keeps
// tracking reality.  cmd/memcnnserve surfaces all of it over HTTP
// (/metrics, /trace, expanded /stats, opt-in pprof) and `netbench -trace`
// writes the same Chrome trace JSON for offline runs.
//
// The train sub-package extends the same discipline to training.
// CompileTraining appends loss and backward ops to the lowered forward
// program — OpLossGrad (fused softmax cross-entropy gradient), OpBackward
// (data gradients via layers.BackwardLayer), OpGradFilter and OpSGD (for
// layers.TrainableLayer), and OpRecompute for checkpointed activations — and
// the memory plan covers the joint forward+backward graph: an activation
// needed by a backward op stays live until that op, unless the checkpointing
// policy drops it at the forward peak and re-derives it just in time from its
// stored predecessor.  Whether checkpointing is worth it is decided by the
// planner (strictly lower peak, recompute cost priced on gpusim).  Training
// ops dispatch through the same Device abstraction — bit-deterministic on
// CPUDevice, priced per op on SimDevice — and train.Trainer wraps the planned
// executor into a step/epoch loop.  Note the naming split: core.Optimizer is
// the paper's layout planner, while the gradient-descent optimiser (SGD)
// lives here.
//
// # Verified IR contract
//
// A compiled Program is a closed intermediate representation with invariants
// every executor assumes, and the verify sub-package checks all of them
// statically: every buffer an op reads holds a defined value at that point
// (def-before-use over the linear op list, with alias-aware write tracking);
// alias chains are acyclic, point at reinterpret-compatible views and share
// their root's arena offset; an op may write a buffer whose root it also
// reads only when the layer declared in-place safety for exactly that shape
// and layout; every kernel that needs workspace has a scratch buffer at
// least as large as the layer's declared requirement (GEMM unroll, FFT
// spectrum planes, flatten staging); the memory plan's live ranges match a
// recomputed liveness analysis and the packed offsets never overlap two
// simultaneously-live buffers; training graphs recompute each checkpointed
// activation at most once, run every OpSGD after its layer's OpGradFilter
// and never touch a layer's weights after its update; and every op pins an
// accumulation order (a known algorithm), keeping results bit-deterministic.
// verify.Sharded extends the contract across pipeline-stage boundaries
// (contiguous tiling, boundary buffer identity, declared transfer sizes).
//
// Compile, CompileWithOptions, CompileLike, CompileFixedAlg, Shard and
// train.CompileTraining all run the checker when Options.Verify is set (the
// caller must import memcnn/internal/runtime/verify, which registers itself
// via RegisterVerifier — the indirection keeps the IR package free of a
// dependency on its own checker), and the test suite verifies every
// compiler output unconditionally, so the executors' assumptions are
// machine-checked on each change.
//
// Relatedly, the hot kernels the programs dispatch to are annotated
// //memcnn:noalloc: the directive (checked by internal/analyzers and
// cmd/memcnnvet) forbids heap allocation in the function body — closures,
// make/new/append, fmt/errors calls, slice/map literals, string building —
// except inside return statements (error paths run at most once) and on
// lines explicitly acknowledged with //memcnn:alloc-ok (the goroutine
// fan-out of the parallel kernels).  The annotation documents and enforces
// the steady-state-allocation-free contract this package's arena discipline
// depends on.
package runtime
