// Package runtime executes networks under the memory discipline the paper
// plans for: a network.ExecutionPlan is compiled into a flat program of ops
// with explicit buffer IDs, the buffers are packed into a single arena by a
// liveness-driven static memory plan, and the program is run by an executor
// that performs no tensor allocation in steady state.
//
// The pipeline has three stages:
//
//	compile (graph.go)    — lower the layer stack into an op list: one op per
//	                        layer, plus the plan's layout-transform ops and
//	                        zero-copy reshape views at flattening boundaries.
//	                        With Options.ConvAlgorithms each convolution op
//	                        additionally records its execution strategy —
//	                        direct or im2col+GEMM, picked per layer shape by
//	                        internal/autotune's merged-matrix heuristic or a
//	                        measured probe — the filter bank is pre-packed
//	                        once into the flat GEMM operand, and every kernel
//	                        workspace (GEMM unroll matrix, fully-connected
//	                        flatten staging, softmax logits) becomes an
//	                        op-local scratch buffer.
//	memory plan (memplan.go) — liveness analysis over buffer IDs followed by
//	                        greedy best-fit offset assignment into one arena;
//	                        scratch buffers are live only during their op, so
//	                        the packer overlays them with activation storage.
//	                        The plan reports its peak footprint against the
//	                        naive all-buffers-live total, making the paper's
//	                        memory-efficiency story measurable.
//	execute (executor.go, pool.go) — run the compiled program on arena-backed
//	                        tensor views recycled through a sync.Pool, using
//	                        the recorded convolution algorithm,
//	                        layers.WorkspaceForwarder/IntoForwarder where
//	                        available, and falling back to Forward plus a
//	                        copy elsewhere.  Steady-state runs allocate no
//	                        tensors or scratch slices.
//
// Golden bit-equality holds per algorithm: direct-only programs reproduce the
// naive Network.Forward exactly, while algorithm-selected programs reproduce
// Program.ReferenceForward (the functional forward mirroring the recorded
// per-layer choices); every kernel fixes its accumulation order so results do
// not depend on layout, batching or worker count.
//
// On top of the executor, server.go provides a dynamic micro-batching
// front-end: many concurrent single-image requests coalesce into planned
// batched executions (bounded by a maximum batch size and a maximum queueing
// delay), which is how the planned engine serves traffic — see cmd/memcnnserve.
package runtime
