package runtime_test

import (
	"os"
	"testing"

	"memcnn/internal/frameworks"
	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/layout"
	"memcnn/internal/network"
	"memcnn/internal/runtime"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

// planners returns the execution policies the runtime is exercised under:
// both fixed layouts and the paper's optimiser.
func planners() []network.Planner {
	th := layout.TitanBlackThresholds()
	return []network.Planner{
		frameworks.CudaConvnet(),
		frameworks.Caffe(),
		frameworks.Optimized(th),
	}
}

func mustCompile(t *testing.T, planner network.Planner, net *network.Network) *runtime.Program {
	t.Helper()
	return mustCompileOpts(t, planner, net, runtime.Options{})
}

func mustCompileOpts(t *testing.T, planner network.Planner, net *network.Network, opts runtime.Options) *runtime.Program {
	t.Helper()
	plan, err := planner.Plan(gpusim.TitanBlack(), net)
	if err != nil {
		t.Fatalf("planning %s with %s: %v", net.Name, planner.Name(), err)
	}
	prog, err := runtime.CompileWithOptions(plan, opts)
	if err != nil {
		t.Fatalf("compiling %s/%s: %v", net.Name, planner.Name(), err)
	}
	return prog
}

// TestCompileStructure checks the lowering of TinyNet: one op per layer, a
// zero-copy reshape view at the flattening boundary, and buffers consistent
// with the layer shapes.
func TestCompileStructure(t *testing.T) {
	net, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	for _, lay := range []tensor.Layout{tensor.NCHW, tensor.CHWN} {
		prog, err := runtime.CompileFixed(net, lay)
		if err != nil {
			t.Fatal(err)
		}
		var layerOps, reshapeOps, transformOps, aliases int
		for _, op := range prog.Ops {
			switch op.Kind {
			case runtime.OpLayer:
				layerOps++
			case runtime.OpReshape:
				reshapeOps++
				if prog.Buffers[op.Out].AliasOf != runtime.NoBuffer {
					aliases++
				}
			case runtime.OpTransform:
				transformOps++
			}
		}
		if layerOps != len(net.Layers) {
			t.Errorf("%v: %d layer ops, want %d", lay, layerOps, len(net.Layers))
		}
		if transformOps != 0 {
			t.Errorf("%v: fixed-layout program contains %d transforms", lay, transformOps)
		}
		if reshapeOps == 0 {
			t.Errorf("%v: expected a reshape at the conv->fc flattening boundary", lay)
		}
		// NCHW reinterprets any reshape, CHWN reinterprets batch-preserving
		// ones — both hold at flattening boundaries, so every reshape must be
		// a zero-copy view.
		if aliases != reshapeOps {
			t.Errorf("%v: %d of %d reshapes are zero-copy views", lay, aliases, reshapeOps)
		}
		if prog.InputShape() != net.InputShape() || prog.OutputShape() != net.OutputShape() {
			t.Errorf("%v: program shapes %v->%v, want %v->%v",
				lay, prog.InputShape(), prog.OutputShape(), net.InputShape(), net.OutputShape())
		}
	}
}

// TestCompileWithTransforms checks that a plan with layout switches lowers
// into transform ops.
func TestCompileWithTransforms(t *testing.T) {
	net, err := workloads.AlexNet()
	if err != nil {
		t.Fatal(err)
	}
	th := layout.TitanBlackThresholds()
	plan, err := frameworks.Optimized(th).Plan(gpusim.TitanBlack(), net)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TransformCount() == 0 {
		t.Skip("optimiser planned AlexNet without layout switches; nothing to check")
	}
	prog, err := runtime.Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	transforms := 0
	for _, op := range prog.Ops {
		if op.Kind == runtime.OpTransform {
			transforms++
		}
	}
	if transforms != plan.TransformCount() {
		t.Errorf("program has %d transform ops, plan expects %d", transforms, plan.TransformCount())
	}
}

// TestMemoryPlanInvariants verifies, for every workload network under every
// planner, that the memory plan is sound (no two live buffers overlap) and
// that the arena's peak footprint is strictly below the naive
// all-buffers-live total.
func TestMemoryPlanInvariants(t *testing.T) {
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range workloads.NetworkOrder {
		net := nets[name]
		for _, planner := range planners() {
			prog := mustCompile(t, planner, net)
			if err := prog.Mem.Validate(prog); err != nil {
				t.Errorf("%s/%s: %v", name, planner.Name(), err)
			}
			peak, naive := prog.Mem.PeakBytes(), prog.NaiveBytes()
			if peak >= naive {
				t.Errorf("%s/%s: peak %d B not below naive %d B", name, planner.Name(), peak, naive)
			}
			// The arena must still hold the largest single buffer.
			for _, b := range prog.Buffers {
				if b.AliasOf == runtime.NoBuffer && b.Bytes() > peak {
					t.Errorf("%s/%s: buffer %v larger than arena", name, planner.Name(), b.Shape)
				}
			}
			t.Logf("%s/%s: peak %.2f MiB vs naive %.2f MiB (%.0f%% saved)",
				name, planner.Name(), float64(peak)/(1<<20), float64(naive)/(1<<20), 100*prog.Savings())
		}
	}
}

// goldenCase is one network of the equivalence suite with the execution
// policies it is checked under.  The functional CPU forward pass is the cost
// driver, so coverage is tiered: TinyNet (milliseconds) runs under every
// planner with a rerun through the recycled arena; LeNet and a small-batch
// AlexNet (seconds, skipped with -short) run under the paper's optimiser —
// AlexNet compiles with convolution algorithm selection, which makes its
// ImageNet-scale layer shapes affordable in CI through the GEMM path; the
// remaining ImageNet-scale models at full batch join — optimiser only — when
// MEMCNN_GOLDEN_FULL is set, as their forwards take minutes on a CPU.
//
// Direct-only programs are checked against the naive Network.Forward;
// algorithm-selected programs against Program.ReferenceForward, which mirrors
// the per-layer algorithm choices (golden bit-equality holds per algorithm,
// not across algorithms — direct accumulates in float64 tap order, GEMM in
// float32 k-block order).
type goldenCase struct {
	name     string
	net      *network.Network
	planners []network.Planner
	rerun    bool
	opts     runtime.Options
}

func goldenCases(t *testing.T) []goldenCase {
	t.Helper()
	tiny, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	opt := planners()[2:]
	cases := []goldenCase{{name: "TinyNet", net: tiny, planners: planners(), rerun: true}}
	if !testing.Short() {
		cases = append(cases, goldenCase{name: "LeNet", net: nets["LeNet"], planners: opt})
		alexSmall, err := workloads.AlexNetWithBatch(4)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, goldenCase{
			name: "AlexNet@4", net: alexSmall, planners: opt,
			opts: runtime.Options{ConvAlgorithms: true},
		})
		// Reduced-batch Cifar10 and ZFNet follow the AlexNet@4 precedent:
		// layer shapes unchanged, batch small enough for CI, checked against
		// ReferenceForward through the algorithm-selected GEMM path.
		cifarSmall, err := workloads.Cifar10WithBatch(16)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, goldenCase{
			name: "Cifar10@16", net: cifarSmall, planners: opt,
			opts: runtime.Options{ConvAlgorithms: true},
		})
		zfSmall, err := workloads.ZFNetWithBatch(4)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, goldenCase{
			name: "ZFNet@4", net: zfSmall, planners: opt,
			opts: runtime.Options{ConvAlgorithms: true},
		})
		// Reduced-batch VGG completes the set: the last paper network whose
		// golden run was gated behind MEMCNN_GOLDEN_FULL.  Batch 1 keeps its
		// thirteen 224x224 convolution layers affordable under -race.
		vggSmall, err := workloads.VGGWithBatch(1)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, goldenCase{
			name: "VGG@1", net: vggSmall, planners: opt,
			opts: runtime.Options{ConvAlgorithms: true},
		})
	}
	if os.Getenv("MEMCNN_GOLDEN_FULL") != "" {
		for _, name := range []string{"Cifar10", "AlexNet", "ZFNet", "VGG"} {
			cases = append(cases, goldenCase{name: name, net: nets[name], planners: opt})
		}
	}
	return cases
}

// TestGoldenEquivalence checks the runtime against its functional reference:
// the planned execution must reproduce the reference output bit for bit
// (every layer accumulates in a fixed order regardless of layout and worker
// count, so even float32 results are exactly equal).
func TestGoldenEquivalence(t *testing.T) {
	for _, tc := range goldenCases(t) {
		in := tensor.Random(tc.net.InputShape(), tensor.CHWN, 42)
		var want *tensor.Tensor
		if !tc.opts.ConvAlgorithms {
			naive, err := tc.net.Forward(in)
			if err != nil {
				t.Fatalf("%s: naive forward: %v", tc.name, err)
			}
			want = naive
		}
		for _, planner := range tc.planners {
			prog := mustCompileOpts(t, planner, tc.net, tc.opts)
			if tc.opts.ConvAlgorithms && want == nil {
				// Algorithm selection depends only on layer shapes, so the
				// reference is shared across planners.
				ref, err := prog.ReferenceForward(in)
				if err != nil {
					t.Fatalf("%s: reference forward: %v", tc.name, err)
				}
				want = ref
			}
			exec := runtime.NewExecutor(prog)
			got, err := exec.Run(in)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, planner.Name(), err)
			}
			requireBitEqual(t, tc.name+"/"+planner.Name(), got, want)
			if !tc.rerun {
				continue
			}
			// A second run through the recycled arena must be identical.
			again, err := exec.Run(in)
			if err != nil {
				t.Fatalf("%s/%s rerun: %v", tc.name, planner.Name(), err)
			}
			requireBitEqual(t, tc.name+"/"+planner.Name()+" rerun", again, want)
		}
	}
}

// TestCompileLike checks that compiling a rebatched network against a base
// program pins the base's layouts and convolution algorithms instead of
// re-selecting by the (smaller) sub-batch shape — the property the replica
// scheduler's bit-equality rests on.
func TestCompileLike(t *testing.T) {
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	base := mustCompileOpts(t, planners()[2], nets["LeNet"],
		runtime.Options{ConvAlgorithms: true})
	gemms := 0
	for _, ch := range base.ConvChoices() {
		if ch.Alg == kernels.ConvAlgGemm {
			gemms++
		}
	}
	if gemms == 0 {
		t.Fatal("LeNet@128 selected no GEMM convolution; the pinning test needs one")
	}

	small, err := nets["LeNet"].WithBatch(1)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := runtime.CompileLike(base, small)
	if err != nil {
		t.Fatal(err)
	}
	baseChoices, gotChoices := base.ConvChoices(), prog.ConvChoices()
	if len(gotChoices) != len(baseChoices) {
		t.Fatalf("rebatched program has %d conv choices, base %d", len(gotChoices), len(baseChoices))
	}
	for i, ch := range gotChoices {
		if ch.Layer != baseChoices[i].Layer || ch.Alg != baseChoices[i].Alg {
			t.Errorf("conv %d: rebatched %s/%v, base %s/%v — selection was not pinned",
				i, ch.Layer, ch.Alg, baseChoices[i].Layer, baseChoices[i].Alg)
		}
	}
	if got, want := prog.InputShape().N, 1; got != want {
		t.Errorf("rebatched program batch %d, want %d", got, want)
	}

	// Layer layouts must match op for op.
	bi := 0
	baseLayouts := make([]tensor.Layout, 0, len(base.Ops))
	for _, op := range base.Ops {
		if op.Kind == runtime.OpLayer {
			baseLayouts = append(baseLayouts, base.Buffers[op.In].Layout)
		}
	}
	for _, op := range prog.Ops {
		if op.Kind != runtime.OpLayer {
			continue
		}
		if lay := prog.Buffers[op.In].Layout; lay != baseLayouts[bi] {
			t.Errorf("layer op %d runs in %v, base in %v", bi, lay, baseLayouts[bi])
		}
		bi++
	}

	// A mismatched layer stack must be rejected.
	tiny, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.CompileLike(base, tiny); err == nil {
		t.Error("CompileLike accepted a network with a different layer stack")
	}
}

func requireBitEqual(t *testing.T, label string, got, want *tensor.Tensor) {
	t.Helper()
	if got.Shape != want.Shape || got.Layout != want.Layout {
		t.Fatalf("%s: got %v/%v, want %v/%v", label, got.Shape, got.Layout, want.Shape, want.Layout)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			diff, _ := tensor.MaxAbsDiff(got, want)
			t.Fatalf("%s: output differs from Network.Forward (first at %d: %v vs %v, max |Δ| %v)",
				label, i, got.Data[i], want.Data[i], diff)
		}
	}
}

// TestRunIntoConvertsLayouts checks RunInto delivery into a caller buffer of
// a different layout.
func TestRunIntoConvertsLayouts(t *testing.T) {
	net, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := runtime.CompileFixed(net, tensor.CHWN)
	if err != nil {
		t.Fatal(err)
	}
	exec := runtime.NewExecutor(prog)
	in := tensor.Random(net.InputShape(), tensor.NCHW, 7)
	want, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	dst := tensor.New(net.OutputShape(), tensor.CHWN)
	if err := exec.RunInto(in, dst); err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "chwn delivery", tensor.Convert(dst, tensor.NCHW), want)
}

// TestExecutorRejectsBadShapes covers the error paths.
func TestExecutorRejectsBadShapes(t *testing.T) {
	net, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := runtime.CompileFixed(net, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	exec := runtime.NewExecutor(prog)
	bad := tensor.New(tensor.Shape{N: 4, C: 2, H: 12, W: 12}, tensor.NCHW)
	if _, err := exec.Run(bad); err == nil {
		t.Error("wrong input shape must be rejected")
	}
	in := tensor.New(net.InputShape(), tensor.NCHW)
	badOut := tensor.New(tensor.Shape{N: 4, C: 3, H: 1, W: 1}, tensor.NCHW)
	if err := exec.RunInto(in, badOut); err == nil {
		t.Error("wrong output shape must be rejected")
	}
}

// forwardOnly wraps a layer, hiding its IntoForwarder implementation, so the
// executor's Forward-and-copy fallback stays covered now that every concrete
// layer implements ForwardInto.
type forwardOnly struct{ inner layers.Layer }

func (f forwardOnly) Name() string                        { return f.inner.Name() }
func (f forwardOnly) InputShape() tensor.Shape            { return f.inner.InputShape() }
func (f forwardOnly) OutputShape() tensor.Shape           { return f.inner.OutputShape() }
func (f forwardOnly) SupportsLayout(l tensor.Layout) bool { return f.inner.SupportsLayout(l) }
func (f forwardOnly) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return f.inner.Forward(in)
}
func (f forwardOnly) Cost(d *gpusim.Device, l tensor.Layout, o layers.CostOptions) ([]gpusim.KernelStats, error) {
	return f.inner.Cost(d, l, o)
}

// TestExecutorFallbackForward runs a network whose layers expose only the
// allocating Forward and checks the copy-into-arena fallback reproduces the
// golden output.
func TestExecutorFallbackForward(t *testing.T) {
	base, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	wrapped := make([]layers.Layer, len(base.Layers))
	for i, l := range base.Layers {
		wrapped[i] = forwardOnly{l}
	}
	net, err := network.New("TinyNetFallback", base.Batch, wrapped...)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := runtime.CompileFixed(net, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.Random(net.InputShape(), tensor.NCHW, 11)
	want, err := base.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runtime.NewExecutor(prog).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "fallback", got, want)
}

// TestAlgorithmSelectionCompile checks the tentpole of the conv-algorithm
// work: compiling with Options{ConvAlgorithms: true} records a per-layer
// strategy (LeNet's shallow conv1 stays direct, its deep conv2 goes to GEMM),
// plans the GEMM workspace and the fully-connected/softmax staging as
// op-local arena buffers, and still reproduces the per-algorithm functional
// reference bit for bit.
func TestAlgorithmSelectionCompile(t *testing.T) {
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	net := nets["LeNet"]
	prog, err := runtime.CompileFixedWithOptions(net, tensor.NCHW, runtime.Options{ConvAlgorithms: true})
	if err != nil {
		t.Fatal(err)
	}
	choices := prog.ConvChoices()
	if len(choices) != 2 {
		t.Fatalf("LeNet has 2 conv layers, ConvChoices reported %d", len(choices))
	}
	if choices[0].Alg != kernels.ConvAlgDirect || choices[0].WorkspaceBytes != 0 {
		t.Errorf("conv1 (C=1, reduction 25): got %v with %d B workspace, want direct without workspace",
			choices[0].Alg, choices[0].WorkspaceBytes)
	}
	if choices[1].Alg != kernels.ConvAlgGemm || choices[1].WorkspaceBytes == 0 {
		t.Errorf("conv2 (reduction 400): got %v with %d B workspace, want im2col+gemm with workspace",
			choices[1].Alg, choices[1].WorkspaceBytes)
	}
	if prog.ScratchBytes() == 0 {
		t.Error("program should plan scratch buffers for the GEMM conv, fully-connected and softmax layers")
	}
	if err := prog.Mem.Validate(prog); err != nil {
		t.Fatalf("memory plan with scratch buffers: %v", err)
	}
	// Scratch buffers must be live exactly during their op and nothing else.
	for i, op := range prog.Ops {
		if op.Scratch == runtime.NoBuffer {
			continue
		}
		if !prog.Buffers[op.Scratch].Scratch {
			t.Errorf("op %d scratch buffer %d is not marked Scratch", i, op.Scratch)
		}
		live := prog.Mem.Live[op.Scratch]
		if live.Def != i || live.LastUse != i {
			t.Errorf("op %d scratch live range [%d,%d], want [%d,%d]", i, live.Def, live.LastUse, i, i)
		}
	}

	in := tensor.Random(net.InputShape(), tensor.NCHW, 17)
	want, err := prog.ReferenceForward(in)
	if err != nil {
		t.Fatal(err)
	}
	exec := runtime.NewExecutor(prog)
	got, err := exec.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "LeNet selected", got, want)
	again, err := exec.Run(in) // recycled arena with dirty scratch
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "LeNet selected rerun", again, want)

	// The selected program must differ from the direct-only one where an
	// algorithm switched: conv2's GEMM accumulation order is not the direct
	// float64 tap order.
	naive, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range naive.Data {
		if got.Data[i] != naive.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Log("selected output happens to bit-match the direct reference; equality is allowed but unexpected")
	}
}

// TestInPlaceReLUShrinksArena checks the aliasing-aware liveness tweak: with
// in-place execution (the default) every ReLU op's output buffer aliases its
// input, the arena peak never exceeds the out-of-place plan's, and the
// executor still reproduces the out-of-place results bit for bit.
func TestInPlaceReLUShrinksArena(t *testing.T) {
	net, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	inPlace, err := runtime.CompileFixed(net, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	outOfPlace, err := runtime.CompileFixedWithOptions(net, tensor.NCHW, runtime.Options{NoInPlace: true})
	if err != nil {
		t.Fatal(err)
	}
	var aliasedLayers int
	for _, op := range inPlace.Ops {
		if op.Kind != runtime.OpLayer {
			continue
		}
		aliased := inPlace.Buffers[op.Out].AliasOf != runtime.NoBuffer
		if _, ok := op.Layer.(layers.InPlaceForwarder); ok {
			if !aliased {
				t.Errorf("in-place-capable layer %q did not alias its output", op.Name)
			}
			aliasedLayers++
		} else if aliased {
			t.Errorf("layer %q aliases its output without declaring in-place support", op.Name)
		}
	}
	if aliasedLayers == 0 {
		t.Fatal("TinyNet has a ReLU; expected at least one in-place layer op")
	}
	for _, op := range outOfPlace.Ops {
		if op.Kind == runtime.OpLayer && outOfPlace.Buffers[op.Out].AliasOf != runtime.NoBuffer {
			t.Errorf("NoInPlace program still aliases layer %q", op.Name)
		}
	}
	if ip, op := inPlace.Mem.PeakBytes(), outOfPlace.Mem.PeakBytes(); ip > op {
		t.Errorf("in-place peak %d B exceeds out-of-place peak %d B", ip, op)
	} else {
		t.Logf("peak %d B in place vs %d B out of place", ip, op)
	}
	if err := inPlace.Mem.Validate(inPlace); err != nil {
		t.Fatal(err)
	}
	in := tensor.Random(net.InputShape(), tensor.NCHW, 29)
	want, err := runtime.NewExecutor(outOfPlace).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runtime.NewExecutor(inPlace).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "in-place", got, want)

	// AlexNet's rectifiers alias multi-megabyte activations: the peak must
	// never grow and the all-buffers-live footprint must shrink strictly
	// (compile-only: execution is covered by the golden suite).
	alex, err := workloads.AlexNetWithBatch(4)
	if err != nil {
		t.Fatal(err)
	}
	alexIn, err := runtime.CompileFixed(alex, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	alexOut, err := runtime.CompileFixedWithOptions(alex, tensor.NCHW, runtime.Options{NoInPlace: true})
	if err != nil {
		t.Fatal(err)
	}
	if ip, op := alexIn.Mem.PeakBytes(), alexOut.Mem.PeakBytes(); ip > op {
		t.Errorf("AlexNet@4 in-place peak %d B exceeds out-of-place peak %d B", ip, op)
	} else {
		t.Logf("AlexNet@4 peak %.2f MiB in place vs %.2f MiB out of place",
			float64(ip)/(1<<20), float64(op)/(1<<20))
	}
	if ip, op := alexIn.NaiveBytes(), alexOut.NaiveBytes(); ip >= op {
		t.Errorf("AlexNet@4 in-place naive footprint %d B not below out-of-place %d B", ip, op)
	}

	// Where the rectifier dominates the live set the arena shrinks strictly:
	// a rectifier-only program keeps input and output live simultaneously
	// out of place, and merges them in place.
	relu, err := layers.NewReLU("relu", net.InputShape())
	if err != nil {
		t.Fatal(err)
	}
	reluNet, err := network.New("ReluOnly", net.Batch, relu)
	if err != nil {
		t.Fatal(err)
	}
	reluIn, err := runtime.CompileFixed(reluNet, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	reluOut, err := runtime.CompileFixedWithOptions(reluNet, tensor.NCHW, runtime.Options{NoInPlace: true})
	if err != nil {
		t.Fatal(err)
	}
	if ip, op := reluIn.Mem.PeakBytes(), reluOut.Mem.PeakBytes(); ip >= op {
		t.Errorf("rectifier-dominated in-place peak %d B not below out-of-place peak %d B", ip, op)
	}
}

// TestCompileFixedRejectsUnsupportedLayout covers the lowering error path.
func TestCompileFixedRejectsUnsupportedLayout(t *testing.T) {
	net, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.CompileFixed(net, tensor.NHWC); err == nil {
		t.Error("NHWC is unsupported by conv layers and must be rejected")
	}
	if _, err := runtime.Compile(nil); err == nil {
		t.Error("a nil plan must be rejected")
	}
}
