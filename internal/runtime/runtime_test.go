package runtime_test

import (
	"os"
	"testing"

	"memcnn/internal/frameworks"
	"memcnn/internal/gpusim"
	"memcnn/internal/layers"
	"memcnn/internal/layout"
	"memcnn/internal/network"
	"memcnn/internal/runtime"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

// planners returns the execution policies the runtime is exercised under:
// both fixed layouts and the paper's optimiser.
func planners() []network.Planner {
	th := layout.TitanBlackThresholds()
	return []network.Planner{
		frameworks.CudaConvnet(),
		frameworks.Caffe(),
		frameworks.Optimized(th),
	}
}

func mustCompile(t *testing.T, planner network.Planner, net *network.Network) *runtime.Program {
	t.Helper()
	plan, err := planner.Plan(gpusim.TitanBlack(), net)
	if err != nil {
		t.Fatalf("planning %s with %s: %v", net.Name, planner.Name(), err)
	}
	prog, err := runtime.Compile(plan)
	if err != nil {
		t.Fatalf("compiling %s/%s: %v", net.Name, planner.Name(), err)
	}
	return prog
}

// TestCompileStructure checks the lowering of TinyNet: one op per layer, a
// zero-copy reshape view at the flattening boundary, and buffers consistent
// with the layer shapes.
func TestCompileStructure(t *testing.T) {
	net, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	for _, lay := range []tensor.Layout{tensor.NCHW, tensor.CHWN} {
		prog, err := runtime.CompileFixed(net, lay)
		if err != nil {
			t.Fatal(err)
		}
		var layerOps, reshapeOps, transformOps, aliases int
		for _, op := range prog.Ops {
			switch op.Kind {
			case runtime.OpLayer:
				layerOps++
			case runtime.OpReshape:
				reshapeOps++
				if prog.Buffers[op.Out].AliasOf != runtime.NoBuffer {
					aliases++
				}
			case runtime.OpTransform:
				transformOps++
			}
		}
		if layerOps != len(net.Layers) {
			t.Errorf("%v: %d layer ops, want %d", lay, layerOps, len(net.Layers))
		}
		if transformOps != 0 {
			t.Errorf("%v: fixed-layout program contains %d transforms", lay, transformOps)
		}
		if reshapeOps == 0 {
			t.Errorf("%v: expected a reshape at the conv->fc flattening boundary", lay)
		}
		// NCHW reinterprets any reshape, CHWN reinterprets batch-preserving
		// ones — both hold at flattening boundaries, so every reshape must be
		// a zero-copy view.
		if aliases != reshapeOps {
			t.Errorf("%v: %d of %d reshapes are zero-copy views", lay, aliases, reshapeOps)
		}
		if prog.InputShape() != net.InputShape() || prog.OutputShape() != net.OutputShape() {
			t.Errorf("%v: program shapes %v->%v, want %v->%v",
				lay, prog.InputShape(), prog.OutputShape(), net.InputShape(), net.OutputShape())
		}
	}
}

// TestCompileWithTransforms checks that a plan with layout switches lowers
// into transform ops.
func TestCompileWithTransforms(t *testing.T) {
	net, err := workloads.AlexNet()
	if err != nil {
		t.Fatal(err)
	}
	th := layout.TitanBlackThresholds()
	plan, err := frameworks.Optimized(th).Plan(gpusim.TitanBlack(), net)
	if err != nil {
		t.Fatal(err)
	}
	if plan.TransformCount() == 0 {
		t.Skip("optimiser planned AlexNet without layout switches; nothing to check")
	}
	prog, err := runtime.Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	transforms := 0
	for _, op := range prog.Ops {
		if op.Kind == runtime.OpTransform {
			transforms++
		}
	}
	if transforms != plan.TransformCount() {
		t.Errorf("program has %d transform ops, plan expects %d", transforms, plan.TransformCount())
	}
}

// TestMemoryPlanInvariants verifies, for every workload network under every
// planner, that the memory plan is sound (no two live buffers overlap) and
// that the arena's peak footprint is strictly below the naive
// all-buffers-live total.
func TestMemoryPlanInvariants(t *testing.T) {
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range workloads.NetworkOrder {
		net := nets[name]
		for _, planner := range planners() {
			prog := mustCompile(t, planner, net)
			if err := prog.Mem.Validate(prog); err != nil {
				t.Errorf("%s/%s: %v", name, planner.Name(), err)
			}
			peak, naive := prog.Mem.PeakBytes(), prog.NaiveBytes()
			if peak >= naive {
				t.Errorf("%s/%s: peak %d B not below naive %d B", name, planner.Name(), peak, naive)
			}
			// The arena must still hold the largest single buffer.
			for _, b := range prog.Buffers {
				if b.AliasOf == runtime.NoBuffer && b.Bytes() > peak {
					t.Errorf("%s/%s: buffer %v larger than arena", name, planner.Name(), b.Shape)
				}
			}
			t.Logf("%s/%s: peak %.2f MiB vs naive %.2f MiB (%.0f%% saved)",
				name, planner.Name(), float64(peak)/(1<<20), float64(naive)/(1<<20), 100*prog.Savings())
		}
	}
}

// goldenCase is one network of the equivalence suite with the execution
// policies it is checked under.  The functional CPU forward pass is the cost
// driver, so coverage is tiered: TinyNet (milliseconds) runs under every
// planner with a rerun through the recycled arena; LeNet (seconds, skipped
// with -short) runs under the paper's optimiser; the ImageNet-scale models
// join — optimiser only — when MEMCNN_GOLDEN_FULL is set, as their forwards
// take minutes on a CPU.
type goldenCase struct {
	name     string
	net      *network.Network
	planners []network.Planner
	rerun    bool
}

func goldenCases(t *testing.T) []goldenCase {
	t.Helper()
	tiny, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	opt := planners()[2:]
	cases := []goldenCase{{name: "TinyNet", net: tiny, planners: planners(), rerun: true}}
	if !testing.Short() {
		cases = append(cases, goldenCase{name: "LeNet", net: nets["LeNet"], planners: opt})
	}
	if os.Getenv("MEMCNN_GOLDEN_FULL") != "" {
		for _, name := range []string{"Cifar10", "AlexNet", "ZFNet", "VGG"} {
			cases = append(cases, goldenCase{name: name, net: nets[name], planners: opt})
		}
	}
	return cases
}

// TestGoldenEquivalence checks the runtime against the naive Network.Forward:
// the planned execution must reproduce the naive output bit for bit (every
// layer accumulates in the same order regardless of layout, so even float32
// results are exactly equal).
func TestGoldenEquivalence(t *testing.T) {
	for _, tc := range goldenCases(t) {
		in := tensor.Random(tc.net.InputShape(), tensor.CHWN, 42)
		want, err := tc.net.Forward(in)
		if err != nil {
			t.Fatalf("%s: naive forward: %v", tc.name, err)
		}
		for _, planner := range tc.planners {
			prog := mustCompile(t, planner, tc.net)
			exec := runtime.NewExecutor(prog)
			got, err := exec.Run(in)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, planner.Name(), err)
			}
			requireBitEqual(t, tc.name+"/"+planner.Name(), got, want)
			if !tc.rerun {
				continue
			}
			// A second run through the recycled arena must be identical.
			again, err := exec.Run(in)
			if err != nil {
				t.Fatalf("%s/%s rerun: %v", tc.name, planner.Name(), err)
			}
			requireBitEqual(t, tc.name+"/"+planner.Name()+" rerun", again, want)
		}
	}
}

func requireBitEqual(t *testing.T, label string, got, want *tensor.Tensor) {
	t.Helper()
	if got.Shape != want.Shape || got.Layout != want.Layout {
		t.Fatalf("%s: got %v/%v, want %v/%v", label, got.Shape, got.Layout, want.Shape, want.Layout)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			diff, _ := tensor.MaxAbsDiff(got, want)
			t.Fatalf("%s: output differs from Network.Forward (first at %d: %v vs %v, max |Δ| %v)",
				label, i, got.Data[i], want.Data[i], diff)
		}
	}
}

// TestRunIntoConvertsLayouts checks RunInto delivery into a caller buffer of
// a different layout.
func TestRunIntoConvertsLayouts(t *testing.T) {
	net, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := runtime.CompileFixed(net, tensor.CHWN)
	if err != nil {
		t.Fatal(err)
	}
	exec := runtime.NewExecutor(prog)
	in := tensor.Random(net.InputShape(), tensor.NCHW, 7)
	want, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	dst := tensor.New(net.OutputShape(), tensor.CHWN)
	if err := exec.RunInto(in, dst); err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "chwn delivery", tensor.Convert(dst, tensor.NCHW), want)
}

// TestExecutorRejectsBadShapes covers the error paths.
func TestExecutorRejectsBadShapes(t *testing.T) {
	net, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := runtime.CompileFixed(net, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	exec := runtime.NewExecutor(prog)
	bad := tensor.New(tensor.Shape{N: 4, C: 2, H: 12, W: 12}, tensor.NCHW)
	if _, err := exec.Run(bad); err == nil {
		t.Error("wrong input shape must be rejected")
	}
	in := tensor.New(net.InputShape(), tensor.NCHW)
	badOut := tensor.New(tensor.Shape{N: 4, C: 3, H: 1, W: 1}, tensor.NCHW)
	if err := exec.RunInto(in, badOut); err == nil {
		t.Error("wrong output shape must be rejected")
	}
}

// forwardOnly wraps a layer, hiding its IntoForwarder implementation, so the
// executor's Forward-and-copy fallback stays covered now that every concrete
// layer implements ForwardInto.
type forwardOnly struct{ inner layers.Layer }

func (f forwardOnly) Name() string                        { return f.inner.Name() }
func (f forwardOnly) InputShape() tensor.Shape            { return f.inner.InputShape() }
func (f forwardOnly) OutputShape() tensor.Shape           { return f.inner.OutputShape() }
func (f forwardOnly) SupportsLayout(l tensor.Layout) bool { return f.inner.SupportsLayout(l) }
func (f forwardOnly) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	return f.inner.Forward(in)
}
func (f forwardOnly) Cost(d *gpusim.Device, l tensor.Layout, o layers.CostOptions) ([]gpusim.KernelStats, error) {
	return f.inner.Cost(d, l, o)
}

// TestExecutorFallbackForward runs a network whose layers expose only the
// allocating Forward and checks the copy-into-arena fallback reproduces the
// golden output.
func TestExecutorFallbackForward(t *testing.T) {
	base, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	wrapped := make([]layers.Layer, len(base.Layers))
	for i, l := range base.Layers {
		wrapped[i] = forwardOnly{l}
	}
	net, err := network.New("TinyNetFallback", base.Batch, wrapped...)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := runtime.CompileFixed(net, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.Random(net.InputShape(), tensor.NCHW, 11)
	want, err := base.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runtime.NewExecutor(prog).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	requireBitEqual(t, "fallback", got, want)
}

// TestCompileFixedRejectsUnsupportedLayout covers the lowering error path.
func TestCompileFixedRejectsUnsupportedLayout(t *testing.T) {
	net, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.CompileFixed(net, tensor.NHWC); err == nil {
		t.Error("NHWC is unsupported by conv layers and must be rejected")
	}
	if _, err := runtime.Compile(nil); err == nil {
		t.Error("a nil plan must be rejected")
	}
}
