package runtime_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"memcnn/internal/runtime"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

// faultFixture compiles TinyNet with fixed layouts (the CPU-deterministic
// configuration the serving tests use) and returns a full-batch input.
func faultFixture(t *testing.T) (*runtime.Program, *tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	net, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := runtime.CompileFixed(net, tensor.CHWN)
	if err != nil {
		t.Fatal(err)
	}
	in := tensor.Random(prog.InputShape(), tensor.NCHW, 7)
	out := tensor.New(prog.OutputShape(), tensor.NCHW)
	return prog, in, out
}

// TestFaultDeviceDeterminism runs the same program over two FaultDevices with
// the same schedule and checks they inject faults at identical op ordinals:
// the per-run error pattern and the final counters must agree exactly.  This
// is the property that makes the chaos tests assertable.
func TestFaultDeviceDeterminism(t *testing.T) {
	prog, in, out := faultFixture(t)
	cfg := runtime.FaultConfig{Seed: 42, TransientRate: 0.15}

	pattern := func() ([]bool, uint64) {
		fd := runtime.WrapFault(runtime.CPUDevice{}, cfg)
		exec := runtime.NewExecutorOn(prog, fd)
		var failed []bool
		for i := 0; i < 40; i++ {
			err := exec.RunInto(in, out)
			if err != nil && !errors.Is(err, runtime.ErrFaultInjected) {
				t.Fatalf("run %d: unexpected error kind: %v", i, err)
			}
			failed = append(failed, err != nil)
		}
		transients, _, _, _ := fd.FaultCounts()
		return failed, transients
	}

	failedA, transientsA := pattern()
	failedB, transientsB := pattern()
	if transientsA == 0 {
		t.Fatalf("schedule injected no transients over 40 runs; pick a hotter seed/rate")
	}
	if transientsA != transientsB {
		t.Fatalf("same schedule, different transient counts: %d vs %d", transientsA, transientsB)
	}
	for i := range failedA {
		if failedA[i] != failedB[i] {
			t.Fatalf("same schedule, different failure pattern at run %d", i)
		}
	}
}

// TestFaultDeviceKillAndRevive covers permanent death: the op-count trigger,
// the permanence of ErrDeviceDead across retries, and explicit Revive.
func TestFaultDeviceKillAndRevive(t *testing.T) {
	prog, in, out := faultFixture(t)
	fd := runtime.WrapFault(runtime.CPUDevice{}, runtime.FaultConfig{KillAfterOps: 3})
	exec := runtime.NewExecutorOn(prog, fd)

	if err := exec.RunInto(in, out); !errors.Is(err, runtime.ErrDeviceDead) {
		t.Fatalf("run on a device dying at op 3: got %v, want ErrDeviceDead", err)
	}
	if !fd.Dead() {
		t.Fatal("device should report Dead after its kill ordinal")
	}
	for i := 0; i < 3; i++ {
		if err := exec.RunInto(in, out); !errors.Is(err, runtime.ErrDeviceDead) {
			t.Fatalf("retry %d against a dead device: got %v, want ErrDeviceDead", i, err)
		}
	}
	fd.Revive()
	if err := exec.RunInto(in, out); err != nil {
		t.Fatalf("run after Revive: %v", err)
	}

	// Explicit Kill behaves like the scheduled one.
	fd2 := runtime.WrapFault(runtime.CPUDevice{}, runtime.FaultConfig{})
	exec2 := runtime.NewExecutorOn(prog, fd2)
	fd2.Kill()
	if err := exec2.RunInto(in, out); !errors.Is(err, runtime.ErrDeviceDead) {
		t.Fatalf("run after Kill: got %v, want ErrDeviceDead", err)
	}
}

// TestExecutorContainsPanic checks crash containment: an op that panics fails
// its run with a *PanicError instead of taking down the process, and the
// executor remains usable.
func TestExecutorContainsPanic(t *testing.T) {
	prog, in, out := faultFixture(t)
	fd := runtime.WrapFault(runtime.CPUDevice{}, runtime.FaultConfig{Seed: 1, PanicRate: 1})
	exec := runtime.NewExecutorOn(prog, fd)

	err := exec.RunInto(in, out)
	var pe *runtime.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("run on an always-panicking device: got %v, want *PanicError", err)
	}
	if pe.Op == "" || len(pe.Stack) == 0 {
		t.Fatalf("contained panic lost its context: op %q, %d stack bytes", pe.Op, len(pe.Stack))
	}
}

// TestExecutorCancellation checks the context path: a cancelled context
// aborts the run between ops with ctx.Err() and leaves dst untouched.
func TestExecutorCancellation(t *testing.T) {
	prog, in, out := faultFixture(t)
	exec := runtime.NewExecutor(prog)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sentinel := float32(12.5)
	for i := range out.Data {
		out.Data[i] = sentinel
	}
	if err := exec.RunIntoCtx(ctx, in, out); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: got %v, want context.Canceled", err)
	}
	for i, v := range out.Data {
		if v != sentinel {
			t.Fatalf("cancelled run wrote dst at %d", i)
		}
	}
	if err := exec.RunIntoCtx(context.Background(), in, out); err != nil {
		t.Fatalf("run after cancellation: %v", err)
	}
}

// TestBackoffDelay pins the capped exponential schedule.
func TestBackoffDelay(t *testing.T) {
	b := runtime.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond}
	want := []time.Duration{
		1 * time.Millisecond,
		2 * time.Millisecond,
		4 * time.Millisecond,
		5 * time.Millisecond,
		5 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
	var zero runtime.Backoff
	if got := zero.Delay(3); got != 0 {
		t.Errorf("zero Backoff delays %v", got)
	}
}

// TestSimOf checks device resolution through fault wrappers.
func TestSimOf(t *testing.T) {
	if sd := runtime.SimOf(runtime.CPUDevice{}); sd != nil {
		t.Fatalf("SimOf(CPU) = %v", sd)
	}
	if sd := runtime.SimOf(runtime.WrapFault(runtime.CPUDevice{}, runtime.FaultConfig{})); sd != nil {
		t.Fatalf("SimOf(faulty CPU) = %v", sd)
	}
}
