package runtime

import (
	"container/list"
	"context"
	"fmt"
	"math"
	"sync"

	"memcnn/internal/tensor"
)

// ImageChecksum fingerprints one request image for the serving-side result
// cache: an FNV-1a hash over the shape and the canonical (N,C,H,W)-order
// float32 bits, so the key does not depend on the layout the client happened
// to send.  Two images collide only if 64-bit FNV collides — acceptable for a
// memoisation cache, where a collision returns a wrong cached answer with
// probability ~2^-64 per lookup.
func ImageChecksum(img *tensor.Tensor) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for shift := 0; shift < 64; shift += 8 {
			h ^= (v >> shift) & 0xff
			h *= prime64
		}
	}
	s := img.Shape
	mix(uint64(s.N)<<48 | uint64(s.C)<<32 | uint64(s.H)<<16 | uint64(s.W))
	if img.Layout == tensor.NCHW || s.N == 1 && img.Layout == tensor.CHWN {
		// The backing slice already is the canonical linearisation.
		for _, v := range img.Data {
			mix(uint64(math.Float32bits(v)))
		}
		return h
	}
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for hh := 0; hh < s.H; hh++ {
				for w := 0; w < s.W; w++ {
					mix(uint64(math.Float32bits(img.At(n, c, hh, w))))
				}
			}
		}
	}
	return h
}

// CacheStats is a snapshot of the result cache's behaviour.  A request that
// triggered an execution counts as a miss; a request served from a completed
// entry or by joining an in-flight execution counts as a hit.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Size      int    `json:"size"`
	Capacity  int    `json:"capacity"`
}

// cacheEntry is one keyed result.  ready closes when the leader's execution
// completes; waiters joined before then block on it (single-flight).
type cacheEntry struct {
	key   uint64
	ready chan struct{}
	out   *tensor.Tensor
	err   error
}

// ResultCache memoises per-image inference results keyed by input checksum: a
// bounded LRU with single-flight execution, so N concurrent identical
// requests cost one planned execution and repeated inputs skip execution
// entirely.  It is safe for concurrent use.
type ResultCache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	byKey     map[uint64]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

// NewResultCache builds a cache holding at most capacity entries.
func NewResultCache(capacity int) (*ResultCache, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("runtime: cache capacity %d must be positive", capacity)
	}
	return &ResultCache{
		capacity: capacity,
		ll:       list.New(),
		byKey:    make(map[uint64]*list.Element, capacity),
	}, nil
}

// Do returns the cached result for key, executing compute when the key is
// absent.  Concurrent callers with the same key share one execution: the
// first becomes the leader, the rest wait for its result (or their own
// context).  A failed execution is not cached — its error propagates to the
// leader and every waiter that joined it, and the next request re-executes.
// The returned tensor is a private copy the caller owns.
func (c *ResultCache) Do(ctx context.Context, key uint64, compute func() (*tensor.Tensor, error)) (*tensor.Tensor, error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err != nil {
			return nil, e.err
		}
		return e.out.Clone(), nil
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	el := c.ll.PushFront(e)
	c.byKey[key] = el
	c.misses++
	// Evicting the least recently used entry may drop one still in flight
	// (tiny capacity, many distinct concurrent keys); its waiters hold the
	// entry directly and are unaffected — the result just is not retained.
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.byKey, back.Value.(*cacheEntry).key)
		c.evictions++
	}
	c.mu.Unlock()

	out, err := compute()
	e.out, e.err = out, err
	if err != nil {
		c.mu.Lock()
		if cur, ok := c.byKey[key]; ok && cur == el {
			c.ll.Remove(el)
			delete(c.byKey, key)
		}
		c.mu.Unlock()
	}
	close(e.ready)
	if err != nil {
		return nil, err
	}
	return out.Clone(), nil
}

// Stats returns a snapshot of the counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
	}
}

// Len returns the current entry count.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Contains reports whether key is currently cached (or in flight), without
// touching its recency or the counters.
func (c *ResultCache) Contains(key uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.byKey[key]
	return ok
}
