package runtime

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"memcnn/internal/tensor"
)

// ErrFaultInjected marks a transient device error injected by a FaultDevice:
// the op did not execute, but the device remains usable and a retry may
// succeed.  Schedulers treat it like any other op failure; tests match it
// with errors.Is to tell injected faults from genuine ones.
var ErrFaultInjected = errors.New("runtime: injected transient device fault")

// ErrDeviceDead marks a permanently failed device: every RunOp after the
// death point fails with it, so retries against the same device cannot
// succeed and callers must fail over to another replica.
var ErrDeviceDead = errors.New("runtime: device dead")

// FaultConfig is the deterministic failure schedule a FaultDevice injects.
// All probabilistic faults are drawn from a counter-keyed hash of Seed, so
// two devices with the same config fault at the same op ordinals regardless
// of goroutine interleaving — the property that makes chaos tests assertable:
// the number of injected faults over a known op count is a pure function of
// the schedule.
type FaultConfig struct {
	// Seed keys the deterministic fault draws.  Two FaultDevices with equal
	// Seed and rates inject faults at identical op ordinals.
	Seed uint64
	// TransientRate is the probability (0..1) that an op fails with
	// ErrFaultInjected instead of executing.
	TransientRate float64
	// StallRate is the probability (0..1) that an op sleeps for Stall before
	// executing — the slow-device failure mode deadlines exist for.
	StallRate float64
	// Stall is the injected latency of a stalled op.  Default 1ms when a
	// StallRate is set.
	Stall time.Duration
	// PanicRate is the probability (0..1) that an op panics instead of
	// executing — the failure mode crash containment exists for.  The
	// executor recovers it into a *PanicError; the process must survive.
	PanicRate float64
	// KillAfterOps, when positive, permanently kills the device the moment
	// its op counter reaches this ordinal: that op and every later one fail
	// with ErrDeviceDead.  Zero never kills.
	KillAfterOps int64
}

// FaultDevice wraps any Device with a deterministic seeded fault schedule —
// transient RunOp errors, latency stalls, injected panics and permanent
// device death — so every failure mode of the serving stack is reproducible
// in CI.  It is safe for concurrent use, like the Device it wraps.
type FaultDevice struct {
	dev Device
	cfg FaultConfig

	ops  atomic.Int64
	dead atomic.Bool

	transients atomic.Uint64
	stalls     atomic.Uint64
	panics     atomic.Uint64
	deadOps    atomic.Uint64
}

// WrapFault wraps a device with a fault schedule.
func WrapFault(dev Device, cfg FaultConfig) *FaultDevice {
	if cfg.StallRate > 0 && cfg.Stall <= 0 {
		cfg.Stall = time.Millisecond
	}
	return &FaultDevice{dev: dev, cfg: cfg}
}

// Name implements Device.
func (d *FaultDevice) Name() string {
	return fmt.Sprintf("faulty(%s)", d.dev.Name())
}

// Unwrap returns the wrapped device, so schedulers that special-case a
// device type (SimOf) can see through the fault layer.
func (d *FaultDevice) Unwrap() Device { return d.dev }

// Dead reports whether the device has died (by schedule or Kill).
func (d *FaultDevice) Dead() bool { return d.dead.Load() }

// Kill permanently fails the device, as if its KillAfterOps ordinal had been
// reached.  Every subsequent RunOp returns ErrDeviceDead.
func (d *FaultDevice) Kill() { d.dead.Store(true) }

// Revive clears a death (scheduled or explicit), re-admitting the device.
// Ops injected by rate schedules keep drawing from the same counter.
func (d *FaultDevice) Revive() { d.dead.Store(false) }

// FaultCounts reports the faults injected so far: transient errors, stalls,
// panics, and ops rejected because the device was dead.
func (d *FaultDevice) FaultCounts() (transients, stalls, panics, deadOps uint64) {
	return d.transients.Load(), d.stalls.Load(), d.panics.Load(), d.deadOps.Load()
}

// Ops returns the number of RunOp calls the device has admitted to its
// schedule (including faulted ones).
func (d *FaultDevice) Ops() int64 { return d.ops.Load() }

// splitmix64 is the counter-keyed hash behind the deterministic draws: a
// bijective avalanche mixer, so consecutive counters produce uncorrelated
// 64-bit words.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns a uniform value in [0,1) for the lane-th decision of op
// ordinal n.  Separate lanes keep the transient/stall/panic decisions of one
// op independent.
func (d *FaultDevice) draw(n int64, lane uint64) float64 {
	h := splitmix64(d.cfg.Seed ^ splitmix64(uint64(n)*3+lane))
	return float64(h>>11) / float64(1<<53)
}

// RunOp implements Device: the op is admitted to the fault schedule, then
// either faulted (dead, transient error, panic) or executed on the wrapped
// device, possibly after an injected stall.
func (d *FaultDevice) RunOp(prog *Program, opIndex int, in, out, aux *tensor.Tensor, scratch []float32) (float64, error) {
	n := d.ops.Add(1)
	if d.cfg.KillAfterOps > 0 && n == d.cfg.KillAfterOps {
		d.dead.Store(true)
	}
	if d.dead.Load() {
		d.deadOps.Add(1)
		return 0, fmt.Errorf("%s op %d: %w", d.Name(), n, ErrDeviceDead)
	}
	if d.cfg.PanicRate > 0 && d.draw(n, 2) < d.cfg.PanicRate {
		d.panics.Add(1)
		panic(fmt.Sprintf("%s: injected panic at op %d", d.Name(), n))
	}
	if d.cfg.TransientRate > 0 && d.draw(n, 0) < d.cfg.TransientRate {
		d.transients.Add(1)
		return 0, fmt.Errorf("%s op %d: %w", d.Name(), n, ErrFaultInjected)
	}
	if d.cfg.StallRate > 0 && d.draw(n, 1) < d.cfg.StallRate {
		d.stalls.Add(1)
		time.Sleep(d.cfg.Stall)
	}
	return d.dev.RunOp(prog, opIndex, in, out, aux, scratch)
}

// TransferInUS implements Device, delegating to the wrapped device.
func (d *FaultDevice) TransferInUS(bytes int64) float64 { return d.dev.TransferInUS(bytes) }

// SimOf resolves a device to its *SimDevice, seeing through wrappers (a
// FaultDevice around a simulated device): schedulers use it so modeled
// weights and scatter pricing survive fault injection.  Nil when no simulated
// device is beneath.
func SimOf(d Device) *SimDevice {
	for d != nil {
		if sd, ok := d.(*SimDevice); ok {
			return sd
		}
		u, ok := d.(interface{ Unwrap() Device })
		if !ok {
			return nil
		}
		d = u.Unwrap()
	}
	return nil
}
