package verify_test

import (
	"strings"
	"testing"

	"memcnn/internal/kernels"
	"memcnn/internal/network"
	"memcnn/internal/runtime"
	"memcnn/internal/runtime/train"
	"memcnn/internal/runtime/verify"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

func mustNets(t *testing.T) map[string]*network.Network {
	t.Helper()
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatalf("building workloads: %v", err)
	}
	return nets
}

var algs = []kernels.ConvAlgorithm{kernels.ConvAlgDirect, kernels.ConvAlgGemm, kernels.ConvAlgFFT}

// TestMatrixInference runs the full checker over every workload network ×
// every production convolution algorithm, unsharded and cut into 4 pipeline
// stages.  Every compiler output must verify clean.
func TestMatrixInference(t *testing.T) {
	for name, net := range mustNets(t) {
		for _, alg := range algs {
			p, err := runtime.CompileFixedAlg(net, tensor.NCHW, alg)
			if err != nil {
				t.Fatalf("%s/%v: compile: %v", name, alg, err)
			}
			if diags := verify.Check(p); len(diags) != 0 {
				t.Errorf("%s/%v: %d diagnostics on a sound program:\n%s", name, alg, len(diags), diagText(diags))
			}
			sp, err := runtime.Shard(p, 4, runtime.ShardOptions{})
			if err != nil {
				t.Fatalf("%s/%v: shard: %v", name, alg, err)
			}
			if err := verify.Sharded(sp); err != nil {
				t.Errorf("%s/%v: sharded program rejected: %v", name, alg, err)
			}
		}
	}
}

// TestMatrixTraining verifies every workload network's compiled training
// step, and confirms that cutting a training program into pipeline stages is
// rejected: backward ops reach across any cut for forward activations and
// the caller-staged labels, so no stage would be self-contained.
func TestMatrixTraining(t *testing.T) {
	for name, net := range mustNets(t) {
		tp, err := train.CompileTraining(net, train.Options{})
		if err != nil {
			t.Fatalf("%s: training compile: %v", name, err)
		}
		if diags := verify.Check(tp.Program); len(diags) != 0 {
			t.Errorf("%s: %d diagnostics on a sound training program:\n%s", name, len(diags), diagText(diags))
		}
		if _, err := runtime.Shard(tp.Program, 4, runtime.ShardOptions{}); err == nil {
			t.Errorf("%s: sharding a training program succeeded; stages cannot be self-contained", name)
		} else if !strings.Contains(err.Error(), "cannot be cut here") {
			t.Errorf("%s: sharding a training program failed for the wrong reason: %v", name, err)
		}
	}
}

// TestMatrixDerived covers the remaining compiler entrypoints: the planned
// path (CompileFixed with in-place aliasing), rebatched CompileLike clones,
// and checkpointed training programs.
func TestMatrixDerived(t *testing.T) {
	net, err := workloads.Cifar10WithBatch(8)
	if err != nil {
		t.Fatalf("cifar10: %v", err)
	}
	base, err := runtime.CompileFixedAlg(net, tensor.NCHW, kernels.ConvAlgGemm)
	if err != nil {
		t.Fatalf("compile base: %v", err)
	}
	small, err := workloads.Cifar10WithBatch(2)
	if err != nil {
		t.Fatalf("cifar10 small: %v", err)
	}
	clone, err := runtime.CompileLike(base, small)
	if err != nil {
		t.Fatalf("compile like: %v", err)
	}
	if diags := verify.Check(clone); len(diags) != 0 {
		t.Errorf("rebatched clone: %d diagnostics:\n%s", len(diags), diagText(diags))
	}

	for _, ckpt := range []train.Checkpoint{train.CheckpointOff, train.CheckpointOn} {
		tp, err := train.CompileTraining(net, train.Options{Checkpoint: ckpt})
		if err != nil {
			t.Fatalf("training %v: %v", ckpt, err)
		}
		if diags := verify.Check(tp.Program); len(diags) != 0 {
			t.Errorf("training %v: %d diagnostics:\n%s", ckpt, len(diags), diagText(diags))
		}
	}
}

// TestOptionsVerify exercises the registered-hook path: compiling with
// Options.Verify (inference and training) runs this package's checker behind
// the runtime's registration hook and must succeed on sound programs.
func TestOptionsVerify(t *testing.T) {
	net, err := workloads.LeNet()
	if err != nil {
		t.Fatalf("lenet: %v", err)
	}
	p, err := runtime.CompileFixedWithOptions(net, tensor.NCHW, runtime.Options{Verify: true})
	if err != nil {
		t.Fatalf("compile with Verify: %v", err)
	}
	if !p.Opts.Verify {
		t.Fatalf("compiled program lost the Verify flag")
	}
	// Shard re-verifies each stage behind the same flag.
	if _, err := runtime.Shard(p, 2, runtime.ShardOptions{}); err != nil {
		t.Fatalf("shard with Verify: %v", err)
	}
	// CompileLike inherits the flag from the base.
	small, err := workloads.Cifar10WithBatch(4)
	if err != nil {
		t.Fatalf("cifar10: %v", err)
	}
	base, err := runtime.CompileFixedWithOptions(small, tensor.NCHW, runtime.Options{Verify: true})
	if err != nil {
		t.Fatalf("compile base: %v", err)
	}
	tiny, err := workloads.Cifar10WithBatch(2)
	if err != nil {
		t.Fatalf("cifar10 tiny: %v", err)
	}
	clone, err := runtime.CompileLike(base, tiny)
	if err != nil {
		t.Fatalf("compile like with Verify: %v", err)
	}
	if !clone.Opts.Verify {
		t.Fatalf("rebatched clone lost the Verify flag")
	}
	if _, err := train.CompileTraining(net, train.Options{Verify: true}); err != nil {
		t.Fatalf("training compile with Verify: %v", err)
	}
}

// --- mutation tests -------------------------------------------------------
//
// Each test clones a sound program, corrupts one invariant, and asserts the
// checker rejects it with a diagnostic of the right check naming the op and
// buffer involved.

// cloneProgram deep-copies the parts of a program the mutation tests modify.
func cloneProgram(p *runtime.Program) *runtime.Program {
	q := *p
	q.Buffers = append([]runtime.Buffer(nil), p.Buffers...)
	q.Ops = append([]runtime.Op(nil), p.Ops...)
	q.ExtraInputs = append([]runtime.BufferID(nil), p.ExtraInputs...)
	m := *p.Mem
	m.Offsets = append([]int(nil), p.Mem.Offsets...)
	m.Live = append([]runtime.Interval(nil), p.Mem.Live...)
	q.Mem = &m
	return &q
}

func rootOf(p *runtime.Program, id runtime.BufferID) runtime.BufferID {
	for p.Buffers[id].AliasOf != runtime.NoBuffer {
		id = p.Buffers[id].AliasOf
	}
	return id
}

func diagText(diags []verify.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString("\t")
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	return b.String()
}

// wantDiag asserts that the diagnostics contain a finding of the given check
// anchored to the given op and buffer (-1 / NoBuffer skip that field match).
func wantDiag(t *testing.T, diags []verify.Diagnostic, check string, op int, buf runtime.BufferID) verify.Diagnostic {
	t.Helper()
	if len(diags) == 0 {
		t.Fatalf("program accepted; want a %q diagnostic", check)
	}
	for _, d := range diags {
		if d.Check != check {
			continue
		}
		if op >= 0 && d.Op != op {
			continue
		}
		if buf != runtime.NoBuffer && d.Buffer != buf {
			continue
		}
		return d
	}
	t.Fatalf("no %q diagnostic for op %d buffer %d; got:\n%s", check, op, buf, diagText(diags))
	return verify.Diagnostic{}
}

func compileLeNet(t *testing.T, alg kernels.ConvAlgorithm) *runtime.Program {
	t.Helper()
	net, err := workloads.LeNet()
	if err != nil {
		t.Fatalf("lenet: %v", err)
	}
	p, err := runtime.CompileFixedAlg(net, tensor.NCHW, alg)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func compileCifar(t *testing.T) *runtime.Program {
	t.Helper()
	net, err := workloads.Cifar10WithBatch(4)
	if err != nil {
		t.Fatalf("cifar10: %v", err)
	}
	p, err := runtime.CompileFixed(net, tensor.NCHW)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return p
}

func compileTraining(t *testing.T, ckpt train.Checkpoint) *train.Program {
	t.Helper()
	net, err := workloads.Cifar10WithBatch(4)
	if err != nil {
		t.Fatalf("cifar10: %v", err)
	}
	tp, err := train.CompileTraining(net, train.Options{Checkpoint: ckpt})
	if err != nil {
		t.Fatalf("training compile: %v", err)
	}
	return tp
}

func TestMutationSwappedOps(t *testing.T) {
	p := cloneProgram(compileLeNet(t, kernels.ConvAlgDirect))
	i := -1
	for k := 0; k+1 < len(p.Ops); k++ {
		a, b := p.Ops[k], p.Ops[k+1]
		if a.Kind == runtime.OpLayer && b.Kind == runtime.OpLayer && b.In == a.Out &&
			p.Buffers[a.Out].AliasOf == runtime.NoBuffer && p.Buffers[b.Out].AliasOf == runtime.NoBuffer {
			i = k
			break
		}
	}
	if i < 0 {
		t.Fatal("no adjacent layer-op pair to swap")
	}
	stolen := p.Ops[i].Out // after the swap, read at position i before any write
	p.Ops[i], p.Ops[i+1] = p.Ops[i+1], p.Ops[i]
	diags := verify.Check(p)
	wantDiag(t, diags, verify.CheckDataflow, i, stolen)
	// The memory plan was computed for the original order, so it must also
	// read as stale.
	wantDiag(t, diags, verify.CheckPlan, -1, runtime.NoBuffer)
	if runtime.VerifyProgram(p) == nil {
		t.Fatal("registered verifier accepted the swapped program")
	}
}

func TestMutationAliasCycle(t *testing.T) {
	p := cloneProgram(compileCifar(t))
	var alias runtime.BufferID = runtime.NoBuffer
	for id := range p.Buffers {
		if p.Buffers[id].AliasOf != runtime.NoBuffer {
			alias = runtime.BufferID(id)
			break
		}
	}
	if alias == runtime.NoBuffer {
		t.Fatal("program has no alias buffer")
	}
	p.Buffers[alias].AliasOf = alias // self-cycle: root resolution would never terminate
	wantDiag(t, verify.Check(p), verify.CheckAlias, -1, alias)
}

func TestMutationAliasShape(t *testing.T) {
	p := cloneProgram(compileCifar(t))
	var alias runtime.BufferID = runtime.NoBuffer
	for id := range p.Buffers {
		if p.Buffers[id].AliasOf != runtime.NoBuffer && !p.Buffers[id].Scratch {
			alias = runtime.BufferID(id)
			break
		}
	}
	if alias == runtime.NoBuffer {
		t.Fatal("program has no alias buffer")
	}
	p.Buffers[alias].Shape.W++ // the view no longer reinterprets its root
	wantDiag(t, verify.Check(p), verify.CheckAlias, -1, alias)
}

func TestMutationShrunkScratch(t *testing.T) {
	for _, alg := range []kernels.ConvAlgorithm{kernels.ConvAlgGemm, kernels.ConvAlgFFT} {
		p := cloneProgram(compileLeNet(t, alg))
		op := -1
		for k, o := range p.Ops {
			if o.Kind == runtime.OpLayer && o.Alg == alg && o.Scratch != runtime.NoBuffer {
				op = k
				break
			}
		}
		if op < 0 {
			t.Fatalf("%v: no conv op with scratch", alg)
		}
		sc := p.Ops[op].Scratch
		p.Buffers[sc].Shape.W /= 2 // workspace now smaller than the kernel needs
		d := wantDiag(t, verify.Check(p), verify.CheckWorkspace, op, sc)
		if !strings.Contains(d.Msg, "needs") {
			t.Errorf("%v: diagnostic does not state the required size: %s", alg, d)
		}
	}
}

func TestMutationReadBeforeWrite(t *testing.T) {
	p := cloneProgram(compileLeNet(t, kernels.ConvAlgDirect))
	// Point an early op's input at a buffer only defined later.
	op := -1
	for k, o := range p.Ops {
		if o.Kind == runtime.OpLayer {
			op = k
			break
		}
	}
	late := p.Ops[len(p.Ops)-1].Out
	if rootOf(p, late) == rootOf(p, p.Ops[op].In) {
		t.Fatal("test premise broken: output shares the first op's input storage")
	}
	p.Ops[op].In = late
	wantDiag(t, verify.Check(p), verify.CheckDataflow, op, late)
}

func TestMutationInPlaceClobber(t *testing.T) {
	p := cloneProgram(compileCifar(t))
	// Find an in-place op (ReLU writing over its input's storage) and make a
	// later op read the pre-ReLU view.
	ip := -1
	for k, o := range p.Ops {
		if o.Kind == runtime.OpLayer && rootOf(p, o.Out) == rootOf(p, o.In) && o.In != o.Out {
			ip = k
			break
		}
	}
	if ip < 0 {
		t.Fatal("program has no in-place layer op")
	}
	victim := p.Ops[ip].In
	reader := -1
	for k := ip + 1; k < len(p.Ops); k++ {
		if o := p.Ops[k]; o.Kind == runtime.OpLayer && p.Buffers[o.In].Shape == p.Buffers[victim].Shape {
			reader = k
			break
		}
	}
	if reader < 0 {
		// No shape-compatible later reader; retarget the next op regardless —
		// the checker flags the hazard before any shape concern.
		reader = ip + 1
	}
	p.Ops[reader].In = victim
	wantDiag(t, verify.Check(p), verify.CheckInPlace, reader, victim)
}

func TestMutationUnknownAlgorithm(t *testing.T) {
	p := cloneProgram(compileLeNet(t, kernels.ConvAlgDirect))
	op := -1
	for k, o := range p.Ops {
		if o.Kind == runtime.OpLayer {
			op = k
			break
		}
	}
	p.Ops[op].Alg = kernels.ConvAlgorithm(99)
	d := wantDiag(t, verify.Check(p), verify.CheckDeterminism, op, runtime.NoBuffer)
	if !strings.Contains(d.Msg, "accumulation order") {
		t.Errorf("diagnostic does not mention the accumulation order: %s", d)
	}
}

func TestMutationScratchOnWrongLayer(t *testing.T) {
	p := cloneProgram(compileCifar(t))
	// Attach an existing scratch buffer to an op whose layer has no
	// workspace path on the direct algorithm (an in-place ReLU).
	var sc runtime.BufferID = runtime.NoBuffer
	for _, o := range p.Ops {
		if o.Scratch != runtime.NoBuffer {
			sc = o.Scratch
			break
		}
	}
	if sc == runtime.NoBuffer {
		t.Fatal("program has no scratch buffer")
	}
	op := -1
	for k, o := range p.Ops {
		if o.Kind == runtime.OpLayer && o.Scratch == runtime.NoBuffer && rootOf(p, o.Out) == rootOf(p, o.In) {
			op = k
			break
		}
	}
	if op < 0 {
		t.Fatal("no scratch-free in-place layer op")
	}
	p.Ops[op].Scratch = sc
	wantDiag(t, verify.Check(p), verify.CheckWorkspace, op, sc)
}

func TestMutationOverlapOffsets(t *testing.T) {
	p := cloneProgram(compileLeNet(t, kernels.ConvAlgDirect))
	// Find two roots with intersecting live ranges and force them onto the
	// same offset.
	var a, b runtime.BufferID = runtime.NoBuffer, runtime.NoBuffer
outer:
	for i := range p.Buffers {
		if p.Buffers[i].AliasOf != runtime.NoBuffer {
			continue
		}
		for j := i + 1; j < len(p.Buffers); j++ {
			if p.Buffers[j].AliasOf != runtime.NoBuffer {
				continue
			}
			li, lj := p.Mem.Live[i], p.Mem.Live[j]
			if li.Def <= lj.LastUse && lj.Def <= li.LastUse {
				a, b = runtime.BufferID(i), runtime.BufferID(j)
				break outer
			}
		}
	}
	if a == runtime.NoBuffer {
		t.Fatal("no two concurrently-live roots")
	}
	for id := range p.Buffers {
		if rootOf(p, runtime.BufferID(id)) == b {
			p.Mem.Offsets[id] = p.Mem.Offsets[a]
		}
	}
	if p.Mem.Offsets[a]+p.Buffers[a].Elems() > p.Mem.ArenaElems {
		p.Mem.ArenaElems = p.Mem.Offsets[a] + p.Buffers[a].Elems() // keep bounds clean; the overlap is the defect
	}
	if p.Mem.Offsets[b]+p.Buffers[b].Elems() > p.Mem.ArenaElems {
		p.Mem.ArenaElems = p.Mem.Offsets[b] + p.Buffers[b].Elems()
	}
	d := wantDiag(t, verify.Check(p), verify.CheckPlan, -1, runtime.NoBuffer)
	if !strings.Contains(d.Msg, "overlap") {
		t.Errorf("diagnostic does not report the overlap: %s", d)
	}
}

func TestMutationStaleLiveRange(t *testing.T) {
	p := cloneProgram(compileLeNet(t, kernels.ConvAlgDirect))
	var root runtime.BufferID = runtime.NoBuffer
	for id := range p.Buffers {
		if p.Buffers[id].AliasOf == runtime.NoBuffer && !p.Buffers[id].Scratch {
			root = runtime.BufferID(id)
			break
		}
	}
	p.Mem.Live[root] = runtime.Interval{Def: p.Mem.Live[root].Def, LastUse: p.Mem.Live[root].LastUse + 1}
	d := wantDiag(t, verify.Check(p), verify.CheckPlan, -1, root)
	if !strings.Contains(d.Msg, "stale") {
		t.Errorf("diagnostic does not report staleness: %s", d)
	}
}

func TestMutationSGDBeforeGradFilter(t *testing.T) {
	tp := compileTraining(t, train.CheckpointOff)
	p := cloneProgram(tp.Program)
	gf := -1
	for k, o := range p.Ops {
		if o.Kind == runtime.OpGradFilter && k+1 < len(p.Ops) && p.Ops[k+1].Kind == runtime.OpSGD {
			gf = k
			break
		}
	}
	if gf < 0 {
		t.Fatal("no grad-filter/sgd pair")
	}
	p.Ops[gf], p.Ops[gf+1] = p.Ops[gf+1], p.Ops[gf]
	d := wantDiag(t, verify.Check(p), verify.CheckTraining, gf, runtime.NoBuffer)
	if !strings.Contains(d.Msg, "grad-filter") {
		t.Errorf("diagnostic does not name the missing grad-filter: %s", d)
	}
}

func TestMutationLayerAfterSGD(t *testing.T) {
	tp := compileTraining(t, train.CheckpointOff)
	p := cloneProgram(tp.Program)
	// Re-run a trainable layer's forward op after its SGD update: it would
	// read mid-step parameters.
	var fwd runtime.Op
	found := false
	for _, o := range p.Ops {
		if o.Kind == runtime.OpSGD {
			for _, f := range p.Ops {
				if f.Kind == runtime.OpLayer && f.Layer == o.Layer {
					fwd, found = f, true
					break
				}
			}
			break
		}
	}
	if !found {
		t.Fatal("no forward op for an SGD-updated layer")
	}
	p.Ops = append(p.Ops, fwd)
	wantDiag(t, verify.Check(p), verify.CheckTraining, len(p.Ops)-1, runtime.NoBuffer)
}

func TestMutationDuplicateRecompute(t *testing.T) {
	tp := compileTraining(t, train.CheckpointOn)
	if tp.RecomputeOps == 0 {
		t.Skip("checkpointed program has no recompute ops")
	}
	p := cloneProgram(tp.Program)
	rc := -1
	for k, o := range p.Ops {
		if o.Kind == runtime.OpRecompute {
			rc = k
			break
		}
	}
	dup := p.Ops[rc]
	p.Ops = append(p.Ops[:rc+1], append([]runtime.Op{dup}, p.Ops[rc+1:]...)...)
	d := wantDiag(t, verify.Check(p), verify.CheckTraining, rc+1, dup.Out)
	if !strings.Contains(d.Msg, "recompute") {
		t.Errorf("diagnostic does not mention the recompute: %s", d)
	}
}

func TestShardedMutations(t *testing.T) {
	p := compileLeNet(t, kernels.ConvAlgDirect)
	sp, err := runtime.Shard(p, 3, runtime.ShardOptions{})
	if err != nil {
		t.Fatalf("shard: %v", err)
	}
	cloneSharded := func() *runtime.ShardedProgram {
		q := *sp
		q.Stages = make([]*runtime.Stage, len(sp.Stages))
		for i, st := range sp.Stages {
			c := *st
			q.Stages[i] = &c
		}
		return &q
	}

	bad := cloneSharded()
	bad.Stages[1].TransferInBytes += 4
	if err := verify.Sharded(bad); err == nil {
		t.Error("mismatched transfer size accepted")
	} else if !strings.Contains(err.Error(), "transfer") {
		t.Errorf("wrong rejection for transfer mismatch: %v", err)
	}

	bad = cloneSharded()
	bad.Stages[1].FirstOp++ // stage no longer tiles the base op list
	if err := verify.Sharded(bad); err == nil {
		t.Error("non-contiguous stages accepted")
	} else if !strings.Contains(err.Error(), "tile") {
		t.Errorf("wrong rejection for non-contiguous stages: %v", err)
	}

	bad = cloneSharded()
	bad.Stages[2] = &runtime.Stage{Index: 2, FirstOp: bad.Stages[2].FirstOp, LastOp: bad.Stages[2].LastOp}
	if err := verify.Sharded(bad); err == nil {
		t.Error("stage without a sub-program accepted")
	}
}

// TestVerifyOptionRejects confirms the Options.Verify wiring turns a checker
// rejection into a compile error: a program corrupted after compilation and
// re-verified through the runtime hook must fail.
func TestVerifyOptionRejects(t *testing.T) {
	p := cloneProgram(compileLeNet(t, kernels.ConvAlgDirect))
	p.Ops[0].In = p.Ops[len(p.Ops)-1].Out
	err := runtime.VerifyProgram(p)
	if err == nil {
		t.Fatal("corrupted program passed the registered verifier")
	}
	var verr *verify.Error
	if !errorsAs(err, &verr) {
		t.Fatalf("error is not a *verify.Error: %T", err)
	}
	if len(verr.Diags) == 0 {
		t.Fatal("verify.Error carries no diagnostics")
	}
}

// errorsAs avoids importing errors for one call site.
func errorsAs(err error, target **verify.Error) bool {
	e, ok := err.(*verify.Error)
	if ok {
		*target = e
	}
	return ok
}
