// Package verify is the whole-program static checker for the compiled IR.
//
// Every compiler in the repository — Compile, CompileWithOptions,
// CompileLike, CompileFixed*, train.CompileTraining, and the per-stage
// sub-programs Shard emits — produces the same artefact: a runtime.Program,
// an op list over explicit buffers plus an arena memory plan.  The paper's
// claim that memory efficiency comes from planning rather than runtime
// bookkeeping only holds if those plans are sound, so this package turns the
// invariants the executor silently relies on into machine-checked ones:
//
//   - dataflow: every buffer an op reads was written by an earlier op, the
//     program input, or an ExtraInputs binding, and the program output holds
//     a value when the last op retires (check a);
//   - alias: AliasOf chains point strictly backwards (hence are acyclic and
//     root resolution terminates), every view is reinterpret-compatible with
//     its root, and no view is rooted in op-local scratch (check b);
//   - inplace: no op reads a buffer whose storage a later in-place write
//     (ReLU running over its own input) already clobbered, and ops only
//     write over their own operands when the layer declares that safe
//     (check c);
//   - workspace: the scratch buffer attached to an op holds at least what
//     the recorded algorithm needs — GemmWorkspaceElems for the GEMM path,
//     FFTWorkspaceElems for the frequency path, WorkspaceElems for the
//     flatten/softmax staging, BackwardWorkspaceElems for backward ops — and
//     is never attached to an op that cannot consume it (check d);
//   - plan: the memory plan's recorded live ranges match liveness recomputed
//     from the op list, aliases share their root's offset, every extent lies
//     inside the arena and no two live roots overlap (an O(n log n) offset
//     sweep); training programs additionally recompute each checkpointed
//     activation at most once and follow the backward-data → grad-filter →
//     SGD order, with no op touching a layer after its SGD update (check e);
//   - determinism: every reduction op records one of the three production
//     convolution algorithms, whose accumulation orders are pinned; an
//     unknown algorithm — or a non-layer op claiming one — means the
//     accumulation order is unspecified and bit-reproducibility is lost
//     (check f).
//
// Importing the package registers Program with runtime.RegisterVerifier, so
// any compile run with Options.Verify (or train.Options.Verify) fails with
// an *Error naming the offending op and buffer instead of returning an
// unsound program.  Tests call Check directly for the full diagnostic list.
package verify

import (
	"fmt"
	"strings"

	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/runtime"
	"memcnn/internal/tensor"
)

// Check names, one per verified invariant family.  Diagnostic.Check carries
// one of these so tests (and humans reading CI output) can tell which
// contract a program broke.
const (
	CheckStructure   = "structure"   // buffer/op references are well-formed
	CheckDataflow    = "dataflow"    // def-before-use over the op list
	CheckAlias       = "alias"       // alias chains are sound views
	CheckInPlace     = "inplace"     // no read of clobbered storage
	CheckWorkspace   = "workspace"   // op scratch fits the recorded algorithm
	CheckPlan        = "plan"        // memory plan matches the op list
	CheckTraining    = "training"    // recompute/SGD ordering
	CheckDeterminism = "determinism" // accumulation order is pinned
	CheckStages      = "stages"      // sharded stage boundaries
)

// Diagnostic is one verified-contract violation, anchored to the op and
// buffer it concerns where the check is that specific (Op is -1 and Buffer
// is runtime.NoBuffer otherwise).
type Diagnostic struct {
	Check  string
	Op     int
	OpName string
	Buffer runtime.BufferID
	Msg    string
}

// String renders the diagnostic as "[check] op N (name): buffer B: msg".
func (d Diagnostic) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%s]", d.Check)
	if d.Op >= 0 {
		fmt.Fprintf(&b, " op %d (%s):", d.Op, d.OpName)
	}
	if d.Buffer != runtime.NoBuffer {
		fmt.Fprintf(&b, " buffer %d:", d.Buffer)
	}
	b.WriteByte(' ')
	b.WriteString(d.Msg)
	return b.String()
}

// Error aggregates every diagnostic the checker produced for one program.
type Error struct {
	// Name identifies the rejected program (its planner name).
	Name  string
	Diags []Diagnostic
}

// Error lists every diagnostic, one per line.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "verify: %s: %d finding(s)", e.Name, len(e.Diags))
	for _, d := range e.Diags {
		b.WriteString("\n\t")
		b.WriteString(d.String())
	}
	return b.String()
}

func init() {
	runtime.RegisterVerifier(Program)
}

// Program runs every check over a compiled program and returns an *Error
// carrying the full diagnostic list, or nil when the program is sound.  It
// is the function registered behind Options.Verify.
func Program(p *runtime.Program) error {
	diags := Check(p)
	if len(diags) == 0 {
		return nil
	}
	name := "<nil program>"
	if p != nil {
		name = p.PlannerName
	}
	return &Error{Name: name, Diags: diags}
}

// Check runs every check over a compiled program and returns the full
// diagnostic list (empty when the program is sound).  Later checks assume
// the structure earlier ones establish — out-of-range buffer references or
// unsound alias chains end the run early rather than panic the checker.
func Check(p *runtime.Program) []Diagnostic {
	c := &checker{p: p}
	if p == nil {
		c.add(CheckStructure, -1, runtime.NoBuffer, "program is nil")
		return c.diags
	}
	if !c.structure() {
		return c.diags
	}
	root, ok := c.aliases()
	if !ok {
		return c.diags
	}
	c.root = root
	c.dataflow()
	c.opContracts()
	c.trainingOrder()
	c.plan()
	return c.diags
}

type checker struct {
	p     *runtime.Program
	root  []runtime.BufferID // alias-resolved storage root per buffer
	diags []Diagnostic
}

func (c *checker) add(check string, op int, buf runtime.BufferID, format string, args ...any) {
	d := Diagnostic{Check: check, Op: op, Buffer: buf, Msg: fmt.Sprintf(format, args...)}
	if op >= 0 && op < len(c.p.Ops) {
		d.OpName = c.p.Ops[op].Name
	}
	c.diags = append(c.diags, d)
}

// structure validates that every buffer reference — program input/output,
// ExtraInputs, op operands — lands inside the buffer table, that buffer IDs
// match their indices, and that each op kind carries the operands it is
// defined to.  All later checks index through these references, so a failure
// here ends the run.
func (c *checker) structure() bool {
	p := c.p
	if len(p.Buffers) == 0 {
		c.add(CheckStructure, -1, runtime.NoBuffer, "program has no buffers")
		return false
	}
	for i, b := range p.Buffers {
		if b.ID != runtime.BufferID(i) {
			c.add(CheckStructure, -1, runtime.BufferID(i), "buffer at index %d carries ID %d", i, b.ID)
		}
	}
	inRange := func(id runtime.BufferID) bool {
		return id >= 0 && int(id) < len(p.Buffers)
	}
	if !inRange(p.Input) {
		c.add(CheckStructure, -1, p.Input, "program input %d is out of range", p.Input)
	}
	if !inRange(p.Output) {
		c.add(CheckStructure, -1, p.Output, "program output %d is out of range", p.Output)
	}
	for _, id := range p.ExtraInputs {
		if !inRange(id) {
			c.add(CheckStructure, -1, id, "extra input %d is out of range", id)
		}
	}
	for i, op := range p.Ops {
		for _, ref := range []struct {
			name     string
			id       runtime.BufferID
			optional bool
		}{
			{"In", op.In, false},
			{"Out", op.Out, false},
			{"Scratch", op.Scratch, true},
			{"Aux", op.Aux, true},
		} {
			if ref.optional && ref.id == runtime.NoBuffer {
				continue
			}
			if !inRange(ref.id) {
				c.add(CheckStructure, i, ref.id, "%s operand %d is out of range", ref.name, ref.id)
			}
		}
		switch op.Kind {
		case runtime.OpLayer, runtime.OpRecompute, runtime.OpLossGrad,
			runtime.OpBackward, runtime.OpGradFilter, runtime.OpSGD:
			if op.Layer == nil {
				c.add(CheckStructure, i, runtime.NoBuffer, "%v op has no layer", op.Kind)
			}
		case runtime.OpTransform, runtime.OpReshape:
		default:
			c.add(CheckStructure, i, runtime.NoBuffer, "unknown op kind %d", int(op.Kind))
		}
		switch op.Kind {
		case runtime.OpLossGrad:
			if op.Aux == runtime.NoBuffer {
				c.add(CheckStructure, i, runtime.NoBuffer, "loss-grad op has no label operand (Aux)")
			}
		case runtime.OpBackward, runtime.OpGradFilter:
			// Aux optional: the forward activation, where the layer needs it.
		default:
			if op.Aux != runtime.NoBuffer {
				c.add(CheckStructure, i, op.Aux, "%v op carries an Aux operand; only training read ops may", op.Kind)
			}
		}
		if op.Scratch != runtime.NoBuffer && inRange(op.Scratch) {
			if sb := p.Buffers[op.Scratch]; !sb.Scratch {
				c.add(CheckStructure, i, op.Scratch, "Scratch operand %d is not an op-local scratch buffer", op.Scratch)
			}
		}
	}
	// Scratch buffers are private to the op that owns them: they must never
	// surface as a program boundary.
	for _, id := range append([]runtime.BufferID{p.Input, p.Output}, p.ExtraInputs...) {
		if inRange(id) && p.Buffers[id].Scratch {
			c.add(CheckStructure, -1, id, "scratch buffer %d is a program input or output", id)
		}
	}
	return len(c.diags) == 0
}

// aliases validates the view structure (check b): every AliasOf link points
// strictly backwards — which makes chains acyclic and root resolution
// terminate by construction — every view reinterprets its root's storage
// without moving bytes, and no view is rooted in (or flagged as) op-local
// scratch.  It returns the resolved storage root per buffer; chain-structure
// failures make roots meaningless, so they end the run.
func (c *checker) aliases() ([]runtime.BufferID, bool) {
	p := c.p
	n := len(p.Buffers)
	root := make([]runtime.BufferID, n)
	broken := false
	for i, b := range p.Buffers {
		id := runtime.BufferID(i)
		if b.AliasOf == runtime.NoBuffer {
			root[i] = id
			continue
		}
		if b.AliasOf < 0 || int(b.AliasOf) >= n {
			c.add(CheckAlias, -1, id, "buffer %d aliases out-of-range buffer %d", id, b.AliasOf)
			broken = true
			continue
		}
		if b.AliasOf >= id {
			c.add(CheckAlias, -1, id, "buffer %d aliases buffer %d: alias links must point strictly backwards, or root resolution would not terminate", id, b.AliasOf)
			broken = true
			continue
		}
		root[i] = root[b.AliasOf]
	}
	if broken {
		return nil, false
	}
	for i, b := range p.Buffers {
		if b.AliasOf == runtime.NoBuffer {
			continue
		}
		id := runtime.BufferID(i)
		r := p.Buffers[root[i]]
		if b.Scratch {
			c.add(CheckAlias, -1, id, "scratch buffer %d must own its storage, not alias buffer %d", id, root[i])
		}
		if r.Scratch {
			c.add(CheckAlias, -1, id, "buffer %d is a view of op-local scratch buffer %d", id, root[i])
		}
		if !tensor.CanReinterpret(r.Shape, b.Shape, r.Layout) {
			c.add(CheckAlias, -1, id, "buffer %d (%v) cannot reinterpret its root %d (%v under %v) without moving data", id, b.Shape, root[i], r.Shape, r.Layout)
		}
	}
	return root, true
}

// dataflow walks the op list with an epoch per storage root (checks a and c):
// every byte-changing write bumps its root's epoch, and a buffer's value is
// current only while its recorded epoch matches its root's.  A read of a
// buffer that was never written is a def-before-use violation; a read of a
// buffer whose root moved on — an in-place ReLU ran over the storage, or a
// copy retargeted a sibling view — is a clobbered-storage hazard.  Alias
// reshapes relabel the current value without bumping, which is exactly why
// they are free at run time.
func (c *checker) dataflow() {
	p := c.p
	n := len(p.Buffers)
	epoch := make([]int, n)  // per root: bumped by every byte-changing write
	cur := make([]int, n)    // per buffer: root epoch at which its value is current (0 = none)
	writer := make([]int, n) // per root: op index of the last write, for messages

	markInput := func(id runtime.BufferID) {
		r := c.root[id]
		epoch[r]++
		cur[id] = epoch[r]
		writer[r] = -1
	}
	markInput(p.Input)
	for _, id := range p.ExtraInputs {
		markInput(id)
	}

	read := func(op int, id runtime.BufferID) {
		if p.Buffers[id].Scratch {
			c.add(CheckDataflow, op, id, "reads op-local scratch buffer %d, whose contents are unspecified between ops", id)
			return
		}
		r := c.root[id]
		switch {
		case cur[id] != 0 && cur[id] == epoch[r]:
			// Current value: the common case.
		case cur[id] == 0 && epoch[r] == 0:
			c.add(CheckDataflow, op, id, "reads buffer %d before any op writes it", id)
		case cur[id] == 0:
			c.add(CheckDataflow, op, id, "reads buffer %d, a view whose value was never materialised", id)
		default:
			c.add(CheckInPlace, op, id, "reads buffer %d after op %d (%s) overwrote its storage", id, writer[r], p.Ops[writer[r]].Name)
		}
	}
	write := func(op int, id runtime.BufferID) {
		if p.Buffers[id].Scratch {
			c.add(CheckDataflow, op, id, "writes its result into op-local scratch buffer %d", id)
			return
		}
		r := c.root[id]
		epoch[r]++
		cur[id] = epoch[r]
		writer[r] = op
	}

	for i, op := range p.Ops {
		switch op.Kind {
		case runtime.OpReshape:
			read(i, op.In)
			if p.Buffers[op.Out].AliasOf != runtime.NoBuffer {
				// Zero-copy relabel: the executor skips the op, so the view
				// only holds the input's value if they truly share storage.
				if c.root[op.Out] != c.root[op.In] {
					c.add(CheckAlias, i, op.Out, "relabels buffer %d as view %d, but the view is rooted in buffer %d, not %d: the reshape would read unrelated storage", op.In, op.Out, c.root[op.Out], c.root[op.In])
				}
				cur[op.Out] = epoch[c.root[op.Out]]
				continue
			}
			if c.root[op.Out] == c.root[op.In] {
				c.add(CheckInPlace, i, op.Out, "copy-reshapes buffer %d over its own storage", op.In)
			}
			write(i, op.Out)
		case runtime.OpTransform:
			read(i, op.In)
			if c.root[op.Out] == c.root[op.In] {
				c.add(CheckInPlace, i, op.Out, "re-linearises buffer %d over its own storage; a transform cannot run in place", op.In)
			}
			write(i, op.Out)
		case runtime.OpLayer, runtime.OpRecompute:
			read(i, op.In)
			if c.root[op.Out] == c.root[op.In] && !c.inPlaceOK(op) {
				c.add(CheckInPlace, i, op.Out, "writes buffer %d in place over its input %d, but layer %q does not declare in-place execution safe here", op.Out, op.In, op.Name)
			}
			write(i, op.Out)
		case runtime.OpLossGrad, runtime.OpBackward, runtime.OpGradFilter:
			read(i, op.In)
			if op.Aux != runtime.NoBuffer {
				read(i, op.Aux)
			}
			if c.root[op.Out] == c.root[op.In] {
				c.add(CheckInPlace, i, op.Out, "writes buffer %d over the gradient %d it is still reading", op.Out, op.In)
			}
			if op.Aux != runtime.NoBuffer && c.root[op.Out] == c.root[op.Aux] {
				c.add(CheckInPlace, i, op.Out, "writes buffer %d over the forward activation %d it is still reading", op.Out, op.Aux)
			}
			write(i, op.Out)
		case runtime.OpSGD:
			read(i, op.In)
			if op.Out != op.In {
				c.add(CheckTraining, i, op.Out, "sgd op must carry its gradient as both In and Out (it defines no new value), got In %d, Out %d", op.In, op.Out)
				write(i, op.Out)
			}
		}
	}

	r := c.root[p.Output]
	switch {
	case cur[p.Output] != 0 && cur[p.Output] == epoch[r]:
	case cur[p.Output] == 0:
		c.add(CheckDataflow, -1, p.Output, "program output buffer %d is never written", p.Output)
	default:
		c.add(CheckInPlace, -1, p.Output, "program output buffer %d is overwritten by op %d (%s) before delivery", p.Output, writer[r], p.Ops[writer[r]].Name)
	}
}

// inPlaceOK reports whether a layer op may legally write over its own input
// storage: the layer declares ForwardsInPlace for the layout, and input and
// output agree on shape and layout so every element is read at the index it
// is written.
func (c *checker) inPlaceOK(op runtime.Op) bool {
	ip, ok := op.Layer.(layers.InPlaceForwarder)
	if !ok {
		return false
	}
	in, out := c.p.Buffers[op.In], c.p.Buffers[op.Out]
	return ip.ForwardsInPlace(in.Layout) && in.Shape == out.Shape && in.Layout == out.Layout
}

// opContracts checks per-op algorithm and workspace contracts (checks d and
// f): the recorded convolution algorithm is one the layer implements, the
// attached scratch buffer holds at least what that algorithm's kernel
// requires, scratch is never attached to an op that cannot consume it, and
// no op records an algorithm outside the three production kernels — every
// one of which pins its accumulation order, so an unknown value means the
// result is not bit-reproducible.
func (c *checker) opContracts() {
	p := c.p
	for i, op := range p.Ops {
		switch op.Kind {
		case runtime.OpLayer, runtime.OpRecompute:
			c.layerContract(i, op)
		case runtime.OpBackward:
			c.pinnedDirect(i, op)
			bl, ok := op.Layer.(layers.BackwardLayer)
			if !ok {
				c.add(CheckWorkspace, i, runtime.NoBuffer, "backward op's layer %q has no backward pass", op.Name)
				continue
			}
			c.requireScratch(i, op, bl.BackwardWorkspaceElems(), "backward pass")
		case runtime.OpGradFilter:
			c.pinnedDirect(i, op)
			tl, ok := op.Layer.(layers.TrainableLayer)
			if !ok {
				c.add(CheckWorkspace, i, runtime.NoBuffer, "grad-filter op's layer %q has no parameters", op.Name)
				continue
			}
			if got, want := p.Buffers[op.Out].Shape, tl.GradShape(); got != want {
				c.add(CheckTraining, i, op.Out, "parameter gradient buffer %d has shape %v, layer %q gradients are %v", op.Out, got, op.Name, want)
			}
		case runtime.OpSGD:
			c.pinnedDirect(i, op)
			if _, ok := op.Layer.(layers.TrainableLayer); !ok {
				c.add(CheckTraining, i, runtime.NoBuffer, "sgd op's layer %q has no parameters to update", op.Name)
			}
			if op.LR <= 0 {
				c.add(CheckTraining, i, runtime.NoBuffer, "sgd op carries learning rate %v", op.LR)
			}
		default:
			c.pinnedDirect(i, op)
			if op.Scratch != runtime.NoBuffer {
				c.add(CheckWorkspace, i, op.Scratch, "%v op carries scratch buffer %d it cannot consume", op.Kind, op.Scratch)
			}
		}
	}
}

// pinnedDirect flags any non-forward-layer op that records a convolution
// algorithm: the executor would dispatch it through an interface the op's
// kernel does not implement, and no pinned accumulation order is defined for
// the combination.
func (c *checker) pinnedDirect(i int, op runtime.Op) {
	if op.Alg != kernels.ConvAlgDirect {
		c.add(CheckDeterminism, i, runtime.NoBuffer, "%v op records convolution algorithm %v; only forward layer ops select algorithms, so its accumulation order is unpinned", op.Kind, op.Alg)
	}
}

// layerContract checks a forward layer op (OpLayer/OpRecompute) against its
// recorded algorithm.
func (c *checker) layerContract(i int, op runtime.Op) {
	p := c.p
	switch op.Alg {
	case kernels.ConvAlgDirect:
		if op.Scratch == runtime.NoBuffer {
			return
		}
		wf, ok := op.Layer.(layers.WorkspaceForwarder)
		if !ok {
			c.add(CheckWorkspace, i, op.Scratch, "scratch buffer %d is attached to layer %q, which cannot consume a workspace on the direct path", op.Scratch, op.Name)
			return
		}
		c.requireScratch(i, op, wf.WorkspaceElems(), "direct path")
	case kernels.ConvAlgGemm:
		gf, ok := op.Layer.(layers.GemmForwarder)
		if !ok {
			c.add(CheckWorkspace, i, runtime.NoBuffer, "op selects the GEMM algorithm but layer %q implements no GEMM path", op.Name)
			return
		}
		c.requireScratch(i, op, gf.GemmWorkspaceElems(p.Buffers[op.Out].Layout), "GEMM path")
	case kernels.ConvAlgFFT:
		ff, ok := op.Layer.(layers.FFTForwarder)
		if !ok {
			c.add(CheckWorkspace, i, runtime.NoBuffer, "op selects the FFT algorithm but layer %q implements no FFT path", op.Name)
			return
		}
		c.requireScratch(i, op, ff.FFTWorkspaceElems(), "FFT path")
	default:
		c.add(CheckDeterminism, i, runtime.NoBuffer, "op records unknown convolution algorithm %d: no production kernel — and no pinned accumulation order — exists for it", int(op.Alg))
	}
}

// requireScratch checks that the op's scratch buffer holds at least `need`
// elements (check d).  A missing scratch buffer for a kernel that requires
// one would make the executor hand the kernel a nil slice.
func (c *checker) requireScratch(i int, op runtime.Op, need int, path string) {
	if need <= 0 {
		return
	}
	if op.Scratch == runtime.NoBuffer {
		c.add(CheckWorkspace, i, runtime.NoBuffer, "layer %q needs a %d-element workspace on the %s but the op carries no scratch buffer", op.Name, need, path)
		return
	}
	if got := c.p.Buffers[op.Scratch].Elems(); got < need {
		c.add(CheckWorkspace, i, op.Scratch, "scratch buffer %d holds %d elements but layer %q needs %d on the %s", op.Scratch, got, op.Name, need, path)
	}
}

// trainingOrder checks the training-specific op ordering (part of check e):
// each checkpointed activation is recomputed at most once, every SGD update
// consumes the parameter gradient a grad-filter op on the same layer
// produced earlier, and no op touches a layer after its SGD ran — the update
// mutates the layer's parameters in place, so any later forward, recompute
// or backward through the layer would read mid-step weights.
func (c *checker) trainingOrder() {
	p := c.p
	recomputedAt := make(map[layers.Layer]int)
	sgdAt := make(map[layers.Layer]int)
	gradBuf := make(map[layers.Layer]runtime.BufferID)
	for i, op := range p.Ops {
		if op.Layer == nil {
			continue
		}
		if at, ok := sgdAt[op.Layer]; ok {
			c.add(CheckTraining, i, runtime.NoBuffer, "op runs layer %q after op %d already applied its SGD update: it would read mid-step parameters", op.Name, at)
		}
		switch op.Kind {
		case runtime.OpRecompute:
			if first, ok := recomputedAt[op.Layer]; ok {
				c.add(CheckTraining, i, op.Out, "layer %q is recomputed again (first recomputed at op %d): checkpointing bounds each activation to one recompute", op.Name, first)
			} else {
				recomputedAt[op.Layer] = i
			}
		case runtime.OpGradFilter:
			gradBuf[op.Layer] = op.Out
		case runtime.OpSGD:
			g, ok := gradBuf[op.Layer]
			switch {
			case !ok:
				c.add(CheckTraining, i, op.In, "sgd op has no preceding grad-filter for layer %q", op.Name)
			case c.root[op.In] != c.root[g]:
				c.add(CheckTraining, i, op.In, "sgd op reads buffer %d but layer %q's parameter gradient was computed into buffer %d", op.In, op.Name, g)
			}
			sgdAt[op.Layer] = i
		}
	}
}

// plan checks the memory plan against the op list (check e): the recorded
// live ranges must equal liveness recomputed from the ops — a stale plan
// (ops mutated after planning) is exactly as dangerous as a wrong one — and,
// with the ranges trusted, the arena packing must place no two live roots on
// overlapping extents (MemPlan.Validate's offset sweep, which also confirms
// bounds and that aliases share their root's offset).
func (c *checker) plan() {
	p := c.p
	m := p.Mem
	if m == nil {
		c.add(CheckPlan, -1, runtime.NoBuffer, "program carries no memory plan")
		return
	}
	n := len(p.Buffers)
	if len(m.Offsets) != n || len(m.Live) != n {
		c.add(CheckPlan, -1, runtime.NoBuffer, "memory plan covers %d offsets and %d live ranges for %d buffers", len(m.Offsets), len(m.Live), n)
		return
	}

	// Recompute liveness exactly as PlanMemory does: Input and ExtraInputs
	// are written at -1, the output is read at len(ops), scratch lives only
	// inside its op, and aliases merge into their root.
	def := make([]int, n)
	last := make([]int, n)
	for i := range def {
		def[i] = len(p.Ops) + 1
		last[i] = -2
	}
	touch := func(id runtime.BufferID, op int, write bool) {
		r := c.root[id]
		if write && op < def[r] {
			def[r] = op
		}
		if op > last[r] {
			last[r] = op
		}
	}
	touch(p.Input, -1, true)
	for _, id := range p.ExtraInputs {
		touch(id, -1, true)
	}
	for i, op := range p.Ops {
		touch(op.In, i, false)
		touch(op.Out, i, true)
		if op.Aux != runtime.NoBuffer {
			touch(op.Aux, i, false)
		}
		if op.Scratch != runtime.NoBuffer {
			touch(op.Scratch, i, true)
		}
	}
	touch(p.Output, len(p.Ops), false)

	stale := false
	for i := range p.Buffers {
		r := c.root[i]
		if def[r] > len(p.Ops) {
			c.add(CheckPlan, -1, runtime.BufferID(i), "buffer %d is dead: no op defines or reads it", i)
			stale = true
			continue
		}
		want := runtime.Interval{Def: def[r], LastUse: last[r]}
		if m.Live[i] != want {
			c.add(CheckPlan, -1, runtime.BufferID(i), "plan records buffer %d live over [%d,%d] but the op list implies [%d,%d]: the plan is stale", i, m.Live[i].Def, m.Live[i].LastUse, want.Def, want.LastUse)
			stale = true
		}
	}
	if stale {
		// The overlap sweep reads m.Live; with ranges that contradict the op
		// list its verdict would be meaningless either way.
		return
	}
	if err := m.Validate(p); err != nil {
		c.add(CheckPlan, -1, runtime.NoBuffer, "%s", strings.TrimPrefix(err.Error(), "runtime: "))
	}
}

// Sharded verifies a pipeline-sharded program: the stages tile the base op
// list contiguously, each stage's boundary input matches the base buffer
// crossing the cut (and its recorded transfer size), consecutive stages
// agree on the element count flowing between them, and every stage
// sub-program independently passes the full Check suite.
func Sharded(sp *runtime.ShardedProgram) error {
	if sp == nil || sp.Base == nil {
		return &Error{Name: "<nil sharded program>", Diags: []Diagnostic{{
			Check: CheckStages, Op: -1, Buffer: runtime.NoBuffer, Msg: "sharded program or its base is nil",
		}}}
	}
	var diags []Diagnostic
	addf := func(format string, args ...any) {
		diags = append(diags, Diagnostic{Check: CheckStages, Op: -1, Buffer: runtime.NoBuffer, Msg: fmt.Sprintf(format, args...)})
	}
	if len(sp.Stages) == 0 {
		addf("sharded program has no stages")
	}
	next := 0
	prevElems := -1
	for i, st := range sp.Stages {
		if st.Index != i {
			addf("stage at position %d carries index %d", i, st.Index)
		}
		if st.FirstOp != next || st.LastOp < st.FirstOp || st.LastOp >= len(sp.Base.Ops) {
			addf("stage %d covers ops [%d,%d] of %d; stages must tile the base op list contiguously (expected to start at %d)", i, st.FirstOp, st.LastOp, len(sp.Base.Ops), next)
			prevElems = -1
			if st.Prog != nil {
				for _, d := range Check(st.Prog) {
					d.Msg = fmt.Sprintf("stage %d: %s", i, d.Msg)
					diags = append(diags, d)
				}
			}
			continue
		}
		next = st.LastOp + 1
		if st.Prog == nil {
			addf("stage %d has no sub-program", i)
			prevElems = -1
			continue
		}
		boundary := sp.Base.Input
		if st.FirstOp > 0 {
			boundary = sp.Base.Ops[st.FirstOp].In
		}
		bb := sp.Base.Buffers[boundary]
		if got := st.Prog.InputShape(); got != bb.Shape {
			addf("stage %d input shape %v does not match boundary buffer %d (%v)", i, got, boundary, bb.Shape)
		}
		var wantTransfer int64
		if i > 0 {
			wantTransfer = bb.Bytes()
		}
		if st.TransferInBytes != wantTransfer {
			addf("stage %d records a %d-byte transfer in; the boundary buffer carries %d bytes", i, st.TransferInBytes, wantTransfer)
		}
		if i > 0 && prevElems >= 0 && st.Prog.InputShape().Elems() != prevElems {
			addf("stage %d consumes %d elements but stage %d produces %d", i, st.Prog.InputShape().Elems(), i-1, prevElems)
		}
		prevElems = st.Prog.OutputShape().Elems()
		for _, d := range Check(st.Prog) {
			d.Msg = fmt.Sprintf("stage %d: %s", i, d.Msg)
			diags = append(diags, d)
		}
	}
	if len(sp.Stages) > 0 && next != len(sp.Base.Ops) {
		addf("stages cover ops [0,%d) of %d: the tail of the base program is unassigned", next, len(sp.Base.Ops))
	}
	if len(diags) == 0 {
		return nil
	}
	return &Error{Name: sp.Base.PlannerName, Diags: diags}
}
