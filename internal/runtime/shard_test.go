package runtime_test

import (
	"testing"

	"memcnn/internal/gpusim"
	"memcnn/internal/network"
	"memcnn/internal/runtime"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

// simDevices builds n simulated devices over the paper's Titan Black model.
func simDevices(n int) []runtime.Device {
	return runtime.SimDevices(n, gpusim.TitanBlack())
}

// TestShardStructureProperty shards every supported network (TinyNet plus the
// five paper models, the latter compiled under the paper's optimiser, with
// and without convolution algorithm selection) across 1–4 devices and checks
// the structural invariants of every sharding: stages are contiguous and
// cover the op list exactly once, every stage's memory plan validates, stage
// shapes chain through the cut boundaries, and the transfer at each cut is
// exactly the boundary buffer's storage.
func TestShardStructureProperty(t *testing.T) {
	tiny, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	progs := map[string]*runtime.Program{
		"TinyNet": mustCompileOpts(t, planners()[2], tiny, runtime.Options{}),
	}
	for _, name := range workloads.NetworkOrder {
		progs[name] = mustCompile(t, planners()[2], nets[name])
		progs[name+"/selected"] = mustCompileOpts(t, planners()[2], nets[name],
			runtime.Options{ConvAlgorithms: true})
	}

	for name, prog := range progs {
		for _, balance := range []runtime.ShardBalance{runtime.BalanceFLOPs, runtime.BalanceBytes} {
			for devices := 1; devices <= 4; devices++ {
				sp, err := runtime.Shard(prog, devices, runtime.ShardOptions{
					Devices: simDevices(devices),
					Balance: balance,
				})
				if err != nil {
					t.Fatalf("%s/%v/%d: %v", name, balance, devices, err)
				}
				if len(sp.Stages) != devices && len(sp.Stages) != len(prog.Ops) {
					t.Errorf("%s/%v/%d: %d stages", name, balance, devices, len(sp.Stages))
				}
				next := 0
				for i, st := range sp.Stages {
					if st.FirstOp != next || st.LastOp < st.FirstOp {
						t.Fatalf("%s/%v/%d: stage %d spans [%d,%d], want to start at %d",
							name, balance, devices, i, st.FirstOp, st.LastOp, next)
					}
					next = st.LastOp + 1
					if err := st.Prog.Mem.Validate(st.Prog); err != nil {
						t.Errorf("%s/%v/%d: stage %d plan: %v", name, balance, devices, i, err)
					}
					if st.Ops() != len(st.Prog.Ops) {
						t.Errorf("%s/%v/%d: stage %d has %d ops, program %d",
							name, balance, devices, i, st.Ops(), len(st.Prog.Ops))
					}
					if i == 0 {
						if st.TransferInBytes != 0 {
							t.Errorf("%s/%v/%d: first stage reports a transfer", name, balance, devices)
						}
						if st.Prog.InputShape() != prog.InputShape() {
							t.Errorf("%s/%v/%d: first stage consumes %v, want %v",
								name, balance, devices, st.Prog.InputShape(), prog.InputShape())
						}
						continue
					}
					prev := sp.Stages[i-1]
					if prev.Prog.OutputShape() != st.Prog.InputShape() {
						t.Errorf("%s/%v/%d: cut %d: stage output %v does not feed stage input %v",
							name, balance, devices, i, prev.Prog.OutputShape(), st.Prog.InputShape())
					}
					if want := st.Prog.Buffers[st.Prog.Input].Bytes(); st.TransferInBytes != want {
						t.Errorf("%s/%v/%d: cut %d transfers %d B, boundary holds %d B",
							name, balance, devices, i, st.TransferInBytes, want)
					}
				}
				if next != len(prog.Ops) {
					t.Errorf("%s/%v/%d: stages cover %d of %d ops", name, balance, devices, next, len(prog.Ops))
				}
				if last := sp.Stages[len(sp.Stages)-1]; last.Prog.OutputShape() != prog.OutputShape() {
					t.Errorf("%s/%v/%d: last stage produces %v, want %v",
						name, balance, devices, last.Prog.OutputShape(), prog.OutputShape())
				}
				if sp.SummedPeakBytes() <= 0 {
					t.Errorf("%s/%v/%d: summed peak %d", name, balance, devices, sp.SummedPeakBytes())
				}
			}
		}
	}
}

// shardedGoldenCase is one network of the sharded-equivalence suite.  The
// functional forward is the cost driver (the structural property test above
// already covers every network at 1–4 devices), so only TinyNet executes at
// every device count with a recycled-arena rerun; the larger nets run once at
// the device counts listed.
type shardedGoldenCase struct {
	name    string
	net     *network.Network
	opts    runtime.Options
	devices []int
	rerun   bool
}

// TestShardedGoldenEquivalence pipelines every affordable network across 1–4
// simulated devices and checks the stitched stage outputs are bit-identical
// to the unsharded executor (which the golden suite already holds to the
// functional references).  The ImageNet-scale configuration rides through
// AlexNet at batch 4 with algorithm selection, as in the golden suite.
func TestShardedGoldenEquivalence(t *testing.T) {
	tiny, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	cases := []shardedGoldenCase{{name: "TinyNet", net: tiny, devices: []int{1, 2, 3, 4}, rerun: true}}
	if !testing.Short() {
		nets, err := workloads.Networks()
		if err != nil {
			t.Fatal(err)
		}
		alexSmall, err := workloads.AlexNetWithBatch(4)
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases,
			shardedGoldenCase{
				name: "LeNet", net: nets["LeNet"],
				opts: runtime.Options{ConvAlgorithms: true}, devices: []int{2},
			},
			shardedGoldenCase{
				name: "AlexNet@4", net: alexSmall,
				opts: runtime.Options{ConvAlgorithms: true}, devices: []int{2, 3},
			},
		)
	}
	for _, tc := range cases {
		prog := mustCompileOpts(t, planners()[2], tc.net, tc.opts)
		in := tensor.Random(prog.InputShape(), tensor.NCHW, 23)
		want, err := runtime.NewExecutor(prog).Run(in)
		if err != nil {
			t.Fatalf("%s: unsharded run: %v", tc.name, err)
		}
		for _, devices := range tc.devices {
			sp, err := runtime.Shard(prog, devices, runtime.ShardOptions{Devices: simDevices(devices)})
			if err != nil {
				t.Fatalf("%s/%d: %v", tc.name, devices, err)
			}
			pe := runtime.NewPipelineExecutor(sp)
			got, err := pe.Run(in)
			if err != nil {
				pe.Close()
				t.Fatalf("%s/%d: pipelined run: %v", tc.name, devices, err)
			}
			requireBitEqual(t, tc.name+"/sharded", got, want)
			batches := uint64(1)
			if tc.rerun {
				// A second batch through the recycled stage arenas and
				// boundary pools must be identical.
				again, err := pe.Run(in)
				if err != nil {
					pe.Close()
					t.Fatalf("%s/%d: pipelined rerun: %v", tc.name, devices, err)
				}
				requireBitEqual(t, tc.name+"/sharded rerun", again, want)
				batches = 2
			}
			for _, st := range pe.StageStats() {
				if st.Batches != batches {
					t.Errorf("%s/%d: stage %d saw %d batches, want %d", tc.name, devices, st.Stage, st.Batches, batches)
				}
				if st.ModeledUS <= 0 {
					t.Errorf("%s/%d: stage %d reports no modeled time on a simulated device",
						tc.name, devices, st.Stage)
				}
			}
			summed, single := sp.SummedPeakBytes(), prog.Mem.PeakBytes()
			t.Logf("%s across %d device(s): summed arena %.2f MiB vs single-device %.2f MiB, transfers %.2f MiB",
				tc.name, len(sp.Stages), float64(summed)/(1<<20), float64(single)/(1<<20),
				float64(sp.TransferBytes())/(1<<20))
			pe.Close()
		}
	}
}

// TestPipelineLifecycle covers close semantics and input validation.
func TestPipelineLifecycle(t *testing.T) {
	tiny, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := runtime.CompileFixed(tiny, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := runtime.Shard(prog, 2, runtime.ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pe := runtime.NewPipelineExecutor(sp)
	bad := tensor.New(tensor.Shape{N: 1, C: 1, H: 12, W: 12}, tensor.NCHW)
	if _, err := pe.Run(bad); err == nil {
		t.Error("wrong input shape must be rejected")
	}
	in := tensor.Random(prog.InputShape(), tensor.NCHW, 3)
	if _, err := pe.Run(in); err != nil {
		t.Fatal(err)
	}
	pe.Close()
	pe.Close() // idempotent
	if _, err := pe.Run(in); err != runtime.ErrPipelineClosed {
		t.Errorf("Run after Close returned %v, want ErrPipelineClosed", err)
	}
}

// TestShardRejectsBadArguments covers the error paths.
func TestShardRejectsBadArguments(t *testing.T) {
	tiny, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := runtime.CompileFixed(tiny, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runtime.Shard(nil, 2, runtime.ShardOptions{}); err == nil {
		t.Error("a nil program must be rejected")
	}
	if _, err := runtime.Shard(prog, 0, runtime.ShardOptions{}); err == nil {
		t.Error("a zero stage count must be rejected")
	}
	if _, err := runtime.Shard(prog, 2, runtime.ShardOptions{Devices: simDevices(3)}); err == nil {
		t.Error("a device/stage count mismatch must be rejected")
	}
	// More devices than ops: the stage count clamps instead of failing.
	sp, err := runtime.Shard(prog, 100, runtime.ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Stages) != len(prog.Ops) {
		t.Errorf("clamped sharding has %d stages, want one per op (%d)", len(sp.Stages), len(prog.Ops))
	}
}
