package runtime_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"memcnn/internal/runtime"
	"memcnn/internal/tensor"
)

// waitForFlight blocks until the cache holds an (in-flight) entry.
func waitForFlight(t *testing.T, c *runtime.ResultCache) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for c.Len() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no flight appeared in the cache")
		}
		time.Sleep(time.Millisecond)
	}
}

// value builds a tiny result tensor carrying v, so cache round trips are
// checkable.
func value(v float32) *tensor.Tensor {
	t := tensor.New(tensor.Shape{N: 1, C: 1, H: 1, W: 1}, tensor.NCHW)
	t.Data[0] = v
	return t
}

// fetch runs a Do that returns value(v) and fails the test on error.
func fetch(t *testing.T, c *runtime.ResultCache, key uint64, v float32) *tensor.Tensor {
	t.Helper()
	out, err := c.Do(context.Background(), key, func() (*tensor.Tensor, error) { return value(v), nil })
	if err != nil {
		t.Fatalf("Do(%d): %v", key, err)
	}
	return out
}

// TestCacheHitMissCounters drives a deterministic sequence and checks every
// counter exactly.
func TestCacheHitMissCounters(t *testing.T) {
	c, err := runtime.NewResultCache(4)
	if err != nil {
		t.Fatal(err)
	}
	fetch(t, c, 1, 10) // miss
	fetch(t, c, 2, 20) // miss
	fetch(t, c, 1, 99) // hit: must return the cached 10, not recompute 99
	if got := fetch(t, c, 1, 99); got.Data[0] != 10 {
		t.Errorf("cached value overwritten: got %v, want 10", got.Data[0])
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 0 {
		t.Errorf("stats = %+v, want 2 hits, 2 misses, 0 evictions", st)
	}
	if st.Size != 2 || st.Capacity != 4 {
		t.Errorf("stats = %+v, want size 2 of 4", st)
	}
}

// TestCacheEvictionOrder checks LRU order: touching an entry protects it, the
// least recently used entry leaves first.
func TestCacheEvictionOrder(t *testing.T) {
	c, err := runtime.NewResultCache(2)
	if err != nil {
		t.Fatal(err)
	}
	fetch(t, c, 1, 1)
	fetch(t, c, 2, 2)
	fetch(t, c, 1, 0) // touch 1: key 2 becomes least recently used
	fetch(t, c, 3, 3) // evicts 2
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Errorf("after eviction: contains 1=%v 2=%v 3=%v, want 1 and 3 only",
			c.Contains(1), c.Contains(2), c.Contains(3))
	}
	if got := fetch(t, c, 1, 42); got.Data[0] != 1 {
		t.Errorf("protected entry was evicted: got %v, want cached 1", got.Data[0])
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

// TestCacheBoundedUnderChurn streams many distinct keys through a small cache
// and checks the size bound holds and evictions account for the overflow.
func TestCacheBoundedUnderChurn(t *testing.T) {
	const capacity, keys = 4, 100
	c, err := runtime.NewResultCache(capacity)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < keys; k++ {
		fetch(t, c, k, float32(k))
		if c.Len() > capacity {
			t.Fatalf("cache grew to %d entries (capacity %d)", c.Len(), capacity)
		}
	}
	st := c.Stats()
	if st.Size != capacity {
		t.Errorf("size = %d, want %d", st.Size, capacity)
	}
	if st.Misses != keys || st.Evictions != keys-capacity {
		t.Errorf("stats = %+v, want %d misses and %d evictions", st, keys, keys-capacity)
	}
}

// TestCacheSingleFlight fires many concurrent identical requests and checks
// exactly one execution happened, with every caller receiving its result.
func TestCacheSingleFlight(t *testing.T) {
	c, err := runtime.NewResultCache(8)
	if err != nil {
		t.Fatal(err)
	}
	const callers = 32
	var executions atomic.Uint64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	outs := make([]*tensor.Tensor, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = c.Do(context.Background(), 7, func() (*tensor.Tensor, error) {
				executions.Add(1)
				<-gate // hold the leader so every other caller joins the flight
				return value(77), nil
			})
		}(i)
	}
	// Wait until the leader is inside compute, then release it.
	waitForFlight(t, c)
	close(gate)
	wg.Wait()
	if n := executions.Load(); n != 1 {
		t.Errorf("%d executions for %d concurrent identical requests, want 1", n, callers)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if outs[i].Data[0] != 77 {
			t.Errorf("caller %d got %v, want 77", i, outs[i].Data[0])
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits", st, callers-1)
	}
	// Results are private copies: mutating one must not poison the cache.
	outs[0].Data[0] = -1
	if got := fetch(t, c, 7, 0); got.Data[0] != 77 {
		t.Errorf("cache shares storage with callers: got %v, want 77", got.Data[0])
	}
}

// TestCacheErrorNotCached checks that a failed execution propagates its error
// and leaves no entry behind, so the next request re-executes.
func TestCacheErrorNotCached(t *testing.T) {
	c, err := runtime.NewResultCache(4)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, err := c.Do(context.Background(), 5, func() (*tensor.Tensor, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("Do returned %v, want the compute error", err)
	}
	if c.Contains(5) {
		t.Error("failed execution left a cache entry")
	}
	if got := fetch(t, c, 5, 55); got.Data[0] != 55 {
		t.Errorf("retry after failure got %v, want 55", got.Data[0])
	}
	if st := c.Stats(); st.Misses != 2 {
		t.Errorf("misses = %d, want 2 (failure plus retry)", st.Misses)
	}
}

// TestCacheContextCancellation checks a waiter abandons a slow flight when
// its context is cancelled.
func TestCacheContextCancellation(t *testing.T) {
	c, err := runtime.NewResultCache(4)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, _ = c.Do(context.Background(), 9, func() (*tensor.Tensor, error) {
			<-gate
			return value(9), nil
		})
	}()
	waitForFlight(t, c)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Do(ctx, 9, func() (*tensor.Tensor, error) { return value(9), nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter returned %v, want context.Canceled", err)
	}
	close(gate)
	<-leaderDone
}

// TestCacheRejectsBadCapacity covers the constructor's validation.
func TestCacheRejectsBadCapacity(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		if _, err := runtime.NewResultCache(capacity); err == nil {
			t.Errorf("capacity %d accepted", capacity)
		}
	}
}

// TestImageChecksum checks the fingerprint is content-defined: equal images
// collide, different images (and shapes) do not, and the layout the client
// sent does not matter.
func TestImageChecksum(t *testing.T) {
	shape := tensor.Shape{N: 1, C: 3, H: 8, W: 8}
	a := tensor.Random(shape, tensor.NCHW, 1)
	b := tensor.Random(shape, tensor.NCHW, 1)
	if runtime.ImageChecksum(a) != runtime.ImageChecksum(b) {
		t.Error("identical images produced different checksums")
	}
	cDiff := tensor.Random(shape, tensor.NCHW, 2)
	if runtime.ImageChecksum(a) == runtime.ImageChecksum(cDiff) {
		t.Error("different images produced the same checksum")
	}
	// A one-bit flip must change the key.
	d := a.Clone()
	d.Data[17] += 1
	if runtime.ImageChecksum(a) == runtime.ImageChecksum(d) {
		t.Error("a perturbed image produced the same checksum")
	}
	// Layout-independent: the same image sent HWCN hashes like its NCHW twin.
	e := tensor.Convert(a, tensor.HWCN)
	if runtime.ImageChecksum(a) != runtime.ImageChecksum(e) {
		t.Error("the checksum depends on the client's layout")
	}
	// Shape participates: the same bytes under a different shape differ.
	f, err := tensor.NewFrom(tensor.Shape{N: 1, C: 3, H: 4, W: 16}, tensor.NCHW, a.Data)
	if err != nil {
		t.Fatal(err)
	}
	if runtime.ImageChecksum(a) == runtime.ImageChecksum(f) {
		t.Error("reshaped image produced the same checksum")
	}
}
