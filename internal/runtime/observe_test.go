package runtime_test

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"memcnn/internal/gpusim"
	"memcnn/internal/obs"
	"memcnn/internal/runtime"
	"memcnn/internal/runtime/replica"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

// observedFixture compiles TinyNet onto a simulated device so executor tests
// exercise the modeled-vs-measured drift channel too.
func observedFixture(t *testing.T) (*runtime.Executor, *tensor.Tensor, *tensor.Tensor) {
	t.Helper()
	net, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := runtime.CompileFixed(net, tensor.CHWN)
	if err != nil {
		t.Fatal(err)
	}
	exec := runtime.NewExecutorOn(prog, runtime.NewSimDevice("sim", gpusim.TitanBlack()))
	in := tensor.Random(net.InputShape(), tensor.CHWN, 1)
	out := tensor.New(prog.OutputShape(), tensor.CHWN)
	return exec, in, out
}

// TestInstrumentAddsNoAllocations pins the hot-path contract from both sides:
// an executor with observability detached must allocate exactly what the
// never-instrumented executor allocates, and attaching a full observer
// (recorder + registry, including the drift counters a SimDevice enables)
// must not add a single allocation per run either — spans are value copies
// into the ring, observations are atomic increments.
func TestInstrumentAddsNoAllocations(t *testing.T) {
	exec, in, out := observedFixture(t)
	run := func() {
		if err := exec.RunInto(in, out); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the arena pool
	base := testing.AllocsPerRun(100, run)

	ob := runtime.Observer{Trace: obs.NewRecorder(1 << 10), Metrics: obs.NewRegistry()}
	exec.Instrument(ob, runtime.LaneEngine)
	run() // let lazy metric registration settle
	if enabled := testing.AllocsPerRun(100, run); enabled > base {
		t.Errorf("instrumented run allocates %.1f/run, uninstrumented %.1f — tracing must add zero", enabled, base)
	}

	exec.Instrument(runtime.Observer{}, runtime.LaneEngine) // detach
	if disabled := testing.AllocsPerRun(100, run); disabled > base {
		t.Errorf("detached run allocates %.1f/run, uninstrumented %.1f — disabled path must add zero", disabled, base)
	}
}

// TestExecutorSpansAndDrift checks what an instrumented executor records: one
// run span plus one op span per compiled op per execution, op spans carrying
// kind/layout (and the conv algorithm on conv layers), latency histograms per
// op kind, and — because the device chain is a SimDevice — the per-layer
// modeled-vs-measured drift counters DriftReport extracts.
func TestExecutorSpansAndDrift(t *testing.T) {
	exec, in, out := observedFixture(t)
	rec := obs.NewRecorder(1 << 10)
	reg := obs.NewRegistry()
	exec.Instrument(runtime.Observer{Trace: rec, Metrics: reg}, runtime.LaneEngine)

	const runs = 3
	for i := 0; i < runs; i++ {
		if err := exec.RunInto(in, out); err != nil {
			t.Fatal(err)
		}
	}

	spans := rec.Snapshot()
	// Aliased reshapes are free views the executor never runs, so they record
	// no spans; every other op must record one span per execution.
	prog := exec.Program()
	execOps := 0
	for _, op := range prog.Ops {
		if op.Kind == runtime.OpReshape && prog.Buffers[op.Out].AliasOf != runtime.NoBuffer {
			continue
		}
		execOps++
	}
	byCat := map[string]int{}
	convSpans := 0
	for _, sp := range spans {
		byCat[sp.Cat.String()]++
		if sp.Lane != runtime.LaneEngine {
			t.Errorf("span %q on lane %d, want %d", sp.Name, sp.Lane, runtime.LaneEngine)
		}
		if sp.Cat == obs.CatOp {
			if sp.Kind == "" || sp.Layout == "" {
				t.Errorf("op span %q missing kind/layout: %+v", sp.Name, sp)
			}
			if sp.Alg != "" {
				convSpans++
			}
			if sp.ModeledUS <= 0 && sp.Kind == "layer" {
				t.Errorf("layer op span %q has no modeled time on a SimDevice", sp.Name)
			}
		}
	}
	if byCat["op"] != runs*execOps || byCat["run"] != runs {
		t.Errorf("recorded %d op / %d run spans, want %d / %d", byCat["op"], byCat["run"], runs*execOps, runs)
	}
	if convSpans == 0 {
		t.Error("no op span carries a conv algorithm")
	}

	var opObservations uint64
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "memcnn_op_latency_us":
			opObservations += s.Hist.Count()
		case "memcnn_run_latency_us":
			if s.Hist.Count() != runs {
				t.Errorf("run latency counts %d, want %d", s.Hist.Count(), runs)
			}
			if p99 := s.Hist.Quantile(0.99); p99 <= 0 {
				t.Errorf("run p99 = %g, want > 0", p99)
			}
		}
	}
	if opObservations != uint64(runs*execOps) {
		t.Errorf("op latency histograms hold %d observations, want %d", opObservations, runs*execOps)
	}

	drift := runtime.DriftReport(reg)
	if len(drift) == 0 {
		t.Fatal("DriftReport empty on a SimDevice executor")
	}
	for _, d := range drift {
		if d.Net != "TinyNet" || d.Op == "" {
			t.Errorf("drift sample has bad identity: %+v", d)
		}
		if d.MeasuredUS <= 0 || d.ModeledUS <= 0 || d.Ratio() <= 0 {
			t.Errorf("drift sample %s/%s not populated: %+v", d.Net, d.Op, d)
		}
	}
}

// TestServerPipelinedInstrumented drives the pipelined server fixture with a
// shared observer attached (run under -race by CI: four workers and two stage
// goroutines all record into one ring) and then checks the whole span
// taxonomy landed — queue, coalesce, batch, stage — plus the serving metrics
// and the histogram-backed queue-wait stats that replaced the EWMA estimate.
func TestServerPipelinedInstrumented(t *testing.T) {
	prog, images, _ := serverFixture(t)
	sp, err := runtime.Shard(prog, 2, runtime.ShardOptions{
		Devices: []runtime.Device{
			runtime.NewSimDevice("sim0", gpusim.TitanBlack()),
			runtime.NewSimDevice("sim1", gpusim.TitanX()),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewRecorder(1 << 12)
	reg := obs.NewRegistry()
	ob := runtime.Observer{Trace: rec, Metrics: reg}

	pipe := runtime.NewPipelineExecutor(sp)
	defer pipe.Close()
	pipe.Instrument(ob, runtime.LaneEngine, "")
	srv, err := runtime.NewServerWith(prog, pipe, runtime.ServerConfig{
		MaxDelay: 5 * time.Millisecond,
		Workers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Instrument(ob)

	const concurrent = 96
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := srv.Infer(ctx, images[i%len(images)]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	byCat := map[string]int{}
	for _, sp := range rec.Snapshot() {
		byCat[sp.Cat.String()]++
	}
	for _, cat := range []string{"queue", "coalesce", "batch", "stage", "op", "run"} {
		if byCat[cat] == 0 {
			t.Errorf("no %q spans recorded (got %v)", cat, byCat)
		}
	}

	st := srv.Stats()
	if st.QueueWaitP99US <= 0 || st.QueueWaitP99US < st.QueueWaitP50US {
		t.Errorf("queue-wait quantiles implausible: p50=%g p99=%g", st.QueueWaitP50US, st.QueueWaitP99US)
	}
	if st.BatchP99US <= 0 || st.BatchP99US < st.BatchP50US {
		t.Errorf("batch quantiles implausible: p50=%g p99=%g", st.BatchP50US, st.BatchP99US)
	}

	// /metrics and Stats() must agree: the counters are the same atomics.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		"# TYPE memcnn_requests_total counter",
		"# TYPE memcnn_queue_wait_us histogram",
		"# TYPE memcnn_batch_latency_us histogram",
		"# TYPE memcnn_stage_latency_us histogram",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("Prometheus exposition missing %q", want)
		}
	}

	// The exported trace must be valid Chrome trace JSON with named lanes.
	var tbuf bytes.Buffer
	if err := rec.WriteChromeTrace(&tbuf, 0); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph   string         `json:"ph"`
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tbuf.Bytes(), &trace); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	lanes := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			lanes[ev.Args["name"].(string)] = true
		}
	}
	var stageLane, workerLane bool
	for name := range lanes {
		if strings.Contains(name, "stage") {
			stageLane = true
		}
		if strings.Contains(name, "server w") {
			workerLane = true
		}
	}
	if !stageLane || !workerLane {
		t.Errorf("trace lanes missing stage/worker names: %v", lanes)
	}
}

// TestServerReplicatedInstrumented is the data-parallel twin: a two-replica
// group (one of them pipeline-sharded) behind the batch server, all recording
// into one observer under -race, checked for per-replica spans, per-replica
// latency histograms and the replica batch counters in /metrics.
func TestServerReplicatedInstrumented(t *testing.T) {
	prog, images, _ := serverFixture(t)
	group, err := replica.NewGroup(prog, 2, replica.Config{
		Devices: [][]runtime.Device{
			{runtime.NewSimDevice("r0", gpusim.TitanBlack())},
			{runtime.NewSimDevice("r1.0", gpusim.TitanX()), runtime.NewSimDevice("r1.1", gpusim.TitanX())},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer group.Close()
	rec := obs.NewRecorder(1 << 12)
	reg := obs.NewRegistry()
	ob := runtime.Observer{Trace: rec, Metrics: reg}
	group.Instrument(ob)
	srv, err := runtime.NewServerWith(prog, group, runtime.ServerConfig{
		MaxDelay: 5 * time.Millisecond,
		Workers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Instrument(ob)

	const concurrent = 96
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := srv.Infer(ctx, images[i%len(images)]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()

	replicaLanes := map[int32]int{}
	for _, sp := range rec.Snapshot() {
		if sp.Cat == obs.CatReplica {
			replicaLanes[sp.Lane]++
			if sp.Images <= 0 {
				t.Errorf("replica span reports no batch size: %+v", sp)
			}
		}
	}
	if len(replicaLanes) != group.Replicas() {
		t.Errorf("replica spans on %d lanes, want one lane per replica (%d)", len(replicaLanes), group.Replicas())
	}

	histReplicas := 0
	for _, s := range reg.Snapshot() {
		if s.Name == "memcnn_replica_latency_us" {
			histReplicas++
			if s.Hist.Count() == 0 {
				t.Errorf("replica latency series %s empty", s.Labels)
			}
		}
	}
	if histReplicas != group.Replicas() {
		t.Errorf("%d replica latency series, want %d", histReplicas, group.Replicas())
	}

	// The metrics view of per-replica batches must equal ReplicaStats' view.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	// The group is a FaultReporter, so the fault counters must be exported.
	for _, want := range []string{"memcnn_fault_failovers_total", "memcnn_unhealthy_replicas"} {
		if !strings.Contains(prom, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
	for _, rs := range group.ReplicaStats() {
		want := strings.Replace(
			`memcnn_replica_batches_total{net="TinyNet",replica="R"}`, "R",
			[]string{"0", "1"}[rs.Replica], 1)
		if !strings.Contains(prom, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestServerStatsMatchMetrics serves through a replica group (the engine
// that reports fault-tolerance counters) and asserts every counter surfaced
// in /metrics is numerically identical to ServerStats — they read the same
// atomics, so any divergence is a bug.
func TestServerStatsMatchMetrics(t *testing.T) {
	prog, images, _ := serverFixture(t)
	group, err := replica.NewGroup(prog, 2, replica.Config{
		Devices: [][]runtime.Device{
			{runtime.NewSimDevice("r0", gpusim.TitanBlack())},
			{runtime.NewSimDevice("r1", gpusim.TitanX())},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer group.Close()
	reg := obs.NewRegistry()
	srv, err := runtime.NewServerWith(prog, group, runtime.ServerConfig{
		MaxDelay: time.Millisecond,
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Instrument(runtime.Observer{Metrics: reg})

	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := srv.Infer(ctx, images[i%len(images)]); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.Faults == nil {
		t.Fatal("replica-group server reports no fault stats")
	}
	vals := map[string]float64{}
	for _, s := range reg.Snapshot() {
		vals[s.Name] = s.Value
	}
	for name, want := range map[string]float64{
		"memcnn_requests_total":        float64(st.Requests),
		"memcnn_batches_total":         float64(st.Batches),
		"memcnn_request_errors_total":  float64(st.Errors),
		"memcnn_shed_total":            float64(st.Shed),
		"memcnn_fault_retries_total":   float64(st.Faults.Retries),
		"memcnn_fault_failovers_total": float64(st.Faults.Failovers),
		"memcnn_fault_panics_total":    float64(st.Faults.Panics),
		"memcnn_unhealthy_replicas":    float64(st.Faults.UnhealthyReplicas),
	} {
		got, ok := vals[name]
		if !ok {
			t.Errorf("metric %s not registered", name)
			continue
		}
		if got != want {
			t.Errorf("metrics %s=%g, stats say %g", name, got, want)
		}
	}
}
