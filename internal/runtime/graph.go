package runtime

import (
	"fmt"

	"memcnn/internal/autotune"
	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/layout"
	"memcnn/internal/network"
	"memcnn/internal/tensor"
)

// BufferID names one logical activation buffer of a compiled program.
type BufferID int

// NoBuffer marks the absence of a buffer reference (e.g. no alias).
const NoBuffer BufferID = -1

// Buffer describes one logical activation tensor of a program.
type Buffer struct {
	ID     BufferID
	Shape  tensor.Shape
	Layout tensor.Layout

	// AliasOf, when not NoBuffer, marks the buffer as a zero-copy view of
	// another buffer: a reshape whose relabelling does not move data (see
	// tensor.CanReinterpret).  Aliases share their root's storage and are
	// never assigned arena space of their own.
	AliasOf BufferID

	// Scratch marks an op-local workspace buffer (GEMM unroll matrix,
	// flatten/logit staging).  Scratch buffers are live only during the op
	// that owns them, so the memory planner overlays them with any
	// non-conflicting activation storage.
	Scratch bool
}

// Elems returns the buffer's element count.
func (b Buffer) Elems() int { return b.Shape.Elems() }

// Bytes returns the buffer's storage size in bytes (float32 elements).
func (b Buffer) Bytes() int64 { return b.Shape.Bytes() }

// OpKind discriminates the three op types of a compiled program.
type OpKind int

// The op kinds, in the order they can appear between two layers.
const (
	// OpTransform re-linearises a buffer into another layout
	// (tensor.ConvertInto); it carries the plan's layout-transformation.
	OpTransform OpKind = iota
	// OpReshape relabels a buffer with a new logical shape at a flattening
	// boundary.  When the output buffer aliases the input the op is free;
	// otherwise the executor falls back to a canonical-order copy.
	OpReshape
	// OpLayer runs one network layer from its input buffer into its output
	// buffer.
	OpLayer
	// OpRecompute re-runs a layer's forward pass during the backward phase to
	// rematerialise an activation the checkpointing planner chose not to
	// store.  It executes exactly like OpLayer; the distinct kind keeps the
	// traded-away FLOPs visible in reports and prevents a recompute from being
	// mistaken for part of the forward pass.
	OpRecompute
	// OpLossGrad computes the fused softmax + cross-entropy gradient: In is
	// the probability buffer, Aux the float32-coded label vector, Out the
	// logit gradient (all N×Classes matrices except the labels).
	OpLossGrad
	// OpBackward propagates a gradient through one layer: In is the incoming
	// output-gradient, Aux the layer's forward input where the layer needs it
	// (pooling argmax, ReLU mask, LRN window; NoBuffer for conv and
	// fully-connected, whose input gradients depend only on their
	// parameters), Out the input-gradient.
	OpBackward
	// OpGradFilter computes a parameter gradient: In is the incoming
	// output-gradient, Aux the layer's forward input, Out the parameter
	// gradient in the layer's GradShape.
	OpGradFilter
	// OpSGD applies In (a parameter gradient) to the op's layer in place with
	// learning rate LR; Out equals In (the op defines no new value).
	OpSGD
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpTransform:
		return "transform"
	case OpReshape:
		return "reshape"
	case OpLayer:
		return "layer"
	case OpRecompute:
		return "recompute"
	case OpLossGrad:
		return "loss-grad"
	case OpBackward:
		return "backward"
	case OpGradFilter:
		return "grad-filter"
	case OpSGD:
		return "sgd"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one step of a compiled program.
type Op struct {
	Kind OpKind
	Name string
	// Layer is set for OpLayer ops only.
	Layer layers.Layer
	In    BufferID
	Out   BufferID

	// Alg is the convolution algorithm the compiler selected for this layer
	// op; ConvAlgDirect unless algorithm selection chose the GEMM path.
	Alg kernels.ConvAlgorithm
	// Scratch, when not NoBuffer, is the op-local workspace buffer the
	// executor hands the layer (GEMM conv workspace, fully-connected flatten
	// staging, softmax logits).  It is live only during this op.
	Scratch BufferID

	// Aux, when not NoBuffer, is a second read operand: the forward
	// activation a training backward op consumes (OpBackward, OpGradFilter)
	// or the label vector of the loss gradient (OpLossGrad).  Always NoBuffer
	// on inference op kinds.
	Aux BufferID
	// LR is the learning rate of an OpSGD op; zero otherwise.
	LR float32
}

// Program is a network lowered to an executable op list over explicit
// buffers, together with its static memory plan.
type Program struct {
	Net         *network.Network
	PlannerName string
	// Opts records the options the program was lowered with, so derived
	// programs (CompileLike) can reproduce behaviour-affecting choices such
	// as NoInPlace.
	Opts    Options
	Buffers []Buffer
	Ops     []Op
	Input   BufferID
	Output  BufferID
	// ExtraInputs are buffers written by the caller before the run rather
	// than by any op (a training program's label vector).  The memory planner
	// treats them like Input: defined before the first op.
	ExtraInputs []BufferID
	Mem         *MemPlan
}

// InputShape returns the shape the program consumes.
func (p *Program) InputShape() tensor.Shape { return p.Buffers[p.Input].Shape }

// OutputShape returns the shape the program produces.
func (p *Program) OutputShape() tensor.Shape { return p.Buffers[p.Output].Shape }

// root resolves alias chains to the buffer that owns the storage.
func (p *Program) root(id BufferID) BufferID {
	for p.Buffers[id].AliasOf != NoBuffer {
		id = p.Buffers[id].AliasOf
	}
	return id
}

// Options control how Compile lowers a plan.
type Options struct {
	// ConvAlgorithms enables per-layer convolution algorithm selection: each
	// conv op records the direct, im2col+GEMM or FFT strategy
	// (internal/autotune decides by layer shape, and CompileWithOptions
	// re-prices the choice jointly with the layer's layout on the plan's
	// device model) together with the workspace the chosen path needs.  Off
	// by default: the direct path is the bit-equality reference against the
	// naive Network.Forward, while GEMM and FFT programs are cross-checked
	// per algorithm via ReferenceForward.
	ConvAlgorithms bool
	// Probe, together with ConvAlgorithms, selects each conv algorithm by
	// timing every production kernel once on a sample input instead of the
	// analytic heuristic.  Compilation becomes measurably slower (one full
	// layer execution per conv layer per algorithm).
	Probe bool
	// NoInPlace disables in-place execution of layers that declare it safe
	// (layers.InPlaceForwarder, e.g. ReLU).  By default such a layer's
	// output buffer aliases its input, so the op reads and writes the same
	// arena storage and the memory plan shrinks; results are bit-identical
	// either way.  The flag exists to measure that shrinkage.
	NoInPlace bool
	// Verify runs the registered whole-program static checker
	// (internal/runtime/verify) over the lowered program — and, for Shard,
	// over every stage sub-program — before it is returned: def-before-use
	// dataflow, alias-chain soundness, in-place clobber detection, workspace
	// sufficiency, plan/liveness consistency and the determinism lint.
	// Compilation fails if any check does.  The checker must be registered
	// (import memcnn/internal/runtime/verify); derived programs
	// (CompileLike, replica sub-batch clones) inherit the flag.
	Verify bool
}

// Compile lowers an execution plan into a program: each layer becomes an
// OpLayer in its planned layout, a layout change between consecutive layers
// becomes an OpTransform, and a logical shape change (conv/pool output
// flattening into a fully-connected layer) becomes an OpReshape — a zero-copy
// view whenever the layout permits.  The resulting program carries its static
// memory plan (see PlanMemory).
func Compile(plan *network.ExecutionPlan) (*Program, error) {
	return CompileWithOptions(plan, Options{})
}

// CompileWithOptions is Compile with explicit lowering options.
//
// With Options.ConvAlgorithms (and no probe) the compiler does not take the
// plan's layouts as given: each convolution layer goes through the
// internal/layout joint sweep, which prices the analytic heuristic's
// algorithm against the FFT mode — including the cost of switching the
// layer's input layout — on the plan's device model and may flip both the
// algorithm and the layout together (layout.JointConvChoice).  That is the
// paper's joint layout+algorithm choice made at compile time; cmd/layoutplan
// reports the same sweep.
func CompileWithOptions(plan *network.ExecutionPlan, opts Options) (*Program, error) {
	if plan == nil {
		return nil, fmt.Errorf("runtime: cannot compile a nil plan")
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	layouts := make([]tensor.Layout, len(plan.Layers))
	for i, pl := range plan.Layers {
		layouts[i] = pl.Layout
	}
	if opts.ConvAlgorithms && !opts.Probe {
		forced := make([]kernels.ConvAlgorithm, len(plan.Layers))
		for i, pl := range plan.Layers {
			gf, ok := pl.Layer.(layers.GemmForwarder)
			if !ok {
				continue
			}
			base := autotune.SelectConvAlgorithm(gf.Config())
			choice := layout.JointConvChoice(plan.Device, gf.Config(), layouts[i], base)
			layouts[i] = choice.Layout
			forced[i] = choice.Alg
		}
		return lower(plan.Network, plan.PlannerName, layouts, opts, forced)
	}
	return lower(plan.Network, plan.PlannerName, layouts, opts, nil)
}

// CompileLike lowers a network against the shape of an already compiled
// program: per-layer layouts and convolution algorithms are copied from the
// base rather than re-planned or re-selected.  The network must have the same
// layer stack as the base's (typically a Network.WithBatch clone at a
// different batch size); pinning the algorithms matters because golden
// bit-equality holds per algorithm, and autotune would select by shape —
// a sub-batch clone left to its own selection could pick direct where the
// base runs GEMM and drift from the base's bits.  The data-parallel replica
// scheduler compiles every per-replica sub-batch program this way.
func CompileLike(base *Program, net *network.Network) (*Program, error) {
	if base == nil {
		return nil, fmt.Errorf("runtime: cannot compile against a nil base program")
	}
	if net == nil || len(net.Layers) != len(base.Net.Layers) {
		return nil, fmt.Errorf("runtime: network does not match the base program's layer stack")
	}
	layouts := make([]tensor.Layout, len(net.Layers))
	forced := make([]kernels.ConvAlgorithm, len(net.Layers))
	li := 0
	for _, op := range base.Ops {
		if op.Kind != OpLayer {
			continue
		}
		bl, nl := base.Net.Layers[li], net.Layers[li]
		if bl.Name() != nl.Name() {
			return nil, fmt.Errorf("runtime: layer %d is %q in the base, %q in the network",
				li, bl.Name(), nl.Name())
		}
		// Per-image geometry must match; only the batch dimension may differ.
		bin, nin := bl.InputShape(), nl.InputShape()
		bout, nout := bl.OutputShape(), nl.OutputShape()
		if bin.C != nin.C || bin.H != nin.H || bin.W != nin.W ||
			bout.C != nout.C || bout.H != nout.H || bout.W != nout.W {
			return nil, fmt.Errorf("runtime: layer %q is %v->%v in the base, %v->%v in the network",
				nl.Name(), bin, bout, nin, nout)
		}
		// The layer runs in its input buffer's layout: lower inserts the
		// transform bringing the activations there before the layer op.
		layouts[li] = base.Buffers[op.In].Layout
		forced[li] = op.Alg
		li++
	}
	if li != len(net.Layers) {
		return nil, fmt.Errorf("runtime: base program has %d layer ops for %d layers", li, len(net.Layers))
	}
	// Algorithm selection is pinned through forced; the remaining lowering
	// choices (in-place aliasing, verification) follow the base program's
	// options.
	return lower(net, base.PlannerName, layouts, Options{NoInPlace: base.Opts.NoInPlace, Verify: base.Opts.Verify}, forced)
}

// CompileFixed lowers a network with every layer in one layout, the
// single-layout policy of the library emulations.  It needs no device or
// planner and is the baseline the planned programs are compared against.
func CompileFixed(net *network.Network, layout tensor.Layout) (*Program, error) {
	return CompileFixedWithOptions(net, layout, Options{})
}

// CompileFixedWithOptions is CompileFixed with explicit lowering options.
func CompileFixedWithOptions(net *network.Network, layout tensor.Layout, opts Options) (*Program, error) {
	if net == nil || len(net.Layers) == 0 {
		return nil, fmt.Errorf("runtime: cannot compile an empty network")
	}
	layouts := make([]tensor.Layout, len(net.Layers))
	for i, l := range net.Layers {
		if !l.SupportsLayout(layout) {
			return nil, fmt.Errorf("runtime: layer %q does not support layout %v", l.Name(), layout)
		}
		layouts[i] = layout
	}
	return lower(net, fmt.Sprintf("fixed-%v", layout), layouts, opts, nil)
}

// CompileFixedAlg lowers a network with every layer in one layout and every
// convolution pinned to one algorithm, bypassing selection entirely.  The
// golden test suite uses it to hold each production algorithm against
// ReferenceForward on every workload network.
func CompileFixedAlg(net *network.Network, layout tensor.Layout, alg kernels.ConvAlgorithm) (*Program, error) {
	if net == nil || len(net.Layers) == 0 {
		return nil, fmt.Errorf("runtime: cannot compile an empty network")
	}
	layouts := make([]tensor.Layout, len(net.Layers))
	forced := make([]kernels.ConvAlgorithm, len(net.Layers))
	for i, l := range net.Layers {
		if !l.SupportsLayout(layout) {
			return nil, fmt.Errorf("runtime: layer %q does not support layout %v", l.Name(), layout)
		}
		layouts[i] = layout
		if _, ok := l.(layers.GemmForwarder); ok {
			forced[i] = alg
		}
	}
	return lower(net, fmt.Sprintf("fixed-%v-%v", layout, alg), layouts, Options{}, forced)
}

// selectConvAlgorithm picks the convolution strategy for one conv layer,
// through the analytic heuristic or the measured probe.
func selectConvAlgorithm(gf layers.GemmForwarder, lay tensor.Layout, opts Options) (kernels.ConvAlgorithm, error) {
	if opts.Probe {
		alg, _, err := autotune.ProbeConvAlgorithm(gf.Config(), lay)
		return alg, err
	}
	return autotune.SelectConvAlgorithm(gf.Config()), nil
}

// lower builds the op list for a network given the layout each layer runs in.
// A non-nil forced slice pins the convolution algorithm per layer (CompileLike
// copying a base program's choices); otherwise layers select per opts.
func lower(net *network.Network, plannerName string, layouts []tensor.Layout, opts Options, forced []kernels.ConvAlgorithm) (*Program, error) {
	p := &Program{Net: net, PlannerName: plannerName, Opts: opts}
	newBuf := func(shape tensor.Shape, layout tensor.Layout, alias BufferID) BufferID {
		id := BufferID(len(p.Buffers))
		p.Buffers = append(p.Buffers, Buffer{ID: id, Shape: shape, Layout: layout, AliasOf: alias})
		return id
	}
	// newScratch plans an op-local flat workspace of the given element count.
	newScratch := func(elems int) BufferID {
		id := newBuf(tensor.Shape{N: 1, C: 1, H: 1, W: elems}, tensor.NCHW, NoBuffer)
		p.Buffers[id].Scratch = true
		return id
	}
	cur := newBuf(net.InputShape(), layouts[0], NoBuffer)
	p.Input = cur

	for i, l := range net.Layers {
		lay := layouts[i]
		if p.Buffers[cur].Layout != lay {
			from := p.Buffers[cur].Layout
			out := newBuf(p.Buffers[cur].Shape, lay, NoBuffer)
			p.Ops = append(p.Ops, Op{
				Kind: OpTransform,
				Name: fmt.Sprintf("%v->%v before %s", from, lay, l.Name()),
				In:   cur, Out: out, Scratch: NoBuffer, Aux: NoBuffer,
			})
			cur = out
		}
		if in := l.InputShape(); p.Buffers[cur].Shape != in {
			if p.Buffers[cur].Shape.Elems() != in.Elems() {
				return nil, fmt.Errorf("runtime: layer %q input %v does not match incoming buffer %v",
					l.Name(), in, p.Buffers[cur].Shape)
			}
			alias := NoBuffer
			if tensor.CanReinterpret(p.Buffers[cur].Shape, in, lay) {
				alias = p.root(cur)
			}
			out := newBuf(in, lay, alias)
			p.Ops = append(p.Ops, Op{
				Kind: OpReshape,
				Name: fmt.Sprintf("%v->%v before %s", p.Buffers[cur].Shape, in, l.Name()),
				In:   cur, Out: out, Scratch: NoBuffer, Aux: NoBuffer,
			})
			cur = out
		}
		alias := NoBuffer
		if ip, ok := l.(layers.InPlaceForwarder); ok && !opts.NoInPlace &&
			ip.ForwardsInPlace(lay) && l.OutputShape() == p.Buffers[cur].Shape &&
			tensor.CanReinterpret(p.Buffers[p.root(cur)].Shape, l.OutputShape(), lay) {
			// The layer runs in place: its output is a view of the input's
			// storage, and the arena never holds both sides at once.
			alias = p.root(cur)
		}
		out := newBuf(l.OutputShape(), lay, alias)
		op := Op{Kind: OpLayer, Name: l.Name(), Layer: l, In: cur, Out: out, Scratch: NoBuffer, Aux: NoBuffer}
		if gf, ok := l.(layers.GemmForwarder); ok && (opts.ConvAlgorithms || forced != nil) {
			var alg kernels.ConvAlgorithm
			if forced != nil {
				alg = forced[i]
			} else {
				var err error
				alg, err = selectConvAlgorithm(gf, lay, opts)
				if err != nil {
					return nil, fmt.Errorf("runtime: selecting algorithm for %q: %w", l.Name(), err)
				}
			}
			switch alg {
			case kernels.ConvAlgGemm:
				op.Alg = kernels.ConvAlgGemm
				gf.PackedFilters() // pre-pack the GEMM operand once, at compile time
				op.Scratch = newScratch(gf.GemmWorkspaceElems(lay))
			case kernels.ConvAlgFFT:
				ff, ok := l.(layers.FFTForwarder)
				if !ok {
					return nil, fmt.Errorf("runtime: layer %q cannot run the FFT algorithm", l.Name())
				}
				op.Alg = kernels.ConvAlgFFT
				op.Scratch = newScratch(ff.FFTWorkspaceElems())
			}
		} else if forced != nil && forced[i] != kernels.ConvAlgDirect {
			return nil, fmt.Errorf("runtime: layer %q cannot run the pinned %v algorithm", l.Name(), forced[i])
		} else if wf, ok := l.(layers.WorkspaceForwarder); ok {
			if elems := wf.WorkspaceElems(); elems > 0 {
				op.Scratch = newScratch(elems)
			}
		}
		p.Ops = append(p.Ops, op)
		cur = out
	}
	p.Output = cur

	mem, err := PlanMemory(p)
	if err != nil {
		return nil, err
	}
	p.Mem = mem
	if opts.Verify {
		if err := VerifyProgram(p); err != nil {
			return nil, err
		}
	}
	return p, nil
}
