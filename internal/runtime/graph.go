package runtime

import (
	"fmt"

	"memcnn/internal/layers"
	"memcnn/internal/network"
	"memcnn/internal/tensor"
)

// BufferID names one logical activation buffer of a compiled program.
type BufferID int

// NoBuffer marks the absence of a buffer reference (e.g. no alias).
const NoBuffer BufferID = -1

// Buffer describes one logical activation tensor of a program.
type Buffer struct {
	ID     BufferID
	Shape  tensor.Shape
	Layout tensor.Layout

	// AliasOf, when not NoBuffer, marks the buffer as a zero-copy view of
	// another buffer: a reshape whose relabelling does not move data (see
	// tensor.CanReinterpret).  Aliases share their root's storage and are
	// never assigned arena space of their own.
	AliasOf BufferID
}

// Elems returns the buffer's element count.
func (b Buffer) Elems() int { return b.Shape.Elems() }

// Bytes returns the buffer's storage size in bytes (float32 elements).
func (b Buffer) Bytes() int64 { return b.Shape.Bytes() }

// OpKind discriminates the three op types of a compiled program.
type OpKind int

// The op kinds, in the order they can appear between two layers.
const (
	// OpTransform re-linearises a buffer into another layout
	// (tensor.ConvertInto); it carries the plan's layout-transformation.
	OpTransform OpKind = iota
	// OpReshape relabels a buffer with a new logical shape at a flattening
	// boundary.  When the output buffer aliases the input the op is free;
	// otherwise the executor falls back to a canonical-order copy.
	OpReshape
	// OpLayer runs one network layer from its input buffer into its output
	// buffer.
	OpLayer
)

// String names the op kind.
func (k OpKind) String() string {
	switch k {
	case OpTransform:
		return "transform"
	case OpReshape:
		return "reshape"
	case OpLayer:
		return "layer"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one step of a compiled program.
type Op struct {
	Kind OpKind
	Name string
	// Layer is set for OpLayer ops only.
	Layer layers.Layer
	In    BufferID
	Out   BufferID
}

// Program is a network lowered to an executable op list over explicit
// buffers, together with its static memory plan.
type Program struct {
	Net         *network.Network
	PlannerName string
	Buffers     []Buffer
	Ops         []Op
	Input       BufferID
	Output      BufferID
	Mem         *MemPlan
}

// InputShape returns the shape the program consumes.
func (p *Program) InputShape() tensor.Shape { return p.Buffers[p.Input].Shape }

// OutputShape returns the shape the program produces.
func (p *Program) OutputShape() tensor.Shape { return p.Buffers[p.Output].Shape }

// root resolves alias chains to the buffer that owns the storage.
func (p *Program) root(id BufferID) BufferID {
	for p.Buffers[id].AliasOf != NoBuffer {
		id = p.Buffers[id].AliasOf
	}
	return id
}

// Compile lowers an execution plan into a program: each layer becomes an
// OpLayer in its planned layout, a layout change between consecutive layers
// becomes an OpTransform, and a logical shape change (conv/pool output
// flattening into a fully-connected layer) becomes an OpReshape — a zero-copy
// view whenever the layout permits.  The resulting program carries its static
// memory plan (see PlanMemory).
func Compile(plan *network.ExecutionPlan) (*Program, error) {
	if plan == nil {
		return nil, fmt.Errorf("runtime: cannot compile a nil plan")
	}
	if err := plan.Validate(); err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	layouts := make([]tensor.Layout, len(plan.Layers))
	for i, pl := range plan.Layers {
		layouts[i] = pl.Layout
	}
	return lower(plan.Network, plan.PlannerName, layouts)
}

// CompileFixed lowers a network with every layer in one layout, the
// single-layout policy of the library emulations.  It needs no device or
// planner and is the baseline the planned programs are compared against.
func CompileFixed(net *network.Network, layout tensor.Layout) (*Program, error) {
	if net == nil || len(net.Layers) == 0 {
		return nil, fmt.Errorf("runtime: cannot compile an empty network")
	}
	layouts := make([]tensor.Layout, len(net.Layers))
	for i, l := range net.Layers {
		if !l.SupportsLayout(layout) {
			return nil, fmt.Errorf("runtime: layer %q does not support layout %v", l.Name(), layout)
		}
		layouts[i] = layout
	}
	return lower(net, fmt.Sprintf("fixed-%v", layout), layouts)
}

// lower builds the op list for a network given the layout each layer runs in.
func lower(net *network.Network, plannerName string, layouts []tensor.Layout) (*Program, error) {
	p := &Program{Net: net, PlannerName: plannerName}
	newBuf := func(shape tensor.Shape, layout tensor.Layout, alias BufferID) BufferID {
		id := BufferID(len(p.Buffers))
		p.Buffers = append(p.Buffers, Buffer{ID: id, Shape: shape, Layout: layout, AliasOf: alias})
		return id
	}
	cur := newBuf(net.InputShape(), layouts[0], NoBuffer)
	p.Input = cur

	for i, l := range net.Layers {
		lay := layouts[i]
		if p.Buffers[cur].Layout != lay {
			from := p.Buffers[cur].Layout
			out := newBuf(p.Buffers[cur].Shape, lay, NoBuffer)
			p.Ops = append(p.Ops, Op{
				Kind: OpTransform,
				Name: fmt.Sprintf("%v->%v before %s", from, lay, l.Name()),
				In:   cur, Out: out,
			})
			cur = out
		}
		if in := l.InputShape(); p.Buffers[cur].Shape != in {
			if p.Buffers[cur].Shape.Elems() != in.Elems() {
				return nil, fmt.Errorf("runtime: layer %q input %v does not match incoming buffer %v",
					l.Name(), in, p.Buffers[cur].Shape)
			}
			alias := NoBuffer
			if tensor.CanReinterpret(p.Buffers[cur].Shape, in, lay) {
				alias = p.root(cur)
			}
			out := newBuf(in, lay, alias)
			p.Ops = append(p.Ops, Op{
				Kind: OpReshape,
				Name: fmt.Sprintf("%v->%v before %s", p.Buffers[cur].Shape, in, l.Name()),
				In:   cur, Out: out,
			})
			cur = out
		}
		out := newBuf(l.OutputShape(), lay, NoBuffer)
		p.Ops = append(p.Ops, Op{Kind: OpLayer, Name: l.Name(), Layer: l, In: cur, Out: out})
		cur = out
	}
	p.Output = cur

	mem, err := PlanMemory(p)
	if err != nil {
		return nil, err
	}
	p.Mem = mem
	return p, nil
}
