package runtime_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"memcnn/internal/gpusim"
	"memcnn/internal/network"
	"memcnn/internal/runtime"
	"memcnn/internal/runtime/replica"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

// serverFixture compiles TinyNet, builds per-image golden outputs with the
// naive Network.Forward, and returns the distinct request images.
func serverFixture(t *testing.T) (*runtime.Program, []*tensor.Tensor, []*tensor.Tensor) {
	t.Helper()
	net, err := workloads.TinyNet()
	if err != nil {
		t.Fatal(err)
	}
	prog, err := runtime.CompileFixed(net, tensor.CHWN)
	if err != nil {
		t.Fatal(err)
	}
	in := net.InputShape() // {4,1,12,12}
	images, golden := goldenPerImage(t, net, in.N)
	return prog, images, golden
}

// goldenPerImage builds `count` distinct single-image inputs, runs them
// through the naive forward pass as one batch and slices the per-image
// outputs.  Every layer processes images independently, so each row is the
// exact golden answer for its image alone.
func goldenPerImage(t *testing.T, net *network.Network, count int) (images, golden []*tensor.Tensor) {
	t.Helper()
	in := net.InputShape()
	batch := tensor.Random(in, tensor.NCHW, 99)
	chw := in.C * in.H * in.W
	for i := 0; i < count; i++ {
		img := tensor.New(tensor.Shape{N: 1, C: in.C, H: in.H, W: in.W}, tensor.NCHW)
		copy(img.Data, batch.Data[i*chw:(i+1)*chw])
		images = append(images, img)
	}
	out, err := net.Forward(batch)
	if err != nil {
		t.Fatal(err)
	}
	outNCHW := tensor.Convert(out, tensor.NCHW)
	os := out.Shape
	per := os.C * os.H * os.W
	for i := 0; i < count; i++ {
		row := tensor.New(tensor.Shape{N: 1, C: os.C, H: os.H, W: os.W}, tensor.NCHW)
		copy(row.Data, outNCHW.Data[i*per:(i+1)*per])
		golden = append(golden, row)
	}
	return images, golden
}

// TestServerConcurrentRequests drives 96 concurrent single-image requests
// (run under -race by CI) and checks every response bit-equals the naive
// per-image golden output.
func TestServerConcurrentRequests(t *testing.T) {
	prog, images, golden := serverFixture(t)
	srv, err := runtime.NewServer(prog, runtime.ServerConfig{
		MaxDelay: 5 * time.Millisecond,
		Workers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const concurrent = 96
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			img := images[i%len(images)]
			out, err := srv.Infer(ctx, img)
			if err != nil {
				errs <- err
				return
			}
			want := golden[i%len(golden)]
			for j := range want.Data {
				if out.Data[j] != want.Data[j] {
					errs <- errMismatch(i, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := srv.Stats()
	if st.Requests != concurrent {
		t.Errorf("stats report %d requests, want %d", st.Requests, concurrent)
	}
	if st.Batches == 0 || st.Batches > concurrent {
		t.Errorf("implausible batch count %d", st.Batches)
	}
	if st.LargestBatch < 2 {
		t.Errorf("no coalescing observed (largest batch %d)", st.LargestBatch)
	}
	t.Logf("served %d requests in %d batches (avg %.2f, largest %d)",
		st.Requests, st.Batches, st.AvgBatch, st.LargestBatch)
}

// TestServerPipelinedConcurrentRequests is the sharded twin of the test
// above: the same 96 concurrent single-image requests, served through a
// pipeline of two simulated devices (run under -race by CI).  Every response
// must still bit-equal the naive per-image golden output, and both pipeline
// stages must have seen every batch.
func TestServerPipelinedConcurrentRequests(t *testing.T) {
	prog, images, golden := serverFixture(t)
	sp, err := runtime.Shard(prog, 2, runtime.ShardOptions{
		Devices: []runtime.Device{
			runtime.NewSimDevice("sim0", gpusim.TitanBlack()),
			runtime.NewSimDevice("sim1", gpusim.TitanX()),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	pipe := runtime.NewPipelineExecutor(sp)
	defer pipe.Close()
	srv, err := runtime.NewServerWith(prog, pipe, runtime.ServerConfig{
		MaxDelay: 5 * time.Millisecond,
		Workers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const concurrent = 96
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			img := images[i%len(images)]
			out, err := srv.Infer(ctx, img)
			if err != nil {
				errs <- err
				return
			}
			want := golden[i%len(golden)]
			for j := range want.Data {
				if out.Data[j] != want.Data[j] {
					errs <- errMismatch(i, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := srv.Stats()
	if st.Requests != concurrent {
		t.Errorf("stats report %d requests, want %d", st.Requests, concurrent)
	}
	for _, stage := range pipe.StageStats() {
		if stage.Batches != st.Batches {
			t.Errorf("stage %d saw %d batches, server ran %d", stage.Stage, stage.Batches, st.Batches)
		}
		if stage.ModeledUS <= 0 {
			t.Errorf("stage %d reports no modeled time on a simulated device", stage.Stage)
		}
	}
	t.Logf("pipelined: %d requests in %d batches across %d stages",
		st.Requests, st.Batches, len(pipe.StageStats()))
}

// TestServerReplicatedCachedConcurrentRequests is the data-parallel twin of
// the concurrent-server tests: 96 concurrent single-image requests served
// through a heterogeneous replica group (a lone TitanBlack replica plus a
// TitanX replica that is itself pipeline-sharded across two devices) with the
// result cache enabled (run under -race by CI).  Every response must
// bit-equal the naive per-image golden output, and with 4 distinct request
// images the single-flight cache must execute each image exactly once — 4
// misses, 92 hits — so only the misses ever reach the batching queue.
func TestServerReplicatedCachedConcurrentRequests(t *testing.T) {
	prog, images, golden := serverFixture(t)
	group, err := replica.NewGroup(prog, 2, replica.Config{
		Devices: [][]runtime.Device{
			{runtime.NewSimDevice("r0", gpusim.TitanBlack())},
			{runtime.NewSimDevice("r1.0", gpusim.TitanX()), runtime.NewSimDevice("r1.1", gpusim.TitanX())},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer group.Close()
	srv, err := runtime.NewServerWith(prog, group, runtime.ServerConfig{
		MaxDelay:     5 * time.Millisecond,
		Workers:      4,
		CacheEntries: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const concurrent = 96
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, concurrent)
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			img := images[i%len(images)]
			out, err := srv.Infer(ctx, img)
			if err != nil {
				errs <- err
				return
			}
			want := golden[i%len(golden)]
			for j := range want.Data {
				if out.Data[j] != want.Data[j] {
					errs <- errMismatch(i, j)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := srv.Stats()
	if st.Cache == nil {
		t.Fatal("cache enabled but no cache stats reported")
	}
	if st.Cache.Misses != uint64(len(images)) {
		t.Errorf("cache misses = %d, want one per distinct image (%d)", st.Cache.Misses, len(images))
	}
	if st.Cache.Hits+st.Cache.Misses != concurrent {
		t.Errorf("cache saw %d requests (%d hits + %d misses), want %d",
			st.Cache.Hits+st.Cache.Misses, st.Cache.Hits, st.Cache.Misses, concurrent)
	}
	if st.Requests != st.Cache.Misses {
		t.Errorf("%d requests reached the batching queue, want only the %d cache misses",
			st.Requests, st.Cache.Misses)
	}
	for _, rs := range group.ReplicaStats() {
		if rs.Share > 0 && rs.Batches != st.Batches {
			t.Errorf("replica %d served %d batches, server ran %d", rs.Replica, rs.Batches, st.Batches)
		}
	}
	t.Logf("replicated+cached: %d requests, %d hits, %d misses, %d batches across %d replicas",
		concurrent, st.Cache.Hits, st.Cache.Misses, st.Batches, group.Replicas())
}

type errMismatchErr struct{ req, elem int }

func errMismatch(req, elem int) error { return errMismatchErr{req, elem} }

func (e errMismatchErr) Error() string {
	return fmt.Sprintf("request %d: result differs from golden output at element %d", e.req, e.elem)
}

// TestServerPartialBatch checks the padded partial-batch path: one lone
// request must still produce the exact golden output.
func TestServerPartialBatch(t *testing.T) {
	prog, images, golden := serverFixture(t)
	srv, err := runtime.NewServer(prog, runtime.ServerConfig{MaxDelay: time.Millisecond, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	out, err := srv.Infer(context.Background(), images[2])
	if err != nil {
		t.Fatal(err)
	}
	for j := range golden[2].Data {
		if out.Data[j] != golden[2].Data[j] {
			t.Fatalf("padded partial batch corrupted the result at %d", j)
		}
	}
	if st := srv.Stats(); st.Requests != 1 || st.Batches != 1 {
		t.Errorf("stats = %+v, want 1 request in 1 batch", st)
	}
}

// TestServerValidation covers configuration and request validation.
func TestServerValidation(t *testing.T) {
	prog, images, _ := serverFixture(t)
	if _, err := runtime.NewServer(prog, runtime.ServerConfig{MaxBatch: 99}); err == nil {
		t.Error("MaxBatch above the network batch must be rejected")
	}
	srv, err := runtime.NewServer(prog, runtime.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	bad := tensor.New(tensor.Shape{N: 2, C: 1, H: 12, W: 12}, tensor.NCHW)
	if _, err := srv.Infer(context.Background(), bad); err == nil {
		t.Error("a multi-image request must be rejected")
	}
	srv.Close()
	srv.Close() // idempotent
	if _, err := srv.Infer(context.Background(), images[0]); err != runtime.ErrServerClosed {
		t.Errorf("Infer after Close returned %v, want ErrServerClosed", err)
	}
}

// TestServerContextCancellation checks that a cancelled context unblocks the
// caller.
func TestServerContextCancellation(t *testing.T) {
	prog, images, _ := serverFixture(t)
	srv, err := runtime.NewServer(prog, runtime.ServerConfig{MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Infer(ctx, images[0]); err != context.Canceled {
		t.Errorf("Infer with cancelled context returned %v, want context.Canceled", err)
	}
}
