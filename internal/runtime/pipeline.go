package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"memcnn/internal/obs"
	"memcnn/internal/tensor"
)

// ErrPipelineClosed is returned for batches submitted to a closed pipeline.
var ErrPipelineClosed = errors.New("runtime: pipeline closed")

// PipelineExecutor streams batches through the stages of a sharded program:
// one goroutine per stage, connected by bounded channels, so several batches
// are in flight at once — batch N on stage 2 while batch N+1 runs on stage 1.
// Each stage owns a per-stage arena pool (via its Executor) and a pool of
// boundary tensors carrying the one activation that crosses each cut; the
// boundary hand-off is a same-layout copy, so a pipelined run is bit-identical
// to the unsharded executor and to Program.ReferenceForward.
//
// RunInto is safe for concurrent use; concurrent callers fill the pipeline.
type PipelineExecutor struct {
	sp     *ShardedProgram
	stages []*pipeStage
	wg     sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	batches atomic.Uint64
}

// pipeStage is one running stage: its executor, its inbound job queue and the
// pool of boundary tensors it hands to the next stage.
type pipeStage struct {
	idx  int
	exec *Executor
	in   chan *pipeJob
	next *pipeStage

	// boundary pools output tensors in the stage's output layout; nil for
	// the last stage, which writes into the caller's destination.
	boundary *sync.Pool
	// release returns a boundary tensor to this stage's pool; built once so
	// the steady-state batch flow allocates no closures.
	release func(t *tensor.Tensor)
	// transferInUS is the modeled cost of the cross-device transfer feeding
	// this stage, charged once per batch.
	transferInUS float64

	modeledNS  atomic.Int64
	measuredNS atomic.Int64
	jobs       atomic.Uint64

	// obs holds the stage's prebuilt span template and latency histogram when
	// the pipeline is instrumented; nil otherwise.  Atomic because the stage
	// goroutines are already running when Instrument is called.
	obs atomic.Pointer[stageObs]
}

// stageObs is one stage's instrumentation, prepared once at Instrument time.
type stageObs struct {
	rec  *obs.Recorder
	span obs.Span
	hist *obs.Histogram
}

// pipeJob is one batch moving through the pipeline.
type pipeJob struct {
	ctx     context.Context        // the submitting request's context
	cur     *tensor.Tensor         // input to the stage about to run
	release func(t *tensor.Tensor) // returns cur to its boundary pool (nil for the caller's input)
	dst     *tensor.Tensor         // final destination, written by the last stage
	done    chan error
}

// NewPipelineExecutor starts the stage goroutines for a sharded program.
// Close must be called to stop them.
func NewPipelineExecutor(sp *ShardedProgram) *PipelineExecutor {
	pe := &PipelineExecutor{sp: sp}
	for i, st := range sp.Stages {
		ps := &pipeStage{
			idx:  i,
			exec: NewExecutorOn(st.Prog, st.Device),
			in:   make(chan *pipeJob, 1),
		}
		if i > 0 {
			ps.transferInUS = st.Device.TransferInUS(st.TransferInBytes)
		}
		if i < len(sp.Stages)-1 {
			shape, layout := st.Prog.OutputShape(), st.Prog.Buffers[st.Prog.Output].Layout
			pool := &sync.Pool{New: func() any { return tensor.New(shape, layout) }}
			ps.boundary = pool
			ps.release = func(t *tensor.Tensor) { pool.Put(t) }
		}
		pe.stages = append(pe.stages, ps)
	}
	for i := 0; i < len(pe.stages)-1; i++ {
		pe.stages[i].next = pe.stages[i+1]
	}
	pe.wg.Add(len(pe.stages))
	for _, ps := range pe.stages {
		go pe.runStage(ps)
	}
	return pe
}

// Sharded returns the sharded program the pipeline executes.
func (pe *PipelineExecutor) Sharded() *ShardedProgram { return pe.sp }

// Instrument attaches an observer to the pipeline: stage i renders on trace
// lane laneBase+i (named "<label>stage i"), each stage's executor records its
// op and run spans on the same lane, each batch crossing a stage records a
// stage span carrying the batch size and the stage's modeled time (including
// its inbound transfer), and per-stage latency histograms are registered
// under memcnn_stage_latency_us{net,stage}.  label prefixes lane names so
// multiple pipelines (replicas) stay distinguishable; it may be empty.
// Call before submitting traffic; a zero Observer detaches.
func (pe *PipelineExecutor) Instrument(ob Observer, laneBase int32, label string) {
	net := pe.sp.Base.Net.Name
	images := pe.sp.Base.InputShape().N
	for i, ps := range pe.stages {
		lane := laneBase + int32(i)
		if !ob.Enabled() {
			ps.obs.Store(nil)
			ps.exec.Instrument(Observer{}, lane)
			continue
		}
		ob.Trace.SetLane(lane, fmt.Sprintf("%sstage %d (%s)", label, i, pe.sp.Stages[i].Device.Name()))
		ps.exec.Instrument(ob, lane)
		ps.obs.Store(&stageObs{
			rec: ob.Trace,
			span: obs.Span{
				Name:   fmt.Sprintf("stage %d", i),
				Cat:    obs.CatStage,
				Lane:   lane,
				Images: images,
			},
			hist: ob.Metrics.Histogram(metricStageLatency,
				"Per-pipeline-stage batch latency.",
				obs.L("net", net), obs.L("stage", fmt.Sprintf("%d", i))),
		})
	}
}

// runStage drains one stage's job queue until the pipeline closes, forwarding
// each batch to the next stage (or completing it at the last).  A batch whose
// context is already cancelled skips the stage; a panic inside the stage's
// executor is contained into the batch's error (the executor recovers it),
// so a poisoned batch fails its own request and the stage goroutine keeps
// serving the next one.
func (pe *PipelineExecutor) runStage(ps *pipeStage) {
	defer pe.wg.Done()
	for job := range ps.in {
		if err := job.ctx.Err(); err != nil {
			// Cancelled while queued: don't burn the stage on a dead batch.
			if job.release != nil {
				job.release(job.cur)
			}
			job.done <- err
			continue
		}
		var out *tensor.Tensor
		if ps.next == nil {
			out = job.dst
		} else {
			out = ps.boundary.Get().(*tensor.Tensor)
		}
		so := ps.obs.Load()
		var spanT0 int64
		if so != nil {
			spanT0 = so.rec.Now()
		}
		start := time.Now()
		modeledUS, err := ps.exec.RunIntoModeledCtx(job.ctx, job.cur, out)
		elapsed := time.Since(start)
		ps.measuredNS.Add(int64(elapsed))
		ps.modeledNS.Add(int64((modeledUS + ps.transferInUS) * 1e3))
		ps.jobs.Add(1)
		if so != nil {
			if so.rec != nil {
				sp := so.span
				sp.StartNS = spanT0
				sp.DurNS = int64(elapsed)
				sp.ModeledUS = modeledUS + ps.transferInUS
				so.rec.Record(sp)
			}
			so.hist.Observe(float64(elapsed) / 1e3)
		}
		if job.release != nil {
			job.release(job.cur)
		}
		if err != nil {
			if ps.next != nil {
				ps.boundary.Put(out)
			}
			job.done <- fmt.Errorf("runtime: stage %d: %w", ps.idx, err)
			continue
		}
		if ps.next == nil {
			pe.batches.Add(1)
			job.done <- nil
			continue
		}
		job.cur, job.release = out, ps.release
		ps.next.in <- job
	}
	if ps.next != nil {
		close(ps.next.in)
	}
}

// Run executes one batch through the pipeline, returning a freshly allocated
// output in the input's layout.
func (pe *PipelineExecutor) Run(in *tensor.Tensor) (*tensor.Tensor, error) {
	out := tensor.New(pe.sp.Base.OutputShape(), in.Layout)
	if err := pe.RunInto(in, out); err != nil {
		return nil, err
	}
	return out, nil
}

// RunInto executes one batch through all stages, writing the result into dst.
// It blocks until the batch has drained from the last stage; submit batches
// from several goroutines to keep every stage busy.
func (pe *PipelineExecutor) RunInto(in, dst *tensor.Tensor) error {
	return pe.RunIntoCtx(context.Background(), in, dst)
}

// RunIntoCtx is RunInto honoring a context: a batch whose context is
// cancelled or past its deadline skips the stages it has not reached yet (and
// abandons the one it is on between ops) and fails with ctx.Err().  The call
// still blocks until the batch has drained from the pipeline — dst may not be
// written concurrently with the caller reclaiming it — so cancellation stops
// work early but never races the destination buffer.
func (pe *PipelineExecutor) RunIntoCtx(ctx context.Context, in, dst *tensor.Tensor) error {
	base := pe.sp.Base
	if in.Shape != base.InputShape() {
		return fmt.Errorf("runtime: %s input shape %v, want %v", base.Net.Name, in.Shape, base.InputShape())
	}
	if dst.Shape != base.OutputShape() {
		return fmt.Errorf("runtime: %s output shape %v, want %v", base.Net.Name, dst.Shape, base.OutputShape())
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	job := &pipeJob{ctx: ctx, cur: in, dst: dst, done: make(chan error, 1)}
	pe.mu.RLock()
	if pe.closed {
		pe.mu.RUnlock()
		return ErrPipelineClosed
	}
	pe.stages[0].in <- job
	pe.mu.RUnlock()
	return <-job.done
}

// Close stops the stage goroutines after in-flight batches drain.  It is
// idempotent; RunInto after Close returns ErrPipelineClosed.
func (pe *PipelineExecutor) Close() {
	pe.mu.Lock()
	if pe.closed {
		pe.mu.Unlock()
		return
	}
	pe.closed = true
	close(pe.stages[0].in)
	pe.mu.Unlock()
	pe.wg.Wait()
}

// PipelineStageStats reports one stage's shape and observed cost.
type PipelineStageStats struct {
	Stage           int
	Device          string
	Ops             int
	ArenaBytes      int64
	TransferInBytes int64
	Batches         uint64
	// ModeledTotalUS and MeasuredTotalUS are cumulative across Batches:
	// modeled device time (including the stage's inbound transfer; zero on
	// unmodeled devices) and measured wall time.
	ModeledTotalUS  float64
	MeasuredTotalUS float64
	// ModeledUS and MeasuredUS are the per-batch means of the totals.
	ModeledUS  float64
	MeasuredUS float64
}

// Delta returns the stats covering only the batches s saw beyond an earlier
// snapshot prev of the same stage — how front-ends exclude cold-start or
// warm-up batches from reported steady-state means.
func (s PipelineStageStats) Delta(prev PipelineStageStats) PipelineStageStats {
	out := s
	out.Batches = s.Batches - prev.Batches
	out.ModeledTotalUS = s.ModeledTotalUS - prev.ModeledTotalUS
	out.MeasuredTotalUS = s.MeasuredTotalUS - prev.MeasuredTotalUS
	out.ModeledUS, out.MeasuredUS = 0, 0
	if out.Batches > 0 {
		out.ModeledUS = out.ModeledTotalUS / float64(out.Batches)
		out.MeasuredUS = out.MeasuredTotalUS / float64(out.Batches)
	}
	return out
}

// StageStats snapshots per-stage counters.  Counters are read individually,
// so a snapshot taken while traffic is in flight is consistent only per
// field; snapshot quiescent pipelines (or difference two snapshots with
// Delta) for exact accounting.
func (pe *PipelineExecutor) StageStats() []PipelineStageStats {
	out := make([]PipelineStageStats, len(pe.stages))
	for i, ps := range pe.stages {
		st := pe.sp.Stages[i]
		s := PipelineStageStats{
			Stage:           i,
			Device:          st.Device.Name(),
			Ops:             st.Ops(),
			ArenaBytes:      st.Prog.Mem.PeakBytes(),
			TransferInBytes: st.TransferInBytes,
			Batches:         ps.jobs.Load(),
			ModeledTotalUS:  float64(ps.modeledNS.Load()) / 1e3,
			MeasuredTotalUS: float64(ps.measuredNS.Load()) / 1e3,
		}
		if s.Batches > 0 {
			s.ModeledUS = s.ModeledTotalUS / float64(s.Batches)
			s.MeasuredUS = s.MeasuredTotalUS / float64(s.Batches)
		}
		out[i] = s
	}
	return out
}

// Batches returns the number of batches that completed the whole pipeline.
func (pe *PipelineExecutor) Batches() uint64 { return pe.batches.Load() }
