// Package network assembles layers into whole CNNs, plans their execution
// (which data layout and which kernel implementation each layer uses, and
// where layout transformations are inserted), estimates the plan's execution
// time on a GPU model and runs the network functionally.
//
// The planning abstraction is what lets the benchmark harness compare the
// paper's six whole-network configurations (cuDNN-MM, cuDNN-FFT,
// cuDNN-FFT-T, cuDNN-Best, cuda-convnet and the optimised framework) on the
// same network descriptions (Figs. 14 and 15).
package network

import (
	"fmt"

	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/tensor"
)

// Network is an ordered stack of layers processing one batch.
type Network struct {
	Name   string
	Batch  int
	Layers []layers.Layer
}

// New builds a network and validates that consecutive layers are compatible:
// the batch size must be constant and each layer must consume exactly the
// elements the previous one produces (fully-connected layers flatten their
// input, so only the element count is compared).
func New(name string, batch int, ls ...layers.Layer) (*Network, error) {
	if name == "" {
		return nil, fmt.Errorf("network: a network needs a name")
	}
	if batch <= 0 {
		return nil, fmt.Errorf("network: batch must be positive")
	}
	if len(ls) == 0 {
		return nil, fmt.Errorf("network: %s has no layers", name)
	}
	for i, l := range ls {
		in := l.InputShape()
		if in.N != batch {
			return nil, fmt.Errorf("network: %s layer %q expects batch %d, network batch is %d", name, l.Name(), in.N, batch)
		}
		if i == 0 {
			continue
		}
		prev := ls[i-1].OutputShape()
		if prev.Elems() != in.Elems() || prev.N != in.N {
			return nil, fmt.Errorf("network: %s layer %q input %v does not match previous output %v",
				name, l.Name(), in, prev)
		}
	}
	return &Network{Name: name, Batch: batch, Layers: ls}, nil
}

// WithBatch returns a network computing the same per-image function at a
// different batch size: every layer is cloned through layers.Rebatcher, so
// weights are shared with the receiver rather than regenerated.  A batch
// processed in slices across such clones is bit-identical to the same batch
// processed whole — the property the data-parallel replica scheduler builds
// on.  The receiver itself is returned when the batch already matches.
func (n *Network) WithBatch(batch int) (*Network, error) {
	if batch == n.Batch {
		return n, nil
	}
	ls := make([]layers.Layer, len(n.Layers))
	for i, l := range n.Layers {
		rb, ok := l.(layers.Rebatcher)
		if !ok {
			return nil, fmt.Errorf("network: %s layer %q cannot be rebatched", n.Name, l.Name())
		}
		nl, err := rb.WithBatch(batch)
		if err != nil {
			return nil, fmt.Errorf("network: %s rebatching layer %q: %w", n.Name, l.Name(), err)
		}
		ls[i] = nl
	}
	return New(n.Name, batch, ls...)
}

// InputShape returns the shape the network consumes.
func (n *Network) InputShape() tensor.Shape { return n.Layers[0].InputShape() }

// OutputShape returns the shape the network produces.
func (n *Network) OutputShape() tensor.Shape { return n.Layers[len(n.Layers)-1].OutputShape() }

// Forward runs the network functionally on one input batch.  Layout is
// irrelevant to the values; layers flatten or reshape as needed.
func (n *Network) Forward(in *tensor.Tensor) (*tensor.Tensor, error) {
	if in.Shape != n.InputShape() {
		return nil, fmt.Errorf("network: %s input shape %v, want %v", n.Name, in.Shape, n.InputShape())
	}
	cur := in
	for _, l := range n.Layers {
		// Reshape flattening boundaries (conv/pool -> fully connected or
		// softmax): the element count is preserved, only the logical shape
		// label changes.
		if cur.Shape != l.InputShape() && cur.Shape.Elems() == l.InputShape().Elems() {
			reshaped, err := reshape(cur, l.InputShape())
			if err != nil {
				return nil, fmt.Errorf("network: %s before layer %q: %w", n.Name, l.Name(), err)
			}
			cur = reshaped
		}
		out, err := l.Forward(cur)
		if err != nil {
			return nil, fmt.Errorf("network: %s layer %q: %w", n.Name, l.Name(), err)
		}
		cur = out
	}
	return cur, nil
}

// reshape reinterprets a tensor with a new logical shape holding the same
// number of elements; values are carried over in canonical (N,C,H,W) order.
// When the linearisation is unaffected by the relabelling (NCHW always, CHWN
// at batch-preserving flattening boundaries) this is a single slice copy; the
// general permuting path lives in tensor.ReshapeInto and remains the fallback
// for the remaining layouts.
func reshape(t *tensor.Tensor, shape tensor.Shape) (*tensor.Tensor, error) {
	if t.Shape.Elems() != shape.Elems() {
		return nil, fmt.Errorf("network: cannot reshape %v into %v", t.Shape, shape)
	}
	out := tensor.New(shape, t.Layout)
	if err := tensor.ReshapeInto(t, out); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	return out, nil
}

// PlannedLayer is one layer of an execution plan: the layout it runs in, the
// implementation options, and the layout transformation (if any) needed to
// bring the previous layer's output into that layout.
type PlannedLayer struct {
	Layer   layers.Layer
	Layout  tensor.Layout
	Options layers.CostOptions

	// Transform, when non-nil, is the cost of converting the incoming
	// activations from the previous layer's layout.
	Transform       *gpusim.KernelStats
	TransformMethod kernels.TransformMethod
}

// ExecutionPlan is a complete assignment of layouts, implementations and
// transformations for a network on a device.
type ExecutionPlan struct {
	PlannerName string
	Network     *Network
	Device      *gpusim.Device
	Layers      []PlannedLayer
}

// Planner produces an execution plan for a network on a device.  The
// framework emulations in internal/frameworks and the paper's optimiser in
// internal/core implement it.
type Planner interface {
	Name() string
	Plan(d *gpusim.Device, net *Network) (*ExecutionPlan, error)
}

// LayerTime is the estimated cost of one planned layer.
type LayerTime struct {
	Name        string
	Layout      tensor.Layout
	TimeUS      float64 // layer kernels only
	TransformUS float64 // layout transformation before the layer
	Kernels     []gpusim.KernelTime
}

// Total returns layer time plus transformation time.
func (lt LayerTime) Total() float64 { return lt.TimeUS + lt.TransformUS }

// Estimate is the modelled execution time of a plan.
type Estimate struct {
	PlannerName string
	NetworkName string
	Device      string
	PerLayer    []LayerTime
	TotalUS     float64
	TransformUS float64 // total time spent in layout transformations
}

// Estimate prices the plan on its device.
func (p *ExecutionPlan) Estimate() (Estimate, error) {
	est := Estimate{PlannerName: p.PlannerName, NetworkName: p.Network.Name, Device: p.Device.Name}
	for _, pl := range p.Layers {
		seq, err := pl.Layer.Cost(p.Device, pl.Layout, pl.Options)
		if err != nil {
			return Estimate{}, fmt.Errorf("network: estimating %q: %w", pl.Layer.Name(), err)
		}
		layerUS, times := gpusim.EstimateSequence(p.Device, seq)
		lt := LayerTime{Name: pl.Layer.Name(), Layout: pl.Layout, TimeUS: layerUS, Kernels: times}
		if pl.Transform != nil {
			lt.TransformUS = gpusim.EstimateTime(p.Device, *pl.Transform).TotalUS
		}
		est.PerLayer = append(est.PerLayer, lt)
		est.TotalUS += lt.Total()
		est.TransformUS += lt.TransformUS
	}
	return est, nil
}

// TransformCount returns how many layout transformations the plan inserts.
func (p *ExecutionPlan) TransformCount() int {
	count := 0
	for _, pl := range p.Layers {
		if pl.Transform != nil {
			count++
		}
	}
	return count
}

// Validate checks that the plan covers every layer of its network in order
// and uses only supported layouts.
func (p *ExecutionPlan) Validate() error {
	if p.Network == nil || p.Device == nil {
		return fmt.Errorf("network: plan is missing its network or device")
	}
	if len(p.Layers) != len(p.Network.Layers) {
		return fmt.Errorf("network: plan has %d layers, network has %d", len(p.Layers), len(p.Network.Layers))
	}
	for i, pl := range p.Layers {
		if pl.Layer != p.Network.Layers[i] {
			return fmt.Errorf("network: plan layer %d is not the network's layer %q", i, p.Network.Layers[i].Name())
		}
		if !pl.Layer.SupportsLayout(pl.Layout) {
			return fmt.Errorf("network: layer %q does not support layout %v", pl.Layer.Name(), pl.Layout)
		}
	}
	return nil
}

// FixedLayoutPlanner plans every layer in a single layout with per-layer
// options chosen by a callback; it is the shared machinery of the library
// emulations (cuda-convnet, Caffe and the cuDNN modes all use one fixed
// layout for the whole network — the design decision the paper argues
// against).
type FixedLayoutPlanner struct {
	PlannerName string
	Layout      tensor.Layout
	// Options returns the implementation options for one layer; nil means
	// zero options for every layer.
	Options func(l layers.Layer) layers.CostOptions
	// Fallback, when non-nil, may replace the options for a layer whose cost
	// query fails (e.g. an FFT mode that runs out of memory falls back to
	// GEMM, as cuDNN does).
	Fallback func(l layers.Layer, err error) (layers.CostOptions, bool)
}

// Name implements Planner.
func (f *FixedLayoutPlanner) Name() string { return f.PlannerName }

// Plan implements Planner.
func (f *FixedLayoutPlanner) Plan(d *gpusim.Device, net *Network) (*ExecutionPlan, error) {
	plan := &ExecutionPlan{PlannerName: f.PlannerName, Network: net, Device: d}
	for _, l := range net.Layers {
		if !l.SupportsLayout(f.Layout) {
			return nil, fmt.Errorf("network: %s: layer %q does not support layout %v", f.PlannerName, l.Name(), f.Layout)
		}
		opts := layers.CostOptions{}
		if f.Options != nil {
			opts = f.Options(l)
		}
		if _, err := l.Cost(d, f.Layout, opts); err != nil {
			ok := false
			if f.Fallback != nil {
				if fbOpts, use := f.Fallback(l, err); use {
					if _, err2 := l.Cost(d, f.Layout, fbOpts); err2 == nil {
						opts, ok = fbOpts, true
					}
				}
			}
			if !ok {
				return nil, fmt.Errorf("network: %s: layer %q: %w", f.PlannerName, l.Name(), err)
			}
		}
		plan.Layers = append(plan.Layers, PlannedLayer{Layer: l, Layout: f.Layout, Options: opts})
	}
	return plan, nil
}
