package network_test

import (
	"math"
	"strings"
	"testing"

	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/network"
	"memcnn/internal/tensor"
)

// smallNet builds a 4-image toy network: conv -> pool -> fc -> softmax.
func smallNet(t *testing.T) *network.Network {
	t.Helper()
	conv, err := layers.NewConv("conv1", kernels.ConvConfig{N: 4, C: 1, H: 8, W: 8, K: 4, FH: 3, FW: 3, PadH: 1, PadW: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := layers.NewPool("pool1", kernels.PoolConfig{N: 4, C: 4, H: 8, W: 8, Window: 2, Stride: 2, Op: kernels.MaxPool})
	if err != nil {
		t.Fatal(err)
	}
	fc, err := layers.NewFullyConnected("fc1", 4, 4*4*4, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := layers.NewSoftmax("prob", kernels.SoftmaxConfig{N: 4, Classes: 6})
	if err != nil {
		t.Fatal(err)
	}
	net, err := network.New("toy", 4, conv, pool, fc, sm)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNewValidation(t *testing.T) {
	conv, _ := layers.NewConv("conv1", kernels.ConvConfig{N: 4, C: 1, H: 8, W: 8, K: 4, FH: 3, FW: 3}, 1)
	if _, err := network.New("", 4, conv); err == nil {
		t.Error("missing name must be rejected")
	}
	if _, err := network.New("n", 0, conv); err == nil {
		t.Error("non-positive batch must be rejected")
	}
	if _, err := network.New("n", 4); err == nil {
		t.Error("empty layer list must be rejected")
	}
	if _, err := network.New("n", 8, conv); err == nil {
		t.Error("batch mismatch must be rejected")
	}
	// Mismatched chaining: conv output is 4x4x6x6, pool expects something else.
	badPool, _ := layers.NewPool("pool1", kernels.PoolConfig{N: 4, C: 4, H: 8, W: 8, Window: 2, Stride: 2, Op: kernels.MaxPool})
	if _, err := network.New("n", 4, conv, badPool); err == nil {
		t.Error("element-count mismatch between layers must be rejected")
	}
}

func TestNetworkShapes(t *testing.T) {
	net := smallNet(t)
	if net.InputShape() != (tensor.Shape{N: 4, C: 1, H: 8, W: 8}) {
		t.Errorf("InputShape = %v", net.InputShape())
	}
	if net.OutputShape() != (tensor.Shape{N: 4, C: 6, H: 1, W: 1}) {
		t.Errorf("OutputShape = %v", net.OutputShape())
	}
}

func TestNetworkForwardProducesProbabilities(t *testing.T) {
	net := smallNet(t)
	in := tensor.Random(net.InputShape(), tensor.CHWN, 5)
	out, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 4; n++ {
		var sum float64
		for c := 0; c < 6; c++ {
			sum += float64(out.At(n, c, 0, 0))
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Errorf("image %d probabilities sum to %v", n, sum)
		}
	}
	wrong := tensor.New(tensor.Shape{N: 4, C: 2, H: 8, W: 8}, tensor.CHWN)
	if _, err := net.Forward(wrong); err == nil {
		t.Error("wrong input shape must be rejected")
	}
}

func TestNetworkForwardLayoutInvariance(t *testing.T) {
	net := smallNet(t)
	inCHWN := tensor.Random(net.InputShape(), tensor.CHWN, 9)
	inNCHW := tensor.Convert(inCHWN, tensor.NCHW)
	a, err := net.Forward(inCHWN)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Forward(inNCHW)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(a, b, 1e-5) {
		t.Error("the input layout must not change the network's output values")
	}
}

func TestFixedLayoutPlannerPlansEveryLayer(t *testing.T) {
	d := gpusim.TitanBlack()
	net := smallNet(t)
	planner := &network.FixedLayoutPlanner{PlannerName: "chwn-everything", Layout: tensor.CHWN}
	plan, err := planner.Plan(d, net)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.TransformCount() != 0 {
		t.Error("a fixed-layout plan must not contain transforms")
	}
	est, err := plan.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if len(est.PerLayer) != len(net.Layers) {
		t.Errorf("estimate covers %d layers, want %d", len(est.PerLayer), len(net.Layers))
	}
	if est.TotalUS <= 0 {
		t.Error("total time must be positive")
	}
	var sum float64
	for _, lt := range est.PerLayer {
		sum += lt.Total()
	}
	if math.Abs(sum-est.TotalUS) > 1e-6 {
		t.Error("per-layer times must add up to the total")
	}
}

func TestFixedLayoutPlannerOptionsCallback(t *testing.T) {
	d := gpusim.TitanBlack()
	net := smallNet(t)
	var sawSoftmax bool
	planner := &network.FixedLayoutPlanner{
		PlannerName: "opts",
		Layout:      tensor.NCHW,
		Options: func(l layers.Layer) layers.CostOptions {
			if _, ok := l.(*layers.Softmax); ok {
				sawSoftmax = true
				return layers.CostOptions{Softmax: kernels.SoftmaxFusedParallel}
			}
			return layers.CostOptions{}
		},
	}
	if _, err := planner.Plan(d, net); err != nil {
		t.Fatal(err)
	}
	if !sawSoftmax {
		t.Error("options callback was not consulted for the softmax layer")
	}
}

func TestFixedLayoutPlannerFallback(t *testing.T) {
	d := gpusim.TitanBlack()
	// CV5-sized first layer: the FFT mode fails with out-of-memory, so a
	// planner pinned to FFT needs the fallback to succeed.
	conv, err := layers.NewConv("conv1", kernels.ConvConfig{N: 64, C: 3, H: 224, W: 224, K: 96, FH: 3, FW: 3, StrideH: 2, StrideW: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	net, err := network.New("deep", 64, conv)
	if err != nil {
		t.Fatal(err)
	}
	noFallback := &network.FixedLayoutPlanner{
		PlannerName: "fft-strict",
		Layout:      tensor.NCHW,
		Options:     func(layers.Layer) layers.CostOptions { return layers.CostOptions{Conv: layers.ConvFFTImpl} },
	}
	if _, err := noFallback.Plan(d, net); err == nil {
		t.Error("without a fallback the out-of-memory FFT plan must fail")
	}
	withFallback := &network.FixedLayoutPlanner{
		PlannerName: "fft",
		Layout:      tensor.NCHW,
		Options:     func(layers.Layer) layers.CostOptions { return layers.CostOptions{Conv: layers.ConvFFTImpl} },
		Fallback: func(l layers.Layer, err error) (layers.CostOptions, bool) {
			if !strings.Contains(err.Error(), "GiB") {
				return layers.CostOptions{}, false
			}
			return layers.CostOptions{Conv: layers.ConvGemmImpl}, true
		},
	}
	plan, err := withFallback.Plan(d, net)
	if err != nil {
		t.Fatalf("fallback plan failed: %v", err)
	}
	if plan.Layers[0].Options.Conv != layers.ConvGemmImpl {
		t.Error("fallback options were not applied")
	}
}

func TestFixedLayoutPlannerRejectsUnsupportedLayout(t *testing.T) {
	d := gpusim.TitanBlack()
	net := smallNet(t)
	planner := &network.FixedLayoutPlanner{PlannerName: "nhwc", Layout: tensor.NHWC}
	if _, err := planner.Plan(d, net); err == nil {
		t.Error("NHWC is not supported by conv layers and must be rejected")
	}
}

func TestPlanValidateCatchesCorruption(t *testing.T) {
	d := gpusim.TitanBlack()
	net := smallNet(t)
	planner := &network.FixedLayoutPlanner{PlannerName: "p", Layout: tensor.CHWN}
	plan, err := planner.Plan(d, net)
	if err != nil {
		t.Fatal(err)
	}
	good := *plan
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	truncated := *plan
	truncated.Layers = truncated.Layers[:1]
	if err := truncated.Validate(); err == nil {
		t.Error("a truncated plan must fail validation")
	}
	wrongLayout := *plan
	wrongLayout.Layers = append([]network.PlannedLayer(nil), plan.Layers...)
	wrongLayout.Layers[0].Layout = tensor.NHWC
	if err := wrongLayout.Validate(); err == nil {
		t.Error("an unsupported layout must fail validation")
	}
	var empty network.ExecutionPlan
	if err := empty.Validate(); err == nil {
		t.Error("an empty plan must fail validation")
	}
}
