package core_test

import (
	"testing"

	"memcnn/internal/core"
	"memcnn/internal/gpusim"
	"memcnn/internal/layers"
	"memcnn/internal/layout"
	"memcnn/internal/network"
	"memcnn/internal/tensor"
	"memcnn/internal/workloads"
)

func planNetwork(t *testing.T, name string, opts core.Options) (*network.ExecutionPlan, *network.Network) {
	t.Helper()
	nets, err := workloads.Networks()
	if err != nil {
		t.Fatal(err)
	}
	net, ok := nets[name]
	if !ok {
		t.Fatalf("unknown network %s", name)
	}
	opt := core.NewOptimizer(opts)
	plan, err := opt.Plan(gpusim.TitanBlack(), net)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	return plan, net
}

func defaultOpts() core.Options {
	return core.Options{Thresholds: layout.TitanBlackThresholds()}
}

func layoutOf(plan *network.ExecutionPlan, layerName string) (tensor.Layout, bool) {
	for _, pl := range plan.Layers {
		if pl.Layer.Name() == layerName {
			return pl.Layout, true
		}
	}
	return 0, false
}

func TestOptimizerNamesItself(t *testing.T) {
	if core.NewOptimizer(core.Options{}).Name() != "Opt" {
		t.Error("the optimiser should present itself as Opt")
	}
}

func TestOptimizerRejectsEmptyNetwork(t *testing.T) {
	opt := core.NewOptimizer(defaultOpts())
	if _, err := opt.Plan(gpusim.TitanBlack(), nil); err == nil {
		t.Error("planning a nil network must fail")
	}
}

func TestLeNetStaysInCHWN(t *testing.T) {
	// LeNet: batch 128 and tiny channel counts — every convolution and pool
	// prefers CHWN, so the plan should contain no transforms at all.
	plan, _ := planNetwork(t, "LeNet", defaultOpts())
	for _, pl := range plan.Layers {
		switch pl.Layer.(type) {
		case *layers.Conv, *layers.Pool:
			if pl.Layout != tensor.CHWN {
				t.Errorf("layer %q planned in %v, want CHWN", pl.Layer.Name(), pl.Layout)
			}
		}
	}
	if got := plan.TransformCount(); got != 0 {
		t.Errorf("LeNet plan contains %d transforms, want 0", got)
	}
}

func TestAlexNetMixesLayouts(t *testing.T) {
	// Fig. 15: the optimiser selects CHWN for conv1 and NCHW for the
	// remaining convolutions, CHWN for the pooling layers, and therefore
	// needs a handful of layout transformations.
	plan, _ := planNetwork(t, "AlexNet", defaultOpts())

	if lay, ok := layoutOf(plan, "conv1"); !ok || lay != tensor.CHWN {
		t.Errorf("conv1 layout = %v, want CHWN", lay)
	}
	for _, name := range []string{"conv2", "conv3", "conv4", "conv5"} {
		if lay, ok := layoutOf(plan, name); !ok || lay != tensor.NCHW {
			t.Errorf("%s layout = %v, want NCHW", name, lay)
		}
	}
	for _, name := range []string{"pool1", "pool2", "pool5"} {
		if lay, ok := layoutOf(plan, name); !ok || lay != tensor.CHWN {
			t.Errorf("%s layout = %v, want CHWN", name, lay)
		}
	}
	if got := plan.TransformCount(); got < 3 {
		t.Errorf("AlexNet plan contains %d transforms, expected several (layouts are mixed)", got)
	}
	// Transform overhead must stay a small fraction of the total time.
	est, err := plan.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if est.TransformUS > 0.15*est.TotalUS {
		t.Errorf("transform overhead %.0fus is more than 15%% of the total %.0fus", est.TransformUS, est.TotalUS)
	}
}

func TestVGGUsesNCHWForDeepLayers(t *testing.T) {
	plan, _ := planNetwork(t, "VGG", defaultOpts())
	if lay, ok := layoutOf(plan, "conv1_1"); !ok || lay != tensor.CHWN {
		t.Errorf("conv1_1 layout = %v, want CHWN (C=3)", lay)
	}
	for _, name := range []string{"conv3_1", "conv4_1", "conv5_1"} {
		if lay, ok := layoutOf(plan, name); !ok || lay != tensor.NCHW {
			t.Errorf("%s layout = %v, want NCHW", name, lay)
		}
	}
}

func TestOptimizerUsesOptimizedKernels(t *testing.T) {
	plan, _ := planNetwork(t, "AlexNet", defaultOpts())
	for _, pl := range plan.Layers {
		switch pl.Layer.(type) {
		case *layers.Pool:
			if pl.Layout == tensor.CHWN && pl.Options.Pool != layers.PoolOptimized {
				t.Errorf("pool %q should use the optimised kernel", pl.Layer.Name())
			}
		case *layers.Softmax:
			if pl.Options.Softmax.String() != "fused+parallel" {
				t.Errorf("softmax should use the fused, parallelised kernel, got %v", pl.Options.Softmax)
			}
		}
	}
}

func TestCalibrationIsUsedWhenThresholdsMissing(t *testing.T) {
	// With zero-valued thresholds the optimiser calibrates from the device
	// model; the resulting plan must still mix layouts sensibly for AlexNet.
	plan, _ := planNetwork(t, "AlexNet", core.Options{})
	if lay, ok := layoutOf(plan, "conv1"); !ok || lay != tensor.CHWN {
		t.Errorf("calibrated thresholds: conv1 layout = %v, want CHWN", lay)
	}
	if lay, ok := layoutOf(plan, "conv4"); !ok || lay != tensor.NCHW {
		t.Errorf("calibrated thresholds: conv4 layout = %v, want NCHW", lay)
	}
}

func TestDisableTransformsKeepsSingleLayout(t *testing.T) {
	opts := defaultOpts()
	opts.DisableTransforms = true
	plan, _ := planNetwork(t, "AlexNet", opts)
	if got := plan.TransformCount(); got != 0 {
		t.Errorf("transform-free plan contains %d transforms", got)
	}
	first := plan.Layers[0].Layout
	for _, pl := range plan.Layers {
		if pl.Layout != first && pl.Layer.SupportsLayout(first) {
			t.Errorf("layer %q switched to %v although transforms are disabled", pl.Layer.Name(), pl.Layout)
		}
	}
}

func TestNaiveTransformsAreSlower(t *testing.T) {
	// Fig. 10: with the naive transformation the layout benefit shrinks (or
	// disappears); the optimised transformation must always produce a plan
	// at least as fast.
	fast, _ := planNetwork(t, "AlexNet", defaultOpts())
	naiveOpts := defaultOpts()
	naiveOpts.NaiveTransforms = true
	naiveOpts.SkipTransformCheck = true
	slow, _ := planNetwork(t, "AlexNet", naiveOpts)

	fastEst, err := fast.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	slowEst, err := slow.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if fastEst.TotalUS > slowEst.TotalUS {
		t.Errorf("optimised transforms (%.0fus) must not lose to naive transforms (%.0fus)",
			fastEst.TotalUS, slowEst.TotalUS)
	}
	if slowEst.TransformUS <= fastEst.TransformUS {
		t.Errorf("naive transform overhead (%.0fus) should exceed the optimised overhead (%.0fus)",
			slowEst.TransformUS, fastEst.TransformUS)
	}
}

func TestAblationEveryOptimizationContributes(t *testing.T) {
	// Switching off each optimisation must not make the network faster.
	base, _ := planNetwork(t, "AlexNet", defaultOpts())
	baseEst, err := base.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	ablations := map[string]core.Options{
		"no pooling optimisation": {Thresholds: layout.TitanBlackThresholds(), DisablePoolingOpt: true},
		"no softmax optimisation": {Thresholds: layout.TitanBlackThresholds(), DisableSoftmaxOpt: true},
		"no layout mixing":        {Thresholds: layout.TitanBlackThresholds(), DisableTransforms: true},
	}
	for name, opts := range ablations {
		plan, _ := planNetwork(t, "AlexNet", opts)
		est, err := plan.Estimate()
		if err != nil {
			t.Fatal(err)
		}
		if est.TotalUS < baseEst.TotalUS*0.999 {
			t.Errorf("%s: ablated plan (%.0fus) is faster than the full optimiser (%.0fus)", name, est.TotalUS, baseEst.TotalUS)
		}
	}
}

func TestTransformCheckAvoidsUnprofitableSwitches(t *testing.T) {
	// With the profitability check enabled the plan never loses to the same
	// plan without it.
	checked, _ := planNetwork(t, "ZFNet", defaultOpts())
	uncheckedOpts := defaultOpts()
	uncheckedOpts.SkipTransformCheck = true
	unchecked, _ := planNetwork(t, "ZFNet", uncheckedOpts)
	cEst, err := checked.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	uEst, err := unchecked.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if cEst.TotalUS > uEst.TotalUS*1.001 {
		t.Errorf("profitability check made the plan slower: %.0fus vs %.0fus", cEst.TotalUS, uEst.TotalUS)
	}
}
