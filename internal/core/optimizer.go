// Package core implements the paper's contribution as a library: a memory
// optimiser that, given a network and a GPU, chooses the data layout of every
// layer with the (Ct, Nt) heuristic, inserts the fast layout transformation
// where consecutive layers prefer different layouts, replaces the pooling and
// softmax kernels with the register-reuse and kernel-fusion variants of
// Section V, and picks the best convolution implementation for each chosen
// layout.
//
// The optimiser is a network.Planner, so it is compared head to head with the
// library emulations of internal/frameworks in the whole-network benchmarks
// (Figs. 14 and 15).
//
// Naming note: core.Optimizer optimises memory layout and kernel choice — it
// is the paper's planner, not a training optimiser.  Gradient-descent
// training (the SGD update rule and its step loop) lives in
// internal/runtime/train.
package core

import (
	"fmt"

	"memcnn/internal/autotune"
	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/layout"
	"memcnn/internal/network"
	"memcnn/internal/tensor"
)

// Options configure the optimiser.  The zero value enables every
// optimisation with thresholds calibrated for the target device.
type Options struct {
	// Thresholds are the layout-selection thresholds; when unset they are
	// calibrated from the device model at planning time.
	Thresholds layout.Thresholds
	// DisableTransforms forbids mixing layouts: the planner keeps the first
	// layer's preferred layout for the whole network.  Used by the ablation
	// study.
	DisableTransforms bool
	// NaiveTransforms uses the unoptimised 4-D transpose instead of the
	// tiled/vectorised kernels ("Opt+Naive Transform" in Fig. 10).
	NaiveTransforms bool
	// DisablePoolingOpt keeps the plain CHWN pooling kernel instead of the
	// auto-tuned register-reuse kernel.
	DisablePoolingOpt bool
	// DisableSoftmaxOpt keeps the baseline multi-kernel softmax instead of
	// the fused, inner-loop-parallel kernel.
	DisableSoftmaxOpt bool
	// SkipTransformCheck skips the profiling pass that keeps a layer in the
	// incoming layout when the transformation overhead would exceed the
	// layout benefit (Section IV.D describes this one-time check).
	SkipTransformCheck bool
}

// Optimizer is the paper's automatic data-layout and memory-access optimiser
// (not a gradient-descent optimiser — see the package naming note).
type Optimizer struct {
	Opts Options

	calibrated map[string]layout.Thresholds
}

// NewOptimizer builds an optimiser.
func NewOptimizer(opts Options) *Optimizer {
	return &Optimizer{Opts: opts, calibrated: make(map[string]layout.Thresholds)}
}

// Name implements network.Planner.
func (o *Optimizer) Name() string { return "Opt" }

// thresholds returns the layout thresholds for a device, calibrating and
// caching them on first use (the paper's "one-time profiling").
func (o *Optimizer) thresholds(d *gpusim.Device) layout.Thresholds {
	if o.Opts.Thresholds.Valid() {
		return o.Opts.Thresholds
	}
	if th, ok := o.calibrated[d.Name]; ok {
		return th
	}
	th := layout.Calibrate(d)
	if o.calibrated == nil {
		o.calibrated = make(map[string]layout.Thresholds)
	}
	o.calibrated[d.Name] = th
	return th
}

// preferredLayout returns the layout the heuristic assigns to a layer, or the
// incoming layout for layout-agnostic layers.
func (o *Optimizer) preferredLayout(l layers.Layer, incoming tensor.Layout, th layout.Thresholds) tensor.Layout {
	switch lt := l.(type) {
	case *layers.Conv:
		return layout.PreferredConvLayout(lt.Cfg, th)
	case *layers.Pool:
		return layout.PreferredPoolLayout(lt.Cfg)
	default:
		// Fully-connected, ReLU, LRN and softmax layers are layout agnostic;
		// keep whatever layout the data is already in to avoid transforms.
		if l.SupportsLayout(incoming) {
			return incoming
		}
		return tensor.NCHW
	}
}

// options returns the implementation options the optimiser uses for a layer
// in a given layout.
func (o *Optimizer) options(d *gpusim.Device, l layers.Layer, lay tensor.Layout) layers.CostOptions {
	opts := layers.CostOptions{}
	switch lt := l.(type) {
	case *layers.Conv:
		if lay == tensor.NCHW {
			opts.Conv = layers.ConvBestNCHW
		} else {
			opts.Conv = layers.ConvDirectImpl
		}
	case *layers.Pool:
		if lay == tensor.CHWN && !o.Opts.DisablePoolingOpt {
			opts.Pool = layers.PoolOptimized
			if e, _, err := autotune.TunePoolExpansion(d, lt.Cfg); err == nil {
				opts.PoolExpansion = e
			}
		}
	case *layers.Softmax:
		if o.Opts.DisableSoftmaxOpt {
			opts.Softmax = kernels.SoftmaxThreadPerImage
		} else {
			opts.Softmax = kernels.SoftmaxFusedParallel
		}
	}
	return opts
}

// layerTime prices one layer in one layout (including an incoming transform
// when needed) so the planner can compare alternatives.
func (o *Optimizer) layerTime(d *gpusim.Device, l layers.Layer, lay, incoming tensor.Layout) (float64, *gpusim.KernelStats, kernels.TransformMethod, error) {
	opts := o.options(d, l, lay)
	seq, err := l.Cost(d, lay, opts)
	if err != nil {
		return 0, nil, 0, err
	}
	total, _ := gpusim.EstimateSequence(d, seq)

	var transform *gpusim.KernelStats
	var method kernels.TransformMethod
	if lay != incoming {
		shape := l.InputShape()
		if o.Opts.NaiveTransforms {
			stats, err := kernels.TransformCost(d, shape, incoming, lay, kernels.TransformNaive)
			if err != nil {
				return 0, nil, 0, err
			}
			transform, method = &stats, kernels.TransformNaive
		} else {
			stats, m, err := kernels.BestTransform(d, shape, incoming, lay)
			if err != nil {
				return 0, nil, 0, err
			}
			transform, method = &stats, m
		}
		total += gpusim.EstimateTime(d, *transform).TotalUS
	}
	return total, transform, method, nil
}

// nextLayoutSensitiveLayer returns the first convolution or pooling layer
// after index i, skipping the layout-agnostic layers (ReLU, LRN,
// fully-connected, softmax) whose cost does not depend on the layout.  It is
// the layer whose layout preference decides whether a layout switch at layer
// i will have to be undone.
func nextLayoutSensitiveLayer(net *network.Network, i int) layers.Layer {
	for j := i + 1; j < len(net.Layers); j++ {
		switch net.Layers[j].(type) {
		case *layers.Conv, *layers.Pool:
			return net.Layers[j]
		}
	}
	return nil
}

// Plan implements network.Planner.
func (o *Optimizer) Plan(d *gpusim.Device, net *network.Network) (*network.ExecutionPlan, error) {
	if net == nil || len(net.Layers) == 0 {
		return nil, fmt.Errorf("core: cannot plan an empty network")
	}
	th := o.thresholds(d)
	plan := &network.ExecutionPlan{PlannerName: o.Name(), Network: net, Device: d}

	// The network's input starts in the first layer's preferred layout: the
	// input batch is written once by the host, so there is no transform to
	// pay for (same assumption as the paper's framework integration).
	current := o.preferredLayout(net.Layers[0], tensor.NCHW, th)
	if !net.Layers[0].SupportsLayout(current) {
		current = tensor.NCHW
	}

	for i, l := range net.Layers {
		preferred := o.preferredLayout(l, current, th)
		if o.Opts.DisableTransforms && i > 0 {
			preferred = current
		}
		if !l.SupportsLayout(preferred) {
			preferred = current
		}

		lay := preferred
		var transform *gpusim.KernelStats
		var method kernels.TransformMethod

		if !o.Opts.SkipTransformCheck && !o.Opts.DisableTransforms {
			// One-time profiling check (Section IV.D): the heuristic proposes
			// a layout, the profile (here: the cost model) fine-tunes the
			// decision.  Each candidate layout is priced including the
			// transformation needed to enter it and, looking one layer
			// ahead, the transformation needed to leave it again if the next
			// layer will want the incoming layout back.
			candidates := []tensor.Layout{preferred}
			if current != preferred && l.SupportsLayout(current) {
				candidates = append(candidates, current)
			}
			if _, isConv := l.(*layers.Conv); isConv {
				for _, alt := range []tensor.Layout{tensor.CHWN, tensor.NCHW} {
					if alt != preferred && alt != current && l.SupportsLayout(alt) {
						candidates = append(candidates, alt)
					}
				}
			}
			bestCost := -1.0
			var bestErr error
			for _, cand := range candidates {
				cost, candTransform, candMethod, err := o.layerTime(d, l, cand, current)
				if err != nil {
					if bestErr == nil {
						bestErr = err
					}
					continue
				}
				if cand != current {
					if next := nextLayoutSensitiveLayer(net, i); next != nil {
						nextPreferred := o.preferredLayout(next, current, th)
						if nextPreferred == current && next.SupportsLayout(current) {
							if back, _, err := kernels.BestTransform(d, next.InputShape(), cand, current); err == nil {
								cost += gpusim.EstimateTime(d, back).TotalUS
							}
						}
					}
				}
				if bestCost < 0 || cost < bestCost {
					bestCost = cost
					lay, transform, method = cand, candTransform, candMethod
				}
			}
			if bestCost < 0 {
				return nil, fmt.Errorf("core: layer %q: %v", l.Name(), bestErr)
			}
		} else if lay != current {
			_, transform, method, _ = o.layerTime(d, l, lay, current)
		}

		opts := o.options(d, l, lay)
		if _, err := l.Cost(d, lay, opts); err != nil {
			return nil, fmt.Errorf("core: layer %q cannot run in layout %v: %w", l.Name(), lay, err)
		}
		plan.Layers = append(plan.Layers, network.PlannedLayer{
			Layer:           l,
			Layout:          lay,
			Options:         opts,
			Transform:       transform,
			TransformMethod: method,
		})
		current = lay
	}
	return plan, nil
}
