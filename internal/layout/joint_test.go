package layout

import (
	"testing"

	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/tensor"
)

// Full-batch workload shapes the joint sweep's decisions are pinned on.
var (
	zfConv3   = kernels.ConvConfig{N: 64, C: 256, H: 12, W: 12, K: 384, FH: 3, FW: 3, PadH: 1, PadW: 1}
	vggConv3  = kernels.ConvConfig{N: 32, C: 128, H: 56, W: 56, K: 256, FH: 3, FW: 3, PadH: 1, PadW: 1}
	alexConv2 = kernels.ConvConfig{N: 64, C: 96, H: 27, W: 27, K: 256, FH: 5, FW: 5, PadH: 2, PadW: 2}
)

// TestJointConvChoicePromotion pins the priced-promotion rule on real layer
// shapes: ZFNet's conv3 (where the modeled FFT beats GEMM by more than the
// margin) flips to FFT+NCHW, while VGG's conv3_1 (faster under FFT, but inside
// the margin) keeps the spatial baseline.
func TestJointConvChoicePromotion(t *testing.T) {
	d := gpusim.TitanBlack()

	got := JointConvChoice(d, zfConv3, tensor.NCHW, kernels.ConvAlgGemm)
	if got.Alg != kernels.ConvAlgFFT || got.Layout != tensor.NCHW {
		t.Errorf("ZFNet conv3: got %v/%v, want fft/NCHW promotion", got.Alg, got.Layout)
	}
	got = JointConvChoice(d, vggConv3, tensor.NCHW, kernels.ConvAlgGemm)
	if got.Alg != kernels.ConvAlgGemm || got.Layout != tensor.NCHW {
		t.Errorf("VGG conv3_1: got %v/%v, want gemm kept inside the promotion margin", got.Alg, got.Layout)
	}
}

// TestJointConvChoiceNeverPromotesStrided checks the stride guard: the dense
// frequency-domain correlation computes stride²-fold wasted work, so even a
// shape deep in the FFT regime stays spatial once strided.
func TestJointConvChoiceNeverPromotesStrided(t *testing.T) {
	d := gpusim.TitanBlack()
	strided := zfConv3
	strided.StrideH, strided.StrideW = 2, 2
	got := JointConvChoice(d, strided, tensor.CHWN, kernels.ConvAlgDirect)
	if got.Alg != kernels.ConvAlgDirect || got.Layout != tensor.CHWN {
		t.Errorf("strided layer: got %v/%v, want the planner's direct/CHWN kept", got.Alg, got.Layout)
	}
}

// TestJointConvChoicePinsHeuristicFFTToNCHW checks the first rule: when the
// analytic heuristic already picked FFT, the joint sweep's only job is to move
// the layer into the kernel's NCHW layout, even from a CHWN plan.
func TestJointConvChoicePinsHeuristicFFTToNCHW(t *testing.T) {
	d := gpusim.TitanBlack()
	got := JointConvChoice(d, alexConv2, tensor.CHWN, kernels.ConvAlgFFT)
	if got.Alg != kernels.ConvAlgFFT || got.Layout != tensor.NCHW {
		t.Errorf("heuristic FFT: got %v/%v, want fft pinned to NCHW", got.Alg, got.Layout)
	}
	if got.TransformUS <= 0 {
		t.Error("CHWN->NCHW layout switch should be charged a transform cost")
	}
	// AlexNet conv2's emulated cuDNN v4 workspace exceeds the 6 GB card, so
	// the candidate carries the OOM flag the paper's Table IV story rests on.
	if !got.OOM {
		t.Error("AlexNet conv2 FFT workspace should be flagged OOM on the 6 GB TitanBlack model")
	}
}

// TestJointConvChoiceWithoutDevice checks the degenerate inputs: no device
// model or an invalid shape leaves the planner's decision untouched.
func TestJointConvChoiceWithoutDevice(t *testing.T) {
	got := JointConvChoice(nil, zfConv3, tensor.CHWN, kernels.ConvAlgGemm)
	if got.Alg != kernels.ConvAlgGemm || got.Layout != tensor.CHWN {
		t.Errorf("nil device: got %v/%v, want the plan kept", got.Alg, got.Layout)
	}
	got = JointConvChoice(gpusim.TitanBlack(), kernels.ConvConfig{}, tensor.CHWN, kernels.ConvAlgDirect)
	if got.Alg != kernels.ConvAlgDirect || got.Layout != tensor.CHWN {
		t.Errorf("invalid config: got %v/%v, want the plan kept", got.Alg, got.Layout)
	}
}

// TestConvAlgCandidatesTransformCharges checks the shared sweep rows: every
// production algorithm is priced in its natural layout, and candidates whose
// layout differs from the incoming one carry a positive layout-switch charge.
func TestConvAlgCandidatesTransformCharges(t *testing.T) {
	d := gpusim.TitanBlack()
	cands := ConvAlgCandidates(d, zfConv3, tensor.CHWN)
	if len(cands) != 3 {
		t.Fatalf("got %d candidates, want 3", len(cands))
	}
	byAlg := map[kernels.ConvAlgorithm]ConvCandidate{}
	for _, c := range cands {
		byAlg[c.Alg] = c
	}
	if c := byAlg[kernels.ConvAlgDirect]; c.Layout != tensor.CHWN || c.TransformUS != 0 {
		t.Errorf("direct candidate: layout %v transform %v, want CHWN with no charge from CHWN", c.Layout, c.TransformUS)
	}
	for _, alg := range []kernels.ConvAlgorithm{kernels.ConvAlgGemm, kernels.ConvAlgFFT} {
		c := byAlg[alg]
		if c.Layout != tensor.NCHW {
			t.Errorf("%v candidate priced in %v, want NCHW", alg, c.Layout)
		}
		if c.TransformUS <= 0 {
			t.Errorf("%v candidate from CHWN carries no layout-switch charge", alg)
		}
		if c.TotalUS() != c.TimeUS+c.TransformUS {
			t.Errorf("%v candidate TotalUS inconsistent", alg)
		}
	}
}
