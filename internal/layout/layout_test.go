package layout

import (
	"testing"

	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/tensor"
)

// table1Convs are the twelve convolutional layers of Table 1.
var table1Convs = map[string]kernels.ConvConfig{
	"CV1":  {N: 128, C: 1, H: 28, W: 28, K: 16, FH: 5, FW: 5},
	"CV2":  {N: 128, C: 16, H: 14, W: 14, K: 16, FH: 5, FW: 5},
	"CV3":  {N: 128, C: 3, H: 24, W: 24, K: 64, FH: 5, FW: 5},
	"CV4":  {N: 128, C: 64, H: 12, W: 12, K: 64, FH: 5, FW: 5},
	"CV5":  {N: 64, C: 3, H: 224, W: 224, K: 96, FH: 3, FW: 3, StrideH: 2, StrideW: 2},
	"CV6":  {N: 64, C: 96, H: 55, W: 55, K: 256, FH: 5, FW: 5, StrideH: 2, StrideW: 2},
	"CV7":  {N: 64, C: 256, H: 13, W: 13, K: 384, FH: 3, FW: 3},
	"CV8":  {N: 64, C: 384, H: 13, W: 13, K: 384, FH: 3, FW: 3},
	"CV9":  {N: 32, C: 3, H: 224, W: 224, K: 64, FH: 3, FW: 3},
	"CV10": {N: 32, C: 128, H: 56, W: 56, K: 256, FH: 3, FW: 3},
	"CV11": {N: 32, C: 256, H: 28, W: 28, K: 512, FH: 3, FW: 3},
	"CV12": {N: 32, C: 512, H: 14, W: 14, K: 512, FH: 3, FW: 3},
}

// wantCHWN lists the layers for which the paper finds the CHWN layout faster
// (Section VI.A: CONV1–CONV4 because N=128, CONV5 and CONV9 because C < 16).
var wantCHWN = map[string]bool{
	"CV1": true, "CV2": true, "CV3": true, "CV4": true, "CV5": true, "CV9": true,
	"CV6": false, "CV7": false, "CV8": false, "CV10": false, "CV11": false, "CV12": false,
}

func TestPaperThresholdsClassifyTable1(t *testing.T) {
	th := TitanBlackThresholds()
	for name, cfg := range table1Convs {
		got := PreferredConvLayout(cfg, th)
		want := tensor.NCHW
		if wantCHWN[name] {
			want = tensor.CHWN
		}
		if got != want {
			t.Errorf("%s: heuristic chose %v, paper measures %v as faster", name, got, want)
		}
	}
}

func TestHeuristicMatchesCostModelOracle(t *testing.T) {
	// The heuristic must agree with the cost model's own winner for every
	// Table 1 layer (the paper's claim: "all the benchmarking layers in
	// Table 1 confirm the effectiveness of our heuristics").
	d := gpusim.TitanBlack()
	th := TitanBlackThresholds()
	for name, cfg := range table1Convs {
		heuristic := PreferredConvLayout(cfg, th)
		oracle, chwnUS, nchwUS := MeasuredConvWinner(d, cfg)
		if heuristic != oracle {
			t.Errorf("%s: heuristic %v but model oracle %v (CHWN %.0fus, NCHW %.0fus)",
				name, heuristic, oracle, chwnUS, nchwUS)
		}
	}
}

func TestPreferredConvLayoutDefaultsWhenInvalidThresholds(t *testing.T) {
	cfg := table1Convs["CV7"]
	if got := PreferredConvLayout(cfg, Thresholds{}); got != tensor.NCHW {
		t.Errorf("invalid thresholds should fall back to Titan Black values, got %v", got)
	}
}

func TestPreferredPoolLayoutIsAlwaysCHWN(t *testing.T) {
	pools := []kernels.PoolConfig{
		{N: 128, C: 16, H: 28, W: 28, Window: 2, Stride: 2},
		{N: 64, C: 256, H: 13, W: 13, Window: 3, Stride: 2},
	}
	for _, cfg := range pools {
		if PreferredPoolLayout(cfg) != tensor.CHWN {
			t.Errorf("%v: pooling must prefer CHWN", cfg)
		}
	}
}

func TestPublishedThresholds(t *testing.T) {
	if got := TitanBlackThresholds(); got != (Thresholds{Ct: 32, Nt: 128}) {
		t.Errorf("Titan Black thresholds = %v", got)
	}
	if got := TitanXThresholds(); got != (Thresholds{Ct: 128, Nt: 64}) {
		t.Errorf("Titan X thresholds = %v", got)
	}
	if !TitanBlackThresholds().Valid() || (Thresholds{}).Valid() {
		t.Error("Valid() incorrect")
	}
	if TitanBlackThresholds().String() == "" {
		t.Error("String must not be empty")
	}
}

func TestCalibrateProducesUsableThresholds(t *testing.T) {
	d := gpusim.TitanBlack()
	th := Calibrate(d)
	if !th.Valid() {
		t.Fatalf("calibration produced invalid thresholds %v", th)
	}
	// The calibrated thresholds must classify every Table 1 layer the same
	// way the paper's measurements do.
	for name, cfg := range table1Convs {
		got := PreferredConvLayout(cfg, th)
		want := tensor.NCHW
		if wantCHWN[name] {
			want = tensor.CHWN
		}
		if got != want {
			t.Errorf("%s: calibrated thresholds %v chose %v, want %v", name, th, got, want)
		}
	}
}

func TestCalibrateTitanXAlsoClassifiesTable1(t *testing.T) {
	d := gpusim.TitanX()
	th := Calibrate(d)
	if !th.Valid() {
		t.Fatalf("calibration produced invalid thresholds %v", th)
	}
	for name, cfg := range table1Convs {
		heuristic := PreferredConvLayout(cfg, th)
		oracle, _, _ := MeasuredConvWinner(d, cfg)
		if heuristic != oracle {
			t.Errorf("Titan X %s: heuristic %v disagrees with oracle %v", name, heuristic, oracle)
		}
	}
}

func TestSweepNShowsCHWNSensitivity(t *testing.T) {
	// Fig. 4a: the CHWN throughput rises steeply with N and overtakes NCHW
	// by N=128; NCHW is comparatively flat.
	d := gpusim.TitanBlack()
	nValues := []int{16, 32, 64, 128, 256}
	pts := SweepN(d, nValues)
	if len(pts) != len(nValues) {
		t.Fatalf("got %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].CHWNGflops < pts[i-1].CHWNGflops {
			t.Errorf("CHWN throughput decreased from N=%d to N=%d", pts[i-1].Value, pts[i].Value)
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.CHWNGflops < 3*first.CHWNGflops {
		t.Errorf("CHWN should be strongly N-sensitive: %0.f -> %0.f GFLOPS", first.CHWNGflops, last.CHWNGflops)
	}
	nchwSpread := last.NCHWGflops / pts[1].NCHWGflops
	if nchwSpread > 3 {
		t.Errorf("NCHW should be comparatively flat in N, got spread %.1fx", nchwSpread)
	}
	if first.CHWNPrefers {
		t.Error("at N=16 NCHW should win")
	}
	if !last.CHWNPrefers {
		t.Error("at N=256 CHWN should win")
	}
}

func TestSweepCShowsCrossover(t *testing.T) {
	// Fig. 4b: CHWN wins at small C, NCHW wins at large C.
	d := gpusim.TitanBlack()
	pts := SweepC(d, []int{8, 16, 32, 64, 128, 256})
	if !pts[0].CHWNPrefers {
		t.Error("at C=8 CHWN should win")
	}
	if pts[len(pts)-1].CHWNPrefers {
		t.Error("at C=256 NCHW should win")
	}
	// NCHW throughput must grow with C (matrix expansion pays off).
	for i := 1; i < len(pts); i++ {
		if pts[i].NCHWGflops < pts[i-1].NCHWGflops {
			t.Errorf("NCHW throughput decreased from C=%d to C=%d", pts[i-1].Value, pts[i].Value)
		}
	}
}

func TestCalibrationSweepsNonEmpty(t *testing.T) {
	ns, cs := CalibrationSweeps()
	if len(ns) == 0 || len(cs) == 0 {
		t.Fatal("sweeps must not be empty")
	}
	for i := 1; i < len(ns); i++ {
		if ns[i] <= ns[i-1] {
			t.Error("N sweep must be increasing")
		}
	}
	for i := 1; i < len(cs); i++ {
		if cs[i] <= cs[i-1] {
			t.Error("C sweep must be increasing")
		}
	}
}
