// Package layout implements the paper's data-layout selection heuristic and
// its one-time per-device calibration (Section IV.A).
//
// The heuristic is deliberately simple — it only looks at the batch size N
// and the input channel count C of a convolutional layer:
//
//	if C < Ct            -> CHWN  (the matrix-expansion overhead of NCHW is too high)
//	else if N >= Nt      -> CHWN  (N is large enough for both coalescing and register reuse)
//	else                 -> NCHW
//
// Pooling layers always prefer CHWN (Section IV.B).  The thresholds (Ct, Nt)
// depend only on the GPU, not on the network, so they are obtained once per
// device by profiling a reference layer shape while sweeping N and C — the
// same sweeps shown in Fig. 4.
package layout

import (
	"fmt"

	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
	"memcnn/internal/tensor"
)

// Thresholds holds the device-specific decision points of the heuristic.
type Thresholds struct {
	Ct int // channel threshold: below it CHWN is preferred
	Nt int // batch threshold: at or above it CHWN is preferred
}

// String formats the thresholds the way the paper quotes them, "(Ct, Nt)".
func (t Thresholds) String() string { return fmt.Sprintf("(Ct=%d, Nt=%d)", t.Ct, t.Nt) }

// Valid reports whether the thresholds are usable.
func (t Thresholds) Valid() bool { return t.Ct > 0 && t.Nt > 0 }

// TitanBlackThresholds are the paper's published thresholds for the GTX Titan
// Black, (Ct, Nt) = (32, 128).
func TitanBlackThresholds() Thresholds { return Thresholds{Ct: 32, Nt: 128} }

// TitanXThresholds are the paper's published thresholds for the GTX Titan X,
// (Ct, Nt) = (128, 64).
func TitanXThresholds() Thresholds { return Thresholds{Ct: 128, Nt: 64} }

// PreferredConvLayout applies the heuristic to one convolutional layer.
func PreferredConvLayout(cfg kernels.ConvConfig, t Thresholds) tensor.Layout {
	if !t.Valid() {
		t = TitanBlackThresholds()
	}
	if cfg.C < t.Ct {
		return tensor.CHWN
	}
	if cfg.N >= t.Nt {
		return tensor.CHWN
	}
	return tensor.NCHW
}

// PreferredPoolLayout returns the layout pooling layers always prefer.
// Section IV.B: the CHWN layout keeps every pooling load coalesced, so it
// wins across the board.
func PreferredPoolLayout(kernels.PoolConfig) tensor.Layout { return tensor.CHWN }

// MeasuredConvWinner runs both layouts' best implementations through the cost
// model and returns the faster layout.  It is the "oracle" the heuristic is
// validated against (and what one-time profiling would measure on real
// hardware).
func MeasuredConvWinner(d *gpusim.Device, cfg kernels.ConvConfig) (tensor.Layout, float64, float64) {
	chwn := gpusim.EstimateTime(d, kernels.ConvDirectCHWNCost(d, cfg)).TotalUS
	nchw, _ := gpusim.EstimateSequence(d, kernels.ConvGemmNCHWCost(d, cfg))
	// The NCHW layout may also use an FFT mode when it fits in memory; take
	// the best available NCHW implementation, as the paper's comparisons do.
	if fftSeq, err := kernels.ConvFFTCost(d, cfg); err == nil {
		if t, _ := gpusim.EstimateSequence(d, fftSeq); t < nchw {
			nchw = t
		}
	}
	if fftT, err := kernels.ConvFFTTilingCost(d, cfg); err == nil {
		if t, _ := gpusim.EstimateSequence(d, fftT); t < nchw {
			nchw = t
		}
	}
	if chwn <= nchw {
		return tensor.CHWN, chwn, nchw
	}
	return tensor.NCHW, chwn, nchw
}

// FFTPromotionMargin is how much faster the modeled FFT mode (including any
// layout switch into NCHW) must be than a layer's heuristically selected
// spatial algorithm before the compiler's joint sweep promotes the layer to
// FFT.  The analytic model flatters the frequency-domain path (it ignores
// tuning and occupancy cliffs real batched-FFT kernels hit), so a promotion
// needs clear daylight, not a photo finish.
const FFTPromotionMargin = 1.25

// ConvCandidate is one priced (layout, algorithm) execution option for a
// convolution layer — one row of the joint sweep the compiler and
// cmd/layoutplan share.
type ConvCandidate struct {
	Layout tensor.Layout
	Alg    kernels.ConvAlgorithm
	// TimeUS is the modeled kernel time of the algorithm in its layout,
	// excluding the layout switch.
	TimeUS float64
	// TransformUS is the modeled cost of moving the layer input from the
	// incoming layout into Layout (zero when they already match).
	TransformUS float64
	// OOM marks a mode whose workspace exceeds device memory
	// (kernels.ErrOutOfMemory); TimeUS is meaningless for it.
	OOM bool
}

// TotalUS is the candidate's end-to-end modeled cost: kernel plus layout
// switch.
func (c ConvCandidate) TotalUS() float64 { return c.TimeUS + c.TransformUS }

// convCandidate prices one algorithm in its natural layout, charging the best
// applicable transform kernel when the incoming layout differs.
func convCandidate(d *gpusim.Device, cfg kernels.ConvConfig, alg kernels.ConvAlgorithm, incoming tensor.Layout) ConvCandidate {
	cand := ConvCandidate{Alg: alg}
	switch alg {
	case kernels.ConvAlgGemm:
		cand.Layout = tensor.NCHW
		cand.TimeUS, _ = gpusim.EstimateSequence(d, kernels.ConvGemmNCHWCost(d, cfg))
	case kernels.ConvAlgFFT:
		cand.Layout = tensor.NCHW
		if seq, err := kernels.ConvFFTCost(d, cfg); err != nil {
			cand.OOM = true
		} else {
			cand.TimeUS, _ = gpusim.EstimateSequence(d, seq)
		}
	default:
		cand.Layout = tensor.CHWN
		cand.TimeUS = gpusim.EstimateTime(d, kernels.ConvDirectCHWNCost(d, cfg)).TotalUS
	}
	if incoming.Valid() && incoming != cand.Layout {
		if stats, _, err := kernels.BestTransform(d, cfg.InputShape(), incoming, cand.Layout); err == nil {
			cand.TransformUS = gpusim.EstimateTime(d, stats).TotalUS
		}
	}
	return cand
}

// ConvAlgCandidates prices every production algorithm for the layer in its
// natural layout — direct in CHWN, im2col+GEMM and FFT in NCHW — charging
// each candidate the best layout-transform kernel from the incoming layout.
// This is the full sweep cmd/layoutplan reports; the compiler's per-layer
// decision (JointConvChoice) picks from the same numbers, so the tool and the
// compiler cannot disagree.
func ConvAlgCandidates(d *gpusim.Device, cfg kernels.ConvConfig, incoming tensor.Layout) []ConvCandidate {
	return []ConvCandidate{
		convCandidate(d, cfg, kernels.ConvAlgDirect, incoming),
		convCandidate(d, cfg, kernels.ConvAlgGemm, incoming),
		convCandidate(d, cfg, kernels.ConvAlgFFT, incoming),
	}
}

// JointConvChoice makes the compiler's joint (layout, algorithm) decision for
// one convolution layer.  `planned` is the layout the network planner picked
// and `base` the analytic heuristic's algorithm for the shape; the sweep may
// override both together.  The rules:
//
//   - A heuristic FFT choice is pinned to NCHW (the frequency-domain kernels
//     are NCHW implementations, Section IV.A), flipping the layer's layout if
//     the planner preferred CHWN.
//   - A spatial choice on a stride-1 layer is promoted to FFT+NCHW when the
//     modeled FFT time plus the layout switch beats the base algorithm's
//     modeled time by FFTPromotionMargin and the FFT workspace fits in device
//     memory.  Strided layers are never promoted: the dense correlation
//     computes stride²-fold wasted work.
//   - Otherwise the layer keeps the planner's layout and the base algorithm.
//
// With no device model the planner layout and base algorithm stand unchanged.
func JointConvChoice(d *gpusim.Device, cfg kernels.ConvConfig, planned tensor.Layout, base kernels.ConvAlgorithm) ConvCandidate {
	keep := ConvCandidate{Layout: planned, Alg: base}
	if d == nil || cfg.Validate() != nil {
		return keep
	}
	if base == kernels.ConvAlgFFT {
		return convCandidate(d, cfg, kernels.ConvAlgFFT, planned)
	}
	sh, sw := cfg.StrideH, cfg.StrideW
	if sh == 0 {
		sh = 1
	}
	if sw == 0 {
		sw = 1
	}
	if sh != 1 || sw != 1 {
		return keep
	}
	// The base algorithm runs in the planner's layout with no switch, so the
	// comparison is its bare kernel time against FFT's kernel plus transform.
	basePriced := convCandidate(d, cfg, base, planned)
	fftCand := convCandidate(d, cfg, kernels.ConvAlgFFT, planned)
	if fftCand.OOM || fftCand.TotalUS() <= 0 {
		return keep
	}
	if basePriced.TimeUS >= fftCand.TotalUS()*FFTPromotionMargin {
		return fftCand
	}
	return keep
}

// calibrationReference is the layer shape used for the calibration sweeps; it
// mirrors the paper's use of CONV7 in Fig. 4 (13x13 maps, 384 filters, 3x3
// kernels).
type calibrationReference struct {
	H, W, K, FH, FW int
}

var defaultReference = calibrationReference{H: 13, W: 13, K: 384, FH: 3, FW: 3}

// CalibrationSweeps returns the N and C values probed during calibration.
func CalibrationSweeps() (nValues, cValues []int) {
	return []int{16, 32, 48, 64, 96, 128, 192, 256},
		[]int{4, 8, 16, 24, 32, 48, 64, 96, 128, 192, 256}
}

// Calibrate derives the (Ct, Nt) thresholds for a device by sweeping the
// batch size and channel count of the reference layer shape and finding the
// crossover points between the two layouts' modelled performance.  This is
// the library counterpart of the paper's one-time profiling pass.
func Calibrate(d *gpusim.Device) Thresholds {
	nValues, cValues := CalibrationSweeps()

	// Nt: smallest probed N at which CHWN wins with a deep input (C=256).
	nt := nValues[len(nValues)-1]
	found := false
	for _, n := range nValues {
		cfg := kernels.ConvConfig{N: n, C: 256, H: defaultReference.H, W: defaultReference.W,
			K: defaultReference.K, FH: defaultReference.FH, FW: defaultReference.FW}
		if winner, _, _ := MeasuredConvWinner(d, cfg); winner == tensor.CHWN {
			nt = n
			found = true
			break
		}
	}
	if !found {
		nt = nValues[len(nValues)-1] * 2
	}

	// Ct: smallest probed C at which NCHW starts winning with a mid-size
	// batch (N=64, below Nt so the batch rule does not mask the channel
	// rule).
	ct := cValues[len(cValues)-1]
	for _, c := range cValues {
		cfg := kernels.ConvConfig{N: 64, C: c, H: defaultReference.H, W: defaultReference.W,
			K: defaultReference.K, FH: defaultReference.FH, FW: defaultReference.FW}
		if winner, _, _ := MeasuredConvWinner(d, cfg); winner == tensor.NCHW {
			ct = c
			break
		}
	}
	return Thresholds{Ct: ct, Nt: nt}
}

// SweepPoint is one measurement of a calibration sweep: the modelled
// throughput of both layouts at a given dimension value.  The benchmark
// harness uses it to regenerate Fig. 4.
type SweepPoint struct {
	Value       int     // the swept N or C
	CHWNGflops  float64 // cuda-convnet / direct convolution throughput
	NCHWGflops  float64 // cuDNN / GEMM convolution throughput
	CHWNTimeUS  float64
	NCHWTimeUS  float64
	CHWNPrefers bool
}

// SweepN reproduces the Fig. 4a experiment: fix the reference shape with
// C=256 and vary the batch size.
func SweepN(d *gpusim.Device, nValues []int) []SweepPoint {
	points := make([]SweepPoint, 0, len(nValues))
	for _, n := range nValues {
		cfg := kernels.ConvConfig{N: n, C: 256, H: defaultReference.H, W: defaultReference.W,
			K: defaultReference.K, FH: defaultReference.FH, FW: defaultReference.FW}
		points = append(points, sweepPoint(d, cfg, n))
	}
	return points
}

// SweepC reproduces the Fig. 4b experiment: fix the reference shape with N=64
// and vary the channel count.
func SweepC(d *gpusim.Device, cValues []int) []SweepPoint {
	points := make([]SweepPoint, 0, len(cValues))
	for _, c := range cValues {
		cfg := kernels.ConvConfig{N: 64, C: c, H: defaultReference.H, W: defaultReference.W,
			K: defaultReference.K, FH: defaultReference.FH, FW: defaultReference.FW}
		points = append(points, sweepPoint(d, cfg, c))
	}
	return points
}

func sweepPoint(d *gpusim.Device, cfg kernels.ConvConfig, value int) SweepPoint {
	chwn := gpusim.EstimateTime(d, kernels.ConvDirectCHWNCost(d, cfg)).TotalUS
	nchw, _ := gpusim.EstimateSequence(d, kernels.ConvGemmNCHWCost(d, cfg))
	flops := cfg.FLOPs()
	return SweepPoint{
		Value:       value,
		CHWNGflops:  flops / (chwn * 1e-6) / 1e9,
		NCHWGflops:  flops / (nchw * 1e-6) / 1e9,
		CHWNTimeUS:  chwn,
		NCHWTimeUS:  nchw,
		CHWNPrefers: chwn <= nchw,
	}
}
