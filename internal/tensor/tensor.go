// Package tensor provides the 4-D tensor data structure used throughout the
// library together with the memory layouts studied in the paper.
//
// A CNN activation tensor has four logical dimensions:
//
//	N — batch size (number of images)
//	C — number of channels / feature maps
//	H — feature map height
//	W — feature map width
//
// The same logical tensor can be linearised in memory in 4! = 24 different
// orders.  The paper (and this library) focuses on the orders used by real
// GPU CNN libraries:
//
//	NCHW — Caffe / cuDNN: W is the fastest-varying dimension.
//	CHWN — cuda-convnet:  N is the fastest-varying dimension.
//	NHWC — cuDNN's alternative layout.
//	HWCN — equivalent to CHWN for coalescing purposes (Section IV.A).
//
// The layout determines the memory access pattern of every GPU kernel that
// touches the tensor and therefore its memory efficiency.
package tensor

import (
	"fmt"
)

// Layout identifies the linearisation order of a 4-D tensor.
type Layout int

// The memory layouts supported by the library.  The name lists the dimensions
// from slowest-varying (largest stride) to fastest-varying (stride 1).
const (
	NCHW Layout = iota // Caffe / cuDNN default: row-major over N, C, H, W.
	CHWN               // cuda-convnet: batch dimension innermost.
	NHWC               // channels innermost.
	HWCN               // spatial outermost, batch innermost.
	numLayouts
)

// Layouts lists every supported layout, in a stable order.
var Layouts = []Layout{NCHW, CHWN, NHWC, HWCN}

// String returns the conventional name of the layout.
func (l Layout) String() string {
	switch l {
	case NCHW:
		return "NCHW"
	case CHWN:
		return "CHWN"
	case NHWC:
		return "NHWC"
	case HWCN:
		return "HWCN"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Valid reports whether l is one of the supported layouts.
func (l Layout) Valid() bool { return l >= 0 && l < numLayouts }

// ParseLayout converts a layout name ("NCHW", "chwn", ...) to a Layout.
func ParseLayout(s string) (Layout, error) {
	switch {
	case equalFold(s, "NCHW"):
		return NCHW, nil
	case equalFold(s, "CHWN"):
		return CHWN, nil
	case equalFold(s, "NHWC"):
		return NHWC, nil
	case equalFold(s, "HWCN"):
		return HWCN, nil
	}
	return 0, fmt.Errorf("tensor: unknown layout %q", s)
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'a' <= ca && ca <= 'z' {
			ca -= 'a' - 'A'
		}
		if 'a' <= cb && cb <= 'z' {
			cb -= 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Shape describes the logical extent of a 4-D tensor, independent of layout.
type Shape struct {
	N int // batch size
	C int // channels
	H int // height
	W int // width
}

// Elems returns the number of elements in the tensor.
func (s Shape) Elems() int { return s.N * s.C * s.H * s.W }

// Bytes returns the size of the tensor in bytes assuming float32 storage.
func (s Shape) Bytes() int64 { return int64(s.Elems()) * 4 }

// Valid reports whether every dimension is positive.
func (s Shape) Valid() bool { return s.N > 0 && s.C > 0 && s.H > 0 && s.W > 0 }

// String formats the shape as "N×C×H×W".
func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%dx%d", s.N, s.C, s.H, s.W)
}

// Strides returns the element stride of each logical dimension (N, C, H, W)
// for the given layout.  The stride of a dimension is the distance, in
// elements, between two values that are adjacent along that dimension.
func (s Shape) Strides(l Layout) (sn, sc, sh, sw int) {
	switch l {
	case NCHW:
		sw = 1
		sh = s.W
		sc = s.H * s.W
		sn = s.C * s.H * s.W
	case CHWN:
		sn = 1
		sw = s.N
		sh = s.W * s.N
		sc = s.H * s.W * s.N
	case NHWC:
		sc = 1
		sw = s.C
		sh = s.W * s.C
		sn = s.H * s.W * s.C
	case HWCN:
		sn = 1
		sc = s.N
		sw = s.C * s.N
		sh = s.W * s.C * s.N
	default:
		panic(fmt.Sprintf("tensor: invalid layout %v", l))
	}
	return sn, sc, sh, sw
}

// Offset returns the linear element offset of logical coordinate (n,c,h,w)
// under layout l.  It does not bounds-check; callers that need checking use
// Tensor.At / Tensor.Set.
func (s Shape) Offset(l Layout, n, c, h, w int) int {
	sn, sc, sh, sw := s.Strides(l)
	return n*sn + c*sc + h*sh + w*sw
}

// Coord inverts Offset: it maps a linear offset under layout l back to the
// logical coordinate (n,c,h,w).
func (s Shape) Coord(l Layout, off int) (n, c, h, w int) {
	switch l {
	case NCHW:
		w = off % s.W
		off /= s.W
		h = off % s.H
		off /= s.H
		c = off % s.C
		n = off / s.C
	case CHWN:
		n = off % s.N
		off /= s.N
		w = off % s.W
		off /= s.W
		h = off % s.H
		c = off / s.H
	case NHWC:
		c = off % s.C
		off /= s.C
		w = off % s.W
		off /= s.W
		h = off % s.H
		n = off / s.H
	case HWCN:
		n = off % s.N
		off /= s.N
		c = off % s.C
		off /= s.C
		w = off % s.W
		h = off / s.W
	default:
		panic(fmt.Sprintf("tensor: invalid layout %v", l))
	}
	return n, c, h, w
}

// Tensor is a dense 4-D array of float32 values stored in a single backing
// slice according to a Layout.
type Tensor struct {
	Shape  Shape
	Layout Layout
	Data   []float32
}

// New allocates a zero-filled tensor with the given shape and layout.
func New(shape Shape, layout Layout) *Tensor {
	if !shape.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", shape))
	}
	if !layout.Valid() {
		panic(fmt.Sprintf("tensor: invalid layout %v", layout))
	}
	return &Tensor{
		Shape:  shape,
		Layout: layout,
		Data:   make([]float32, shape.Elems()),
	}
}

// NewFrom wraps an existing backing slice.  The slice length must match the
// shape element count exactly.
func NewFrom(shape Shape, layout Layout, data []float32) (*Tensor, error) {
	if !shape.Valid() {
		return nil, fmt.Errorf("tensor: invalid shape %v", shape)
	}
	if !layout.Valid() {
		return nil, fmt.Errorf("tensor: invalid layout %v", layout)
	}
	if len(data) != shape.Elems() {
		return nil, fmt.Errorf("tensor: data length %d does not match shape %v (%d elements)",
			len(data), shape, shape.Elems())
	}
	return &Tensor{Shape: shape, Layout: layout, Data: data}, nil
}

// At returns the element at logical coordinate (n,c,h,w).
func (t *Tensor) At(n, c, h, w int) float32 {
	t.check(n, c, h, w)
	return t.Data[t.Shape.Offset(t.Layout, n, c, h, w)]
}

// Set stores v at logical coordinate (n,c,h,w).
func (t *Tensor) Set(n, c, h, w int, v float32) {
	t.check(n, c, h, w)
	t.Data[t.Shape.Offset(t.Layout, n, c, h, w)] = v
}

// Offset returns the linear offset of (n,c,h,w) under the tensor's layout.
func (t *Tensor) Offset(n, c, h, w int) int {
	return t.Shape.Offset(t.Layout, n, c, h, w)
}

func (t *Tensor) check(n, c, h, w int) {
	s := t.Shape
	if n < 0 || n >= s.N || c < 0 || c >= s.C || h < 0 || h >= s.H || w < 0 || w >= s.W {
		panic(fmt.Sprintf("tensor: index (%d,%d,%d,%d) out of range for shape %v", n, c, h, w, s))
	}
}

// Clone returns a deep copy of the tensor.
func (t *Tensor) Clone() *Tensor {
	out := &Tensor{Shape: t.Shape, Layout: t.Layout, Data: make([]float32, len(t.Data))}
	copy(out.Data, t.Data)
	return out
}

// Bytes returns the storage size of the tensor in bytes.
func (t *Tensor) Bytes() int64 { return t.Shape.Bytes() }

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// String summarises the tensor (it does not print the data).
func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor{%v %v %d elems}", t.Shape, t.Layout, t.Shape.Elems())
}
