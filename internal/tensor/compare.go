package tensor

import (
	"fmt"
	"math"
)

// MaxAbsDiff returns the largest absolute element-wise difference between two
// tensors at the same logical coordinate.  The tensors may use different
// layouts; they must have the same shape.
func MaxAbsDiff(a, b *Tensor) (float64, error) {
	if a.Shape != b.Shape {
		return 0, fmt.Errorf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape)
	}
	s := a.Shape
	var maxDiff float64
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					d := math.Abs(float64(a.At(n, c, h, w)) - float64(b.At(n, c, h, w)))
					if d > maxDiff {
						maxDiff = d
					}
				}
			}
		}
	}
	return maxDiff, nil
}

// AllClose reports whether two tensors agree element-wise within tol at every
// logical coordinate, regardless of layout.
func AllClose(a, b *Tensor, tol float64) bool {
	d, err := MaxAbsDiff(a, b)
	return err == nil && d <= tol
}

// RelClose reports whether two tensors agree within a mixed absolute/relative
// tolerance: |a-b| <= atol + rtol*|b| at every logical coordinate.  It is the
// right comparison for convolution outputs whose magnitude grows with the
// reduction length C*Fh*Fw.
func RelClose(a, b *Tensor, atol, rtol float64) bool {
	if a.Shape != b.Shape {
		return false
	}
	s := a.Shape
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					av := float64(a.At(n, c, h, w))
					bv := float64(b.At(n, c, h, w))
					if math.Abs(av-bv) > atol+rtol*math.Abs(bv) {
						return false
					}
				}
			}
		}
	}
	return true
}

// Checksum returns a layout-independent checksum of the logical contents,
// useful for quickly asserting that an in-place optimisation did not alter
// the data.
func Checksum(t *Tensor) float64 {
	s := t.Shape
	var sum float64
	i := 0
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					// Weight by position so permuted data does not collide.
					sum += float64(t.At(n, c, h, w)) * float64(1+i%97)
					i++
				}
			}
		}
	}
	return sum
}
