package tensor

import "fmt"

// CanReinterpret reports whether a tensor of shape from under layout l can be
// relabelled with shape to (same element count) without moving any data, i.e.
// whether the linearisation of the canonical (N,C,H,W) traversal is the same
// for both shapes.
//
// Two cases qualify:
//
//   - NCHW: the linear order is exactly the canonical traversal, so any
//     element-count-preserving reshape is a pure reinterpretation.
//   - CHWN with an unchanged batch dimension: the batch index is innermost
//     with stride 1 and the (C,H,W) block is traversed canonically above it,
//     so merging or splitting the feature dimensions keeps every element in
//     place.  This is the common flattening boundary (conv/pool output into a
//     fully-connected layer), which preserves N by construction.
//
// The other layouts interleave C with the spatial dimensions and never
// qualify.
func CanReinterpret(from, to Shape, l Layout) bool {
	if from.Elems() != to.Elems() {
		return false
	}
	if from == to {
		// The identity relabelling moves nothing under any layout.
		return true
	}
	switch l {
	case NCHW:
		return true
	case CHWN:
		return from.N == to.N
	default:
		return false
	}
}

// Reshape returns a tensor with the new shape sharing t's backing slice when
// the relabelling is a pure reinterpretation (see CanReinterpret), reporting
// true.  Otherwise it returns nil and false; callers needing the general case
// fall back to a canonical-order copy (ReshapeInto).
func (t *Tensor) Reshape(shape Shape) (*Tensor, bool) {
	if !CanReinterpret(t.Shape, shape, t.Layout) {
		return nil, false
	}
	return &Tensor{Shape: shape, Layout: t.Layout, Data: t.Data}, true
}

// ReshapeInto copies t into dst, which must hold the same number of elements,
// carrying values in canonical (N,C,H,W) order: the i-th element of t's
// canonical traversal becomes the i-th element of dst's canonical traversal.
// When both linearisations already agree with the canonical order the copy
// degenerates to a single memmove.
func ReshapeInto(t, dst *Tensor) error {
	if t.Shape.Elems() != dst.Shape.Elems() {
		return fmt.Errorf("tensor: cannot reshape %v into %v", t.Shape, dst.Shape)
	}
	if CanReinterpret(t.Shape, dst.Shape, t.Layout) && dst.Layout == t.Layout {
		copy(dst.Data, t.Data)
		return nil
	}
	// General path: walk both canonical traversals in lockstep.
	src := canonicalOrder(t)
	s := dst.Shape
	i := 0
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					dst.Data[s.Offset(dst.Layout, n, c, h, w)] = src[i]
					i++
				}
			}
		}
	}
	return nil
}

// canonicalOrder returns t's elements in canonical (N,C,H,W) traversal order.
// For NCHW tensors that is the backing slice itself; other layouts are
// gathered into a fresh slice.
func canonicalOrder(t *Tensor) []float32 {
	if t.Layout == NCHW {
		return t.Data
	}
	s := t.Shape
	sn, sc, sh, sw := s.Strides(t.Layout)
	out := make([]float32, s.Elems())
	i := 0
	for n := 0; n < s.N; n++ {
		for c := 0; c < s.C; c++ {
			for h := 0; h < s.H; h++ {
				base := n*sn + c*sc + h*sh
				for w := 0; w < s.W; w++ {
					out[i] = t.Data[base+w*sw]
					i++
				}
			}
		}
	}
	return out
}
