package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// Convert returns a copy of t re-linearised under the target layout.  If the
// target layout equals the tensor's current layout the result is still a
// fresh copy, so callers may always mutate the result freely.
//
// This is the functional reference for the GPU layout-transformation kernels
// modelled in internal/kernels; the kernel implementations are tested against
// it.
func Convert(t *Tensor, target Layout) *Tensor {
	if !target.Valid() {
		panic(fmt.Sprintf("tensor: invalid target layout %v", target))
	}
	out := New(t.Shape, target)
	if target == t.Layout {
		copy(out.Data, t.Data)
		return out
	}
	convertParallel(t, out)
	return out
}

// ConvertInto re-linearises t into dst, which must have the same shape.
// It is the allocation-free variant of Convert.
func ConvertInto(t, dst *Tensor) error {
	if t.Shape != dst.Shape {
		return fmt.Errorf("tensor: convert shape mismatch %v vs %v", t.Shape, dst.Shape)
	}
	if t.Layout == dst.Layout {
		copy(dst.Data, t.Data)
		return nil
	}
	convertParallel(t, dst)
	return nil
}

// convertParallel walks the logical coordinate space in the destination
// layout's linear order, splitting the outermost destination dimension across
// goroutines.  Writing sequentially in the destination is the cache-friendly
// direction on a CPU, mirroring the "coalesced writes" goal of the GPU
// transpose kernel.
func convertParallel(src, dst *Tensor) {
	s := src.Shape
	workers := runtime.GOMAXPROCS(0)
	if workers > s.Elems() {
		workers = 1
	}
	// Partition by the slowest-varying destination dimension so each worker
	// writes a contiguous region of dst.Data.
	type rng struct{ lo, hi int }
	var outer int
	switch dst.Layout {
	case NCHW, NHWC:
		outer = s.N
	case CHWN:
		outer = s.C
	case HWCN:
		outer = s.H
	}
	if workers > outer {
		workers = outer
	}
	if workers <= 1 {
		convertRange(src, dst, 0, outer)
		return
	}
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * outer / workers
		hi := (wkr + 1) * outer / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(r rng) {
			defer wg.Done()
			convertRange(src, dst, r.lo, r.hi)
		}(rng{lo, hi})
	}
	wg.Wait()
}

// convertRange converts the slice [lo,hi) of the destination's outermost
// logical dimension.
func convertRange(src, dst *Tensor, lo, hi int) {
	s := src.Shape
	sn, sc, sh, sw := s.Strides(src.Layout)
	dn, dc, dh, dw := s.Strides(dst.Layout)
	switch dst.Layout {
	case NCHW, NHWC:
		for n := lo; n < hi; n++ {
			for c := 0; c < s.C; c++ {
				for h := 0; h < s.H; h++ {
					sBase := n*sn + c*sc + h*sh
					dBase := n*dn + c*dc + h*dh
					for w := 0; w < s.W; w++ {
						dst.Data[dBase+w*dw] = src.Data[sBase+w*sw]
					}
				}
			}
		}
	case CHWN:
		for c := lo; c < hi; c++ {
			for h := 0; h < s.H; h++ {
				for w := 0; w < s.W; w++ {
					sBase := c*sc + h*sh + w*sw
					dBase := c*dc + h*dh + w*dw
					for n := 0; n < s.N; n++ {
						dst.Data[dBase+n*dn] = src.Data[sBase+n*sn]
					}
				}
			}
		}
	case HWCN:
		for h := lo; h < hi; h++ {
			for w := 0; w < s.W; w++ {
				for c := 0; c < s.C; c++ {
					sBase := h*sh + w*sw + c*sc
					dBase := h*dh + w*dw + c*dc
					for n := 0; n < s.N; n++ {
						dst.Data[dBase+n*dn] = src.Data[sBase+n*sn]
					}
				}
			}
		}
	}
}
