package tensor

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestLayoutString(t *testing.T) {
	cases := map[Layout]string{
		NCHW:       "NCHW",
		CHWN:       "CHWN",
		NHWC:       "NHWC",
		HWCN:       "HWCN",
		Layout(42): "Layout(42)",
	}
	for l, want := range cases {
		if got := l.String(); got != want {
			t.Errorf("Layout(%d).String() = %q, want %q", int(l), got, want)
		}
	}
}

func TestParseLayout(t *testing.T) {
	for _, l := range Layouts {
		got, err := ParseLayout(l.String())
		if err != nil {
			t.Fatalf("ParseLayout(%q): %v", l.String(), err)
		}
		if got != l {
			t.Errorf("ParseLayout(%q) = %v, want %v", l.String(), got, l)
		}
	}
	if _, err := ParseLayout("nchw"); err != nil {
		t.Errorf("ParseLayout should be case-insensitive: %v", err)
	}
	if _, err := ParseLayout("WXYZ"); err == nil {
		t.Errorf("ParseLayout(WXYZ) should fail")
	}
}

func TestLayoutValid(t *testing.T) {
	for _, l := range Layouts {
		if !l.Valid() {
			t.Errorf("%v should be valid", l)
		}
	}
	if Layout(-1).Valid() || Layout(99).Valid() {
		t.Errorf("out-of-range layouts must be invalid")
	}
}

func TestShapeElemsBytes(t *testing.T) {
	s := Shape{N: 2, C: 3, H: 4, W: 5}
	if s.Elems() != 120 {
		t.Errorf("Elems = %d, want 120", s.Elems())
	}
	if s.Bytes() != 480 {
		t.Errorf("Bytes = %d, want 480", s.Bytes())
	}
	if s.String() != "2x3x4x5" {
		t.Errorf("String = %q", s.String())
	}
}

func TestShapeValid(t *testing.T) {
	if !(Shape{1, 1, 1, 1}).Valid() {
		t.Error("1x1x1x1 should be valid")
	}
	for _, s := range []Shape{{0, 1, 1, 1}, {1, 0, 1, 1}, {1, 1, 0, 1}, {1, 1, 1, 0}, {-1, 2, 2, 2}} {
		if s.Valid() {
			t.Errorf("%v should be invalid", s)
		}
	}
}

func TestStridesInnermost(t *testing.T) {
	s := Shape{N: 4, C: 3, H: 5, W: 7}
	cases := []struct {
		layout    Layout
		wantInner string
	}{
		{NCHW, "W"}, {CHWN, "N"}, {NHWC, "C"}, {HWCN, "N"},
	}
	for _, c := range cases {
		sn, sc, sh, sw := s.Strides(c.layout)
		strides := map[string]int{"N": sn, "C": sc, "H": sh, "W": sw}
		if strides[c.wantInner] != 1 {
			t.Errorf("%v: stride of %s = %d, want 1", c.layout, c.wantInner, strides[c.wantInner])
		}
		// The strides must be a permutation such that the product of the
		// largest stride and its dimension extent equals the element count.
		if sn*1 < 0 || sc < 0 || sh < 0 || sw < 0 {
			t.Errorf("%v: negative stride", c.layout)
		}
	}
}

func TestOffsetBijection(t *testing.T) {
	s := Shape{N: 3, C: 2, H: 4, W: 5}
	for _, l := range Layouts {
		seen := make(map[int]bool, s.Elems())
		for n := 0; n < s.N; n++ {
			for c := 0; c < s.C; c++ {
				for h := 0; h < s.H; h++ {
					for w := 0; w < s.W; w++ {
						off := s.Offset(l, n, c, h, w)
						if off < 0 || off >= s.Elems() {
							t.Fatalf("%v: offset %d out of range", l, off)
						}
						if seen[off] {
							t.Fatalf("%v: offset %d visited twice", l, off)
						}
						seen[off] = true
					}
				}
			}
		}
		if len(seen) != s.Elems() {
			t.Errorf("%v: only %d distinct offsets, want %d", l, len(seen), s.Elems())
		}
	}
}

func TestCoordInvertsOffset(t *testing.T) {
	s := Shape{N: 3, C: 5, H: 2, W: 7}
	for _, l := range Layouts {
		for off := 0; off < s.Elems(); off++ {
			n, c, h, w := s.Coord(l, off)
			if got := s.Offset(l, n, c, h, w); got != off {
				t.Fatalf("%v: Offset(Coord(%d)) = %d", l, off, got)
			}
		}
	}
}

// TestCoordOffsetRoundTripQuick property-tests the Offset/Coord bijection on
// randomly drawn shapes and coordinates.
func TestCoordOffsetRoundTripQuick(t *testing.T) {
	f := func(rawN, rawC, rawH, rawW uint8, li uint8, pick uint32) bool {
		s := Shape{
			N: int(rawN%8) + 1,
			C: int(rawC%8) + 1,
			H: int(rawH%8) + 1,
			W: int(rawW%8) + 1,
		}
		l := Layouts[int(li)%len(Layouts)]
		off := int(pick) % s.Elems()
		n, c, h, w := s.Coord(l, off)
		if n < 0 || n >= s.N || c < 0 || c >= s.C || h < 0 || h >= s.H || w < 0 || w >= s.W {
			return false
		}
		return s.Offset(l, n, c, h, w) == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	mustPanic(t, func() { New(Shape{0, 1, 1, 1}, NCHW) })
	mustPanic(t, func() { New(Shape{1, 1, 1, 1}, Layout(9)) })
}

func TestNewFromValidation(t *testing.T) {
	s := Shape{N: 1, C: 1, H: 2, W: 2}
	if _, err := NewFrom(s, NCHW, make([]float32, 3)); err == nil {
		t.Error("length mismatch must be rejected")
	}
	if _, err := NewFrom(s, Layout(17), make([]float32, 4)); err == nil {
		t.Error("invalid layout must be rejected")
	}
	if _, err := NewFrom(Shape{}, NCHW, nil); err == nil {
		t.Error("invalid shape must be rejected")
	}
	tt, err := NewFrom(s, NCHW, []float32{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if tt.At(0, 0, 1, 1) != 4 {
		t.Errorf("At(0,0,1,1) = %v, want 4", tt.At(0, 0, 1, 1))
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	s := Shape{N: 2, C: 3, H: 4, W: 5}
	for _, l := range Layouts {
		tt := New(s, l)
		want := make(map[[4]int]float32)
		r := rand.New(rand.NewSource(1))
		for n := 0; n < s.N; n++ {
			for c := 0; c < s.C; c++ {
				for h := 0; h < s.H; h++ {
					for w := 0; w < s.W; w++ {
						v := r.Float32()
						tt.Set(n, c, h, w, v)
						want[[4]int{n, c, h, w}] = v
					}
				}
			}
		}
		for k, v := range want {
			if got := tt.At(k[0], k[1], k[2], k[3]); got != v {
				t.Fatalf("%v: At%v = %v, want %v", l, k, got, v)
			}
		}
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	tt := New(Shape{1, 1, 2, 2}, NCHW)
	mustPanic(t, func() { tt.At(1, 0, 0, 0) })
	mustPanic(t, func() { tt.At(0, 0, -1, 0) })
	mustPanic(t, func() { tt.Set(0, 0, 0, 2, 1) })
}

func TestCloneIndependence(t *testing.T) {
	a := Sequential(Shape{1, 2, 2, 2}, NCHW)
	b := a.Clone()
	b.Set(0, 0, 0, 0, 99)
	if a.At(0, 0, 0, 0) == 99 {
		t.Error("Clone must not share backing storage")
	}
	if !reflect.DeepEqual(a.Shape, b.Shape) || a.Layout != b.Layout {
		t.Error("Clone must preserve shape and layout")
	}
}

func TestFill(t *testing.T) {
	tt := New(Shape{2, 2, 2, 2}, CHWN)
	tt.Fill(3.5)
	for _, v := range tt.Data {
		if v != 3.5 {
			t.Fatalf("Fill left value %v", v)
		}
	}
}

func TestTensorString(t *testing.T) {
	tt := New(Shape{1, 2, 3, 4}, CHWN)
	if got := tt.String(); got == "" {
		t.Error("String must not be empty")
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
