package tensor

// Deterministic tensor generators.  The paper's experiments run on MNIST,
// CIFAR-10 and ImageNet images; the memory behaviour studied here depends on
// tensor *shape* and layout rather than on pixel values, so the library uses
// reproducible synthetic data (see DESIGN.md, substitution table).
//
// A splitmix64 generator is used instead of math/rand so that the same seed
// always produces the same tensor regardless of Go version, which keeps the
// cross-implementation correctness tests byte-for-byte stable.

// rng is a splitmix64 pseudo-random number generator.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float32 in [0,1).
func (r *rng) float32() float32 {
	return float32(r.next()>>40) / float32(1<<24)
}

// Random returns a tensor whose logical contents are a deterministic function
// of the seed and the logical coordinate only: the same seed produces the
// same logical tensor in every layout.  Values lie in [-1, 1).
func Random(shape Shape, layout Layout, seed uint64) *Tensor {
	t := New(shape, layout)
	r := newRNG(seed)
	// Generate in canonical NCHW logical order so that the values attached
	// to each logical coordinate are layout independent.
	for n := 0; n < shape.N; n++ {
		for c := 0; c < shape.C; c++ {
			for h := 0; h < shape.H; h++ {
				for w := 0; w < shape.W; w++ {
					v := r.float32()*2 - 1
					t.Data[shape.Offset(layout, n, c, h, w)] = v
				}
			}
		}
	}
	return t
}

// Sequential returns a tensor whose element at logical coordinate (n,c,h,w)
// equals its canonical NCHW linear index.  Useful in tests: after a layout
// conversion each logical coordinate must still carry its own index.
func Sequential(shape Shape, layout Layout) *Tensor {
	t := New(shape, layout)
	i := 0
	for n := 0; n < shape.N; n++ {
		for c := 0; c < shape.C; c++ {
			for h := 0; h < shape.H; h++ {
				for w := 0; w < shape.W; w++ {
					t.Data[shape.Offset(layout, n, c, h, w)] = float32(i)
					i++
				}
			}
		}
	}
	return t
}

// Filters returns a deterministic 4-D filter bank with shape
// (Co, Ci, Fh, Fw) stored as a Tensor with N=Co, C=Ci, H=Fh, W=Fw.
// Filter banks always use the NCHW layout ordering (Co outermost) in this
// library, matching both cuda-convnet and Caffe weight storage.
func Filters(co, ci, fh, fw int, seed uint64) *Tensor {
	return Random(Shape{N: co, C: ci, H: fh, W: fw}, NCHW, seed)
}
