package tensor

import (
	"testing"
	"testing/quick"
)

func TestConvertPreservesLogicalValues(t *testing.T) {
	s := Shape{N: 4, C: 3, H: 5, W: 6}
	src := Random(s, NCHW, 7)
	for _, dst := range Layouts {
		got := Convert(src, dst)
		if got.Layout != dst {
			t.Fatalf("Convert layout = %v, want %v", got.Layout, dst)
		}
		if !AllClose(src, got, 0) {
			t.Errorf("Convert to %v altered logical values", dst)
		}
	}
}

func TestConvertRoundTrip(t *testing.T) {
	s := Shape{N: 8, C: 16, H: 7, W: 7}
	orig := Random(s, CHWN, 11)
	for _, mid := range Layouts {
		back := Convert(Convert(orig, mid), CHWN)
		if !AllClose(orig, back, 0) {
			t.Errorf("round trip via %v altered data", mid)
		}
	}
}

func TestConvertSameLayoutIsCopy(t *testing.T) {
	src := Random(Shape{2, 2, 3, 3}, NHWC, 3)
	got := Convert(src, NHWC)
	got.Data[0] = 1234
	if src.Data[0] == 1234 {
		t.Error("Convert to same layout must return an independent copy")
	}
}

func TestConvertIntoShapeMismatch(t *testing.T) {
	a := New(Shape{1, 1, 2, 2}, NCHW)
	b := New(Shape{1, 1, 2, 3}, CHWN)
	if err := ConvertInto(a, b); err == nil {
		t.Error("shape mismatch must be rejected")
	}
}

func TestConvertIntoMatchesConvert(t *testing.T) {
	s := Shape{N: 3, C: 4, H: 5, W: 2}
	src := Random(s, NCHW, 5)
	for _, l := range Layouts {
		dst := New(s, l)
		if err := ConvertInto(src, dst); err != nil {
			t.Fatal(err)
		}
		want := Convert(src, l)
		if !AllClose(want, dst, 0) {
			t.Errorf("ConvertInto(%v) differs from Convert", l)
		}
	}
}

// Property: converting a Sequential tensor to any layout keeps each logical
// coordinate's canonical index attached to it.
func TestConvertSequentialProperty(t *testing.T) {
	f := func(rawN, rawC, rawH, rawW, li, lj uint8) bool {
		s := Shape{
			N: int(rawN%5) + 1,
			C: int(rawC%5) + 1,
			H: int(rawH%5) + 1,
			W: int(rawW%5) + 1,
		}
		from := Layouts[int(li)%len(Layouts)]
		to := Layouts[int(lj)%len(Layouts)]
		src := Sequential(s, from)
		dst := Convert(src, to)
		idx := 0
		for n := 0; n < s.N; n++ {
			for c := 0; c < s.C; c++ {
				for h := 0; h < s.H; h++ {
					for w := 0; w < s.W; w++ {
						if dst.At(n, c, h, w) != float32(idx) {
							return false
						}
						idx++
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRandomIsLayoutIndependent(t *testing.T) {
	s := Shape{N: 3, C: 2, H: 4, W: 4}
	a := Random(s, NCHW, 99)
	b := Random(s, CHWN, 99)
	if !AllClose(a, b, 0) {
		t.Error("Random with the same seed must produce the same logical tensor in every layout")
	}
	c := Random(s, NCHW, 100)
	if AllClose(a, c, 0) {
		t.Error("different seeds should produce different tensors")
	}
}

func TestRandomRange(t *testing.T) {
	tt := Random(Shape{2, 2, 8, 8}, NCHW, 1)
	for _, v := range tt.Data {
		if v < -1 || v >= 1 {
			t.Fatalf("Random value %v outside [-1,1)", v)
		}
	}
}

func TestFiltersShape(t *testing.T) {
	f := Filters(16, 3, 5, 5, 2)
	want := Shape{N: 16, C: 3, H: 5, W: 5}
	if f.Shape != want {
		t.Errorf("Filters shape = %v, want %v", f.Shape, want)
	}
}

func TestMaxAbsDiffShapeMismatch(t *testing.T) {
	a := New(Shape{1, 1, 2, 2}, NCHW)
	b := New(Shape{1, 2, 2, 2}, NCHW)
	if _, err := MaxAbsDiff(a, b); err == nil {
		t.Error("shape mismatch must error")
	}
	if AllClose(a, b, 1) {
		t.Error("AllClose must be false on shape mismatch")
	}
	if RelClose(a, b, 1, 1) {
		t.Error("RelClose must be false on shape mismatch")
	}
}

func TestRelClose(t *testing.T) {
	s := Shape{1, 1, 2, 2}
	a := New(s, NCHW)
	b := New(s, NCHW)
	a.Fill(1000)
	b.Fill(1000.5)
	if !RelClose(a, b, 0, 1e-3) {
		t.Error("values within relative tolerance should pass")
	}
	if RelClose(a, b, 0, 1e-6) {
		t.Error("values outside relative tolerance should fail")
	}
}

func TestChecksumDetectsPermutation(t *testing.T) {
	s := Shape{2, 2, 3, 3}
	a := Sequential(s, NCHW)
	b := a.Clone()
	// Swap two values: the checksum must change.
	b.Data[0], b.Data[1] = b.Data[1], b.Data[0]
	if Checksum(a) == Checksum(b) {
		t.Error("Checksum failed to detect a permutation")
	}
	// Checksum must be layout independent.
	if Checksum(a) != Checksum(Convert(a, CHWN)) {
		t.Error("Checksum must be layout independent")
	}
}

func BenchmarkConvertCHWNToNCHW(b *testing.B) {
	src := Random(Shape{N: 128, C: 16, H: 28, W: 28}, CHWN, 1)
	dst := New(src.Shape, NCHW)
	b.SetBytes(src.Bytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ConvertInto(src, dst); err != nil {
			b.Fatal(err)
		}
	}
}
