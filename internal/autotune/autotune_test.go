package autotune

import (
	"fmt"
	"math"
	"testing"

	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
)

func TestHillClimbFindsQuadraticMinimum(t *testing.T) {
	// Convex cost with minimum at (5, 3): the climb must land on it.
	cost := func(p []int) (float64, error) {
		return math.Pow(float64(p[0]-5), 2) + math.Pow(float64(p[1]-3), 2), nil
	}
	neighbours := func(p []int) [][]int {
		return [][]int{{p[0] + 1, p[1]}, {p[0] - 1, p[1]}, {p[0], p[1] + 1}, {p[0], p[1] - 1}}
	}
	res, err := HillClimb([]int{1, 1}, neighbours, cost, 50)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Point[0] != 5 || res.Best.Point[1] != 3 {
		t.Errorf("best point = %v, want [5 3]", res.Best.Point)
	}
	if res.Best.CostUS != 0 {
		t.Errorf("best cost = %v, want 0", res.Best.CostUS)
	}
	if res.Iterations == 0 || len(res.Evaluated) == 0 {
		t.Error("search trace must be recorded")
	}
}

func TestHillClimbStopsWhenNoImprovement(t *testing.T) {
	calls := 0
	cost := func(p []int) (float64, error) {
		calls++
		return 1, nil // flat landscape
	}
	neighbours := func(p []int) [][]int { return [][]int{{p[0] + 1}} }
	res, err := HillClimb([]int{1}, neighbours, cost, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 1 {
		t.Errorf("flat landscape should stop after one iteration, took %d", res.Iterations)
	}
	if calls > 3 {
		t.Errorf("flat landscape should need few evaluations, used %d", calls)
	}
}

func TestHillClimbInfeasibleNeighboursAreSkipped(t *testing.T) {
	cost := func(p []int) (float64, error) {
		if p[0] > 3 {
			return 0, fmt.Errorf("infeasible")
		}
		return float64(10 - p[0]), nil
	}
	neighbours := func(p []int) [][]int { return [][]int{{p[0] + 1}, {p[0] - 1}} }
	res, err := HillClimb([]int{1}, neighbours, cost, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Point[0] != 3 {
		t.Errorf("best feasible point = %v, want [3]", res.Best.Point)
	}
}

func TestHillClimbErrors(t *testing.T) {
	if _, err := HillClimb(nil, nil, nil, 5); err == nil {
		t.Error("empty start must be rejected")
	}
	bad := func(p []int) (float64, error) { return 0, fmt.Errorf("nope") }
	if _, err := HillClimb([]int{1}, func(p []int) [][]int { return nil }, bad, 5); err == nil {
		t.Error("infeasible start must be rejected")
	}
}

func TestHillClimbDefaultIterationCap(t *testing.T) {
	cost := func(p []int) (float64, error) { return -float64(p[0]), nil } // unbounded improvement
	neighbours := func(p []int) [][]int { return [][]int{{p[0] + 1}} }
	res, err := HillClimb([]int{0}, neighbours, cost, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 16 {
		t.Errorf("default cap should be 16 iterations, got %d", res.Iterations)
	}
}

func TestTunePoolExpansionImprovesOverlappedPooling(t *testing.T) {
	d := gpusim.TitanBlack()
	cfg := kernels.PoolConfig{N: 128, C: 96, H: 55, W: 55, Window: 3, Stride: 2, Op: kernels.MaxPool} // POOL5
	e, res, err := TunePoolExpansion(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e.H < 1 || e.W < 1 {
		t.Fatalf("invalid expansion %+v", e)
	}
	base := gpusim.EstimateTime(d, kernels.PoolCHWNCoarsenedCost(d, cfg, kernels.PoolExpansion{H: 1, W: 1})).TotalUS
	tuned := gpusim.EstimateTime(d, kernels.PoolCHWNCoarsenedCost(d, cfg, e)).TotalUS
	if tuned > base {
		t.Errorf("tuned expansion %+v (%.0fus) should not lose to the untuned kernel (%.0fus)", e, tuned, base)
	}
	if e.H == 1 && e.W == 1 {
		t.Error("overlapped pooling should benefit from some coarsening")
	}
	if res.Best.CostUS != tuned {
		t.Errorf("result cost %.2f does not match re-evaluated cost %.2f", res.Best.CostUS, tuned)
	}
}

func TestTunePoolExpansionMatchesExhaustiveSearch(t *testing.T) {
	d := gpusim.TitanBlack()
	cfgs := []kernels.PoolConfig{
		{N: 128, C: 64, H: 24, W: 24, Window: 3, Stride: 2, Op: kernels.MaxPool},
		{N: 128, C: 96, H: 55, W: 55, Window: 3, Stride: 2, Op: kernels.MaxPool},
		{N: 128, C: 16, H: 28, W: 28, Window: 2, Stride: 2, Op: kernels.MaxPool},
	}
	for _, cfg := range cfgs {
		tuned, res, err := TunePoolExpansion(d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, bestCost, probes, err := ExhaustivePoolExpansion(d, cfg, 6)
		if err != nil {
			t.Fatal(err)
		}
		// The hill climb should get within 10% of the exhaustive optimum
		// while probing fewer points.
		if res.Best.CostUS > bestCost*1.10 {
			t.Errorf("%v: hill climb %+v %.1fus misses exhaustive optimum %.1fus by more than 10%%",
				cfg, tuned, res.Best.CostUS, bestCost)
		}
		if len(res.Evaluated) >= probes {
			t.Errorf("%v: hill climb evaluated %d points, exhaustive %d — pruning should help",
				cfg, len(res.Evaluated), probes)
		}
	}
}

func TestTunePoolExpansionValidation(t *testing.T) {
	d := gpusim.TitanBlack()
	if _, _, err := TunePoolExpansion(d, kernels.PoolConfig{}); err == nil {
		t.Error("invalid pool config must be rejected")
	}
	if _, _, _, err := ExhaustivePoolExpansion(d, kernels.PoolConfig{}, 4); err == nil {
		t.Error("invalid pool config must be rejected")
	}
}

func TestExhaustivePoolExpansionDefaultsMaxFactor(t *testing.T) {
	d := gpusim.TitanBlack()
	cfg := kernels.PoolConfig{N: 32, C: 16, H: 12, W: 12, Window: 3, Stride: 2, Op: kernels.MaxPool}
	_, _, probes, err := ExhaustivePoolExpansion(d, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if probes == 0 {
		t.Error("exhaustive search must probe at least one point")
	}
}
