// Package autotune implements the hill-climbing search the paper uses to pick
// the working-set expansion (thread coarsening) factors of the optimised
// pooling kernel (Section V.A): "With an initial factor of 2, the expansion
// factor continues to increase linearly if the performance improves.
// Otherwise it stops as further expansion leads to high register pressure."
package autotune

import (
	"fmt"

	"memcnn/internal/gpusim"
	"memcnn/internal/kernels"
)

// Candidate is one point of a discrete tuning space together with the cost
// the tuner is minimising (modelled execution time in microseconds).
type Candidate struct {
	Point  []int
	CostUS float64
}

// CostFunc evaluates one point of the tuning space.  Returning an error marks
// the point as infeasible.
type CostFunc func(point []int) (float64, error)

// Result summarises a tuning run.
type Result struct {
	Best       Candidate
	Evaluated  []Candidate // every point probed, in probe order
	Iterations int
}

// HillClimb minimises cost over an integer space starting from `start`.
// In each iteration it probes every neighbour produced by `neighbours` and
// moves to the best improving one; it stops when no neighbour improves or
// maxIterations is reached.  It is the generic engine behind the pooling
// tuner and is reusable for other kernel parameters.
func HillClimb(start []int, neighbours func(point []int) [][]int, cost CostFunc, maxIterations int) (Result, error) {
	if len(start) == 0 {
		return Result{}, fmt.Errorf("autotune: empty starting point")
	}
	if maxIterations <= 0 {
		maxIterations = 16
	}
	cur := append([]int(nil), start...)
	curCost, err := cost(cur)
	if err != nil {
		return Result{}, fmt.Errorf("autotune: starting point infeasible: %w", err)
	}
	res := Result{Best: Candidate{Point: append([]int(nil), cur...), CostUS: curCost}}
	res.Evaluated = append(res.Evaluated, res.Best)

	for iter := 0; iter < maxIterations; iter++ {
		res.Iterations = iter + 1
		improved := false
		bestNext := res.Best
		for _, nb := range neighbours(cur) {
			c, err := cost(nb)
			if err != nil {
				continue
			}
			cand := Candidate{Point: append([]int(nil), nb...), CostUS: c}
			res.Evaluated = append(res.Evaluated, cand)
			if c < bestNext.CostUS {
				bestNext = cand
				improved = true
			}
		}
		if !improved {
			break
		}
		cur = append([]int(nil), bestNext.Point...)
		res.Best = bestNext
	}
	return res, nil
}

// TunePoolExpansion searches the pooling working-set expansion factors for a
// layer on a device, using the kernel cost model as the profiler.  It returns
// the chosen expansion and the full search trace.
func TunePoolExpansion(d *gpusim.Device, cfg kernels.PoolConfig) (kernels.PoolExpansion, Result, error) {
	if err := cfg.Validate(); err != nil {
		return kernels.PoolExpansion{}, Result{}, err
	}
	cost := func(point []int) (float64, error) {
		e := kernels.PoolExpansion{H: point[0], W: point[1]}
		if e.H < 1 || e.W < 1 || e.H > cfg.OutH() || e.W > cfg.OutW() {
			return 0, fmt.Errorf("autotune: expansion %dx%d out of range", e.H, e.W)
		}
		stats := kernels.PoolCHWNCoarsenedCost(d, cfg, e)
		return gpusim.EstimateTime(d, stats).TotalUS, nil
	}
	neighbours := func(p []int) [][]int {
		// Grow each dimension by one, the linear increase of the paper's
		// search; also allow shrinking so the climb can escape a bad start.
		return [][]int{
			{p[0] + 1, p[1]},
			{p[0], p[1] + 1},
			{p[0] + 1, p[1] + 1},
			{p[0] - 1, p[1]},
			{p[0], p[1] - 1},
		}
	}
	// The paper's search starts with an expansion factor of 2 and grows it
	// while the performance improves; the shrink neighbours let it settle
	// back to 1 when coarsening does not pay off (non-overlapped pooling).
	start := []int{2, 2}
	if cfg.OutH() < 2 {
		start[0] = 1
	}
	if cfg.OutW() < 2 {
		start[1] = 1
	}
	res, err := HillClimb(start, neighbours, cost, 12)
	if err != nil {
		return kernels.PoolExpansion{}, Result{}, err
	}
	return kernels.PoolExpansion{H: res.Best.Point[0], W: res.Best.Point[1]}, res, nil
}

// ExhaustivePoolExpansion scans the full (bounded) expansion space and
// returns the global optimum.  It is used by the ablation benchmark to check
// how close the hill-climbing pick gets while probing far fewer points.
func ExhaustivePoolExpansion(d *gpusim.Device, cfg kernels.PoolConfig, maxFactor int) (kernels.PoolExpansion, float64, int, error) {
	if err := cfg.Validate(); err != nil {
		return kernels.PoolExpansion{}, 0, 0, err
	}
	if maxFactor <= 0 {
		maxFactor = 6
	}
	best := kernels.PoolExpansion{H: 1, W: 1}
	bestCost := gpusim.EstimateTime(d, kernels.PoolCHWNCoarsenedCost(d, cfg, best)).TotalUS
	probes := 0
	for h := 1; h <= maxFactor && h <= cfg.OutH(); h++ {
		for w := 1; w <= maxFactor && w <= cfg.OutW(); w++ {
			probes++
			e := kernels.PoolExpansion{H: h, W: w}
			c := gpusim.EstimateTime(d, kernels.PoolCHWNCoarsenedCost(d, cfg, e)).TotalUS
			if c < bestCost {
				best, bestCost = e, c
			}
		}
	}
	return best, bestCost, probes, nil
}
