package autotune

import (
	"testing"

	"memcnn/internal/kernels"
	"memcnn/internal/tensor"
)

// TestSelectConvAlgorithm pins the two regimes the paper's Section IV.A
// argument predicts: a VGG-style mid-network layer (deep reduction, large
// output matrix) goes to im2col+GEMM, a single small image (nothing to
// amortise the unroll against) stays direct.
func TestSelectConvAlgorithm(t *testing.T) {
	vgg := kernels.ConvConfig{N: 32, C: 64, H: 56, W: 56, K: 128, FH: 3, FW: 3, PadH: 1, PadW: 1}
	if got := SelectConvAlgorithm(vgg); got != kernels.ConvAlgGemm {
		t.Errorf("VGG-style shape %v selected %v, want %v", vgg, got, kernels.ConvAlgGemm)
	}
	small := kernels.ConvConfig{N: 1, C: 3, H: 12, W: 12, K: 4, FH: 3, FW: 3, PadH: 1, PadW: 1}
	if got := SelectConvAlgorithm(small); got != kernels.ConvAlgDirect {
		t.Errorf("1-image small shape %v selected %v, want %v", small, got, kernels.ConvAlgDirect)
	}

	// A deep reduction alone is not enough: one tiny image keeps the
	// arithmetic volume under the floor.
	deepTiny := kernels.ConvConfig{N: 1, C: 64, H: 8, W: 8, K: 32, FH: 3, FW: 3}
	if got := SelectConvAlgorithm(deepTiny); got != kernels.ConvAlgDirect {
		t.Errorf("deep-but-tiny shape selected %v, want direct", got)
	}
	// A deep reduction over a small batch of small maps (the AlexNet conv3-5
	// regime at serving batch sizes) clears the volume floor and goes to GEMM.
	deepSmallBatch := kernels.ConvConfig{N: 4, C: 256, H: 13, W: 13, K: 384, FH: 3, FW: 3, PadH: 1, PadW: 1}
	if got := SelectConvAlgorithm(deepSmallBatch); got != kernels.ConvAlgGemm {
		t.Errorf("deep small-batch shape selected %v, want gemm", got)
	}
	// A huge batch of single-channel 1x1-reduction maps stays direct too
	// (the LeNet first-layer regime where CHWN wins in Fig. 3).
	shallow := kernels.ConvConfig{N: 128, C: 1, H: 28, W: 28, K: 16, FH: 5, FW: 5, PadH: 2, PadW: 2}
	if got := SelectConvAlgorithm(shallow); got != kernels.ConvAlgDirect {
		t.Errorf("shallow-reduction shape selected %v, want direct", got)
	}
	// Invalid configurations fall back to direct instead of panicking.
	if got := SelectConvAlgorithm(kernels.ConvConfig{}); got != kernels.ConvAlgDirect {
		t.Errorf("invalid config selected %v, want direct", got)
	}
}

// TestProbeConvAlgorithm runs the measured probe on a small layer and checks
// it returns a decision backed by two positive timings.
func TestProbeConvAlgorithm(t *testing.T) {
	cfg := kernels.ConvConfig{N: 4, C: 8, H: 10, W: 10, K: 8, FH: 3, FW: 3, PadH: 1, PadW: 1}
	alg, times, err := ProbeConvAlgorithm(cfg, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	if alg != kernels.ConvAlgDirect && alg != kernels.ConvAlgGemm {
		t.Errorf("probe returned unknown algorithm %v", alg)
	}
	if times[0] <= 0 || times[1] <= 0 {
		t.Errorf("probe timings must be positive, got %v", times)
	}
	if _, _, err := ProbeConvAlgorithm(kernels.ConvConfig{}, tensor.NCHW); err == nil {
		t.Error("invalid config must be rejected")
	}
}
