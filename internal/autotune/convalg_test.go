package autotune

import (
	"testing"

	"memcnn/internal/kernels"
	"memcnn/internal/tensor"
)

// TestSelectConvAlgorithm pins the two regimes the paper's Section IV.A
// argument predicts: a VGG-style mid-network layer (deep reduction, large
// output matrix) goes to im2col+GEMM, a single small image (nothing to
// amortise the unroll against) stays direct.
func TestSelectConvAlgorithm(t *testing.T) {
	vgg := kernels.ConvConfig{N: 32, C: 64, H: 56, W: 56, K: 128, FH: 3, FW: 3, PadH: 1, PadW: 1}
	if got := SelectConvAlgorithm(vgg); got != kernels.ConvAlgGemm {
		t.Errorf("VGG-style shape %v selected %v, want %v", vgg, got, kernels.ConvAlgGemm)
	}
	small := kernels.ConvConfig{N: 1, C: 3, H: 12, W: 12, K: 4, FH: 3, FW: 3, PadH: 1, PadW: 1}
	if got := SelectConvAlgorithm(small); got != kernels.ConvAlgDirect {
		t.Errorf("1-image small shape %v selected %v, want %v", small, got, kernels.ConvAlgDirect)
	}

	// A deep reduction alone is not enough: one tiny image keeps the
	// arithmetic volume under the floor.
	deepTiny := kernels.ConvConfig{N: 1, C: 64, H: 8, W: 8, K: 32, FH: 3, FW: 3}
	if got := SelectConvAlgorithm(deepTiny); got != kernels.ConvAlgDirect {
		t.Errorf("deep-but-tiny shape selected %v, want direct", got)
	}
	// A deep reduction over a small batch of small maps (the AlexNet conv3-5
	// regime at serving batch sizes) clears the volume floor and goes to GEMM.
	deepSmallBatch := kernels.ConvConfig{N: 4, C: 256, H: 13, W: 13, K: 384, FH: 3, FW: 3, PadH: 1, PadW: 1}
	if got := SelectConvAlgorithm(deepSmallBatch); got != kernels.ConvAlgGemm {
		t.Errorf("deep small-batch shape selected %v, want gemm", got)
	}
	// A huge batch of single-channel 1x1-reduction maps stays direct too
	// (the LeNet first-layer regime where CHWN wins in Fig. 3).
	shallow := kernels.ConvConfig{N: 128, C: 1, H: 28, W: 28, K: 16, FH: 5, FW: 5, PadH: 2, PadW: 2}
	if got := SelectConvAlgorithm(shallow); got != kernels.ConvAlgDirect {
		t.Errorf("shallow-reduction shape selected %v, want direct", got)
	}
	// Invalid configurations fall back to direct instead of panicking.
	if got := SelectConvAlgorithm(kernels.ConvConfig{}); got != kernels.ConvAlgDirect {
		t.Errorf("invalid config selected %v, want direct", got)
	}
}

// TestSelectConvAlgorithmFFTRegime pins the FFT thresholds of Section IV.A:
// big stride-1 layers with large filters go to FFT, 3×3 layers and any
// strided layer never do.
func TestSelectConvAlgorithmFFTRegime(t *testing.T) {
	// AlexNet conv2 at the full serving batch: 5×5 stride-1, 28.7G FMAs.
	alexConv2 := kernels.ConvConfig{N: 64, C: 96, H: 27, W: 27, K: 256, FH: 5, FW: 5, PadH: 2, PadW: 2}
	if got := SelectConvAlgorithm(alexConv2); got != kernels.ConvAlgFFT {
		t.Errorf("AlexNet conv2 shape selected %v, want fft", got)
	}
	// The same arithmetic volume at stride 2 throws away 3/4 of the dense
	// correlation: never FFT.  (Quadruple the batch so the FMA volume still
	// clears the FFT floor — the stride must be what disqualifies it.)
	strided := kernels.ConvConfig{N: 256, C: 96, H: 27, W: 27, K: 256, FH: 5, FW: 5, PadH: 2, PadW: 2, StrideH: 2, StrideW: 2}
	if got := SelectConvAlgorithm(strided); got == kernels.ConvAlgFFT {
		t.Errorf("stride-2 shape selected fft; stride > 1 must never pick fft")
	}
	// AlexNet conv1: 11×11 but stride 4 — the large filter alone does not
	// qualify it.
	alexConv1 := kernels.ConvConfig{N: 64, C: 3, H: 227, W: 227, K: 96, FH: 11, FW: 11, StrideH: 4, StrideW: 4}
	if got := SelectConvAlgorithm(alexConv1); got == kernels.ConvAlgFFT {
		t.Errorf("AlexNet conv1 (stride 4) selected fft, want a spatial algorithm")
	}
	// VGG conv3_1: huge volume but 3×3 filters — stays GEMM.
	vgg := kernels.ConvConfig{N: 32, C: 128, H: 56, W: 56, K: 256, FH: 3, FW: 3, PadH: 1, PadW: 1}
	if got := SelectConvAlgorithm(vgg); got != kernels.ConvAlgGemm {
		t.Errorf("VGG 3x3 shape selected %v, want gemm", got)
	}
	// Cifar10 conv2: 5×5 stride-1 but only 1.3G FMAs — under the FFT volume
	// floor, stays GEMM.
	cifar2 := kernels.ConvConfig{N: 128, C: 64, H: 16, W: 16, K: 64, FH: 5, FW: 5, PadH: 2, PadW: 2}
	if got := SelectConvAlgorithm(cifar2); got != kernels.ConvAlgGemm {
		t.Errorf("Cifar10 conv2 shape selected %v, want gemm", got)
	}
}

// TestProbeConvAlgorithm runs the measured probe on a small layer and checks
// it returns a decision backed by a positive timing per production algorithm.
func TestProbeConvAlgorithm(t *testing.T) {
	cfg := kernels.ConvConfig{N: 4, C: 8, H: 10, W: 10, K: 8, FH: 3, FW: 3, PadH: 1, PadW: 1}
	alg, times, err := ProbeConvAlgorithm(cfg, tensor.NCHW)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) != 3 {
		t.Fatalf("probe returned %d timings, want one per algorithm (3)", len(times))
	}
	want := []kernels.ConvAlgorithm{kernels.ConvAlgDirect, kernels.ConvAlgGemm, kernels.ConvAlgFFT}
	best := times[0]
	for i, pt := range times {
		if pt.Alg != want[i] {
			t.Errorf("timing %d is for %v, want %v", i, pt.Alg, want[i])
		}
		if pt.Time <= 0 {
			t.Errorf("probe timing for %v must be positive, got %v", pt.Alg, pt.Time)
		}
		if pt.Time < best.Time {
			best = pt
		}
	}
	if alg != best.Alg {
		t.Errorf("probe selected %v but fastest timing was %v", alg, best.Alg)
	}
	if _, _, err := ProbeConvAlgorithm(kernels.ConvConfig{}, tensor.NCHW); err == nil {
		t.Error("invalid config must be rejected")
	}
}
