package autotune

import (
	"time"

	"memcnn/internal/kernels"
	"memcnn/internal/tensor"
)

// Per-layer convolution algorithm selection: the CPU analogue of the paper's
// central observation that no single convolution strategy wins across layer
// shapes (Section II.B / IV.A).  The im2col+GEMM path inherits matrix
// multiplication's robustness but pays the unroll traffic, so it only wins
// once the merged matrix dimensions are large; the direct path has no
// transformation overhead and keeps small shapes cheap; the FFT path turns
// the spatial reduction into pointwise spectrum products, so it wins on big
// stride-1 layers with large filters and loses everywhere the transforms
// dominate.  The planned runtime (internal/runtime) asks this package which
// strategy each compiled conv op should record, either through the analytic
// heuristic or a measured probe.

// Thresholds of the analytic heuristic.  They mirror the paper's
// matrix-expansion argument: the GEMM reduction dimension is C·FH·FW, and the
// layer's arithmetic volume is K · (N·OutH·OutW) · (C·FH·FW) multiply-adds.
// The reduction has to clear a floor before the unrolled matrix is more
// compute than transformation overhead, and the arithmetic volume has to
// amortise the per-image unroll, the GEMM setup and the goroutine fan-out.
const (
	// GemmMinReduction is the minimum C·FH·FW for the GEMM path; below it the
	// unrolled matrix is mostly transformation overhead (the small-C regime
	// where cuda-convnet's direct kernel wins in Fig. 3).
	GemmMinReduction = 32
	// GemmMinFMAs is the minimum K·N·OutH·OutW·C·FH·FW multiply-add count;
	// a tiny layer (one small image, few filters) finishes faster in the
	// transformation-free direct kernel than the unroll machinery can start.
	GemmMinFMAs = 1 << 20
	// FFTMinArea is the minimum FH·FW for the FFT path.  Frequency-domain
	// convolution amortises its transforms over the filter area (the spectrum
	// product costs the same for a 3×3 as for an 11×11 filter), so it only
	// beats GEMM once the filters are large — 5×5 and up, the AlexNet
	// conv2 / ZFNet 7×7 regime of Section IV.A.  Every 3×3 VGG-style layer
	// stays on GEMM.
	FFTMinArea = 25
	// FFTMinFMAs is the minimum multiply-add volume for the FFT path.  The
	// K·C filter transforms are a fixed cost independent of the batch, so the
	// layer needs serious arithmetic volume before they amortise; small nets
	// (LeNet/Cifar10-scale 5×5 layers) stay on direct or GEMM.
	FFTMinFMAs = 1 << 33
)

// SelectConvAlgorithm picks the CPU convolution strategy for a layer shape
// with the analytic merged-matrix heuristic.  The FFT regime is keyed on
// filter size and stride: frequency-domain convolution computes the dense
// stride-1 correlation, so any stride over one throws most of that work away
// and FFT is never chosen for it.
func SelectConvAlgorithm(cfg kernels.ConvConfig) kernels.ConvAlgorithm {
	if err := cfg.Validate(); err != nil {
		return kernels.ConvAlgDirect
	}
	red := cfg.ReductionLength()
	fmas := cfg.FLOPs() / 2
	sh, sw := cfg.StrideH, cfg.StrideW
	if sh == 0 {
		sh = 1
	}
	if sw == 0 {
		sw = 1
	}
	if sh == 1 && sw == 1 && cfg.FH*cfg.FW >= FFTMinArea && fmas >= FFTMinFMAs {
		return kernels.ConvAlgFFT
	}
	if red >= GemmMinReduction && fmas >= GemmMinFMAs {
		return kernels.ConvAlgGemm
	}
	return kernels.ConvAlgDirect
}

// ProbeTiming is one measured probe execution: the algorithm and its wall
// time.
type ProbeTiming struct {
	Alg  kernels.ConvAlgorithm
	Time time.Duration
}

// ProbeConvAlgorithm selects the strategy by measurement instead of the
// heuristic: it runs every production kernel — direct, im2col+GEMM and FFT —
// once on a deterministic random input in the given layout and returns the
// fastest one together with the per-algorithm timings, in the order probed.
// It is the compile-time "measured probe" mode; each probe costs one full
// execution of the layer per algorithm.
func ProbeConvAlgorithm(cfg kernels.ConvConfig, layout tensor.Layout) (kernels.ConvAlgorithm, []ProbeTiming, error) {
	if err := cfg.Validate(); err != nil {
		return kernels.ConvAlgDirect, nil, err
	}
	in := tensor.Random(cfg.InputShape(), layout, 1)
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 2)
	out := tensor.New(cfg.OutputShape(), layout)
	timings := make([]ProbeTiming, 0, 3)

	start := time.Now()
	if err := kernels.ConvDirectInto(in, filters, out, cfg); err != nil {
		return kernels.ConvAlgDirect, timings, err
	}
	timings = append(timings, ProbeTiming{kernels.ConvAlgDirect, time.Since(start)})

	packed, err := kernels.PackConvFilters(filters, cfg)
	if err != nil {
		return kernels.ConvAlgDirect, timings, err
	}
	scratch := make([]float32, kernels.ConvGemmWorkspaceElems(cfg, layout))
	start = time.Now()
	if err := kernels.ConvIm2colGemmInto(in, packed, out, cfg, scratch); err != nil {
		return kernels.ConvAlgDirect, timings, err
	}
	timings = append(timings, ProbeTiming{kernels.ConvAlgGemm, time.Since(start)})

	fftScratch := make([]float32, kernels.ConvFFTWorkspaceElems(cfg))
	start = time.Now()
	if err := kernels.ConvFFTInto(in, filters, out, cfg, fftScratch); err != nil {
		return kernels.ConvAlgDirect, timings, err
	}
	timings = append(timings, ProbeTiming{kernels.ConvAlgFFT, time.Since(start)})

	best := timings[0]
	for _, t := range timings[1:] {
		if t.Time < best.Time {
			best = t
		}
	}
	return best.Alg, timings, nil
}
