package autotune

import (
	"time"

	"memcnn/internal/kernels"
	"memcnn/internal/tensor"
)

// Per-layer convolution algorithm selection: the CPU analogue of the paper's
// central observation that no single convolution strategy wins across layer
// shapes (Section II.B / IV.A).  The im2col+GEMM path inherits matrix
// multiplication's robustness but pays the unroll traffic, so it only wins
// once the merged matrix dimensions are large; the direct path has no
// transformation overhead and keeps small shapes cheap.  The planned runtime
// (internal/runtime) asks this package which strategy each compiled conv op
// should record, either through the analytic heuristic or a measured probe.

// Thresholds of the analytic heuristic.  They mirror the paper's
// matrix-expansion argument: the GEMM reduction dimension is C·FH·FW, and the
// layer's arithmetic volume is K · (N·OutH·OutW) · (C·FH·FW) multiply-adds.
// The reduction has to clear a floor before the unrolled matrix is more
// compute than transformation overhead, and the arithmetic volume has to
// amortise the per-image unroll, the GEMM setup and the goroutine fan-out.
const (
	// GemmMinReduction is the minimum C·FH·FW for the GEMM path; below it the
	// unrolled matrix is mostly transformation overhead (the small-C regime
	// where cuda-convnet's direct kernel wins in Fig. 3).
	GemmMinReduction = 32
	// GemmMinFMAs is the minimum K·N·OutH·OutW·C·FH·FW multiply-add count;
	// a tiny layer (one small image, few filters) finishes faster in the
	// transformation-free direct kernel than the unroll machinery can start.
	GemmMinFMAs = 1 << 20
)

// SelectConvAlgorithm picks the CPU convolution strategy for a layer shape
// with the analytic merged-matrix heuristic.
func SelectConvAlgorithm(cfg kernels.ConvConfig) kernels.ConvAlgorithm {
	if err := cfg.Validate(); err != nil {
		return kernels.ConvAlgDirect
	}
	red := cfg.ReductionLength()
	fmas := cfg.FLOPs() / 2
	if red >= GemmMinReduction && fmas >= GemmMinFMAs {
		return kernels.ConvAlgGemm
	}
	return kernels.ConvAlgDirect
}

// ProbeConvAlgorithm selects the strategy by measurement instead of the
// heuristic: it runs both kernels once on a deterministic random input in the
// given layout and returns the faster one together with the two measured
// times (direct first).  It is the compile-time "measured probe" mode; each
// probe costs two full executions of the layer.
func ProbeConvAlgorithm(cfg kernels.ConvConfig, layout tensor.Layout) (kernels.ConvAlgorithm, [2]time.Duration, error) {
	var times [2]time.Duration
	if err := cfg.Validate(); err != nil {
		return kernels.ConvAlgDirect, times, err
	}
	in := tensor.Random(cfg.InputShape(), layout, 1)
	filters := tensor.Filters(cfg.K, cfg.C, cfg.FH, cfg.FW, 2)
	out := tensor.New(cfg.OutputShape(), layout)

	start := time.Now()
	if err := kernels.ConvDirectInto(in, filters, out, cfg); err != nil {
		return kernels.ConvAlgDirect, times, err
	}
	times[0] = time.Since(start)

	packed, err := kernels.PackConvFilters(filters, cfg)
	if err != nil {
		return kernels.ConvAlgDirect, times, err
	}
	scratch := make([]float32, kernels.ConvGemmWorkspaceElems(cfg, layout))
	start = time.Now()
	if err := kernels.ConvIm2colGemmInto(in, packed, out, cfg, scratch); err != nil {
		return kernels.ConvAlgDirect, times, err
	}
	times[1] = time.Since(start)

	if times[1] < times[0] {
		return kernels.ConvAlgGemm, times, nil
	}
	return kernels.ConvAlgDirect, times, nil
}
