// Package netconfig reads and writes network descriptions as JSON
// configuration files, mirroring the way Caffe and cuda-convnet describe a
// CNN as a stack of layer specifications (Section IV.D).  The format carries
// an optional per-layer "layout" field — the new field the paper adds so the
// framework can record which data layout each convolutional or pooling layer
// should use — and Annotate fills that field from an execution plan.
package netconfig

import (
	"encoding/json"
	"fmt"
	"strings"

	"memcnn/internal/kernels"
	"memcnn/internal/layers"
	"memcnn/internal/network"
	"memcnn/internal/tensor"
)

// LayerSpec is one entry of the configuration file.
type LayerSpec struct {
	Name string `json:"name"`
	Type string `json:"type"` // conv, pool, relu, lrn, fc, softmax

	// Convolution parameters.
	Filters int `json:"filters,omitempty"`
	Kernel  int `json:"kernel,omitempty"`
	Stride  int `json:"stride,omitempty"`
	Pad     int `json:"pad,omitempty"`

	// Pooling parameters.
	Window  int    `json:"window,omitempty"`
	PoolOp  string `json:"pool_op,omitempty"` // "max" (default) or "avg"
	PoolStr int    `json:"pool_stride,omitempty"`

	// Fully-connected / softmax parameters.
	Outputs int `json:"outputs,omitempty"`
	Classes int `json:"classes,omitempty"`

	// LRN parameters.
	LocalSize int `json:"local_size,omitempty"`

	// Layout is the data layout the layer should use ("NCHW", "CHWN" or
	// empty/"auto" to let the optimiser decide).  This is the field the
	// paper's framework integration adds to the layer definition.
	Layout string `json:"layout,omitempty"`
}

// InputSpec describes the network input.
type InputSpec struct {
	Channels int `json:"channels"`
	Height   int `json:"height"`
	Width    int `json:"width"`
}

// NetworkSpec is the top-level configuration document.
type NetworkSpec struct {
	Name   string      `json:"name"`
	Batch  int         `json:"batch"`
	Input  InputSpec   `json:"input"`
	Layers []LayerSpec `json:"layers"`
}

// Parse decodes a JSON network specification.
func Parse(data []byte) (*NetworkSpec, error) {
	var spec NetworkSpec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("netconfig: %w", err)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// Marshal encodes the specification as indented JSON.
func (s *NetworkSpec) Marshal() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Validate checks the structural fields that do not require shape inference.
func (s *NetworkSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("netconfig: the network needs a name")
	}
	if s.Batch <= 0 {
		return fmt.Errorf("netconfig: %s: batch must be positive", s.Name)
	}
	if s.Input.Channels <= 0 || s.Input.Height <= 0 || s.Input.Width <= 0 {
		return fmt.Errorf("netconfig: %s: input dimensions must be positive", s.Name)
	}
	if len(s.Layers) == 0 {
		return fmt.Errorf("netconfig: %s: no layers", s.Name)
	}
	for i, l := range s.Layers {
		if l.Name == "" {
			return fmt.Errorf("netconfig: %s: layer %d has no name", s.Name, i)
		}
		switch strings.ToLower(l.Type) {
		case "conv", "pool", "relu", "lrn", "fc", "softmax":
		default:
			return fmt.Errorf("netconfig: %s: layer %q has unknown type %q", s.Name, l.Name, l.Type)
		}
		if l.Layout != "" && !strings.EqualFold(l.Layout, "auto") {
			if _, err := tensor.ParseLayout(l.Layout); err != nil {
				return fmt.Errorf("netconfig: %s: layer %q: %w", s.Name, l.Name, err)
			}
		}
	}
	return nil
}

// Build materialises the specification into a network.  Layer shapes are
// inferred by chaining, exactly like the framework configuration files the
// paper modifies.
func (s *NetworkSpec) Build() (*network.Network, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	shape := tensor.Shape{N: s.Batch, C: s.Input.Channels, H: s.Input.Height, W: s.Input.Width}
	var ls []layers.Layer
	seed := uint64(1)
	for _, spec := range s.Layers {
		switch strings.ToLower(spec.Type) {
		case "conv":
			stride := spec.Stride
			if stride == 0 {
				stride = 1
			}
			cfg := kernels.ConvConfig{
				N: s.Batch, C: shape.C, H: shape.H, W: shape.W,
				K: spec.Filters, FH: spec.Kernel, FW: spec.Kernel,
				StrideH: stride, StrideW: stride, PadH: spec.Pad, PadW: spec.Pad,
			}
			l, err := layers.NewConv(spec.Name, cfg, seed)
			if err != nil {
				return nil, fmt.Errorf("netconfig: %s: %w", spec.Name, err)
			}
			seed++
			ls = append(ls, l)
			shape = l.OutputShape()
		case "pool":
			stride := spec.PoolStr
			if stride == 0 {
				stride = spec.Window
			}
			op := kernels.MaxPool
			if strings.EqualFold(spec.PoolOp, "avg") {
				op = kernels.AvgPool
			}
			cfg := kernels.PoolConfig{
				N: s.Batch, C: shape.C, H: shape.H, W: shape.W,
				Window: spec.Window, Stride: stride, Op: op,
			}
			l, err := layers.NewPool(spec.Name, cfg)
			if err != nil {
				return nil, fmt.Errorf("netconfig: %s: %w", spec.Name, err)
			}
			ls = append(ls, l)
			shape = l.OutputShape()
		case "relu":
			l, err := layers.NewReLU(spec.Name, shape)
			if err != nil {
				return nil, fmt.Errorf("netconfig: %s: %w", spec.Name, err)
			}
			ls = append(ls, l)
		case "lrn":
			size := spec.LocalSize
			if size == 0 {
				size = 5
			}
			l, err := layers.NewLRN(spec.Name, shape, size, 0, 0)
			if err != nil {
				return nil, fmt.Errorf("netconfig: %s: %w", spec.Name, err)
			}
			ls = append(ls, l)
		case "fc":
			in := shape.C * shape.H * shape.W
			l, err := layers.NewFullyConnected(spec.Name, s.Batch, in, spec.Outputs, seed)
			if err != nil {
				return nil, fmt.Errorf("netconfig: %s: %w", spec.Name, err)
			}
			seed++
			ls = append(ls, l)
			shape = l.OutputShape()
		case "softmax":
			classes := spec.Classes
			if classes == 0 {
				classes = shape.C * shape.H * shape.W
			}
			if classes != shape.C*shape.H*shape.W {
				return nil, fmt.Errorf("netconfig: %s: softmax over %d classes fed with %d features", spec.Name, classes, shape.C*shape.H*shape.W)
			}
			l, err := layers.NewSoftmax(spec.Name, kernels.SoftmaxConfig{N: s.Batch, Classes: classes})
			if err != nil {
				return nil, fmt.Errorf("netconfig: %s: %w", spec.Name, err)
			}
			ls = append(ls, l)
			shape = l.OutputShape()
		}
	}
	return network.New(s.Name, s.Batch, ls...)
}

// LayoutOverrides returns the explicit per-layer layout choices of the
// specification (layers with an empty or "auto" layout are omitted).
func (s *NetworkSpec) LayoutOverrides() (map[string]tensor.Layout, error) {
	out := make(map[string]tensor.Layout)
	for _, l := range s.Layers {
		if l.Layout == "" || strings.EqualFold(l.Layout, "auto") {
			continue
		}
		lay, err := tensor.ParseLayout(l.Layout)
		if err != nil {
			return nil, fmt.Errorf("netconfig: layer %q: %w", l.Name, err)
		}
		out[l.Name] = lay
	}
	return out, nil
}

// Annotate fills the per-layer layout fields of the specification from an
// execution plan (the step the paper performs after scanning the network with
// its heuristic).  Layers missing from the plan are left untouched.
func (s *NetworkSpec) Annotate(plan *network.ExecutionPlan) {
	chosen := make(map[string]string, len(plan.Layers))
	for _, pl := range plan.Layers {
		chosen[pl.Layer.Name()] = pl.Layout.String()
	}
	for i := range s.Layers {
		if lay, ok := chosen[s.Layers[i].Name]; ok {
			s.Layers[i].Layout = lay
		}
	}
}
