package netconfig

import (
	"strings"
	"testing"

	"memcnn/internal/core"
	"memcnn/internal/gpusim"
	"memcnn/internal/layout"
	"memcnn/internal/tensor"
)

// lenetJSON is a LeNet-style configuration matching workloads.LeNet.
const lenetJSON = `{
  "name": "LeNet",
  "batch": 128,
  "input": {"channels": 1, "height": 28, "width": 28},
  "layers": [
    {"name": "conv1", "type": "conv", "filters": 16, "kernel": 5, "pad": 2},
    {"name": "pool1", "type": "pool", "window": 2, "pool_stride": 2},
    {"name": "conv2", "type": "conv", "filters": 16, "kernel": 5, "pad": 2, "layout": "CHWN"},
    {"name": "pool2", "type": "pool", "window": 2, "pool_stride": 2},
    {"name": "fc1", "type": "fc", "outputs": 100},
    {"name": "relu1", "type": "relu"},
    {"name": "fc2", "type": "fc", "outputs": 10},
    {"name": "prob", "type": "softmax", "classes": 10}
  ]
}`

func TestParseAndBuildLeNet(t *testing.T) {
	spec, err := Parse([]byte(lenetJSON))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "LeNet" || spec.Batch != 128 || len(spec.Layers) != 8 {
		t.Fatalf("unexpected spec: %+v", spec)
	}
	net, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if net.InputShape() != (tensor.Shape{N: 128, C: 1, H: 28, W: 28}) {
		t.Errorf("input shape %v", net.InputShape())
	}
	if net.OutputShape() != (tensor.Shape{N: 128, C: 10, H: 1, W: 1}) {
		t.Errorf("output shape %v", net.OutputShape())
	}
	if len(net.Layers) != 8 {
		t.Errorf("built %d layers, want 8", len(net.Layers))
	}
}

func TestLayoutOverrides(t *testing.T) {
	spec, err := Parse([]byte(lenetJSON))
	if err != nil {
		t.Fatal(err)
	}
	overrides, err := spec.LayoutOverrides()
	if err != nil {
		t.Fatal(err)
	}
	if len(overrides) != 1 || overrides["conv2"] != tensor.CHWN {
		t.Errorf("overrides = %v, want conv2 -> CHWN", overrides)
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	cases := map[string]string{
		"invalid json":   `{"name": "x"`,
		"unknown field":  `{"name":"x","batch":1,"input":{"channels":1,"height":4,"width":4},"layers":[{"name":"a","type":"relu","bogus":1}]}`,
		"missing name":   `{"batch":1,"input":{"channels":1,"height":4,"width":4},"layers":[{"name":"a","type":"relu"}]}`,
		"bad batch":      `{"name":"x","batch":0,"input":{"channels":1,"height":4,"width":4},"layers":[{"name":"a","type":"relu"}]}`,
		"bad input":      `{"name":"x","batch":1,"input":{"channels":0,"height":4,"width":4},"layers":[{"name":"a","type":"relu"}]}`,
		"no layers":      `{"name":"x","batch":1,"input":{"channels":1,"height":4,"width":4},"layers":[]}`,
		"unnamed layer":  `{"name":"x","batch":1,"input":{"channels":1,"height":4,"width":4},"layers":[{"type":"relu"}]}`,
		"unknown type":   `{"name":"x","batch":1,"input":{"channels":1,"height":4,"width":4},"layers":[{"name":"a","type":"warp"}]}`,
		"unknown layout": `{"name":"x","batch":1,"input":{"channels":1,"height":4,"width":4},"layers":[{"name":"a","type":"relu","layout":"WXYZ"}]}`,
	}
	for label, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: expected parse error", label)
		}
	}
}

func TestBuildRejectsInconsistentShapes(t *testing.T) {
	doc := `{
  "name": "broken", "batch": 4,
  "input": {"channels": 1, "height": 8, "width": 8},
  "layers": [
    {"name": "conv1", "type": "conv", "filters": 4, "kernel": 3},
    {"name": "prob", "type": "softmax", "classes": 10}
  ]}`
	spec, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Build(); err == nil {
		t.Error("softmax class mismatch must be rejected at build time")
	}
	oversized := `{
  "name": "broken", "batch": 4,
  "input": {"channels": 1, "height": 4, "width": 4},
  "layers": [
    {"name": "conv1", "type": "conv", "filters": 4, "kernel": 9}
  ]}`
	spec, err = Parse([]byte(oversized))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Build(); err == nil {
		t.Error("filter larger than input must be rejected at build time")
	}
}

func TestAnnotateAndRoundTrip(t *testing.T) {
	spec, err := Parse([]byte(lenetJSON))
	if err != nil {
		t.Fatal(err)
	}
	net, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	optimizer := core.NewOptimizer(core.Options{Thresholds: layout.TitanBlackThresholds()})
	plan, err := optimizer.Plan(gpusim.TitanBlack(), net)
	if err != nil {
		t.Fatal(err)
	}
	spec.Annotate(plan)
	for _, l := range spec.Layers {
		if l.Type == "conv" || l.Type == "pool" {
			if l.Layout == "" {
				t.Errorf("layer %q has no layout after annotation", l.Name)
			}
		}
	}
	// Round trip through JSON must preserve the annotation.
	data, err := spec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "\"layout\"") {
		t.Error("marshalled spec should contain layout fields")
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	overrides, err := back.LayoutOverrides()
	if err != nil {
		t.Fatal(err)
	}
	if overrides["conv1"] != tensor.CHWN {
		t.Errorf("LeNet conv1 should be annotated CHWN, got %v", overrides["conv1"])
	}
	// The re-parsed spec must still build.
	if _, err := back.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildAvgPoolingAndDefaults(t *testing.T) {
	doc := `{
  "name": "avgnet", "batch": 2,
  "input": {"channels": 2, "height": 8, "width": 8},
  "layers": [
    {"name": "pool1", "type": "pool", "window": 2, "pool_op": "avg"},
    {"name": "norm1", "type": "lrn"},
    {"name": "fc1", "type": "fc", "outputs": 4},
    {"name": "prob", "type": "softmax"}
  ]}`
	spec, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	net, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Pool stride defaults to the window, softmax classes default to the
	// incoming feature count.
	if net.OutputShape() != (tensor.Shape{N: 2, C: 4, H: 1, W: 1}) {
		t.Errorf("output shape %v", net.OutputShape())
	}
	in := tensor.Random(net.InputShape(), tensor.NCHW, 1)
	if _, err := net.Forward(in); err != nil {
		t.Fatalf("built network must run functionally: %v", err)
	}
}
