package gpusim

import "testing"

func TestOccupancyFullBlocks(t *testing.T) {
	d := TitanBlack()
	occ := ComputeOccupancy(d, BlockResources{ThreadsPerBlock: 256, RegsPerThread: 32, SharedMemPerBlock: 0}, 1_000_000)
	if occ.BlocksPerSM != 8 {
		t.Errorf("BlocksPerSM = %d, want 8 (2048/256)", occ.BlocksPerSM)
	}
	if occ.Fraction != 1 {
		t.Errorf("Fraction = %v, want 1", occ.Fraction)
	}
	if occ.LimitedBy != "threads" {
		t.Errorf("LimitedBy = %q, want threads", occ.LimitedBy)
	}
}

func TestOccupancyRegisterLimited(t *testing.T) {
	d := TitanBlack()
	occ := ComputeOccupancy(d, BlockResources{ThreadsPerBlock: 256, RegsPerThread: 128}, 1_000_000)
	// 65536 regs / (128*256) = 2 blocks per SM = 512 threads = 16 warps of 64.
	if occ.BlocksPerSM != 2 {
		t.Errorf("BlocksPerSM = %d, want 2", occ.BlocksPerSM)
	}
	if occ.LimitedBy != "registers" {
		t.Errorf("LimitedBy = %q, want registers", occ.LimitedBy)
	}
	if occ.Fraction >= 0.5 {
		t.Errorf("Fraction = %v, want < 0.5", occ.Fraction)
	}
}

func TestOccupancySharedMemoryLimited(t *testing.T) {
	d := TitanBlack()
	occ := ComputeOccupancy(d, BlockResources{ThreadsPerBlock: 128, RegsPerThread: 16, SharedMemPerBlock: 24 << 10}, 1_000_000)
	if occ.BlocksPerSM != 2 {
		t.Errorf("BlocksPerSM = %d, want 2 (48KB/24KB)", occ.BlocksPerSM)
	}
	if occ.LimitedBy != "shared memory" {
		t.Errorf("LimitedBy = %q, want shared memory", occ.LimitedBy)
	}
}

func TestOccupancySmallGrid(t *testing.T) {
	d := TitanBlack()
	// The unparallelised softmax outer loop: a single block of 128 threads.
	occ := ComputeOccupancy(d, BlockResources{ThreadsPerBlock: 128}, 1)
	if occ.ActiveWarps != 4 {
		t.Errorf("ActiveWarps = %d, want 4", occ.ActiveWarps)
	}
	if occ.Fraction > 0.01 {
		t.Errorf("Fraction = %v, want tiny for a 1-block grid", occ.Fraction)
	}
}

func TestOccupancyEmptyBlock(t *testing.T) {
	occ := ComputeOccupancy(TitanBlack(), BlockResources{}, 10)
	if occ.BlocksPerSM != 0 || occ.ActiveWarps != 0 {
		t.Error("empty block must produce zero occupancy")
	}
}

func TestOccupancyOversizedBlockIsClamped(t *testing.T) {
	d := TitanBlack()
	occ := ComputeOccupancy(d, BlockResources{ThreadsPerBlock: 4096}, 100)
	if occ.BlocksPerSM < 1 {
		t.Errorf("oversized block should be clamped to the device limit, got %d blocks/SM", occ.BlocksPerSM)
	}
}

func TestOccupancyBlockSlotLimited(t *testing.T) {
	d := TitanBlack()
	occ := ComputeOccupancy(d, BlockResources{ThreadsPerBlock: 32}, 1_000_000)
	if occ.BlocksPerSM != d.MaxBlocksPerSM {
		t.Errorf("BlocksPerSM = %d, want %d", occ.BlocksPerSM, d.MaxBlocksPerSM)
	}
	if occ.LimitedBy != "block slots" {
		t.Errorf("LimitedBy = %q, want block slots", occ.LimitedBy)
	}
}

func TestOccupancyFractionNeverExceedsOne(t *testing.T) {
	d := TitanX()
	for threads := 32; threads <= 1024; threads *= 2 {
		for regs := 0; regs <= 255; regs += 51 {
			occ := ComputeOccupancy(d, BlockResources{ThreadsPerBlock: threads, RegsPerThread: regs}, 1<<20)
			if occ.Fraction < 0 || occ.Fraction > 1 {
				t.Fatalf("threads=%d regs=%d: fraction %v out of range", threads, regs, occ.Fraction)
			}
			if occ.WarpsPerSM > d.MaxWarpsPerSM {
				t.Fatalf("threads=%d regs=%d: warps/SM %d exceeds limit", threads, regs, occ.WarpsPerSM)
			}
		}
	}
}
