package gpusim

import (
	"math"
	"testing"
)

const testLinkGBs = 12.0

// TestInterconnectTransferScalesWithBytes checks the uncontended price is
// linear in the transfer size.
func TestInterconnectTransferScalesWithBytes(t *testing.T) {
	ic := Interconnect{GBs: testLinkGBs}
	one := ic.TransferUS(1 << 20)
	if one <= 0 {
		t.Fatalf("1 MiB transfer priced at %v us", one)
	}
	if got := ic.TransferUS(2 << 20); !approx(got, 2*one, 1e-9) {
		t.Errorf("2 MiB priced %v us, want 2x 1 MiB = %v us", got, 2*one)
	}
	if got := ic.TransferUS(0); got != 0 {
		t.Errorf("empty transfer priced %v us, want 0", got)
	}
}

// TestInterconnectContention checks the ROADMAP contention property: when two
// transfers overlap, each sees half the link, so both cost ~2x the lone
// price — via the steady-state ContendedUS and via the event-driven ScatterUS.
func TestInterconnectContention(t *testing.T) {
	ic := Interconnect{GBs: testLinkGBs}
	const bytes = 4 << 20
	lone := ic.TransferUS(bytes)

	if got := ic.ContendedUS(bytes, 2); !approx(got, 2*lone, 1e-9) {
		t.Errorf("2-way contended transfer priced %v us, want %v us", got, 2*lone)
	}
	if got := ic.ContendedUS(bytes, 1); !approx(got, lone, 1e-9) {
		t.Errorf("uncontended ContendedUS priced %v us, want %v us", got, lone)
	}

	done := ic.ScatterUS([]int64{bytes, bytes})
	for i, d := range done {
		if !approx(d, 2*lone, 1e-9) {
			t.Errorf("scatter transfer %d completed at %v us, want %v us", i, d, 2*lone)
		}
	}
}

// TestInterconnectScatterWaterFilling checks the overlap model on unequal
// sizes: smaller transfers finish earlier, the link is work-conserving (the
// last completion equals the lone price of the summed bytes), and zero-byte
// entries complete immediately.
func TestInterconnectScatterWaterFilling(t *testing.T) {
	ic := Interconnect{GBs: testLinkGBs}
	sizes := []int64{1 << 20, 4 << 20, 0, 2 << 20}
	done := ic.ScatterUS(sizes)

	if done[2] != 0 {
		t.Errorf("zero-byte transfer completed at %v us, want 0", done[2])
	}
	if !(done[0] < done[3] && done[3] < done[1]) {
		t.Errorf("completions not ordered by size: %v for sizes %v", done, sizes)
	}
	var total int64
	for _, b := range sizes {
		total += b
	}
	if last := done[1]; !approx(last, ic.TransferUS(total), 1e-9) {
		t.Errorf("last completion %v us, want work-conserving %v us", last, ic.TransferUS(total))
	}
	// The smallest transfer ran 3-way contended for its whole life.
	if want := ic.ContendedUS(sizes[0], 3); !approx(done[0], want, 1e-9) {
		t.Errorf("smallest transfer completed at %v us, want 3-way contended %v us", done[0], want)
	}
}

func approx(got, want, rel float64) bool {
	return math.Abs(got-want) <= rel*math.Abs(want)
}
