package gpusim

// BlockResources describes the per-thread-block resource demand of a kernel,
// the inputs to the occupancy calculation.
type BlockResources struct {
	ThreadsPerBlock   int
	RegsPerThread     int
	SharedMemPerBlock int
}

// Occupancy describes how many warps a kernel keeps resident on each SM and
// on the whole device.
type Occupancy struct {
	BlocksPerSM     int
	WarpsPerSM      int
	ActiveWarps     int     // device-wide resident warps (bounded by grid size)
	Fraction        float64 // warps per SM / max warps per SM
	LimitedBy       string  // which resource bounds the residency
	ThreadsResident int
}

// ComputeOccupancy applies the CUDA occupancy rules: the number of thread
// blocks resident on an SM is bounded by the thread limit, the register file,
// the shared memory capacity and the block-slot limit; whichever is smallest
// wins.
func ComputeOccupancy(d *Device, r BlockResources, gridBlocks int) Occupancy {
	if r.ThreadsPerBlock <= 0 {
		return Occupancy{LimitedBy: "empty block"}
	}
	threads := r.ThreadsPerBlock
	if threads > d.MaxThreadsPerBlock {
		threads = d.MaxThreadsPerBlock
	}

	byThreads := d.MaxThreadsPerSM / threads
	byBlocks := d.MaxBlocksPerSM

	byRegs := byBlocks
	if r.RegsPerThread > 0 {
		regsPerBlock := r.RegsPerThread * threads
		if regsPerBlock > 0 {
			byRegs = d.RegistersPerSM / regsPerBlock
		}
	}

	bySmem := byBlocks
	if r.SharedMemPerBlock > 0 {
		bySmem = d.SharedMemPerSM / r.SharedMemPerBlock
	}

	blocks := byThreads
	limit := "threads"
	if byBlocks < blocks {
		blocks, limit = byBlocks, "block slots"
	}
	if byRegs < blocks {
		blocks, limit = byRegs, "registers"
	}
	if bySmem < blocks {
		blocks, limit = bySmem, "shared memory"
	}
	if blocks < 0 {
		blocks = 0
	}

	warpsPerBlock := (threads + d.WarpSize - 1) / d.WarpSize
	warpsPerSM := blocks * warpsPerBlock
	if warpsPerSM > d.MaxWarpsPerSM {
		warpsPerSM = d.MaxWarpsPerSM
	}

	// Device-wide residency is also bounded by how many blocks the grid has.
	resBlocks := blocks * d.SMCount
	if gridBlocks > 0 && gridBlocks < resBlocks {
		resBlocks = gridBlocks
	}
	activeWarps := resBlocks * warpsPerBlock

	frac := 0.0
	if d.MaxWarpsPerSM > 0 {
		frac = float64(warpsPerSM) / float64(d.MaxWarpsPerSM)
		// If the grid cannot even fill the SMs, scale the fraction down: a
		// 128-thread kernel (the unparallelised softmax outer loop) cannot
		// hide latency no matter what its per-block resources allow.
		deviceCapacityWarps := d.MaxWarpsPerSM * d.SMCount
		if activeWarps < int(frac*float64(deviceCapacityWarps)) {
			frac = float64(activeWarps) / float64(deviceCapacityWarps)
		}
	}
	if frac > 1 {
		frac = 1
	}

	return Occupancy{
		BlocksPerSM:     blocks,
		WarpsPerSM:      warpsPerSM,
		ActiveWarps:     activeWarps,
		Fraction:        frac,
		LimitedBy:       limit,
		ThreadsResident: activeWarps * d.WarpSize,
	}
}
