package gpusim

import "testing"

func TestPresetDevicesValidate(t *testing.T) {
	for _, d := range []*Device{TitanBlack(), TitanX()} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestTitanBlackMatchesPaperNumbers(t *testing.T) {
	d := TitanBlack()
	if d.PeakGFLOPS != 5121 {
		t.Errorf("PeakGFLOPS = %v, want 5121 (Section III.B)", d.PeakGFLOPS)
	}
	if d.MemBandwidthGBs != 235 {
		t.Errorf("MemBandwidthGBs = %v, want 235 (Section III.B)", d.MemBandwidthGBs)
	}
	if d.GlobalMemBytes != 6<<30 {
		t.Errorf("GlobalMemBytes = %v, want 6 GiB", d.GlobalMemBytes)
	}
}

func TestTitanXIsFasterThanTitanBlack(t *testing.T) {
	tb, tx := TitanBlack(), TitanX()
	if tx.MemBandwidthGBs <= tb.MemBandwidthGBs {
		t.Error("Titan X should have more bandwidth than Titan Black")
	}
	if tx.PeakGFLOPS <= tb.PeakGFLOPS {
		t.Error("Titan X should have more FLOPS than Titan Black")
	}
	if tx.GlobalMemBytes <= tb.GlobalMemBytes {
		t.Error("Titan X should have more memory than Titan Black")
	}
}

func TestDeviceValidateRejectsBrokenDevices(t *testing.T) {
	base := TitanBlack()
	cases := []func(*Device){
		func(d *Device) { d.Name = "" },
		func(d *Device) { d.SMCount = 0 },
		func(d *Device) { d.PeakGFLOPS = 0 },
		func(d *Device) { d.MemBandwidthGBs = -1 },
		func(d *Device) { d.WarpSize = 0 },
		func(d *Device) { d.TransactionBytes = 0 },
		func(d *Device) { d.CacheLineBytes = 16 },
		func(d *Device) { d.MaxThreadsPerBlock = 0 },
		func(d *Device) { d.GlobalMemBytes = 0 },
		func(d *Device) { d.MemLatencyNS = 0 },
		func(d *Device) { d.RegistersPerSM = 0 },
	}
	for i, mutate := range cases {
		d := *base
		mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestFitsInMemory(t *testing.T) {
	d := TitanBlack()
	if !d.FitsInMemory(1 << 30) {
		t.Error("1 GiB should fit in 6 GiB")
	}
	if d.FitsInMemory(7 << 30) {
		t.Error("7 GiB should not fit in 6 GiB")
	}
}

func TestPeakConversions(t *testing.T) {
	d := TitanBlack()
	if d.PeakBytesPerSec() != 235e9 {
		t.Errorf("PeakBytesPerSec = %v", d.PeakBytesPerSec())
	}
	if d.PeakFLOPsPerSec() != 5121e9 {
		t.Errorf("PeakFLOPsPerSec = %v", d.PeakFLOPsPerSec())
	}
}
