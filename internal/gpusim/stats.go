package gpusim

import "fmt"

// KernelStats is the analytic description of one GPU kernel invocation (or a
// short sequence of identical invocations): its launch geometry, resource
// demand, arithmetic work and off-chip traffic.  Kernel models in
// internal/kernels produce KernelStats; EstimateTime turns them into time.
type KernelStats struct {
	Name string

	// Launch geometry and per-block resources.
	GridBlocks int
	Block      BlockResources
	Launches   int // number of kernel launches represented (>=1)

	// Arithmetic work.
	FLOPs float64
	// ComputeEfficiency is the fraction of peak arithmetic throughput the
	// kernel's structure can reach when it is not memory bound: it captures
	// structural effects such as short inner loops, low register-level reuse
	// or underfilled vector units.  Range (0, 1].
	ComputeEfficiency float64

	// Off-chip traffic actually moved, after coalescing over-fetch and after
	// whatever reuse the kernel achieves in registers/shared memory/L2.
	DRAMReadBytes  float64
	DRAMWriteBytes float64

	// The bytes the computation logically consumes and produces; used to
	// report achieved (useful) bandwidth the way the paper does.
	UsefulReadBytes  float64
	UsefulWriteBytes float64

	// BytesInFlightPerThread bounds memory-level parallelism per thread for
	// the Little's-law bandwidth cap.  Zero selects the default (16 bytes,
	// i.e. four outstanding float loads per thread).
	BytesInFlightPerThread float64
}

// DefaultBytesInFlightPerThread is the memory-level parallelism assumed per
// thread when a kernel model does not specify one.
const DefaultBytesInFlightPerThread = 16.0

// TotalDRAMBytes returns read plus write traffic.
func (s KernelStats) TotalDRAMBytes() float64 { return s.DRAMReadBytes + s.DRAMWriteBytes }

// TotalUsefulBytes returns the logically required traffic.
func (s KernelStats) TotalUsefulBytes() float64 { return s.UsefulReadBytes + s.UsefulWriteBytes }

// launches returns the launch count, defaulting to one.
func (s KernelStats) launches() int {
	if s.Launches <= 0 {
		return 1
	}
	return s.Launches
}

// Validate reports structural problems in the stats (negative work, missing
// block size, efficiency out of range).
func (s KernelStats) Validate() error {
	switch {
	case s.FLOPs < 0 || s.DRAMReadBytes < 0 || s.DRAMWriteBytes < 0:
		return fmt.Errorf("gpusim: %s: negative work", s.Name)
	case s.ComputeEfficiency < 0 || s.ComputeEfficiency > 1:
		return fmt.Errorf("gpusim: %s: compute efficiency %v out of range", s.Name, s.ComputeEfficiency)
	case s.Block.ThreadsPerBlock < 0:
		return fmt.Errorf("gpusim: %s: negative block size", s.Name)
	case s.UsefulReadBytes < 0 || s.UsefulWriteBytes < 0:
		return fmt.Errorf("gpusim: %s: negative useful bytes", s.Name)
	}
	return nil
}

// Add merges another kernel's stats into a combined sequential cost (as if
// the two kernels run back to back).  Launch counts add; geometry keeps the
// larger grid so occupancy reflects the bigger kernel.
func (s KernelStats) Add(o KernelStats) KernelStats {
	out := s
	if o.GridBlocks > out.GridBlocks {
		out.GridBlocks = o.GridBlocks
		out.Block = o.Block
	}
	out.Launches = s.launches() + o.launches()
	out.FLOPs += o.FLOPs
	out.DRAMReadBytes += o.DRAMReadBytes
	out.DRAMWriteBytes += o.DRAMWriteBytes
	out.UsefulReadBytes += o.UsefulReadBytes
	out.UsefulWriteBytes += o.UsefulWriteBytes
	// Combined efficiency: FLOP-weighted harmonic-style blend; if either has
	// no FLOPs keep the other's.
	switch {
	case s.FLOPs == 0:
		out.ComputeEfficiency = o.ComputeEfficiency
	case o.FLOPs == 0:
		out.ComputeEfficiency = s.ComputeEfficiency
	default:
		se, oe := s.ComputeEfficiency, o.ComputeEfficiency
		if se <= 0 {
			se = 1
		}
		if oe <= 0 {
			oe = 1
		}
		out.ComputeEfficiency = (s.FLOPs + o.FLOPs) / (s.FLOPs/se + o.FLOPs/oe)
	}
	return out
}
