package gpusim

import "fmt"

// KernelTime is the estimated execution time of a kernel, with its breakdown
// and the derived throughput numbers the paper reports (achieved bandwidth in
// GB/s, achieved GFLOPS).
type KernelTime struct {
	Stats KernelStats

	ComputeUS float64 // time if purely compute bound
	MemoryUS  float64 // time if purely memory bound
	LaunchUS  float64 // kernel launch overhead
	TotalUS   float64

	Occupancy Occupancy
	// AchievedBandwidthGBs is useful bytes divided by total time, matching
	// how the paper reports pooling/softmax bandwidth (Figs. 6, 11, 12, 13).
	AchievedBandwidthGBs float64
	// EffectiveBandwidthGBs is moved DRAM bytes divided by memory time: the
	// raw DRAM throughput the kernel sustains.
	EffectiveBandwidthGBs float64
	AchievedGFLOPS        float64
	Limiter               string // "compute", "memory" or "launch"
}

// EstimateTime applies the roofline + latency-hiding model described in
// DESIGN.md to one kernel.
//
//	computeTime = FLOPs / (peak * ComputeEfficiency)
//	memoryTime  = DRAMBytes / achievableBandwidth
//	total       = launches*launchOverhead + max(computeTime, memoryTime)
//
// achievableBandwidth is the device bandwidth capped by Little's law using
// the kernel's occupancy: too few resident warps cannot keep enough bytes in
// flight to saturate DRAM, which is exactly the paper's diagnosis of the
// baseline softmax kernels (Section V.B).
func EstimateTime(d *Device, s KernelStats) KernelTime {
	if err := s.Validate(); err != nil {
		panic(err)
	}
	occ := ComputeOccupancy(d, s.Block, s.GridBlocks)

	// Compute roof.
	eff := s.ComputeEfficiency
	if eff <= 0 {
		eff = 1
	}
	var computeUS float64
	if s.FLOPs > 0 {
		// A nearly empty device also throttles arithmetic throughput: only
		// the resident warps issue instructions.
		computeScale := occ.Fraction * 4 // a quarter-full device already reaches peak issue
		if computeScale > 1 {
			computeScale = 1
		}
		if computeScale <= 0 {
			computeScale = 1.0 / float64(d.MaxWarpsPerSM*d.SMCount)
		}
		computeUS = s.FLOPs / (d.PeakFLOPsPerSec() * eff * computeScale) * 1e6
	}

	// Memory roof with a Little's-law cap.
	bytesInFlight := s.BytesInFlightPerThread
	if bytesInFlight <= 0 {
		bytesInFlight = DefaultBytesInFlightPerThread
	}
	achievableBW := d.PeakBytesPerSec()
	if occ.ActiveWarps > 0 {
		concurrent := float64(occ.ActiveWarps*d.WarpSize) * bytesInFlight
		latencyCap := concurrent / (d.MemLatencyNS * 1e-9)
		if latencyCap < achievableBW {
			achievableBW = latencyCap
		}
	}
	var memoryUS float64
	if s.TotalDRAMBytes() > 0 {
		memoryUS = s.TotalDRAMBytes() / achievableBW * 1e6
	}

	launchUS := float64(s.launches()) * d.LaunchOverheadUS

	body := computeUS
	limiter := "compute"
	if memoryUS > body {
		body, limiter = memoryUS, "memory"
	}
	if body == 0 || launchUS > body {
		limiter = "launch"
	}
	total := launchUS + body

	kt := KernelTime{
		Stats:     s,
		ComputeUS: computeUS,
		MemoryUS:  memoryUS,
		LaunchUS:  launchUS,
		TotalUS:   total,
		Occupancy: occ,
		Limiter:   limiter,
	}
	if total > 0 {
		kt.AchievedBandwidthGBs = s.TotalUsefulBytes() / (total * 1e-6) / 1e9
		kt.AchievedGFLOPS = s.FLOPs / (total * 1e-6) / 1e9
	}
	if memoryUS > 0 {
		kt.EffectiveBandwidthGBs = s.TotalDRAMBytes() / (memoryUS * 1e-6) / 1e9
	}
	return kt
}

// EstimateSequence estimates the total time of kernels executed back to back
// (each paying its own launch overhead) and returns the per-kernel breakdown.
func EstimateSequence(d *Device, kernels []KernelStats) (total float64, times []KernelTime) {
	times = make([]KernelTime, 0, len(kernels))
	for _, k := range kernels {
		kt := EstimateTime(d, k)
		times = append(times, kt)
		total += kt.TotalUS
	}
	return total, times
}

// String summarises the estimate.
func (kt KernelTime) String() string {
	return fmt.Sprintf("%s: %.1fus (%s-bound, %.1f GB/s useful, %.0f GFLOPS, occ %.0f%%)",
		kt.Stats.Name, kt.TotalUS, kt.Limiter, kt.AchievedBandwidthGBs, kt.AchievedGFLOPS,
		kt.Occupancy.Fraction*100)
}
