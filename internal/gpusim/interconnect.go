package gpusim

import "sort"

// Interconnect models the host link (PCIe) that cross-device transfers share.
// A single transfer moves at the full link bandwidth; when several transfers
// overlap they divide it — the fair-share behaviour of a PCIe switch under
// congestion — which is what makes scattering a batch to K replicas more
// expensive per byte than feeding one device.  The zero GBs value is invalid;
// callers pick the modeled link speed (runtime.DefaultInterconnectGBs for the
// practical PCIe 3.0 x16 rate).
type Interconnect struct {
	// GBs is the link bandwidth in GB/s available to a lone transfer.
	GBs float64
}

// TransferUS prices one uncontended transfer: bytes at the full link
// bandwidth.  Launch/driver overheads are charged by the device receiving the
// transfer, not by the link.
func (ic Interconnect) TransferUS(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / (ic.GBs * 1e9) * 1e6
}

// ContendedUS prices one transfer while `concurrent` transfers (including this
// one) share the link: each sees bandwidth/K for its whole duration, so K
// equal overlapping transfers each cost K times the lone price.  It is the
// steady-state view of ScatterUS for transfers of equal size.
func (ic Interconnect) ContendedUS(bytes int64, concurrent int) float64 {
	if concurrent < 1 {
		concurrent = 1
	}
	return ic.TransferUS(bytes) * float64(concurrent)
}

// ScatterUS prices len(sizes) transfers that start simultaneously on the
// shared link — the batch scatter of a data-parallel replica group — and
// returns each transfer's completion time in microseconds, index-aligned with
// sizes.  The link is shared fairly among the transfers still in flight:
// while K remain, each progresses at bandwidth/K, so the smallest finishes
// first and the survivors speed up.  The model is work-conserving — the link
// runs at full bandwidth until the last byte — so the final completion time
// equals the lone-transfer price of the summed bytes.
func (ic Interconnect) ScatterUS(sizes []int64) []float64 {
	done := make([]float64, len(sizes))
	// Order by remaining size; walk the finish events accumulating elapsed
	// time at the fair share of each phase.
	order := make([]int, 0, len(sizes))
	for i, b := range sizes {
		if b <= 0 {
			continue // nothing to move: completes immediately
		}
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool { return sizes[order[a]] < sizes[order[b]] })
	var elapsedUS, movedBytes float64
	for k, idx := range order {
		active := len(order) - k
		phaseBytes := float64(sizes[idx]) - movedBytes // left of the next finisher
		elapsedUS += phaseBytes * float64(active) / (ic.GBs * 1e9) * 1e6
		movedBytes = float64(sizes[idx])
		done[idx] = elapsedUS
	}
	return done
}
